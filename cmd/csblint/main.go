// Command csblint runs the SV9L static checks over assembly sources.
//
// Usage:
//
//	csblint [-iobase addr] file.s ...
//
// It reports label hygiene problems (duplicate/undefined/unused labels),
// registers read before any write, unreachable code, branches into data,
// and violations of the conditional-store-buffer protocol: uncached
// loads or halt ordered after device stores without a membar (or
// conditional-flush swap), stale expected-value registers on flush retry
// paths, and flush results that are never checked.
//
// -iobase sets the first uncached/combining device address (accepts
// 0x-prefixed hex); the default is 0x40000000, matching the examples.
//
// A finding can be suppressed with a comment pragma on the same line or
// on a standalone comment line directly above:
//
//	ld [%o1], %g3   ! lint:ignore missing-membar polling a status register
//
// Exit status: 0 clean, 1 findings, 2 usage or assembly errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"csbsim/internal/asm"
)

func main() {
	iobase := flag.String("iobase", "", "first device-space address (default 0x40000000)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: csblint [-iobase addr] file.s ...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	var cfg asm.LintConfig
	if *iobase != "" {
		v, err := strconv.ParseUint(*iobase, 0, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "csblint: bad -iobase %q: %v\n", *iobase, err)
			os.Exit(2)
		}
		cfg.IOBase = v
	}

	exit := 0
	for _, file := range flag.Args() {
		src, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "csblint:", err)
			exit = 2
			continue
		}
		diags, err := asm.Lint(file, string(src), cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "csblint:", err)
			exit = 2
			continue
		}
		for _, d := range diags {
			fmt.Println(d)
		}
		if len(diags) > 0 && exit == 0 {
			exit = 1
		}
	}
	os.Exit(exit)
}
