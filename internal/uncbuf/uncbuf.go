// Package uncbuf models the processor's uncached buffer (paper §4.1): a
// FIFO queue between the retire stage and the system interface that holds
// uncached loads and stores. Optionally it combines stores into block-sized
// entries, covering the spectrum of real designs from the PowerPC 620 (two
// stores) to the R10000's uncached-accelerated buffer (a full cache line):
// the block size is configurable from 16 bytes to a cache line, or
// combining can be disabled entirely.
//
// Combining is opportunistic and software-transparent: a store coalesces
// into the youngest entry when it falls into the same block and does not
// bypass an earlier load or barrier; head entries are popped as soon as the
// bus can accept them, so combining succeeds only while the buffer is
// backed up — exactly the latency/utilization trade-off §2 describes.
package uncbuf

import (
	"fmt"

	"csbsim/internal/bus"
	"csbsim/internal/obs/counters"
)

// Tracer receives the uncached-buffer hops of a store journey (the
// journey tracer implements it). Per-store journey IDs are assigned by
// UBStoreAccepted in acceptance order; because stores only ever coalesce
// into the youngest entry, the IDs inside one entry are contiguous and
// the later hops pass (first, count) ranges. Calls are on the tick hot
// path and must not allocate.
type Tracer interface {
	// UBStoreAccepted opens a journey for an accepted store (coalesced
	// reports whether it merged into an existing entry) and returns its ID.
	UBStoreAccepted(addr uint64, size int, coalesced bool) uint64
	// UBEntryDeparted marks an entry's stores popped into the send stage.
	UBEntryDeparted(first uint64, count int)
	// UBBusGranted marks the bus accepting the entry's first transaction.
	UBBusGranted(first uint64, count int)
	// UBEntryDone marks the entry's last transaction complete (the write
	// has landed at the target).
	UBEntryDone(first uint64, count int)
}

// jrange tracks one departed entry's journeys until its transactions
// complete. The bus completes transactions in issue order, so a FIFO
// ring of these matches completions to entries.
type jrange struct {
	first uint64
	count int
	left  int // transactions still in flight
}

// Config parameterizes the uncached buffer.
type Config struct {
	// Entries is the queue depth (default 8).
	Entries int
	// BlockSize is the combining block in bytes; 0 disables combining
	// (every store issues as its own single-beat transaction).
	BlockSize int
	// MaxBurst caps a single bus transaction (the cache line size).
	MaxBurst int
	// Sequential restricts combining to strictly sequential addresses,
	// modeling the R10000 uncached-accelerated buffer (ablation X4).
	Sequential bool
}

// DefaultConfig returns an 8-entry non-combining buffer with 64-byte
// maximum bursts.
func DefaultConfig() Config {
	return Config{Entries: 8, BlockSize: 0, MaxBurst: 64}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Entries <= 0 {
		return fmt.Errorf("uncbuf: entries must be positive")
	}
	if c.BlockSize != 0 && (c.BlockSize < 8 || c.BlockSize&(c.BlockSize-1) != 0) {
		return fmt.Errorf("uncbuf: block size %d invalid", c.BlockSize)
	}
	if c.MaxBurst <= 0 || c.MaxBurst&(c.MaxBurst-1) != 0 {
		return fmt.Errorf("uncbuf: max burst %d invalid", c.MaxBurst)
	}
	return nil
}

// Stats counts buffer activity.
type Stats struct {
	Stores       uint64 // stores accepted
	Loads        uint64 // loads accepted
	Coalesced    uint64 // stores merged into an existing entry
	Entries      uint64 // entries created
	Transactions uint64 // bus transactions issued
	StallFull    uint64 // cycles a store could not be accepted
}

type entryKind uint8

const (
	entryStore entryKind = iota
	entryLoad
)

type entry struct {
	kind      entryKind
	blockAddr uint64
	data      []byte
	mask      []bool
	// seqNext is the only offset a store may merge at in Sequential
	// (R10000-style) mode: exactly one past the previous store.
	seqNext int
	// load fields
	loadAddr uint64
	loadSize int
	done     func([]byte)
	// journey IDs of the stores merged into this entry (contiguous).
	jFirst uint64
	jCount int
}

// Buffer is the uncached buffer. It is not safe for concurrent use; the
// simulator is single-threaded by design.
//
// The queue is a fixed ring of cfg.Entries slots whose data/mask buffers
// are reused across entries, the send stage copies the head entry into
// its own buffer, and completed store transactions return to a free list
// — so the steady-state store path performs no heap allocations.
type Buffer struct {
	cfg   Config
	queue []entry // ring buffer, capacity cfg.Entries
	qhead int
	qlen  int
	// chunks of the popped head entry awaiting bus issue
	sending    []bus.Chunk
	sendChunks []bus.Chunk // backing storage reused by sending
	sendData   []byte      // send-stage copy of the head entry's bytes
	sendBase   uint64
	inflight   int // bus transactions issued but not yet complete

	txnFree     []*bus.Txn // recycled store transactions
	onStoreDone func(*bus.Txn)

	// Journey tracing (AttachTracer), all optional. The send stage
	// remembers the journey range of the entry it carries; jq matches
	// store-transaction completions back to departed entries.
	tracer      Tracer
	sendJFirst  uint64
	sendJCount  int
	sendGranted bool
	jq          []jrange
	jqHead      int
	jqLen       int

	// pressure, when set, makes an accept spuriously fail (fault
	// injection): the retire stage sees an ordinary buffer-full stall and
	// retries, exercising the same path as genuine capacity exhaustion.
	pressure func() bool

	stats Stats
}

// SetFaultHook installs (or, with nil, removes) the capacity-pressure
// fault hook consulted on every AddStore/AddLoad attempt.
func (u *Buffer) SetFaultHook(pressure func() bool) {
	u.pressure = pressure
}

// AttachTracer installs the journey tracer. Attach before running:
// entries already in flight are not retroactively traced.
func (u *Buffer) AttachTracer(t Tracer) {
	u.tracer = t
	if u.jq == nil {
		// At most one departed entry awaits completions while the next
		// occupies the send stage; a few spare slots cost nothing.
		u.jq = make([]jrange, u.cfg.Entries+2)
	}
}

// RegisterCounters registers the buffer's counters with the unified
// registry under prefix (e.g. "ub"), as read closures over the live
// stats — registration never perturbs simulation state.
func (u *Buffer) RegisterCounters(prefix string, r *counters.Registry) {
	r.Counter(prefix+"/stores", func() uint64 { return u.stats.Stores })
	r.Counter(prefix+"/loads", func() uint64 { return u.stats.Loads })
	r.Counter(prefix+"/coalesced", func() uint64 { return u.stats.Coalesced })
	r.Counter(prefix+"/entries", func() uint64 { return u.stats.Entries })
	r.Counter(prefix+"/transactions", func() uint64 { return u.stats.Transactions })
	r.Counter(prefix+"/stall_full", func() uint64 { return u.stats.StallFull })
}

// New creates an uncached buffer.
func New(cfg Config) (*Buffer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	bufSize := max(cfg.BlockSize, 8) // plain entries hold one ≤8-byte store
	u := &Buffer{
		cfg:      cfg,
		queue:    make([]entry, cfg.Entries),
		sendData: make([]byte, bufSize),
	}
	for i := range u.queue {
		u.queue[i].data = make([]byte, 0, bufSize)
		u.queue[i].mask = make([]bool, 0, bufSize)
	}
	u.onStoreDone = func(t *bus.Txn) {
		u.inflight--
		if u.tracer != nil {
			u.storeTxnComplete()
		}
		u.txnFree = append(u.txnFree, t) //csb:pool — Done handler returning t to the free list
	}
	return u, nil
}

// at returns the i-th queued entry (0 = head).
func (u *Buffer) at(i int) *entry {
	return &u.queue[(u.qhead+i)%len(u.queue)]
}

// pushSlot returns the next tail slot with its buffers reset, ready to be
// filled in place.
func (u *Buffer) pushSlot() *entry {
	e := u.at(u.qlen)
	u.qlen++
	*e = entry{data: e.data[:0], mask: e.mask[:0]}
	return e
}

// popHead removes the head entry. Its slot (and buffers) will be reused,
// so callers must copy out anything they need first.
func (u *Buffer) popHead() {
	u.qhead = (u.qhead + 1) % len(u.queue)
	u.qlen--
}

// Config returns the buffer configuration.
func (u *Buffer) Config() Config { return u.cfg }

// Stats returns a snapshot of the counters.
func (u *Buffer) Stats() Stats { return u.stats }

// Len returns the number of queued entries (excluding any entry currently
// being transferred).
func (u *Buffer) Len() int { return u.qlen }

// InFlight returns the number of issued bus transactions not yet complete
// (diagnostic dumps).
func (u *Buffer) InFlight() int { return u.inflight }

// SendingChunks returns the number of chunks of the popped head entry
// still awaiting bus issue (diagnostic dumps).
func (u *Buffer) SendingChunks() int { return len(u.sending) }

// Empty reports whether the buffer holds nothing and no issued transaction
// is still on the bus. MEMBAR retires only when this is true.
func (u *Buffer) Empty() bool {
	return u.qlen == 0 && len(u.sending) == 0 && u.inflight == 0
}

// HasWork reports whether a bus-cycle tick has anything to do: entries
// queued or chunks of a popped entry still awaiting issue. Machine.Tick
// skips the TickBus call otherwise.
func (u *Buffer) HasWork() bool {
	return u.qlen != 0 || len(u.sending) != 0
}

// CanAcceptStore reports whether a store would be accepted this cycle.
func (u *Buffer) CanAcceptStore(addr uint64, size int) bool {
	if u.mergeTarget(addr, size) != nil {
		return true
	}
	return u.qlen < u.cfg.Entries
}

// mergeTarget returns the queue entry the store at addr can coalesce
// into, or nil. Only the youngest entry is eligible, which guarantees
// stores never bypass older loads, barriers or stores to other blocks.
func (u *Buffer) mergeTarget(addr uint64, size int) *entry {
	if u.cfg.BlockSize == 0 || u.qlen == 0 {
		return nil
	}
	e := u.at(u.qlen - 1)
	if e.kind != entryStore {
		return nil
	}
	block := addr &^ uint64(u.cfg.BlockSize-1)
	if e.blockAddr != block {
		return nil
	}
	off := int(addr - block)
	if off+size > u.cfg.BlockSize {
		return nil
	}
	if u.cfg.Sequential && off != e.seqNext {
		// R10000-style: the store must be to the address immediately
		// following the previous one.
		return nil
	}
	return e
}

// AddStore offers an uncached store to the buffer. The bytes are copied;
// the caller may reuse data. It returns false when the buffer is full
// (the retire stage must stall and retry).
func (u *Buffer) AddStore(addr uint64, size int, data []byte) bool {
	if len(data) != size {
		panic(fmt.Sprintf("uncbuf: store data %d != size %d", len(data), size))
	}
	if u.pressure != nil && u.pressure() {
		u.stats.StallFull++ // injected pressure: same retry path as a full queue
		return false
	}
	if e := u.mergeTarget(addr, size); e != nil {
		off := int(addr - e.blockAddr)
		copy(e.data[off:], data)
		for k := 0; k < size; k++ {
			e.mask[off+k] = true
		}
		e.seqNext = off + size
		u.stats.Stores++
		u.stats.Coalesced++
		if u.tracer != nil {
			id := u.tracer.UBStoreAccepted(addr, size, true)
			if e.jCount == 0 {
				e.jFirst = id
			}
			e.jCount++
		}
		return true
	}
	if u.qlen >= u.cfg.Entries {
		u.stats.StallFull++
		return false
	}
	e := u.pushSlot()
	e.kind = entryStore
	if u.cfg.BlockSize == 0 {
		// Non-combining: entry is exactly the store.
		e.blockAddr = addr
		e.data = append(e.data, data...)
		e.mask = e.mask[:size]
		for k := range e.mask {
			e.mask[k] = true
		}
	} else {
		block := addr &^ uint64(u.cfg.BlockSize-1)
		e.blockAddr = block
		e.data = e.data[:u.cfg.BlockSize]
		e.mask = e.mask[:u.cfg.BlockSize]
		for k := range e.data {
			e.data[k] = 0
		}
		for k := range e.mask {
			e.mask[k] = false
		}
		off := int(addr - block)
		copy(e.data[off:], data)
		for k := 0; k < size; k++ {
			e.mask[off+k] = true
		}
		e.seqNext = off + size
	}
	u.stats.Stores++
	u.stats.Entries++
	if u.tracer != nil {
		e.jFirst = u.tracer.UBStoreAccepted(addr, size, false)
		e.jCount = 1
	}
	return true
}

// AddLoad queues an uncached load. done receives the data when the bus
// transaction completes. It returns false when the buffer is full.
func (u *Buffer) AddLoad(addr uint64, size int, done func([]byte)) bool {
	if u.pressure != nil && u.pressure() {
		u.stats.StallFull++ // injected pressure: same retry path as a full queue
		return false
	}
	if u.qlen >= u.cfg.Entries {
		u.stats.StallFull++
		return false
	}
	e := u.pushSlot()
	e.kind = entryLoad
	e.loadAddr = addr
	e.loadSize = size
	e.done = done
	u.stats.Loads++
	u.stats.Entries++
	return true
}

// TickCPU pops the head store entry into the system-interface send stage
// as soon as it is free. The machine calls this every CPU cycle, *before*
// the core retires new stores: the send stage drains at core rate, so with
// an idle bus the first store of a stream always departs alone and only
// the backlog behind it can combine (the warm-up effect of §4.3.1).
//
//csb:hotpath
func (u *Buffer) TickCPU() {
	if len(u.sending) != 0 || u.qlen == 0 {
		return
	}
	head := u.at(0)
	if head.kind != entryStore {
		return // loads issue directly from the queue on bus cycles
	}
	// Copy the entry into the send stage before freeing its slot: the
	// ring reuses entry buffers as soon as the head is popped.
	u.sendBase = head.blockAddr
	u.sendData = u.sendData[:len(head.data)]
	copy(u.sendData, head.data)
	u.sending = bus.AppendAlignedChunks(u.sendChunks[:0], head.blockAddr, head.mask, u.cfg.MaxBurst)
	u.sendChunks = u.sending
	if u.tracer != nil {
		u.tracer.UBEntryDeparted(head.jFirst, head.jCount)
		u.sendJFirst, u.sendJCount = head.jFirst, head.jCount
		u.sendGranted = false
		if u.jqLen < len(u.jq) {
			u.jq[(u.jqHead+u.jqLen)%len(u.jq)] = jrange{
				first: head.jFirst, count: head.jCount, left: len(u.sending)}
			u.jqLen++
		}
	}
	u.popHead()
}

// TickBus gives the buffer a chance to issue one transaction on the bus.
// The machine calls this once per bus cycle, after bus.Tick.
//
//csb:hotpath
func (u *Buffer) TickBus(b *bus.Bus) {
	u.TickCPU() // the send stage also refills on bus cycles
	if len(u.sending) == 0 && u.qlen > 0 {
		head := u.at(0)
		switch head.kind {
		case entryLoad:
			// Strong ordering: a load issues only after all older
			// transactions completed.
			if u.inflight > 0 {
				return
			}
			//csb:alloc-ok — uncached loads block the CPU; one Txn per load is off the zero-alloc budget
			txn := &bus.Txn{
				Addr: head.loadAddr, Size: head.loadSize,
				Ordered: true, IO: true,
			}
			done := head.done
			//csb:alloc-ok — per-load completion closure, same budget exemption as the Txn above
			txn.Done = func(t *bus.Txn) {
				u.inflight--
				if done != nil {
					done(t.Data)
				}
			}
			if b.TryIssue(txn) {
				u.popHead()
				u.inflight++
				u.stats.Transactions++
			}
			return
		}
	}
	if len(u.sending) == 0 {
		return
	}
	c := u.sending[0]
	txn := u.newStoreTxn()
	txn.Addr, txn.Size = c.Addr, c.Size
	txn.Data = append(txn.Data[:0], u.sendData[c.Addr-u.sendBase:][:c.Size]...)
	if b.TryIssue(txn) {
		u.inflight++
		u.sending = u.sending[1:]
		u.stats.Transactions++
		if u.tracer != nil && !u.sendGranted {
			u.sendGranted = true
			u.tracer.UBBusGranted(u.sendJFirst, u.sendJCount)
		}
	} else {
		u.txnFree = append(u.txnFree, txn)
	}
}

// storeTxnComplete matches a completed store transaction to the oldest
// departed entry still in flight and, on its last one, completes the
// entry's journeys.
//
//csb:hotpath
func (u *Buffer) storeTxnComplete() {
	if u.jqLen == 0 {
		return // entry departed before the tracer was attached
	}
	r := &u.jq[u.jqHead]
	r.left--
	if r.left == 0 {
		u.tracer.UBEntryDone(r.first, r.count)
		u.jqHead = (u.jqHead + 1) % len(u.jq)
		u.jqLen--
	}
}

// newStoreTxn returns a write transaction from the free list (or a fresh
// one). Done is pre-wired to recycle the transaction, so steady-state
// store traffic reuses a handful of Txns instead of allocating one per
// chunk.
//
//csb:hotpath
func (u *Buffer) newStoreTxn() *bus.Txn {
	if n := len(u.txnFree); n > 0 {
		t := u.txnFree[n-1]
		u.txnFree = u.txnFree[:n-1]
		t.Start, t.End = 0, 0
		return t
	}
	return &bus.Txn{Write: true, Ordered: true, IO: true, Done: u.onStoreDone} //csb:alloc-ok — cold start: the pool grows until steady state
}
