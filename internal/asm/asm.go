package asm

import (
	"fmt"
	"math"
	"strings"

	"csbsim/internal/isa"
)

// DefaultOrigin is where assembly starts when the source has no leading
// .org directive.
const DefaultOrigin uint64 = 0x10000

// Assemble translates SV9L assembly source into a Program. name is used in
// error messages.
func Assemble(name, text string) (*Program, error) {
	a := &assembler{
		file:    name,
		symbols: make(map[string]uint64),
	}
	if err := a.parse(text); err != nil {
		return nil, err
	}
	if err := a.layout(); err != nil {
		return nil, err
	}
	if err := a.emit(); err != nil {
		return nil, err
	}
	delete(a.symbols, ".") // the location counter is not a real symbol
	entry := a.entry
	if !a.entrySet {
		if v, ok := a.symbols["_start"]; ok {
			entry = v
		} else {
			entry = a.firstAddr
		}
	}
	return &Program{Entry: entry, Chunks: a.chunks, Symbols: a.symbols}, nil
}

type opndKind int

const (
	opndReg opndKind = iota
	opndFReg
	opndPR
	opndMem
	opndExpr
)

type operand struct {
	kind opndKind
	reg  isa.Reg
	freg isa.FReg
	pr   isa.PR
	base isa.Reg // opndMem
	disp expr    // opndMem
	e    expr    // opndExpr
}

type stmt struct {
	line      int
	mn        string // instruction mnemonic, or ""
	ops       []operand
	dir       string // directive without leading dot, or ""
	dirExprs  []expr
	dirFloats []float64
	dirStr    string
	addr      uint64 // assigned in layout
	size      int    // bytes occupied
}

type assembler struct {
	file      string
	stmts     []stmt
	symbols   map[string]uint64
	chunks    []Chunk
	entry     uint64
	entrySet  bool
	firstAddr uint64
}

func (a *assembler) errf(line int, format string, args ...any) error {
	return fmt.Errorf("%s:%d: %s", a.file, line, fmt.Sprintf(format, args...))
}

// ---- parsing ----

func (a *assembler) parse(text string) error {
	lines := strings.Split(text, "\n")
	for li, raw := range lines {
		lineNo := li + 1
		line := strings.TrimSpace(stripComment(raw))
		if line == "" {
			continue
		}
		toks, err := tokenize(line)
		if err != nil {
			return a.errf(lineNo, "%v", err)
		}
		i := 0
		// Leading labels: ident ':'.
		for i+1 < len(toks) && toks[i].kind == tokIdent &&
			toks[i+1].kind == tokPunct && toks[i+1].text == ":" {
			a.stmts = append(a.stmts, stmt{line: lineNo, dir: "@label", dirStr: toks[i].text})
			i += 2
		}
		if i >= len(toks) {
			continue
		}
		if toks[i].kind != tokIdent {
			return a.errf(lineNo, "expected mnemonic or directive, found %s", toks[i])
		}
		word := toks[i].text
		i++
		if strings.HasPrefix(word, ".") && !isMnemonic(word) {
			st, err := a.parseDirective(lineNo, strings.ToLower(word[1:]), toks, i)
			if err != nil {
				return err
			}
			a.stmts = append(a.stmts, st)
			continue
		}
		ops, err := a.parseOperands(lineNo, toks, i)
		if err != nil {
			return err
		}
		a.stmts = append(a.stmts, stmt{line: lineNo, mn: strings.ToLower(word), ops: ops})
	}
	return nil
}

// isMnemonic lets labels like ".RETRY" coexist with directives: a leading-dot
// word followed by a colon was already consumed as a label, so here we only
// need to claim dot-words that are actually instructions (there are none),
// keeping every other dot-word a directive.
func isMnemonic(string) bool { return false }

func (a *assembler) parseDirective(line int, dir string, toks []token, i int) (stmt, error) {
	st := stmt{line: line, dir: dir}
	switch dir {
	case "org", "align", "space", "skip":
		e, err := parseExpr(toks, &i)
		if err != nil {
			return st, a.errf(line, ".%s: %v", dir, err)
		}
		st.dirExprs = []expr{e}
	case "byte", "half", "word", "dword", "xword", "quad":
		for {
			e, err := parseExpr(toks, &i)
			if err != nil {
				return st, a.errf(line, ".%s: %v", dir, err)
			}
			st.dirExprs = append(st.dirExprs, e)
			if i < len(toks) && toks[i].kind == tokPunct && toks[i].text == "," {
				i++
				continue
			}
			break
		}
	case "double", "float":
		for {
			neg := false
			for i < len(toks) && toks[i].kind == tokPunct && toks[i].text == "-" {
				neg = !neg
				i++
			}
			if i >= len(toks) {
				return st, a.errf(line, ".%s: expected float", dir)
			}
			var f float64
			switch toks[i].kind {
			case tokFloat:
				f = toks[i].fnum
			case tokNumber:
				f = float64(toks[i].num)
			default:
				return st, a.errf(line, ".%s: expected float, found %s", dir, toks[i])
			}
			if neg {
				f = -f
			}
			st.dirFloats = append(st.dirFloats, f)
			i++
			if i < len(toks) && toks[i].kind == tokPunct && toks[i].text == "," {
				i++
				continue
			}
			break
		}
	case "ascii", "asciz", "string":
		if i >= len(toks) || toks[i].kind != tokString {
			return st, a.errf(line, ".%s: expected string", dir)
		}
		st.dirStr = toks[i].text
		if dir != "ascii" {
			st.dirStr += "\x00"
		}
		i++
	case "equ", "set":
		if i >= len(toks) || toks[i].kind != tokIdent {
			return st, a.errf(line, ".equ: expected name")
		}
		st.dirStr = toks[i].text
		i++
		if i < len(toks) && toks[i].kind == tokPunct && toks[i].text == "," {
			i++
		}
		e, err := parseExpr(toks, &i)
		if err != nil {
			return st, a.errf(line, ".equ: %v", err)
		}
		st.dirExprs = []expr{e}
		st.dir = "equ"
	case "entry":
		if i >= len(toks) || toks[i].kind != tokIdent {
			return st, a.errf(line, ".entry: expected symbol")
		}
		st.dirStr = toks[i].text
		i++
	case "global", "globl", "text", "data", "section":
		// Accepted for source compatibility; no effect.
		return st, nil
	default:
		return st, a.errf(line, "unknown directive .%s", dir)
	}
	if i < len(toks) {
		return st, a.errf(line, ".%s: trailing tokens starting at %s", dir, toks[i])
	}
	return st, nil
}

func (a *assembler) parseOperands(line int, toks []token, i int) ([]operand, error) {
	var ops []operand
	for i < len(toks) {
		op, ni, err := a.parseOperand(line, toks, i)
		if err != nil {
			return nil, err
		}
		ops = append(ops, op)
		i = ni
		if i < len(toks) {
			if toks[i].kind == tokPunct && toks[i].text == "," {
				i++
				continue
			}
			return nil, a.errf(line, "expected ',', found %s", toks[i])
		}
	}
	return ops, nil
}

func (a *assembler) parseOperand(line int, toks []token, i int) (operand, int, error) {
	t := toks[i]
	switch {
	case t.kind == tokPunct && t.text == "[":
		i++
		if i >= len(toks) || toks[i].kind != tokReg {
			return operand{}, i, a.errf(line, "expected base register after '['")
		}
		r, err := isa.ParseReg(toks[i].text)
		if err != nil {
			return operand{}, i, a.errf(line, "%v", err)
		}
		i++
		op := operand{kind: opndMem, base: r, disp: litExpr(0)}
		if i < len(toks) && toks[i].kind == tokPunct && (toks[i].text == "+" || toks[i].text == "-") {
			e, err := parseExpr(toks, &i)
			if err != nil {
				return operand{}, i, a.errf(line, "bad displacement: %v", err)
			}
			op.disp = e
		}
		if i >= len(toks) || toks[i].kind != tokPunct || toks[i].text != "]" {
			return operand{}, i, a.errf(line, "expected ']'")
		}
		return op, i + 1, nil
	case t.kind == tokReg:
		if r, err := isa.ParseReg(t.text); err == nil {
			return operand{kind: opndReg, reg: r}, i + 1, nil
		}
		if f, err := isa.ParseFReg(t.text); err == nil {
			return operand{kind: opndFReg, freg: f}, i + 1, nil
		}
		if pr, ok := isa.PRByName(t.text); ok {
			return operand{kind: opndPR, pr: pr}, i + 1, nil
		}
		return operand{}, i, a.errf(line, "unknown register %q", t.text)
	default:
		e, err := parseExpr(toks, &i)
		if err != nil {
			return operand{}, i, a.errf(line, "%v", err)
		}
		return operand{kind: opndExpr, e: e}, i, nil
	}
}

// ---- layout (pass 1) ----

func (a *assembler) layout() error {
	loc := DefaultOrigin
	locSet := false
	first := true
	for si := range a.stmts {
		st := &a.stmts[si]
		switch st.dir {
		case "@label":
			if _, dup := a.symbols[st.dirStr]; dup {
				return a.errf(st.line, "duplicate label %q", st.dirStr)
			}
			a.symbols[st.dirStr] = loc
			continue
		case "equ":
			a.symbols["."] = loc
			v, err := st.dirExprs[0].eval(a.symbols)
			if err != nil {
				return a.errf(st.line, ".equ %s: %v (forward references not allowed in .equ)", st.dirStr, err)
			}
			if _, dup := a.symbols[st.dirStr]; dup {
				return a.errf(st.line, "duplicate symbol %q", st.dirStr)
			}
			a.symbols[st.dirStr] = uint64(v)
			continue
		case "org":
			v, err := st.dirExprs[0].eval(a.symbols)
			if err != nil {
				return a.errf(st.line, ".org: %v", err)
			}
			loc = uint64(v)
			locSet = true
			continue
		case "align":
			v, err := st.dirExprs[0].eval(a.symbols)
			if err != nil {
				return a.errf(st.line, ".align: %v", err)
			}
			if v <= 0 || v&(v-1) != 0 {
				return a.errf(st.line, ".align: %d is not a power of two", v)
			}
			st.addr = loc
			pad := (uint64(v) - loc%uint64(v)) % uint64(v)
			st.size = int(pad)
			loc += pad
			continue
		case "entry":
			continue
		case "":
			// instruction below
		default:
			st.addr = loc
			st.size = a.directiveSize(st)
			loc += uint64(st.size)
			continue
		}
		if st.mn == "" {
			continue
		}
		if first || !locSet {
			if first {
				a.firstAddr = loc
				first = false
			}
		}
		st.addr = loc
		st.size = instSize(st.mn)
		loc += uint64(st.size)
	}
	if first {
		a.firstAddr = loc
	}
	// Resolve .entry now that all labels are known.
	for _, st := range a.stmts {
		if st.dir == "entry" {
			v, ok := a.symbols[st.dirStr]
			if !ok {
				return a.errf(st.line, ".entry: undefined symbol %q", st.dirStr)
			}
			a.entry = v
			a.entrySet = true
		}
	}
	return nil
}

func (a *assembler) directiveSize(st *stmt) int {
	switch st.dir {
	case "byte":
		return len(st.dirExprs)
	case "half":
		return 2 * len(st.dirExprs)
	case "word":
		return 4 * len(st.dirExprs)
	case "dword", "xword", "quad":
		return 8 * len(st.dirExprs)
	case "float":
		return 4 * len(st.dirFloats)
	case "double":
		return 8 * len(st.dirFloats)
	case "ascii", "asciz", "string":
		return len(st.dirStr)
	case "space", "skip":
		v, err := st.dirExprs[0].eval(a.symbols)
		if err != nil || v < 0 {
			return 0 // reported during emit
		}
		return int(v)
	}
	return 0
}

// instSize returns the encoded size of a mnemonic in bytes. Only the `set`
// pseudo-instruction expands to two words; everything else is one.
func instSize(mn string) int {
	if mn == "set" || mn == "set64lo" {
		return 2 * isa.InstBytes
	}
	return isa.InstBytes
}

// ---- emission (pass 2) ----

type emitter struct {
	addr  uint64
	bytes []byte
	open  bool
}

func (a *assembler) flushChunk(e *emitter) {
	if e.open && len(e.bytes) > 0 {
		a.chunks = append(a.chunks, Chunk{Addr: e.addr, Data: e.bytes})
	}
	e.bytes = nil
	e.open = false
}

func (a *assembler) emit() error {
	var e emitter
	loc := DefaultOrigin
	start := func(addr uint64) {
		if !e.open {
			e.addr = addr
			e.open = true
		}
	}
	for si := range a.stmts {
		st := &a.stmts[si]
		switch st.dir {
		case "@label", "equ", "entry", "global", "globl", "text", "data", "section":
			continue
		case "org":
			v, _ := st.dirExprs[0].eval(a.symbols)
			a.flushChunk(&e)
			loc = uint64(v)
			continue
		}
		if st.dir != "" {
			start(st.addr)
			if st.addr != loc {
				a.flushChunk(&e)
				start(st.addr)
			}
			a.symbols["."] = st.addr // the location counter
			b, err := a.emitDirective(st)
			if err != nil {
				return err
			}
			e.bytes = append(e.bytes, b...)
			loc = st.addr + uint64(len(b))
			continue
		}
		if st.mn == "" {
			continue
		}
		if st.addr != loc || !e.open {
			a.flushChunk(&e)
			start(st.addr)
		}
		a.symbols["."] = st.addr // the location counter
		insts, err := a.buildInst(st)
		if err != nil {
			return err
		}
		for k, in := range insts {
			w, err := isa.Encode(in)
			if err != nil {
				return a.errf(st.line, "%s: %v", st.mn, err)
			}
			var buf [4]byte
			ByteOrder.PutUint32(buf[:], w)
			e.bytes = append(e.bytes, buf[:]...)
			_ = k
		}
		loc = st.addr + uint64(len(insts)*isa.InstBytes)
		if len(insts)*isa.InstBytes != st.size {
			return a.errf(st.line, "internal: %s sized %d but emitted %d bytes", st.mn, st.size, len(insts)*isa.InstBytes)
		}
	}
	a.flushChunk(&e)
	return nil
}

func (a *assembler) emitDirective(st *stmt) ([]byte, error) {
	var out []byte
	put := func(v uint64, n int) {
		for k := 0; k < n; k++ {
			out = append(out, byte(v>>(8*k)))
		}
	}
	switch st.dir {
	case "byte", "half", "word", "dword", "xword", "quad":
		n := map[string]int{"byte": 1, "half": 2, "word": 4, "dword": 8, "xword": 8, "quad": 8}[st.dir]
		for _, ex := range st.dirExprs {
			v, err := ex.eval(a.symbols)
			if err != nil {
				return nil, a.errf(st.line, ".%s: %v", st.dir, err)
			}
			put(uint64(v), n)
		}
	case "float":
		for _, f := range st.dirFloats {
			put(uint64(math.Float32bits(float32(f))), 4)
		}
	case "double":
		for _, f := range st.dirFloats {
			put(math.Float64bits(f), 8)
		}
	case "ascii", "asciz", "string":
		out = append(out, st.dirStr...)
	case "space", "skip":
		v, err := st.dirExprs[0].eval(a.symbols)
		if err != nil || v < 0 {
			return nil, a.errf(st.line, ".space: invalid size")
		}
		out = make([]byte, v)
	case "align":
		out = make([]byte, st.size)
	default:
		return nil, a.errf(st.line, "unknown directive .%s", st.dir)
	}
	return out, nil
}
