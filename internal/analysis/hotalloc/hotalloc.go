// Package hotalloc flags heap-allocating constructs inside functions
// annotated //csb:hotpath — the per-tick entry points whose zero-alloc
// steady state PR 2 established and TestTickSteadyStateZeroAlloc guards
// dynamically. The analyzer catches regressions at vet time, per call
// site, instead of as an aggregate allocation count.
//
// Flagged constructs: new(T), make(...), &composite-literal, function
// literals (closure allocation), string concatenation and string<->[]byte
// conversions, append with a nil or literal first argument (a freshly
// allocated slice), calls to variadic functions (the argument slice
// allocates), and interface boxing — passing, assigning or returning a
// concrete non-pointer value where an interface is expected.
//
// Escape hatches: arguments of panic(...) are skipped (the panic path is
// off the steady state by definition), and a deliberate slow-path
// allocation line can be annotated //csb:alloc-ok.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"csbsim/internal/analysis"
)

// Analyzer is the hotalloc checker.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "reports heap-allocating constructs in functions annotated //csb:hotpath",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !analysis.FuncPragma(fn, "hotpath") {
				continue
			}
			c := &checker{pass: pass, results: fn.Type.Results}
			c.walk(fn.Body)
		}
	}
	return nil
}

type checker struct {
	pass    *analysis.Pass
	results *ast.FieldList // enclosing function's results, for return boxing
}

func (c *checker) report(n ast.Node, format string, args ...any) {
	if c.pass.Pragma(n.Pos(), "alloc-ok") {
		return
	}
	c.pass.Reportf(n.Pos(), format, args...)
}

// walk visits the hot function body, pruning panic arguments and handled
// subtrees.
func (c *checker) walk(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.report(n, "closure allocates on the hot path; hoist it to a field wired up at construction time")
			return false // its body runs outside the hot path's budget
		case *ast.CallExpr:
			return c.checkCall(n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := unparen(n.X).(*ast.CompositeLit); ok {
					c.report(n, "&composite literal escapes to the heap on the hot path; use a pooled object")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := c.pass.Info.TypeOf(n); t != nil && isString(t) {
					c.report(n, "string concatenation allocates on the hot path")
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if len(n.Lhs) != len(n.Rhs) {
					break
				}
				c.checkBoxing(rhs, c.pass.Info.TypeOf(n.Lhs[i]), "assignment")
			}
		case *ast.ReturnStmt:
			if c.results != nil && len(n.Results) == c.results.NumFields() {
				i := 0
				for _, field := range c.results.List {
					nNames := len(field.Names)
					if nNames == 0 {
						nNames = 1
					}
					for k := 0; k < nNames && i < len(n.Results); k++ {
						c.checkBoxing(n.Results[i], c.pass.Info.TypeOf(field.Type), "return")
						i++
					}
				}
			}
		}
		return true
	})
}

// checkCall handles builtin allocators, conversions, variadic calls and
// argument boxing. It returns false when the subtree must not be
// descended into (panic arguments).
func (c *checker) checkCall(call *ast.CallExpr) bool {
	// Builtins and panic.
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, isBuiltin := c.pass.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch b.Name() {
			case "panic":
				return false // the panic path is off the steady state
			case "new":
				c.report(call, "new allocates on the hot path; use a pooled object")
			case "make":
				c.report(call, "make allocates on the hot path; preallocate at construction time")
			case "append":
				if len(call.Args) > 0 && freshSlice(call.Args[0]) {
					c.report(call, "append to a fresh slice allocates on the hot path; append to a preallocated backing slice")
				}
			}
			return true
		}
	}
	// Conversions.
	if tv, ok := c.pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := c.pass.Info.TypeOf(call)
		from := c.pass.Info.TypeOf(call.Args[0])
		if to != nil && from != nil {
			if (isString(to) && !isString(from)) || (!isString(to) && isString(from)) {
				c.report(call, "string conversion allocates on the hot path")
			}
			c.checkBoxing(call.Args[0], to, "conversion")
		}
		return true
	}
	// Ordinary calls: variadic slice + parameter boxing.
	sig, ok := c.pass.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return true
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis == token.NoPos {
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt != nil {
			c.checkBoxing(arg, pt, "argument")
		}
	}
	if sig.Variadic() && call.Ellipsis == token.NoPos && len(call.Args) >= params.Len() {
		c.report(call, "call to variadic function allocates its argument slice on the hot path")
	}
	return true
}

// checkBoxing reports storing a concrete non-pointer value into an
// interface-typed destination, which heap-allocates the boxed copy.
func (c *checker) checkBoxing(e ast.Expr, dst types.Type, what string) {
	if dst == nil || e == nil {
		return
	}
	if _, isIface := dst.Underlying().(*types.Interface); !isIface {
		return
	}
	src := c.pass.Info.TypeOf(e)
	if src == nil {
		return
	}
	switch src.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Signature, *types.Chan, *types.Map:
		return // stored directly in the interface word, no boxing
	}
	if src == types.Typ[types.UntypedNil] {
		return
	}
	c.report(e, "%s boxes a %s into an interface, allocating on the hot path",
		what, types.TypeString(src, func(p *types.Package) string { return p.Name() }))
}

// freshSlice reports whether e is clearly a newly allocated slice: nil or
// a composite literal.
func freshSlice(e ast.Expr) bool {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		return e.Name == "nil"
	case *ast.CompositeLit:
		return true
	}
	return false
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
