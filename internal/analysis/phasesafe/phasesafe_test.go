package phasesafe_test

import (
	"testing"

	"csbsim/internal/analysis/antest"
	"csbsim/internal/analysis/phasesafe"
)

func TestPhaseSafe(t *testing.T) {
	antest.Run(t, phasesafe.Analyzer, "testdata/phase",
		"csbsim/internal/analysis/phasesafe/fixture")
}
