// Package determinism enforces bit-identical simulation output in the
// packages that compute results: no wall-clock time, no math/rand, and no
// unsorted map iteration whose order can leak into output or statistics.
//
// Two map-iteration idioms are recognized as order-independent and
// allowed without annotation:
//
//   - collect-then-sort: every statement in the loop body appends to a
//     slice (`keys = append(keys, k)`), which callers sort afterwards;
//   - map copy: every statement assigns through a map index
//     (`dst[k] = v`), whose result is the same in any order.
//
// Any other map iteration must either be restructured over sorted keys or
// carry a //csb:orderless pragma on the range line asserting that order
// cannot affect output.
package determinism

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"csbsim/internal/analysis"
)

// Packages lists the import paths whose output must be deterministic.
// Subdirectories are included (prefix match on a path boundary).
var Packages = []string{
	"csbsim/internal/cpu",
	"csbsim/internal/bus",
	"csbsim/internal/cache",
	"csbsim/internal/core",
	"csbsim/internal/uncbuf",
	"csbsim/internal/sim",
	"csbsim/internal/bench",
	"csbsim/internal/fault",
	"csbsim/internal/device",
	"csbsim/internal/obs/counters",
	"csbsim/internal/obs/journey",
	"csbsim/internal/obs/rec",
	"csbsim/internal/obs/telemetry",
	"csbsim/internal/cluster",
	// Covered by the prefix rule above, but listed explicitly: the load
	// generator drives the serving experiments and must replay exactly
	// from a seed (fault.PRNG only, no math/rand, no wall clock).
	"csbsim/internal/cluster/loadgen",
}

// bannedTimeFuncs are the time-package entry points that read the wall
// clock or schedule on it.
var bannedTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"Tick": true, "NewTicker": true, "NewTimer": true, "AfterFunc": true,
	"Sleep": true,
}

// Analyzer is the determinism checker.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "forbids wall-clock time, math/rand and unsorted map iteration in the deterministic simulation packages",
	Run:  run,
}

// InScope reports whether path falls under the deterministic package set.
func InScope(path string) bool {
	for _, p := range Packages {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !InScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(),
					"import of %s in deterministic package %s; seedable randomness must stay out of the simulation core",
					path, pass.Pkg.Path())
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkTimeCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkTimeCall reports calls to wall-clock functions of package time.
func checkTimeCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := pass.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
		return
	}
	if bannedTimeFuncs[obj.Name()] {
		pass.Reportf(call.Pos(),
			"time.%s in deterministic package %s; simulated time must come from cycle counters",
			obj.Name(), pass.Pkg.Path())
	}
}

// checkMapRange reports range statements over maps unless the body is an
// order-independent idiom or the line carries //csb:orderless.
func checkMapRange(pass *analysis.Pass, rs *ast.RangeStmt) {
	t := pass.Info.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	if pass.Pragma(rs.Pos(), "orderless") {
		return
	}
	if orderIndependentBody(pass, rs.Body) {
		return
	}
	pass.Reportf(rs.Pos(),
		"map iteration order is nondeterministic and the loop body is order-sensitive; iterate over sorted keys (or annotate //csb:orderless)")
}

// orderIndependentBody reports whether every statement in body is either a
// slice-collect append or a map-index assignment — the two idioms whose
// result does not depend on iteration order.
func orderIndependentBody(pass *analysis.Pass, body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return true
	}
	for _, st := range body.List {
		as, ok := st.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		if isCollectAppend(pass, as) || isMapIndexAssign(pass, as) {
			continue
		}
		return false
	}
	return true
}

// isCollectAppend matches `x = append(x, ...)` with both x's denoting the
// same variable.
func isCollectAppend(pass *analysis.Pass, as *ast.AssignStmt) bool {
	if as.Tok.String() != "=" {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	return sameVar(pass, as.Lhs[0], call.Args[0])
}

// isMapIndexAssign matches `dst[k] = v` where dst is a map.
func isMapIndexAssign(pass *analysis.Pass, as *ast.AssignStmt) bool {
	if as.Tok.String() != "=" {
		return false
	}
	ix, ok := as.Lhs[0].(*ast.IndexExpr)
	if !ok {
		return false
	}
	t := pass.Info.TypeOf(ix.X)
	if t == nil {
		return false
	}
	_, isMap := t.Underlying().(*types.Map)
	return isMap
}

// sameVar reports whether two expressions denote the same variable (plain
// identifiers only; anything fancier fails safe).
func sameVar(pass *analysis.Pass, a, b ast.Expr) bool {
	ia, ok := a.(*ast.Ident)
	if !ok {
		return false
	}
	ib, ok := b.(*ast.Ident)
	if !ok {
		return false
	}
	oa := pass.Info.ObjectOf(ia)
	return oa != nil && oa == pass.Info.ObjectOf(ib)
}
