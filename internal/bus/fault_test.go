package bus

import "testing"

func TestNackHookRefusesAndCounts(t *testing.T) {
	b := newBus(t, DefaultConfig())
	nacks := 2
	var seen []*Txn
	b.SetNackHook(func(tx *Txn) bool {
		if nacks > 0 {
			nacks--
			seen = append(seen, tx)
			return true
		}
		return false
	})
	txn := &Txn{Addr: 0x1000, Size: 8, Write: true, Data: make([]byte, 8)}
	done := false
	txn.Done = func(*Txn) { done = true }

	// The first two attempts are NACKed; the agent retries as it would
	// after losing arbitration.
	attempts := 0
	for !b.TryIssue(txn) {
		attempts++
		if attempts > 10 {
			t.Fatal("transaction never accepted")
		}
		b.Tick()
	}
	if attempts != 2 {
		t.Errorf("attempts before accept = %d, want 2", attempts)
	}
	if len(seen) != 2 || seen[0] != txn {
		t.Errorf("hook saw %d txns", len(seen))
	}
	b.Drain(100)
	if !done {
		t.Error("transaction never completed after NACKs")
	}
	s := b.Stats()
	if s.Nacks != 2 {
		t.Errorf("stats.Nacks = %d, want 2", s.Nacks)
	}
	if s.Transactions != 1 {
		t.Errorf("stats.Transactions = %d, want 1", s.Transactions)
	}
}

func TestNackHookRemoved(t *testing.T) {
	b := newBus(t, DefaultConfig())
	b.SetNackHook(func(*Txn) bool { return true })
	txn := &Txn{Addr: 0x1000, Size: 8, Write: true, Data: make([]byte, 8)}
	if b.TryIssue(txn) {
		t.Fatal("always-NACK hook let a transaction through")
	}
	b.SetNackHook(nil)
	if !b.TryIssue(txn) {
		t.Fatal("transaction refused after hook removal")
	}
}
