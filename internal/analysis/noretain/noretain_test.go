package noretain_test

import (
	"testing"

	"csbsim/internal/analysis/antest"
	"csbsim/internal/analysis/noretain"
)

func TestTxnRetention(t *testing.T) {
	antest.Run(t, noretain.Analyzer, "testdata/txn",
		"csbsim/internal/analysis/noretain/fixture")
}

// TestLocalPooledType registers a fixture-local unexported type in
// PooledTypes, the same mechanism that covers cpu.uop and cpu.renSnap.
func TestLocalPooledType(t *testing.T) {
	const key = "csbsim/internal/analysis/noretain/fixlocal.snap"
	noretain.PooledTypes[key] = true
	defer delete(noretain.PooledTypes, key)
	antest.Run(t, noretain.Analyzer, "testdata/local",
		"csbsim/internal/analysis/noretain/fixlocal")
}
