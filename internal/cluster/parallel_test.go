package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"csbsim/internal/cluster/ctrace"
	"csbsim/internal/obs/journey"
	"csbsim/internal/obs/telemetry"
	"csbsim/internal/sim"
)

// ringGuest builds a guest that sends `sends` one-word packets (values
// v, v+1, …, each from its own packet-buffer slot, on the default route)
// and then drains `recvs` inbound words, storing their sum at 0x20000.
func ringGuest(v, sends, recvs int) string {
	var b strings.Builder
	b.WriteString("\t.equ NICREG, 0x40000000\n\t.equ PKTBUF, 0x40001000\n")
	b.WriteString("\tset NICREG, %o0\n\tset PKTBUF, %o1\n")
	b.WriteString("\tset 8, %g4\n\tsll %g4, 48, %g4\n")
	fmt.Fprintf(&b, "\tset %d, %%g6\n", v)
	if sends > 0 {
		fmt.Fprintf(&b, "\tset %d, %%g7\n", sends)
		b.WriteString("\tclr %o3\n")
		b.WriteString("send:\tadd %o1, %o3, %o4\n")
		b.WriteString("\tstx %g6, [%o4]\n\tmembar\n")
		b.WriteString("\tor %g4, %o3, %g3\n")
		b.WriteString("\tstx %g3, [%o0]\n")
		b.WriteString("\tadd %o3, 8, %o3\n\tinc %g6\n")
		b.WriteString("\tsubcc %g7, 1, %g7\n\tbnz send\n")
	}
	if recvs > 0 {
		fmt.Fprintf(&b, "\tset %d, %%g7\n", recvs)
		b.WriteString("\tclr %g5\n")
		fmt.Fprintf(&b, "wait:\tldx [%%o0+0x28], %%g1\n\tcmp %%g1, %d\n\tbl wait\n", recvs)
		b.WriteString("drain:\tldx [%o0+0x20], %g2\n\tadd %g5, %g2, %g5\n")
		b.WriteString("\tsubcc %g7, 1, %g7\n\tbnz drain\n")
		b.WriteString("\tset 0x20000, %o2\n\tstx %g5, [%o2]\n\tmembar\n")
	}
	b.WriteString("\thalt\n")
	return b.String()
}

// sumOf is the value ringGuest's receiver stores: the sum of `count`
// consecutive values starting at base.
func sumOf(base, count int) uint64 {
	s := 0
	for i := 0; i < count; i++ {
		s += base + i
	}
	return uint64(s)
}

// ringSnapshot is everything the determinism guard compares byte-wise.
type ringSnapshot struct {
	cycle uint64
	dump  []byte // merged ctrace dump
	stats []byte // per-node machine stats, JSON
	reg   []byte // cluster registry snapshot, JSON
}

// runRing builds the guard workload — a 4-node traced ring with per-link
// bandwidth, queue depth and RX staging all exercised, each node sending
// 3 packets clockwise and receiving 3 — runs it with the given engine,
// verifies delivery, and snapshots every observable output.
func runRing(t *testing.T, run func(*Cluster) error) ringSnapshot {
	t.Helper()
	const sends = 3
	cfg := DefaultConfig()
	cfg.Nodes = 4
	cfg.Topology = TopoRing
	cfg.WireLatency = 90
	cfg.Bandwidth = 2
	cfg.LinkDepth = 8
	cfg.RxEnqueueDelay = 13
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range c.Nodes() {
		n.MapIO(false)
		if _, err := n.M.LoadSource("ring.s", ringGuest(100*(i+1), sends, sends)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.AttachTrace(journey.DefaultConfig(), ctrace.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if err := run(c); err != nil {
		t.Fatal(err)
	}
	for i, n := range c.Nodes() {
		from := (i + 3) % 4
		want := sumOf(100*(from+1), sends)
		if got := n.M.RAM.ReadUint(0x20000, 8); got != want {
			t.Errorf("node %s received sum %d, want %d", n.Name(), got, want)
		}
	}
	var snap ringSnapshot
	snap.cycle = c.Cycle()
	var dump bytes.Buffer
	if _, err := c.Trace().WriteTo(&dump); err != nil {
		t.Fatal(err)
	}
	snap.dump = dump.Bytes()
	var stats []sim.Stats
	for _, n := range c.Nodes() {
		stats = append(stats, n.M.Stats())
	}
	if snap.stats, err = json.Marshal(stats); err != nil {
		t.Fatal(err)
	}
	if snap.reg, err = json.Marshal(c.Registry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestParallelMatchesSequential is the determinism guard (the PR's
// acceptance check): the goroutine-per-node engine must produce
// byte-identical trace dumps, machine stats and counter snapshots to the
// inline sequential reference, and repeated parallel runs must be
// byte-identical to each other.
func TestParallelMatchesSequential(t *testing.T) {
	seq := runRing(t, func(c *Cluster) error { return c.RunSequentialRef(2_000_000) })
	par := runRing(t, func(c *Cluster) error { return c.RunParallel(2_000_000) })
	par2 := runRing(t, func(c *Cluster) error { return c.RunParallel(2_000_000) })

	if seq.cycle != par.cycle {
		t.Errorf("final cycle: sequential %d, parallel %d", seq.cycle, par.cycle)
	}
	check := func(what string, a, b []byte) {
		t.Helper()
		if !bytes.Equal(a, b) {
			t.Errorf("%s differ:\n%s\n---- vs ----\n%s", what, a, b)
		}
	}
	check("trace dumps (seq vs par)", seq.dump, par.dump)
	check("machine stats (seq vs par)", seq.stats, par.stats)
	check("registry snapshots (seq vs par)", seq.reg, par.reg)
	check("trace dumps (par vs par)", par.dump, par2.dump)
	check("machine stats (par vs par)", par.stats, par2.stats)
	check("registry snapshots (par vs par)", par.reg, par2.reg)

	var d ctrace.Dump
	if err := json.Unmarshal(seq.dump, &d); err != nil {
		t.Fatal(err)
	}
	if d.Started != 12 || d.Completed != 12 {
		t.Errorf("dump started=%d completed=%d, want 12/12", d.Started, d.Completed)
	}
}

// TestParallelMatchesLockstep checks the two engines agree functionally
// (delivered payloads, span counts) on the same ring workload — the
// engines barrier on different schedules, so final cycle counts may
// differ, but what the guests observe may not.
func TestParallelMatchesLockstep(t *testing.T) {
	lock := runRing(t, func(c *Cluster) error { return c.Run(2_000_000) })
	par := runRing(t, func(c *Cluster) error { return c.RunParallel(2_000_000) })
	var dl, dp ctrace.Dump
	if err := json.Unmarshal(lock.dump, &dl); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(par.dump, &dp); err != nil {
		t.Fatal(err)
	}
	if dl.Completed != dp.Completed || dl.Started != dp.Started {
		t.Errorf("lockstep %d/%d spans vs parallel %d/%d",
			dl.Started, dl.Completed, dp.Started, dp.Completed)
	}
}

// TestParallelZeroLatencyRejected: the windowed engine has no lookahead
// at zero link latency and must refuse to run rather than go wrong.
func TestParallelZeroLatencyRejected(t *testing.T) {
	c := newCluster(t, 0)
	if err := c.RunParallel(1000); err == nil {
		t.Fatal("zero-latency link accepted by the windowed engine")
	}
}

// TestParallelNodeChurn runs an 8-node ring where nodes send different
// packet counts and halt at staggered times — under -race this covers
// worker goroutines freezing and thawing around barriers.
func TestParallelNodeChurn(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 8
	cfg.Topology = TopoRing
	cfg.WireLatency = 40
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := func(i int) int { return i%3 + 1 }
	for i, n := range c.Nodes() {
		n.MapIO(false)
		src := ringGuest(10*(i+1), counts(i), counts((i+7)%8))
		if _, err := n.M.LoadSource("churn.s", src); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.RunParallel(2_000_000); err != nil {
		t.Fatal(err)
	}
	for i, n := range c.Nodes() {
		from := (i + 7) % 8
		want := sumOf(10*(from+1), counts(from))
		if got := n.M.RAM.ReadUint(0x20000, 8); got != want {
			t.Errorf("node %s received sum %d, want %d", n.Name(), got, want)
		}
	}
}

// TestParallelAbortFlushesObs: a faulting node under the parallel engine
// aborts the run with the node named in the error, and the abort path
// still flushes a final telemetry frame and a partial trace dump even
// though a sibling node is wedged in an infinite poll.
func TestParallelAbortFlushesObs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 3
	cfg.WireLatency = 50_000 // packet still on the wire at fault time
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range c.Nodes() {
		n.MapIO(false)
	}
	if _, err := c.AttachTrace(journey.DefaultConfig(), ctrace.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	s := telemetry.New()
	if err := c.AttachTelemetry(s, 100_000_000); err != nil { // period longer than the run
		t.Fatal(err)
	}
	// Node 0 sends (default route: node 1), spins past its NIC transmit,
	// then faults; node 1 polls forever for a packet still crossing the
	// wire; node 2 polls forever for a packet that never comes.
	bad := `
	.equ NICREG, 0x40000000
	.equ PKTBUF, 0x40001000
	set NICREG, %o0
	set PKTBUF, %o1
	set 1, %g1
	stx %g1, [%o1]
	membar
	set 8, %g4
	sll %g4, 48, %g4
	stx %g4, [%o0]
	membar
	set 500, %g5
spin:	dec %g5
	tst %g5
	bnz spin
	set 0x70000000, %o1
	ldx [%o1], %g1
	halt
`
	if _, err := c.Node(0).M.LoadSource("bad.s", bad); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 3; i++ {
		if _, err := c.Node(i).M.LoadSource("wedge.s", ringGuest(0, 0, 1)); err != nil {
			t.Fatal(err)
		}
	}
	err = c.RunParallel(10_000_000)
	if err == nil {
		t.Fatal("expected node fault")
	}
	if !strings.Contains(err.Error(), "n0") {
		t.Errorf("error does not name the faulting node: %v", err)
	}
	if s.Snapshot() == nil {
		t.Fatal("no telemetry frame flushed on the abort path")
	}
	spans := c.Trace().Retained()
	if len(spans) != 1 || spans[0].Done {
		t.Fatalf("expected one partial span, got %+v", spans)
	}
}

// TestParallelTelemetryUnderLoad publishes telemetry frames from the
// parallel engine while a live SSE subscriber consumes the stream — the
// cross-goroutine surface the -race job watches.
func TestParallelTelemetryUnderLoad(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 4
	cfg.Topology = TopoRing
	cfg.WireLatency = 60
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range c.Nodes() {
		n.MapIO(false)
		if _, err := n.M.LoadSource("ring.s", ringGuest(10*(i+1), 2, 2)); err != nil {
			t.Fatal(err)
		}
	}
	s := telemetry.New()
	if err := c.AttachTelemetry(s, 50); err != nil {
		t.Fatal(err)
	}
	addr, stop, err := s.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	// Prime one frame so the SSE connect below gets its response headers
	// immediately (the handler flushes on the first event).
	s.Publish(0)
	resp, err := http.Get("http://" + addr + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	frames := make(chan telemetry.Frame, 1024)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var f telemetry.Frame
			if json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &f) == nil {
				select {
				case frames <- f:
				default:
				}
			}
		}
	}()

	if err := c.RunParallel(2_000_000); err != nil {
		t.Fatal(err)
	}
	f := <-frames
	for _, name := range []string{"n0", "n3", "cluster"} {
		if f.Nodes[name] == nil {
			t.Errorf("streamed frame missing node %q", name)
		}
	}
}

// TestTxDestSteering: a guest writing RegTxDest overrides the mesh
// default route — node 0 sends to node 2 directly, node 1 sees nothing.
func TestTxDestSteering(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 3
	cfg.WireLatency = 40
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range c.Nodes() {
		n.MapIO(false)
	}
	steer := `
	.equ NICREG, 0x40000000
	.equ PKTBUF, 0x40001000
	set NICREG, %o0
	set PKTBUF, %o1
	set 0x77, %g1
	stx %g1, [%o1]
	membar
	set 2, %g2
	stx %g2, [%o0+0x30]
	set 8, %g4
	sll %g4, 48, %g4
	stx %g4, [%o0]
	membar
	halt
`
	if _, err := c.Node(0).M.LoadSource("steer.s", steer); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Node(1).M.LoadSource("idle.s", "halt\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Node(2).M.LoadSource("recv.s", ringGuest(0, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := c.RunParallel(1_000_000); err != nil {
		t.Fatal(err)
	}
	if got := c.Node(2).M.RAM.ReadUint(0x20000, 8); got != 0x77 {
		t.Errorf("steered packet: node 2 got %#x, want 0x77", got)
	}
	if got := c.Node(1).NIC.RxHighWater(); got != 0 {
		t.Errorf("default-route node 1 saw %d RX words, want 0", got)
	}
}

// TestStarTopologyRouting: leaves default-route to the hub; the hub must
// steer, and an unsteered hub packet is dropped and counted.
func TestStarTopologyRouting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 4
	cfg.Topology = TopoStar
	cfg.WireLatency = 40
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.DefaultRoute(0); got != -1 {
		t.Errorf("star hub default route = %d, want -1 (must steer)", got)
	}
	for i := 1; i < 4; i++ {
		if got := c.DefaultRoute(i); got != 0 {
			t.Errorf("leaf %d default route = %d, want hub", i, got)
		}
		if _, ok := c.Link(i, 0); !ok {
			t.Errorf("leaf %d has no hub link", i)
		}
	}
	if _, ok := c.Link(1, 2); ok {
		t.Error("star leaves must not be directly linked")
	}
	for _, n := range c.Nodes() {
		n.MapIO(false)
	}
	c.AttachCounters()
	// Leaf 1 sends one packet on the default route (the hub picks it up);
	// the hub sends one packet with no steering — dropped.
	if _, err := c.Node(0).M.LoadSource("hub.s", ringGuest(9, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Node(1).M.LoadSource("leaf.s", ringGuest(5, 1, 0)); err != nil {
		t.Fatal(err)
	}
	for i := 2; i < 4; i++ {
		if _, err := c.Node(i).M.LoadSource("idle.s", "halt\n"); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.RunParallel(1_000_000); err != nil {
		t.Fatal(err)
	}
	if got := c.Node(0).M.RAM.ReadUint(0x20000, 8); got != 5 {
		t.Errorf("hub received %d, want 5", got)
	}
	snap := c.Registry().Snapshot()
	if got := snap.Counters["cluster/route_drops"]; got != 1 {
		t.Errorf("route_drops = %d, want 1 (unsteered hub packet)", got)
	}
}

// TestLinkBandwidthSerializes: a finite-bandwidth link stretches delivery
// of back-to-back packets relative to an infinitely fast one.
func TestLinkBandwidthSerializes(t *testing.T) {
	run := func(cpw uint64) uint64 {
		cfg := DefaultConfig()
		cfg.WireLatency = 20
		cfg.Bandwidth = cpw
		c, err := NewPair(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.Node(0).MapIO(false)
		c.Node(1).MapIO(false)
		if _, err := c.Node(0).M.LoadSource("send.s", ringGuest(1, 6, 0)); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Node(1).M.LoadSource("recv.s", ringGuest(0, 0, 6)); err != nil {
			t.Fatal(err)
		}
		if err := c.RunParallel(1_000_000); err != nil {
			t.Fatal(err)
		}
		return c.Cycle()
	}
	fast := run(0)
	slow := run(400)
	if slow < fast+400 {
		t.Errorf("bandwidth not honored: %d vs %d cycles", fast, slow)
	}
}

// TestLinkDepthDrops: a depth-1 link drops the excess of a burst and the
// drop surfaces in cluster/link_drops.
func TestLinkDepthDrops(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WireLatency = 5000 // long enough that the burst overlaps in flight
	cfg.LinkDepth = 1
	c, err := NewPair(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Node(0).MapIO(false)
	c.Node(1).MapIO(false)
	c.AttachCounters()
	if _, err := c.Node(0).M.LoadSource("send.s", ringGuest(1, 3, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Node(1).M.LoadSource("recv.s", ringGuest(0, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := c.RunParallel(1_000_000); err != nil {
		t.Fatal(err)
	}
	snap := c.Registry().Snapshot()
	if got := snap.Counters["cluster/link_drops"]; got != 2 {
		t.Errorf("link_drops = %d, want 2", got)
	}
	if got := c.Node(1).M.RAM.ReadUint(0x20000, 8); got != 1 {
		t.Errorf("survivor packet = %d, want 1", got)
	}
}

// TestSetLinkOverride: per-link latency overrides hold, and overriding a
// non-edge fails.
func TestSetLinkOverride(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 4
	cfg.Topology = TopoRing
	cfg.WireLatency = 30
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetLink(0, 1, LinkConfig{Latency: 900}); err != nil {
		t.Fatal(err)
	}
	if lc, ok := c.Link(0, 1); !ok || lc.Latency != 900 {
		t.Errorf("override not applied: %+v", lc)
	}
	if lc, ok := c.Link(1, 0); !ok || lc.Latency != 30 {
		t.Errorf("reverse direction touched: %+v", lc)
	}
	if err := c.SetLink(0, 2, LinkConfig{Latency: 1}); err == nil {
		t.Error("SetLink accepted a non-edge of the ring")
	}
	if err := c.SetLink(0, 9, LinkConfig{}); err == nil {
		t.Error("SetLink accepted an out-of-range node")
	}
}
