package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Integer register aliases following the SPARC convention: g0–g7 are the
// globals (g0 reads as zero), o0–o7 the outs, l0–l7 the locals, i0–i7 the
// ins. SV9L has no register windows, so these are fixed names for r0–r31.
const (
	RegZero Reg = 0  // g0
	RegSP   Reg = 14 // o6, conventional stack pointer
	RegRA   Reg = 15 // o7, conventional return address
	RegFP   Reg = 30 // i6, conventional frame pointer
)

// RegName returns the canonical assembly name for an integer register.
func RegName(r Reg) string {
	switch {
	case r < 8:
		return fmt.Sprintf("%%g%d", r)
	case r < 16:
		return fmt.Sprintf("%%o%d", r-8)
	case r < 24:
		return fmt.Sprintf("%%l%d", r-16)
	case r < 32:
		return fmt.Sprintf("%%i%d", r-24)
	}
	return fmt.Sprintf("%%r%d", r)
}

// FRegName returns the assembly name for a floating-point register.
func FRegName(r FReg) string { return fmt.Sprintf("%%f%d", r) }

// ParseReg parses an integer register name. Accepted forms: %r0–%r31,
// %g0–%g7, %o0–%o7, %l0–%l7, %i0–%i7, %sp, %fp (the leading % is optional).
func ParseReg(s string) (Reg, error) {
	t := strings.TrimPrefix(strings.ToLower(s), "%")
	switch t {
	case "sp":
		return RegSP, nil
	case "fp":
		return RegFP, nil
	case "zero":
		return RegZero, nil
	}
	if len(t) < 2 {
		return 0, fmt.Errorf("invalid register %q", s)
	}
	n, err := strconv.Atoi(t[1:])
	if err != nil {
		return 0, fmt.Errorf("invalid register %q", s)
	}
	var base int
	switch t[0] {
	case 'r':
		if n < 0 || n > 31 {
			return 0, fmt.Errorf("register %q out of range", s)
		}
		return Reg(n), nil
	case 'g':
		base = 0
	case 'o':
		base = 8
	case 'l':
		base = 16
	case 'i':
		base = 24
	default:
		return 0, fmt.Errorf("invalid register %q", s)
	}
	if n < 0 || n > 7 {
		return 0, fmt.Errorf("register %q out of range", s)
	}
	return Reg(base + n), nil
}

// ParseFReg parses a floating-point register name %f0–%f31.
func ParseFReg(s string) (FReg, error) {
	t := strings.TrimPrefix(strings.ToLower(s), "%")
	if len(t) < 2 || t[0] != 'f' {
		return 0, fmt.Errorf("invalid fp register %q", s)
	}
	n, err := strconv.Atoi(t[1:])
	if err != nil || n < 0 || n > 31 {
		return 0, fmt.Errorf("invalid fp register %q", s)
	}
	return FReg(n), nil
}
