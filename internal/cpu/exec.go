package cpu

import (
	"math"

	"csbsim/internal/isa"
)

// ccWriters marks opcodes that update the integer condition codes.
func writesCC(op isa.Op) bool {
	switch op {
	case isa.OpADDCC, isa.OpSUBCC, isa.OpANDCC, isa.OpORCC,
		isa.OpADDCCI, isa.OpSUBCCI, isa.OpANDCCI, isa.OpORCCI, isa.OpFCMP:
		return true
	}
	return false
}

// latencyFor returns the execution latency for a functional-unit op.
func (c *CPU) latencyFor(op isa.Op) int {
	switch op.Class() {
	case isa.ClassIntMul:
		return c.cfg.MulLatency
	case isa.ClassFPU:
		if op == isa.OpFDIV {
			return c.cfg.FPDivLatency
		}
		return c.cfg.FPLatency
	case isa.ClassBranch:
		return c.cfg.IntLatency
	default:
		return c.cfg.IntLatency
	}
}

// execute computes a functional-unit uop's result, flags and branch
// outcome from its (ready) operands.
func (c *CPU) execute(u *uop) {
	in := u.inst
	a := u.val1()
	b := u.val2()
	if in.Op.HasImm() {
		b = uint64(in.Imm)
	}
	switch in.Op {
	case isa.OpADD, isa.OpADDI:
		u.result = a + b
	case isa.OpSUB, isa.OpSUBI:
		u.result = a - b
	case isa.OpAND, isa.OpANDI:
		u.result = a & b
	case isa.OpOR, isa.OpORI:
		u.result = a | b
	case isa.OpXOR, isa.OpXORI:
		u.result = a ^ b
	case isa.OpSLL, isa.OpSLLI:
		u.result = a << (b & 63)
	case isa.OpSRL, isa.OpSRLI:
		u.result = a >> (b & 63)
	case isa.OpSRA, isa.OpSRAI:
		u.result = uint64(int64(a) >> (b & 63))
	case isa.OpMUL, isa.OpMULI:
		u.result = a * b

	case isa.OpADDCC, isa.OpADDCCI:
		u.result = a + b
		u.flags = isa.FlagsFromAdd(a, b, u.result)
	case isa.OpSUBCC, isa.OpSUBCCI:
		u.result = a - b
		u.flags = isa.FlagsFromSub(a, b, u.result)
	case isa.OpANDCC, isa.OpANDCCI:
		u.result = a & b
		u.flags = isa.FlagsFromLogic(u.result)
	case isa.OpORCC, isa.OpORCCI:
		u.result = a | b
		u.flags = isa.FlagsFromLogic(u.result)

	case isa.OpLUI:
		u.result = uint64(in.Imm) << 13

	case isa.OpBR:
		taken := in.Cond.Eval(u.cc())
		if taken {
			u.actualNext = u.pc + 4 + uint64(int64(4)*in.Imm)
		} else {
			u.actualNext = u.pc + 4
		}
		u.resolved = true
	case isa.OpJAL:
		u.result = u.pc + 4
		u.actualNext = u.pc + 4 + uint64(int64(4)*in.Imm)
		u.resolved = true
	case isa.OpJALR:
		u.result = u.pc + 4
		u.actualNext = (a + uint64(in.Imm)) &^ 3
		u.resolved = true

	case isa.OpFADD:
		u.result = math.Float64bits(math.Float64frombits(a) + math.Float64frombits(b))
	case isa.OpFSUB:
		u.result = math.Float64bits(math.Float64frombits(a) - math.Float64frombits(b))
	case isa.OpFMUL:
		u.result = math.Float64bits(math.Float64frombits(a) * math.Float64frombits(b))
	case isa.OpFDIV:
		u.result = math.Float64bits(math.Float64frombits(a) / math.Float64frombits(b))
	case isa.OpFMOV, isa.OpMOVR2F, isa.OpMOVF2R:
		u.result = a
	case isa.OpFNEG:
		u.result = math.Float64bits(-math.Float64frombits(a))
	case isa.OpFITOD:
		u.result = math.Float64bits(float64(int64(a)))
	case isa.OpFDTOI:
		u.result = uint64(int64(math.Float64frombits(a)))
	case isa.OpFCMP:
		x, y := math.Float64frombits(a), math.Float64frombits(u.val2())
		u.flags = isa.Flags{Z: x == y, N: x < y}

	case isa.OpNOP:
		// nothing
	}
	c.markDone(u)
}
