package csbsim_test

import (
	"fmt"
	"log"
	"strings"
	"testing"

	"csbsim"
)

// TestPublicAPISurface drives the whole facade: build, map, assemble,
// run, trace, stats.
func TestPublicAPISurface(t *testing.T) {
	m, err := csbsim.NewMachine(csbsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m.MapRange(0x4000_0000, 1<<16, csbsim.KindCombining)

	var traced strings.Builder
	rec := csbsim.NewTrace(&traced, 64)
	rec.Attach(m.CPU)

	prog, err := csbsim.Assemble("api.s", `
	set 0x40000000, %o1
	mov 9, %g1
	mov 1, %l4
	stx %g1, [%o1]
	swap [%o1], %l4
	halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(prog); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if err := m.Drain(100_000); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.CSB.FlushOK != 1 {
		t.Errorf("flushes = %d", s.CSB.FlushOK)
	}
	if rec.Count() == 0 || !strings.Contains(traced.String(), "swap") {
		t.Error("trace did not capture the swap")
	}
	if got := m.RAM.ReadUint(0x4000_0000, 8); got != 9 {
		t.Errorf("data = %d", got)
	}
	if rep := s.Report(); !strings.Contains(rep, "csb:") {
		t.Error("report missing CSB section")
	}
}

func TestFigureIDsResolve(t *testing.T) {
	if testing.Short() {
		t.Skip("figure regeneration is slow-ish")
	}
	r, err := csbsim.Figure("5a")
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "5a" || len(r.Series) == 0 {
		t.Errorf("figure = %+v", r)
	}
	table := csbsim.FormatFigure(r)
	if !strings.Contains(table, "CSB") {
		t.Error("table missing CSB series")
	}
	if csv := csbsim.FormatFigureCSV(r); !strings.Contains(csv, "scheme") {
		t.Error("CSV missing header")
	}
	if _, err := csbsim.Figure("nope"); err == nil {
		t.Error("bad figure ID accepted")
	}
}

func TestKernelViaFacade(t *testing.T) {
	m, err := csbsim.NewMachine(csbsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	k := csbsim.NewKernel(m, 1000)
	prog, err := csbsim.Assemble("p.s", `
	mov 42, %o0
	trap 2
	halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Spawn("p", 1, prog); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if got := m.Console(); got != "42" {
		t.Errorf("console = %q", got)
	}
}

func TestNICViaFacade(t *testing.T) {
	m, err := csbsim.NewMachine(csbsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	nic := csbsim.NewNIC(csbsim.DefaultNICConfig(), 0x4000_0000)
	if err := m.AddDevice(0x4000_0000, csbsim.NICRegionSize, "nic", nic, nic); err != nil {
		t.Fatal(err)
	}
	nic.Deliver(5)
	if nic.RxPending() != 1 {
		t.Error("deliver failed")
	}
}

// ExampleNewMachine runs the smallest possible CSB sequence through the
// public API.
func ExampleNewMachine() {
	m, err := csbsim.NewMachine(csbsim.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	// Stores to combining pages are captured by the conditional store
	// buffer; a swap to them is the conditional flush (paper §3).
	m.MapRange(0x4000_0000, 1<<16, csbsim.KindCombining)
	_, err = m.LoadSource("hello.s", `
	set 0x40000000, %o1
	mov 7, %g1
retry:	mov 2, %l4              ! expected store count
	stx %g1, [%o1]
	stx %g1, [%o1+8]
	swap [%o1], %l4         ! conditional flush
	cmp %l4, 2
	bnz retry               ! (never taken here: single process)
	halt
`)
	if err != nil {
		log.Fatal(err)
	}
	if err := m.Run(1_000_000); err != nil {
		log.Fatal(err)
	}
	if err := m.Drain(100_000); err != nil {
		log.Fatal(err)
	}
	s := m.Stats()
	fmt.Printf("flushes: %d ok, %d failed; bursts: %d\n",
		s.CSB.FlushOK, s.CSB.FlushFail, s.CSB.Bursts)
	// Output: flushes: 1 ok, 0 failed; bursts: 1
}

// ExampleAssemble shows the assembler's SPARC-flavored syntax.
func ExampleAssemble() {
	prog, err := csbsim.Assemble("demo.s", `
	.equ COUNT, 3
	mov COUNT, %g1
loop:	subcc %g1, 1, %g1
	bnz loop
	halt
`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d bytes at %#x\n", prog.Size(), prog.Entry)
	// Output: 16 bytes at 0x10000
}
