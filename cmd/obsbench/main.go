// Command obsbench measures the runtime cost of the observability layer:
// it runs the example workloads with hooks disabled, with the Perfetto
// exporter plus metrics sampler attached, and with the store-journey
// tracer plus unified counter registry attached, and reports simulated
// cycles and wall-clock time for each as JSON (see
// BENCH_observability.json for a recorded baseline).
//
// Cluster workloads additionally run with the PR 6 cross-node layer
// (distributed wire tracing + live telemetry publishing) attached, and
// once more with the flight recorder + SLO engine rolling windows on top
// of that stack. -gate FILE re-reads a recorded report and fails if the
// cluster-trace or recorder overhead regressed past
// -max-cluster-overhead / -max-recorder-overhead percent — the CI
// regression gates.
//
// Usage:
//
//	obsbench [-reps N] > BENCH_observability.json
//	obsbench -gate BENCH_observability.json -max-cluster-overhead 10 -max-recorder-overhead 10
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"csbsim/internal/bench"
	"csbsim/internal/cluster"
	"csbsim/internal/cluster/ctrace"
	"csbsim/internal/device"
	"csbsim/internal/mem"
	"csbsim/internal/obs"
	"csbsim/internal/obs/journey"
	"csbsim/internal/obs/rec"
	"csbsim/internal/obs/telemetry"
	"csbsim/internal/sim"
)

// result records one workload's cost per instrumentation mode.
type result struct {
	Workload            string  `json:"workload"`
	Cycles              uint64  `json:"cycles"`
	WallOffNs           int64   `json:"wall_ns_hooks_off"`
	WallOnNs            int64   `json:"wall_ns_hooks_on"`
	WallJourneysNs      int64   `json:"wall_ns_journeys_on"`
	WallClusterTraceNs  int64   `json:"wall_ns_cluster_trace,omitempty"`
	WallRecorderNs      int64   `json:"wall_ns_recorder_on,omitempty"`
	OverheadPct         float64 `json:"hooks_on_overhead_pct"`
	JourneysOverheadPct float64 `json:"journeys_overhead_pct"`
	ClusterTracePct     float64 `json:"cluster_trace_overhead_pct,omitempty"`
	RecorderPct         float64 `json:"recorder_overhead_pct,omitempty"`
	Insts               uint64  `json:"instructions"`
}

type report struct {
	Description string   `json:"description"`
	Reps        int      `json:"reps"`
	Results     []result `json:"results"`
}

// mode selects the instrumentation attached to a workload's machines.
type mode int

const (
	modeOff          mode = iota // no hooks
	modeHooks                    // Perfetto exporter + metrics sampler
	modeJourneys                 // journey tracer + unified counter registry
	modeClusterTrace             // distributed wire tracing + telemetry publishing (cluster workloads only)
	modeRecorder                 // cluster trace + flight recorder with an SLO attached (cluster workloads only)
)

// workload builds a fresh machine-or-cluster, optionally instruments it,
// runs it to completion, and returns (cycles, retired instructions,
// wall time of the run itself — construction and assembly excluded).
type workload struct {
	name string
	run  func(md mode) (uint64, uint64, time.Duration, error)
	// cluster workloads additionally run modeClusterTrace
	cluster bool
}

func main() {
	reps := flag.Int("reps", 5, "repetitions per configuration (best wall time wins)")
	gate := flag.String("gate", "", "read a recorded report from FILE and gate on its overheads instead of benchmarking")
	maxCluster := flag.Float64("max-cluster-overhead", 10, "with -gate: fail if cluster_trace_overhead_pct exceeds this")
	maxRecorder := flag.Float64("max-recorder-overhead", 10, "with -gate: fail if recorder_overhead_pct exceeds this")
	flag.Parse()

	if *gate != "" {
		if err := runGate(*gate, *maxCluster, *maxRecorder); err != nil {
			fmt.Fprintln(os.Stderr, "obsbench:", err)
			os.Exit(1)
		}
		return
	}

	workloads := []workload{
		{name: "csb_stores", run: func(md mode) (uint64, uint64, time.Duration, error) {
			return runStores(true, md)
		}},
		{name: "uncached_stores", run: func(md mode) (uint64, uint64, time.Duration, error) {
			return runStores(false, md)
		}},
		{name: "pingpong_csb", run: func(md mode) (uint64, uint64, time.Duration, error) {
			return runPingPong(md)
		}, cluster: true},
		{name: "piodma_dma_send", run: func(md mode) (uint64, uint64, time.Duration, error) {
			return runMessageSend(md)
		}},
	}

	rep := report{
		Description: "observability overhead: example workloads with hooks off vs Perfetto+metrics attached vs journey tracer+counter registry attached; cluster workloads also run with distributed wire tracing+telemetry attached, and again with the flight recorder + SLO engine on top",
		Reps:        *reps,
	}
	for _, w := range workloads {
		var r result
		r.Workload = w.name
		modes := []mode{modeOff, modeHooks, modeJourneys}
		if w.cluster {
			modes = append(modes, modeClusterTrace, modeRecorder)
		}
		// Modes are interleaved round-robin (not run in blocks) so machine
		// load drifting over the benchmark biases every mode equally
		// instead of penalizing whichever mode ran last.
		best := make(map[mode]time.Duration, len(modes))
		for _, md := range modes {
			best[md] = time.Duration(1<<63 - 1)
		}
		for i := 0; i < *reps; i++ {
			for _, md := range modes {
				cycles, insts, elapsed, err := w.run(md)
				if err != nil {
					fmt.Fprintf(os.Stderr, "obsbench: %s: %v\n", w.name, err)
					os.Exit(1)
				}
				if elapsed < best[md] {
					best[md] = elapsed
				}
				r.Cycles, r.Insts = cycles, insts
			}
		}
		r.WallOffNs = best[modeOff].Nanoseconds()
		r.WallOnNs = best[modeHooks].Nanoseconds()
		r.WallJourneysNs = best[modeJourneys].Nanoseconds()
		if w.cluster {
			r.WallClusterTraceNs = best[modeClusterTrace].Nanoseconds()
			r.WallRecorderNs = best[modeRecorder].Nanoseconds()
		}
		if r.WallOffNs > 0 {
			r.OverheadPct = 100 * float64(r.WallOnNs-r.WallOffNs) / float64(r.WallOffNs)
			r.JourneysOverheadPct = 100 * float64(r.WallJourneysNs-r.WallOffNs) / float64(r.WallOffNs)
			if r.WallClusterTraceNs > 0 {
				r.ClusterTracePct = 100 * float64(r.WallClusterTraceNs-r.WallOffNs) / float64(r.WallOffNs)
			}
			if r.WallRecorderNs > 0 {
				r.RecorderPct = 100 * float64(r.WallRecorderNs-r.WallOffNs) / float64(r.WallOffNs)
			}
		}
		rep.Results = append(rep.Results, r)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "obsbench:", err)
		os.Exit(1)
	}
}

// runGate reads a recorded report and fails if the cluster-trace mode's
// overhead exceeds the budget — the CI regression gate for the cross-node
// observability layer.
func runGate(path string, maxClusterPct, maxRecorderPct float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	checked := 0
	for _, r := range rep.Results {
		if r.WallClusterTraceNs == 0 {
			continue
		}
		checked++
		fmt.Printf("gate: %s cluster_trace_overhead_pct = %.1f (budget %.1f)\n",
			r.Workload, r.ClusterTracePct, maxClusterPct)
		if r.ClusterTracePct > maxClusterPct {
			return fmt.Errorf("%s: cluster-trace overhead %.1f%% exceeds budget %.1f%%",
				r.Workload, r.ClusterTracePct, maxClusterPct)
		}
		if r.WallRecorderNs > 0 {
			fmt.Printf("gate: %s recorder_overhead_pct = %.1f (budget %.1f)\n",
				r.Workload, r.RecorderPct, maxRecorderPct)
			if r.RecorderPct > maxRecorderPct {
				return fmt.Errorf("%s: flight-recorder overhead %.1f%% exceeds budget %.1f%%",
					r.Workload, r.RecorderPct, maxRecorderPct)
			}
		}
	}
	if checked == 0 {
		return fmt.Errorf("%s: no cluster-trace results to gate (regenerate with obsbench)", path)
	}
	return nil
}

// attach instruments a machine for the given mode.
func attach(m *sim.Machine, md mode) {
	switch md {
	case modeHooks:
		m.AttachPerfetto(obs.NewPerfetto())
		m.AttachMetrics(obs.NewMetricsWriter(io.Discard, obs.FormatJSONL), 1000)
	case modeJourneys:
		if _, err := m.AttachJourneys(journey.DefaultConfig()); err != nil {
			fmt.Fprintln(os.Stderr, "obsbench:", err)
			os.Exit(1)
		}
	}
}

func runStores(csb bool, md mode) (uint64, uint64, time.Duration, error) {
	m, err := sim.New(sim.DefaultConfig())
	if err != nil {
		return 0, 0, 0, err
	}
	kind := mem.KindUncached
	if csb {
		kind = mem.KindCombining
	}
	m.MapRange(bench.IOBase, 1<<20, kind)
	attach(m, md)
	prog, err := m.LoadSource("bw.s", bench.StoreBandwidthProgram(1<<16, 64, csb))
	if err != nil {
		return 0, 0, 0, err
	}
	m.WarmProgram(prog)
	start := time.Now()
	if err := m.Run(50_000_000); err != nil {
		return 0, 0, 0, err
	}
	if err := m.Drain(1_000_000); err != nil {
		return 0, 0, 0, err
	}
	elapsed := time.Since(start)
	s := m.Stats()
	return s.Cycles, s.CPU.Retired, elapsed, nil
}

func runPingPong(md mode) (uint64, uint64, time.Duration, error) {
	cfg := cluster.DefaultConfig()
	cfg.WireLatency = 60
	c, err := cluster.NewPair(cfg)
	if err != nil {
		return 0, 0, 0, err
	}
	for _, n := range c.Nodes() {
		n.MapIO(true)
		n.M.MapRange(0x200000, 1<<16, mem.KindCached)
		attach(n.M, md)
	}
	if md == modeClusterTrace || md == modeRecorder {
		// The full PR 6 stack: per-node journeys + wire spans + live
		// telemetry frames (published, not served — the publish path is
		// the per-tick cost).
		if _, err := c.AttachTrace(journey.DefaultConfig(), ctrace.DefaultConfig()); err != nil {
			return 0, 0, 0, err
		}
		if err := c.AttachTelemetry(telemetry.New(), 10_000); err != nil {
			return 0, 0, 0, err
		}
	}
	if md == modeRecorder {
		// On top of the cluster-trace stack: the flight recorder rolling
		// windows into a discarded writer — the rollup and SLO evaluation
		// are the per-window cost being measured, not the disk.
		fr, err := rec.New(rec.DefaultConfig())
		if err != nil {
			return 0, 0, 0, err
		}
		if err := fr.SetWriter(io.Discard); err != nil {
			return 0, 0, 0, err
		}
		slo, err := rec.ParseSLO("cluster/nodes_down == 0; p99(*/ctrace/e2e) <= 1000000")
		if err != nil {
			return 0, 0, 0, err
		}
		if err := fr.SetSLO(slo); err != nil {
			return 0, 0, 0, err
		}
		if err := c.AttachRecorder(fr); err != nil {
			return 0, 0, 0, err
		}
	}
	// Enough rounds that a run takes hundreds of milliseconds: scheduler
	// hiccups on a loaded machine are amortized instead of dominating the
	// overhead ratio the CI gate checks.
	ping, pong := bench.PingPongPrograms(bench.SendCSB, 600)
	pa, err := c.Node(0).M.LoadSource("ping.s", ping)
	if err != nil {
		return 0, 0, 0, err
	}
	pb, err := c.Node(1).M.LoadSource("pong.s", pong)
	if err != nil {
		return 0, 0, 0, err
	}
	c.Node(0).M.WarmProgram(pa)
	c.Node(1).M.WarmProgram(pb)
	start := time.Now()
	if err := c.Run(100_000_000); err != nil {
		return 0, 0, 0, err
	}
	elapsed := time.Since(start)
	sa, sb := c.Node(0).M.Stats(), c.Node(1).M.Stats()
	return c.Cycle(), sa.CPU.Retired + sb.CPU.Retired, elapsed, nil
}

func runMessageSend(md mode) (uint64, uint64, time.Duration, error) {
	m, err := sim.New(sim.DefaultConfig())
	if err != nil {
		return 0, 0, 0, err
	}
	nic := device.NewNIC(device.DefaultConfig(), bench.NICBase)
	if err := m.AddDevice(bench.NICBase, device.RegionSize, "nic", nic, nic); err != nil {
		return 0, 0, 0, err
	}
	m.MapRange(bench.NICBase, device.PacketBufBase, mem.KindUncached)
	m.MapRange(bench.NICBase+device.PacketBufBase, device.PacketBufSize, mem.KindUncached)
	m.MapRange(0x200000, 1<<16, mem.KindCached)
	m.WarmData(0x200000, 4096)
	attach(m, md)
	prog, err := m.LoadSource("send.s", bench.MessageSendProgram(bench.SendDMA, 4096, 64))
	if err != nil {
		return 0, 0, 0, err
	}
	m.WarmProgram(prog)
	start := time.Now()
	if err := m.Run(50_000_000); err != nil {
		return 0, 0, 0, err
	}
	if err := m.Drain(1_000_000); err != nil {
		return 0, 0, 0, err
	}
	elapsed := time.Since(start)
	s := m.Stats()
	return s.Cycles, s.CPU.Retired, elapsed, nil
}
