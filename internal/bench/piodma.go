package bench

import (
	"fmt"
	"strings"

	"csbsim/internal/device"
	"csbsim/internal/mem"
	"csbsim/internal/sim"
)

// NICBase is where the benchmark NIC is mapped. Its first page holds the
// control registers (plain uncached), its second the packet buffer
// (combining for CSB runs, uncached otherwise).
const NICBase uint64 = 0x4000_0000

// SendMethod selects how a message reaches the NIC (extension X2).
type SendMethod int

const (
	// SendPIO writes the payload to the packet buffer with plain
	// uncached stores, then pushes a descriptor.
	SendPIO SendMethod = iota
	// SendCSB writes the payload through the conditional store buffer,
	// one atomic line burst per cache line, then pushes a descriptor.
	SendCSB
	// SendDMA writes the payload to cached memory and starts the NIC's
	// DMA engine with a single descriptor store.
	SendDMA
)

func (s SendMethod) String() string {
	switch s {
	case SendPIO:
		return "PIO-uncached"
	case SendCSB:
		return "PIO-CSB"
	case SendDMA:
		return "DMA"
	}
	return "?"
}

// messageSendProgram emits a program that delivers one msgBytes-long
// message to the NIC using the given method and halts immediately after
// initiating the send.
func messageSendProgram(method SendMethod, msgBytes, lineSize int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "\tset %#x, %%o0\n", NICBase)                      // registers
	fmt.Fprintf(&b, "\tset %#x, %%o1\n", NICBase+device.PacketBufBase) // packet buffer
	b.WriteString("\tmov 99, %g1\n\tmovr2f %g1, %f0\n")

	dwords := msgBytes / 8
	switch method {
	case SendPIO:
		for i := 0; i < dwords; i++ {
			fmt.Fprintf(&b, "\tstd %%f0, [%%o1+%d]\n", i*8)
		}
		b.WriteString("\tmembar\n") // stores must reach the device before the descriptor
	case SendCSB:
		off := 0
		line := 0
		for off < dwords {
			n := lineSize / 8
			if dwords-off < n {
				n = dwords - off
			}
			fmt.Fprintf(&b, "RETRY%d:\n\tset %d, %%l4\n", line, n)
			for i := 0; i < n; i++ {
				fmt.Fprintf(&b, "\tstd %%f0, [%%o1+%d]\n", (off+i)*8)
			}
			fmt.Fprintf(&b, "\tswap [%%o1+%d], %%l4\n", off*8)
			fmt.Fprintf(&b, "\tcmp %%l4, %d\n\tbnz RETRY%d\n", n, line)
			off += n
			line++
		}
		b.WriteString("\tmembar\n") // payload must reach the device before the descriptor
	case SendDMA:
		// Prepare the payload in cached memory.
		b.WriteString("\tset 0x200000, %o2\n")
		for i := 0; i < dwords; i++ {
			fmt.Fprintf(&b, "\tstd %%f0, [%%o2+%d]\n", i*8)
		}
		b.WriteString("\tmembar\n")
		// One store starts the whole transfer: address | length<<48.
		fmt.Fprintf(&b, "\tset %d, %%g4\n\tsll %%g4, 48, %%g4\n", msgBytes)
		b.WriteString("\tset 0x200000, %g5\n\tor %g4, %g5, %g4\n")
		fmt.Fprintf(&b, "\tstx %%g4, [%%o0+%d]\n", device.RegDMA)
		b.WriteString("\thalt\n")
		return b.String()
	}
	// Push the transmit descriptor: packet-buffer offset 0, length<<48.
	fmt.Fprintf(&b, "\tset %d, %%g4\n\tsll %%g4, 48, %%g4\n", msgBytes)
	fmt.Fprintf(&b, "\tstx %%g4, [%%o0+%d]\n", device.RegTxFIFO)
	b.WriteString("\thalt\n")
	return b.String()
}

// MessageSendProgram returns the NIC message-send program of the PIO vs
// DMA workload, for harnesses that need the raw source.
func MessageSendProgram(method SendMethod, msgBytes, lineSize int) string {
	return messageSendProgram(method, msgBytes, lineSize)
}

// MeasureMessageSend returns two costs of delivering one message: wire is
// the CPU-cycle latency until the NIC has the complete message on the
// wire; overhead is the CPU cycles until the processor is free again (for
// DMA that is right after the descriptor store — the transfer itself
// proceeds in the background).
func MeasureMessageSend(p MachineParams, method SendMethod, msgBytes int) (wire, overhead float64, err error) {
	cfg := sim.DefaultConfig()
	cfg.Ratio = p.Ratio
	cfg.Bus = p.Bus
	m, err := sim.New(cfg)
	if err != nil {
		return 0, 0, err
	}
	nic := device.NewNIC(device.DefaultConfig(), NICBase)
	if err := m.AddDevice(NICBase, device.RegionSize, "nic", nic, nic); err != nil {
		return 0, 0, err
	}
	// Register page is plain uncached; the packet buffer page is
	// combining for CSB sends and uncached otherwise.
	m.MapRange(NICBase, device.PacketBufBase, mem.KindUncached)
	bufKind := mem.KindUncached
	if method == SendCSB {
		bufKind = mem.KindCombining
	}
	m.MapRange(NICBase+device.PacketBufBase, device.PacketBufSize, bufKind)
	// Cached staging buffer for the DMA variant, warm (a reused send
	// buffer, as in real messaging layers).
	m.MapRange(0x200000, 1<<16, mem.KindCached)
	m.WarmData(0x200000, uint64(msgBytes))

	src := messageSendProgram(method, msgBytes, p.LineSize)
	prog, err := m.LoadSource("send.s", src)
	if err != nil {
		return 0, 0, err
	}
	m.WarmProgram(prog)

	var cpuDone, wireDone uint64
	for i := 0; i < 50_000_000; i++ {
		if cpuDone == 0 && m.CPU.Halted() {
			if err := m.CPU.Err(); err != nil {
				return 0, 0, err
			}
			cpuDone = m.Cycle()
		}
		if wireDone == 0 && len(nic.Packets()) > 0 {
			wireDone = m.Cycle()
		}
		if cpuDone != 0 && wireDone != 0 {
			return float64(wireDone), float64(cpuDone), nil
		}
		m.Tick()
	}
	return 0, 0, fmt.Errorf("bench: message never sent (%s, %dB)", method, msgBytes)
}

// ExtensionPIOvsDMA regenerates the §5 qualitative claim quantitatively.
// The headline metric is per-message CPU overhead: DMA's is flat (one
// descriptor store), plain PIO's grows steeply, CSB PIO's grows gently —
// so the CSB pushes the PIO/DMA break-even point toward larger messages.
func ExtensionPIOvsDMA() (Result, error) {
	r, _, err := pioVsDMA()
	return r, err
}

// ExtensionPIOvsDMALatency is the companion wire-latency view of the same
// sweep (figure id X2L).
func ExtensionPIOvsDMALatency() (Result, error) {
	_, r, err := pioVsDMA()
	return r, err
}

func pioVsDMA() (overheadR, latencyR Result, err error) {
	sizes := []int{16, 32, 64, 128, 256, 512, 1024}
	overheadR = Result{
		ID: "X2", Title: "per-message CPU overhead: PIO vs CSB-PIO vs DMA",
		XLabel: "message size", YLabel: "CPU cycles until processor free",
		Notes: "NIC with on-board packet buffer; DMA reads memory in 64B bursts",
	}
	latencyR = Result{
		ID: "X2L", Title: "message wire latency: PIO vs CSB-PIO vs DMA",
		XLabel: "message size", YLabel: "CPU cycles to wire",
		Notes: overheadR.Notes,
	}
	for _, s := range sizes {
		label := fmt.Sprintf("%dB", s)
		overheadR.X = append(overheadR.X, label)
		latencyR.X = append(latencyR.X, label)
	}
	methods := []SendMethod{SendPIO, SendCSB, SendDMA}
	type sendPoint struct {
		method SendMethod
		size   int
	}
	points := make([]sendPoint, 0, len(methods)*len(sizes))
	for _, method := range methods {
		for _, size := range sizes {
			points = append(points, sendPoint{method, size})
		}
	}
	// Each point yields two measurements: [wire latency, CPU overhead].
	pairs, err := Sweep(points, 0, func(pt sendPoint) ([2]float64, error) {
		wire, overhead, err := MeasureMessageSend(DefaultParams(), pt.method, pt.size)
		return [2]float64{wire, overhead}, err
	})
	if err != nil {
		return overheadR, latencyR, err
	}
	for mi, method := range methods {
		ov := Series{Name: method.String()}
		lat := Series{Name: method.String()}
		for si := range sizes {
			pair := pairs[mi*len(sizes)+si]
			lat.Y = append(lat.Y, pair[0])
			ov.Y = append(ov.Y, pair[1])
		}
		overheadR.Series = append(overheadR.Series, ov)
		latencyR.Series = append(latencyR.Series, lat)
	}
	return overheadR, latencyR, nil
}
