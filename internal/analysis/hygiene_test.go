package analysis_test

// Annotation hygiene for the //csb: pragma vocabulary: a pragma that is
// misspelled, floats free of any declaration, or asserts a reviewed
// exemption without recording the review reason silently disables (or
// fails to enable) an analyzer. This test walks every Go file in the
// module (testdata fixtures excluded — they misuse pragmas on purpose)
// and enforces:
//
//   - only known pragma names appear (typo protection);
//   - //csb:worker, //csb:barrier, //csb:aligned, //csb:alloc-ok and
//     //csb:worker-ok carry a non-empty reason after the name;
//   - every pragma attaches to code: it is part of a declaration's doc
//     comment, or sits on (or directly above) a line containing code —
//     matching exactly where Pass.Pragma and FuncPragma look.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"

	"csbsim/internal/analysis"
)

// knownPragmas is the full vocabulary; see the package analysis doc.
var knownPragmas = map[string]bool{
	"hotpath": true, "pool": true, "alloc-ok": true, "orderless": true,
	"worker": true, "barrier": true, "aligned": true, "worker-ok": true,
}

// reasonRequired pragmas assert a reviewed contract or exemption; the
// review must be recorded inline.
var reasonRequired = map[string]bool{
	"worker": true, "barrier": true, "aligned": true,
	"alloc-ok": true, "worker-ok": true,
}

func TestPragmaHygiene(t *testing.T) {
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case "testdata", ".git":
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no Go files found under module root")
	}
	for _, path := range files {
		checkFile(t, root, path)
	}
}

func checkFile(t *testing.T, root, path string) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		t.Errorf("%s: %v", path, err)
		return
	}
	rel, err := filepath.Rel(root, path)
	if err != nil {
		rel = path
	}

	// Lines where code begins: any AST node position outside comments.
	codeLines := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup:
			return true
		}
		codeLines[fset.Position(n.Pos()).Line] = true
		return true
	})

	// Comments that are a declaration's doc group are attached by
	// definition (FuncPragma reads them there).
	docComments := make(map[*ast.Comment]bool)
	markDoc := func(cg *ast.CommentGroup) {
		if cg == nil {
			return
		}
		for _, c := range cg.List {
			docComments[c] = true
		}
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			markDoc(d.Doc)
		case *ast.GenDecl:
			markDoc(d.Doc)
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					markDoc(s.Doc)
				case *ast.ValueSpec:
					markDoc(s.Doc)
				}
			}
		}
	}

	for _, cg := range f.Comments {
		for _, c := range cg.List {
			name, reason, ok := pragma(c.Text)
			if !ok {
				continue
			}
			line := fset.Position(c.Pos()).Line
			if !knownPragmas[name] {
				t.Errorf("%s:%d: unknown pragma //csb:%s (known: hotpath, pool, alloc-ok, orderless, worker, barrier, aligned, worker-ok)",
					rel, line, name)
				continue
			}
			if reasonRequired[name] && reason == "" {
				t.Errorf("%s:%d: //csb:%s needs a reason: the pragma records a reviewed contract, write down why it holds",
					rel, line, name)
			}
			if !docComments[c] && !codeLines[line] && !codeLines[line+1] {
				t.Errorf("%s:%d: orphaned //csb:%s — not in a doc comment and no code on this line or the next; the analyzers will never see it",
					rel, line, name)
			}
		}
	}
}

// pragma splits a comment into (//csb: name, reason); reason has leading
// separators (spaces, dashes) trimmed so `//csb:orderless — why` counts.
func pragma(text string) (name, reason string, ok bool) {
	const prefix = "//csb:"
	if !strings.HasPrefix(text, prefix) {
		return "", "", false
	}
	rest := strings.TrimPrefix(text, prefix)
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		name, reason = rest[:i], rest[i+1:]
	} else {
		name = rest
	}
	reason = strings.TrimLeft(reason, " \t-—–")
	reason = strings.TrimSpace(reason)
	return name, reason, true
}
