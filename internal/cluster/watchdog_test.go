package cluster

import (
	"errors"
	"strings"
	"testing"

	"csbsim/internal/fault"
)

// wedgeNode attaches a machine-level fault injector that NACKs every bus
// transaction: the CPU's first fetch never completes, so the node ticks
// forever retiring nothing — wedged, not halted.
func wedgeNode(t *testing.T, n *Node) {
	t.Helper()
	if _, err := n.M.AttachFaults(fault.Config{Seed: 3, BusNack: 1024}); err != nil {
		t.Fatal(err)
	}
}

// wedgedPair builds the watchdog workload: node "a" wedged from cycle 0,
// node "b" a healthy idler.
func wedgedPair(t *testing.T) *Cluster {
	t.Helper()
	c := newCluster(t, 120)
	for _, n := range c.Nodes() {
		n.MapIO(false)
		if _, err := n.M.LoadSource("idle.s", "halt\n"); err != nil {
			t.Fatal(err)
		}
	}
	wedgeNode(t, c.Node(0))
	c.AttachCounters()
	return c
}

// TestClusterWatchdogTripsWindowed: a zero-retire node under the
// windowed engine must abort the run with a *WatchdogError naming the
// node and carrying the cluster-wide diagnostic dump.
func TestClusterWatchdogTripsWindowed(t *testing.T) {
	c := wedgedPair(t)
	if err := c.SetWatchdog(2000, false); err != nil {
		t.Fatal(err)
	}
	err := c.RunParallel(1_000_000)
	var we *WatchdogError
	if !errors.As(err, &we) {
		t.Fatalf("expected *WatchdogError, got %v", err)
	}
	if we.Node != "a" {
		t.Errorf("watchdog blamed node %q, want a", we.Node)
	}
	if we.Cycle < 2000 || we.Retired != 0 {
		t.Errorf("bad trip point: cycle=%d retired=%d", we.Cycle, we.Retired)
	}
	for _, want := range []string{
		"==== cluster diagnostic dump",
		"---- node a",
		"---- node b",
		"fabric:",
	} {
		if !strings.Contains(we.Dump, want) {
			t.Errorf("dump missing %q", want)
		}
	}
}

// TestClusterWatchdogTripsLockstep: the same wedge must trip under the
// lockstep engine too (the check runs once per Tick there).
func TestClusterWatchdogTripsLockstep(t *testing.T) {
	c := wedgedPair(t)
	if err := c.SetWatchdog(2000, false); err != nil {
		t.Fatal(err)
	}
	var we *WatchdogError
	if err := c.Run(1_000_000); !errors.As(err, &we) {
		t.Fatalf("expected *WatchdogError, got %v", err)
	}
	if we.Node != "a" {
		t.Errorf("watchdog blamed node %q, want a", we.Node)
	}
}

// TestClusterWatchdogIdleNotWedged: a halted CPU retires nothing
// legitimately — a node kept alive past the window by its hook must not
// trip the watchdog.
func TestClusterWatchdogIdleNotWedged(t *testing.T) {
	c := newCluster(t, 120)
	for _, n := range c.Nodes() {
		n.MapIO(false)
		if _, err := n.M.LoadSource("idle.s", "halt\n"); err != nil {
			t.Fatal(err)
		}
	}
	c.SetNodeHook(0, func(cycle uint64) bool { return cycle < 5000 })
	if err := c.SetWatchdog(500, false); err != nil {
		t.Fatal(err)
	}
	if err := c.RunFor(8000, true); err != nil {
		t.Fatalf("idle node tripped the watchdog: %v", err)
	}
}

// TestSetWatchdogValidation: a zero window and re-arming are rejected.
func TestSetWatchdogValidation(t *testing.T) {
	c := newCluster(t, 120)
	if err := c.SetWatchdog(0, false); err == nil {
		t.Error("zero watchdog window accepted")
	}
	if err := c.SetWatchdog(1000, false); err != nil {
		t.Fatal(err)
	}
	if err := c.SetWatchdog(2000, true); err == nil {
		t.Error("watchdog re-arm accepted")
	}
}

// TestClusterWatchdogDegrade: with degradation on, the wedged node is
// removed from service instead of aborting the run — traffic routed to
// the corpse is dropped and counted, and the run completes cleanly.
func TestClusterWatchdogDegrade(t *testing.T) {
	c := wedgedPair(t)
	// Node b streams packets at the wedged node well past the markdown.
	hookSender(c, 1, 200, 6000, 7000)
	if err := c.SetWatchdog(1500, true); err != nil {
		t.Fatal(err)
	}
	if err := c.RunFor(10_000, true); err != nil {
		t.Fatalf("degraded run failed: %v", err)
	}
	down := c.DownNodes()
	if len(down) != 1 || down[0] != "a" {
		t.Fatalf("DownNodes = %v, want [a]", down)
	}
	snap := c.Registry().Snapshot()
	if got := snap.Counters["cluster/nodes_down"]; got != 1 {
		t.Errorf("cluster/nodes_down = %d, want 1", got)
	}
	if got := snap.Counters["cluster/degraded_drops"]; got == 0 {
		t.Error("no degraded drops counted for traffic at the down node")
	}
	if !strings.Contains(c.DiagnosticDump(), "degraded: nodes down: a") {
		t.Error("diagnostic dump missing the degraded-node list")
	}
}
