package sim

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"csbsim/internal/mem"
	"csbsim/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// storeLoop is a deterministic workload touching the CSB, the bus and the
// caches — enough to populate every report section the golden test pins.
const storeLoop = `
	set 0x40000000, %o1
	mov 8, %g2
loop:
	mov 8, %l4
	stx %g1, [%o1]
	stx %g1, [%o1+8]
	stx %g1, [%o1+16]
	stx %g1, [%o1+24]
	stx %g1, [%o1+32]
	stx %g1, [%o1+40]
	stx %g1, [%o1+48]
	stx %g1, [%o1+56]
	swap [%o1], %l4
	subcc %g2, 1, %g2
	bnz loop
	mov 3, %o0
	trap 2
	halt
`

func runStoreLoop(t *testing.T) *Machine {
	t.Helper()
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m.MapRange(0x4000_0000, 1<<16, mem.KindCombining)
	p, err := m.LoadSource("loop.s", storeLoop)
	if err != nil {
		t.Fatal(err)
	}
	m.WarmProgram(p)
	return m
}

// TestReportGolden pins the exact Report output for a deterministic run.
// Refresh with: go test ./internal/sim -run TestReportGolden -update
func TestReportGolden(t *testing.T) {
	m := runStoreLoop(t)
	if err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if err := m.Drain(100_000); err != nil {
		t.Fatal(err)
	}
	got := m.Stats().Report()

	golden := filepath.Join("testdata", "report.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("report drifted from golden file (refresh with -update if intended)\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestMachineCPIInvariant checks the stack invariant at the machine level
// and that this workload's dominant stall is the CSB.
func TestMachineCPIInvariant(t *testing.T) {
	m := runStoreLoop(t)
	if err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if total := s.CPU.CPI.Total(); total != s.CPU.Cycles {
		t.Fatalf("CPI stack sums to %d, cycles %d\n%s", total, s.CPU.Cycles, s.CPU.CPI.Format())
	}
	if s.CPU.CPI[obs.CauseCSB] == 0 {
		t.Errorf("CSB workload charged no csb-busy cycles:\n%s", s.ReportCPI())
	}
	if !strings.Contains(s.ReportCPI(), "csb-busy") {
		t.Error("ReportCPI missing the csb-busy bucket")
	}
}

// TestAttachMetricsSampling verifies the sampler cadence (one sample per
// interval plus the final flush) and the delta semantics.
func TestAttachMetricsSampling(t *testing.T) {
	m := runStoreLoop(t)
	var buf bytes.Buffer
	w := obs.NewMetricsWriter(&buf, obs.FormatJSONL)
	if err := m.AttachMetrics(w, 200); err != nil {
		t.Fatal(err)
	}
	if err := m.AttachMetrics(w, 200); err == nil {
		t.Error("second sampler attach accepted")
	}
	if err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	m.FlushMetrics()
	m.FlushMetrics() // idempotent at the same cycle

	cycles := m.Cycle()
	wantMin := int(cycles / 200)
	if w.Count() < wantMin {
		t.Fatalf("%d samples over %d cycles, want >= %d", w.Count(), cycles, wantMin)
	}
	var prevCycle, totalRetired uint64
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var s obs.Sample
		if err := json.Unmarshal([]byte(line), &s); err != nil {
			t.Fatalf("bad sample %q: %v", line, err)
		}
		if s.Cycle <= prevCycle {
			t.Fatalf("samples not monotone: %d after %d", s.Cycle, prevCycle)
		}
		prevCycle = s.Cycle
		totalRetired += s.Retired
	}
	if got := m.Stats().CPU.Retired; totalRetired != got {
		t.Errorf("sample deltas sum to %d retired, machine says %d", totalRetired, got)
	}
}

// TestAttachPerfettoIntegration runs an instrumented machine and checks
// the exported trace holds instruction, bus and counter events on the
// shared CPU-cycle timeline.
func TestAttachPerfettoIntegration(t *testing.T) {
	m := runStoreLoop(t)
	p := obs.NewPerfetto()
	m.AttachPerfetto(p)
	var buf bytes.Buffer
	if err := m.AttachMetrics(obs.NewMetricsWriter(&buf, obs.FormatJSONL), 500); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if err := m.Drain(100_000); err != nil {
		t.Fatal(err)
	}
	m.FlushMetrics()
	if p.Count() == 0 {
		t.Fatal("no instructions recorded")
	}

	var out bytes.Buffer
	if _, err := p.WriteTo(&out); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Ts  uint64 `json:"ts"`
			Dur uint64 `json:"dur"`
			PID int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	cycles := m.Cycle()
	var busSlices, counters int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			if e.PID == 2 {
				busSlices++
			}
			// Both tracks live on the CPU-cycle timeline: nothing may end
			// past the run (bus events are converted from bus cycles).
			if e.Ts+e.Dur > cycles+uint64(m.Cfg.Ratio) {
				t.Errorf("slice ends at %d, run was %d CPU cycles", e.Ts+e.Dur, cycles)
			}
		case "C":
			counters++
		}
	}
	if busSlices == 0 {
		t.Error("no bus slices in trace")
	}
	if counters == 0 {
		t.Error("metrics samples did not land as counter tracks")
	}
}

// TestUnattachedMachineHasNoObservers documents the nil-cost-off design:
// a plain machine carries no observers or sampler.
func TestUnattachedMachineHasNoObservers(t *testing.T) {
	m := runStoreLoop(t)
	if m.sampler != nil || m.perfetto != nil {
		t.Error("fresh machine has observability state attached")
	}
	if err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	m.FlushMetrics() // must be a no-op, not a panic
}

// TestAttachPeriodic verifies the generic periodic hooks: one firing per
// interval per hook while running, plus exactly one more each from the
// final flush, and independent cadences for coexisting hooks (telemetry
// alongside the flight recorder).
func TestAttachPeriodic(t *testing.T) {
	m := runStoreLoop(t)
	if err := m.AttachPeriodic(0, func(uint64) {}); err == nil {
		t.Error("zero interval accepted")
	}
	if err := m.AttachPeriodic(10, nil); err == nil {
		t.Error("nil hook accepted")
	}
	var fired int
	var lastCycle uint64
	if err := m.AttachPeriodic(250, func(cycle uint64) {
		fired++
		if cycle < lastCycle {
			t.Fatalf("periodic cycle went backwards: %d after %d", cycle, lastCycle)
		}
		lastCycle = cycle
	}); err != nil {
		t.Fatal(err)
	}
	var fired2 int
	if err := m.AttachPeriodic(700, func(uint64) { fired2++ }); err != nil {
		t.Fatalf("second periodic attach rejected: %v", err)
	}
	if err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	m.FlushObs()
	want := int(m.Cycle() / 250)
	if fired < want || fired > want+2 {
		t.Errorf("hook fired %d times over %d cycles (interval 250)", fired, m.Cycle())
	}
	if lastCycle != m.Cycle() {
		t.Errorf("final flush fired at cycle %d, machine at %d", lastCycle, m.Cycle())
	}
	want2 := int(m.Cycle() / 700)
	if fired2 < want2 || fired2 > want2+2 {
		t.Errorf("second hook fired %d times over %d cycles (interval 700)", fired2, m.Cycle())
	}
}
