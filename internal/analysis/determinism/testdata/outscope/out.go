// Package out is loaded under an import path outside the deterministic
// package set; the analyzer must stay silent even though it reads the
// wall clock and iterates a map.
package out

import "time"

func Stamp() time.Time { return time.Now() }

func First(m map[string]int) string {
	for k := range m {
		return k
	}
	return ""
}
