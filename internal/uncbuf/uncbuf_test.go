package uncbuf

import (
	"math/rand"
	"testing"

	"csbsim/internal/bus"
)

func newBuf(t *testing.T, cfg Config) *Buffer {
	t.Helper()
	u, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func newBus(t *testing.T) *bus.Bus {
	t.Helper()
	b, err := bus.New(bus.Config{Model: bus.Multiplexed, WidthBytes: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func dword(v byte) []byte {
	d := make([]byte, 8)
	d[0] = v
	return d
}

// snapshot copies a completed transaction's value and payload so it can be
// inspected after the observer returns.
func snapshot(txn *bus.Txn) *bus.Txn {
	tc := *txn
	tc.Data = append([]byte(nil), txn.Data...)
	return &tc
}

// drive runs the buffer against the bus until both drain, returning
// snapshots of the observed transactions (the buffer recycles completed
// Txns, so retaining the pointers would alias later transactions).
func drive(t *testing.T, u *Buffer, b *bus.Bus, maxCycles int) []*bus.Txn {
	t.Helper()
	var seen []*bus.Txn
	b.AttachObserver(func(txn *bus.Txn) { seen = append(seen, snapshot(txn)) })
	for i := 0; i < maxCycles; i++ {
		b.Tick()
		u.TickBus(b)
		if u.Empty() && b.Idle() {
			return seen
		}
	}
	t.Fatal("buffer did not drain")
	return nil
}

func TestNonCombiningIssuesOneTxnPerStore(t *testing.T) {
	u := newBuf(t, Config{Entries: 8, BlockSize: 0, MaxBurst: 64})
	b := newBus(t)
	for i := 0; i < 4; i++ {
		if !u.AddStore(uint64(i*8), 8, dword(byte(i))) {
			t.Fatal("store rejected")
		}
	}
	seen := drive(t, u, b, 1000)
	if len(seen) != 4 {
		t.Fatalf("got %d transactions, want 4", len(seen))
	}
	for i, txn := range seen {
		if txn.Size != 8 || txn.Addr != uint64(i*8) || !txn.Write || !txn.Ordered {
			t.Errorf("txn %d = %+v", i, txn)
		}
	}
}

// Stores added while the buffer is backed up coalesce into the youngest
// same-block entry and issue as one burst.
func TestCombiningMergesIntoBlock(t *testing.T) {
	u := newBuf(t, Config{Entries: 8, BlockSize: 64, MaxBurst: 64})
	b := newBus(t)
	// Fill a whole line before letting the bus run.
	for i := 0; i < 8; i++ {
		if !u.AddStore(uint64(i*8), 8, dword(byte(i))) {
			t.Fatal("store rejected")
		}
	}
	if got := u.Len(); got != 1 {
		t.Fatalf("queue length = %d, want 1 (all merged)", got)
	}
	seen := drive(t, u, b, 1000)
	if len(seen) != 1 || seen[0].Size != 64 {
		t.Fatalf("transactions = %+v, want one 64B burst", seen)
	}
	if u.Stats().Coalesced != 7 {
		t.Errorf("coalesced = %d, want 7", u.Stats().Coalesced)
	}
}

func TestCombiningRespectsBlockBoundary(t *testing.T) {
	u := newBuf(t, Config{Entries: 8, BlockSize: 16, MaxBurst: 64})
	for i := 0; i < 4; i++ {
		u.AddStore(uint64(i*8), 8, dword(byte(i)))
	}
	// 4 dwords with 16B blocks → 2 entries.
	if got := u.Len(); got != 2 {
		t.Fatalf("queue length = %d, want 2", got)
	}
}

// A store to a different block does not merge into the youngest entry,
// and a later store to the first block cannot merge backwards (hardware
// combining fails when the sequence is interrupted, §2).
func TestInterruptedSequenceBreaksCombining(t *testing.T) {
	u := newBuf(t, Config{Entries: 8, BlockSize: 64, MaxBurst: 64})
	u.AddStore(0, 8, dword(1))
	u.AddStore(128, 8, dword(2)) // different block
	u.AddStore(8, 8, dword(3))   // back to first block: must NOT merge backwards
	if got := u.Len(); got != 3 {
		t.Fatalf("queue length = %d, want 3", got)
	}
}

func TestSequentialModeRequiresExactNextAddress(t *testing.T) {
	u := newBuf(t, Config{Entries: 8, BlockSize: 64, MaxBurst: 64, Sequential: true})
	u.AddStore(0, 8, dword(1))
	u.AddStore(16, 8, dword(2)) // skips offset 8: no merge in R10K mode
	if got := u.Len(); got != 2 {
		t.Fatalf("queue length = %d, want 2", got)
	}
	u2 := newBuf(t, Config{Entries: 8, BlockSize: 64, MaxBurst: 64, Sequential: true})
	u2.AddStore(0, 8, dword(1))
	u2.AddStore(8, 8, dword(2))
	u2.AddStore(16, 8, dword(3))
	if got := u2.Len(); got != 1 {
		t.Fatalf("sequential run: queue length = %d, want 1", got)
	}
	// Out-of-order arrival never merges in sequential mode.
	u3 := newBuf(t, Config{Entries: 8, BlockSize: 64, MaxBurst: 64, Sequential: true})
	u3.AddStore(8, 8, dword(1))
	u3.AddStore(0, 8, dword(2))
	if got := u3.Len(); got != 2 {
		t.Fatalf("reverse run: queue length = %d, want 2", got)
	}
}

// Anywhere-in-block combining accepts out-of-order stores (unlike R10K).
func TestBlockModeAcceptsAnyOrder(t *testing.T) {
	u := newBuf(t, Config{Entries: 8, BlockSize: 64, MaxBurst: 64})
	u.AddStore(40, 8, dword(1))
	u.AddStore(0, 8, dword(2))
	u.AddStore(16, 8, dword(3))
	if got := u.Len(); got != 1 {
		t.Fatalf("queue length = %d, want 1", got)
	}
}

func TestFullBufferRejectsStore(t *testing.T) {
	u := newBuf(t, Config{Entries: 2, BlockSize: 0, MaxBurst: 64})
	if !u.AddStore(0, 8, dword(1)) || !u.AddStore(8, 8, dword(2)) {
		t.Fatal("fills rejected")
	}
	if u.AddStore(16, 8, dword(3)) {
		t.Error("store accepted into full buffer")
	}
	if u.Stats().StallFull != 1 {
		t.Errorf("StallFull = %d", u.Stats().StallFull)
	}
	if u.CanAcceptStore(16, 8) {
		t.Error("CanAcceptStore should be false")
	}
}

// Partial entries issue as multiple aligned transactions; a 3-dword entry
// becomes 16B + 8B.
func TestPartialEntryDecomposes(t *testing.T) {
	u := newBuf(t, Config{Entries: 8, BlockSize: 64, MaxBurst: 64})
	b := newBus(t)
	u.AddStore(0, 8, dword(1))
	u.AddStore(8, 8, dword(2))
	u.AddStore(16, 8, dword(3))
	seen := drive(t, u, b, 1000)
	if len(seen) != 2 || seen[0].Size != 16 || seen[1].Size != 8 {
		t.Fatalf("transactions = %v, want 16B+8B", sizes(seen))
	}
}

func sizes(txns []*bus.Txn) []int {
	out := make([]int, len(txns))
	for i, t := range txns {
		out[i] = t.Size
	}
	return out
}

// The head entry pops as soon as the bus is free, so with an idle bus the
// first store issues alone and later stores combine into new entries —
// the warm-up effect of §4.3.1.
func TestIdleBusLimitsCombining(t *testing.T) {
	u := newBuf(t, Config{Entries: 8, BlockSize: 64, MaxBurst: 64})
	b := newBus(t)
	var seen []*bus.Txn
	b.AttachObserver(func(txn *bus.Txn) { seen = append(seen, snapshot(txn)) })

	// Interleave: one store per bus cycle (CPU faster than bus would be
	// multiple per cycle; one is enough to show the effect).
	addr := uint64(0)
	for i := 0; i < 16; i++ {
		u.AddStore(addr, 8, dword(byte(i)))
		addr += 8
		b.Tick()
		u.TickBus(b)
	}
	for i := 0; i < 200 && !(u.Empty() && b.Idle()); i++ {
		b.Tick()
		u.TickBus(b)
	}
	if len(seen) < 2 {
		t.Fatalf("only %d transactions", len(seen))
	}
	if seen[0].Size != 8 {
		t.Errorf("first transaction size = %d, want 8 (issued before combining)", seen[0].Size)
	}
	var total int
	for _, txn := range seen {
		total += txn.Size
	}
	if total != 16*8 {
		t.Errorf("total bytes = %d, want 128", total)
	}
}

func TestLoadBlocksBehindStoresAndCompletes(t *testing.T) {
	u := newBuf(t, Config{Entries: 8, BlockSize: 0, MaxBurst: 64})
	b := newBus(t)
	u.AddStore(0, 8, dword(1))
	var loadDone bool
	u.AddLoad(0x100, 8, func(data []byte) {
		loadDone = true
		if len(data) != 8 {
			t.Errorf("load data len %d", len(data))
		}
	})
	seen := drive(t, u, b, 1000)
	if !loadDone {
		t.Fatal("load never completed")
	}
	if len(seen) != 2 || seen[0].Write != true || seen[1].Write != false {
		t.Fatalf("expected store then load, got %+v", seen)
	}
	if seen[1].Start <= seen[0].End {
		t.Error("load overlapped older store (strong ordering violated)")
	}
}

func TestStoreCannotMergeIntoLoadEntry(t *testing.T) {
	u := newBuf(t, Config{Entries: 8, BlockSize: 64, MaxBurst: 64})
	u.AddStore(0, 8, dword(1))
	u.AddLoad(64, 8, nil)
	u.AddStore(8, 8, dword(2)) // same block as entry 0 but behind a load
	if got := u.Len(); got != 3 {
		t.Fatalf("queue length = %d, want 3 (no merge past a load)", got)
	}
}

func TestEmptyTracksInflight(t *testing.T) {
	u := newBuf(t, Config{Entries: 8, BlockSize: 0, MaxBurst: 64})
	b := newBus(t)
	u.AddStore(0, 8, dword(1))
	if u.Empty() {
		t.Fatal("buffer with queued store is empty")
	}
	b.Tick()
	u.TickBus(b) // issues the transaction
	if u.Empty() {
		t.Fatal("buffer with in-flight transaction reports empty (membar would retire early)")
	}
	for i := 0; i < 10; i++ {
		b.Tick()
		u.TickBus(b)
	}
	if !u.Empty() {
		t.Fatal("buffer did not drain")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Entries: 0, MaxBurst: 64},
		{Entries: 8, BlockSize: 4, MaxBurst: 64},
		{Entries: 8, BlockSize: 24, MaxBurst: 64},
		{Entries: 8, MaxBurst: 0},
		{Entries: 8, MaxBurst: 48},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestStatsCounters(t *testing.T) {
	u := newBuf(t, Config{Entries: 8, BlockSize: 64, MaxBurst: 64})
	b := newBus(t)
	u.AddStore(0, 8, dword(1))
	u.AddStore(8, 8, dword(2))
	u.AddLoad(0x40, 8, nil)
	drive(t, u, b, 1000)
	s := u.Stats()
	if s.Stores != 2 || s.Loads != 1 || s.Coalesced != 1 || s.Entries != 2 {
		t.Errorf("stats = %+v", s)
	}
	if s.Transactions != 2 { // one 16B store burst + one load
		t.Errorf("transactions = %d, want 2", s.Transactions)
	}
}

// Property: every byte stored into the buffer reaches the bus exactly
// once, regardless of combining scheme or store pattern.
func TestByteConservationProperty(t *testing.T) {
	for seed := 0; seed < 50; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		blockSizes := []int{0, 16, 32, 64}
		cfg := Config{
			Entries:    1 + rng.Intn(8),
			BlockSize:  blockSizes[rng.Intn(len(blockSizes))],
			MaxBurst:   64,
			Sequential: rng.Intn(2) == 0,
		}
		u, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := bus.New(bus.Config{Model: bus.Multiplexed, WidthBytes: 8}, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Track which bytes the bus saw, and how often.
		seen := make(map[uint64]int)
		b.AttachObserver(func(txn *bus.Txn) {
			if !txn.Write {
				return
			}
			for i := 0; i < txn.Size; i++ {
				seen[txn.Addr+uint64(i)]++
			}
		})
		// Issue random aligned dword stores over a small region,
		// remembering the last writer of each byte.
		want := make(map[uint64]bool)
		pending := 30 + rng.Intn(40)
		for i := 0; i < pending; {
			addr := uint64(rng.Intn(64)) * 8
			if u.AddStore(addr, 8, dword(byte(i))) {
				for k := uint64(0); k < 8; k++ {
					want[addr+k] = true
				}
				i++
			} else {
				b.Tick()
				u.TickBus(b)
			}
			if rng.Intn(3) == 0 {
				b.Tick()
				u.TickBus(b)
			}
		}
		for i := 0; i < 100000 && !(u.Empty() && b.Idle()); i++ {
			b.Tick()
			u.TickBus(b)
		}
		if !u.Empty() {
			t.Fatalf("seed %d: buffer did not drain", seed)
		}
		for addr := range want {
			if seen[addr] == 0 {
				t.Fatalf("seed %d: byte %#x never reached the bus", seed, addr)
			}
		}
		// Conservation in the other direction: nothing invented.
		for addr := range seen {
			if !want[addr] {
				t.Fatalf("seed %d: byte %#x appeared on the bus but was never stored", seed, addr)
			}
		}
	}
}
