// Command csbasm assembles SV9L assembly and prints a listing, symbol
// table or hex image.
//
// Usage:
//
//	csbasm [-sym] [-hex] [-lint] file.s
//
// By default it prints a disassembly listing of the assembled program;
// -sym adds the symbol table, -hex dumps the raw little-endian image,
// and -lint runs the static checks (see cmd/csblint) and exits nonzero
// on findings.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"csbsim/internal/asm"
	"csbsim/internal/isa"
)

func main() {
	syms := flag.Bool("sym", false, "print the symbol table")
	hex := flag.Bool("hex", false, "dump the raw image as hex")
	lint := flag.Bool("lint", false, "run the lint checks and exit nonzero on findings")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: csbasm [-sym] [-hex] [-lint] file.s\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	file := flag.Arg(0)
	src, err := os.ReadFile(file)
	if err != nil {
		fatal(err)
	}
	prog, err := asm.Assemble(file, string(src))
	if err != nil {
		fatal(err)
	}
	if *lint {
		diags, err := asm.Lint(file, string(src), asm.LintConfig{})
		if err != nil {
			fatal(err)
		}
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
		if len(diags) > 0 {
			os.Exit(1)
		}
	}
	base, data, err := prog.Bytes()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %d bytes at %#x, entry %#x\n", file, len(data), base, prog.Entry)

	if *syms {
		names := make([]string, 0, len(prog.Symbols))
		for n := range prog.Symbols {
			names = append(names, n)
		}
		sort.Slice(names, func(i, j int) bool { return prog.Symbols[names[i]] < prog.Symbols[names[j]] })
		fmt.Println("symbols:")
		for _, n := range names {
			fmt.Printf("  %08x  %s\n", prog.Symbols[n], n)
		}
	}

	if *hex {
		for i := 0; i < len(data); i += 16 {
			end := i + 16
			if end > len(data) {
				end = len(data)
			}
			fmt.Printf("%08x: %x\n", base+uint64(i), data[i:end])
		}
		return
	}

	lines, err := prog.Disassemble(base, len(data)/isa.InstBytes)
	if err != nil {
		fatal(err)
	}
	for _, l := range lines {
		fmt.Println(l)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "csbasm:", err)
	os.Exit(1)
}
