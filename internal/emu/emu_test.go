package emu

import (
	"errors"
	"strings"
	"testing"

	"csbsim/internal/asm"
)

func run(t *testing.T, src string) *Emulator {
	t.Helper()
	p, err := asm.Assemble("t.s", src)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(p, WithMaxSteps(1_000_000))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestBasicALU(t *testing.T) {
	e := run(t, `
	mov 6, %g1
	mov 7, %g2
	add %g1, %g2, %g3
	mul %g1, %g2, %g4
	sub %g3, %g4, %g5
	halt
`)
	if e.R[3] != 13 || e.R[4] != 42 || int64(e.R[5]) != -29 {
		t.Errorf("regs: %d %d %d", e.R[3], e.R[4], int64(e.R[5]))
	}
}

func TestZeroRegisterImmutable(t *testing.T) {
	e := run(t, `
	add %g0, 5, %g0
	mov %g0, %g1
	halt
`)
	if e.R[0] != 0 || e.R[1] != 0 {
		t.Error("g0 must stay zero")
	}
}

func TestLoopAndBranches(t *testing.T) {
	e := run(t, `
	clr %g1
	mov 10, %g2
loop:	add %g1, %g2, %g1
	subcc %g2, 1, %g2
	bnz loop
	halt
`)
	if e.R[1] != 55 {
		t.Errorf("sum = %d", e.R[1])
	}
}

func TestMemoryWidths(t *testing.T) {
	e := run(t, `
	set 0x20000, %o1
	set 0x12345678, %g1
	stx %g1, [%o1]
	ldw [%o1], %g2
	ldh [%o1], %g3
	ldb [%o1+1], %g4
	halt
`)
	if e.R[2] != 0x12345678 || e.R[3] != 0x5678 || e.R[4] != 0x56 {
		t.Errorf("loads: %#x %#x %#x", e.R[2], e.R[3], e.R[4])
	}
}

func TestSwap(t *testing.T) {
	e := run(t, `
	set 0x20000, %o1
	mov 11, %g1
	stx %g1, [%o1]
	mov 22, %g2
	swap [%o1], %g2
	ldx [%o1], %g3
	halt
`)
	if e.R[2] != 11 || e.R[3] != 22 {
		t.Errorf("swap: old=%d mem=%d", e.R[2], e.R[3])
	}
}

func TestCallRet(t *testing.T) {
	e := run(t, `
	mov 5, %o0
	call f
	mov %o0, %g1
	halt
f:	add %o0, %o0, %o0
	ret
`)
	if e.R[1] != 10 {
		t.Errorf("call result = %d", e.R[1])
	}
}

func TestFloatingPoint(t *testing.T) {
	e := run(t, `
	.org 0x1000
x:	.double 2.5
	.entry main
main:	set x, %o1
	ldd [%o1], %f0
	faddd %f0, %f0, %f2
	fdtoi %f2, %g1
	halt
`)
	if e.R[1] != 5 {
		t.Errorf("2.5+2.5 trunc = %d", e.R[1])
	}
}

func TestConsoleTraps(t *testing.T) {
	e := run(t, `
	mov 'x', %o0
	trap 1
	mov 7, %o0
	trap 2
	halt
`)
	if got := string(e.Console); got != "x7" {
		t.Errorf("console = %q", got)
	}
}

func TestIllegalInstructionErrors(t *testing.T) {
	p, _ := asm.Assemble("t.s", "nop\n")
	e, _ := New(p, WithMaxSteps(100))
	// Run past the single nop into zeroed memory (decodes as invalid).
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "illegal") {
		t.Errorf("err = %v", err)
	}
}

func TestPrivilegedOpsRejected(t *testing.T) {
	p, _ := asm.Assemble("t.s", "rdpr %pid, %g1\nhalt\n")
	e, _ := New(p, WithMaxSteps(100))
	if err := e.Run(); err == nil {
		t.Error("privileged op should error in the emulator")
	}
}

func TestUnhandledTrapErrors(t *testing.T) {
	p, _ := asm.Assemble("t.s", "trap 99\nhalt\n")
	e, _ := New(p, WithMaxSteps(100))
	if err := e.Run(); err == nil {
		t.Error("unhandled trap should error")
	}
}

func TestStepLimit(t *testing.T) {
	p, _ := asm.Assemble("t.s", "loop: ba loop\n")
	e, _ := New(p, WithMaxSteps(1000))
	err := e.Run()
	if err == nil {
		t.Fatal("infinite loop should hit the step limit")
	}
	var sl *StepLimitError
	if !errors.As(err, &sl) {
		t.Fatalf("err = %v, want *StepLimitError", err)
	}
	if sl.Limit != 1000 {
		t.Errorf("limit = %d", sl.Limit)
	}
	if e.Steps() != 1000 {
		t.Errorf("steps = %d", e.Steps())
	}
}

func TestDefaultMaxSteps(t *testing.T) {
	p, _ := asm.Assemble("t.s", "loop: ba loop\n")
	e, _ := New(p)
	if e.maxSteps != DefaultMaxSteps {
		t.Errorf("default budget = %d, want %d", e.maxSteps, DefaultMaxSteps)
	}
}

func TestCombiningSwapModelsSuccessfulFlush(t *testing.T) {
	p, err := asm.Assemble("t.s", `
	set 0x30000, %o1
	mov 77, %g1
	stx %g1, [%o1]          ! combining store: lands in flat memory
	mov 8, %l4
	swap [%o1], %l4         ! conditional flush: always succeeds here
	ldx [%o1], %g2
	halt
`)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := New(p, WithCombining(0x30000, 0x1000))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Success semantics (§3.1): the swap source keeps its value and the
	// stored data is untouched by the flush.
	if e.R[20] != 8 {
		t.Errorf("flush result = %d, want 8 (register unchanged)", e.R[20])
	}
	if e.R[2] != 77 {
		t.Errorf("memory after flush = %d, want 77", e.R[2])
	}
	// Outside the marked range, swap is still a real exchange.
	e2, _ := New(p)
	if err := e2.Run(); err != nil {
		t.Fatal(err)
	}
	if e2.R[20] != 77 || e2.R[2] != 8 {
		t.Errorf("plain swap: reg=%d mem=%d, want 77/8", e2.R[20], e2.R[2])
	}
}

func TestMembarIsNop(t *testing.T) {
	e := run(t, "membar\nmov 1, %g1\nhalt\n")
	if e.R[1] != 1 {
		t.Error("membar broke execution")
	}
}

func TestMoreALUAndFP(t *testing.T) {
	e := run(t, `
	mov -8, %g1
	sra %g1, 1, %g2         ! -4
	srl %g1, 60, %g3        ! high bits shifted down
	not %g0, %g4            ! all ones
	neg %g2, %g5            ! 4
	mov 3, %g6
	movr2f %g6, %f0
	fitod %g6, %f2          ! 3.0
	fnegd %f2, %f4          ! -3.0
	fmovd %f4, %f6
	fdtoi %f6, %g7          ! -3
	fcmpd %f2, %f2
	bz eq
	mov 0, %l0
	halt
eq:	mov 1, %l0
	halt
`)
	if int64(e.R[2]) != -4 {
		t.Errorf("sra = %d", int64(e.R[2]))
	}
	if e.R[3] != 15 {
		t.Errorf("srl = %d", e.R[3])
	}
	if e.R[4] != ^uint64(0) {
		t.Errorf("not = %#x", e.R[4])
	}
	if int64(e.R[5]) != 4 {
		t.Errorf("neg = %d", int64(e.R[5]))
	}
	if int64(e.R[7]) != -3 {
		t.Errorf("fdtoi = %d", int64(e.R[7]))
	}
	if e.R[16] != 1 {
		t.Error("fcmpd equality branch not taken")
	}
}

func TestJALRIndirect(t *testing.T) {
	e := run(t, `
	set target, %g1
	jalr %g1, 0, %o7
	halt
target:
	mov 9, %g2
	jalr %o7, 0, %g0
`)
	if e.R[2] != 9 {
		t.Errorf("indirect call result = %d", e.R[2])
	}
}
