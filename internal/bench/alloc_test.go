//go:build !race

// Excluded under the race detector: its instrumentation allocates on paths
// that are allocation-free in normal builds, which would make the
// AllocsPerRun assertion meaningless.

package bench

import (
	"testing"

	"csbsim/internal/mem"
	"csbsim/internal/obs/journey"
)

// The hot loop's contract: once a bandwidth workload reaches steady state,
// Machine.Tick performs no heap allocations — uops, branch snapshots, bus
// transactions, combining-buffer entries and store payloads all recycle.
// The journey-traced variants extend that contract to the store-journey
// tracer: ring slots, histogram buckets and the slowest-set all recycle
// too, so tracing every store stays allocation-free in steady state.
func TestTickSteadyStateZeroAlloc(t *testing.T) {
	for _, tc := range []struct {
		name     string
		csb      bool
		journeys bool
	}{
		{"store-bandwidth-uncached", false, false},
		{"store-bandwidth-csb", true, false},
		{"store-bandwidth-uncached-journeys", false, true},
		{"store-bandwidth-csb-journeys", true, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := DefaultParams()
			kind := mem.KindUncached
			if tc.csb {
				p.Scheme = SchemeCSB
				kind = mem.KindCombining
			}
			m, err := p.Build()
			if err != nil {
				t.Fatal(err)
			}
			if tc.journeys {
				if _, err := m.AttachJourneys(journey.DefaultConfig()); err != nil {
					t.Fatal(err)
				}
			}
			const span = 1 << 24 // far more stores than the measured window retires
			m.MapRange(IOBase, span, kind)
			prog, err := m.LoadSource(tc.name, StoreBandwidthProgram(span, p.LineSize, tc.csb))
			if err != nil {
				t.Fatal(err)
			}
			m.WarmProgram(prog)
			// Materialize the target pages: sparse physical memory
			// allocates a page on first touch, which is a cold-start cost,
			// not a per-tick one.
			zero := []byte{0}
			for a := uint64(0); a < span; a += mem.PageSize {
				m.RAM.Write(IOBase+a, zero)
			}
			for i := 0; i < 200_000; i++ {
				m.Tick()
			}
			if m.CPU.Halted() {
				t.Fatal("workload finished during warm-up")
			}
			avg := testing.AllocsPerRun(5, func() {
				for i := 0; i < 20_000; i++ {
					m.Tick()
				}
			})
			if m.CPU.Halted() {
				t.Fatal("workload finished during measurement")
			}
			if avg != 0 {
				t.Errorf("steady-state Tick allocated %.1f times per 20k cycles, want 0", avg)
			}
		})
	}
}
