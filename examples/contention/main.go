// contention: two preemptively-scheduled processes share the machine's
// single conditional store buffer. Timer interrupts cut store sequences
// short; the competing process's first combining store silently resets
// the buffer, and the interrupted process's conditional flush returns 0 —
// which its software retry loop (with the exponential backoff §3.2
// suggests for livelock avoidance) repairs. Every line still commits
// exactly once.
package main

import (
	"fmt"
	"log"

	"csbsim"
)

// csbWriter writes `lines` cache lines to its private combining region,
// retrying failed flushes with a capped exponential backoff implemented
// in ordinary SV9L code.
func csbWriter(org, target uint64, lines, fill int) string {
	return fmt.Sprintf(`
	.org %#x
	set %#x, %%o1
	set %d, %%g3            ! lines to write
	mov %d, %%g1
	movr2f %%g1, %%f0
	clr %%g6                ! total retry count (reported at exit)
nextline:
	mov 1, %%g5             ! backoff: 1 cycle, doubles per failure
RETRY:
	set 8, %%l4
	std %%f0, [%%o1]
	std %%f0, [%%o1+8]
	std %%f0, [%%o1+16]
	std %%f0, [%%o1+24]
	std %%f0, [%%o1+32]
	std %%f0, [%%o1+40]
	std %%f0, [%%o1+48]
	std %%f0, [%%o1+56]
	swap [%%o1], %%l4       ! conditional flush
	cmp %%l4, 8
	bz flushed
	! --- failed: count it, back off exponentially, retry ---
	add %%g6, 1, %%g6
	mov %%g5, %%g7
spin:	subcc %%g7, 1, %%g7
	bnz spin
	sll %%g5, 1, %%g5       ! double the backoff
	set 4096, %%g7
	cmp %%g5, %%g7
	bl RETRY
	mov %%g7, %%g5          ! cap it
	ba RETRY
flushed:
	add %%o1, 64, %%o1
	subcc %%g3, 1, %%g3
	bnz nextline
	mov %%g6, %%o0          ! retries → %%o0
	trap 2                  ! print retry count
	mov ' ', %%o0
	trap 1
	halt
`, org, target, lines, fill)
}

func main() {
	m, err := csbsim.NewMachine(csbsim.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	// A short quantum guarantees sequences get interrupted mid-flight.
	k := csbsim.NewKernel(m, 600)

	const lines = 50
	progA, err := csbsim.Assemble("a.s", csbWriter(0x10000, 0x4000_0000, lines, 111))
	if err != nil {
		log.Fatal(err)
	}
	progB, err := csbsim.Assemble("b.s", csbWriter(0x90000, 0x4100_0000, lines, 222))
	if err != nil {
		log.Fatal(err)
	}
	pa, err := k.Spawn("writer-a", 1, progA)
	if err != nil {
		log.Fatal(err)
	}
	pb, err := k.Spawn("writer-b", 2, progB)
	if err != nil {
		log.Fatal(err)
	}
	pa.Space.MapRange(0x4000_0000, 0x4000_0000, 1<<20, csbsim.KindCombining, true)
	pb.Space.MapRange(0x4100_0000, 0x4100_0000, 1<<20, csbsim.KindCombining, true)

	if err := k.Run(100_000_000); err != nil {
		log.Fatal(err)
	}
	if err := m.Drain(1_000_000); err != nil {
		log.Fatal(err)
	}

	s := m.Stats()
	fmt.Println("two processes, one CSB, preemptive scheduling:")
	fmt.Printf("  context switches:       %d\n", k.Switches())
	fmt.Printf("  successful flushes:     %d (want %d — exactly once per line)\n",
		s.CSB.FlushOK, 2*lines)
	fmt.Printf("  failed flushes:         %d (conflicts repaired by retry)\n", s.CSB.FlushFail)
	fmt.Printf("  buffer resets by rival: %d\n", s.CSB.Conflicts)
	fmt.Printf("  software retry counts:  %s (per process, via trap)\n", m.Console())

	// Verify integrity: every line holds its process's fill word.
	ok := true
	for i := uint64(0); i < lines; i++ {
		if m.RAM.ReadUint(0x4000_0000+i*64, 8) != 111 {
			ok = false
		}
		if m.RAM.ReadUint(0x4100_0000+i*64, 8) != 222 {
			ok = false
		}
	}
	if ok && s.CSB.Bursts == 2*lines {
		fmt.Println("  integrity: every line committed exactly once ✓")
	} else {
		fmt.Println("  integrity: FAILED")
	}
	for _, p := range k.Processes() {
		fmt.Printf("  %s: %d cycles\n", p.Name, p.Cycles)
	}
}
