! 4 KB of doubleword stores to combining space: each 64-byte line is
! gathered by the conditional store buffer and flushed with a swap
! (retrying on failure), so the bus sees one 64-byte burst per line.
! Run with:
!   csbsim -combining 0x40000000:64K -cpistack examples/asm/csb_stores.s

	set 0x40000000, %o1
	mov 201, %g1
	movr2f %g1, %f0
	mov 202, %g1
	movr2f %g1, %f2
	set 64, %g2
loop:
RETRY8:
	set 8, %l4
	std %f0, [%o1]
	std %f2, [%o1+8]
	std %f0, [%o1+16]
	std %f2, [%o1+24]
	std %f0, [%o1+32]
	std %f2, [%o1+40]
	std %f0, [%o1+48]
	std %f2, [%o1+56]
	swap [%o1], %l4
	cmp %l4, 8
	bnz RETRY8
	add %o1, 64, %o1
	subcc %g2, 1, %g2
	bnz loop
	membar
	halt
