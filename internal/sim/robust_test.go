package sim

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"csbsim/internal/asm"
	"csbsim/internal/device"
	"csbsim/internal/emu"
	"csbsim/internal/fault"
	"csbsim/internal/isa"
	"csbsim/internal/mem"
)

// Robustness acceptance tests: the fault schedule is bit-deterministic
// per seed (report included), recovery under injected faults converges
// to the fault-free architectural state, the watchdog catches livelock
// with a usable dump, and out-of-range device accesses fail the run with
// a typed error instead of a panic.

const robustCombBase = 0x4100_0000
const robustNICBase = 0x4000_0000

// robustCSBGuest is the §3.2 listing shape: store a line through the
// CSB, conditional-flush, retry on failure.
const robustCSBGuest = `
	set 0x41000000, %o1
	set 12345, %g1
	movr2f %g1, %f0
RETRY:
	set 8, %l4
	std %f0, [%o1]
	std %f0, [%o1+8]
	std %f0, [%o1+16]
	std %f0, [%o1+24]
	std %f0, [%o1+32]
	std %f0, [%o1+40]
	std %f0, [%o1+48]
	std %f0, [%o1+56]
	swap [%o1], %l4
	cmp %l4, 8
	bnz RETRY
	membar
	halt
`

// robustNICGuest drives the NIC with the full recovery protocol (poll
// the full bit, detect dropped pushes via the drop counter, wait for the
// sent counter before reusing the buffer) and scrubs timing-dependent
// registers before halting.
const robustNICGuest = `
	set 0x40001000, %o1     ! packet buffer (combining)
	set 0x40000000, %o0     ! registers (uncached)
	set 0xffff, %o2
	mov 0, %o3              ! packets that must be on the wire
	mov 2, %g3              ! messages
	mov 0xC0, %g4
msg:
fill:
	set 8, %l4
	stx %g4, [%o1]
	stx %g4, [%o1+8]
	stx %g4, [%o1+16]
	stx %g4, [%o1+24]
	stx %g4, [%o1+32]
	stx %g4, [%o1+40]
	stx %g4, [%o1+48]
	stx %g4, [%o1+56]
	swap [%o1], %l4
	cmp %l4, 8
	bnz fill
push:
	ldx [%o0+16], %g5
	and %g5, 2, %g6
	cmp %g6, 0
	bnz push
	srl %g5, 16, %l5
	and %l5, %o2, %l5
	set 64, %g7
	sll %g7, 48, %g7
	stx %g7, [%o0]
	membar
	ldx [%o0+16], %g5
	srl %g5, 16, %l6
	and %l6, %o2, %l6
	cmp %l5, %l6
	bnz push
	add %o3, 1, %o3
sent:
	ldx [%o0+16], %g5
	srl %g5, 32, %g6
	cmp %g6, %o3
	bl sent
	add %g4, 1, %g4
	subcc %g3, 1, %g3
	bnz msg
	membar
	mov %g0, %g5
	mov %g0, %g6
	mov %g0, %l5
	mov %g0, %l6
	halt
`

// newFaultedNICMachine builds a machine with a NIC and the fault
// injector attached, loaded with the NIC recovery guest.
func newFaultedNICMachine(t *testing.T, cfg fault.Config) (*Machine, *device.NIC) {
	t.Helper()
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	nic := device.NewNIC(device.DefaultConfig(), robustNICBase)
	if err := m.AddDevice(robustNICBase, device.RegionSize, "nic", nic, nic); err != nil {
		t.Fatal(err)
	}
	m.MapRange(robustNICBase, device.PacketBufBase, mem.KindUncached)
	m.MapRange(robustNICBase+device.PacketBufBase, 0x1000, mem.KindCombining)
	if _, err := m.AttachFaults(cfg); err != nil {
		t.Fatal(err)
	}
	if err := m.SetWatchdog(1_000_000); err != nil {
		t.Fatal(err)
	}
	if _, err := m.LoadSource("nic.s", robustNICGuest); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(50_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := m.Drain(1_000_000); err != nil {
		t.Fatalf("drain: %v", err)
	}
	return m, nic
}

// TestFaultedRunByteIdenticalPerSeed is the determinism acceptance
// criterion: the same seed and configuration reproduce a faulted run
// bit-identically — the rendered report and the full JSON statistics
// agree byte for byte — while a different seed yields a different
// schedule.
func TestFaultedRunByteIdenticalPerSeed(t *testing.T) {
	cfg := fault.DefaultConfig()
	cfg.Seed = 3

	snapshot := func(cfg fault.Config) (string, []byte) {
		m, _ := newFaultedNICMachine(t, cfg)
		s := m.Stats()
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		return s.Report(), data
	}

	rep1, js1 := snapshot(cfg)
	rep2, js2 := snapshot(cfg)
	if rep1 != rep2 {
		t.Errorf("same seed, different reports:\n--- run 1 ---\n%s--- run 2 ---\n%s", rep1, rep2)
	}
	if string(js1) != string(js2) {
		t.Errorf("same seed, different JSON stats:\n%s\nvs\n%s", js1, js2)
	}
	if !strings.Contains(rep1, "faults:") {
		t.Errorf("report misses the fault line:\n%s", rep1)
	}

	cfg.Seed = 4
	_, js3 := snapshot(cfg)
	if string(js1) == string(js3) {
		t.Error("seeds 3 and 4 produced identical runs; the seed is not reaching the schedule")
	}
}

// TestFaultRecoveryMatchesEmulator sweeps seeds over the CSB retry guest
// with all flush fault classes turned up and checks the machine ends in
// exactly the architectural state of a fault-free emulator run.
func TestFaultRecoveryMatchesEmulator(t *testing.T) {
	prog, err := asm.Assemble("csb.s", robustCSBGuest)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := emu.New(prog, emu.WithCombining(robustCombBase, 1<<16))
	if err != nil {
		t.Fatal(err)
	}
	if err := oracle.Run(); err != nil {
		t.Fatal(err)
	}

	cfg := fault.DefaultConfig()
	cfg.FlushDrop = 256
	cfg.CSBPressure = 256
	cfg.FlushDelay = 128
	cfg.BusNack = 128

	var injected uint64
	for seed := uint64(1); seed <= 8; seed++ {
		cfg.Seed = seed
		m, err := New(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		m.MapRange(robustCombBase, 1<<16, mem.KindCombining)
		inj, err := m.AttachFaults(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.SetWatchdog(1_000_000); err != nil {
			t.Fatal(err)
		}
		if err := m.Load(prog); err != nil {
			t.Fatal(err)
		}
		if err := m.Run(50_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := m.Drain(1_000_000); err != nil {
			t.Fatalf("seed %d: drain: %v", seed, err)
		}
		injected += inj.Stats().Total()

		st := m.CPU.State()
		for r := isa.Reg(1); r < isa.NumRegs; r++ {
			if st.R[r] != oracle.R[r] {
				t.Fatalf("seed %d: %s = %#x, oracle %#x", seed, isa.RegName(r), st.R[r], oracle.R[r])
			}
		}
		if st.CC != oracle.CC {
			t.Fatalf("seed %d: CC = %+v, oracle %+v", seed, st.CC, oracle.CC)
		}
		for off := uint64(0); off < 64; off += 8 {
			mv := m.RAM.ReadUint(robustCombBase+off, 8)
			ev := oracle.Mem.ReadUint(robustCombBase+off, 8)
			if mv != ev {
				t.Fatalf("seed %d: mem[%#x] = %#x, oracle %#x", seed, robustCombBase+off, mv, ev)
			}
		}
	}
	if injected == 0 {
		t.Error("no faults injected across 8 seeds; the sweep exercised nothing")
	}
}

// TestWatchdogTripsOnWedgedGuest wedges the machine (every bus
// transaction NACKed, so the uncached store never drains and the membar
// stalls retire forever) and checks the watchdog aborts the run with a
// diagnostic dump naming the culprits.
func TestWatchdogTripsOnWedgedGuest(t *testing.T) {
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m.MapRange(0x4800_0000, 0x1000, mem.KindUncached)
	if _, err := m.AttachFaults(fault.Config{Seed: 1, BusNack: fault.RateScale}); err != nil {
		t.Fatal(err)
	}
	if err := m.SetWatchdog(5000); err != nil {
		t.Fatal(err)
	}
	p, err := m.LoadSource("wedge.s", `
	set 0x48000000, %o0
	mov 1, %g1
	stx %g1, [%o0]
	membar
	halt
`)
	if err != nil {
		t.Fatal(err)
	}
	m.WarmProgram(p)

	runErr := m.Run(1_000_000)
	var wd *WatchdogError
	if !errors.As(runErr, &wd) {
		t.Fatalf("run ended with %v, want *WatchdogError", runErr)
	}
	if wd.Window != 5000 {
		t.Errorf("window = %d, want 5000", wd.Window)
	}
	if wd.Retired == 0 {
		t.Error("the guest should have retired its prologue before wedging")
	}
	for _, want := range []string{
		"cpi stack", "membar", "uncached buffer", "pipeline", "bus nacks",
	} {
		if !strings.Contains(wd.Dump, want) {
			t.Errorf("dump misses %q:\n%s", want, wd.Dump)
		}
	}
}

// TestWatchdogQuietOnHealthyRun arms the watchdog over a faulted but
// recovering run: it must not trip.
func TestWatchdogQuietOnHealthyRun(t *testing.T) {
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m.MapRange(robustCombBase, 1<<16, mem.KindCombining)
	if _, err := m.AttachFaults(fault.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if err := m.SetWatchdog(10_000); err != nil {
		t.Fatal(err)
	}
	if _, err := m.LoadSource("csb.s", robustCSBGuest); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(1_000_000); err != nil {
		t.Fatalf("healthy run tripped something: %v", err)
	}
	if m.CPU.Stats().Retired == 0 {
		t.Error("no instructions retired")
	}
}

// TestWatchdogArmingErrors covers the arming contract.
func TestWatchdogArmingErrors(t *testing.T) {
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetWatchdog(0); err == nil {
		t.Error("window 0 must be rejected")
	}
	if err := m.SetWatchdog(100); err != nil {
		t.Fatal(err)
	}
	if err := m.SetWatchdog(100); err == nil {
		t.Error("re-arming must be rejected")
	}
}

// TestBadDescriptorFailsRunTyped is the regression test for the old
// slice-bounds panic: a transmit descriptor pointing outside the packet
// buffer must surface from Run as a *device.AddrError — even though the
// guest halts cleanly right after provoking it.
func TestBadDescriptorFailsRunTyped(t *testing.T) {
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	nic := device.NewNIC(device.DefaultConfig(), robustNICBase)
	if err := m.AddDevice(robustNICBase, device.RegionSize, "nic", nic, nic); err != nil {
		t.Fatal(err)
	}
	m.MapRange(robustNICBase, device.PacketBufBase, mem.KindUncached)
	// Descriptor: offset 0x8000 (outside the 0x1000-byte packet buffer),
	// length 64. This used to crash the whole simulator at transmit time.
	if _, err := m.LoadSource("bad.s", `
	set 0x40000000, %o0
	set 0x8000, %g1
	set 64, %g2
	sll %g2, 48, %g2
	or %g1, %g2, %g1
	stx %g1, [%o0]
	membar
	halt
`); err != nil {
		t.Fatal(err)
	}

	runErr := m.Run(1_000_000)
	if runErr == nil {
		t.Fatal("run succeeded; want a typed device error")
	}
	var ae *device.AddrError
	if !errors.As(runErr, &ae) {
		t.Fatalf("err = %v, want *device.AddrError", runErr)
	}
	if ae.Op != "tx-descriptor" || ae.Addr != 0x8000 {
		t.Errorf("AddrError = %+v", ae)
	}
}

// TestAttachFaultsTwiceRejected covers the attach contract.
func TestAttachFaultsTwiceRejected(t *testing.T) {
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.AttachFaults(fault.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AttachFaults(fault.DefaultConfig()); err == nil {
		t.Error("second AttachFaults must be rejected")
	}
}
