// Command csbcluster runs a traced two-node cluster: either the built-in
// ping-pong workload (the paper's §7 "realistic application" step,
// extension X8) or two caller-supplied SV9L programs, one per node.
//
// Usage:
//
//	csbcluster [flags]                  # built-in ping-pong
//	csbcluster [flags] a.s b.s          # custom guests (a.s on node a)
//
// Observability flags wire up the PR 6 cross-node layer: -trace FILE
// writes the merged distributed-trace dump (per-packet spans with
// fifo_push → tx_start → wire_depart → wire_arrive → rx_enqueue →
// rx_drain stamps aligned onto the shared cluster timeline, plus per-hop
// latency histograms), -perfetto FILE writes the two-timeline Chrome
// trace (one process per node, flow arrows across the wire; load at
// ui.perfetto.dev), and -telemetry ADDR serves live counter frames over
// HTTP/SSE for csbtop while the cluster runs.
//
// Example:
//
//	csbcluster -send csb -rounds 50 -wire 120 -trace wire.json -v
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"csbsim/internal/bench"
	"csbsim/internal/cluster"
	"csbsim/internal/cluster/ctrace"
	"csbsim/internal/mem"
	"csbsim/internal/obs/counters"
	"csbsim/internal/obs/journey"
	"csbsim/internal/obs/telemetry"
)

func main() {
	var (
		rounds    = flag.Int("rounds", 30, "ping-pong rounds (built-in workload)")
		send      = flag.String("send", "csb", "send method for the built-in workload: pio, csb or dma")
		wire      = flag.Uint64("wire", 120, "wire latency in CPU cycles each way")
		enqDelay  = flag.Uint64("rx-delay", 0, "extra RX staging delay in CPU cycles (wire_arrive to rx_enqueue)")
		maxCycles = flag.Uint64("cycles", 100_000_000, "cluster cycle limit")

		traceOut  = flag.String("trace", "", "write the merged distributed-trace dump to FILE")
		perfetto  = flag.String("perfetto", "", "write the two-timeline Chrome trace to FILE (load at ui.perfetto.dev)")
		window    = flag.Int("trace-window", 0, "count of recent wire spans retained in the dump (0 = default 4096)")
		telemAddr = flag.String("telemetry", "", "serve live cluster telemetry on ADDR (/snapshot, /stream; watch with csbtop)")
		telemEach = flag.Uint64("telemetry-every", 10_000, "telemetry frame interval in cluster cycles")

		verbose = flag.Bool("v", false, "print the wire-hop histograms")
		jsonOut = flag.Bool("json", false, "print the run summary as JSON")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: csbcluster [flags] [a.s b.s]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 0 && flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	method, csb, err := parseSend(*send)
	if err != nil {
		fatal(err)
	}

	cfg := cluster.DefaultConfig()
	cfg.WireLatency = *wire
	cfg.RxEnqueueDelay = *enqDelay
	c, err := cluster.New(cfg)
	if err != nil {
		fatal(err)
	}
	for _, n := range c.Nodes() {
		n.MapIO(csb)
		n.M.MapRange(0x200000, 1<<16, mem.KindCached)
	}

	// Telemetry implies tracing: csbtop's latency panel reads the ctrace
	// histograms out of the cluster frames.
	traced := *traceOut != "" || *perfetto != "" || *verbose || *jsonOut || *telemAddr != ""
	if traced {
		tcfg := ctrace.DefaultConfig()
		if *window > 0 {
			tcfg.Window = *window
		}
		if _, err := c.AttachTrace(journey.DefaultConfig(), tcfg); err != nil {
			fatal(err)
		}
	}
	if *telemAddr != "" {
		streamer := telemetry.New()
		if err := c.AttachTelemetry(streamer, *telemEach); err != nil {
			fatal(err)
		}
		addr, stopTelem, err := streamer.Serve(*telemAddr)
		if err != nil {
			fatal(err)
		}
		defer stopTelem()
		fmt.Fprintf(os.Stderr, "csbcluster: telemetry on http://%s (snapshot: /snapshot, live: /stream)\n", addr)
	}

	var srcA, srcB, nameA, nameB string
	if flag.NArg() == 2 {
		nameA, nameB = flag.Arg(0), flag.Arg(1)
		a, err := os.ReadFile(nameA)
		if err != nil {
			fatal(err)
		}
		b, err := os.ReadFile(nameB)
		if err != nil {
			fatal(err)
		}
		srcA, srcB = string(a), string(b)
	} else {
		nameA, nameB = "ping.s", "pong.s"
		srcA, srcB = bench.PingPongPrograms(method, *rounds)
	}
	pa, err := c.A.M.LoadSource(nameA, srcA)
	if err != nil {
		fatal(err)
	}
	pb, err := c.B.M.LoadSource(nameB, srcB)
	if err != nil {
		fatal(err)
	}
	c.A.M.WarmProgram(pa)
	c.B.M.WarmProgram(pb)

	runErr := c.Run(*maxCycles)
	// Dumps are written even on an aborted run: the partial spans are
	// exactly what a post-mortem wants (cluster.Run has already flushed
	// the observability state).
	if *traceOut != "" {
		writeFile(*traceOut, func(f *os.File) error {
			_, err := c.Trace().WriteTo(f)
			return err
		})
	}
	if *perfetto != "" {
		writeFile(*perfetto, func(f *os.File) error {
			_, err := c.Trace().WritePerfetto(f)
			return err
		})
	}
	if runErr != nil {
		fatal(runErr)
	}

	switch {
	case *jsonOut:
		out := struct {
			Cycles    uint64                      `json:"cycles"`
			Rounds    int                         `json:"rounds,omitempty"`
			Started   uint64                      `json:"packets_started"`
			Completed uint64                      `json:"packets_completed"`
			Hops      map[string]counters.Summary `json:"hops"`
		}{Cycles: c.Cycle(), Started: c.Trace().Started(), Completed: c.Trace().Completed()}
		if flag.NArg() == 0 {
			out.Rounds = *rounds
		}
		out.Hops = c.Trace().BuildDump().Histograms
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(data))
	case *verbose:
		fmt.Printf("cluster halted after %d cycles; %d packets crossed the wire (%d completed)\n",
			c.Cycle(), c.Trace().Started(), c.Trace().Completed())
		fmt.Print(c.Registry().Snapshot().Format())
	default:
		if traced {
			fmt.Printf("cluster halted after %d cycles; %d packets crossed the wire\n",
				c.Cycle(), c.Trace().Started())
		} else {
			fmt.Printf("cluster halted after %d cycles\n", c.Cycle())
		}
	}
}

func parseSend(s string) (bench.SendMethod, bool, error) {
	switch s {
	case "pio":
		return bench.SendPIO, false, nil
	case "csb":
		return bench.SendCSB, true, nil
	case "dma":
		return bench.SendDMA, false, nil
	}
	return 0, false, fmt.Errorf("unknown send method %q (want pio, csb or dma)", s)
}

func writeFile(path string, write func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := write(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "csbcluster:", err)
	os.Exit(1)
}
