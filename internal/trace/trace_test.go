package trace

import (
	"strings"
	"testing"

	"csbsim/internal/cpu"
	"csbsim/internal/isa"
)

func ev(seq uint64, pc uint64) cpu.RetireEvent {
	return cpu.RetireEvent{
		Cycle: seq * 2, Seq: seq, PC: pc,
		Inst: isa.Inst{Op: isa.OpADDI, Rd: 1, Rs1: 1, Imm: 1},
	}
}

func TestStreamsToWriter(t *testing.T) {
	var sb strings.Builder
	r := New(&sb, 0)
	r.Record(ev(1, 0x1000))
	r.Record(ev(2, 0x1004))
	out := sb.String()
	if strings.Count(out, "\n") != 2 {
		t.Fatalf("expected 2 lines:\n%s", out)
	}
	if !strings.Contains(out, "00001000") || !strings.Contains(out, "addi") {
		t.Errorf("format wrong:\n%s", out)
	}
}

func TestRingKeepsMostRecent(t *testing.T) {
	r := New(nil, 4)
	for i := uint64(1); i <= 10; i++ {
		r.Record(ev(i, 0x1000+i*4))
	}
	if r.Count() != 10 {
		t.Errorf("count = %d", r.Count())
	}
	last := r.Last(4)
	if len(last) != 4 {
		t.Fatalf("got %d events", len(last))
	}
	for i, e := range last {
		if want := uint64(7 + i); e.Seq != want {
			t.Errorf("event %d seq = %d, want %d", i, e.Seq, want)
		}
	}
	// Asking for fewer returns the newest.
	if l2 := r.Last(2); len(l2) != 2 || l2[1].Seq != 10 {
		t.Errorf("Last(2) = %+v", l2)
	}
}

func TestRingBeforeWrap(t *testing.T) {
	r := New(nil, 8)
	r.Record(ev(1, 0x1000))
	r.Record(ev(2, 0x1004))
	last := r.Last(8)
	if len(last) != 2 || last[0].Seq != 1 || last[1].Seq != 2 {
		t.Errorf("pre-wrap ring wrong: %+v", last)
	}
}

func TestFilter(t *testing.T) {
	r := New(nil, 8)
	r.Filter = func(e cpu.RetireEvent) bool { return e.Inst.Op.IsMem() }
	r.Record(ev(1, 0x1000)) // addi: filtered
	r.Record(cpu.RetireEvent{Seq: 2, Inst: isa.Inst{Op: isa.OpSTX, Rd: 1, Rs1: 2}, IsMem: true})
	if r.Count() != 1 {
		t.Errorf("count = %d, want 1 (filtered)", r.Count())
	}
}

func TestFormatEventMem(t *testing.T) {
	e := cpu.RetireEvent{
		Cycle: 12, PC: 0x2000,
		Inst:  isa.Inst{Op: isa.OpLDX, Rd: 5, Rs1: 9, Imm: 8},
		IsMem: true, Addr: 0x4000_0008, Result: 0x7777,
	}
	s := FormatEvent(e)
	for _, want := range []string{"ldx", "va 40000008", "= 0x7777"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in %q", want, s)
		}
	}
}

func TestDump(t *testing.T) {
	r := New(nil, 4)
	r.Record(ev(1, 0x1000))
	var sb strings.Builder
	r.Dump(&sb)
	if !strings.Contains(sb.String(), "00001000") {
		t.Error("dump empty")
	}
}
