package ctrace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"csbsim/internal/obs/counters"
)

// drive runs one packet through the full span lifecycle.
func drive(t *Tracer, fifo, txs, dep, arr, enq, drn uint64) uint64 {
	id := t.PacketDeparted("a", "b", 64, 7, fifo, txs, dep)
	t.PacketArrived(id, arr)
	t.PacketEnqueued(id, enq)
	t.PacketDrained(id, drn)
	return id
}

func TestSpanLifecycle(t *testing.T) {
	reg := counters.NewRegistry()
	tr, err := New(Config{Window: 16}, reg)
	if err != nil {
		t.Fatal(err)
	}
	id := drive(tr, 100, 110, 150, 270, 270, 400)
	if id != 1 {
		t.Fatalf("first trace ID = %d, want 1", id)
	}
	if tr.Started() != 1 || tr.Completed() != 1 {
		t.Fatalf("started=%d completed=%d, want 1/1", tr.Started(), tr.Completed())
	}
	spans := tr.Retained()
	if len(spans) != 1 {
		t.Fatalf("retained %d spans, want 1", len(spans))
	}
	s := spans[0]
	if !s.Done || s.From != "a" || s.To != "b" || s.JID != 7 || s.Size != 64 {
		t.Fatalf("bad span: %+v", s)
	}
	if s.E2E != 300 {
		t.Fatalf("e2e = %d, want 300", s.E2E)
	}
	snap := reg.Snapshot()
	if snap.Counters["ctrace/packets_completed"] != 1 {
		t.Fatalf("completed counter = %d", snap.Counters["ctrace/packets_completed"])
	}
	if got := snap.Histograms["ctrace/hop/wire"].Max; got != 120 {
		t.Fatalf("wire hop = %d, want 120", got)
	}
	if got := snap.Histograms["ctrace/e2e"].Max; got != 300 {
		t.Fatalf("e2e hist = %d, want 300", got)
	}
}

// TestHopSumMatchesE2E is the acceptance check: for every completed span,
// the per-hop deltas of the merged (aligned) stamps telescope exactly to
// the reported end-to-end latency — including when the two clock domains
// are skewed.
func TestHopSumMatchesE2E(t *testing.T) {
	for _, offB := range []int64{0, 5000, -50} {
		tr, err := New(Config{Window: 64}, nil)
		if err != nil {
			t.Fatal(err)
		}
		tr.SetAlign("a", 0)
		tr.SetAlign("b", offB)
		// Receiver stamps in b's skewed domain: true time minus the offset.
		sub := func(v uint64) uint64 { return uint64(int64(v) - offB) }
		drive(tr, 100, 120, 160, sub(280), sub(285), sub(512))
		drive(tr, 900, 900, 950, sub(1070), sub(1070), sub(1100))
		for _, s := range tr.Retained() {
			if !s.Done {
				t.Fatalf("offB=%d: span %d not done", offB, s.TraceID)
			}
			hopSum := (s.TxStart - s.FIFOPush) +
				(s.WireDepart - s.TxStart) +
				(s.WireArrive - s.WireDepart) +
				(s.RxEnqueue - s.WireArrive) +
				(s.RxDrain - s.RxEnqueue)
			if hopSum != s.E2E {
				t.Fatalf("offB=%d span %d: hop sum %d != e2e %d", offB, s.TraceID, hopSum, s.E2E)
			}
			if s.WireArrive < s.WireDepart {
				t.Fatalf("offB=%d span %d: aligned arrive %d before depart %d",
					offB, s.TraceID, s.WireArrive, s.WireDepart)
			}
		}
		if got := tr.E2EHistogram().Count(); got != 2 {
			t.Fatalf("offB=%d: e2e count %d, want 2", offB, got)
		}
	}
}

func TestStaleDropsOnRingEviction(t *testing.T) {
	tr, err := New(Config{Window: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	id1 := tr.PacketDeparted("a", "b", 8, 0, 1, 2, 3)
	tr.PacketDeparted("a", "b", 8, 0, 4, 5, 6)
	tr.PacketDeparted("a", "b", 8, 0, 7, 8, 9) // evicts id1
	tr.PacketDrained(id1, 100)
	if tr.stale != 1 {
		t.Fatalf("stale = %d, want 1", tr.stale)
	}
	if tr.Completed() != 0 {
		t.Fatalf("completed = %d, want 0", tr.Completed())
	}
}

// TestDumpDeterministic: identical stamp sequences produce byte-identical
// merged dumps.
func TestDumpDeterministic(t *testing.T) {
	mk := func() []byte {
		tr, err := New(Config{Window: 8}, nil)
		if err != nil {
			t.Fatal(err)
		}
		tr.SetAlign("a", 0)
		tr.SetAlign("b", 17)
		drive(tr, 10, 12, 20, 140, 141, 200)
		drive(tr, 300, 300, 310, 430, 430, 488)
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := mk(), mk()
	if !bytes.Equal(a, b) {
		t.Fatalf("dumps differ:\n%s\n----\n%s", a, b)
	}
	var d Dump
	if err := json.Unmarshal(a, &d); err != nil {
		t.Fatalf("dump not valid JSON: %v", err)
	}
	if d.Completed != 2 || len(d.Spans) != 2 {
		t.Fatalf("dump completed=%d spans=%d, want 2/2", d.Completed, len(d.Spans))
	}
	if d.ClockOffsets["b"] != 17 {
		t.Fatalf("clock offset b = %d, want 17", d.ClockOffsets["b"])
	}
}

// TestStampPathZeroAlloc guards the wire stamp path: once the ring is
// allocated, opening and stamping spans must not allocate.
func TestStampPathZeroAlloc(t *testing.T) {
	tr, err := New(Config{Window: 256}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr.SetAlign("a", 0)
	tr.SetAlign("b", 0)
	var cyc uint64
	allocs := testing.AllocsPerRun(1000, func() {
		cyc += 10
		id := tr.PacketDeparted("a", "b", 32, 0, cyc, cyc+1, cyc+2)
		tr.PacketArrived(id, cyc+120)
		tr.PacketEnqueued(id, cyc+120)
		tr.PacketDrained(id, cyc+150)
	})
	if allocs != 0 {
		t.Fatalf("stamp path allocates: %v allocs/op", allocs)
	}
}

// TestDroppedSpan: a packet the fabric discards is closed as dropped —
// counted in the registry, flagged in the merged dump, and annotated on
// its sender-side slice in the Perfetto export.
func TestDroppedSpan(t *testing.T) {
	reg := counters.NewRegistry()
	tr, err := New(Config{Window: 8}, reg)
	if err != nil {
		t.Fatal(err)
	}
	drive(tr, 10, 12, 20, 140, 141, 200)
	id := tr.PacketDeparted("a", "b", 64, 0, 300, 302, 310)
	tr.PacketDropped(id, 310)
	if tr.Dropped() != 1 {
		t.Fatalf("Dropped() = %d, want 1", tr.Dropped())
	}
	if got := reg.Snapshot().Counters["ctrace/packets_dropped"]; got != 1 {
		t.Fatalf("ctrace/packets_dropped = %d, want 1", got)
	}
	var lost MergedSpan
	for _, s := range tr.Retained() {
		if s.TraceID == id {
			lost = s
		}
	}
	if lost.TraceID != id {
		t.Fatal("dropped span not retained")
	}
	if !lost.Dropped || lost.DropCycle != 310 || lost.Done {
		t.Fatalf("bad dropped span: %+v", lost)
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var d Dump
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	if d.Dropped != 1 || d.Completed != 1 {
		t.Fatalf("dump dropped=%d completed=%d, want 1/1", d.Dropped, d.Completed)
	}
	var pb bytes.Buffer
	if _, err := tr.WritePerfetto(&pb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(pb.String(), "dropped_at") {
		t.Error("perfetto export missing the dropped_at annotation")
	}
}

func TestWritePerfetto(t *testing.T) {
	tr, err := New(Config{Window: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	drive(tr, 10, 12, 20, 140, 141, 200)
	// One span still on the wire: sender-side slice only.
	tr.PacketDeparted("b", "a", 16, 0, 500, 501, 510)
	var buf bytes.Buffer
	if _, err := tr.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("perfetto not valid JSON: %v", err)
	}
	var procs, slices, flowS, flowF int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "M":
			if ev["name"] == "process_name" {
				procs++
			}
		case "X":
			slices++
		case "s":
			flowS++
		case "f":
			flowF++
		}
	}
	if procs != 2 {
		t.Fatalf("processes = %d, want 2", procs)
	}
	// Completed span: tx + rx slices; in-flight span: tx slice only.
	if slices != 3 {
		t.Fatalf("slices = %d, want 3", slices)
	}
	// Exactly one wire crossing completed → one flow arrow pair.
	if flowS != 1 || flowF != 1 {
		t.Fatalf("flow s/f = %d/%d, want 1/1", flowS, flowF)
	}
	if !strings.Contains(buf.String(), `"bp":"e"`) {
		t.Fatal("flow finish missing bp:e binding")
	}
}
