package mem

import (
	"fmt"
	"sort"
)

// Target is anything reachable by physical address over the system bus:
// main memory or a memory-mapped device. Burst writes are how the CSB and
// the combining uncached buffer deliver multi-word transactions (§3.3 notes
// the target device must accept burst writes; our NIC does).
type Target interface {
	// ReadTarget returns size bytes starting at pa.
	ReadTarget(pa uint64, size int) []byte
	// WriteTarget stores data at pa. Called for both single-beat and
	// burst transactions.
	WriteTarget(pa uint64, data []byte)
}

// ramTarget adapts Memory to the Target interface.
type ramTarget struct{ m *Memory }

func (r ramTarget) ReadTarget(pa uint64, size int) []byte {
	buf := make([]byte, size)
	r.m.Read(pa, buf)
	return buf
}

func (r ramTarget) WriteTarget(pa uint64, data []byte) { r.m.Write(pa, data) }

// Region is a claimed physical address range.
type Region struct {
	Base uint64
	Size uint64
	Name string
	T    Target
}

func (r Region) contains(pa uint64) bool { return pa >= r.Base && pa < r.Base+r.Size }

// Router directs physical accesses to main memory or registered device
// regions. It is the bus's view of "everything behind the system
// interface".
type Router struct {
	ram     *Memory
	regions []Region
}

// NewRouter wraps physical memory; device regions are added with Register.
func NewRouter(ram *Memory) *Router {
	return &Router{ram: ram}
}

// RAM returns the underlying physical memory.
func (rt *Router) RAM() *Memory { return rt.ram }

// Register claims a physical range for a device. Ranges must not overlap.
func (rt *Router) Register(base, size uint64, name string, t Target) error {
	nr := Region{Base: base, Size: size, Name: name, T: t}
	for _, r := range rt.regions {
		if nr.Base < r.Base+r.Size && r.Base < nr.Base+nr.Size {
			return fmt.Errorf("mem: region %q overlaps %q", name, r.Name)
		}
	}
	rt.regions = append(rt.regions, nr)
	sort.Slice(rt.regions, func(i, j int) bool { return rt.regions[i].Base < rt.regions[j].Base })
	return nil
}

// Resolve returns the target responsible for pa (main memory when no device
// claims it).
func (rt *Router) Resolve(pa uint64) Target {
	for _, r := range rt.regions {
		if r.contains(pa) {
			return r.T
		}
	}
	return ramTarget{rt.ram}
}

// Read fetches size bytes at pa from whichever target owns the address.
func (rt *Router) Read(pa uint64, size int) []byte {
	return rt.Resolve(pa).ReadTarget(pa, size)
}

// Write stores data at pa via whichever target owns the address.
func (rt *Router) Write(pa uint64, data []byte) {
	rt.Resolve(pa).WriteTarget(pa, data)
}

// Regions returns the registered device regions (sorted by base).
func (rt *Router) Regions() []Region {
	out := make([]Region, len(rt.regions))
	copy(out, rt.regions)
	return out
}
