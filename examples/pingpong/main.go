// pingpong: two complete simulated machines joined by a wire bounce a
// 64-byte message back and forth — the workstation-cluster setting that
// motivates the paper (§2). Node A sends through the conditional store
// buffer (one atomic line burst into the NIC, one store to launch it),
// node B echoes everything back the same way. The round-trip time breaks
// down into wire latency plus per-message software overhead; the CSB
// attacks the overhead term.
package main

import (
	"fmt"
	"log"

	"csbsim/internal/bench"
)

func main() {
	const rounds = 20
	fmt.Println("two-node ping-pong, 64-byte messages, 20 rounds per point")
	fmt.Println()
	fmt.Printf("%-14s %12s %12s %12s\n", "send method", "wire=0", "wire=120", "wire=480")
	for _, m := range []bench.SendMethod{bench.SendPIO, bench.SendCSB, bench.SendDMA} {
		fmt.Printf("%-14s", m)
		for _, wire := range []uint64{0, 120, 480} {
			rt, err := bench.MeasurePingPong(m, rounds, wire)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %9.0f cy", rt)
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("the CSB column gap versus plain PIO is constant across wire")
	fmt.Println("latencies: it is pure per-message overhead removed — exactly the")
	fmt.Println("term that limits fine-grain parallel applications (paper §2, §5).")
}
