// Cluster-level watchdog: the PR 4 retire-progress watchdog detects a
// wedged *machine* from inside its own tick loop; this one detects a
// wedged *node* from the cluster's point of view, at the single-threaded
// barrier between lookahead windows. A node is wedged when its CPU
// retired nothing for a whole watchdog window of cluster cycles while
// not halted, not frozen and not already removed from service. Two
// responses: abort the run with a WatchdogError carrying every node's
// diagnostic dump (the default — post-mortem first), or gracefully
// degrade by marking the node down so the rest of the cluster keeps
// serving while packets routed to the corpse are counted as
// cluster/degraded_drops.
package cluster

import (
	"fmt"
	"strings"
)

// WatchdogError reports a wedged node detected by the cluster watchdog.
// Dump carries every node's diagnostic dump plus the cluster's fault and
// fabric state — the cluster-wide post-mortem.
type WatchdogError struct {
	// Node is the wedged node's name.
	Node string
	// Window is the configured watchdog window in cluster cycles.
	Window uint64
	// Cycle is the cluster cycle the watchdog fired.
	Cycle uint64
	// Retired is the wedged node's retired-instruction count, unchanged
	// for the whole window.
	Retired uint64
	// Dump is the multi-node diagnostic dump.
	Dump string
}

func (e *WatchdogError) Error() string {
	return fmt.Sprintf("cluster: watchdog: node %s retired no instruction for %d cycles (cluster cycle %d, retired=%d)\n%s",
		e.Node, e.Window, e.Cycle, e.Retired, e.Dump)
}

// SetWatchdog arms the cluster watchdog: a node whose CPU retires no
// instruction for `window` cluster cycles — while not halted — is
// declared wedged. With degrade false the run aborts with a
// *WatchdogError (flushing observability state first); with degrade true
// the node is removed from service instead and the run continues in
// degraded mode. The check runs at the windowed engine's barriers (and
// once per lockstep Run iteration), so the effective detection
// granularity is one lookahead window; window must be at least one
// window long to avoid false positives. Call before running.
func (c *Cluster) SetWatchdog(window uint64, degrade bool) error {
	if window == 0 {
		return fmt.Errorf("cluster: watchdog window must be positive")
	}
	if c.wdWindow != 0 {
		return fmt.Errorf("cluster: watchdog already armed")
	}
	c.wdWindow = window
	c.wdDegrade = degrade
	c.wdLast = make([]uint64, len(c.nodes))
	c.wdMark = make([]uint64, len(c.nodes))
	for i, n := range c.nodes {
		c.wdLast[i] = n.M.CPU.Retired()
		c.wdMark[i] = c.cycle
	}
	return nil
}

// DownNodes lists the names of nodes removed from service by graceful
// degradation, in topology order.
func (c *Cluster) DownNodes() []string {
	var names []string
	for _, n := range c.nodes {
		if n.down {
			names = append(names, n.name)
		}
	}
	return names
}

// checkWatchdog runs the wedged-node check over every live node. Returns
// a *WatchdogError when a node is wedged and degradation is off (the
// caller aborts the run); marks the node down and returns nil when
// degradation is on.
//
//csb:barrier reads every node's machine state between windows
func (c *Cluster) checkWatchdog() error {
	if c.wdWindow == 0 {
		return nil
	}
	for i, n := range c.nodes {
		if n.down || n.frozen {
			continue
		}
		r := n.M.CPU.Retired()
		// A halted CPU legitimately retires nothing (the node may live on
		// through its hook) — that is idleness, not a wedge.
		if r != c.wdLast[i] || n.M.CPU.Halted() {
			c.wdLast[i] = r
			c.wdMark[i] = c.cycle
			continue
		}
		if c.cycle-c.wdMark[i] >= c.wdWindow {
			if c.wdDegrade {
				c.markDown(i)
				continue
			}
			c.recEvent(c.cycle, "watchdog", n.name, float64(c.wdWindow))
			c.flushObs()
			return &WatchdogError{
				Node:    n.name,
				Window:  c.wdWindow,
				Cycle:   c.cycle,
				Retired: r,
				Dump:    c.DiagnosticDump(),
			}
		}
	}
	return nil
}

// markDown removes node i from service: it stops ticking and packets
// routed to it are dropped as cluster/degraded_drops.
//
//csb:barrier mutates node scheduling state between windows
func (c *Cluster) markDown(i int) {
	n := c.nodes[i]
	n.down = true
	n.frozen = true
	c.nodesDown++
	c.recEvent(c.cycle, "node_down", n.name, float64(c.nodesDown))
}

// DiagnosticDump renders the cluster-wide post-mortem: the wire fault
// injector's accounting, the fabric's drop counters, the degraded-node
// set, and every node's single-machine diagnostic dump (stats report,
// CPI stack, pipeline and buffer state). Read it at barriers or after a
// run, when the node goroutines are parked.
//
//csb:barrier reads every node's machine state between windows
func (c *Cluster) DiagnosticDump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "==== cluster diagnostic dump (cycle %d, %d nodes, %s) ====\n",
		c.cycle, len(c.nodes), c.cfg.Topology)
	fmt.Fprintf(&b, "fabric: route_drops=%d link_drops=%d fault_drops=%d fault_dups=%d fault_delay_cycles=%d outage_drops=%d degraded_drops=%d\n",
		c.routeDrops, c.linkDrops, c.faultDrops, c.faultDups, c.faultDelayCycles, c.outageDrops, c.degradedDrops)
	for i := range c.links {
		for j := range c.links[i] {
			if lk := c.links[i][j]; lk != nil && lk.drops > 0 {
				fmt.Fprintf(&b, "fabric: link %s->%s drops=%d\n", c.nodes[i].name, c.nodes[j].name, lk.drops)
			}
		}
	}
	if inj := c.wfaults; inj != nil {
		s := inj.Stats()
		fmt.Fprintf(&b, "wire faults: seed=%d draws=%d drops=%d dups=%d delays=%d (%d cycles) outages=%d (%d cycles)\n",
			s.Seed, s.Draws, s.WireDrops, s.WireDups, s.WireDelays, s.WireDelayCycles, s.OutageWindows, s.OutageCycles)
	}
	if down := c.DownNodes(); len(down) > 0 {
		fmt.Fprintf(&b, "degraded: nodes down: %s\n", strings.Join(down, ", "))
	}
	for _, n := range c.nodes {
		fmt.Fprintf(&b, "---- node %s (retired=%d halted=%v frozen=%v down=%v) ----\n",
			n.name, n.M.CPU.Retired(), n.M.CPU.Halted(), n.frozen, n.down)
		b.WriteString(n.M.DiagnosticDump())
	}
	return b.String()
}
