// Command csbtrace queries a store-journey dump written by
// `csbsim -journeys FILE`: run totals, the per-layer latency histograms,
// a top-N table of the slowest journeys with a per-hop breakdown, and
// the retained recent journeys, with filtering by kind and address.
//
// Usage:
//
//	csbtrace [flags] journeys.json
//
// Examples:
//
//	csbtrace journeys.json                     # summary + slowest table
//	csbtrace -top 10 journeys.json             # 10 slowest journeys
//	csbtrace -kind csb_store journeys.json     # one journey kind only
//	csbtrace -addr 0x40000040 journeys.json    # journeys touching an address
//	csbtrace -range 0x40000000:0x40001000 journeys.json
//	csbtrace -recent 20 journeys.json          # also list recent journeys
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"

	"csbsim/internal/obs/journey"
)

func main() {
	var (
		top      = flag.Int("top", 10, "show the N slowest journeys (0 = none)")
		recent   = flag.Int("recent", 0, "also list the N most recent journeys (0 = none)")
		kindFlag = flag.String("kind", "", "filter by kind: uncached_store, csb_store or nic_descriptor")
		addr     = flag.String("addr", "", "filter: journeys whose span contains this address (hex ok)")
		rng      = flag.String("range", "", "filter: journeys starting inside lo:hi (hex ok)")
		hops     = flag.Bool("hops", true, "show the per-hop breakdown columns")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: csbtrace [flags] journeys.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	var d journey.Dump
	if err := json.Unmarshal(data, &d); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", flag.Arg(0), err))
	}

	filter, err := buildFilter(*kindFlag, *addr, *rng)
	if err != nil {
		fatal(err)
	}

	printTotals(&d)
	printHistograms(&d)
	if *top > 0 {
		slowest := applyFilter(d.Slowest, filter)
		if len(slowest) > *top {
			slowest = slowest[:*top]
		}
		fmt.Printf("\nslowest %d journeys:\n", len(slowest))
		printTable(slowest, *hops)
	}
	if *recent > 0 {
		rec := applyFilter(d.Recent, filter)
		if len(rec) > *recent {
			rec = rec[len(rec)-*recent:]
		}
		fmt.Printf("\nmost recent %d journeys:\n", len(rec))
		printTable(rec, *hops)
	}
}

func buildFilter(kind, addr, rng string) (func(journey.Journey) bool, error) {
	var kindOK func(journey.Kind) bool
	if kind != "" {
		var want journey.Kind
		if err := want.UnmarshalJSON([]byte(strconv.Quote(kind))); err != nil {
			return nil, err
		}
		kindOK = func(k journey.Kind) bool { return k == want }
	}
	var addrOK func(journey.Journey) bool
	switch {
	case addr != "" && rng != "":
		return nil, fmt.Errorf("-addr and -range are mutually exclusive")
	case addr != "":
		a, err := parseNum(addr)
		if err != nil {
			return nil, err
		}
		addrOK = func(j journey.Journey) bool {
			return j.Addr <= a && a < j.Addr+uint64(j.Size)
		}
	case rng != "":
		parts := strings.SplitN(rng, ":", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad range %q (want lo:hi)", rng)
		}
		lo, err := parseNum(parts[0])
		if err != nil {
			return nil, err
		}
		hi, err := parseNum(parts[1])
		if err != nil {
			return nil, err
		}
		addrOK = func(j journey.Journey) bool { return lo <= j.Addr && j.Addr < hi }
	}
	return func(j journey.Journey) bool {
		if kindOK != nil && !kindOK(j.Kind) {
			return false
		}
		if addrOK != nil && !addrOK(j) {
			return false
		}
		return true
	}, nil
}

func applyFilter(js []journey.Journey, keep func(journey.Journey) bool) []journey.Journey {
	out := make([]journey.Journey, 0, len(js))
	for _, j := range js {
		if keep(j) {
			out = append(out, j)
		}
	}
	return out
}

func printTotals(d *journey.Dump) {
	kinds := make([]string, 0, len(d.Started))
	for k := range d.Started {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "kind\tstarted\tcompleted\taborted")
	for _, k := range kinds {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\n", k, d.Started[k], d.Completed[k], d.Aborted[k])
	}
	w.Flush()
	if d.StaleDrops > 0 {
		fmt.Printf("stale stamp drops: %d (journeys evicted from the retention window mid-flight)\n", d.StaleDrops)
	}
}

func printHistograms(d *journey.Dump) {
	names := make([]string, 0, len(d.Histograms))
	for n := range d.Histograms {
		if d.Histograms[n].Count > 0 {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return
	}
	fmt.Println("\nper-layer latency (CPU cycles):")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "histogram\tcount\tmin\tp50\tp95\tp99\tmax\tmean")
	for _, n := range names {
		h := d.Histograms[n]
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%.1f\n",
			n, h.Count, h.Min, h.P50, h.P95, h.P99, h.Max, h.Mean)
	}
	w.Flush()
}

func printTable(js []journey.Journey, hops bool) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	if hops {
		fmt.Fprintln(w, "kind\tid\taddr\tsize\tstart\thop1\thop2\thop3\te2e\tflags")
	} else {
		fmt.Fprintln(w, "kind\tid\taddr\tsize\tstart\te2e\tflags")
	}
	for _, j := range js {
		flags := make([]string, 0, 2)
		if j.Coalesced {
			flags = append(flags, "coalesced")
		}
		if j.Aborted {
			flags = append(flags, "aborted")
		}
		if !j.Done && !j.Aborted {
			flags = append(flags, "in-flight")
		}
		e2e := "-"
		if j.Done {
			e2e = strconv.FormatUint(j.E2E(), 10)
		}
		if hops {
			names := journey.HopNames(j.Kind)
			cols := make([]string, 0, 3)
			prev := j.T[journey.HopStart]
			for h := journey.HopStart + 1; h < journey.NumHops; h++ {
				if names[h] == "" {
					continue
				}
				if j.T[h] == 0 {
					cols = append(cols, names[h]+":-")
					continue
				}
				cols = append(cols, fmt.Sprintf("%s:+%d", names[h], j.T[h]-prev))
				prev = j.T[h]
			}
			for len(cols) < 3 {
				cols = append(cols, "")
			}
			fmt.Fprintf(w, "%s\t%d\t%#x\t%d\t%d\t%s\t%s\t%s\t%s\t%s\n",
				j.Kind, j.ID, j.Addr, j.Size, j.T[journey.HopStart],
				cols[0], cols[1], cols[2], e2e, strings.Join(flags, ","))
		} else {
			fmt.Fprintf(w, "%s\t%d\t%#x\t%d\t%d\t%s\t%s\n",
				j.Kind, j.ID, j.Addr, j.Size, j.T[journey.HopStart],
				e2e, strings.Join(flags, ","))
		}
	}
	w.Flush()
}

func parseNum(s string) (uint64, error) {
	base := 10
	if strings.HasPrefix(s, "0x") {
		base = 16
		s = s[2:]
	}
	v, err := strconv.ParseUint(s, base, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	return v, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "csbtrace:", err)
	os.Exit(1)
}
