package cpu

import (
	"csbsim/internal/isa"
	"csbsim/internal/mem"
	"csbsim/internal/obs"
)

// This file implements CPI stall attribution: every cycle in which retire
// slot 0 commits nothing is charged to exactly one obs.StallCause by
// inspecting the post-retire pipeline state. Together with the commit,
// kernel-stall and halted buckets charged in Tick, the CPI stack's
// buckets provably sum to stats.Cycles — the invariant the observability
// tests enforce on every workload.
//
// The attribution follows the usual CPI-stack convention (gem5's O3
// pipeline viewer, top-down analysis): blame the oldest instruction. The
// ROB head is the only instruction whose stall provably costs a commit
// slot; everything younger may still be hidden by out-of-order execution.

// classifyCycle returns the bucket for the cycle retire() just finished.
func (c *CPU) classifyCycle() obs.StallCause {
	if c.retiredThisCycle {
		return obs.CauseCommit
	}
	if c.cycleCauseSet {
		return c.cycleCause
	}
	var head *uop
	for _, u := range c.rob {
		if !u.dead {
			head = u
			break
		}
	}
	if head == nil {
		switch {
		case len(c.fetchQ) > 0:
			// Decoded instructions are waiting; dispatch refills the ROB
			// this very cycle. Plain frontend latency.
			return obs.CauseFrontend
		case c.squashRefill:
			return obs.CauseBranchSquash
		case c.icacheMiss:
			return obs.CauseICacheMiss
		default:
			return obs.CauseFrontend
		}
	}
	if head.faulted && head.done {
		// fault() halts the core this cycle; charge the bookkeeping
		// cycle rather than invent a bucket for a terminal event.
		return obs.CauseOther
	}
	if head.needsRetireExec() {
		return c.classifyRetireExec(head)
	}
	if head.done {
		// A completed head that did not commit can only have been
		// refused by the cache write buffer (commit returned false).
		return obs.CauseStoreBuf
	}
	if head.isMem {
		return c.classifyMem(head)
	}
	// Functional-unit op still waiting on operands or latency.
	return obs.CauseExec
}

// classifyRetireExec attributes a stalled retire-executed head operation
// (uncached/combining accesses, swaps, MEMBAR).
func (c *CPU) classifyRetireExec(u *uop) obs.StallCause {
	if u.isMem && !u.addrReady {
		switch {
		case u.walkStarted:
			return obs.CauseTLB
		case !u.agenDone && !u.addrSrcReady():
			return obs.CauseExec // address operand not ready
		default:
			return obs.CauseLSQ // AGU contention
		}
	}
	if u.isMem && !u.dataSrcReady() {
		return obs.CauseExec // store data not ready
	}
	switch u.inst.Op {
	case isa.OpMEMBAR:
		return obs.CauseMembar
	case isa.OpSWAP:
		switch u.kind {
		case mem.KindCached:
			return obs.CauseDCache
		case mem.KindCombining:
			return obs.CauseCSB // conditional flush: CSB busy or latency
		default:
			if u.retPhase == 1 {
				return obs.CauseBusArb // uncached RMW read on the bus
			}
			return obs.CauseUncached
		}
	}
	switch u.inst.Op.Class() {
	case isa.ClassLoad:
		if u.retPhase == 1 {
			return obs.CauseBusArb // uncached load in flight on the bus
		}
		return obs.CauseUncached // uncached buffer full
	case isa.ClassStore:
		if u.kind == mem.KindCombining {
			return obs.CauseCSB
		}
		return obs.CauseUncached
	}
	// RDPR/WRPR/TRAP/IRET/HALT never stall at the head; anything that
	// still lands here is an unmodeled corner.
	return obs.CauseOther
}

// classifyMem attributes a stalled cached-memory head operation.
func (c *CPU) classifyMem(u *uop) obs.StallCause {
	switch {
	case !u.agenDone:
		if !u.addrSrcReady() {
			return obs.CauseExec // address operand dependence
		}
		return obs.CauseLSQ // waiting for an AGU
	case !u.addrReady:
		return obs.CauseTLB // hardware walk in progress
	case u.memWait:
		return obs.CauseDCache // fill in flight
	case u.executing:
		return obs.CauseDCache // cache access latency counting down
	case u.inst.Op.Class() == isa.ClassStore:
		return obs.CauseExec // waiting for store data
	default:
		return obs.CauseLSQ // load ready but blocked on ports/ordering/MSHRs
	}
}
