package telemetry

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"csbsim/internal/obs/counters"
)

func newTestStreamer(t *testing.T) (*Streamer, *uint64, *counters.Histogram) {
	t.Helper()
	s := New()
	reg := counters.NewRegistry()
	var sent uint64
	reg.Counter("nic/packets_sent", func() uint64 { return sent })
	h := reg.Histogram("lat/e2e")
	if err := s.AddNode("a", reg); err != nil {
		t.Fatal(err)
	}
	return s, &sent, h
}

func TestPublishFramesAndDeltas(t *testing.T) {
	s, sent, h := newTestStreamer(t)
	if s.Snapshot() != nil {
		t.Fatal("snapshot before first publish should be nil")
	}

	*sent = 3
	h.Record(100)
	h.Record(200)
	s.Publish(1000)

	var f Frame
	if err := json.Unmarshal(s.Snapshot(), &f); err != nil {
		t.Fatal(err)
	}
	if f.Cycle != 1000 || f.Seq != 1 {
		t.Fatalf("frame cycle=%d seq=%d, want 1000/1", f.Cycle, f.Seq)
	}
	nf := f.Nodes["a"]
	if nf == nil || nf.Counters["nic/packets_sent"] != 3 {
		t.Fatalf("bad node frame: %+v", nf)
	}
	if nf.Histograms["lat/e2e"].Delta != 2 {
		t.Fatalf("first-frame delta = %d, want 2", nf.Histograms["lat/e2e"].Delta)
	}

	// Second frame: one new sample → delta 1, cumulative count 3.
	h.Record(50)
	s.Publish(2000)
	if err := json.Unmarshal(s.Snapshot(), &f); err != nil {
		t.Fatal(err)
	}
	hf := f.Nodes["a"].Histograms["lat/e2e"]
	if hf.Count != 3 || hf.Delta != 1 {
		t.Fatalf("second frame count=%d delta=%d, want 3/1", hf.Count, hf.Delta)
	}
}

func TestDuplicateNodeRejected(t *testing.T) {
	s := New()
	reg := counters.NewRegistry()
	if err := s.AddNode("a", reg); err != nil {
		t.Fatal(err)
	}
	if err := s.AddNode("a", reg); err == nil {
		t.Fatal("duplicate node accepted")
	}
}

// TestServeHTTP exercises the real HTTP surface: /snapshot returns the
// latest frame, and /stream delivers at least one SSE event per publish.
func TestServeHTTP(t *testing.T) {
	s, sent, _ := newTestStreamer(t)
	addr, stop, err := s.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	*sent = 1
	s.Publish(10)

	resp, err := http.Get("http://" + addr + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	var f Frame
	if err := json.NewDecoder(resp.Body).Decode(&f); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if f.Cycle != 10 || f.Nodes["a"].Counters["nic/packets_sent"] != 1 {
		t.Fatalf("bad snapshot frame: %+v", f)
	}

	// Stream: connect, then publish while connected; expect the replayed
	// latest frame plus the two live ones.
	resp, err = http.Get("http://" + addr + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content-type = %q", ct)
	}

	frames := make(chan Frame, 8)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var f Frame
			if json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &f) == nil {
				frames <- f
			}
		}
	}()

	recv := func() Frame {
		select {
		case f := <-frames:
			return f
		case <-time.After(5 * time.Second):
			t.Fatal("timed out waiting for SSE frame")
			return Frame{}
		}
	}
	if f := recv(); f.Seq != 1 {
		t.Fatalf("replayed frame seq = %d, want 1", f.Seq)
	}
	// Give the handler a beat to register the subscriber before publishing.
	for i := 0; i < 100; i++ {
		s.mu.Lock()
		n := len(s.subs)
		s.mu.Unlock()
		if n > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	*sent = 2
	s.Publish(20)
	if f := recv(); f.Seq != 2 || f.Cycle != 20 {
		t.Fatalf("live frame seq=%d cycle=%d, want 2/20", f.Seq, f.Cycle)
	}
}

// TestSlowSubscriberDropsNotBlocks: a subscriber that never drains its
// channel must not stall Publish, and the gap is surfaced in Dropped.
func TestSlowSubscriberDropsNotBlocks(t *testing.T) {
	s, _, _ := newTestStreamer(t)
	sub := &subscriber{ch: make(chan []byte, 1)}
	s.mu.Lock()
	s.subs[sub] = struct{}{}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		for i := uint64(1); i <= 100; i++ {
			s.Publish(i)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Publish blocked on a slow subscriber")
	}
	if sub.dropped == 0 {
		t.Fatal("expected dropped frames for a full channel")
	}
	// Drain the one buffered frame, then the next publish reports the gap.
	<-sub.ch
	s.Publish(101)
	var f Frame
	if err := json.Unmarshal(<-sub.ch, &f); err != nil {
		t.Fatal(err)
	}
	if f.Dropped == 0 {
		t.Fatal("gap not surfaced in Dropped")
	}
}

// TestAlertsInFrames: once an alerts source is wired (the flight
// recorder in real runs), every published frame carries the currently
// active alerts, and frames go back to omitting the field when the
// breach clears.
func TestAlertsInFrames(t *testing.T) {
	s, sent, _ := newTestStreamer(t)
	var active []Alert
	s.SetAlerts(func() []Alert { return active })

	*sent = 1
	active = []Alert{{Rule: "nic/packets_sent == 0", Series: "a/nic/packets_sent", Since: 500, Value: 1}}
	s.Publish(1000)
	var f Frame
	if err := json.Unmarshal(s.Snapshot(), &f); err != nil {
		t.Fatal(err)
	}
	if len(f.Alerts) != 1 || f.Alerts[0].Series != "a/nic/packets_sent" || f.Alerts[0].Since != 500 {
		t.Fatalf("alerts = %+v", f.Alerts)
	}

	active = nil
	s.Publish(2000)
	raw := s.Snapshot()
	f = Frame{}
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatal(err)
	}
	if len(f.Alerts) != 0 {
		t.Errorf("cleared alerts still present: %+v", f.Alerts)
	}
	if strings.Contains(string(raw), `"alerts"`) {
		t.Error("empty alerts field not omitted from the frame JSON")
	}
}
