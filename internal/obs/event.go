package obs

// InstEvent is one retired instruction's lifecycle, stamped in CPU cycles
// by the pipeline. A zero stamp means the stage was not recorded for this
// instruction (e.g. retire-executed operations never pass the issue
// stage). Retire is always set.
type InstEvent struct {
	Seq    uint64
	PC     uint64
	Disasm string

	Fetch    uint64
	Dispatch uint64
	Issue    uint64
	Complete uint64
	Retire   uint64

	IsMem bool
	Addr  uint64
}

// Span returns the first and last recorded cycle of the instruction's
// lifetime (first nonzero stamp through retire).
func (e InstEvent) Span() (start, end uint64) {
	start = e.Retire
	for _, s := range []uint64{e.Fetch, e.Dispatch, e.Issue, e.Complete} {
		if s != 0 && s < start {
			start = s
		}
	}
	return start, e.Retire
}

// BusEvent is one completed bus transaction converted to CPU cycles
// (the machine multiplies bus cycles by the clock ratio so instruction
// and bus tracks share one timeline).
type BusEvent struct {
	Start uint64 // first occupied CPU cycle
	End   uint64 // one past the last occupied CPU cycle
	Addr  uint64
	Size  int
	Write bool
	IO    bool
}
