// Package counters is the unified performance-counter registry: every
// simulated component (bus, caches, uncached buffer, CSB, CPU, devices)
// registers its named counters and latency histograms once, and the
// machine report renders them all uniformly — the gem5-style "one
// machine-readable stats tree per simulated object" discipline, applied
// at the report boundary so the components' existing Stats structs (and
// their hot-path update code) stay untouched.
//
// Counters are registered as read closures over the component's existing
// fields, so attaching a registry never perturbs simulation state or
// timing; histograms are owned by the registry and recorded into directly
// by instrumentation (the journey tracer), with a fixed power-of-two
// bucket layout so Record stays allocation-free on the tick hot path.
package counters

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// numBuckets covers every uint64 value: bucket i holds values whose
// bit length is i, i.e. bucket 0 is exactly {0} and bucket i (i>0) is
// [2^(i-1), 2^i).
const numBuckets = 65

// Histogram is a fixed-bucket power-of-two latency histogram. Record is
// allocation-free and O(1); quantiles are derived from the buckets at
// report time (resolved to the bucket's upper bound, clamped to the
// exactly-tracked min and max).
type Histogram struct {
	name    string
	buckets [numBuckets]uint64
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
}

// NewHistogram creates a standalone (unregistered) histogram; most
// callers want Registry.Histogram instead.
func NewHistogram(name string) *Histogram { return &Histogram{name: name} }

// Name returns the histogram's registered name.
func (h *Histogram) Name() string { return h.name }

// Count returns the number of recorded values.
func (h *Histogram) Count() uint64 { return h.count }

// Record adds one value.
//
//csb:hotpath
func (h *Histogram) Record(v uint64) {
	h.buckets[bits.Len64(v)]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Merge folds another histogram's samples into h (bucket-wise addition;
// min/max/sum/count combine exactly, quantiles stay bucket-resolution).
// Used to aggregate per-client latency histograms into one serving curve
// after a run; o is left unchanged.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.count == 0 {
		return
	}
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
}

// Quantile returns the q-quantile (0 < q <= 1), resolved to the upper
// bound of the bucket containing that rank and clamped to the exact
// min/max. Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	rank := uint64(q * float64(h.count))
	if rank == 0 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum uint64
	for i := 0; i < numBuckets; i++ {
		cum += h.buckets[i]
		if cum >= rank {
			ub := uint64(0)
			if i > 0 {
				ub = 1<<uint(i) - 1
			}
			if ub > h.max {
				ub = h.max
			}
			if ub < h.min {
				ub = h.min
			}
			return ub
		}
	}
	return h.max
}

// HistState is a raw point-in-time copy of a histogram's buckets and
// exact min/max/sum/count — the substrate for *windowed* statistics: two
// states taken at different cycles subtract bucket-wise, so a flight
// recorder can compute per-window quantiles instead of cumulative ones.
type HistState struct {
	Buckets [numBuckets]uint64
	Count   uint64
	Sum     uint64
	Min     uint64
	Max     uint64
}

// ReadState copies the histogram's current state into dst without
// allocating — the per-window rollup path calls this on every attached
// histogram at every window boundary.
//
//csb:hotpath
func (h *Histogram) ReadState(dst *HistState) {
	dst.Buckets = h.buckets
	dst.Count = h.count
	dst.Sum = h.sum
	dst.Min = h.min
	dst.Max = h.max
}

// WindowStats summarizes only the samples recorded between prev and cur
// (cur must be the later state of the same histogram). Quantiles are
// exact at bucket resolution over the window's own samples; min/max are
// the tightest bounds derivable from the delta buckets, clamped by the
// exactly-tracked global extrema where those remain valid bounds.
// An empty window returns a zero Summary.
func WindowStats(prev, cur *HistState) Summary {
	n := cur.Count - prev.Count
	if n == 0 {
		return Summary{}
	}
	var delta [numBuckets]uint64
	lo, hi := -1, 0
	for i := 0; i < numBuckets; i++ {
		delta[i] = cur.Buckets[i] - prev.Buckets[i]
		if delta[i] > 0 {
			if lo < 0 {
				lo = i
			}
			hi = i
		}
	}
	s := Summary{Count: n, Min: bucketLo(lo), Max: bucketHi(hi)}
	// The global max is an upper bound on any window's max; the global
	// min a lower bound on any window's min. Take the tighter bound.
	if cur.Max < s.Max {
		s.Max = cur.Max
	}
	if cur.Min > s.Min {
		s.Min = cur.Min
	}
	s.Mean = float64(cur.Sum-prev.Sum) / float64(n)
	q := func(qf float64) uint64 {
		rank := uint64(qf * float64(n))
		if rank == 0 {
			rank = 1
		}
		if rank > n {
			rank = n
		}
		var cum uint64
		for i := lo; i < numBuckets; i++ {
			cum += delta[i]
			if cum >= rank {
				ub := bucketHi(i)
				if ub > s.Max {
					ub = s.Max
				}
				if ub < s.Min {
					ub = s.Min
				}
				return ub
			}
		}
		return s.Max
	}
	s.P50, s.P95, s.P99 = q(0.50), q(0.95), q(0.99)
	return s
}

// bucketLo is the smallest value bucket i can hold.
func bucketLo(i int) uint64 {
	if i <= 0 {
		return 0
	}
	return 1 << uint(i-1)
}

// bucketHi is the largest value bucket i can hold.
func bucketHi(i int) uint64 {
	if i <= 0 {
		return 0
	}
	return 1<<uint(i) - 1
}

// Summary is the rendered form of a histogram: counts plus the
// percentile set the paper's latency-decomposition figures use.
type Summary struct {
	Count uint64  `json:"count"`
	Min   uint64  `json:"min"`
	Max   uint64  `json:"max"`
	Mean  float64 `json:"mean"`
	P50   uint64  `json:"p50"`
	P95   uint64  `json:"p95"`
	P99   uint64  `json:"p99"`
}

// Summary computes the histogram's summary.
func (h *Histogram) Summary() Summary {
	s := Summary{Count: h.count, Min: h.min, Max: h.max}
	if h.count > 0 {
		s.Mean = float64(h.sum) / float64(h.count)
		s.P50 = h.Quantile(0.50)
		s.P95 = h.Quantile(0.95)
		s.P99 = h.Quantile(0.99)
	}
	return s
}

// Registry holds every registered counter and histogram. Registration
// happens once at attach time (and may allocate); reads happen at report
// time. It is not safe for concurrent use, matching the single-threaded
// simulator.
type Registry struct {
	counters   []counterEntry
	histograms []*Histogram
	names      map[string]bool
}

type counterEntry struct {
	name string
	read func() uint64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

// Counter registers a named counter as a read closure over the owning
// component's state. Names must be unique; a duplicate is a wiring bug
// and panics.
func (r *Registry) Counter(name string, read func() uint64) {
	r.claim(name)
	r.counters = append(r.counters, counterEntry{name: name, read: read})
}

// Histogram creates, registers and returns a named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.claim(name)
	h := NewHistogram(name)
	r.histograms = append(r.histograms, h)
	return h
}

func (r *Registry) claim(name string) {
	if name == "" {
		panic("counters: empty name")
	}
	if r.names[name] {
		panic(fmt.Sprintf("counters: duplicate registration of %q", name))
	}
	r.names[name] = true
}

// VisitCounters calls fn for every registered counter in registration
// order — the flight recorder uses this at seal time to build its series
// table without going through an allocating Snapshot.
func (r *Registry) VisitCounters(fn func(name string, read func() uint64)) {
	for _, c := range r.counters {
		fn(c.name, c.read)
	}
}

// VisitHistograms calls fn for every registered histogram in
// registration order.
func (r *Registry) VisitHistograms(fn func(h *Histogram)) {
	for _, h := range r.histograms {
		fn(h)
	}
}

// Snapshot is a point-in-time copy of every registered counter value and
// histogram summary, ready for JSON output (maps marshal with sorted
// keys, keeping the output deterministic).
type Snapshot struct {
	Counters   map[string]uint64  `json:"counters"`
	Histograms map[string]Summary `json:"histograms,omitempty"`
}

// Snapshot reads every counter and summarizes every histogram.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{Counters: make(map[string]uint64, len(r.counters))}
	for _, c := range r.counters {
		s.Counters[c.name] = c.read()
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]Summary, len(r.histograms))
		for _, h := range r.histograms {
			s.Histograms[h.name] = h.Summary()
		}
	}
	return s
}

// Format renders the snapshot as an aligned, name-sorted text block —
// the uniform rendering sim.Report appends for every registered layer.
func (s *Snapshot) Format() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	width := 0
	for n := range s.Counters { //csb:orderless — collects keys and takes a max
		names = append(names, n)
		if len(n) > width {
			width = len(n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%-*s %d\n", width, n, s.Counters[n])
	}
	if len(s.Histograms) > 0 {
		hnames := make([]string, 0, len(s.Histograms))
		hwidth := 0
		for n := range s.Histograms { //csb:orderless — collects keys and takes a max
			hnames = append(hnames, n)
			if len(n) > hwidth {
				hwidth = len(n)
			}
		}
		sort.Strings(hnames)
		for _, n := range hnames {
			h := s.Histograms[n]
			fmt.Fprintf(&b, "%-*s n=%d min=%d p50=%d p95=%d p99=%d max=%d mean=%.1f\n",
				hwidth, n, h.Count, h.Min, h.P50, h.P95, h.P99, h.Max, h.Mean)
		}
	}
	return b.String()
}
