package bus

// Chunk is a naturally-aligned power-of-two span within a combining-buffer
// entry, ready to issue as one bus transaction.
type Chunk struct {
	Addr uint64
	Size int
}

// AlignedChunks decomposes the valid bytes of a combining-buffer entry into
// the minimal greedy sequence of naturally-aligned power-of-two transfers,
// honoring the bus alignment restriction of §4.1 ("All transactions must be
// naturally aligned, which restricts the ability to combine stores").
//
// base is the (block-aligned) address of mask[0]. maxSize caps individual
// transfers (a full cache line at most).
func AlignedChunks(base uint64, mask []bool, maxSize int) []Chunk {
	return AppendAlignedChunks(nil, base, mask, maxSize)
}

// AppendAlignedChunks is AlignedChunks appending into dst, letting hot
// callers reuse one chunk slice across entries instead of allocating per
// decomposition.
func AppendAlignedChunks(dst []Chunk, base uint64, mask []bool, maxSize int) []Chunk {
	out := dst
	i := 0
	for i < len(mask) {
		if !mask[i] {
			i++
			continue
		}
		// Find the maximal contiguous run of valid bytes.
		j := i
		for j < len(mask) && mask[j] {
			j++
		}
		// Greedily cover [i, j) with aligned power-of-two chunks.
		for i < j {
			addr := base + uint64(i)
			size := maxSize
			for size > 1 && (addr%uint64(size) != 0 || i+size > j) {
				size >>= 1
			}
			out = append(out, Chunk{Addr: addr, Size: size})
			i += size
		}
	}
	return out
}
