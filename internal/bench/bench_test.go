package bench

import (
	"strings"
	"testing"

	"csbsim/internal/asm"
	"csbsim/internal/bus"
)

// These tests assert the paper's qualitative findings hold in the
// reproduction — they are the executable form of EXPERIMENTS.md.

func measure(t *testing.T, p MachineParams, size int) float64 {
	t.Helper()
	bw, err := MeasureBandwidth(p, size)
	if err != nil {
		t.Fatalf("%v (scheme %s, %dB)", err, p.Scheme, size)
	}
	return bw
}

func approx(got, want, tol float64) bool {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d <= tol
}

// §4.3.1: "without any combining, the bandwidth is independent of the
// total amount of data transferred … the effective bus bandwidth is 4
// bytes per bus cycle, which is half of the peak bandwidth."
func TestNonCombiningFlatAtHalfPeak(t *testing.T) {
	p := DefaultParams()
	p.Scheme = 0
	for _, size := range []int{16, 64, 256, 1024} {
		if bw := measure(t, p, size); !approx(bw, 4.0, 0.01) {
			t.Errorf("no-combine at %dB = %.2f B/cyc, want 4.0", size, bw)
		}
	}
}

// §4.3.1: "For small data transfers of 16 bytes, combining has no effect
// because the first store leaves the buffer before the second is issued."
func TestSixteenByteTransfersDefeatCombining(t *testing.T) {
	for _, scheme := range []Scheme{0, 16, 32, 64} {
		p := DefaultParams()
		p.Scheme = scheme
		if bw := measure(t, p, 16); !approx(bw, 4.0, 0.01) {
			t.Errorf("%s at 16B = %.2f, want 4.0 (no combining effect)", scheme, bw)
		}
	}
}

// The CSB always issues full-line bursts: 64B over 9 bus cycles = 7.11
// B/cyc for line-sized and larger transfers; smaller transfers are
// penalized by the padded burst (16 useful bytes / 9 cycles = 1.78).
func TestCSBFullLineBurstBandwidth(t *testing.T) {
	p := DefaultParams()
	p.Scheme = SchemeCSB
	if bw := measure(t, p, 64); !approx(bw, 64.0/9, 0.01) {
		t.Errorf("CSB at 64B = %.2f, want %.2f", bw, 64.0/9)
	}
	if bw := measure(t, p, 1024); !approx(bw, 64.0/9, 0.05) {
		t.Errorf("CSB at 1KB = %.2f, want %.2f", bw, 64.0/9)
	}
	if bw := measure(t, p, 16); !approx(bw, 16.0/9, 0.01) {
		t.Errorf("CSB at 16B = %.2f, want %.2f (padded-line penalty)", bw, 16.0/9)
	}
}

// §4.3.1: "The conditional store buffer clearly has the greatest advantage
// over all other schemes for transfer sizes of about a cache line" and
// beyond.
func TestCSBWinsAtLineSizeAndAbove(t *testing.T) {
	for _, size := range []int{64, 128, 256, 512, 1024} {
		pCSB := DefaultParams()
		pCSB.Scheme = SchemeCSB
		csb := measure(t, pCSB, size)
		for _, scheme := range []Scheme{0, 16, 32, 64} {
			p := DefaultParams()
			p.Scheme = scheme
			if other := measure(t, p, size); other >= csb {
				t.Errorf("at %dB: %s (%.2f) >= CSB (%.2f)", size, scheme, other, csb)
			}
		}
	}
}

// §4.3.1: "increasing the cache line size pushes the crossover point
// between the CSB and other schemes towards larger transfers."
func TestLargerLinesMoveCrossoverRight(t *testing.T) {
	crossover := func(line int) int {
		for _, size := range TransferSizes {
			pC := DefaultParams()
			pC.LineSize = line
			pC.Scheme = SchemeCSB
			csb := measure(t, pC, size)
			best := 0.0
			for _, scheme := range Schemes(line)[:len(Schemes(line))-1] {
				p := DefaultParams()
				p.LineSize = line
				p.Scheme = scheme
				if bw := measure(t, p, size); bw > best {
					best = bw
				}
			}
			if csb >= best {
				return size
			}
		}
		return 1 << 20
	}
	c32 := crossover(32)
	c128 := crossover(128)
	if c32 > c128 {
		t.Errorf("crossover at 32B line (%d) > at 128B line (%d)", c32, c128)
	}
	if c128 < 128 {
		t.Errorf("128B-line crossover %d below one line", c128)
	}
}

// §4.3.1 (fig 3g): with a turnaround cycle "the CSB bandwidth surpasses
// all other schemes for even shorter transfers."
func TestTurnaroundFavorsCSBEarlier(t *testing.T) {
	at32 := func(turnaround int) (csb, best float64) {
		pC := DefaultParams()
		pC.Bus.Turnaround = turnaround
		pC.Scheme = SchemeCSB
		csb = measure(t, pC, 32)
		for _, scheme := range []Scheme{0, 16, 32, 64} {
			p := DefaultParams()
			p.Bus.Turnaround = turnaround
			p.Scheme = scheme
			if bw := measure(t, p, 32); bw > best {
				best = bw
			}
		}
		return csb, best
	}
	csb0, best0 := at32(0)
	csb1, best1 := at32(1)
	adv0 := csb0 - best0
	adv1 := csb1 - best1
	if adv1 <= adv0 {
		t.Errorf("turnaround should improve the CSB's relative position at 32B: %+.2f -> %+.2f", adv0, adv1)
	}
}

// §4.3.1 (fig 3h): an 8-cycle burst completely overlaps a 4-cycle ack
// delay, so the CSB is unaffected while short transactions suffer.
func TestAckDelayHurtsShortTransactionsOnly(t *testing.T) {
	pNo := DefaultParams()
	pNo.Scheme = 0
	base := measure(t, pNo, 256)
	pNo.Bus.AckDelay = 4
	delayed := measure(t, pNo, 256)
	if !(delayed < base) {
		t.Errorf("ack delay did not hurt single-beat stores: %.2f -> %.2f", base, delayed)
	}
	pC := DefaultParams()
	pC.Scheme = SchemeCSB
	csbBase := measure(t, pC, 256)
	pC.Bus.AckDelay = 4
	csbDelayed := measure(t, pC, 256)
	if !approx(csbBase, csbDelayed, 0.05) {
		t.Errorf("4-cycle ack delay should be hidden by 9-cycle bursts: %.2f -> %.2f", csbBase, csbDelayed)
	}
}

// Fig 4(a): on a 256-bit split bus, a 64B burst takes 2 cycles — the same
// as two dword stores — so peak CSB bandwidth is 32 B/cyc and
// non-combining is 8 B/cyc (one dword per cycle).
func TestSplitBusWastedWidth(t *testing.T) {
	p := DefaultParams()
	p.Bus.Model = bus.Split
	p.Bus.WidthBytes = 32
	p.Scheme = 0
	if bw := measure(t, p, 1024); !approx(bw, 8.0, 0.01) {
		t.Errorf("no-combine on 256-bit split = %.2f, want 8.0", bw)
	}
	p.Scheme = SchemeCSB
	// Peak would be 32 B/cyc (64B line / 2 cycles); the core-side cost of
	// eight stores plus a flush per line keeps it slightly below on so
	// fast a bus, as in the paper's fig 4(a).
	if bw := measure(t, p, 1024); bw < 28 || bw > 32 {
		t.Errorf("CSB on 256-bit split = %.2f, want 28..32", bw)
	}
}

// Fig 5 slopes: locking costs ~2 bus cycles (= 2*ratio CPU cycles) per
// doubleword because the lock releases only after the buffer drains; the
// CSB costs ~1 CPU cycle per doubleword.
func TestLockVsCSBSlopes(t *testing.T) {
	slope := func(scheme Scheme) float64 {
		p := DefaultParams()
		p.Scheme = scheme
		c2, err := MeasureLockLatency(p, 2, true)
		if err != nil {
			t.Fatal(err)
		}
		c8, err := MeasureLockLatency(p, 8, true)
		if err != nil {
			t.Fatal(err)
		}
		return (c8 - c2) / 6
	}
	if s := slope(0); !approx(s, 12, 1.5) {
		t.Errorf("lock+no-combine slope = %.1f cycles/dword, want ~12", s)
	}
	if s := slope(SchemeCSB); !approx(s, 1, 0.5) {
		t.Errorf("CSB slope = %.1f cycles/dword, want ~1", s)
	}
}

// Fig 5(b): a lock miss adds roughly the 100-cycle miss latency to every
// transfer size, while the CSB (no lock at all) is unaffected.
func TestLockMissPenalty(t *testing.T) {
	p := DefaultParams()
	p.Scheme = 0
	hit, err := MeasureLockLatency(p, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	miss, err := MeasureLockLatency(p, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	penalty := miss - hit
	if penalty < 60 || penalty > 160 {
		t.Errorf("lock miss penalty = %.0f cycles, want ≈100", penalty)
	}
	pC := DefaultParams()
	pC.Scheme = SchemeCSB
	csbHit, _ := MeasureLockLatency(pC, 4, true)
	csbMiss, _ := MeasureLockLatency(pC, 4, false)
	if csbHit != csbMiss {
		t.Errorf("CSB affected by lock residence: %.0f vs %.0f", csbHit, csbMiss)
	}
}

// CSB beats every locking scheme at every size, dramatically on a miss.
func TestCSBDominatesLocking(t *testing.T) {
	for _, hit := range []bool{true, false} {
		for _, n := range []int{2, 8} {
			pC := DefaultParams()
			pC.Scheme = SchemeCSB
			csb, err := MeasureLockLatency(pC, n, hit)
			if err != nil {
				t.Fatal(err)
			}
			p := DefaultParams()
			p.Scheme = 0
			lock, err := MeasureLockLatency(p, n, hit)
			if err != nil {
				t.Fatal(err)
			}
			if csb >= lock {
				t.Errorf("hit=%v n=%d: CSB %.0f >= lock %.0f", hit, n, csb, lock)
			}
		}
	}
}

// X1: the double-buffered CSB removes the issue-side stall that the
// single-entry design suffers from the third back-to-back sequence on
// (§3.2: "avoid program stalls awaiting the completion of the conditional
// flush"); steady-state bandwidth is unchanged because the bus remains
// the bottleneck.
func TestDoubleBufferHelpsStreams(t *testing.T) {
	single := DefaultParams()
	single.Scheme = SchemeCSB
	double := single
	double.DoubleBufferedCSB = true
	s3, err := MeasureCSBIssueOverhead(single, 3)
	if err != nil {
		t.Fatal(err)
	}
	d3, err := MeasureCSBIssueOverhead(double, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d3 >= s3 {
		t.Errorf("double buffer should cut issue overhead at 3 lines: %.0f >= %.0f", d3, s3)
	}
	ms := measure(t, single, 1024)
	md := measure(t, double, 1024)
	if !approx(ms, md, 0.01) {
		t.Errorf("bandwidth should be bus-bound either way: %.2f vs %.2f", ms, md)
	}
}

// X4: R10000-style strictly-sequential combining collapses on shuffled
// store order while anywhere-in-block combining keeps most of its benefit.
func TestR10KCombiningFailsOnShuffledOrder(t *testing.T) {
	anyOrder := DefaultParams()
	anyOrder.Scheme = Scheme(64)
	seq := anyOrder
	seq.SequentialCombining = true
	a, err := measureShuffledBandwidth(anyOrder, 512)
	if err != nil {
		t.Fatal(err)
	}
	s, err := measureShuffledBandwidth(seq, 512)
	if err != nil {
		t.Fatal(err)
	}
	if s >= a {
		t.Errorf("sequential-only (%.2f) should lose to any-order (%.2f) on shuffled stores", s, a)
	}
	if !approx(s, 4.0, 0.3) {
		t.Errorf("sequential-only on shuffled order = %.2f, want ~4 (no combining)", s)
	}
}

// X2: DMA's CPU overhead is near-flat; CSB PIO's grows far slower than
// plain PIO's; CSB has the lowest wire latency at every size.
func TestPIOvsDMAShapes(t *testing.T) {
	p := DefaultParams()
	type point struct{ wire, overhead float64 }
	get := func(m SendMethod, size int) point {
		w, o, err := MeasureMessageSend(p, m, size)
		if err != nil {
			t.Fatal(err)
		}
		return point{w, o}
	}
	dmaSmall, dmaBig := get(SendDMA, 16), get(SendDMA, 1024)
	pioSmall, pioBig := get(SendPIO, 16), get(SendPIO, 1024)
	csbSmall, csbBig := get(SendCSB, 16), get(SendCSB, 1024)

	if dmaBig.overhead-dmaSmall.overhead > 200 {
		t.Errorf("DMA overhead not flat: %.0f -> %.0f", dmaSmall.overhead, dmaBig.overhead)
	}
	pioGrowth := pioBig.overhead - pioSmall.overhead
	csbGrowth := csbBig.overhead - csbSmall.overhead
	if csbGrowth >= pioGrowth {
		t.Errorf("CSB overhead growth (%.0f) should beat plain PIO (%.0f)", csbGrowth, pioGrowth)
	}
	for _, size := range []int{64, 256, 1024} {
		csb := get(SendCSB, size)
		if pio := get(SendPIO, size); csb.wire >= pio.wire {
			t.Errorf("at %dB: CSB wire %.0f >= PIO %.0f", size, csb.wire, pio.wire)
		}
		if dma := get(SendDMA, size); csb.wire >= dma.wire {
			t.Errorf("at %dB: CSB wire %.0f >= DMA %.0f", size, csb.wire, dma.wire)
		}
	}
}

// ---- workload generator sanity ----

func TestStoreBandwidthProgramAssembles(t *testing.T) {
	for _, size := range TransferSizes {
		for _, line := range []int{32, 64, 128} {
			for _, csb := range []bool{false, true} {
				src := StoreBandwidthProgram(size, line, csb)
				if _, err := asm.Assemble("w.s", src); err != nil {
					t.Errorf("size %d line %d csb %v: %v", size, line, csb, err)
				}
			}
		}
	}
}

func TestStoreBandwidthProgramStoreCount(t *testing.T) {
	src := StoreBandwidthProgram(256, 64, false)
	// 256B in 64B lines → loop of 4 iterations with 8 std each.
	if got := strings.Count(src, "std "); got != 8 {
		t.Errorf("std count = %d, want 8 (one unrolled line)", got)
	}
	if !strings.Contains(src, "set 4, %g2") {
		t.Error("expected 4 loop iterations")
	}
	small := StoreBandwidthProgram(16, 64, false)
	if got := strings.Count(small, "std "); got != 2 {
		t.Errorf("16B program std count = %d, want 2", got)
	}
}

func TestLockProgramsAssemble(t *testing.T) {
	for n := 2; n <= 8; n++ {
		if _, err := asm.Assemble("l.s", LockSequenceProgram(n)); err != nil {
			t.Errorf("lock n=%d: %v", n, err)
		}
		if _, err := asm.Assemble("c.s", CSBSequenceProgram(n)); err != nil {
			t.Errorf("csb n=%d: %v", n, err)
		}
	}
	if _, err := asm.Assemble("p.s", LockPrologueProgram()); err != nil {
		t.Error(err)
	}
}

func TestShuffleOrderIsPermutation(t *testing.T) {
	for n := 1; n <= 16; n++ {
		seen := make([]bool, n)
		for _, i := range shuffleOrder(n) {
			if i < 0 || i >= n || seen[i] {
				t.Fatalf("n=%d: bad permutation %v", n, shuffleOrder(n))
			}
			seen[i] = true
		}
		for i, s := range seen {
			if !s {
				t.Fatalf("n=%d: index %d missing", n, i)
			}
		}
	}
}

func TestSchemesList(t *testing.T) {
	got := Schemes(64)
	want := []Scheme{0, 16, 32, 64, SchemeCSB}
	if len(got) != len(want) {
		t.Fatalf("Schemes(64) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Schemes(64)[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if s := Schemes(128); len(s) != 6 || s[4] != Scheme(128) {
		t.Errorf("Schemes(128) = %v", s)
	}
}

func TestSchemeString(t *testing.T) {
	if SchemeCSB.String() != "CSB" || Scheme(0).String() != "no-combine" || Scheme(32).String() != "combine-32" {
		t.Error("Scheme.String wrong")
	}
}

func TestFormatTable(t *testing.T) {
	r := Result{
		ID: "t", Title: "test", XLabel: "x", YLabel: "y",
		X:      []string{"16B", "32B"},
		Series: []Series{{Name: "a", Y: []float64{1.5, 2.5}}},
	}
	out := Format(r)
	for _, want := range []string{"Figure t", "16B", "32B", "a", "1.50", "2.50"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format output missing %q:\n%s", want, out)
		}
	}
	csv := FormatCSV(r)
	if !strings.Contains(csv, "a,1.5000,2.5000") {
		t.Errorf("CSV wrong:\n%s", csv)
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, err := ByID("9z"); err == nil {
		t.Error("unknown figure accepted")
	}
}

// X6: lock-free CSB access to a shared device beats lock-based access
// under preemption, and degrades far less as quanta shrink (§5).
func TestSharedNICLockFreeBeatsLocking(t *testing.T) {
	const msgs = 10
	lockShort, err := MeasureSharedNIC(false, msgs, 400)
	if err != nil {
		t.Fatal(err)
	}
	csbShort, err := MeasureSharedNIC(true, msgs, 400)
	if err != nil {
		t.Fatal(err)
	}
	if lockShort.Packets != 2*msgs || csbShort.Packets != 2*msgs {
		t.Fatalf("packets: lock %d, csb %d", lockShort.Packets, csbShort.Packets)
	}
	if csbShort.Cycles >= lockShort.Cycles {
		t.Errorf("CSB (%d cycles) should beat locking (%d) at quantum 400",
			csbShort.Cycles, lockShort.Cycles)
	}
	// Sensitivity to quantum: locking suffers much more from short slices.
	lockLong, err := MeasureSharedNIC(false, msgs, 3200)
	if err != nil {
		t.Fatal(err)
	}
	csbLong, err := MeasureSharedNIC(true, msgs, 3200)
	if err != nil {
		t.Fatal(err)
	}
	lockDegradation := float64(lockShort.Cycles) / float64(lockLong.Cycles)
	csbDegradation := float64(csbShort.Cycles) / float64(csbLong.Cycles)
	if csbDegradation >= lockDegradation {
		t.Errorf("CSB degradation %.2fx should be below locking's %.2fx",
			csbDegradation, lockDegradation)
	}
}

// X7 (§4.3.2 discussion): "Experiments with a 2-way and 8-way superscalar
// CPU did not change the lock overhead at all, because of the short data
// and control dependencies." Core width must leave the lock latency
// essentially unchanged.
func TestLockOverheadInsensitiveToCoreWidth(t *testing.T) {
	lat := func(width, n int) float64 {
		p := DefaultParams()
		p.CoreWidth = width
		c, err := MeasureLockLatency(p, n, true)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	for _, n := range []int{2, 8} {
		w2 := lat(2, n)
		w4 := lat(4, n)
		w8 := lat(8, n)
		// The sequence is dependence-bound: allow only a handful of
		// cycles of spread across a 4x width range.
		if !approx(w2, w8, 8) || !approx(w4, w8, 8) {
			t.Errorf("n=%d: lock latency varies with width: 2-way %.0f, 4-way %.0f, 8-way %.0f",
				n, w2, w4, w8)
		}
	}
	// Sanity: width does matter for ILP-rich code — the bandwidth
	// microbenchmark's issue loop — so the knob itself works.
	p2 := DefaultParams()
	p2.CoreWidth = 2
	p2.Scheme = SchemeCSB
	narrow, err := MeasureCSBIssueOverhead(p2, 8)
	if err != nil {
		t.Fatal(err)
	}
	p8 := p2
	p8.CoreWidth = 8
	wide, err := MeasureCSBIssueOverhead(p8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if wide > narrow {
		t.Errorf("8-way (%.0f cycles) slower than 2-way (%.0f) on the issue loop", wide, narrow)
	}
}

// X8: in the two-node ping-pong, the CSB's advantage over plain PIO is a
// constant overhead term, independent of wire latency, and round-trip
// time grows with twice the wire latency.
func TestPingPongOverheadVsLatency(t *testing.T) {
	rt := func(m SendMethod, wire uint64) float64 {
		v, err := MeasurePingPong(m, 5, wire)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	pioFast, pioSlow := rt(SendPIO, 0), rt(SendPIO, 300)
	csbFast, csbSlow := rt(SendCSB, 0), rt(SendCSB, 300)
	// CSB is faster at both latencies.
	if csbFast >= pioFast || csbSlow >= pioSlow {
		t.Errorf("CSB not faster: %v/%v vs %v/%v", csbFast, csbSlow, pioFast, pioSlow)
	}
	// The gap is (nearly) latency-independent: overhead, not latency.
	gapFast := pioFast - csbFast
	gapSlow := pioSlow - csbSlow
	if !approx(gapFast, gapSlow, 12) {
		t.Errorf("overhead gap changed with latency: %.0f vs %.0f", gapFast, gapSlow)
	}
	// Round trip grows by ~2x the added wire latency.
	growth := pioSlow - pioFast
	if !approx(growth, 600, 60) {
		t.Errorf("RTT growth = %.0f for +300 cycles each way, want ~600", growth)
	}
}

// Smoke-run two complete figure sweeps end to end (the benchmarks run the
// rest; this keeps the figure plumbing under `go test`).
func TestFigureSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweeps")
	}
	r, err := ByID("3e")
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "3e" || len(r.Series) != 5 || len(r.X) != len(TransferSizes) {
		t.Errorf("3e shape wrong: %d series, %d x", len(r.Series), len(r.X))
	}
	// The last series must be the CSB per Schemes() ordering.
	if r.Series[len(r.Series)-1].Name != "CSB" {
		t.Errorf("last series = %q", r.Series[len(r.Series)-1].Name)
	}
	x1, err := ByID("X1")
	if err != nil {
		t.Fatal(err)
	}
	if len(x1.Series) != 2 {
		t.Errorf("X1 series = %d", len(x1.Series))
	}
}

func TestFormatBars(t *testing.T) {
	r := Result{
		ID: "t", Title: "bars", XLabel: "size", YLabel: "bw",
		X: []string{"16B"},
		Series: []Series{
			{Name: "a", Y: []float64{4}},
			{Name: "bb", Y: []float64{8}},
		},
	}
	out := FormatBars(r)
	if !strings.Contains(out, "#") || !strings.Contains(out, "8.00") {
		t.Errorf("bars output wrong:\n%s", out)
	}
	// The larger value gets the longer bar.
	lines := strings.Split(out, "\n")
	var aLen, bLen int
	for _, l := range lines {
		if strings.Contains(l, "a ") && strings.Contains(l, "#") {
			aLen = strings.Count(l, "#")
		}
		if strings.Contains(l, "bb") && strings.Contains(l, "#") {
			bLen = strings.Count(l, "#")
		}
	}
	if bLen <= aLen {
		t.Errorf("bar lengths: a=%d bb=%d", aLen, bLen)
	}
}
