// Package bench regenerates every figure of the paper's evaluation
// section: uncached store bandwidth on multiplexed and split buses
// (figures 3 and 4) and lock-vs-CSB atomic access latency (figure 5),
// plus the ablations listed in DESIGN.md.
//
// Workloads are generated as SV9L assembly and executed on the full
// machine, exactly as the paper drives RSIM with microbenchmarks (§4.2).
package bench

import (
	"fmt"
	"strings"
)

// IOBase is the uncached (or combining) target of all store workloads.
const IOBase uint64 = 0x4000_0000

// Scheme identifies an uncached-store handling scheme: the paper's bars.
//
//	0   — no combining: every store is its own bus transaction
//	16…128 — combining uncached buffer with that block size
//	-1  — the conditional store buffer
type Scheme int

// SchemeCSB selects the conditional store buffer.
const SchemeCSB Scheme = -1

// String names the scheme as in the figures.
func (s Scheme) String() string {
	switch {
	case s == SchemeCSB:
		return "CSB"
	case s == 0:
		return "no-combine"
	default:
		return fmt.Sprintf("combine-%d", int(s))
	}
}

// Schemes returns the paper's bar set for a given cache line size:
// non-combining, then combining at 16 B doubling up to the line size,
// then the CSB.
func Schemes(lineSize int) []Scheme {
	out := []Scheme{0}
	for b := 16; b <= lineSize; b *= 2 {
		out = append(out, Scheme(b))
	}
	return append(out, SchemeCSB)
}

// StoreBandwidthProgram builds the §4.2 bandwidth microbenchmark: a tight
// loop of doubleword stores, unrolled so each iteration stores one cache
// line, repeated until totalBytes have been stored. For the CSB scheme
// each line ends with a conditional flush and a retry check, exactly as in
// the paper's listing.
func StoreBandwidthProgram(totalBytes, lineSize int, csb bool) string {
	if totalBytes%8 != 0 {
		panic("totalBytes must be a multiple of 8")
	}
	var b strings.Builder
	fmt.Fprintf(&b, "\tset %#x, %%o1\n", IOBase)
	b.WriteString("\tmov 201, %g1\n\tmovr2f %g1, %f0\n")
	b.WriteString("\tmov 202, %g1\n\tmovr2f %g1, %f2\n")

	// Transfer sizes and line sizes are powers of two, so the total is
	// either smaller than a line (one partial block) or a whole number
	// of lines.
	dwords := totalBytes / 8
	perIter := lineSize / 8
	if dwords < perIter {
		perIter = dwords
	}
	iters := dwords / perIter

	emitBlock := func(n int) {
		if csb {
			fmt.Fprintf(&b, "RETRY%d:\n", n)
			fmt.Fprintf(&b, "\tset %d, %%l4\n", n)
		}
		for i := 0; i < n; i++ {
			reg := "%f0"
			if i%2 == 1 {
				reg = "%f2"
			}
			if i == 0 {
				fmt.Fprintf(&b, "\tstd %s, [%%o1]\n", reg)
			} else {
				fmt.Fprintf(&b, "\tstd %s, [%%o1+%d]\n", reg, i*8)
			}
		}
		if csb {
			b.WriteString("\tswap [%o1], %l4\n")
			fmt.Fprintf(&b, "\tcmp %%l4, %d\n", n)
			fmt.Fprintf(&b, "\tbnz RETRY%d\n", n)
		}
	}

	if iters > 1 {
		fmt.Fprintf(&b, "\tset %d, %%g2\n", iters)
		b.WriteString("loop:\n")
		emitBlock(perIter)
		fmt.Fprintf(&b, "\tadd %%o1, %d, %%o1\n", lineSize)
		b.WriteString("\tsubcc %g2, 1, %g2\n\tbnz loop\n")
	} else {
		emitBlock(perIter)
	}
	b.WriteString("\tmembar\n\thalt\n")
	return b.String()
}

// ShuffledStoreProgram is StoreBandwidthProgram with the stores inside
// each line issued in a fixed non-sequential order (used by ablation X4:
// the R10000-style buffer only combines strictly sequential runs).
func ShuffledStoreProgram(totalBytes, lineSize int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "\tset %#x, %%o1\n", IOBase)
	b.WriteString("\tmov 201, %g1\n\tmovr2f %g1, %f0\n")

	dwords := totalBytes / 8
	perIter := lineSize / 8
	if dwords < perIter {
		perIter = dwords
	}
	iters := dwords / perIter

	order := shuffleOrder(perIter)
	emitBlock := func() {
		for _, i := range order {
			if i == 0 {
				b.WriteString("\tstd %f0, [%o1]\n")
			} else {
				fmt.Fprintf(&b, "\tstd %%f0, [%%o1+%d]\n", i*8)
			}
		}
	}
	if iters > 1 {
		fmt.Fprintf(&b, "\tset %d, %%g2\n", iters)
		b.WriteString("loop:\n")
		emitBlock()
		fmt.Fprintf(&b, "\tadd %%o1, %d, %%o1\n", lineSize)
		b.WriteString("\tsubcc %g2, 1, %g2\n\tbnz loop\n")
	} else {
		emitBlock()
	}
	b.WriteString("\tmembar\n\thalt\n")
	return b.String()
}

// shuffleOrder interleaves low and high halves: 0,n/2,1,n/2+1,… — every
// store lands in the same block but never at the next sequential address.
func shuffleOrder(n int) []int {
	out := make([]int, 0, n)
	half := (n + 1) / 2
	for i := 0; i < half; i++ {
		out = append(out, i)
		if i+half < n {
			out = append(out, i+half)
		}
	}
	return out
}

// LockSequenceProgram builds the §4.2 atomic-access microbenchmark: a
// swap-based lock acquire, n uncached doubleword stores, a memory barrier
// and the lock release. The lock acquire and release mirror the paper's 8-
// and 3-instruction sequences.
func LockSequenceProgram(nDwords int) string {
	var b strings.Builder
	b.WriteString(lockPrologue)
	// --- lock acquire (address setup, swap register init, check) ---
	b.WriteString(`acquire:
	set lock, %o2
	mov 1, %l4
	swap [%o2], %l4
	tst %l4
	bnz acquire
	membar
`)
	for i := 0; i < nDwords; i++ {
		if i == 0 {
			b.WriteString("\tstd %f0, [%o1]\n")
		} else {
			fmt.Fprintf(&b, "\tstd %%f0, [%%o1+%d]\n", i*8)
		}
	}
	// The lock may only be released after the last uncached store has
	// left the uncached buffer (§4.2).
	b.WriteString(`	membar
	clr %l5
	stx %l5, [%o2]
	halt
`)
	return b.String()
}

// LockPrologueProgram is the calibration twin of LockSequenceProgram: the
// identical prologue followed directly by halt. Subtracting its cycle
// count isolates the lock-access-unlock latency.
func LockPrologueProgram() string {
	return lockPrologue + "\thalt\n"
}

const lockPrologue = `	.org 0x1000
lock:	.dword 0
	.entry main
main:
	set ` + "0x40000000" + `, %o1
	mov 7, %g1
	movr2f %g1, %f0
`

// CSBSequenceProgram is the CSB side of figure 5: n combining stores and a
// conditional flush with retry check; the access is complete as soon as
// the flush succeeds.
func CSBSequenceProgram(nDwords int) string {
	var b strings.Builder
	b.WriteString(lockPrologue)
	b.WriteString("RETRY:\n")
	fmt.Fprintf(&b, "\tset %d, %%l4\n", nDwords)
	for i := 0; i < nDwords; i++ {
		if i == 0 {
			b.WriteString("\tstd %f0, [%o1]\n")
		} else {
			fmt.Fprintf(&b, "\tstd %%f0, [%%o1+%d]\n", i*8)
		}
	}
	b.WriteString("\tswap [%o1], %l4\n")
	fmt.Fprintf(&b, "\tcmp %%l4, %d\n", nDwords)
	b.WriteString("\tbnz RETRY\n\thalt\n")
	return b.String()
}
