package cluster

import (
	"bytes"
	"encoding/json"
	"testing"

	"csbsim/internal/cluster/ctrace"
	"csbsim/internal/obs/journey"
	"csbsim/internal/obs/telemetry"
)

// newTracedCluster builds a cluster with distributed tracing attached and
// a one-packet send/recv guest pair loaded.
func newTracedCluster(t *testing.T, wire, enqDelay uint64) *Cluster {
	t.Helper()
	cfg := DefaultConfig()
	cfg.WireLatency = wire
	cfg.RxEnqueueDelay = enqDelay
	c, err := NewPair(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Node(0).MapIO(false)
	c.Node(1).MapIO(false)
	if _, err := c.AttachTrace(journey.DefaultConfig(), ctrace.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Node(0).M.LoadSource("send.s", sendProg(0xbeef)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Node(1).M.LoadSource("recv.s", recvProg); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestTracedRunMergedSpans is the acceptance check on a live cluster: the
// traced run produces a merged dump whose per-hop latencies sum exactly
// to the end-to-end figure, with every stamp in order.
func TestTracedRunMergedSpans(t *testing.T) {
	c := newTracedCluster(t, 80, 0)
	if err := c.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	tr := c.Trace()
	if tr.Completed() != 1 {
		t.Fatalf("completed spans = %d, want 1", tr.Completed())
	}
	spans := tr.Retained()
	if len(spans) != 1 {
		t.Fatalf("retained %d spans, want 1", len(spans))
	}
	s := spans[0]
	if !s.Done || s.From != "a" || s.To != "b" {
		t.Fatalf("bad span: %+v", s)
	}
	if s.JID == 0 {
		t.Error("sender journey ID not grafted onto the wire span")
	}
	stamps := []uint64{s.FIFOPush, s.TxStart, s.WireDepart, s.WireArrive, s.RxEnqueue, s.RxDrain}
	for i := 1; i < len(stamps); i++ {
		if stamps[i] < stamps[i-1] {
			t.Fatalf("hop %s (%d) precedes %s (%d)",
				ctrace.HopNames[i], stamps[i], ctrace.HopNames[i-1], stamps[i-1])
		}
	}
	hopSum := s.RxDrain - s.FIFOPush // telescoped
	if hopSum != s.E2E || s.E2E == 0 {
		t.Fatalf("hop sum %d vs e2e %d", hopSum, s.E2E)
	}
	// The wire hop must be at least the configured latency in CPU cycles.
	if got := s.WireArrive - s.WireDepart; got < 80 {
		t.Errorf("wire hop = %d cycles, want >= 80", got)
	}
	// And the registry histograms must agree with the span count.
	snap := c.Registry().Snapshot()
	if snap.Histograms["ctrace/e2e"].Count != 1 {
		t.Errorf("e2e histogram count = %d, want 1", snap.Histograms["ctrace/e2e"].Count)
	}
	if snap.Counters["ctrace/packets_completed"] != 1 {
		t.Errorf("packets_completed = %d, want 1", snap.Counters["ctrace/packets_completed"])
	}
}

// TestTracedDumpDeterministic: repeated identical cluster runs produce
// byte-identical merged dumps.
func TestTracedDumpDeterministic(t *testing.T) {
	run := func() []byte {
		c := newTracedCluster(t, 50, 7)
		if err := c.Run(1_000_000); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := c.Trace().WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("merged dumps differ across identical runs:\n%s\n----\n%s", a, b)
	}
}

func TestRxEnqueueDelayDelaysDelivery(t *testing.T) {
	cycles := func(delay uint64) uint64 {
		c := newTracedCluster(t, 20, delay)
		if err := c.Run(1_000_000); err != nil {
			t.Fatal(err)
		}
		return c.Cycle()
	}
	fast := cycles(0)
	slow := cycles(600)
	if slow < fast+500 {
		t.Errorf("rx enqueue delay not honored: %d vs %d cycles", fast, slow)
	}
}

// TestClusterCountersInNodeRegistries: the wire counters are visible from
// each node's own registry (report/watchdog path) and the cluster
// registry.
func TestClusterCountersInNodeRegistries(t *testing.T) {
	c := newCluster(t, 40)
	c.Node(0).MapIO(false)
	c.Node(1).MapIO(false)
	c.AttachCounters()
	if _, err := c.Node(0).M.LoadSource("send.s", sendProg(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Node(1).M.LoadSource("recv.s", recvProg); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	for _, n := range c.Nodes() {
		snap := n.M.Counters().Snapshot()
		for _, name := range []string{
			"cluster/packets_in_flight", "cluster/wire_occupancy_words", "cluster/rx_highwater",
		} {
			if _, ok := snap.Counters[name]; !ok {
				t.Errorf("node %s registry missing %s", n.Name(), name)
			}
		}
	}
	snap := c.Registry().Snapshot()
	if snap.Counters["cluster/b/rx_highwater"] == 0 {
		t.Error("receiver rx_highwater never rose above zero")
	}
	if snap.Counters["cluster/packets_in_flight"] != 0 {
		t.Error("packets still in flight after both nodes halted")
	}
}

// TestWireCountersDuringFlight: mid-run, with a long wire, the in-flight
// and occupancy counters reflect the queued packet.
func TestWireCountersDuringFlight(t *testing.T) {
	c := newCluster(t, 10_000)
	c.Node(0).MapIO(false)
	c.Node(1).MapIO(false)
	c.AttachCounters()
	if _, err := c.Node(0).M.LoadSource("send.s", sendProg(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Node(1).M.LoadSource("recv.s", recvProg); err != nil {
		t.Fatal(err)
	}
	// Tick until the packet is pumped, well before the 10k-cycle wire
	// latency elapses.
	var sawFlight bool
	for i := 0; i < 5000; i++ {
		c.Tick()
		snap := c.Registry().Snapshot()
		if snap.Counters["cluster/packets_in_flight"] == 1 {
			sawFlight = true
			if snap.Counters["cluster/wire_occupancy_words"] != 1 {
				t.Fatalf("occupancy = %d words, want 1", snap.Counters["cluster/wire_occupancy_words"])
			}
			break
		}
	}
	if !sawFlight {
		t.Fatal("packet never observed in flight")
	}
}

// TestTelemetryCadence: frames are published on the configured sim-cycle
// period and carry all three registered nodes.
func TestTelemetryCadence(t *testing.T) {
	c := newTracedCluster(t, 40, 0)
	s := telemetry.New()
	if err := c.AttachTelemetry(s, 100); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	data := s.Snapshot()
	if data == nil {
		t.Fatal("no telemetry frame published")
	}
	var f telemetry.Frame
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"a", "b", "cluster"} {
		if f.Nodes[n] == nil {
			t.Errorf("frame missing node %q", n)
		}
	}
	// One frame per 100 cycles, ± the final flush.
	want := c.Cycle() / 100
	if f.Seq < want || f.Seq > want+1 {
		t.Errorf("published %d frames over %d cycles (period 100)", f.Seq, c.Cycle())
	}
	if f.Nodes["cluster"].Histograms["ctrace/e2e"].Count != 1 {
		t.Errorf("cluster frame e2e count = %d, want 1",
			f.Nodes["cluster"].Histograms["ctrace/e2e"].Count)
	}
}

// TestRunErrorFlushesObs: a faulting node still yields a final telemetry
// frame and a partial merged dump (satellite 1 — mirror of the
// single-node flushObs abort behavior).
func TestRunErrorFlushesObs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WireLatency = 30_000 // packet still on the wire at fault time
	c, err := NewPair(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Node(0).MapIO(false)
	c.Node(1).MapIO(false)
	if _, err := c.AttachTrace(journey.DefaultConfig(), ctrace.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	s := telemetry.New()
	if err := c.AttachTelemetry(s, 1_000_000); err != nil { // period longer than the run
		t.Fatal(err)
	}
	// A sends, spins long enough for its NIC to finish transmitting, then
	// faults; B waits forever for a packet that is still crossing the wire
	// when the cluster aborts.
	src := `
	.equ NICREG, 0x40000000
	.equ PKTBUF, 0x40001000
	set NICREG, %o0
	set PKTBUF, %o1
	set 1, %g1
	stx %g1, [%o1]
	membar
	set 8, %g4
	sll %g4, 48, %g4
	stx %g4, [%o0]
	membar
	set 500, %g5
spin:	dec %g5
	tst %g5
	bnz spin
	set 0x70000000, %o1
	ldx [%o1], %g1
	halt
`
	if _, err := c.Node(0).M.LoadSource("bad.s", src); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Node(1).M.LoadSource("recv.s", recvProg); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(1_000_000); err == nil {
		t.Fatal("expected node fault")
	}
	// The flush must have published a final frame despite the period never
	// elapsing, and the tracer holds the partial (undelivered) span.
	if s.Snapshot() == nil {
		t.Fatal("no telemetry frame flushed on the error path")
	}
	spans := c.Trace().Retained()
	if len(spans) != 1 || spans[0].Done {
		t.Fatalf("expected one partial span, got %+v", spans)
	}
	var buf bytes.Buffer
	if _, err := c.Trace().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var d ctrace.Dump
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	if d.Started != 1 || d.Completed != 0 {
		t.Fatalf("partial dump started=%d completed=%d, want 1/0", d.Started, d.Completed)
	}
}
