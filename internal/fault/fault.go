// Package fault is the deterministic fault-injection layer of the
// simulator. The paper's CSB protocol is fundamentally a recovery
// protocol — software must check the conditional-flush result and retry,
// and membar-ordered uncached accesses must survive device-side delays —
// yet a simulator that only ever exercises the happy path never proves
// any of that recovery code works. This package supplies seed-driven
// fault schedules that the machine threads through the bus, the
// conditional store buffer, the uncached buffer and the devices:
//
//   - bus transaction NACK/retry (the agent's TryIssue is refused and it
//     must re-arbitrate, exactly as on a real bus under contention);
//   - device latency bursts (the NIC freezes for a bounded window,
//     delaying DMA, transmission and interrupts);
//   - NIC FIFO backpressure windows (descriptor pushes are refused and
//     the status register advertises a full FIFO);
//   - dropped or delayed conditional-flush acknowledgements (the flush
//     stalls, or reports failure and software re-runs the sequence);
//   - CSB and uncached-buffer capacity pressure (stores are refused and
//     the retire stage retries).
//
// Beyond the single machine, the same injector serves the cluster fabric
// (internal/cluster): wire-scope classes drop, duplicate or delay routed
// packets and open whole-link outage windows. Cluster injection happens
// exclusively at the windowed engine's single-threaded barrier, in the
// deterministic (pump cycle, node index, push order) routing order, so
// the parallel engine stays byte-identical to its sequential reference
// under any fault seed.
//
// Every decision comes from a hand-rolled seeded xorshift PRNG — no
// math/rand, so the determinism analyzer holds for this package too —
// and the same seed plus configuration yields a bit-identical fault
// schedule, which in turn keeps full-machine reports byte-identical
// across runs. A failure found by a fault campaign is reproduced by
// replaying its seed.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// RateScale is the denominator of all fault rates: a rate of r means an
// r-in-1024 chance at each opportunity. Integer rates keep the schedule
// exactly reproducible (no floating point).
const RateScale = 1024

// PRNG is a seeded xorshift64* generator. It is deliberately hand-rolled:
// the simulation core bans math/rand (see internal/analysis/determinism),
// and this keeps the fault schedule a pure function of the seed.
type PRNG struct {
	s uint64
}

// NewPRNG returns a generator for the seed (seed 0 is remapped to a
// fixed non-zero state; xorshift has no escape from all-zero).
func NewPRNG(seed uint64) PRNG {
	p := PRNG{s: seed}
	if p.s == 0 {
		p.s = 0x9E3779B97F4A7C15 // golden-ratio constant, arbitrary non-zero
	}
	// Warm up: decorrelates small consecutive seeds.
	p.Uint64()
	p.Uint64()
	return p
}

// Uint64 advances the generator (xorshift64 followed by the * multiply
// of Vigna's xorshift64star, whose high bits are well distributed).
//
//csb:hotpath
func (p *PRNG) Uint64() uint64 {
	s := p.s
	s ^= s << 13
	s ^= s >> 7
	s ^= s << 17
	p.s = s
	return s * 0x2545F4914F6CDD1D
}

// Intn returns a value in [0, n). n must be positive.
//
//csb:hotpath
func (p *PRNG) Intn(n int) int {
	if n <= 0 {
		panic("fault: Intn with non-positive n")
	}
	// Multiply-shift range reduction over the high 32 bits: no modulo
	// bias worth caring about for fault scheduling, and no division.
	return int((p.Uint64() >> 32) * uint64(n) >> 32)
}

// chance reports true with probability rate/RateScale, consuming exactly
// one draw. rate 0 must be filtered by the caller (it would still burn a
// draw here).
//
//csb:hotpath
func (p *PRNG) chance(rate int) bool {
	return p.Uint64()>>54 < uint64(rate) // top 10 bits: uniform in [0,1024)
}

// Config enables and tunes the individual fault classes. All rates are
// per-RateScale probabilities (0 disables the class, RateScale fires at
// every opportunity); the Max fields bound the length of injected
// windows, drawn uniformly from [1, Max].
type Config struct {
	// Seed selects the schedule. The same seed and config reproduce the
	// same run bit-identically.
	Seed uint64

	// BusNack refuses an otherwise-accepted bus transaction; the issuing
	// agent re-arbitrates on a later bus cycle.
	BusNack int
	// DeviceStall freezes a device for a burst of [1, DeviceStallMax]
	// bus cycles, delaying DMA, transmission and interrupt delivery.
	DeviceStall    int
	DeviceStallMax int
	// NICBackpressure opens a window of [1, NICBackpressureMax] bus
	// cycles during which the NIC's descriptor FIFO refuses pushes and
	// advertises itself full in the status register.
	NICBackpressure    int
	NICBackpressureMax int
	// FlushDelay delays a conditional-flush acknowledgement: the flush
	// instruction stalls at the head of the ROB for an extra
	// [1, FlushDelayMax] attempts before the CSB answers.
	FlushDelay    int
	FlushDelayMax int
	// FlushDrop drops the acknowledgement of a would-succeed conditional
	// flush: the CSB reports failure, commits nothing, and software must
	// re-run the store sequence (the paper's §3.2 retry loop).
	FlushDrop int
	// CSBPressure refuses a combining store (the retire stage retries
	// next cycle), modeling capacity pressure on the line buffer.
	CSBPressure int
	// UBPressure makes the uncached buffer report itself full for one
	// store or load attempt.
	UBPressure int

	// ---- cluster-scope wire classes (consumed by internal/cluster at
	// the routing barrier; ignored by the single-machine wiring) ----

	// WireDrop silently drops a routed packet on the wire.
	WireDrop int
	// WireDup delivers a routed packet twice: the duplicate is scheduled
	// behind the original through the same serialization front, modeling
	// a link-layer retransmission whose original was not actually lost.
	WireDup int
	// WireDelay adds [1, WireDelayMax] extra propagation cycles to a
	// routed packet (transient congestion beyond the fixed link latency).
	WireDelay    int
	WireDelayMax int
	// LinkOutage opens a window of [1, LinkOutageMax] cluster cycles
	// during which a link drops every packet scheduled onto it (cable
	// pull / switch reset). Checked per link, at most one window open per
	// link at a time.
	LinkOutage    int
	LinkOutageMax int
}

// DefaultConfig is the standard campaign mix: every class enabled at a
// rate that injects frequently enough to exercise all recovery paths in
// a few thousand cycles without livelocking the guest.
func DefaultConfig() Config {
	return Config{
		Seed:               1,
		BusNack:            48,
		DeviceStall:        16,
		DeviceStallMax:     64,
		NICBackpressure:    16,
		NICBackpressureMax: 48,
		FlushDelay:         32,
		FlushDelayMax:      24,
		FlushDrop:          64,
		CSBPressure:        32,
		UBPressure:         32,
	}
}

// DefaultWireConfig is the standard cluster campaign mix: wire classes
// only, at rates calibrated so a retry-enabled serving workload recovers
// every request (the goodput-under-faults acceptance envelope) while
// still exercising drop, duplicate, delay and outage paths within a few
// hundred kcycles.
func DefaultWireConfig() Config {
	return Config{
		Seed:          1,
		WireDrop:      8,
		WireDup:       4,
		WireDelay:     16,
		WireDelayMax:  300,
		LinkOutage:    2,
		LinkOutageMax: 1200,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	for _, r := range []struct {
		name string
		v    int
	}{
		{"BusNack", c.BusNack},
		{"DeviceStall", c.DeviceStall},
		{"NICBackpressure", c.NICBackpressure},
		{"FlushDelay", c.FlushDelay},
		{"FlushDrop", c.FlushDrop},
		{"CSBPressure", c.CSBPressure},
		{"UBPressure", c.UBPressure},
		{"WireDrop", c.WireDrop},
		{"WireDup", c.WireDup},
		{"WireDelay", c.WireDelay},
		{"LinkOutage", c.LinkOutage},
	} {
		if r.v < 0 || r.v > RateScale {
			return fmt.Errorf("fault: %s rate %d outside [0, %d]", r.name, r.v, RateScale)
		}
	}
	if c.DeviceStall > 0 && c.DeviceStallMax <= 0 {
		return fmt.Errorf("fault: DeviceStall enabled with DeviceStallMax %d", c.DeviceStallMax)
	}
	if c.NICBackpressure > 0 && c.NICBackpressureMax <= 0 {
		return fmt.Errorf("fault: NICBackpressure enabled with NICBackpressureMax %d", c.NICBackpressureMax)
	}
	if c.FlushDelay > 0 && c.FlushDelayMax <= 0 {
		return fmt.Errorf("fault: FlushDelay enabled with FlushDelayMax %d", c.FlushDelayMax)
	}
	if c.WireDelay > 0 && c.WireDelayMax <= 0 {
		return fmt.Errorf("fault: WireDelay enabled with WireDelayMax %d", c.WireDelayMax)
	}
	if c.LinkOutage > 0 && c.LinkOutageMax <= 0 {
		return fmt.Errorf("fault: LinkOutage enabled with LinkOutageMax %d", c.LinkOutageMax)
	}
	return nil
}

// Enabled reports whether any fault class has a non-zero rate.
func (c Config) Enabled() bool {
	return c.BusNack > 0 || c.DeviceStall > 0 || c.NICBackpressure > 0 ||
		c.FlushDelay > 0 || c.FlushDrop > 0 || c.CSBPressure > 0 || c.UBPressure > 0 ||
		c.WireEnabled()
}

// WireEnabled reports whether any cluster-scope wire class has a
// non-zero rate.
func (c Config) WireEnabled() bool {
	return c.WireDrop > 0 || c.WireDup > 0 || c.WireDelay > 0 || c.LinkOutage > 0
}

// Stats counts what the injector actually did. Seed is carried along so
// a report names everything needed to reproduce the run.
type Stats struct {
	Seed                uint64
	Draws               uint64 // PRNG draws consumed
	BusNacks            uint64 // bus transactions refused
	DeviceStalls        uint64 // latency bursts started
	DeviceStallCycles   uint64 // total injected device-stall cycles
	BackpressureWindows uint64 // FIFO backpressure windows opened
	BackpressureCycles  uint64 // total backpressure window cycles
	FlushDelays         uint64 // conditional-flush acks delayed
	FlushDrops          uint64 // would-succeed flushes failed
	CSBPressureStalls   uint64 // combining stores refused
	UBPressureStalls    uint64 // uncached buffer accepts refused

	// Cluster-scope wire classes (zero on machine-level injectors).
	WireDrops       uint64 `json:",omitempty"` // packets dropped on the wire
	WireDups        uint64 `json:",omitempty"` // packets delivered twice
	WireDelays      uint64 `json:",omitempty"` // packets given extra propagation delay
	WireDelayCycles uint64 `json:",omitempty"` // total extra propagation cycles injected
	OutageWindows   uint64 `json:",omitempty"` // link outage windows opened
	OutageCycles    uint64 `json:",omitempty"` // total link outage window cycles
}

// Total returns the number of injected fault events (windows count once).
func (s Stats) Total() uint64 {
	return s.BusNacks + s.DeviceStalls + s.BackpressureWindows +
		s.FlushDelays + s.FlushDrops + s.CSBPressureStalls + s.UBPressureStalls +
		s.WireTotal()
}

// WireTotal returns the number of injected wire fault events (outage
// windows count once; the per-packet drops inside them are counted by the
// cluster as cluster/outage_drops).
func (s Stats) WireTotal() uint64 {
	return s.WireDrops + s.WireDups + s.WireDelays + s.OutageWindows
}

// Injector draws the fault schedule. One injector serves one machine; the
// simulator is single-threaded, so decisions are consumed in a
// deterministic order and the whole schedule is a function of (seed,
// config, guest program).
type Injector struct {
	cfg   Config
	rng   PRNG
	stats Stats
}

// New creates an injector.
func New(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Injector{cfg: cfg, rng: NewPRNG(cfg.Seed), stats: Stats{Seed: cfg.Seed}}, nil
}

// Config returns the injector's configuration.
func (i *Injector) Config() Config { return i.cfg }

// Stats snapshots the injection counters.
func (i *Injector) Stats() Stats { return i.stats }

// NackBus decides whether to refuse the current bus transaction. Wired
// into bus.Bus via SetNackHook; a refused agent re-arbitrates later.
//
//csb:hotpath
func (i *Injector) NackBus() bool {
	if i.cfg.BusNack == 0 {
		return false
	}
	i.stats.Draws++
	if i.rng.chance(i.cfg.BusNack) {
		i.stats.BusNacks++
		return true
	}
	return false
}

// DeviceStall returns the length of a device latency burst to inject (0:
// none). Called once per device tick while the device is not already
// stalled.
//
//csb:hotpath
func (i *Injector) DeviceStall() int {
	if i.cfg.DeviceStall == 0 {
		return 0
	}
	i.stats.Draws++
	if !i.rng.chance(i.cfg.DeviceStall) {
		return 0
	}
	i.stats.Draws++
	n := 1 + i.rng.Intn(i.cfg.DeviceStallMax)
	i.stats.DeviceStalls++
	i.stats.DeviceStallCycles += uint64(n)
	return n
}

// Backpressure returns the length of a FIFO backpressure window to open
// (0: none). Called once per device tick while no window is open.
//
//csb:hotpath
func (i *Injector) Backpressure() int {
	if i.cfg.NICBackpressure == 0 {
		return 0
	}
	i.stats.Draws++
	if !i.rng.chance(i.cfg.NICBackpressure) {
		return 0
	}
	i.stats.Draws++
	n := 1 + i.rng.Intn(i.cfg.NICBackpressureMax)
	i.stats.BackpressureWindows++
	i.stats.BackpressureCycles += uint64(n)
	return n
}

// FlushDelay returns how many extra attempts a conditional-flush
// acknowledgement is delayed (0: answer immediately).
//
//csb:hotpath
func (i *Injector) FlushDelay() int {
	if i.cfg.FlushDelay == 0 {
		return 0
	}
	i.stats.Draws++
	if !i.rng.chance(i.cfg.FlushDelay) {
		return 0
	}
	i.stats.Draws++
	n := 1 + i.rng.Intn(i.cfg.FlushDelayMax)
	i.stats.FlushDelays++
	return n
}

// DropFlush decides whether to drop the acknowledgement of a
// would-succeed conditional flush (reported to software as a failure).
//
//csb:hotpath
func (i *Injector) DropFlush() bool {
	if i.cfg.FlushDrop == 0 {
		return false
	}
	i.stats.Draws++
	if i.rng.chance(i.cfg.FlushDrop) {
		i.stats.FlushDrops++
		return true
	}
	return false
}

// SqueezeCSB decides whether to refuse a combining store this cycle.
//
//csb:hotpath
func (i *Injector) SqueezeCSB() bool {
	if i.cfg.CSBPressure == 0 {
		return false
	}
	i.stats.Draws++
	if i.rng.chance(i.cfg.CSBPressure) {
		i.stats.CSBPressureStalls++
		return true
	}
	return false
}

// SqueezeUB decides whether the uncached buffer refuses an accept this
// cycle.
//
//csb:hotpath
func (i *Injector) SqueezeUB() bool {
	if i.cfg.UBPressure == 0 {
		return false
	}
	i.stats.Draws++
	if i.rng.chance(i.cfg.UBPressure) {
		i.stats.UBPressureStalls++
		return true
	}
	return false
}

// ---- cluster-scope wire decisions (called only at the routing barrier,
// single-threaded, in the deterministic global routing order) ----

// DropPacket decides whether to drop the packet being routed.
//
//csb:hotpath
func (i *Injector) DropPacket() bool {
	if i.cfg.WireDrop == 0 {
		return false
	}
	i.stats.Draws++
	if i.rng.chance(i.cfg.WireDrop) {
		i.stats.WireDrops++
		return true
	}
	return false
}

// DupPacket decides whether to deliver the packet being routed twice.
//
//csb:hotpath
func (i *Injector) DupPacket() bool {
	if i.cfg.WireDup == 0 {
		return false
	}
	i.stats.Draws++
	if i.rng.chance(i.cfg.WireDup) {
		i.stats.WireDups++
		return true
	}
	return false
}

// PacketDelay returns extra propagation cycles to add to the packet being
// routed (0: none).
//
//csb:hotpath
func (i *Injector) PacketDelay() int {
	if i.cfg.WireDelay == 0 {
		return 0
	}
	i.stats.Draws++
	if !i.rng.chance(i.cfg.WireDelay) {
		return 0
	}
	i.stats.Draws++
	n := 1 + i.rng.Intn(i.cfg.WireDelayMax)
	i.stats.WireDelays++
	i.stats.WireDelayCycles += uint64(n)
	return n
}

// LinkOutage returns the length of a link outage window to open (0:
// none). Called once per routed packet on links with no window open.
//
//csb:hotpath
func (i *Injector) LinkOutage() int {
	if i.cfg.LinkOutage == 0 {
		return 0
	}
	i.stats.Draws++
	if !i.rng.chance(i.cfg.LinkOutage) {
		return 0
	}
	i.stats.Draws++
	n := 1 + i.rng.Intn(i.cfg.LinkOutageMax)
	i.stats.OutageWindows++
	i.stats.OutageCycles += uint64(n)
	return n
}

// specKeys maps spec-string keys to Config fields. Kept in one table so
// ParseSpec and FormatSpec cannot drift apart.
var specKeys = []struct {
	key string
	get func(*Config) *int
}{
	{"busnack", func(c *Config) *int { return &c.BusNack }},
	{"devstall", func(c *Config) *int { return &c.DeviceStall }},
	{"devstallmax", func(c *Config) *int { return &c.DeviceStallMax }},
	{"backpressure", func(c *Config) *int { return &c.NICBackpressure }},
	{"bpmax", func(c *Config) *int { return &c.NICBackpressureMax }},
	{"flushdelay", func(c *Config) *int { return &c.FlushDelay }},
	{"flushdelaymax", func(c *Config) *int { return &c.FlushDelayMax }},
	{"flushdrop", func(c *Config) *int { return &c.FlushDrop }},
	{"csbpressure", func(c *Config) *int { return &c.CSBPressure }},
	{"ubpressure", func(c *Config) *int { return &c.UBPressure }},
	{"wiredrop", func(c *Config) *int { return &c.WireDrop }},
	{"wiredup", func(c *Config) *int { return &c.WireDup }},
	{"wiredelay", func(c *Config) *int { return &c.WireDelay }},
	{"wiredelaymax", func(c *Config) *int { return &c.WireDelayMax }},
	{"outage", func(c *Config) *int { return &c.LinkOutage }},
	{"outagemax", func(c *Config) *int { return &c.LinkOutageMax }},
}

// ParseSpec parses a command-line fault specification: a comma-separated
// list of key=value pairs, plus the bare tokens "default" (mixes in
// DefaultConfig's machine classes) and "wire" (mixes in
// DefaultWireConfig's cluster classes, leaving machine classes as set).
// Unnamed classes stay disabled, so "busnack=1024" enables exactly one
// fault class. Window maxima default sensibly when a rate is enabled
// without one. Examples:
//
//	default
//	default,seed=7
//	busnack=64,flushdrop=128,seed=3
//	wire,seed=11
//	wiredrop=32,outage=4,outagemax=2000
func ParseSpec(spec string) (Config, error) {
	cfg := Config{Seed: 1}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if part == "default" || part == "on" {
			seed := cfg.Seed
			wire := cfg // wire classes possibly set by an earlier "wire" token
			def := DefaultConfig()
			def.Seed = seed
			def.WireDrop = wire.WireDrop
			def.WireDup = wire.WireDup
			def.WireDelay = wire.WireDelay
			def.WireDelayMax = wire.WireDelayMax
			def.LinkOutage = wire.LinkOutage
			def.LinkOutageMax = wire.LinkOutageMax
			cfg = def
			continue
		}
		if part == "wire" {
			w := DefaultWireConfig()
			cfg.WireDrop = w.WireDrop
			cfg.WireDup = w.WireDup
			cfg.WireDelay = w.WireDelay
			cfg.WireDelayMax = w.WireDelayMax
			cfg.LinkOutage = w.LinkOutage
			cfg.LinkOutageMax = w.LinkOutageMax
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return Config{}, fmt.Errorf("fault: bad spec element %q (want key=value or \"default\"); known keys: %s",
				part, strings.Join(SpecKeys(), ", "))
		}
		if k == "seed" {
			n, err := strconv.ParseUint(v, 0, 64)
			if err != nil {
				return Config{}, fmt.Errorf("fault: bad seed %q", v)
			}
			cfg.Seed = n
			continue
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return Config{}, fmt.Errorf("fault: bad value %q for %q", v, k)
		}
		found := false
		for _, sk := range specKeys {
			if sk.key == k {
				*sk.get(&cfg) = n
				found = true
				break
			}
		}
		if !found {
			return Config{}, fmt.Errorf("fault: unknown spec key %q; known keys: seed, %s",
				k, strings.Join(SpecKeys(), ", "))
		}
	}
	// Fill window maxima for classes enabled without one.
	def := DefaultConfig()
	wdef := DefaultWireConfig()
	if cfg.DeviceStall > 0 && cfg.DeviceStallMax == 0 {
		cfg.DeviceStallMax = def.DeviceStallMax
	}
	if cfg.NICBackpressure > 0 && cfg.NICBackpressureMax == 0 {
		cfg.NICBackpressureMax = def.NICBackpressureMax
	}
	if cfg.FlushDelay > 0 && cfg.FlushDelayMax == 0 {
		cfg.FlushDelayMax = def.FlushDelayMax
	}
	if cfg.WireDelay > 0 && cfg.WireDelayMax == 0 {
		cfg.WireDelayMax = wdef.WireDelayMax
	}
	if cfg.LinkOutage > 0 && cfg.LinkOutageMax == 0 {
		cfg.LinkOutageMax = wdef.LinkOutageMax
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// SpecKeys lists the recognized spec keys (sorted, for error messages and
// usage strings).
func SpecKeys() []string {
	keys := make([]string, 0, len(specKeys))
	for _, sk := range specKeys {
		keys = append(keys, sk.key)
	}
	sort.Strings(keys)
	return keys
}
