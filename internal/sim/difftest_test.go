package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"csbsim/internal/asm"
	"csbsim/internal/emu"
	"csbsim/internal/isa"
	"csbsim/internal/mem"
)

// Differential testing: random structured programs must leave the
// out-of-order machine and the sequential reference emulator in identical
// architectural state (registers, FP registers, memory). This exercises
// renaming, speculation, squashing, load/store ordering and the retire
// logic far beyond what hand-written cases cover.

const (
	diffScratch = 0x20000 // scratch buffer (covered by the loader's map)
	diffBufLen  = 512
	diffIOBase  = 0x4800_0000 // uncached region: %o0 points here
	diffIOLen   = 256
)

// genRegs are the general-purpose registers the generator uses freely.
// %l4-%l7 are reserved as loop counters (one per nesting depth) so
// generated bodies can never clobber the counter of a loop around them.
// %o0 is reserved as the uncached-region base, %o1 as the scratch base,
// %o7 as the return-address register.
var genRegs = []string{
	"%g1", "%g2", "%g3", "%g4", "%g5", "%g6", "%g7",
	"%o2", "%o3", "%o4", "%o5",
	"%l0", "%l1", "%l2", "%l3",
	"%i0", "%i1", "%i2", "%i3", "%i4", "%i5",
}

type progGen struct {
	r     *rand.Rand
	b     strings.Builder
	label int
}

func (g *progGen) reg() string { return genRegs[g.r.Intn(len(genRegs))] }

func (g *progGen) freg() string { return fmt.Sprintf("%%f%d", g.r.Intn(8)*2) }

func (g *progGen) newLabel() string {
	g.label++
	return fmt.Sprintf("L%d", g.label)
}

func (g *progGen) emitf(format string, args ...any) {
	fmt.Fprintf(&g.b, format+"\n", args...)
}

var aluOps = []string{"add", "sub", "and", "or", "xor", "mul", "addcc", "subcc", "andcc", "orcc"}
var shiftOps = []string{"sll", "srl", "sra"}
var fpOps = []string{"faddd", "fsubd", "fmuld"}
var conds = []string{"bz", "bnz", "bl", "bge", "bg", "ble", "blu", "bgeu", "bneg", "bpos"}

// alu emits a random integer operation.
func (g *progGen) alu() {
	op := aluOps[g.r.Intn(len(aluOps))]
	if g.r.Intn(2) == 0 {
		g.emitf("\t%s %s, %d, %s", op, g.reg(), g.r.Intn(4096)-2048, g.reg())
	} else {
		g.emitf("\t%s %s, %s, %s", op, g.reg(), g.reg(), g.reg())
	}
}

func (g *progGen) shift() {
	op := shiftOps[g.r.Intn(len(shiftOps))]
	g.emitf("\t%s %s, %d, %s", op, g.reg(), g.r.Intn(64), g.reg())
}

// store emits an aligned store of random width into the scratch buffer.
func (g *progGen) store() {
	widths := []struct {
		mn    string
		align int
	}{{"stb", 1}, {"sth", 2}, {"stw", 4}, {"stx", 8}}
	w := widths[g.r.Intn(len(widths))]
	off := g.r.Intn(diffBufLen/w.align) * w.align
	g.emitf("\t%s %s, [%%o1+%d]", w.mn, g.reg(), off)
}

func (g *progGen) load() {
	widths := []struct {
		mn    string
		align int
	}{{"ldb", 1}, {"ldh", 2}, {"ldw", 4}, {"ldx", 8}}
	w := widths[g.r.Intn(len(widths))]
	off := g.r.Intn(diffBufLen/w.align) * w.align
	g.emitf("\t%s [%%o1+%d], %s", w.mn, off, g.reg())
}

func (g *progGen) fp() {
	op := fpOps[g.r.Intn(len(fpOps))]
	g.emitf("\t%s %s, %s, %s", op, g.freg(), g.freg(), g.freg())
}

func (g *progGen) fpMove() {
	if g.r.Intn(2) == 0 {
		g.emitf("\tmovr2f %s, %s", g.reg(), g.freg())
	} else {
		g.emitf("\tmovf2r %s, %s", g.freg(), g.reg())
	}
}

// condSkip emits a compare and a forward conditional branch over a few
// instructions — the bread and butter of branch prediction and squashing.
func (g *progGen) condSkip(depth int) {
	l := g.newLabel()
	g.emitf("\tcmp %s, %s", g.reg(), g.reg())
	g.emitf("\t%s %s", conds[g.r.Intn(len(conds))], l)
	for i := 0; i < 1+g.r.Intn(3); i++ {
		g.block(depth + 1)
	}
	g.emitf("%s:", l)
}

// loop emits a counted loop with a small body; trip counts are bounded so
// programs always terminate.
func (g *progGen) loop(depth int) {
	l := g.newLabel()
	counter := fmt.Sprintf("%%l%d", 4+depth) // reserved counter per depth
	g.emitf("\tmov %d, %s", 1+g.r.Intn(8), counter)
	g.emitf("%s:", l)
	for i := 0; i < 1+g.r.Intn(2); i++ {
		g.block(depth + 1)
	}
	g.emitf("\tsubcc %s, 1, %s", counter, counter)
	g.emitf("\tbnz %s", l)
}

func (g *progGen) call() {
	g.emitf("\tcall leaf%d", g.r.Intn(2))
}

// swap exercises the atomic exchange (retire-executed even when cached).
func (g *progGen) swap() {
	off := g.r.Intn(diffBufLen/8) * 8
	g.emitf("\tswap [%%o1+%d], %s", off, g.reg())
}

// ucStore and ucLoad exercise the uncached buffer and blocking-load paths;
// the emulator sees them as ordinary memory accesses, so the final state
// must agree even though the machine routes them over the bus.
func (g *progGen) ucStore() {
	off := g.r.Intn(diffIOLen/8) * 8
	g.emitf("\tstx %s, [%%o0+%d]", g.reg(), off)
}

func (g *progGen) ucLoad() {
	off := g.r.Intn(diffIOLen/8) * 8
	g.emitf("\tldx [%%o0+%d], %s", off, g.reg())
}

// block emits one random construct.
func (g *progGen) block(depth int) {
	max := 10
	if depth >= 2 {
		max = 8 // no further nesting
	}
	switch g.r.Intn(max) {
	case 0, 1:
		g.alu()
	case 2:
		g.shift()
	case 3:
		g.store()
	case 4:
		g.load()
	case 5:
		g.fp()
		g.fpMove()
	case 6:
		g.call()
	case 7:
		switch g.r.Intn(4) {
		case 0:
			g.swap()
		case 1:
			g.emitf("\tmembar")
		case 2:
			g.ucStore()
		case 3:
			g.ucLoad()
		}
	case 8:
		g.condSkip(depth)
	case 9:
		g.loop(depth)
	}
}

// generate builds a complete random program.
func generate(seed int64) string {
	g := &progGen{r: rand.New(rand.NewSource(seed))}
	g.emitf("\tset %#x, %%o1", diffScratch)
	g.emitf("\tset %#x, %%o0", diffIOBase)
	for i, r := range genRegs {
		g.emitf("\tset %d, %s", g.r.Intn(1<<20)+i, r)
	}
	for i := 0; i < 8; i++ {
		g.emitf("\tmovr2f %s, %%f%d", g.reg(), i*2)
	}
	n := 12 + g.r.Intn(20)
	for i := 0; i < n; i++ {
		g.block(0)
	}
	g.emitf("\tmembar") // drain I/O before the final state comparison
	g.emitf("\thalt")
	// Leaf functions, placed after halt so fall-through never reaches them.
	g.emitf("leaf0:\tadd %%o2, 1, %%o2")
	g.emitf("\tret")
	g.emitf("leaf1:\txor %%g1, %%g2, %%g7")
	g.emitf("\tsub %%g7, 3, %%g7")
	g.emitf("\tret")
	return g.b.String()
}

// runBoth executes the program on the OOO machine and the reference
// emulator and compares all architectural state.
func runBoth(t *testing.T, seed int64, src string) {
	t.Helper()
	prog, err := asm.Assemble(fmt.Sprintf("seed%d.s", seed), src)
	if err != nil {
		t.Fatalf("seed %d: assemble: %v\n%s", seed, err, src)
	}

	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(prog); err != nil {
		t.Fatal(err)
	}
	m.MapRange(diffIOBase, mem.PageSize, mem.KindUncached)
	m.WarmProgram(prog)
	if err := m.Run(20_000_000); err != nil {
		t.Fatalf("seed %d: machine: %v\n%s", seed, err, src)
	}

	e, err := emu.New(prog, emu.WithMaxSteps(5_000_000))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatalf("seed %d: emulator: %v\n%s", seed, err, src)
	}

	st := m.CPU.State()
	for r := isa.Reg(1); r < isa.NumRegs; r++ {
		if st.R[r] != e.R[r] {
			t.Errorf("seed %d: %s = %#x (machine) vs %#x (emu)",
				seed, isa.RegName(r), st.R[r], e.R[r])
		}
	}
	for f := 0; f < isa.NumFRegs; f++ {
		if st.F[f] != e.F[f] {
			t.Errorf("seed %d: %%f%d = %#x vs %#x", seed, f, st.F[f], e.F[f])
		}
	}
	if st.CC != e.CC {
		t.Errorf("seed %d: CC = %+v vs %+v", seed, st.CC, e.CC)
	}
	for off := uint64(0); off < diffBufLen; off += 8 {
		mv := m.RAM.ReadUint(diffScratch+off, 8)
		ev := e.Mem.ReadUint(diffScratch+off, 8)
		if mv != ev {
			t.Errorf("seed %d: mem[%#x] = %#x vs %#x", seed, diffScratch+off, mv, ev)
		}
	}
	for off := uint64(0); off < diffIOLen; off += 8 {
		mv := m.RAM.ReadUint(diffIOBase+off, 8)
		ev := e.Mem.ReadUint(diffIOBase+off, 8)
		if mv != ev {
			t.Errorf("seed %d: io[%#x] = %#x vs %#x", seed, diffIOBase+off, mv, ev)
		}
	}
	if t.Failed() {
		t.Logf("program:\n%s", src)
		t.FailNow()
	}
}

func TestDifferentialRandomPrograms(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 10
	}
	for seed := 0; seed < seeds; seed++ {
		src := generate(int64(seed))
		runBoth(t, int64(seed), src)
	}
}

// TestDifferentialColdCaches repeats a subset without warming, exercising
// I-cache miss stalls interleaved with speculation.
func TestDifferentialColdCaches(t *testing.T) {
	for seed := 100; seed < 110; seed++ {
		src := generate(int64(seed))
		prog, err := asm.Assemble("cold.s", src)
		if err != nil {
			t.Fatal(err)
		}
		m, err := New(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Load(prog); err != nil {
			t.Fatal(err)
		}
		m.MapRange(diffIOBase, mem.PageSize, mem.KindUncached)
		if err := m.Run(20_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		e, _ := emu.New(prog, emu.WithMaxSteps(5_000_000))
		if err := e.Run(); err != nil {
			t.Fatalf("seed %d: emu: %v", seed, err)
		}
		st := m.CPU.State()
		for r := isa.Reg(1); r < isa.NumRegs; r++ {
			if st.R[r] != e.R[r] {
				t.Fatalf("seed %d: %s mismatch: %#x vs %#x\n%s",
					seed, isa.RegName(r), st.R[r], e.R[r], src)
			}
		}
	}
}
