package sim

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"csbsim/internal/device"
	"csbsim/internal/fault"
	"csbsim/internal/mem"
	"csbsim/internal/obs"
	"csbsim/internal/obs/journey"
)

// uncachedStoreLoop mirrors obs_test.go's storeLoop but through plain
// uncached stores — the paper's baseline path.
const uncachedStoreLoop = `
	set 0x40000000, %o1
	mov 8, %g2
loop:
	stx %g1, [%o1]
	stx %g1, [%o1+8]
	stx %g1, [%o1+16]
	stx %g1, [%o1+24]
	stx %g1, [%o1+32]
	stx %g1, [%o1+40]
	stx %g1, [%o1+48]
	stx %g1, [%o1+56]
	subcc %g2, 1, %g2
	bnz loop
	membar
	halt
`

// TestJourneyTracingEndToEnd runs the CSB and uncached store loops with
// the tracer attached and checks the journeys complete, the per-layer
// histograms fill, the counters land in Stats, and — the paper's point —
// the CSB path's mean end-to-end store latency beats the uncached path's.
func TestJourneyTracingEndToEnd(t *testing.T) {
	mCSB := runStoreLoop(t)
	trCSB, err := mCSB.AttachJourneys(journey.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := mCSB.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if err := mCSB.Drain(1_000_000); err != nil {
		t.Fatal(err)
	}

	mUnc, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	mUnc.MapRange(0x4000_0000, 1<<16, mem.KindUncached)
	if _, err := mUnc.LoadSource("unc.s", uncachedStoreLoop); err != nil {
		t.Fatal(err)
	}
	trUnc, err := mUnc.AttachJourneys(journey.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := mUnc.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if err := mUnc.Drain(1_000_000); err != nil {
		t.Fatal(err)
	}

	csb := trCSB.E2EHistogram(journey.KindCSBStore).Summary()
	unc := trUnc.E2EHistogram(journey.KindUncachedStore).Summary()
	if csb.Count == 0 || unc.Count == 0 {
		t.Fatalf("empty e2e histograms: csb %d samples, uncached %d samples", csb.Count, unc.Count)
	}
	if got := trCSB.Started(journey.KindCSBStore); got != trCSB.Completed(journey.KindCSBStore)+trCSB.Aborted(journey.KindCSBStore) {
		t.Errorf("csb journeys leak: started %d, completed %d, aborted %d",
			got, trCSB.Completed(journey.KindCSBStore), trCSB.Aborted(journey.KindCSBStore))
	}
	if got := trUnc.Started(journey.KindUncachedStore); got != trUnc.Completed(journey.KindUncachedStore) {
		t.Errorf("uncached journeys leak: started %d, completed %d",
			got, trUnc.Completed(journey.KindUncachedStore))
	}
	if csb.Mean >= unc.Mean {
		t.Errorf("CSB mean e2e latency %.1f not below uncached %.1f", csb.Mean, unc.Mean)
	}

	// The tracer's histograms and run counters surface through Stats.
	s := mCSB.Stats()
	if s.Counters == nil {
		t.Fatal("Stats.Counters nil with journeys attached")
	}
	if _, ok := s.Counters.Counters["journey/csb_store/started"]; !ok {
		t.Error("journey counters missing from the registry snapshot")
	}
	if h, ok := s.Counters.Histograms["journey/e2e/csb_store"]; !ok || h.Count == 0 {
		t.Error("journey e2e histogram missing or empty in the registry snapshot")
	}
}

// TestJourneyTracingPerturbsNothing is the bit-identity acceptance
// criterion: attaching the tracer and the counter registry must leave
// every pre-existing statistic byte-for-byte unchanged.
func TestJourneyTracingPerturbsNothing(t *testing.T) {
	run := func(attach bool) []byte {
		m := runStoreLoop(t)
		if attach {
			if _, err := m.AttachJourneys(journey.DefaultConfig()); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.Run(1_000_000); err != nil {
			t.Fatal(err)
		}
		s := m.Stats()
		s.Counters = nil // the only field tracing is allowed to add
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	off, on := run(false), run(true)
	if !bytes.Equal(off, on) {
		t.Errorf("tracing changed the statistics:\noff: %s\non:  %s", off, on)
	}
}

// TestJourneyFlowsGolden pins the Perfetto rendering of the journeys:
// the "memory system" track slices, the per-hop segments, and the
// s/t/f flow arrows binding pipeline → journey → bus.
// Refresh with: go test ./internal/sim -run TestJourneyFlowsGolden -update
func TestJourneyFlowsGolden(t *testing.T) {
	m := runStoreLoop(t)
	if _, err := m.AttachJourneys(journey.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	exp := obs.NewPerfetto()
	m.AttachPerfetto(exp)
	if err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if err := m.Drain(1_000_000); err != nil {
		t.Fatal(err)
	}
	m.ExportJourneys()
	var buf bytes.Buffer
	if _, err := exp.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}

	// Keep only the journey-related events: everything on the memory
	// system track plus the flow arrows (which span all three tracks).
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var kept []json.RawMessage
	for _, raw := range doc.TraceEvents {
		var e struct {
			Cat string `json:"cat"`
			PID int    `json:"pid"`
		}
		if err := json.Unmarshal(raw, &e); err != nil {
			t.Fatal(err)
		}
		if e.PID == 3 || e.Cat == "journey" {
			kept = append(kept, raw)
		}
	}
	if len(kept) == 0 {
		t.Fatal("no journey events in the trace")
	}
	got, err := json.MarshalIndent(kept, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "journey_flows.golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("journey flow events drifted from %s (refresh with -update)\ngot %d bytes, want %d",
			golden, len(got), len(want))
	}
}

// TestJourneyDumpDeterministicUnderFaults extends the per-seed
// bit-identity criterion to the journey layer: two runs with the same
// fault seed produce byte-identical journey dumps — totals, histogram
// summaries, slowest set and retained journeys all agree.
func TestJourneyDumpDeterministicUnderFaults(t *testing.T) {
	dump := func(seed uint64) []byte {
		cfg := fault.DefaultConfig()
		cfg.Seed = seed
		m, err := New(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		nic := device.NewNIC(device.DefaultConfig(), robustNICBase)
		if err := m.AddDevice(robustNICBase, device.RegionSize, "nic", nic, nic); err != nil {
			t.Fatal(err)
		}
		m.MapRange(robustNICBase, device.PacketBufBase, mem.KindUncached)
		m.MapRange(robustNICBase+device.PacketBufBase, 0x1000, mem.KindCombining)
		if _, err := m.AttachFaults(cfg); err != nil {
			t.Fatal(err)
		}
		if _, err := m.AttachJourneys(journey.DefaultConfig()); err != nil {
			t.Fatal(err)
		}
		if _, err := m.LoadSource("nic.s", robustNICGuest); err != nil {
			t.Fatal(err)
		}
		if err := m.Run(50_000_000); err != nil {
			t.Fatalf("run: %v", err)
		}
		if err := m.Drain(1_000_000); err != nil {
			t.Fatalf("drain: %v", err)
		}
		var buf bytes.Buffer
		if _, err := m.Journeys().WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	a, b := dump(3), dump(3)
	if !bytes.Equal(a, b) {
		t.Error("same fault seed, different journey dumps")
	}
	c := dump(4)
	if bytes.Equal(a, c) {
		t.Error("seeds 3 and 4 produced identical journey dumps; the seed is not reaching the schedule")
	}
}
