package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestMemoryReadWriteRoundTrip(t *testing.T) {
	m := NewMemory()
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}
	m.Write(0x1000, data)
	got := make([]byte, len(data))
	m.Read(0x1000, got)
	if !bytes.Equal(got, data) {
		t.Errorf("got % x, want % x", got, data)
	}
}

func TestMemoryCrossesPageBoundary(t *testing.T) {
	m := NewMemory()
	addr := uint64(PageSize - 3)
	data := []byte{0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff}
	m.Write(addr, data)
	got := make([]byte, len(data))
	m.Read(addr, got)
	if !bytes.Equal(got, data) {
		t.Errorf("cross-page: got % x, want % x", got, data)
	}
	if m.PagesTouched() != 2 {
		t.Errorf("pages touched = %d, want 2", m.PagesTouched())
	}
}

func TestMemoryZeroFilled(t *testing.T) {
	m := NewMemory()
	got := make([]byte, 16)
	m.Read(0x123456, got)
	for _, b := range got {
		if b != 0 {
			t.Fatal("fresh memory not zero")
		}
	}
}

func TestMemoryUintHelpers(t *testing.T) {
	m := NewMemory()
	m.WriteUint(0x2000, 8, 0x1122334455667788)
	if got := m.ReadUint(0x2000, 8); got != 0x1122334455667788 {
		t.Errorf("ReadUint8 = %#x", got)
	}
	if got := m.ReadUint(0x2000, 4); got != 0x55667788 {
		t.Errorf("ReadUint4 = %#x", got)
	}
	if got := m.ReadUint(0x2000, 1); got != 0x88 {
		t.Errorf("ReadUint1 = %#x", got)
	}
	m.WriteUint(0x3000, 2, 0xbeef)
	if got := m.ReadUint(0x3000, 2); got != 0xbeef {
		t.Errorf("ReadUint2 = %#x", got)
	}
}

// TestMemoryQuick: writing then reading arbitrary spans round-trips.
func TestMemoryQuick(t *testing.T) {
	m := NewMemory()
	f := func(addr uint32, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		if len(data) > 4096 {
			data = data[:4096]
		}
		m.Write(uint64(addr), data)
		got := make([]byte, len(data))
		m.Read(uint64(addr), got)
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPageTableMapLookup(t *testing.T) {
	pt := NewPageTable()
	pt.Map(0x10000, 0x40000, KindCached, true)
	pte, ok := pt.Lookup(0x10ab4)
	if !ok {
		t.Fatal("lookup missed")
	}
	if pte.PFN != 0x40000>>PageBits || pte.Kind != KindCached || !pte.Writable {
		t.Errorf("pte = %+v", pte)
	}
	if _, ok := pt.Lookup(0x20000); ok {
		t.Error("unmapped page should miss")
	}
	pt.Unmap(0x10000)
	if _, ok := pt.Lookup(0x10000); ok {
		t.Error("unmapped page still present")
	}
}

func TestPageTableMapRange(t *testing.T) {
	pt := NewPageTable()
	pt.MapRange(0x10000, 0x80000, 3*PageSize+1, KindUncached, true)
	if pt.Len() != 4 {
		t.Fatalf("mapped %d pages, want 4", pt.Len())
	}
	for i := uint64(0); i < 4; i++ {
		pte, ok := pt.Lookup(0x10000 + i*PageSize)
		if !ok {
			t.Fatalf("page %d missing", i)
		}
		if want := (0x80000 >> PageBits) + i; pte.PFN != want {
			t.Errorf("page %d PFN = %#x, want %#x", i, pte.PFN, want)
		}
		if pte.Kind != KindUncached {
			t.Errorf("page %d kind = %v", i, pte.Kind)
		}
	}
}

func TestTLBHitMiss(t *testing.T) {
	tlb := NewTLB(4)
	pte := PTE{PFN: 7, Kind: KindCombining, Writable: true, Valid: true}
	if _, ok := tlb.Lookup(0x7000, 1); ok {
		t.Fatal("empty TLB hit")
	}
	tlb.Insert(0x7000, 1, pte)
	got, ok := tlb.Lookup(0x7abc, 1)
	if !ok || got != pte {
		t.Fatalf("hit failed: %+v ok=%v", got, ok)
	}
	// Different ASID must miss.
	if _, ok := tlb.Lookup(0x7000, 2); ok {
		t.Error("ASID mismatch should miss")
	}
	if tlb.Hits != 1 || tlb.Misses != 2 {
		t.Errorf("stats hits=%d misses=%d", tlb.Hits, tlb.Misses)
	}
}

func TestTLBLRUReplacement(t *testing.T) {
	tlb := NewTLB(2)
	p := func(pfn uint64) PTE { return PTE{PFN: pfn, Valid: true} }
	tlb.Insert(0x1000, 0, p(1))
	tlb.Insert(0x2000, 0, p(2))
	tlb.Lookup(0x1000, 0) // touch 0x1000 so 0x2000 is LRU
	tlb.Insert(0x3000, 0, p(3))
	if _, ok := tlb.Lookup(0x2000, 0); ok {
		t.Error("LRU entry 0x2000 should have been evicted")
	}
	if _, ok := tlb.Lookup(0x1000, 0); !ok {
		t.Error("recently used entry 0x1000 evicted")
	}
	if _, ok := tlb.Lookup(0x3000, 0); !ok {
		t.Error("new entry 0x3000 missing")
	}
}

func TestTLBInsertUpdatesExisting(t *testing.T) {
	tlb := NewTLB(4)
	tlb.Insert(0x1000, 0, PTE{PFN: 1, Valid: true})
	tlb.Insert(0x1000, 0, PTE{PFN: 2, Valid: true})
	got, ok := tlb.Lookup(0x1000, 0)
	if !ok || got.PFN != 2 {
		t.Errorf("update failed: %+v", got)
	}
}

func TestTLBFlush(t *testing.T) {
	tlb := NewTLB(8)
	tlb.Insert(0x1000, 1, PTE{PFN: 1, Valid: true})
	tlb.Insert(0x2000, 2, PTE{PFN: 2, Valid: true})
	tlb.FlushASID(1)
	if _, ok := tlb.Lookup(0x1000, 1); ok {
		t.Error("ASID 1 entry survived FlushASID")
	}
	if _, ok := tlb.Lookup(0x2000, 2); !ok {
		t.Error("ASID 2 entry wrongly flushed")
	}
	tlb.FlushAll()
	if _, ok := tlb.Lookup(0x2000, 2); ok {
		t.Error("entry survived FlushAll")
	}
}

type fakeTarget struct {
	lastWrite []byte
	lastAddr  uint64
}

func (f *fakeTarget) ReadTarget(pa uint64, size int) []byte {
	return make([]byte, size)
}
func (f *fakeTarget) WriteTarget(pa uint64, data []byte) {
	f.lastAddr = pa
	f.lastWrite = append([]byte(nil), data...)
}

func TestRouterDeviceDispatch(t *testing.T) {
	ram := NewMemory()
	rt := NewRouter(ram)
	dev := &fakeTarget{}
	if err := rt.Register(0x4000_0000, 0x1000, "nic", dev); err != nil {
		t.Fatal(err)
	}
	// Device range goes to the device.
	rt.Write(0x4000_0010, []byte{1, 2, 3})
	if dev.lastAddr != 0x4000_0010 || len(dev.lastWrite) != 3 {
		t.Errorf("device write not routed: %+v", dev)
	}
	// Other addresses go to RAM.
	rt.Write(0x1000, []byte{9})
	if got := ram.ReadUint(0x1000, 1); got != 9 {
		t.Error("RAM write not routed")
	}
	if got := rt.Read(0x1000, 1); got[0] != 9 {
		t.Error("RAM read not routed")
	}
}

func TestRouterRejectsOverlap(t *testing.T) {
	rt := NewRouter(NewMemory())
	if err := rt.Register(0x1000, 0x1000, "a", &fakeTarget{}); err != nil {
		t.Fatal(err)
	}
	if err := rt.Register(0x1800, 0x1000, "b", &fakeTarget{}); err == nil {
		t.Error("overlap not rejected")
	}
	if err := rt.Register(0x2000, 0x1000, "c", &fakeTarget{}); err != nil {
		t.Errorf("adjacent region rejected: %v", err)
	}
}

func TestKindString(t *testing.T) {
	if KindCached.String() != "cached" || KindCombining.String() != "combining" {
		t.Error("Kind.String wrong")
	}
}
