package mem

// TLB is a fully-associative, ASID-tagged translation lookaside buffer with
// true-LRU replacement. ASID tagging is what lets the simulated kernel
// switch processes without flushing (paper §3.1 cites the MIPS 8-bit space
// ID, PA-RISC's 18-bit space ID and the Alpha 21164's 7-bit PID for the
// same purpose: the current process ID is available to hardware — including
// the CSB — at run time).
type TLB struct {
	entries []tlbEntry
	clock   uint64
	// Stats
	Hits, Misses uint64
}

type tlbEntry struct {
	vpn   uint64
	asid  uint8
	pte   PTE
	used  uint64
	valid bool
}

// NewTLB returns a TLB with the given number of entries (64 is typical).
func NewTLB(entries int) *TLB {
	if entries <= 0 {
		entries = 64
	}
	return &TLB{entries: make([]tlbEntry, entries)}
}

// Lookup translates va under asid. It returns the PTE and whether the
// translation hit.
func (t *TLB) Lookup(va uint64, asid uint8) (PTE, bool) {
	vpn := va >> PageBits
	t.clock++
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.vpn == vpn && e.asid == asid {
			e.used = t.clock
			t.Hits++
			return e.pte, true
		}
	}
	t.Misses++
	return PTE{}, false
}

// Insert installs a translation, evicting the least recently used entry if
// the TLB is full.
func (t *TLB) Insert(va uint64, asid uint8, pte PTE) {
	vpn := va >> PageBits
	t.clock++
	victim := 0
	var oldest uint64 = ^uint64(0)
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.vpn == vpn && e.asid == asid {
			e.pte = pte
			e.used = t.clock
			return
		}
		if !e.valid {
			victim = i
			oldest = 0
		} else if e.used < oldest {
			victim = i
			oldest = e.used
		}
	}
	t.entries[victim] = tlbEntry{vpn: vpn, asid: asid, pte: pte, used: t.clock, valid: true}
}

// FlushASID invalidates all entries belonging to one address space.
func (t *TLB) FlushASID(asid uint8) {
	for i := range t.entries {
		if t.entries[i].asid == asid {
			t.entries[i].valid = false
		}
	}
}

// FlushAll invalidates the entire TLB.
func (t *TLB) FlushAll() {
	for i := range t.entries {
		t.entries[i].valid = false
	}
}

// Size returns the number of entry slots.
func (t *TLB) Size() int { return len(t.entries) }
