// Server guest codegen: the SV9L program a server node runs against the
// load generator. The server loops forever — poll the NIC RX count until
// a full request is queued, pop it (destructive uncached loads), steer
// the reply back to the requesting client via RegTxDest (the client index
// rides in the request header's top 16 bits), emit the reply payload with
// the selected send method, push the transmit descriptor, and wait for
// the send counter to advance before the next request. The reply paths
// mirror internal/bench's ping-pong blocks — plain uncached stores, the
// CSB swap-retry protocol (§3.2), or a DMA descriptor — so serving curves
// are directly comparable to the X8 microbenchmark.
package loadgen

import (
	"fmt"
	"strings"

	"csbsim/internal/bench"
	"csbsim/internal/cluster"
	"csbsim/internal/device"
	"csbsim/internal/mem"
)

// DMAStageBase is where the DMA server guest stages reply payloads. Map
// it *uncached* (see ServerMapIO): the NIC's DMA engine reads main memory
// over the bus, so a cached staging buffer would hand it stale lines.
// Linting the generated program passes [DMAStageBase, DMAStageBase+
// DMAStageSize) as an asm.LintConfig.IORanges window for the same reason.
const DMAStageBase = 0x200000

// DMAStageSize is the extent of the staging window ServerMapIO maps.
const DMAStageSize = 1 << 16

// ServerProgram returns the server guest for the given reply method and
// request/reply size in words (1..8; the CSB path requires the full
// 8-word line, its conditional-flush batch unit).
func ServerProgram(method bench.SendMethod, words int) (string, error) {
	if words < 1 || words > 8 {
		return "", fmt.Errorf("loadgen: %d-word replies unsupported (want 1..8)", words)
	}
	if method == bench.SendCSB && words != 8 {
		return "", fmt.Errorf("loadgen: CSB replies need the full 8-word line, got %d words", words)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "\tset %#x, %%o0\n", cluster.NICBase)
	fmt.Fprintf(&b, "\tset %#x, %%o1\n", cluster.NICBase+device.PacketBufBase)
	// Filler payload word for the non-header reply words.
	b.WriteString("\tset 0xAB, %g1\n\tmovr2f %g1, %f0\n")
	// Transmit descriptor: offset 0, length words*8.
	fmt.Fprintf(&b, "\tset %d, %%g4\n\tsll %%g4, 48, %%g4\n", words*8)
	if method == bench.SendDMA {
		// Stage the static filler words once; the header word is rewritten
		// per reply. %g5 holds the ready-made DMA descriptor.
		fmt.Fprintf(&b, "\tset %#x, %%o2\n", DMAStageBase)
		for w := 1; w < words; w++ {
			fmt.Fprintf(&b, "\tstd %%f0, [%%o2+%d]\n", w*8)
		}
		b.WriteString("\tmembar\n")
		fmt.Fprintf(&b, "\tset %#x, %%g5\n\tor %%g4, %%g5, %%g5\n", DMAStageBase)
	}
	b.WriteString("\tclr %l0\n") // sent-packet count mirror
	b.WriteString("loop:\n")
	// Wait for one complete request. The poll loads look reordered past
	// the previous reply's device stores to the linter, but the uncached
	// buffer is strongly ordered — a load issues only after all older
	// stores — and the CSB path's combining line is swap-flushed before
	// any poll, so no membar is needed (and adding one would slow the
	// serving loop the experiments measure).
	fmt.Fprintf(&b, "wait:\tldx [%%o0+%#x], %%g1\t! lint:ignore missing-membar RX poll issues FIFO behind older uncached stores (uncbuf strong ordering)\n", device.RegRxCount)
	fmt.Fprintf(&b, "\tcmp %%g1, %d\n\tbl wait\n", words)
	// Pop the header, drain the request body.
	fmt.Fprintf(&b, "\tldx [%%o0+%#x], %%g3\t! lint:ignore missing-membar destructive RX pop ordered behind older stores by the uncached FIFO\n", device.RegRxPop)
	if words > 1 {
		fmt.Fprintf(&b, "\tset %d, %%g2\n", words-1)
		fmt.Fprintf(&b, "drain:\tldx [%%o0+%#x], %%g1\t! lint:ignore missing-membar destructive RX pop ordered behind older stores by the uncached FIFO\n", device.RegRxPop)
		b.WriteString("\tsubcc %g2, 1, %g2\n\tbnz drain\n")
	}
	// Steer the reply to the requesting client (header bits 63:48).
	b.WriteString("\tsrl %g3, 48, %g2\n")
	fmt.Fprintf(&b, "\tstx %%g2, [%%o0+%#x]\n", device.RegTxDest)
	// Emit the reply: header echo + filler, via the selected path.
	switch method {
	case bench.SendCSB:
		b.WriteString("RETRY:\tset 8, %l4\n")
		b.WriteString("\tstx %g3, [%o1]\n")
		for w := 1; w < words; w++ {
			fmt.Fprintf(&b, "\tstd %%f0, [%%o1+%d]\n", w*8)
		}
		b.WriteString("\tswap [%o1], %l4\n")
		b.WriteString("\tcmp %l4, 8\n\tbnz RETRY\n")
		b.WriteString("\tstx %g4, [%o0]\n")
	case bench.SendDMA:
		b.WriteString("\tstx %g3, [%o2]\n\tmembar\n")
		fmt.Fprintf(&b, "\tstx %%g5, [%%o0+%#x]\n", device.RegDMA)
	default: // plain uncached PIO
		b.WriteString("\tstx %g3, [%o1]\n")
		for w := 1; w < words; w++ {
			fmt.Fprintf(&b, "\tstd %%f0, [%%o1+%d]\n", w*8)
		}
		b.WriteString("\tmembar\n")
		b.WriteString("\tstx %g4, [%o0]\n")
	}
	// Wait for the packet to leave before accepting the next request:
	// keeps the TX FIFO at depth one and, for DMA, the engine idle when
	// the next descriptor lands (a busy DMA engine drops descriptors).
	b.WriteString("\tinc %l0\n")
	fmt.Fprintf(&b, "sent:\tldx [%%o0+%#x], %%g1\t! lint:ignore missing-membar TX status poll; the descriptor store is older in the uncached FIFO, CSB line already swap-flushed\n", device.RegStatus)
	b.WriteString("\tsrl %g1, 32, %g1\n")
	b.WriteString("\tcmp %g1, %l0\n\tbl sent\n")
	b.WriteString("\tba loop\n")
	return b.String(), nil
}

// ServerMapIO maps the NIC (packet buffer combining for the CSB method)
// and, for DMA, the uncached staging buffer into server node n's address
// space.
func ServerMapIO(n *cluster.Node, method bench.SendMethod) {
	n.MapIO(method == bench.SendCSB)
	if method == bench.SendDMA {
		n.M.MapRange(DMAStageBase, DMAStageSize, mem.KindUncached)
	}
}
