// Machine-level fault-injection wiring: AttachFaults threads one
// deterministic injector through every component that can refuse, delay
// or drop work — the bus (transaction NACKs), the CSB (capacity pressure,
// delayed and dropped flush acknowledgements), the uncached buffer
// (capacity pressure) and the devices (latency bursts, FIFO backpressure
// windows). The simulator is single-threaded, so decisions are consumed
// in a deterministic order: the same seed, configuration and guest
// program reproduce a run bit-identically, report included.
package sim

import (
	"fmt"

	"csbsim/internal/bus"
	"csbsim/internal/fault"
)

// deviceFaultTarget is implemented by devices that accept injected
// latency bursts and backpressure windows (device.NIC does).
type deviceFaultTarget interface {
	SetFaultHooks(stall, backpressure func() int)
}

// deviceErrSource is implemented by devices that record out-of-range
// guest accesses (device.NIC does); Run polls it and fails the run with
// the typed error instead of letting the device state rot silently.
type deviceErrSource interface {
	Err() error
}

// AttachFaults installs a deterministic fault injector across the whole
// machine. Attach before running; devices added later (AddDevice) are
// wired automatically. The returned injector exposes the injection
// counters, which also appear in Stats().Faults and the Report output.
func (m *Machine) AttachFaults(cfg fault.Config) (*fault.Injector, error) {
	if m.faults != nil {
		return nil, fmt.Errorf("sim: fault injector already attached")
	}
	inj, err := fault.New(cfg)
	if err != nil {
		return nil, err
	}
	m.faults = inj
	m.Bus.SetNackHook(func(*bus.Txn) bool { return inj.NackBus() })
	m.CSB.SetFaultHooks(inj.SqueezeCSB, inj.FlushDelay, inj.DropFlush)
	m.UB.SetFaultHook(inj.SqueezeUB)
	for _, d := range m.devices {
		m.wireDeviceFaults(d)
	}
	return inj, nil
}

// Faults returns the attached injector, or nil.
func (m *Machine) Faults() *fault.Injector { return m.faults }

func (m *Machine) wireDeviceFaults(d Device) {
	if t, ok := d.(deviceFaultTarget); ok && m.faults != nil {
		t.SetFaultHooks(m.faults.DeviceStall, m.faults.Backpressure)
	}
}

// deviceErr returns the first recorded device error, wrapped with the
// cycle it was noticed at (errors.As still reaches the typed cause).
func (m *Machine) deviceErr() error {
	for _, fn := range m.errDevices {
		if err := fn(); err != nil {
			return fmt.Errorf("sim: at cycle %d: %w", m.cycle, err)
		}
	}
	return nil
}
