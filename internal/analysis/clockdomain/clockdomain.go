// Package clockdomain enforces the cluster's clock-domain discipline.
// Every cycle stamp lives in exactly one node's clock domain: stamps are
// read from a machine's Cycle() (or the cluster coordinator's Cycle()),
// and ctrace merges domains onto one timeline only through SetAlign
// offsets. Comparing or subtracting stamps from two different domains
// without such an alignment silently produces skewed latencies — under
// the windowed engine the node clocks agree only to within one lookahead
// window.
//
// The analyzer tracks uint64 cycle values from their sources: a value is
// tainted with the textual receiver of the Cycle() call that produced it
// (`a.M` in `a.M.Cycle()`), taint flows through assignment, conversion
// and arithmetic within a function, and through package-local helper
// functions whose returns carry a stamp (the call graph supplies those).
// A binary comparison or arithmetic expression whose operands carry two
// different domains is reported, unless either operand has passed through
// an alignment point — an index into a ctrace-style `offsets` map — or
// the line carries the reviewed escape hatch
//
//	//csb:aligned <reason>
//
// The tracking is intraprocedural and flow-insensitive across loop
// back-edges; struct fields and parameters start untainted. That is the
// deliberate trade: it catches the bug class at its source (mixing two
// freshly read clocks) with zero false positives on aligned plumbing.
package clockdomain

import (
	"go/ast"
	"go/token"
	"go/types"

	"csbsim/internal/analysis"
)

// Analyzer is the clock-domain checker.
var Analyzer = &analysis.Analyzer{
	Name: "clockdomain",
	Doc:  "flags comparisons/arithmetic mixing cycle stamps from different node clock domains without passing through a ctrace.SetAlign offset",
	Run:  run,
}

// cycleSources names the receiver types whose Cycle() method yields a raw
// stamp in that receiver's clock domain.
var cycleSources = map[string]bool{
	"csbsim/internal/sim.Machine":     true,
	"csbsim/internal/cluster.Cluster": true,
}

// alignedDomain marks a value that went through an alignment point; it
// combines with any domain without a report.
const alignedDomain = "<aligned>"

type checker struct {
	pass    *analysis.Pass
	helpers map[*types.Func]bool // package-local funcs returning raw stamps
}

func run(pass *analysis.Pass) error {
	cg := analysis.BuildCallGraph(pass)
	c := &checker{pass: pass, helpers: make(map[*types.Func]bool)}
	// Fixpoint over "cycle-returning helpers": a declared function whose
	// return statement yields a domain-tainted value. Calls to a helper are
	// then sources keyed by the call site's receiver, so `a.now()` and
	// `b.now()` taint with different domains.
	for changed := true; changed; {
		changed = false
		for _, n := range cg.Nodes {
			if n.Obj == nil || c.helpers[n.Obj] || n.Body() == nil {
				continue
			}
			if c.returnsStamp(n) {
				c.helpers[n.Obj] = true
				changed = true
			}
		}
	}
	for _, n := range cg.Nodes {
		c.checkFunc(n)
	}
	return nil
}

// returnsStamp reports whether some return statement in n yields a value
// carrying a concrete clock domain (aligned values do not count — they
// are safe to mix).
func (c *checker) returnsStamp(n *analysis.FuncNode) bool {
	found := false
	ast.Inspect(n.Body(), func(x ast.Node) bool {
		if found {
			return false
		}
		if _, isLit := x.(*ast.FuncLit); isLit {
			return false
		}
		ret, ok := x.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, r := range ret.Results {
			if d := c.domainOf(nil, r); d != "" && d != alignedDomain {
				found = true
			}
		}
		return true
	})
	return found
}

// checkFunc walks one function body in source order, tracking variable
// domains through assignments and reporting mixed-domain binaries.
// Nested literals are their own call-graph nodes and are skipped here.
func (c *checker) checkFunc(n *analysis.FuncNode) {
	body := n.Body()
	if body == nil {
		return
	}
	env := make(map[types.Object]string)
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			c.recordAssign(env, x.Lhs, x.Rhs)
		case *ast.ValueSpec:
			lhs := make([]ast.Expr, len(x.Names))
			for i, id := range x.Names {
				lhs[i] = id
			}
			c.recordAssign(env, lhs, x.Values)
		case *ast.BinaryExpr:
			c.checkBinary(env, x)
		}
		return true
	})
}

// recordAssign propagates domains from rhs values to plain-identifier
// lhs targets (including the comma-ok form `v, ok := m[k]`).
func (c *checker) recordAssign(env map[types.Object]string, lhs, rhs []ast.Expr) {
	if len(rhs) == 1 && len(lhs) == 2 {
		rhs = []ast.Expr{rhs[0], nil}
	}
	if len(lhs) != len(rhs) {
		return
	}
	for i := range lhs {
		if rhs[i] == nil {
			continue
		}
		id, ok := lhs[i].(*ast.Ident)
		if !ok {
			continue
		}
		obj := c.pass.Info.ObjectOf(id)
		if obj == nil {
			continue
		}
		if d := c.domainOf(env, rhs[i]); d != "" {
			env[obj] = d
		}
	}
}

// binary ops that combine or compare two stamps.
var mixOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.MUL: true, token.QUO: true,
	token.REM: true, token.LSS: true, token.LEQ: true, token.GTR: true,
	token.GEQ: true, token.EQL: true, token.NEQ: true,
}

func (c *checker) checkBinary(env map[types.Object]string, b *ast.BinaryExpr) {
	if !mixOps[b.Op] {
		return
	}
	dx := c.domainOf(env, b.X)
	dy := c.domainOf(env, b.Y)
	if dx == "" || dy == "" || dx == dy || dx == alignedDomain || dy == alignedDomain {
		return
	}
	if c.pass.Pragma(b.Pos(), "aligned") {
		return
	}
	c.pass.Reportf(b.Pos(),
		"cycle stamps from different clock domains (%s vs %s) combined without alignment; apply a ctrace.SetAlign-derived offset first (or annotate //csb:aligned with a reason)",
		dx, dy)
}

// domainOf computes the clock domain an expression's value carries: "",
// a receiver-keyed domain like "a.M", or alignedDomain. env may be nil.
func (c *checker) domainOf(env map[types.Object]string, e ast.Expr) string {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return c.domainOf(env, e.X)
	case *ast.UnaryExpr:
		return c.domainOf(env, e.X)
	case *ast.Ident:
		if obj := c.pass.Info.ObjectOf(e); obj != nil {
			return env[obj]
		}
	case *ast.IndexExpr:
		// An index into an `offsets` map is the ctrace alignment idiom:
		// its value neutralizes whatever domain it is combined with.
		if isOffsetsMap(e.X) {
			return alignedDomain
		}
	case *ast.CallExpr:
		// A conversion (uint64(x), int64(x)) is domain-transparent.
		if tv, ok := c.pass.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return c.domainOf(env, e.Args[0])
		}
		if d, ok := c.sourceCall(e); ok {
			return d
		}
	case *ast.BinaryExpr:
		dx, dy := c.domainOf(env, e.X), c.domainOf(env, e.Y)
		switch {
		case dx == alignedDomain || dy == alignedDomain:
			return alignedDomain
		case dx == "":
			return dy
		case dy == "" || dx == dy:
			return dx
		default:
			// Mixed domains: checkBinary reports at this node; the result
			// keeps one side's domain so the report is not repeated upward.
			return dx
		}
	}
	return ""
}

// sourceCall recognizes calls producing raw stamps: Cycle() on a machine
// or the cluster, and calls to cycle-returning package-local helpers. The
// domain is the textual receiver (or the whole call for receiver-less
// helpers, so `now(a)` and `now(b)` stay distinct).
func (c *checker) sourceCall(call *ast.CallExpr) (string, bool) {
	var id *ast.Ident
	sel, isSel := unparen(call.Fun).(*ast.SelectorExpr)
	if isSel {
		id = sel.Sel
	} else if i, ok := unparen(call.Fun).(*ast.Ident); ok {
		id = i
	} else {
		return "", false
	}
	fn, ok := c.pass.Info.Uses[id].(*types.Func)
	if !ok {
		return "", false
	}
	if fn.Name() == "Cycle" {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && cycleSources[namedPath(sig.Recv().Type())] {
			if isSel {
				return types.ExprString(sel.X), true
			}
			return types.ExprString(call), true
		}
	}
	if c.helpers[fn] {
		if isSel {
			return types.ExprString(sel.X), true
		}
		return types.ExprString(call), true
	}
	return "", false
}

// isOffsetsMap matches the alignment-map shapes `offsets[...]` and
// `x.offsets[...]` (ctrace.Tracer's per-node offset table).
func isOffsetsMap(x ast.Expr) bool {
	switch x := unparen(x).(type) {
	case *ast.Ident:
		return x.Name == "offsets"
	case *ast.SelectorExpr:
		return x.Sel.Name == "offsets"
	}
	return false
}

// namedPath renders a (possibly pointer) named type as "pkgpath.Name".
func namedPath(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
