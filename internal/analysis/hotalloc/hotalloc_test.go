package hotalloc_test

import (
	"testing"

	"csbsim/internal/analysis/antest"
	"csbsim/internal/analysis/hotalloc"
)

func TestHotAlloc(t *testing.T) {
	antest.Run(t, hotalloc.Analyzer, "testdata/hot",
		"csbsim/internal/analysis/hotalloc/fixture")
}
