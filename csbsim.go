// Package csbsim is the public API of the conditional store buffer
// reproduction: a cycle-level simulator of an out-of-order processor with
// a software-controlled conditional store buffer (CSB), as described in
// "Improving I/O Performance with a Conditional Store Buffer" (Schaelicke
// & Davis, MICRO 1998).
//
// The package is a thin facade over the internal packages:
//
//   - Build a Machine from a Config (DefaultConfig matches the paper's
//     evaluation machine: 4-wide OOO core, 64-byte lines, 8-byte
//     multiplexed bus at a 6:1 clock ratio).
//   - Assemble SV9L (SPARC-V9-flavored) assembly with Assemble, load it
//     with Machine.Load, and Run.
//   - Map uncached or combining (CSB) address space with Machine.MapRange;
//     stores to combining pages are captured by the CSB and a swap to
//     them is the conditional flush, exactly as in the paper's listing.
//   - Add devices (a NIC with a descriptor FIFO and DMA engine is
//     provided), spawn preemptively-scheduled processes with a Kernel,
//     and read everything back through Stats.
//   - Regenerate any of the paper's figures with Figure / AllFigures.
//   - Observe execution: Stats.CPU.CPI is a stall-attribution stack whose
//     buckets sum to the cycle count; Machine.AttachPerfetto exports
//     per-instruction lifecycle traces as Chrome trace-event JSON;
//     Machine.AttachMetrics streams periodic machine samples.
//   - Prove recovery paths: Machine.AttachFaults threads a deterministic
//     seed-driven fault injector (bus NACKs, device stalls, FIFO
//     backpressure, dropped/delayed conditional-flush acks, buffer
//     pressure) through the whole machine, and Machine.SetWatchdog arms a
//     retire-progress watchdog that aborts a livelocked run with a
//     diagnostic dump. cmd/faultcampaign sweeps seeds and checks guests
//     recover to the fault-free architectural state.
//
// See the examples directory for runnable walkthroughs and EXPERIMENTS.md
// for the measured reproduction of every figure.
package csbsim

import (
	"io"

	"csbsim/internal/asm"
	"csbsim/internal/bench"
	"csbsim/internal/bus"
	"csbsim/internal/cache"
	"csbsim/internal/core"
	"csbsim/internal/cpu"
	"csbsim/internal/device"
	"csbsim/internal/fault"
	"csbsim/internal/kernel"
	"csbsim/internal/mem"
	"csbsim/internal/obs"
	"csbsim/internal/obs/counters"
	"csbsim/internal/obs/journey"
	"csbsim/internal/sim"
	"csbsim/internal/trace"
	"csbsim/internal/uncbuf"
)

// Machine is the simulated node: core, caches, uncached buffer, CSB, bus,
// memory and devices.
type Machine = sim.Machine

// Config collects every machine parameter.
type Config = sim.Config

// Stats is a full-machine counter snapshot.
type Stats = sim.Stats

// Program is an assembled SV9L program.
type Program = asm.Program

// Kernel is the minimal preemptive scheduler used for multi-process CSB
// experiments.
type Kernel = kernel.Kernel

// Process is one schedulable context under a Kernel.
type Process = kernel.Process

// NIC is the simulated network interface (descriptor FIFO + DMA engine +
// burst-capable packet buffer).
type NIC = device.NIC

// NICConfig parameterizes the NIC.
type NICConfig = device.Config

// Packet is one transmitted packet as observed on the simulated wire.
type Packet = device.Packet

// FigureResult is a regenerated figure: labeled series of measured values.
type FigureResult = bench.Result

// Memory page kinds, selecting the access policy per page (paper §3.1).
const (
	KindCached    = mem.KindCached
	KindUncached  = mem.KindUncached
	KindCombining = mem.KindCombining
)

// Bus models.
const (
	BusMultiplexed = bus.Multiplexed
	BusSplit       = bus.Split
)

// NIC register offsets.
const (
	NICRegTxFIFO     = device.RegTxFIFO
	NICRegDMA        = device.RegDMA
	NICRegStatus     = device.RegStatus
	NICRegIntAck     = device.RegIntAck
	NICPacketBufBase = device.PacketBufBase
	NICRegionSize    = device.RegionSize
)

// DefaultConfig returns the paper's evaluation machine.
func DefaultConfig() Config { return sim.DefaultConfig() }

// NewMachine builds a machine.
func NewMachine(cfg Config) (*Machine, error) { return sim.New(cfg) }

// Assemble translates SV9L assembly source into a Program.
func Assemble(name, src string) (*Program, error) { return asm.Assemble(name, src) }

// NewKernel creates a kernel scheduling processes on m with the given time
// slice in CPU cycles.
func NewKernel(m *Machine, quantum uint64) *Kernel { return kernel.New(m, quantum) }

// NewNIC creates a NIC claiming [base, base+NICRegionSize); register it
// with Machine.AddDevice.
func NewNIC(cfg NICConfig, base uint64) *NIC { return device.NewNIC(cfg, base) }

// DefaultNICConfig returns a 16-deep-FIFO NIC with 64-byte DMA bursts.
func DefaultNICConfig() NICConfig { return device.DefaultConfig() }

// Figure regenerates one paper figure or extension by ID: "3a".."3i",
// "4a".."4e", "5a", "5b", or the extensions "X1", "X2", "X2L", "X4",
// "X6", "X8".
func Figure(id string) (FigureResult, error) { return bench.ByID(id) }

// AllFigures regenerates every figure of the paper's evaluation section.
func AllFigures() ([]FigureResult, error) { return bench.All() }

// SetFigureWorkers sets how many measurement points figure regeneration
// runs concurrently (the csbfig -j flag). Each point is an isolated
// machine, so results are byte-identical at any worker count. n <= 0
// restores the GOMAXPROCS default.
func SetFigureWorkers(n int) { bench.SetWorkers(n) }

// FigureWorkers reports the current figure-regeneration parallelism.
func FigureWorkers() int { return bench.Workers() }

// FormatFigure renders a figure as an aligned text table.
func FormatFigure(r FigureResult) string { return bench.Format(r) }

// FormatFigureCSV renders a figure as CSV.
func FormatFigureCSV(r FigureResult) string { return bench.FormatCSV(r) }

// FormatFigureBars renders a figure as grouped ASCII bars, the closest
// terminal rendering of the paper's bar-group figures.
func FormatFigureBars(r FigureResult) string { return bench.FormatBars(r) }

// TraceRecorder records retired-instruction traces from a machine's CPU.
type TraceRecorder = trace.Recorder

// NewTrace creates a recorder streaming formatted events to w (may be
// nil) and keeping the most recent ringSize events; attach it with
// rec.Attach(m.CPU). Recorders register as retire observers, so they
// coexist with Perfetto exporters and any other attached hooks.
func NewTrace(w io.Writer, ringSize int) *TraceRecorder { return trace.New(w, ringSize) }

// CPIStack is the stall-attribution stack carried in Stats.CPU.CPI: every
// cycle is charged to exactly one cause, so the buckets sum to the cycle
// count. Format renders it as a table; it marshals to JSON as an object
// keyed by bucket name.
type CPIStack = obs.CPIStack

// StallCause labels one CPI stack bucket.
type StallCause = obs.StallCause

// PerfettoTrace accumulates instruction lifecycles, bus transactions and
// counter samples and writes Chrome trace-event JSON loadable at
// ui.perfetto.dev. Attach with Machine.AttachPerfetto before running.
type PerfettoTrace = obs.Perfetto

// MetricsSample is one periodic machine snapshot from an attached
// metrics sampler.
type MetricsSample = obs.Sample

// MetricsWriter encodes samples as JSONL or CSV; pass it to
// Machine.AttachMetrics.
type MetricsWriter = obs.MetricsWriter

// Metrics stream encodings.
const (
	MetricsJSONL = obs.FormatJSONL
	MetricsCSV   = obs.FormatCSV
)

// NewPerfetto creates a trace exporter with the default lane count.
func NewPerfetto() *PerfettoTrace { return obs.NewPerfetto() }

// NewMetricsWriter creates a sample encoder writing the given format to w.
func NewMetricsWriter(w io.Writer, format obs.MetricsFormat) *MetricsWriter {
	return obs.NewMetricsWriter(w, format)
}

// FormatPipeline renders retired-instruction lifecycle events as an ASCII
// pipeline diagram — the plain-text fallback when no Perfetto UI is at
// hand. Collect events with Machine.AttachInstEvents.
func FormatPipeline(events []obs.InstEvent) string { return obs.FormatPipeline(events) }

// JourneyTracer follows each uncached store, CSB store and NIC transmit
// descriptor through the memory system after retire, stamping a cycle
// timestamp at every hop and folding per-hop latencies into fixed-bucket
// histograms. Attach with Machine.AttachJourneys before running; dump
// with its WriteTo (readable by cmd/csbtrace).
type JourneyTracer = journey.Tracer

// JourneyConfig sizes the tracer's retention window and slowest-set.
type JourneyConfig = journey.Config

// Journey is one traced store or descriptor: per-hop cycle stamps plus
// coalescing/abort flags.
type Journey = journey.Journey

// CounterRegistry is the unified named-counter registry every simulated
// layer registers into (Machine.AttachCounters); its snapshot appears in
// Stats.Counters and renders uniformly in the report.
type CounterRegistry = counters.Registry

// CounterSnapshot is a point-in-time reading of every registered counter
// and latency-histogram summary.
type CounterSnapshot = counters.Snapshot

// DefaultJourneyConfig returns the default journey retention sizes.
func DefaultJourneyConfig() JourneyConfig { return journey.DefaultConfig() }

// FaultConfig enables and tunes the deterministic fault-injection
// classes: bus transaction NACKs, device latency bursts, NIC FIFO
// backpressure windows, delayed and dropped conditional-flush
// acknowledgements, and CSB/uncached-buffer capacity pressure. All rates
// are per-FaultRateScale probabilities. Attach with Machine.AttachFaults
// before running.
type FaultConfig = fault.Config

// FaultInjector draws the seed-deterministic fault schedule: the same
// seed, configuration and guest program reproduce a run bit-identically,
// report included.
type FaultInjector = fault.Injector

// FaultStats counts what an attached injector actually did; it also
// appears in Stats.Faults and the Report output.
type FaultStats = fault.Stats

// FaultRateScale is the denominator of all fault rates: a rate of r
// means an r-in-FaultRateScale chance at each opportunity.
const FaultRateScale = fault.RateScale

// WatchdogError is returned by Machine.Run when the armed watchdog
// (Machine.SetWatchdog) sees no instruction retire for a whole window;
// its Dump field carries the full diagnostic state at the trip.
type WatchdogError = sim.WatchdogError

// DeviceAddrError is recorded by a device when a guest access (a
// transmit descriptor or DMA transfer) points outside its valid region;
// Machine.Run surfaces it as a typed failure reachable via errors.As.
type DeviceAddrError = device.AddrError

// DefaultFaultConfig returns the standard campaign mix: every fault
// class enabled at a rate that exercises all recovery paths in a few
// thousand cycles without livelocking the guest.
func DefaultFaultConfig() FaultConfig { return fault.DefaultConfig() }

// ParseFaultSpec parses a command-line fault specification: "default",
// or a comma-separated key=value list such as "busnack=64,seed=3" (see
// FaultSpecKeys for the recognized keys).
func ParseFaultSpec(spec string) (FaultConfig, error) { return fault.ParseSpec(spec) }

// FaultSpecKeys lists the keys ParseFaultSpec recognizes, sorted.
func FaultSpecKeys() []string { return fault.SpecKeys() }

// Compile-time checks that the re-exported constructors stay wired to
// compatible types.
var (
	_ = cpu.DefaultConfig
	_ = cache.DefaultHierConfig
	_ = uncbuf.DefaultConfig
	_ = core.DefaultConfig
)
