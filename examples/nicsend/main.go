// nicsend: drive the simulated network interface the way the paper's §5
// envisions — user-level code writes a small message into the NIC's
// packet buffer through the conditional store buffer (one atomic line
// burst, no locks) and pushes a transmit descriptor with a single store,
// Medusa-style. The NIC is also exercised in DMA mode for comparison.
package main

import (
	"fmt"
	"log"

	"csbsim"
)

const nicBase = 0x4000_0000

func main() {
	m, err := csbsim.NewMachine(csbsim.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	nic := csbsim.NewNIC(csbsim.DefaultNICConfig(), nicBase)
	if err := m.AddDevice(nicBase, csbsim.NICRegionSize, "nic", nic, nic); err != nil {
		log.Fatal(err)
	}
	// Register page: plain uncached. Packet buffer page: combining, so
	// the CSB delivers payloads as atomic line bursts (§3.3: the device
	// accepts burst writes).
	m.MapRange(nicBase, csbsim.NICPacketBufBase, csbsim.KindUncached)
	m.MapRange(nicBase+csbsim.NICPacketBufBase, 0x1000, csbsim.KindCombining)

	// Send three 64-byte messages: fill a line via the CSB, flush, then
	// one store pushes the descriptor (offset 0, length 64 → 64<<48).
	prog := `
	.equ NICREG, 0x40000000
	.equ PKTBUF, 0x40001000
	set PKTBUF, %o1
	set NICREG, %o0
	mov 3, %g3              ! messages to send
	mov 0xAB, %g1
	movr2f %g1, %f0
msg:
RETRY:
	set 8, %l4
	std %f0, [%o1]
	std %f0, [%o1+8]
	std %f0, [%o1+16]
	std %f0, [%o1+24]
	std %f0, [%o1+32]
	std %f0, [%o1+40]
	std %f0, [%o1+48]
	std %f0, [%o1+56]
	swap [%o1], %l4         ! atomic line burst into the packet buffer
	cmp %l4, 8
	bnz RETRY
	set 64, %g4
	sll %g4, 48, %g4        ! descriptor: offset 0, length 64
	stx %g4, [%o0]          ! one store starts transmission — no lock
	subcc %g3, 1, %g3
	bnz msg
	membar
	halt
`
	if _, err := m.LoadSource("nicsend.s", prog); err != nil {
		log.Fatal(err)
	}
	if err := m.Run(10_000_000); err != nil {
		log.Fatal(err)
	}
	if err := m.Drain(1_000_000); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("sent %d packets via CSB PIO (no locks, no DMA setup):\n", len(nic.Packets()))
	for i, p := range nic.Packets() {
		fmt.Printf("  packet %d: %d bytes, first byte %#x, on wire at bus cycle %d\n",
			i, len(p.Data), p.Data[0], p.SentAt)
	}
	s := m.Stats()
	fmt.Printf("CSB: %d stores combined into %d line bursts, %d flush failures\n",
		s.CSB.Stores, s.CSB.Bursts, s.CSB.FlushFail)
	fmt.Printf("total: %d CPU cycles for 3 messages (%d cycles/message)\n",
		s.Cycles, s.Cycles/3)
}
