package fault

import (
	"strings"
	"testing"
)

func TestPRNGDeterministic(t *testing.T) {
	a := NewPRNG(42)
	b := NewPRNG(42)
	for i := 0; i < 1000; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("draw %d: %#x != %#x", i, x, y)
		}
	}
}

func TestPRNGSeedsDiffer(t *testing.T) {
	a := NewPRNG(1)
	b := NewPRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided on %d of 100 draws", same)
	}
}

func TestPRNGZeroSeed(t *testing.T) {
	p := NewPRNG(0)
	if p.Uint64() == 0 && p.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck generator")
	}
}

func TestIntnRange(t *testing.T) {
	p := NewPRNG(7)
	for i := 0; i < 10000; i++ {
		if v := p.Intn(24); v < 0 || v >= 24 {
			t.Fatalf("Intn(24) = %d out of range", v)
		}
	}
}

func TestChanceBounds(t *testing.T) {
	p := NewPRNG(9)
	for i := 0; i < 1000; i++ {
		if p.chance(0) {
			t.Fatal("rate 0 fired")
		}
	}
	for i := 0; i < 1000; i++ {
		if !p.chance(RateScale) {
			t.Fatal("rate 1024 missed")
		}
	}
}

func TestChanceRoughlyCalibrated(t *testing.T) {
	p := NewPRNG(11)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if p.chance(256) { // expect ~25%
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.22 || frac > 0.28 {
		t.Fatalf("rate 256/1024 fired %.3f of the time, want ~0.25", frac)
	}
}

func TestInjectorDeterministicSchedule(t *testing.T) {
	run := func() Stats {
		inj, err := New(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		// A fixed interleaving of decision calls must always yield the
		// same schedule and counters.
		for i := 0; i < 5000; i++ {
			inj.NackBus()
			if i%3 == 0 {
				inj.DeviceStall()
				inj.Backpressure()
			}
			if i%5 == 0 {
				inj.FlushDelay()
				inj.DropFlush()
			}
			inj.SqueezeCSB()
			inj.SqueezeUB()
		}
		return inj.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different schedules:\n%+v\n%+v", a, b)
	}
	if a.Total() == 0 {
		t.Fatal("default config injected nothing over 5000 opportunities")
	}
}

func TestInjectorDisabledClassesDrawNothing(t *testing.T) {
	inj, err := New(Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if inj.NackBus() || inj.DropFlush() || inj.SqueezeCSB() || inj.SqueezeUB() {
			t.Fatal("disabled class fired")
		}
		if inj.DeviceStall() != 0 || inj.Backpressure() != 0 || inj.FlushDelay() != 0 {
			t.Fatal("disabled window class fired")
		}
	}
	if s := inj.Stats(); s.Draws != 0 {
		t.Fatalf("disabled classes consumed %d draws", s.Draws)
	}
}

func TestWindowLengthsBounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DeviceStall = RateScale
	cfg.NICBackpressure = RateScale
	cfg.FlushDelay = RateScale
	inj, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if n := inj.DeviceStall(); n < 1 || n > cfg.DeviceStallMax {
			t.Fatalf("device stall %d outside [1, %d]", n, cfg.DeviceStallMax)
		}
		if n := inj.Backpressure(); n < 1 || n > cfg.NICBackpressureMax {
			t.Fatalf("backpressure window %d outside [1, %d]", n, cfg.NICBackpressureMax)
		}
		if n := inj.FlushDelay(); n < 1 || n > cfg.FlushDelayMax {
			t.Fatalf("flush delay %d outside [1, %d]", n, cfg.FlushDelayMax)
		}
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{BusNack: -1},
		{BusNack: RateScale + 1},
		{FlushDrop: 99999},
		{DeviceStall: 8},     // enabled without a max
		{NICBackpressure: 8}, // enabled without a max
		{FlushDelay: 8},      // enabled without a max
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d validated: %+v", i, c)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config invalid: %v", err)
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("default")
	if err != nil {
		t.Fatal(err)
	}
	if cfg != DefaultConfig() {
		t.Fatalf("spec \"default\" = %+v, want DefaultConfig", cfg)
	}

	cfg, err = ParseSpec("default,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	want := DefaultConfig()
	want.Seed = 7
	if cfg != want {
		t.Fatalf("spec \"default,seed=7\" = %+v, want %+v", cfg, want)
	}

	// seed before "default" survives the mix-in.
	cfg, err = ParseSpec("seed=9,default")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 9 {
		t.Fatalf("seed=9,default lost the seed: %+v", cfg)
	}

	cfg, err = ParseSpec("busnack=1024")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.BusNack != 1024 || cfg.Enabled() != true || cfg.FlushDrop != 0 {
		t.Fatalf("single-class spec enabled extra classes: %+v", cfg)
	}

	// A window rate named without its max gets the default max.
	cfg, err = ParseSpec("devstall=8,backpressure=4,flushdelay=2")
	if err != nil {
		t.Fatal(err)
	}
	def := DefaultConfig()
	if cfg.DeviceStallMax != def.DeviceStallMax ||
		cfg.NICBackpressureMax != def.NICBackpressureMax ||
		cfg.FlushDelayMax != def.FlushDelayMax {
		t.Fatalf("window maxima not defaulted: %+v", cfg)
	}

	for _, bad := range []string{"nope", "bogus=1", "busnack=abc", "seed=xyz", "busnack=2000"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q parsed", bad)
		}
	}
	if _, err := ParseSpec("bogus=1"); err == nil || !strings.Contains(err.Error(), "busnack") {
		t.Errorf("unknown-key error should list known keys, got %v", err)
	}
}

// TestWireValidate: wire rates obey the [0, RateScale] bound and window
// classes need their maxima, mirroring the machine classes.
func TestWireValidate(t *testing.T) {
	bad := []Config{
		{WireDrop: -1},
		{WireDup: RateScale + 1},
		{WireDelay: 8},  // enabled without a max
		{LinkOutage: 8}, // enabled without a max
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d validated: %+v", i, c)
		}
	}
	if err := DefaultWireConfig().Validate(); err != nil {
		t.Errorf("default wire config invalid: %v", err)
	}
	wire := DefaultWireConfig()
	if !wire.WireEnabled() || !wire.Enabled() {
		t.Error("default wire config reports itself disabled")
	}
	if DefaultConfig().WireEnabled() {
		t.Error("machine default config claims wire classes")
	}
}

// TestWireInjectorDisabledDrawsNothing: a machine-class-only injector
// consumes no PRNG draws through the wire decision points, so attaching
// wire accounting cannot perturb an existing machine fault schedule.
func TestWireInjectorDisabledDrawsNothing(t *testing.T) {
	inj, err := New(Config{Seed: 3, BusNack: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if inj.DropPacket() || inj.DupPacket() {
			t.Fatal("disabled wire class fired")
		}
		if inj.PacketDelay() != 0 || inj.LinkOutage() != 0 {
			t.Fatal("disabled wire window class fired")
		}
	}
	if s := inj.Stats(); s.Draws != 0 || s.WireTotal() != 0 {
		t.Fatalf("disabled wire classes consumed draws: %+v", s)
	}
}

// TestWireWindowLengthsBounded: injected delays and outage windows stay
// inside [1, max].
func TestWireWindowLengthsBounded(t *testing.T) {
	cfg := DefaultWireConfig()
	cfg.WireDelay = RateScale
	cfg.LinkOutage = RateScale
	inj, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if n := inj.PacketDelay(); n < 1 || n > cfg.WireDelayMax {
			t.Fatalf("packet delay %d outside [1, %d]", n, cfg.WireDelayMax)
		}
		if n := inj.LinkOutage(); n < 1 || n > cfg.LinkOutageMax {
			t.Fatalf("outage window %d outside [1, %d]", n, cfg.LinkOutageMax)
		}
	}
	s := inj.Stats()
	if s.WireDelays != 1000 || s.OutageWindows != 1000 {
		t.Fatalf("always-on wire windows fired %d/%d times", s.WireDelays, s.OutageWindows)
	}
	if s.WireDelayCycles == 0 || s.OutageCycles == 0 || s.WireTotal() != 2000 {
		t.Fatalf("wire accounting off: %+v", s)
	}
}

// TestParseSpecWire covers the "wire" mix-in token, the wire window
// maxima defaulting, and the interplay with "default".
func TestParseSpecWire(t *testing.T) {
	cfg, err := ParseSpec("wire")
	if err != nil {
		t.Fatal(err)
	}
	if cfg != DefaultWireConfig() {
		t.Fatalf("spec \"wire\" = %+v, want DefaultWireConfig", cfg)
	}

	cfg, err = ParseSpec("wire,seed=11")
	if err != nil {
		t.Fatal(err)
	}
	want := DefaultWireConfig()
	want.Seed = 11
	if cfg != want {
		t.Fatalf("spec \"wire,seed=11\" = %+v, want %+v", cfg, want)
	}

	// Wire window rates named without maxima get the wire defaults.
	cfg, err = ParseSpec("wiredelay=8,outage=4")
	if err != nil {
		t.Fatal(err)
	}
	def := DefaultWireConfig()
	if cfg.WireDelayMax != def.WireDelayMax || cfg.LinkOutageMax != def.LinkOutageMax {
		t.Fatalf("wire maxima not defaulted: %+v", cfg)
	}
	if cfg.Enabled() && !cfg.WireEnabled() {
		t.Fatalf("wire-only spec misclassified: %+v", cfg)
	}

	// "default,wire" and "wire,default" both yield the full campaign mix.
	for _, spec := range []string{"default,wire", "wire,default"} {
		cfg, err = ParseSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		if cfg.BusNack != DefaultConfig().BusNack || cfg.WireDrop != DefaultWireConfig().WireDrop {
			t.Fatalf("spec %q lost a mix-in: %+v", spec, cfg)
		}
	}

	if _, err := ParseSpec("wiredrop=2000"); err == nil {
		t.Error("out-of-range wire rate parsed")
	}
}

func TestStatsSeedCarried(t *testing.T) {
	inj, err := New(Config{Seed: 1234, BusNack: 1})
	if err != nil {
		t.Fatal(err)
	}
	if inj.Stats().Seed != 1234 {
		t.Fatalf("stats seed = %d", inj.Stats().Seed)
	}
}
