package cluster

import (
	"bytes"
	"encoding/json"
	"testing"

	"csbsim/internal/cluster/ctrace"
	"csbsim/internal/device"
	"csbsim/internal/fault"
	"csbsim/internal/obs/journey"
	"csbsim/internal/sim"
)

// wireFaultMix is the fault recipe the determinism guard runs under:
// every wire class enabled, hot enough that a few-thousand-packet run
// exercises drops, duplicates, delays and outage windows.
func wireFaultMix() fault.Config {
	return fault.Config{
		Seed:          99,
		WireDrop:      48,
		WireDup:       32,
		WireDelay:     64,
		WireDelayMax:  250,
		LinkOutage:    12,
		LinkOutageMax: 700,
	}
}

// nicStoreWord writes one little-endian word through a node's NIC write
// path — the host-side injection primitive the fault tests' hooks use.
// Hooks run on the node's own goroutine and may touch only the node.
func nicStoreWord(n *Node, pa, v uint64) {
	var b [8]byte
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	n.NIC.WriteTarget(pa, b[:])
}

// hookSender installs a node hook that pushes one 8-word packet on the
// default route every `period` cycles until `until`, drains its own RX
// queue each cycle, and retires at `drainUntil`.
func hookSender(c *Cluster, i int, period, until, drainUntil uint64) {
	node := c.Node(i)
	next := period
	var sent uint64
	c.SetNodeHook(i, func(cycle uint64) bool {
		for {
			if _, ok := node.NIC.RxPop(); !ok {
				break
			}
		}
		if cycle >= next && cycle <= until {
			next = cycle + period
			slot := (sent % (device.PacketBufSize / 64)) * 64
			base := NICBase + device.PacketBufBase + slot
			nicStoreWord(node, base, uint64(i)<<32|sent)
			for w := uint64(1); w < 8; w++ {
				nicStoreWord(node, base+w*8, sent*w)
			}
			nicStoreWord(node, NICBase+device.RegTxFIFO, slot|64<<48)
			sent++
		}
		return cycle < drainUntil
	})
}

// faultSnapshot is everything the faulted determinism guard compares
// byte-wise, plus the injector's own accounting.
type faultSnapshot struct {
	cycle  uint64
	dump   []byte // merged ctrace dump
	stats  []byte // per-node machine stats, JSON
	reg    []byte // cluster registry snapshot, JSON
	fstats fault.Stats
}

// runFaultedRing builds a 4-node traced ring whose traffic comes from
// host-side hooks (guests just halt — with packets being dropped, a
// guest waiting on exact receive counts would wedge), attaches the wire
// fault mix, runs it with the given engine and snapshots every
// observable output.
func runFaultedRing(t *testing.T, run func(*Cluster) error) faultSnapshot {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Nodes = 4
	cfg.Topology = TopoRing
	cfg.WireLatency = 90
	cfg.Bandwidth = 2
	cfg.LinkDepth = 6
	cfg.RxEnqueueDelay = 13
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range c.Nodes() {
		n.MapIO(false)
		if _, err := n.M.LoadSource("idle.s", "halt\n"); err != nil {
			t.Fatal(err)
		}
		hookSender(c, i, uint64(97+13*i), 30_000, 45_000)
	}
	if _, err := c.AttachTrace(journey.DefaultConfig(), ctrace.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AttachWireFaults(wireFaultMix()); err != nil {
		t.Fatal(err)
	}
	if err := run(c); err != nil {
		t.Fatal(err)
	}
	var snap faultSnapshot
	snap.cycle = c.Cycle()
	snap.fstats = c.WireFaults().Stats()
	var dump bytes.Buffer
	if _, err := c.Trace().WriteTo(&dump); err != nil {
		t.Fatal(err)
	}
	snap.dump = dump.Bytes()
	var stats []sim.Stats
	for _, n := range c.Nodes() {
		stats = append(stats, n.M.Stats())
	}
	if snap.stats, err = json.Marshal(stats); err != nil {
		t.Fatal(err)
	}
	if snap.reg, err = json.Marshal(c.Registry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestParallelMatchesSequentialWithWireFaults is the PR's acceptance
// check: with every wire fault class firing, the goroutine-per-node
// engine must still produce byte-identical trace dumps, machine stats
// and counter snapshots to the inline sequential reference — the fault
// draws happen at the routing barrier in the global routing order, so
// the schedule is a pure function of (seed, traffic), not the engine.
func TestParallelMatchesSequentialWithWireFaults(t *testing.T) {
	seq := runFaultedRing(t, func(c *Cluster) error { return c.RunFor(60_000, false) })
	par := runFaultedRing(t, func(c *Cluster) error { return c.RunFor(60_000, true) })
	par2 := runFaultedRing(t, func(c *Cluster) error { return c.RunFor(60_000, true) })

	if seq.cycle != par.cycle {
		t.Errorf("final cycle: sequential %d, parallel %d", seq.cycle, par.cycle)
	}
	if seq.fstats != par.fstats {
		t.Errorf("fault schedules differ: %+v vs %+v", seq.fstats, par.fstats)
	}
	check := func(what string, a, b []byte) {
		t.Helper()
		if !bytes.Equal(a, b) {
			t.Errorf("%s differ:\n%s\n---- vs ----\n%s", what, a, b)
		}
	}
	check("trace dumps (seq vs par)", seq.dump, par.dump)
	check("machine stats (seq vs par)", seq.stats, par.stats)
	check("registry snapshots (seq vs par)", seq.reg, par.reg)
	check("trace dumps (par vs par)", par.dump, par2.dump)
	check("machine stats (par vs par)", par.stats, par2.stats)
	check("registry snapshots (par vs par)", par.reg, par2.reg)

	// Every wire class must actually have fired, or the guard is vacuous.
	fs := seq.fstats
	if fs.WireDrops == 0 || fs.WireDups == 0 || fs.WireDelays == 0 || fs.OutageWindows == 0 {
		t.Errorf("fault mix left a class idle: %+v", fs)
	}
}

// TestWireFaultCounters cross-checks the cluster's fault accounting
// against the injector's own, the per-link drop breakdown against the
// aggregate, and the trace dump's dropped-span count against the drops
// the fabric actually discarded.
func TestWireFaultCounters(t *testing.T) {
	snap := runFaultedRing(t, func(c *Cluster) error { return c.RunFor(60_000, true) })
	var reg struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.Unmarshal(snap.reg, &reg); err != nil {
		t.Fatal(err)
	}
	fs := snap.fstats
	if got := reg.Counters["cluster/fault_drops"]; got != fs.WireDrops {
		t.Errorf("cluster/fault_drops = %d, injector saw %d", got, fs.WireDrops)
	}
	if got := reg.Counters["cluster/fault_dups"]; got != fs.WireDups {
		t.Errorf("cluster/fault_dups = %d, injector saw %d", got, fs.WireDups)
	}
	if got := reg.Counters["cluster/fault_delay_cycles"]; got != fs.WireDelayCycles {
		t.Errorf("cluster/fault_delay_cycles = %d, injector saw %d", got, fs.WireDelayCycles)
	}
	var linkSum uint64
	for k, v := range reg.Counters {
		if len(k) > len("cluster/link_drops/") && k[:len("cluster/link_drops/")] == "cluster/link_drops/" {
			linkSum += v
		}
	}
	if agg := reg.Counters["cluster/link_drops"]; linkSum != agg {
		t.Errorf("per-link drops sum to %d, aggregate says %d", linkSum, agg)
	}
	var d ctrace.Dump
	if err := json.Unmarshal(snap.dump, &d); err != nil {
		t.Fatal(err)
	}
	wantDropped := reg.Counters["cluster/fault_drops"] + reg.Counters["cluster/outage_drops"]
	if d.Dropped != wantDropped {
		t.Errorf("trace dump dropped=%d, fabric discarded %d", d.Dropped, wantDropped)
	}
	if d.Dropped == 0 {
		t.Error("no dropped spans recorded under the fault mix")
	}
}

// TestAttachWireFaultsValidation: double attachment and a config with no
// wire class enabled must both be refused.
func TestAttachWireFaultsValidation(t *testing.T) {
	c := newCluster(t, 50)
	if _, err := c.AttachWireFaults(fault.Config{Seed: 1, BusNack: 64}); err == nil {
		t.Error("machine-only fault config accepted as wire faults")
	}
	if _, err := c.AttachWireFaults(wireFaultMix()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AttachWireFaults(wireFaultMix()); err == nil {
		t.Error("second wire fault attachment accepted")
	}
	if c.WireFaults() == nil {
		t.Error("WireFaults lost the attached injector")
	}
}
