module csbsim

go 1.22
