package cpu

import (
	"strings"
	"testing"
	"testing/quick"

	"csbsim/internal/asm"
	"csbsim/internal/bus"
	"csbsim/internal/cache"
	"csbsim/internal/core"
	"csbsim/internal/isa"
	"csbsim/internal/mem"
	"csbsim/internal/uncbuf"
)

// rig is a minimal machine around the CPU for white-box tests (the full
// machine lives in internal/sim; duplicating the wiring here avoids an
// import cycle and keeps these tests close to the pipeline internals).
type rig struct {
	c     *CPU
	h     *cache.Hierarchy
	u     *uncbuf.Buffer
	s     *core.CSB
	ram   *mem.Memory
	b     *bus.Bus
	pt    *mem.PageTable
	ratio int
	cycle uint64
}

func newRig(t *testing.T) *rig {
	t.Helper()
	ram := mem.NewMemory()
	rt := mem.NewRouter(ram)
	b, err := bus.New(bus.DefaultConfig(), rt)
	if err != nil {
		t.Fatal(err)
	}
	h, err := cache.NewHierarchy(cache.DefaultHierConfig())
	if err != nil {
		t.Fatal(err)
	}
	u, err := uncbuf.New(uncbuf.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(DefaultConfig(), h, u, s, ram)
	if err != nil {
		t.Fatal(err)
	}
	pt := mem.NewPageTable()
	c.SetPageTable(pt)
	return &rig{c: c, h: h, u: u, s: s, ram: ram, b: b, pt: pt, ratio: 6}
}

func (r *rig) load(t *testing.T, src string) *asm.Program {
	t.Helper()
	p, err := asm.Assemble("cpu_test.s", src)
	if err != nil {
		t.Fatal(err)
	}
	base, data, err := p.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	r.ram.Write(base, data)
	r.pt.MapRange(base, base, uint64(len(data))+1<<20, mem.KindCached, true)
	r.c.Reset(p.Entry)
	return p
}

func (r *rig) tick() {
	r.u.TickCPU()
	r.c.Tick()
	r.h.TickCPU()
	r.cycle++
	if r.cycle%uint64(r.ratio) == 0 {
		r.b.Tick()
		r.s.TickBus(r.b)
		r.u.TickBus(r.b)
		r.h.TickBus(r.b)
	}
}

func (r *rig) run(t *testing.T, max int) {
	t.Helper()
	for i := 0; i < max; i++ {
		if r.c.Halted() {
			if err := r.c.Err(); err != nil {
				t.Fatal(err)
			}
			return
		}
		r.tick()
	}
	t.Fatalf("cycle limit %d reached at pc %#x", max, r.c.State().PC)
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.FetchWidth = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero fetch width accepted")
	}
	bad2 := DefaultConfig()
	bad2.PredictorSize = 1000 // not a power of two
	if err := bad2.Validate(); err == nil {
		t.Error("non-power-of-two predictor accepted")
	}
}

func TestPredictorSaturatingCounters(t *testing.T) {
	p := newPredictor(16)
	pc := uint64(0x1000)
	if p.predict(pc) {
		t.Fatal("fresh predictor should predict not-taken (weakly)")
	}
	p.update(pc, true)
	if !p.predict(pc) {
		t.Fatal("one taken should flip a weakly-not-taken counter")
	}
	p.update(pc, true)
	p.update(pc, true) // saturate
	p.update(pc, false)
	if !p.predict(pc) {
		t.Fatal("single not-taken should not flip a saturated counter")
	}
	p.update(pc, false)
	p.update(pc, false)
	if p.predict(pc) {
		t.Fatal("repeated not-taken should flip the counter")
	}
}

func TestPredictorIndexesDistinctPCs(t *testing.T) {
	p := newPredictor(1024)
	p.update(0x1000, true)
	p.update(0x1000, true)
	if p.predict(0x1004) {
		t.Error("adjacent PC shares a counter it should not")
	}
}

func TestStatsIPC(t *testing.T) {
	s := Stats{Cycles: 100, Retired: 250}
	if got := s.IPC(); got != 2.5 {
		t.Errorf("IPC = %v", got)
	}
	if (Stats{}).IPC() != 0 {
		t.Error("zero-cycle IPC should be 0")
	}
}

func TestNeedsRetireExec(t *testing.T) {
	cases := []struct {
		u    uop
		want bool
	}{
		{uop{inst: isa.Inst{Op: isa.OpMEMBAR}}, true},
		{uop{inst: isa.Inst{Op: isa.OpSWAP}}, true},
		{uop{inst: isa.Inst{Op: isa.OpHALT}}, true},
		{uop{inst: isa.Inst{Op: isa.OpRDPR}}, true},
		{uop{inst: isa.Inst{Op: isa.OpADD}}, false},
		{uop{inst: isa.Inst{Op: isa.OpLDX}, isMem: true, kind: mem.KindCached}, false},
		{uop{inst: isa.Inst{Op: isa.OpLDX}, isMem: true, kind: mem.KindUncached}, true},
		{uop{inst: isa.Inst{Op: isa.OpSTX}, isMem: true, kind: mem.KindCombining}, true},
	}
	for _, c := range cases {
		if got := c.u.needsRetireExec(); got != c.want {
			t.Errorf("needsRetireExec(%s, %v) = %v, want %v",
				c.u.inst.Op.Name(), c.u.kind, got, c.want)
		}
	}
}

func TestLeBytesRoundTrip(t *testing.T) {
	var c CPU
	f := func(v uint64) bool {
		return leUint(c.leBytes(v, 8)) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if leUint(c.leBytes(0x1234, 2)) != 0x1234 {
		t.Error("2-byte round trip failed")
	}
}

// The paper's central ordering invariant: uncached stores are issued only
// at/after retirement, never speculatively. A wrong-path uncached store
// must never reach the uncached buffer or the bus.
func TestWrongPathUncachedStoreNeverIssues(t *testing.T) {
	r := newRig(t)
	r.pt.MapRange(0x4000_0000, 0x4000_0000, mem.PageSize, mem.KindUncached, true)
	r.load(t, `
	set 0x40000000, %o1
	set 0xbad, %g2
	mov 1, %g1
	cmp %g1, 1
	bz skip                 ! taken, but a cold predictor says not-taken
	stx %g2, [%o1]          ! wrong path: must never issue
	stx %g2, [%o1+8]
skip:
	membar
	halt
`)
	r.run(t, 100000)
	st := r.c.Stats()
	if st.Mispredicts == 0 {
		t.Fatal("test premise broken: branch did not mispredict")
	}
	if st.UncachedStores != 0 {
		t.Fatalf("%d wrong-path uncached stores issued", st.UncachedStores)
	}
	if got := r.b.Stats().Writes; got != 0 {
		t.Fatalf("%d bus writes from the wrong path", got)
	}
	if got := r.ram.ReadUint(0x4000_0000, 8); got != 0 {
		t.Fatalf("wrong-path store reached memory: %#x", got)
	}
}

// Wrong-path CSB stores must not disturb the conditional store buffer
// either (they would corrupt the hit counter).
func TestWrongPathCombiningStoreNeverIssues(t *testing.T) {
	r := newRig(t)
	r.pt.MapRange(0x4000_0000, 0x4000_0000, mem.PageSize, mem.KindCombining, true)
	r.load(t, `
	set 0x40000000, %o1
	mov 1, %g1
	cmp %g1, 1
	bz skip
	stx %g2, [%o1]          ! wrong path combining store
skip:
	halt
`)
	r.run(t, 100000)
	if got := r.s.Stats().Stores; got != 0 {
		t.Fatalf("CSB saw %d wrong-path stores", got)
	}
	if r.s.HitCount() != 0 {
		t.Fatal("CSB hit counter disturbed by wrong path")
	}
}

// Interrupt vectoring through IVEC and return via IRET, entirely in
// simulated code (the Go kernel uses the hook path instead; this tests the
// architectural path).
func TestSoftwareInterruptHandler(t *testing.T) {
	r := newRig(t)
	r.load(t, `
	set handler, %g1
	wrpr %g1, %ivec
	mov 1, %g1
	wrpr %g1, %status       ! enable interrupts
	clr %g2                 ! interrupt counter
	clr %g3
loop:
	add %g3, 1, %g3
	cmp %g3, 2000
	bl loop
	halt

handler:
	add %g2, 1, %g2         ! count the interrupt
	iret
`)
	fired := false
	for i := 0; i < 100000 && !r.c.Halted(); i++ {
		if i == 3000 && !fired {
			r.c.Interrupt(uint64(isa.CauseTimer))
			fired = true
		}
		r.tick()
	}
	if !r.c.Halted() {
		t.Fatal("program did not halt")
	}
	if err := r.c.Err(); err != nil {
		t.Fatal(err)
	}
	st := r.c.State()
	if st.R[2] != 1 {
		t.Errorf("handler ran %d times, want 1", st.R[2])
	}
	if st.R[3] != 2000 {
		t.Errorf("main loop result %d, want 2000 (correct resumption)", st.R[3])
	}
	if r.c.Stats().Interrupts != 1 {
		t.Errorf("interrupts = %d", r.c.Stats().Interrupts)
	}
}

func TestInterruptIgnoredWhenDisabled(t *testing.T) {
	r := newRig(t)
	r.load(t, `
	clr %g3
loop:
	add %g3, 1, %g3
	cmp %g3, 500
	bl loop
	halt
`)
	r.c.Interrupt(uint64(isa.CauseTimer)) // status bit 0 is clear
	r.run(t, 100000)
	if r.c.Stats().Interrupts != 0 {
		t.Error("interrupt taken while disabled")
	}
	if r.c.State().R[3] != 500 {
		t.Error("program corrupted")
	}
}

func TestTrapVectorsWhenNoHook(t *testing.T) {
	r := newRig(t)
	r.c.TrapHook = nil
	r.load(t, `
	set handler, %g1
	wrpr %g1, %ivec
	trap 5
	mov 99, %g4             ! skipped: trap vectors away
	halt
handler:
	rdpr %cause, %g2
	mov 1, %g3
	halt
`)
	r.run(t, 100000)
	st := r.c.State()
	if st.R[3] != 1 {
		t.Fatal("handler did not run")
	}
	wantCause := uint64(isa.CauseSoftware) | 5<<8
	if st.R[2] != wantCause {
		t.Errorf("cause = %#x, want %#x", st.R[2], wantCause)
	}
}

func TestTrapHaltsWithoutVector(t *testing.T) {
	r := newRig(t)
	r.c.TrapHook = nil
	r.load(t, "trap 9\nhalt\n")
	for i := 0; i < 100000 && !r.c.Halted(); i++ {
		r.tick()
	}
	if err := r.c.Err(); err == nil || !strings.Contains(err.Error(), "trap") {
		t.Errorf("err = %v", err)
	}
}

func TestRestoreStateClearsHalt(t *testing.T) {
	r := newRig(t)
	r.load(t, "mov 7, %g1\nhalt\n")
	r.run(t, 10000)
	if !r.c.Halted() {
		t.Fatal("not halted")
	}
	st := r.c.SaveState()
	st.PC = 0 // irrelevant; just verify halt clears
	r.c.RestoreState(st)
	if r.c.Halted() {
		t.Error("RestoreState did not clear halt")
	}
}

func TestPipelineDrainsAtHalt(t *testing.T) {
	r := newRig(t)
	r.load(t, `
	mov 3, %g1
	mov 4, %g2
	add %g1, %g2, %g3
	halt
`)
	r.run(t, 10000)
	if r.c.branchCount != 0 || r.c.memCount != 0 {
		t.Errorf("leaked counters: branches %d mem %d", r.c.branchCount, r.c.memCount)
	}
	if r.c.State().R[3] != 7 {
		t.Error("result wrong")
	}
}

// Back-to-back conditional flushes on a single-entry CSB stall the second
// sequence until the first line is handed to the system interface.
func TestCSBSingleEntryBackToBackStalls(t *testing.T) {
	r := newRig(t)
	r.pt.MapRange(0x4000_0000, 0x4000_0000, mem.PageSize, mem.KindCombining, true)
	r.load(t, `
	set 0x40000000, %o1
	mov 7, %g1
	! line 1
	mov 1, %l4
	stx %g1, [%o1]
	swap [%o1], %l4
	! line 2, immediately after
	mov 1, %l4
	stx %g1, [%o1+64]
	swap [%o1+64], %l4
	membar
	halt
`)
	r.run(t, 100000)
	s := r.s.Stats()
	if s.FlushOK != 2 {
		t.Fatalf("flushes = %d, want 2", s.FlushOK)
	}
	if s.StallBusy == 0 {
		t.Error("expected stalls between back-to-back sequences (single entry)")
	}
}

func TestRDPRCycleCounterAdvances(t *testing.T) {
	r := newRig(t)
	r.load(t, `
	rdpr %cycle, %g1
	mov 100, %g3
spin:	subcc %g3, 1, %g3
	bnz spin
	rdpr %cycle, %g2
	halt
`)
	r.run(t, 100000)
	st := r.c.State()
	if st.R[2] <= st.R[1] {
		t.Errorf("cycle counter did not advance: %d -> %d", st.R[1], st.R[2])
	}
}

func TestPIDChangeHookFires(t *testing.T) {
	r := newRig(t)
	var got []uint8
	r.c.PIDChanged = func(pid uint8) { got = append(got, pid) }
	r.load(t, `
	mov 5, %g1
	wrpr %g1, %pid
	mov 9, %g1
	wrpr %g1, %pid
	halt
`)
	r.run(t, 10000)
	if len(got) != 2 || got[0] != 5 || got[1] != 9 {
		t.Errorf("PID hook calls = %v", got)
	}
	if r.c.State().PID() != 9 {
		t.Errorf("PID = %d", r.c.State().PID())
	}
}

func TestFaultedStoreHalts(t *testing.T) {
	r := newRig(t)
	r.load(t, `
	set 0x70000000, %o1     ! unmapped
	stx %g1, [%o1]
	halt
`)
	for i := 0; i < 100000 && !r.c.Halted(); i++ {
		r.tick()
	}
	if err := r.c.Err(); err == nil || !strings.Contains(err.Error(), "fault") {
		t.Errorf("err = %v", err)
	}
}

func TestReadOnlyPageFaultsOnStore(t *testing.T) {
	r := newRig(t)
	r.pt.MapRange(0x5000_0000, 0x5000_0000, mem.PageSize, mem.KindCached, false)
	r.load(t, `
	set 0x50000000, %o1
	ldx [%o1], %g1          ! reads are fine
	stx %g1, [%o1]          ! write to read-only page
	halt
`)
	for i := 0; i < 100000 && !r.c.Halted(); i++ {
		r.tick()
	}
	if err := r.c.Err(); err == nil {
		t.Error("store to read-only page did not fault")
	}
}

func TestMembarWaitsForWriteBuffer(t *testing.T) {
	r := newRig(t)
	r.load(t, `
	set 0x20000, %o1
	mov 1, %g1
	stx %g1, [%o1]
	membar
	halt
`)
	r.run(t, 100000)
	if !r.h.StoreBufferEmpty() {
		t.Error("membar retired with a non-empty write buffer")
	}
	if r.c.Stats().Membars != 1 {
		t.Error("membar not counted")
	}
}

func TestFourWideRetire(t *testing.T) {
	// 16 independent adds + halt should retire in well under 16 cycles
	// of retire time once the pipeline is warm (4-wide retire).
	r := newRig(t)
	var src strings.Builder
	for i := 1; i <= 4; i++ {
		for j := 0; j < 4; j++ {
			src.WriteString("\tadd %g1, 1, %g" + string(rune('1'+i)) + "\n")
		}
	}
	src.WriteString("\thalt\n")
	p := r.load(t, src.String())
	base, data, _ := p.Bytes()
	for a := base &^ 63; a < base+uint64(len(data)); a += 64 {
		r.h.Warm(a, true)
	}
	r.run(t, 1000)
	if got := r.c.Stats().Retired; got != 17 {
		t.Errorf("retired = %d, want 17", got)
	}
	// 17 instructions, 4-wide: lower bound ~5 retire cycles + pipeline
	// fill. Anything under 20 cycles shows real superscalar retirement.
	if r.c.Stats().Cycles > 25 {
		t.Errorf("took %d cycles for 17 independent instructions", r.c.Stats().Cycles)
	}
}

// Swap to plain uncached space is a blocking bus read followed by a bus
// write, both strongly ordered — the device sees exactly one read and one
// write.
func TestUncachedSwapRMW(t *testing.T) {
	r := newRig(t)
	r.pt.MapRange(0x4000_0000, 0x4000_0000, mem.PageSize, mem.KindUncached, true)
	r.ram.WriteUint(0x4000_0000, 8, 77) // device/memory old value
	p := r.load(t, `
	set 0x40000000, %o1
	mov 88, %l4
	swap [%o1], %l4
	membar
	halt
`)
	// Warm the code so I-cache fills don't pollute the bus counters.
	base, data, _ := p.Bytes()
	for a := base &^ 63; a < base+uint64(len(data)); a += 64 {
		r.h.Warm(a, true)
	}
	r.run(t, 1_000_000)
	if got := r.c.State().R[20]; got != 77 {
		t.Errorf("swap returned %d, want old value 77", got)
	}
	if got := r.ram.ReadUint(0x4000_0000, 8); got != 88 {
		t.Errorf("memory = %d, want 88", got)
	}
	s := r.b.Stats()
	if s.Reads != 1 || s.Writes != 1 {
		t.Errorf("bus reads/writes = %d/%d, want 1/1", s.Reads, s.Writes)
	}
	if r.c.Stats().Swaps != 1 {
		t.Errorf("swaps = %d", r.c.Stats().Swaps)
	}
}

func TestFlushPipelineRestartsAtCommittedPC(t *testing.T) {
	r := newRig(t)
	r.load(t, `
	mov 5, %g1
loop:	add %g2, 1, %g2
	cmp %g2, 8000
	bl loop
	halt
`)
	// Run a while, then flush mid-flight; execution must resume correctly.
	for i := 0; i < 500; i++ {
		r.tick()
	}
	r.c.FlushPipeline()
	r.run(t, 1_000_000)
	if got := r.c.State().R[2]; got != 8000 {
		t.Errorf("g2 = %d, want 8000 (flush must not lose committed state)", got)
	}
}

// Cached swap at the head of the ROB: the figure-5 lock primitive.
func TestCachedSwapLockPrimitive(t *testing.T) {
	r := newRig(t)
	r.load(t, `
	.org 0x1000
lock:	.dword 0
	.entry main
main:
	set lock, %o2
	mov 1, %l4
	swap [%o2], %l4         ! acquire: old 0 → got it
	mov 2, %l5
	swap [%o2], %l5         ! second swap sees 1
	halt
`)
	r.run(t, 1_000_000)
	st := r.c.State()
	if st.R[20] != 0 {
		t.Errorf("first swap = %d, want 0", st.R[20])
	}
	if st.R[21] != 1 {
		t.Errorf("second swap = %d, want 1", st.R[21])
	}
	if got := r.ram.ReadUint(0x1000, 8); got != 2 {
		t.Errorf("lock value = %d, want 2", got)
	}
	if r.c.Stats().Swaps != 2 {
		t.Errorf("swaps = %d", r.c.Stats().Swaps)
	}
}

// Uncached blocking load at the head of the ROB.
func TestUncachedLoadAtRetire(t *testing.T) {
	r := newRig(t)
	r.pt.MapRange(0x4000_0000, 0x4000_0000, mem.PageSize, mem.KindUncached, true)
	r.ram.WriteUint(0x4000_0020, 8, 0xFEED)
	r.load(t, `
	set 0x40000000, %o1
	ldx [%o1+32], %g1
	add %g1, 1, %g2         ! dependent on the I/O load
	halt
`)
	r.run(t, 1_000_000)
	st := r.c.State()
	if st.R[1] != 0xFEED || st.R[2] != 0xFEEE {
		t.Errorf("load chain: %#x %#x", st.R[1], st.R[2])
	}
	if r.c.Stats().UncachedLoads != 1 {
		t.Errorf("uncached loads = %d", r.c.Stats().UncachedLoads)
	}
}

// All FPU ops and long-latency units through the in-package pipeline.
func TestFPUPipeline(t *testing.T) {
	r := newRig(t)
	r.load(t, `
	.org 0x1000
vals:	.double 6.0, 1.5
	.entry main
main:
	set vals, %o1
	ldd [%o1], %f0          ! 6.0
	ldd [%o1+8], %f2        ! 1.5
	faddd %f0, %f2, %f4     ! 7.5
	fsubd %f0, %f2, %f6     ! 4.5
	fmuld %f0, %f2, %f8     ! 9.0
	fdivd %f0, %f2, %f10    ! 4.0
	fnegd %f10, %f12        ! -4.0
	fdtoi %f8, %g1          ! 9
	mov 100, %g5
	mul %g5, %g5, %g6       ! 10000 (integer multiply unit)
	fcmpd %f4, %f6
	bg bigger
	clr %g7
	halt
bigger:	mov 1, %g7
	halt
`)
	r.run(t, 1_000_000)
	st := r.c.State()
	if st.R[1] != 9 {
		t.Errorf("fdtoi = %d", st.R[1])
	}
	if st.R[6] != 10000 {
		t.Errorf("mul = %d", st.R[6])
	}
	if st.R[7] != 1 {
		t.Error("fcmpd/bg path wrong")
	}
}

// A load must wait for an older store with a not-yet-computed address
// (orderingSafe's unknown-address conservatism), then read the right data.
func TestLoadWaitsForUnknownStoreAddress(t *testing.T) {
	r := newRig(t)
	r.load(t, `
	set 0x20000, %o1
	mov 5, %g1
	mul %g1, 8, %g2         ! slow address computation (multiply)
	add %g2, %o1, %g3
	stx %g1, [%g3]          ! store to 0x20028, address late
	ldx [%o1+40], %g4       ! same location, must see 5
	halt
`)
	r.run(t, 1_000_000)
	if got := r.c.State().R[4]; got != 5 {
		t.Errorf("load got %d, want 5 (ordering violated)", got)
	}
}

func TestJALRThroughPipeline(t *testing.T) {
	r := newRig(t)
	r.load(t, `
	set fn, %g1
	jalr %g1, 0, %o7        ! indirect call stalls fetch until resolved
	mov %o0, %g2
	halt
fn:	mov 33, %o0
	jalr %o7, 0, %g0
`)
	r.run(t, 1_000_000)
	if got := r.c.State().R[2]; got != 33 {
		t.Errorf("indirect call result = %d", got)
	}
}

func TestAccessorsAndStall(t *testing.T) {
	r := newRig(t)
	if r.c.PageTable() != r.pt {
		t.Error("PageTable accessor")
	}
	if r.c.TLB() == nil {
		t.Error("TLB accessor")
	}
	r.load(t, "mov 1, %g1\nhalt\n")
	r.c.Stall(100)
	r.run(t, 10_000)
	if r.c.Cycles() < 100 {
		t.Errorf("stall not charged: %d cycles", r.c.Cycles())
	}
}

// Exactly-once under interrupts: post an interrupt at every possible
// cycle during a CSB sequence and during blocking uncached loads. No
// matter where the interrupt lands, every I/O side effect must happen
// exactly once — in particular, an interrupt must not flush-and-replay a
// conditional flush or an uncached load that is already in flight.
func TestInterruptNeverReplaysInFlightIO(t *testing.T) {
	const handler = `
	set handler, %g1
	wrpr %g1, %ivec
	mov 1, %g1
	wrpr %g1, %status
`
	csbProg := handler + `
	set 0x40000000, %o1
	mov 7, %g6
	movr2f %g6, %f0
RETRY:
	set 8, %l4
	std %f0, [%o1]
	std %f0, [%o1+8]
	std %f0, [%o1+16]
	std %f0, [%o1+24]
	std %f0, [%o1+32]
	std %f0, [%o1+40]
	std %f0, [%o1+48]
	std %f0, [%o1+56]
	swap [%o1], %l4
	cmp %l4, 8
	bnz RETRY
	membar
	halt
handler:
	add %g5, 1, %g5
	iret
`
	for k := 5; k < 140; k += 3 {
		r := newRig(t)
		r.pt.MapRange(0x4000_0000, 0x4000_0000, mem.PageSize, mem.KindCombining, true)
		r.load(t, csbProg)
		posted := false
		for i := 0; i < 1_000_000 && !r.c.Halted(); i++ {
			if i == k && !posted {
				r.c.Interrupt(uint64(isa.CauseTimer))
				posted = true
			}
			r.tick()
		}
		if err := r.c.Err(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		for i := 0; i < 10000 && !r.s.Drained(); i++ {
			r.tick()
		}
		s := r.s.Stats()
		if s.FlushOK+s.FlushFail == 0 {
			t.Fatalf("k=%d: no flush attempted", k)
		}
		if s.Bursts != s.FlushOK {
			t.Fatalf("k=%d: bursts %d != successful flushes %d", k, s.Bursts, s.FlushOK)
		}
		// The net effect must be exactly one committed line: the final
		// successful flush. Retries (from interrupted sequences) fail
		// first, never commit twice.
		if s.FlushOK != 1 {
			t.Fatalf("k=%d: %d successful flushes, want exactly 1 (ok=%d fail=%d stores=%d)",
				k, s.FlushOK, s.FlushOK, s.FlushFail, s.Stores)
		}
	}
}

func TestInterruptNeverReplaysUncachedLoad(t *testing.T) {
	prog := `
	set handler, %g1
	wrpr %g1, %ivec
	mov 1, %g1
	wrpr %g1, %status
	set 0x40000000, %o1
	ldx [%o1], %g2          ! blocking I/O load #1
	ldx [%o1+8], %g3        ! blocking I/O load #2
	halt
handler:
	add %g5, 1, %g5
	iret
`
	for k := 5; k < 200; k += 7 {
		r := newRig(t)
		r.pt.MapRange(0x4000_0000, 0x4000_0000, mem.PageSize, mem.KindUncached, true)
		r.ram.WriteUint(0x4000_0000, 8, 0xAA)
		r.ram.WriteUint(0x4000_0008, 8, 0xBB)
		r.load(t, prog)
		posted := false
		for i := 0; i < 1_000_000 && !r.c.Halted(); i++ {
			if i == k && !posted {
				r.c.Interrupt(uint64(isa.CauseTimer))
				posted = true
			}
			r.tick()
		}
		if err := r.c.Err(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		st := r.c.State()
		if st.R[2] != 0xAA || st.R[3] != 0xBB {
			t.Fatalf("k=%d: loads = %#x %#x", k, st.R[2], st.R[3])
		}
		// Each load must have produced exactly one bus read.
		if got := r.b.Stats().Reads; got > 3 { // 2 I/O loads + possibly 1 icache fill
			t.Fatalf("k=%d: %d bus reads (I/O load replayed?)", k, got)
		}
		if got := r.c.Stats().UncachedLoads; got != 2 {
			t.Fatalf("k=%d: %d uncached loads retired, want 2", k, got)
		}
	}
}
