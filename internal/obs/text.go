package obs

import (
	"fmt"
	"strings"
)

// pipeMaxCols caps the timeline width of the text pipeline diagram; wider
// windows are clipped to their final pipeMaxCols cycles.
const pipeMaxCols = 120

// FormatPipeline renders retired instructions as an ASCII pipeline
// diagram, one row per instruction — the plain-text fallback when a
// Perfetto UI is not at hand. Stage letters mark the cycle each stage
// happened: F fetch, D dispatch, I issue, C complete, R retire; '='
// fills the span between the first and last recorded stage.
//
//	  seq        pc  |0         1         2      |
//	    7  00001008  |F==D=I=C==R                |  stx %o0, [%o1]
//
// Events must be in retire order (as delivered by the retire observers).
func FormatPipeline(events []InstEvent) string {
	if len(events) == 0 {
		return "(no instructions retired)\n"
	}
	lo, hi := events[0].Span()
	for _, e := range events[1:] {
		s, r := e.Span()
		if s < lo {
			lo = s
		}
		if r > hi {
			hi = r
		}
	}
	if hi-lo+1 > pipeMaxCols {
		lo = hi - pipeMaxCols + 1
	}
	width := int(hi - lo + 1)

	var b strings.Builder
	fmt.Fprintf(&b, "pipeline %d..%d (F fetch, D dispatch, I issue, C complete, R retire)\n", lo, hi)
	fmt.Fprintf(&b, "%8s  %8s  |%s|\n", "seq", "pc", ruler(lo, width))
	for _, e := range events {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		start, end := e.Span()
		if end < lo {
			continue // clipped out of the window entirely
		}
		if start < lo {
			start = lo
		}
		for c := start; c <= end; c++ {
			row[c-lo] = '='
		}
		mark := func(cycle uint64, ch byte) {
			if cycle >= lo && cycle <= hi {
				row[cycle-lo] = ch
			}
		}
		mark(e.Fetch, 'F')
		mark(e.Dispatch, 'D')
		mark(e.Issue, 'I')
		mark(e.Complete, 'C')
		mark(e.Retire, 'R')
		fmt.Fprintf(&b, "%8d  %08x  |%s|  %s\n", e.Seq, e.PC, row, e.Disasm)
	}
	return b.String()
}

// ruler renders decade tick marks for the diagram header.
func ruler(lo uint64, width int) string {
	r := make([]byte, width)
	for i := range r {
		cycle := lo + uint64(i)
		switch {
		case cycle%10 == 0:
			r[i] = '0' + byte(cycle/10%10)
		default:
			r[i] = ' '
		}
	}
	return string(r)
}
