// Command clusterspeed measures how fast the cluster simulator runs: the
// wall-clock rate (simulated cluster cycles per second, and aggregate
// node-cycles per second) of a never-halting ring traffic workload at 1,
// 2, 4 and 8 nodes under the goroutine-per-node windowed engine, swept
// across GOMAXPROCS settings, plus the two-node parallel-vs-lockstep
// overhead — the price of the windowed scheduler itself.
//
// The JSON it prints is the repo's cluster-speed baseline; `make
// bench-cluster` refreshes BENCH_cluster.json with it. -gate FILE
// re-reads a recorded report and fails if the two-node parallel engine
// was more than -max-overhead percent slower than lockstep — the CI
// regression gate on scheduler overhead. Methodology is described in
// EXPERIMENTS.md ("Parallel engine scaling").
//
// Usage:
//
//	clusterspeed [-cycles N] [-reps N] [-wire N] [-quick]
//	clusterspeed -gate BENCH_cluster.json [-max-overhead 5]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"csbsim/internal/cluster"
)

// ScaleResult is one (nodes, GOMAXPROCS) rate measurement.
type ScaleResult struct {
	Nodes      int     `json:"nodes"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Cycles     uint64  `json:"simulated_cycles"`
	Seconds    float64 `json:"wall_seconds"`
	KHz        float64 `json:"sim_khz"`      // cluster cycles per wall second / 1000
	NodeKHz    float64 `json:"node_sim_khz"` // nodes × cluster cycles per wall second / 1000
}

// Report is the full clusterspeed output.
type Report struct {
	GoVersion  string        `json:"go_version"`
	NumCPU     int           `json:"num_cpu"`
	Wire       uint64        `json:"wire_latency"`
	Scaling    []ScaleResult `json:"scaling"`
	LockstepS  float64       `json:"lockstep_2node_seconds"`
	ParallelS  float64       `json:"parallel_2node_seconds"`
	// OverheadPct is how much slower the two-node parallel engine ran
	// than the lockstep loop on the same workload (negative = faster).
	OverheadPct float64 `json:"parallel_overhead_pct"`
}

func main() {
	var (
		cycles  = flag.Uint64("cycles", 1_500_000, "simulated cluster cycles per measurement")
		reps    = flag.Int("reps", 3, "repetitions per configuration (best wall time wins)")
		wire    = flag.Uint64("wire", 480, "wire latency in CPU cycles (= the lookahead window)")
		quick   = flag.Bool("quick", false, "smoke mode: few cycles, one rep")
		gate    = flag.String("gate", "", "read a recorded report from FILE and gate on its overhead instead of benchmarking")
		maxOver = flag.Float64("max-overhead", 5, "with -gate: fail if parallel_overhead_pct exceeds this")
	)
	flag.Parse()
	if *gate != "" {
		if err := runGate(*gate, *maxOver); err != nil {
			fatal(err)
		}
		return
	}
	if *quick {
		*cycles = 150_000
		*reps = 1
	}

	rep := Report{GoVersion: runtime.Version(), NumCPU: runtime.NumCPU(), Wire: *wire}

	// GOMAXPROCS sweep: 1, 2, 4, … up to the host's cores.
	var procs []int
	for p := 1; p < runtime.NumCPU(); p *= 2 {
		procs = append(procs, p)
	}
	procs = append(procs, runtime.NumCPU())

	for _, nodes := range []int{1, 2, 4, 8} {
		for _, p := range procs {
			r, err := measure(nodes, p, *wire, *cycles, *reps, true)
			if err != nil {
				fatal(err)
			}
			rep.Scaling = append(rep.Scaling, r)
		}
	}

	// Two-node engine-overhead comparison at full parallelism.
	par, err := measure(2, runtime.NumCPU(), *wire, *cycles, *reps, true)
	if err != nil {
		fatal(err)
	}
	lock, err := measure(2, runtime.NumCPU(), *wire, *cycles, *reps, false)
	if err != nil {
		fatal(err)
	}
	rep.ParallelS, rep.LockstepS = par.Seconds, lock.Seconds
	if lock.Seconds > 0 {
		rep.OverheadPct = 100 * (par.Seconds - lock.Seconds) / lock.Seconds
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
}

// trafficGuest is a never-halting node program: send one word clockwise,
// wait for the NIC to transmit it, drain whatever arrived, repeat. Every
// engine layer (CPU, uncached path, NIC, wire) stays busy for the whole
// measurement window.
const trafficGuest = `
	.equ NICREG, 0x40000000
	.equ PKTBUF, 0x40001000
	set NICREG, %o0
	set PKTBUF, %o1
	set 8, %g4
	sll %g4, 48, %g4
	clr %l0
	set 0x5A, %g6
loop:	stx %g6, [%o1]
	membar
	stx %g4, [%o0]
	inc %l0
sent:	ldx [%o0+0x10], %g1
	srl %g1, 32, %g1
	cmp %g1, %l0
	bl sent
drain:	ldx [%o0+0x28], %g1
	tst %g1
	bz out
	ldx [%o0+0x20], %g2
	ba drain
out:	ba loop
`

// measure runs the ring traffic workload on `nodes` nodes for a fixed
// number of cluster cycles and reports the best wall-clock rate over
// `reps` repetitions. Construction and assembly are excluded; GOMAXPROCS
// is pinned around the run and restored after.
func measure(nodes, gomaxprocs int, wire, cycles uint64, reps int, parallel bool) (ScaleResult, error) {
	res := ScaleResult{Nodes: nodes, GOMAXPROCS: gomaxprocs, Cycles: cycles}
	best := time.Duration(1<<63 - 1)
	for rep := 0; rep < reps; rep++ {
		cfg := cluster.DefaultConfig()
		cfg.Nodes = nodes
		cfg.Topology = cluster.TopoRing
		cfg.WireLatency = wire
		c, err := cluster.New(cfg)
		if err != nil {
			return res, err
		}
		for _, n := range c.Nodes() {
			n.MapIO(false)
			prog, err := n.M.LoadSource("traffic.s", trafficGuest)
			if err != nil {
				return res, err
			}
			n.M.WarmProgram(prog)
		}
		prev := runtime.GOMAXPROCS(gomaxprocs)
		start := time.Now()
		if parallel {
			err = c.RunFor(cycles, true)
		} else {
			err = runLockstepFor(c, cycles)
		}
		elapsed := time.Since(start)
		runtime.GOMAXPROCS(prev)
		if err != nil {
			return res, err
		}
		if elapsed < best {
			best = elapsed
		}
	}
	res.Seconds = best.Seconds()
	if res.Seconds > 0 {
		res.KHz = float64(cycles) / res.Seconds / 1e3
		res.NodeKHz = res.KHz * float64(nodes)
	}
	return res, nil
}

// runLockstepFor drives the classic cycle-by-cycle engine for a fixed
// horizon — the reference cost the windowed engine is gated against.
func runLockstepFor(c *cluster.Cluster, cycles uint64) error {
	for i := uint64(0); i < cycles; i++ {
		c.Tick()
	}
	for _, n := range c.Nodes() {
		if err := n.M.CPU.Err(); err != nil {
			return fmt.Errorf("node %s: %w", n.Name(), err)
		}
	}
	return nil
}

// runGate reads a recorded report and fails if the parallel engine's
// two-node overhead exceeds the budget.
func runGate(path string, maxPct float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if rep.LockstepS == 0 || rep.ParallelS == 0 {
		return fmt.Errorf("%s: no engine comparison to gate (regenerate with clusterspeed)", path)
	}
	fmt.Printf("gate: parallel_overhead_pct = %.1f (budget %.1f)\n", rep.OverheadPct, maxPct)
	if rep.OverheadPct > maxPct {
		return fmt.Errorf("two-node parallel engine %.1f%% slower than lockstep, budget %.1f%%",
			rep.OverheadPct, maxPct)
	}
	var lines []string
	for _, s := range rep.Scaling {
		lines = append(lines, fmt.Sprintf("%d nodes @ GOMAXPROCS=%d: %.0f kcycles/s (%.0f node-kcycles/s)",
			s.Nodes, s.GOMAXPROCS, s.KHz, s.NodeKHz))
	}
	fmt.Println(strings.Join(lines, "\n"))
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "clusterspeed:", err)
	os.Exit(1)
}
