// Package core implements the paper's contribution: the conditional store
// buffer (CSB, §3).
//
// The CSB is a software-controlled, uncached, combining store buffer. It
// holds one cache line of data together with the owning process ID, the
// line-aligned address of the most recent combining store, and a hit
// counter. Stores to uncached-combining address space merge into the
// buffer in any order; a conditional flush (the SPARC swap instruction
// addressed to combining space) atomically commits the accumulated stores
// as a single full-line burst transaction — but only if the process ID,
// line address and the expected store count all match, which is how
// conflicts with competing processes are detected without locks. On any
// mismatch the buffer is cleared and the flush reports failure; software
// recovers by re-issuing the store sequence (an optimistic, non-blocking
// scheme in the spirit of load-linked/store-conditional and transactional
// memory, §3.2).
package core

import (
	"fmt"

	"csbsim/internal/bus"
	"csbsim/internal/obs/counters"
)

// Tracer receives the CSB hops of a combining store's journey (the
// journey tracer implements it). IDs are assigned by CSBStoreAccepted in
// acceptance order; the CSB holds a single store sequence at a time, so
// the IDs of one sequence are contiguous and the later hops pass
// (first, count) ranges. Calls are on the tick hot path and must not
// allocate.
type Tracer interface {
	// CSBStoreAccepted opens a journey for an accepted combining store
	// (combined reports whether it merged into a live sequence rather
	// than starting one) and returns its ID.
	CSBStoreAccepted(addr uint64, size int, combined bool) uint64
	// CSBSequenceAborted marks a buffered sequence lost — a conflicting
	// store reset the buffer, or a conditional flush failed. Software
	// re-runs the sequence (§3.2); the retry's stores are new journeys.
	CSBSequenceAborted(first uint64, count int)
	// CSBFlushCommitted marks a successful conditional flush: the
	// sequence is acknowledged and its line queued for the bus.
	CSBFlushCommitted(first uint64, count int)
	// CSBBusGranted marks the bus accepting the line burst.
	CSBBusGranted(first uint64, count int)
	// CSBLineDone marks the burst's last beat: the line has landed.
	CSBLineDone(first uint64, count int)
}

// jrange tracks one issued line burst's journeys until its transaction
// completes (bursts complete in issue order).
type jrange struct {
	first uint64
	count int
}

// Config parameterizes the conditional store buffer.
type Config struct {
	// LineSize is the data register size in bytes; the CSB always issues
	// bursts of exactly this size (§3.2: "the CSB model in this study
	// always issues a full cache line").
	LineSize int
	// DoubleBuffered adds the second line buffer proposed at the end of
	// §3.2, letting a new store sequence begin while the previous flush
	// is still waiting for the system interface.
	DoubleBuffered bool
	// CheckAddress includes the line address in the conflict check
	// (§3.2: not strictly necessary, but detects conflicts between
	// threads sharing a process ID). Disabled only by ablation X5.
	CheckAddress bool
}

// DefaultConfig returns a single-entry 64-byte CSB with address checking.
func DefaultConfig() Config {
	return Config{LineSize: 64, CheckAddress: true}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.LineSize < 16 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("core: line size %d invalid", c.LineSize)
	}
	return nil
}

// Stats counts CSB activity.
type Stats struct {
	Stores         uint64 // combining stores accepted
	Conflicts      uint64 // stores that found a mismatching PID/line and reset the buffer
	FlushOK        uint64 // successful conditional flushes
	FlushFail      uint64 // failed conditional flushes
	Bursts         uint64 // line bursts handed to the system interface
	StallBusy      uint64 // stores/flushes rejected while a line awaited the bus
	PaddedBytes    uint64 // zero-padding added to partial lines
	BytesCommitted uint64
}

// CSB is the conditional store buffer. Like the hardware it models, it has
// no locks: the simulated machine is single-threaded and the *simulated*
// concurrency (competing processes) is what the PID/counter scheme
// arbitrates.
type CSB struct {
	cfg Config

	valid    bool
	lineAddr uint64
	pid      uint8
	hits     int64
	data     []byte
	mask     []bool

	// Lines accepted by a successful flush but not yet issued on the
	// bus: a ring of two slots with reusable line buffers (capacity 1,
	// or 2 when double-buffered).
	pending   [2]pendingLine
	pendHead  int
	pendCount int

	txnFree     []*bus.Txn // recycled burst transactions
	onBurstDone func(*bus.Txn)

	// Fault-injection hooks (SetFaultHooks), all optional:
	// storePressure refuses a combining store for one attempt (capacity
	// pressure; the retire stage retries), flushDelay stalls the
	// conditional-flush acknowledgement for extra attempts, and dropFlush
	// turns a would-succeed flush into a reported failure (a dropped
	// acknowledgement; software re-runs the store sequence).
	storePressure func() bool
	flushDelay    func() int
	dropFlush     func() bool
	delayLeft     int // remaining injected flush-ack delay, in attempts

	// Journey tracing (AttachTracer), optional. jFirst/jCount follow the
	// live store sequence in the data register; jq matches burst
	// completions back to flushed sequences.
	tracer Tracer
	jFirst uint64
	jCount int
	jq     [4]jrange
	jqHead int
	jqLen  int

	stats Stats
}

type pendingLine struct {
	addr uint64
	data []byte
	// journey range of the flushed sequence this line carries
	jFirst uint64
	jCount int
}

// New creates a conditional store buffer.
func New(cfg Config) (*CSB, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &CSB{
		cfg:  cfg,
		data: make([]byte, cfg.LineSize),
		mask: make([]bool, cfg.LineSize),
	}
	for i := range c.pending {
		c.pending[i].data = make([]byte, cfg.LineSize)
	}
	c.onBurstDone = func(t *bus.Txn) {
		if c.tracer != nil {
			c.burstComplete()
		}
		c.txnFree = append(c.txnFree, t) //csb:pool — Done handler returning t to the free list
	}
	return c, nil
}

// SetFaultHooks installs the fault-injection hooks (any may be nil).
// The hooks only ever force the stall/retry/failure paths that the real
// protocol already has; they can never corrupt buffered data, so
// architectural state stays recoverable by the §3.2 software retry loop.
func (c *CSB) SetFaultHooks(storePressure func() bool, flushDelay func() int, dropFlush func() bool) {
	c.storePressure = storePressure
	c.flushDelay = flushDelay
	c.dropFlush = dropFlush
}

// AttachTracer installs the journey tracer. Attach before running:
// sequences already buffered are not retroactively traced.
func (c *CSB) AttachTracer(t Tracer) { c.tracer = t }

// RegisterCounters registers the CSB's counters with the unified
// registry under prefix (e.g. "csb"), as read closures over the live
// stats — registration never perturbs simulation state.
func (c *CSB) RegisterCounters(prefix string, r *counters.Registry) {
	r.Counter(prefix+"/stores", func() uint64 { return c.stats.Stores })
	r.Counter(prefix+"/conflicts", func() uint64 { return c.stats.Conflicts })
	r.Counter(prefix+"/flush_ok", func() uint64 { return c.stats.FlushOK })
	r.Counter(prefix+"/flush_fail", func() uint64 { return c.stats.FlushFail })
	r.Counter(prefix+"/bursts", func() uint64 { return c.stats.Bursts })
	r.Counter(prefix+"/stall_busy", func() uint64 { return c.stats.StallBusy })
	r.Counter(prefix+"/padded_bytes", func() uint64 { return c.stats.PaddedBytes })
	r.Counter(prefix+"/bytes_committed", func() uint64 { return c.stats.BytesCommitted })
}

// Config returns the CSB configuration.
func (c *CSB) Config() Config { return c.cfg }

// Stats returns a snapshot of the counters.
func (c *CSB) Stats() Stats { return c.stats }

// HitCount exposes the current hit counter (for tests and tracing).
func (c *CSB) HitCount() int64 { return c.hits }

// Occupancy returns the number of valid bytes in the combining data
// register (the metrics sampler's gauge of how full the buffer is).
func (c *CSB) Occupancy() int {
	if !c.valid {
		return 0
	}
	n := 0
	for _, m := range c.mask {
		if m {
			n++
		}
	}
	return n
}

// PendingLines returns the number of flushed lines still waiting for the
// system interface.
func (c *CSB) PendingLines() int { return c.pendCount }

// Busy reports whether the data register is unavailable because a flushed
// line has not yet been handed to the system interface. Combining stores
// and flushes stall while Busy (§3.2: "stores following a flush may stall
// until the entry has been sent to the system interface").
func (c *CSB) Busy() bool {
	capacity := 1
	if c.cfg.DoubleBuffered {
		capacity = 2
	}
	return c.pendCount >= capacity
}

// Drained reports whether no flushed line is still waiting for the bus.
func (c *CSB) Drained() bool { return c.pendCount == 0 }

func (c *CSB) clear() {
	c.valid = false
	c.hits = 0
	for i := range c.data {
		c.data[i] = 0
		c.mask[i] = false
	}
}

// Store offers a combining store to the CSB. It returns false when the
// buffer is busy flushing (the retire stage retries next cycle).
//
// Matching semantics (§3.2): on a PID+line match the data is merged and
// the hit counter incremented; combining stores may arrive in any order
// since only the total count matters. On a mismatch the buffer is cleared,
// the counter reset to 1, and the new data stored — this is also how a
// competing process silently invalidates an interrupted sequence.
func (c *CSB) Store(pid uint8, addr uint64, size int, data []byte) bool {
	if len(data) != size {
		panic(fmt.Sprintf("core: store data %d != size %d", len(data), size))
	}
	if c.Busy() {
		c.stats.StallBusy++
		return false
	}
	if c.storePressure != nil && c.storePressure() {
		c.stats.StallBusy++ // injected capacity pressure: same retry path as Busy
		return false
	}
	line := addr &^ uint64(c.cfg.LineSize-1)
	if int(addr-line)+size > c.cfg.LineSize {
		panic(fmt.Sprintf("core: store at %#x size %d crosses line boundary", addr, size))
	}
	match := c.valid && c.pid == pid && (!c.cfg.CheckAddress || c.lineAddr == line)
	if !match {
		if c.valid {
			c.stats.Conflicts++
			if c.tracer != nil && c.jCount > 0 {
				c.tracer.CSBSequenceAborted(c.jFirst, c.jCount)
			}
		}
		if c.tracer != nil {
			c.jFirst = c.tracer.CSBStoreAccepted(addr, size, false)
			c.jCount = 1
		}
		c.clear()
		c.valid = true
		c.pid = pid
		c.lineAddr = line
		c.hits = 1
	} else {
		if c.tracer != nil {
			id := c.tracer.CSBStoreAccepted(addr, size, true)
			if c.jCount == 0 {
				c.jFirst = id
			}
			c.jCount++
		}
		c.hits++
		// Threads under one PID with address checking off may switch
		// lines mid-sequence; the most recent store's line wins, as in
		// the hardware (the address register tracks the most recent
		// combining store).
		c.lineAddr = line
	}
	off := int(addr - line)
	copy(c.data[off:], data)
	for k := 0; k < size; k++ {
		c.mask[off+k] = true
	}
	c.stats.Stores++
	return true
}

// ConditionalFlush attempts to commit the buffered sequence. expected is
// the hit count communicated by the flush instruction (the swap source
// value); old is the register's prior value, returned unchanged on success
// per §3.1. On success the line (zero-padded) is queued for the system
// interface and the buffer cleared. On failure the buffer is cleared, the
// counter reset to zero, nothing is issued, and 0 is returned.
//
// The second return value reports whether the flush may even be attempted:
// false means the CSB is busy and the instruction must retry (stall), not
// that the flush failed.
func (c *CSB) ConditionalFlush(pid uint8, addr uint64, expected int64, old uint64) (result uint64, ready bool) {
	if c.Busy() {
		c.stats.StallBusy++
		return 0, false
	}
	// Injected acknowledgement delay: the flush instruction stalls at the
	// head of the ROB for extra attempts before the CSB answers.
	if c.delayLeft > 0 {
		c.delayLeft--
		c.stats.StallBusy++
		return 0, false
	}
	if c.flushDelay != nil {
		if d := c.flushDelay(); d > 0 {
			c.delayLeft = d - 1 // this attempt is the first of d stalls
			c.stats.StallBusy++
			return 0, false
		}
	}
	line := addr &^ uint64(c.cfg.LineSize-1)
	ok := c.valid && c.pid == pid && c.hits == expected &&
		(!c.cfg.CheckAddress || c.lineAddr == line)
	if ok && c.dropFlush != nil && c.dropFlush() {
		// Injected dropped acknowledgement: the line is not committed and
		// software sees an ordinary flush failure, so the §3.2 retry loop
		// re-runs the whole store sequence.
		ok = false
	}
	if !ok {
		if c.tracer != nil && c.jCount > 0 {
			c.tracer.CSBSequenceAborted(c.jFirst, c.jCount)
			c.jFirst, c.jCount = 0, 0
		}
		c.clear()
		c.stats.FlushFail++
		return 0, true
	}
	// Unused words were already zeroed when the buffer was cleared at
	// the first combining store, "avoiding subtle security issues".
	for _, m := range c.mask {
		if !m {
			c.stats.PaddedBytes++
		}
	}
	slot := &c.pending[(c.pendHead+c.pendCount)%len(c.pending)]
	slot.addr = c.lineAddr
	copy(slot.data, c.data)
	if c.tracer != nil {
		c.tracer.CSBFlushCommitted(c.jFirst, c.jCount)
		slot.jFirst, slot.jCount = c.jFirst, c.jCount
		c.jFirst, c.jCount = 0, 0
	}
	c.pendCount++
	c.stats.BytesCommitted += uint64(c.cfg.LineSize)
	c.stats.FlushOK++
	c.clear()
	return old, true
}

// TickBus hands at most one pending line to the bus as a single ordered
// burst transaction. The machine calls this once per bus cycle.
//
//csb:hotpath
func (c *CSB) TickBus(b *bus.Bus) {
	if c.pendCount == 0 {
		return
	}
	p := &c.pending[c.pendHead]
	// The transaction carries its own copy of the line: the pending slot
	// may be refilled by a new flush while the burst is still in flight.
	var txn *bus.Txn
	if n := len(c.txnFree); n > 0 {
		txn = c.txnFree[n-1]
		c.txnFree = c.txnFree[:n-1]
		txn.Start, txn.End = 0, 0
	} else {
		txn = &bus.Txn{Write: true, Ordered: true, IO: true, Done: c.onBurstDone} //csb:alloc-ok — cold start: the pool grows until steady state
	}
	txn.Addr, txn.Size = p.addr, len(p.data)
	txn.Data = append(txn.Data[:0], p.data...)
	if b.TryIssue(txn) {
		if c.tracer != nil {
			c.tracer.CSBBusGranted(p.jFirst, p.jCount)
			if c.jqLen < len(c.jq) {
				c.jq[(c.jqHead+c.jqLen)%len(c.jq)] = jrange{first: p.jFirst, count: p.jCount}
				c.jqLen++
			}
		}
		c.pendHead = (c.pendHead + 1) % len(c.pending)
		c.pendCount--
		c.stats.Bursts++
	} else {
		c.txnFree = append(c.txnFree, txn)
	}
}

// burstComplete completes the journeys of the oldest in-flight line
// (bursts complete in issue order on the single-channel bus).
//
//csb:hotpath
func (c *CSB) burstComplete() {
	if c.jqLen == 0 {
		return // line issued before the tracer was attached
	}
	r := &c.jq[c.jqHead]
	c.tracer.CSBLineDone(r.first, r.count)
	c.jqHead = (c.jqHead + 1) % len(c.jq)
	c.jqLen--
}
