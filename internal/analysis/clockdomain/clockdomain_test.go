package clockdomain_test

import (
	"testing"

	"csbsim/internal/analysis/antest"
	"csbsim/internal/analysis/clockdomain"
)

func TestClockDomain(t *testing.T) {
	antest.Run(t, clockdomain.Analyzer, "testdata/clock",
		"csbsim/internal/analysis/clockdomain/fixture")
}
