package rec

import (
	"bytes"
	"strings"
	"testing"

	"csbsim/internal/obs/counters"
)

// testSource builds a registry with two counters and one histogram the
// tests drive by hand.
func testSource() (*counters.Registry, *uint64, *uint64, *counters.Histogram) {
	reg := counters.NewRegistry()
	a, b := new(uint64), new(uint64)
	reg.Counter("alpha", func() uint64 { return *a })
	reg.Counter("beta", func() uint64 { return *b })
	h := reg.Histogram("lat")
	return reg, a, b, h
}

func TestParseSLO(t *testing.T) {
	s, err := ParseSLO("p99(dev/lat) <= 100; dev/alpha == 0\n# comment\nrate(dev/*) > 1.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rules) != 3 {
		t.Fatalf("parsed %d rules, want 3", len(s.Rules))
	}
	if r := s.Rules[0]; r.Agg != "p99" || r.Arg1 != "dev/lat" || r.Op != "<=" || r.Threshold != 100 {
		t.Errorf("rule 0 parsed as %+v", r)
	}
	// A bare series means value(series).
	if r := s.Rules[1]; r.Agg != "value" || r.Arg1 != "dev/alpha" || r.Op != "==" {
		t.Errorf("rule 1 parsed as %+v", r)
	}
	for _, bad := range []string{
		"",                       // empty spec
		"dev/alpha",              // no operator
		"frob(dev/alpha) <= 1",   // unknown aggregation
		"ratio(dev/a) >= 0.5",    // ratio needs two series
		"p99(a, b) <= 1",         // one-series agg given two
		"ratio(a/*, b) >= 0.5",   // glob count mismatch
		"dev/alpha <= fast",      // non-numeric threshold
		"p99(dev/lat <= 100",     // unclosed paren
	} {
		if _, err := ParseSLO(bad); err == nil {
			t.Errorf("ParseSLO(%q) accepted", bad)
		}
	}
}

func TestGlobMatching(t *testing.T) {
	cases := []struct {
		pat, name string
		want      bool
	}{
		{"cluster/loadgen/*/latency", "cluster/loadgen/n3/latency", true},
		{"cluster/loadgen/*/latency", "cluster/loadgen/n3/goodput", false},
		{"*", "anything/at/all", true},
		{"n0/*", "n0/cluster/packets_sent", true},
		{"n0/*", "n10/cluster/packets_sent", false},
		{"exact", "exact", true},
		{"exact", "exactly", false},
		{"*/e2e/*", "a/e2e/b", true},
	}
	for _, c := range cases {
		if got := MatchSeries(c.pat, c.name); got != c.want {
			t.Errorf("MatchSeries(%q, %q) = %v, want %v", c.pat, c.name, got, c.want)
		}
	}
	// Ratio pairing: captures from the first pattern substitute into the
	// second, so per-node numerators find per-node denominators.
	caps, ok := globMatch("loadgen/*/good", "loadgen/n7/good")
	if !ok || len(caps) != 1 || caps[0] != "n7" {
		t.Fatalf("globMatch captures = %v, %v", caps, ok)
	}
	if got := substitute("loadgen/*/issued", caps); got != "loadgen/n7/issued" {
		t.Errorf("substitute = %q", got)
	}
}

func TestRecorderRoundTrip(t *testing.T) {
	reg, a, b, h := testSource()
	// A second source whose registered names already carry its prefix
	// must not be double-prefixed (the cluster registry does this).
	preReg := counters.NewRegistry()
	pv := new(uint64)
	preReg.Counter("pre/gauge", func() uint64 { return *pv })

	r, err := New(Config{Every: 100, Ring: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.AddSource("dev", reg); err != nil {
		t.Fatal(err)
	}
	if err := r.AddSource("pre", preReg); err != nil {
		t.Fatal(err)
	}
	if err := r.AddSource("dev", reg); err == nil {
		t.Error("duplicate source accepted")
	}
	var buf bytes.Buffer
	if err := r.SetWriter(&buf); err != nil {
		t.Fatal(err)
	}
	slo, err := ParseSLO("p99(dev/lat) <= 50; delta(pre/gauge) >= 0; nosuch/series == 0")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.SetSLO(slo); err != nil {
		t.Fatal(err)
	}

	r.Start(0)
	if err := r.AddSource("late", reg); err == nil {
		t.Error("post-seal AddSource accepted")
	}
	wantCtr := []string{"dev/alpha", "dev/beta", "pre/gauge"}
	if got := strings.Join(r.CounterNames(), ","); got != strings.Join(wantCtr, ",") {
		t.Fatalf("counter series = %q", got)
	}
	if got := strings.Join(r.HistNames(), ","); got != "dev/lat" {
		t.Fatalf("hist series = %q", got)
	}

	// Window 1: quiet latencies, counters move forward.
	*a, *b, *pv = 10, 5, 3
	for i := uint64(1); i <= 20; i++ {
		h.Record(i) // bit-lengths 1..5, p99 well under 50
	}
	r.Event(80, "node_down", "n1", "", 1)
	r.Roll(100)
	// Window 2: slow latencies breach the p99 rule; the gauge shrinks
	// (two's-complement delta).
	*a, *pv = 25, 1
	h.Record(4000)
	h.Record(5000)
	r.Roll(200)
	r.Roll(200) // same cycle: must be a no-op
	// Window 3: latencies recover.
	h.Record(2)
	r.Roll(300)
	r.Flush(350) // final partial window + footer
	r.Flush(350) // second flush must not write a second footer
	if r.Err() != nil {
		t.Fatal(r.Err())
	}

	rc, err := Read(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !rc.Clean || rc.Truncated {
		t.Errorf("clean=%v truncated=%v, want clean close", rc.Clean, rc.Truncated)
	}
	if rc.Version != FormatVersion || rc.Every != 100 {
		t.Errorf("version=%d every=%d", rc.Version, rc.Every)
	}
	if len(rc.Windows) != 4 {
		t.Fatalf("read %d windows, want 4 (3 rolls + flush partial)", len(rc.Windows))
	}
	ai := rc.CounterIndex("dev/alpha")
	gi := rc.CounterIndex("pre/gauge")
	hi := rc.HistIndex("dev/lat")
	if ai < 0 || gi < 0 || hi < 0 {
		t.Fatalf("series lookup failed: %d %d %d", ai, gi, hi)
	}
	w0, w1 := &rc.Windows[0], &rc.Windows[1]
	if w0.CtrEnd[ai] != 10 || w0.CtrDelta[ai] != 10 {
		t.Errorf("window 0 dev/alpha = end %d delta %d", w0.CtrEnd[ai], w0.CtrDelta[ai])
	}
	if w1.CtrEnd[ai] != 25 || w1.CtrDelta[ai] != 15 {
		t.Errorf("window 1 dev/alpha = end %d delta %d", w1.CtrEnd[ai], w1.CtrDelta[ai])
	}
	if got := int64(w1.CtrDelta[gi]); got != -2 {
		t.Errorf("shrinking gauge delta = %d, want -2", got)
	}
	if w0.Hist[hi].N != 20 || w0.Hist[hi].P99 > 50 {
		t.Errorf("window 0 hist = %+v", w0.Hist[hi])
	}
	if w1.Hist[hi].N != 2 || w1.Hist[hi].P99 <= 50 {
		t.Errorf("window 1 hist = %+v (want 2 slow samples)", w1.Hist[hi])
	}
	// Window quantiles are per-window: window 2's single fast sample must
	// not be polluted by window 1's slow ones.
	if w2 := &rc.Windows[2]; w2.Hist[hi].N != 1 || w2.Hist[hi].P99 > 3 {
		t.Errorf("window 2 hist = %+v (cumulative leak?)", w2.Hist[hi])
	}

	// Events: the unbound rule surfaces, the hand-logged event lands, and
	// the SLO transitions breach at window 2 and recover at window 3.
	kinds := map[string]int{}
	for _, ev := range rc.Events {
		kinds[ev.Kind]++
	}
	if kinds["slo_unbound"] != 1 || kinds["node_down"] != 1 {
		t.Errorf("event kinds = %v", kinds)
	}
	// Two breaches in window 2 — the slow p99 and the shrinking gauge
	// (delta -2 < 0) — and both recover in window 3.
	if kinds["slo_breach"] != 2 || kinds["slo_recover"] != 2 {
		t.Errorf("SLO transitions = %v, want two breaches + two recoveries", kinds)
	}
	// WindowAt finds the covering window.
	if w, ok := rc.WindowAt(150); !ok || w.Index != 1 {
		t.Errorf("WindowAt(150) = %+v, %v", w, ok)
	}

	// Offline Check replays to the same verdicts the live engine logged.
	res := slo.Check(rc)
	if len(res.Unbound) != 1 || res.Unbound[0] != "nosuch/series == 0" {
		t.Errorf("check unbound = %v", res.Unbound)
	}
	gotLive := 0
	for _, ev := range rc.Events {
		if ev.Kind == "slo_breach" || ev.Kind == "slo_recover" {
			gotLive++
		}
	}
	if len(res.Events) != gotLive {
		t.Errorf("offline check logged %d transitions, live logged %d", len(res.Events), gotLive)
	}
	if len(res.Active) != 0 {
		t.Errorf("active at end = %v, want none (recovered)", res.Active)
	}
}

func TestReadTruncatedTail(t *testing.T) {
	reg, a, _, _ := testSource()
	r, _ := New(Config{Every: 10})
	if err := r.AddSource("dev", reg); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	r.SetWriter(&buf)
	r.Start(0)
	*a = 1
	r.Roll(10)
	*a = 2
	r.Roll(20)
	whole := buf.Len()
	*a = 3
	r.Roll(30)

	// No footer yet: a valid prefix, just not cleanly closed.
	rc, err := Read(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if rc.Clean || rc.Truncated || len(rc.Windows) != 3 {
		t.Errorf("unflushed: clean=%v truncated=%v windows=%d", rc.Clean, rc.Truncated, len(rc.Windows))
	}
	// Chop into the middle of the last frame: the tail is dropped, the
	// prefix survives, Truncated is reported.
	cut := buf.Bytes()[:whole+7]
	rc, err = Read(cut)
	if err != nil {
		t.Fatal(err)
	}
	if !rc.Truncated || len(rc.Windows) != 2 {
		t.Errorf("truncated: truncated=%v windows=%d, want 2", rc.Truncated, len(rc.Windows))
	}
	// Garbage and headerless files are errors, not panics.
	if _, err := Read([]byte("not a recording")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Read(nil); err == nil {
		t.Error("empty file accepted")
	}
}

func TestDiff(t *testing.T) {
	record := func(perturb bool) *Recording {
		reg, a, _, h := testSource()
		r, _ := New(Config{Every: 10})
		if err := r.AddSource("dev", reg); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		r.SetWriter(&buf)
		r.Start(0)
		*a = 100
		h.Record(7)
		r.Roll(10)
		if perturb {
			*a = 205
		} else {
			*a = 200
		}
		r.Roll(20)
		r.Flush(20)
		rc, err := Read(buf.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		return rc
	}
	same1, same2, other := record(false), record(false), record(true)
	if d := Diff(same1, same2, 0); len(d) != 0 {
		t.Errorf("identical recordings diff: %v", d)
	}
	d := Diff(same1, other, 0)
	if len(d) == 0 {
		t.Fatal("perturbed recording diffed empty")
	}
	found := false
	for _, line := range d {
		if strings.Contains(line, "dev/alpha") {
			found = true
		}
	}
	if !found {
		t.Errorf("diff lines name no series: %v", d)
	}
	// 205 vs 200 is 2.5%: a 5% tolerance accepts it.
	if d := Diff(same1, other, 0.05); len(d) != 0 {
		t.Errorf("tolerant diff still reports: %v", d)
	}
}

// TestRollAllocFree pins the satellite requirement: once the scratch
// buffers have grown, a steady-state Roll (no events firing) performs
// zero heap allocations, so per-window rollups never pressure the GC
// mid-run.
func TestRollAllocFree(t *testing.T) {
	reg, a, _, h := testSource()
	r, _ := New(Config{Every: 10, Ring: 8})
	if err := r.AddSource("dev", reg); err != nil {
		t.Fatal(err)
	}
	var sink discardWriter
	r.SetWriter(&sink)
	slo, err := ParseSLO("p99(dev/lat) <= 1000000; delta(dev/alpha) >= 0")
	if err != nil {
		t.Fatal(err)
	}
	r.SetSLO(slo)
	r.Start(0)
	cycle := uint64(0)
	step := func() {
		cycle += 10
		*a += 3
		h.Record(cycle & 1023)
		r.Roll(cycle)
	}
	// Warm up past ring wrap and scratch growth.
	for i := 0; i < 20; i++ {
		step()
	}
	if avg := testing.AllocsPerRun(200, step); avg != 0 {
		t.Errorf("steady-state Roll allocates %.1f times per window, want 0", avg)
	}
}

// discardWriter is io.Discard without the io.ReaderFrom fast path, so
// the recorder's own Write call is what is measured.
type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }
