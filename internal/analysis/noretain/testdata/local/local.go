// Package fixlocal proves pooled-type tracking works for unexported named
// types — the stand-ins for cpu.uop and cpu.renSnap, which fixtures cannot
// name directly. The test registers fixlocal.snap in noretain.PooledTypes.
package fixlocal

type snap struct{ pc uint64 }

type holder struct{ s *snap }

func keep(h *holder, s *snap) {
	h.s = s // want `pooled \*fixlocal\.snap "s" stored`
}

func fine(s *snap) uint64 { return s.pc }
