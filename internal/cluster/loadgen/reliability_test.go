package loadgen

import (
	"encoding/json"
	"testing"

	"csbsim/internal/bench"
	"csbsim/internal/cluster"
	"csbsim/internal/fault"
)

// TestRetryRecoversFromWireDrops is the goodput-under-faults acceptance
// shape: with every wire fault class firing at the calibrated campaign
// rates and retries enabled, no request may be lost and goodput must
// stay within 10% of completions.
func TestRetryRecoversFromWireDrops(t *testing.T) {
	c, g := serveCluster(t, bench.SendPIO, Config{
		MeanGap:     1200,
		Seed:        11,
		Words:       8,
		IssueUntil:  250_000,
		Timeout:     3000,
		MaxRetries:  4,
		BackoffBase: 400,
	})
	if _, err := c.AttachWireFaults(fault.Config{
		Seed: 5, WireDrop: 16, WireDup: 8,
		WireDelay: 16, WireDelayMax: 200,
		LinkOutage: 2, LinkOutageMax: 800,
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.RunFor(400_000, true); err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.Issued < 150 {
		t.Fatalf("issued only %d requests: %+v", st.Issued, st)
	}
	if st.Lost != 0 {
		t.Errorf("lost %d requests despite retry budget: %+v", st.Lost, st)
	}
	if st.Completed != st.Issued {
		t.Errorf("outstanding requests after the drain tail: %+v", st)
	}
	if st.Timeouts == 0 || st.Retries == 0 {
		t.Errorf("fault mix never exercised the retry path: %+v", st)
	}
	if st.Goodput > st.Completed || st.Goodput < st.Completed*9/10 {
		t.Errorf("goodput %d of %d completions outside the envelope: %+v",
			st.Goodput, st.Completed, st)
	}
	if got := g.Latency().Count(); got != st.Completed {
		t.Errorf("histogram count %d, completed %d", got, st.Completed)
	}
	snap := c.Registry().Snapshot()
	if got := snap.Counters["loadgen/a/outstanding"]; got != 0 {
		t.Errorf("outstanding gauge = %d after drain", got)
	}
	if got := snap.Counters["loadgen/a/retries"]; got != st.Retries {
		t.Errorf("registry retries = %d, stats say %d", got, st.Retries)
	}
	// Retried completions land in the dedicated retry-latency histogram.
	rh := snap.Histograms["loadgen/a/retry_latency"]
	if rh.Count == 0 {
		t.Error("retry latency histogram empty despite retries completing")
	}
	if fs := c.WireFaults().Stats(); fs.WireDrops == 0 {
		t.Errorf("injector dropped nothing: %+v", fs)
	}
}

// TestTimeoutWithoutRetriesExactAccounting: with retries disabled the
// first timeout is terminal, and the books must balance exactly:
// issued == completed + lost, timeouts == lost, outstanding == 0.
func TestTimeoutWithoutRetriesExactAccounting(t *testing.T) {
	c, g := serveCluster(t, bench.SendPIO, Config{
		MeanGap:    1200,
		Seed:       23,
		Words:      8,
		IssueUntil: 150_000,
		Timeout:    2500,
	})
	if _, err := c.AttachWireFaults(fault.Config{Seed: 7, WireDrop: 48}); err != nil {
		t.Fatal(err)
	}
	if err := c.RunFor(250_000, true); err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.Lost == 0 {
		t.Fatalf("4.7%%/packet drop rate lost nothing over %d requests: %+v", st.Issued, st)
	}
	if st.Timeouts != st.Lost {
		t.Errorf("timeouts %d != lost %d with no retry budget: %+v", st.Timeouts, st.Lost, st)
	}
	if st.Issued != st.Completed+st.Lost {
		t.Errorf("accounting broken: issued %d != completed %d + lost %d",
			st.Issued, st.Completed, st.Lost)
	}
	if st.Retries != 0 {
		t.Errorf("retries fired with MaxRetries 0: %+v", st)
	}
	if st.Goodput != st.Completed {
		t.Errorf("undelayed completions should all be goodput: %+v", st)
	}
	if got := g.Latency().Count(); got != st.Completed {
		t.Errorf("histogram count %d, completed %d", got, st.Completed)
	}
	if got := c.Registry().Snapshot().Counters["loadgen/a/outstanding"]; got != 0 {
		t.Errorf("outstanding gauge = %d after drain", got)
	}
}

// TestDuplicateRepliesSuppressed: with the wire duplicating a quarter of
// all packets, every surplus reply must be absorbed by the generation
// check — each request completes exactly once and no duplicate corrupts
// the latency histogram.
func TestDuplicateRepliesSuppressed(t *testing.T) {
	c, g := serveCluster(t, bench.SendPIO, Config{
		MeanGap:    1500,
		Seed:       9,
		Words:      8,
		IssueUntil: 120_000,
	})
	if _, err := c.AttachWireFaults(fault.Config{Seed: 3, WireDup: 256}); err != nil {
		t.Fatal(err)
	}
	if err := c.RunFor(250_000, true); err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.DuplicateReplies == 0 {
		t.Fatalf("25%% duplication produced no duplicate replies: %+v", st)
	}
	if st.Completed != st.Issued || st.Lost != 0 || st.Stray != 0 {
		t.Errorf("duplicates broke completion accounting: %+v", st)
	}
	if got := g.Latency().Count(); got != st.Completed {
		t.Errorf("histogram count %d, completed %d — a duplicate double-completed", got, st.Completed)
	}
}

// TestLateReplySlotReuse: a reply that arrives after its tracking slot
// was recycled for a newer request must not complete the new occupant or
// corrupt its latency sample. The pending ring is shrunk to 4 slots and
// the wire stretched to 2000 cycles so every early request is overwritten
// before its reply lands.
func TestLateReplySlotReuse(t *testing.T) {
	ccfg := cluster.DefaultConfig()
	ccfg.WireLatency = 2000
	c, err := cluster.NewPair(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Node(0).M.LoadSource("client.s", "halt\n"); err != nil {
		t.Fatal(err)
	}
	src, err := ServerProgram(bench.SendPIO, 8)
	if err != nil {
		t.Fatal(err)
	}
	ServerMapIO(c.Node(1), bench.SendPIO)
	if _, err := c.Node(1).M.LoadSource("server.s", src); err != nil {
		t.Fatal(err)
	}
	g := New(Config{MeanGap: 300, Seed: 4, Words: 8, Servers: []int{1}, IssueUntil: 3000})
	g.pendCap = 4
	if err := g.Attach(c, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.RunFor(60_000, true); err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.Issued < 8 {
		t.Fatalf("issued only %d requests: %+v", st.Issued, st)
	}
	if st.Lost == 0 {
		t.Fatalf("no slot was recycled — the test exercises nothing: %+v", st)
	}
	if st.Completed+st.Lost != st.Issued {
		t.Errorf("accounting broken: %+v", st)
	}
	// Every overwritten request's reply eventually arrives and must be
	// rejected as stray (its ID no longer matches the slot).
	if st.Stray != st.Lost {
		t.Errorf("stray %d != lost %d — a late reply was mis-delivered: %+v",
			st.Stray, st.Lost, st)
	}
	if got := g.Latency().Count(); got != st.Completed {
		t.Errorf("histogram count %d, completed %d", got, st.Completed)
	}
	// A corrupted sample would credit a late reply to a fresh request,
	// recording an impossibly short round trip (< one wire crossing pair).
	if min := g.Latency().Summary().Min; min < 2*ccfg.WireLatency {
		t.Errorf("latency sample %d below the 2×%d wire floor — late reply corrupted a sample",
			min, ccfg.WireLatency)
	}
}

// TestReliabilityDeterministic: identical faulted retry runs on the
// parallel engine produce identical stats and registry snapshots — the
// determinism guard extended over timeouts, backoff jitter and retries.
func TestReliabilityDeterministic(t *testing.T) {
	run := func() (Stats, []byte) {
		c, g := serveCluster(t, bench.SendPIO, Config{
			MeanGap:    1500,
			Seed:       31,
			Words:      8,
			IssueUntil: 100_000,
			Timeout:    2500,
			MaxRetries: 3,
		})
		if _, err := c.AttachWireFaults(fault.Config{
			Seed: 13, WireDrop: 32, WireDup: 16,
			WireDelay: 32, WireDelayMax: 150,
			LinkOutage: 4, LinkOutageMax: 500,
		}); err != nil {
			t.Fatal(err)
		}
		if err := c.RunFor(200_000, true); err != nil {
			t.Fatal(err)
		}
		snap, err := json.Marshal(c.Registry().Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return g.Stats(), snap
	}
	s1, r1 := run()
	s2, r2 := run()
	if s1 != s2 {
		t.Errorf("stats differ across identical runs: %+v vs %+v", s1, s2)
	}
	if string(r1) != string(r2) {
		t.Errorf("registry snapshots differ across identical runs")
	}
}

// TestReliabilityValidation: retry knobs are validated at Attach.
func TestReliabilityValidation(t *testing.T) {
	ccfg := cluster.DefaultConfig()
	c, err := cluster.NewPair(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := New(Config{Servers: []int{1}, MaxRetries: 3}).Attach(c, 0); err == nil {
		t.Error("MaxRetries without Timeout accepted")
	}
	if err := New(Config{Servers: []int{1}, Timeout: 100, MaxRetries: 500}).Attach(c, 0); err == nil {
		t.Error("absurd MaxRetries accepted")
	}
	if err := New(Config{Servers: []int{1}, Timeout: 100, MaxRetries: 3}).Attach(c, 0); err != nil {
		t.Errorf("valid retry config rejected: %v", err)
	}
}

// TestWatchdogDegradeFailover: a wedged server is marked down by the
// degrading cluster watchdog; clients with retry budget fail over to the
// healthy server and finish with zero lost requests, while traffic at
// the corpse is counted as degraded drops.
func TestWatchdogDegradeFailover(t *testing.T) {
	ccfg := cluster.DefaultConfig()
	ccfg.Nodes = 4
	ccfg.WireLatency = 80
	c, err := cluster.New(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	src, err := ServerProgram(bench.SendPIO, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		ServerMapIO(c.Node(i), bench.SendPIO)
		if _, err := c.Node(i).M.LoadSource("server.s", src); err != nil {
			t.Fatal(err)
		}
	}
	// Server n1 never completes a fetch: wedged from cycle 0.
	if _, err := c.Node(1).M.AttachFaults(fault.Config{Seed: 2, BusNack: 1024}); err != nil {
		t.Fatal(err)
	}
	gens := make([]*Generator, 2)
	for i := 2; i < 4; i++ {
		if _, err := c.Node(i).M.LoadSource("client.s", "halt\n"); err != nil {
			t.Fatal(err)
		}
		g := New(Config{
			MeanGap:     2500,
			Seed:        uint64(i),
			Words:       8,
			Servers:     []int{0, 1},
			IssueUntil:  200_000,
			Timeout:     6000,
			MaxRetries:  5,
			BackoffBase: 500,
		})
		if err := g.Attach(c, i); err != nil {
			t.Fatal(err)
		}
		gens[i-2] = g
	}
	if err := c.SetWatchdog(8000, true); err != nil {
		t.Fatal(err)
	}
	if err := c.RunFor(320_000, true); err != nil {
		t.Fatal(err)
	}
	if down := c.DownNodes(); len(down) != 1 || down[0] != "n1" {
		t.Fatalf("DownNodes = %v, want [n1]", down)
	}
	for i, g := range gens {
		st := g.Stats()
		if st.Lost != 0 || st.Completed != st.Issued {
			t.Errorf("client %d did not recover every request: %+v", i+2, st)
		}
		if st.Retries == 0 || st.Timeouts == 0 {
			t.Errorf("client %d never failed over: %+v", i+2, st)
		}
	}
	snap := c.Registry().Snapshot()
	if got := snap.Counters["cluster/nodes_down"]; got != 1 {
		t.Errorf("cluster/nodes_down = %d, want 1", got)
	}
	if got := snap.Counters["cluster/degraded_drops"]; got == 0 {
		t.Error("no degraded drops despite traffic at the down server")
	}
}
