package asm

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokReg    // %-prefixed name: register or privileged register
	tokNumber // integer literal
	tokFloat  // floating literal (only after .double)
	tokString // quoted string
	tokPunct  // one of , [ ] + - : ( )
)

type token struct {
	kind tokKind
	text string
	num  int64
	fnum float64
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of line"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// tokenize splits one source line (comments already stripped) into tokens.
func tokenize(line string) ([]token, error) {
	var toks []token
	i := 0
	n := len(line)
	for i < n {
		c := line[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case strings.ContainsRune(",[]+:()", rune(c)):
			toks = append(toks, token{kind: tokPunct, text: string(c)})
			i++
		case c == '-':
			toks = append(toks, token{kind: tokPunct, text: "-"})
			i++
		case c == '%':
			j := i + 1
			for j < n && (isIdentChar(line[j]) || unicode.IsDigit(rune(line[j]))) {
				j++
			}
			if j == i+1 {
				return nil, fmt.Errorf("stray %% at column %d", i+1)
			}
			toks = append(toks, token{kind: tokReg, text: line[i:j]})
			i = j
		case c == '"':
			j := i + 1
			var sb strings.Builder
			for j < n && line[j] != '"' {
				if line[j] == '\\' && j+1 < n {
					j++
					switch line[j] {
					case 'n':
						sb.WriteByte('\n')
					case 't':
						sb.WriteByte('\t')
					case '0':
						sb.WriteByte(0)
					default:
						sb.WriteByte(line[j])
					}
				} else {
					sb.WriteByte(line[j])
				}
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("unterminated string")
			}
			toks = append(toks, token{kind: tokString, text: sb.String()})
			i = j + 1
		case c == '\'':
			if i+2 < n && line[i+2] == '\'' {
				toks = append(toks, token{kind: tokNumber, num: int64(line[i+1]), text: line[i : i+3]})
				i += 3
			} else {
				return nil, fmt.Errorf("bad character literal at column %d", i+1)
			}
		case unicode.IsDigit(rune(c)):
			j := i
			isFloat := false
			for j < n && (isNumChar(line[j]) || line[j] == '.') {
				if line[j] == '.' {
					// Only a float if followed by a digit (avoid eating
					// a following directive or label dot).
					if j+1 < n && unicode.IsDigit(rune(line[j+1])) {
						isFloat = true
					} else {
						break
					}
				}
				j++
			}
			text := line[i:j]
			if isFloat {
				f, err := strconv.ParseFloat(text, 64)
				if err != nil {
					return nil, fmt.Errorf("bad float %q", text)
				}
				toks = append(toks, token{kind: tokFloat, text: text, fnum: f})
			} else {
				v, err := parseInt(text)
				if err != nil {
					return nil, fmt.Errorf("bad number %q", text)
				}
				toks = append(toks, token{kind: tokNumber, text: text, num: v})
			}
			i = j
		case isIdentStart(c):
			j := i
			for j < n && isIdentChar(line[j]) {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: line[i:j]})
			i = j
		default:
			return nil, fmt.Errorf("unexpected character %q at column %d", c, i+1)
		}
	}
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '.' || c == '_' || c == '$' || unicode.IsLetter(rune(c))
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || unicode.IsDigit(rune(c))
}

func isNumChar(c byte) bool {
	return unicode.IsDigit(rune(c)) || c == 'x' || c == 'X' ||
		(c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F') || c == '_'
}

func parseInt(s string) (int64, error) {
	s = strings.ReplaceAll(s, "_", "")
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		v, err := strconv.ParseUint(s[2:], 16, 64)
		return int64(v), err
	}
	return strconv.ParseInt(s, 10, 64)
}

// stripComment removes trailing comments ('!', '#', "//" or ";") outside of
// string and character literals.
func stripComment(line string) string {
	inStr := false
	inChar := false
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case inStr:
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
		case inChar:
			if c == '\'' {
				inChar = false
			}
		case c == '"':
			inStr = true
		case c == '\'':
			inChar = true
		case c == '!' || c == '#' || c == ';':
			return line[:i]
		case c == '/' && i+1 < len(line) && line[i+1] == '/':
			return line[:i]
		}
	}
	return line
}
