// Quickstart: assemble the paper's own code listing (§3.2), run it on the
// simulated machine, and watch the conditional store buffer turn eight
// scattered doubleword stores into a single atomic 64-byte bus burst.
package main

import (
	"fmt"
	"log"

	"csbsim"
)

// The store sequence from the paper, §3.2: stores may issue in any order,
// the swap to combining space is the conditional flush, and software
// retries on failure.
const program = `
	set 0x40000000, %o1
	set 12345, %g1
	movr2f %g1, %f0
	set 67890, %g1
	movr2f %g1, %f10
	movr2f %g1, %f12
.RETRY:
	set 8, %l4              ! expected value
	! store 8 dwords in any order
	std %f0,  [%o1]
	std %f10, [%o1+40]
	std %f0,  [%o1+16]
	std %f0,  [%o1+24]
	std %f0,  [%o1+32]
	std %f0,  [%o1+8]
	std %f0,  [%o1+56]
	std %f12, [%o1+48]      ! ... stores complete out of order
	swap [%o1], %l4         ! conditional flush
	cmp %l4, 8              ! compare values
	bnz .RETRY              ! retry on failure
	halt
`

func main() {
	// The default machine is the paper's: 4-wide out-of-order core,
	// 64-byte lines, 8-byte multiplexed bus at a 6:1 clock ratio.
	m, err := csbsim.NewMachine(csbsim.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Pages at 0x40000000 are uncached-combining: stores there are
	// captured by the CSB, and a swap is the conditional flush.
	m.MapRange(0x4000_0000, 1<<16, csbsim.KindCombining)

	if _, err := m.LoadSource("listing.s", program); err != nil {
		log.Fatal(err)
	}
	if err := m.Run(1_000_000); err != nil {
		log.Fatal(err)
	}
	if err := m.Drain(100_000); err != nil {
		log.Fatal(err)
	}

	s := m.Stats()
	fmt.Println("paper listing executed on the simulated machine")
	fmt.Printf("  cycles:               %d CPU (%d bus)\n", s.Cycles, s.BusCycles)
	fmt.Printf("  combining stores:     %d\n", s.CPU.CSBStores)
	fmt.Printf("  conditional flushes:  %d ok, %d failed\n", s.CSB.FlushOK, s.CSB.FlushFail)
	fmt.Printf("  bus transactions:     %d (a single %d-byte burst)\n",
		s.CSB.Bursts, m.Cfg.CSB.LineSize)
	fmt.Println()
	fmt.Println("data landed atomically in the target line:")
	for off := uint64(0); off < 64; off += 8 {
		fmt.Printf("  0x%08x: %d\n", 0x4000_0000+off, m.RAM.ReadUint(0x4000_0000+off, 8))
	}
	if v, _ := m.Reg("%l4"); v == 8 {
		fmt.Println("flush succeeded on the first try (register kept its value, per §3.1)")
	}
}
