package main

import (
	"testing"

	"csbsim"
	"csbsim/internal/mem"
)

func TestParseNum(t *testing.T) {
	tests := []struct {
		in   string
		want uint64
		ok   bool
	}{
		{"0x40000000", 0x4000_0000, true},
		{"4096", 4096, true},
		{"64K", 64 << 10, true},
		{"64k", 64 << 10, true},
		{"2M", 2 << 20, true},
		{"0x10K", 0x10 << 10, true},
		{"", 0, false},
		{"xyz", 0, false},
		{"12Q", 0, false},
	}
	for _, tt := range tests {
		got, err := parseNum(tt.in)
		if (err == nil) != tt.ok {
			t.Errorf("parseNum(%q) err = %v, ok = %v", tt.in, err, tt.ok)
			continue
		}
		if tt.ok && got != tt.want {
			t.Errorf("parseNum(%q) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestMapRangeSpec(t *testing.T) {
	m, err := csbsim.NewMachine(csbsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := mapRange(m, "0x40000000:4096", mem.KindCombining); err != nil {
		t.Fatal(err)
	}
	pte, ok := m.AddressSpace(0).Lookup(0x4000_0000)
	if !ok || pte.Kind != mem.KindCombining {
		t.Errorf("mapping not installed: %+v ok=%v", pte, ok)
	}
	if err := mapRange(m, "", mem.KindUncached); err != nil {
		t.Errorf("empty spec should be a no-op: %v", err)
	}
	for _, bad := range []string{"justaddr", "x:y", "0x1000:"} {
		if err := mapRange(m, bad, mem.KindUncached); err == nil {
			t.Errorf("bad spec %q accepted", bad)
		}
	}
}
