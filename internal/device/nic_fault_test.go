package device

import (
	"errors"
	"testing"
)

// window is a one-shot fault hook: it fires once with length n, then
// stays quiet.
func window(n int) func() int {
	fired := false
	return func() int {
		if fired {
			return 0
		}
		fired = true
		return n
	}
}

func TestBackpressureWindowDropsAndSignals(t *testing.T) {
	n, b, _ := newRig(t, DefaultConfig())
	n.WriteTarget(base+PacketBufBase, []byte{1, 2, 3, 4})
	n.SetFaultHooks(nil, window(10))
	step(n, b, 1) // the hook opens the window on this tick

	// While the window is open the status register advertises a full
	// FIFO even though the FIFO is empty...
	st := leUint(n.ReadTarget(base+RegStatus, 8))
	if st&2 == 0 {
		t.Fatal("full bit clear during backpressure window")
	}
	// ...and a push that ignores it is dropped, visible in the status
	// drop counter (bits [31:16]) so software can detect and retry.
	before := (st >> 16) & 0xffff
	n.WriteTarget(base+RegTxFIFO, desc(0, 4))
	st = leUint(n.ReadTarget(base+RegStatus, 8))
	after := (st >> 16) & 0xffff
	if after != before+1 {
		t.Fatalf("drop counter %d -> %d, want +1", before, after)
	}
	if n.Dropped() != 1 {
		t.Fatalf("Dropped() = %d, want 1", n.Dropped())
	}

	// After the window passes, the retried push is accepted and the
	// packet goes out.
	step(n, b, 11)
	if st := leUint(n.ReadTarget(base+RegStatus, 8)); st&2 != 0 {
		t.Fatal("full bit still set after window closed")
	}
	n.WriteTarget(base+RegTxFIFO, desc(0, 4))
	step(n, b, 10)
	if len(n.Packets()) != 1 {
		t.Fatalf("packets = %d, want 1", len(n.Packets()))
	}
}

func TestFIFOOverflowUnderBackpressureDeliversQueuedInterrupts(t *testing.T) {
	// A slow wire so queued descriptors stay queued while the window
	// opens; interrupts for already-accepted packets must still arrive.
	n, b, _ := newRig(t, Config{FIFODepth: 2, WireCyclesPerByte: 5, DMABurst: 64})
	ints := 0
	n.Interrupt = func() { ints++ }
	n.WriteTarget(base+PacketBufBase, []byte{9, 9, 9, 9})

	// Fill the FIFO, tick once so the head moves to the transmitter,
	// refill the freed slot, then overflow.
	n.WriteTarget(base+RegTxFIFO, desc(0, 4))
	n.WriteTarget(base+RegTxFIFO, desc(0, 4))
	step(n, b, 1)
	n.WriteTarget(base+RegTxFIFO, desc(0, 4))
	n.WriteTarget(base+RegTxFIFO, desc(0, 4)) // FIFO full again: dropped
	if n.Dropped() != 1 {
		t.Fatalf("Dropped() = %d after overflow, want 1", n.Dropped())
	}

	// Open a backpressure window mid-stream: further pushes drop, but
	// the three accepted packets transmit and interrupt as usual.
	n.SetFaultHooks(nil, window(20))
	step(n, b, 1)
	n.WriteTarget(base+RegTxFIFO, desc(0, 4))
	if n.Dropped() != 2 {
		t.Fatalf("Dropped() = %d during window, want 2", n.Dropped())
	}
	step(n, b, 200)
	if len(n.Packets()) != 3 {
		t.Fatalf("packets = %d, want 3", len(n.Packets()))
	}
	if ints != 3 {
		t.Fatalf("interrupts = %d, want 3", ints)
	}
	if !n.Idle() {
		t.Fatal("NIC not idle")
	}
}

func TestInjectedStallDelaysSendButNotRegisters(t *testing.T) {
	n, b, _ := newRig(t, DefaultConfig())
	ints := 0
	n.Interrupt = func() { ints++ }
	n.WriteTarget(base+PacketBufBase, []byte{1, 2, 3, 4})
	n.SetFaultHooks(window(50), nil)
	n.WriteTarget(base+RegTxFIFO, desc(0, 4))

	// The device is frozen for 50 bus cycles: nothing transmits, but
	// status polls still complete (software keeps spinning safely).
	step(n, b, 40)
	if len(n.Packets()) != 0 {
		t.Fatal("packet sent during injected stall")
	}
	if st := leUint(n.ReadTarget(base+RegStatus, 8)); st>>32 != 0 {
		t.Fatal("status claims packets sent during stall")
	}
	// Once the burst ends the packet goes out and exactly one interrupt
	// is delivered.
	step(n, b, 20)
	if len(n.Packets()) != 1 || ints != 1 {
		t.Fatalf("packets=%d interrupts=%d after stall, want 1/1", len(n.Packets()), ints)
	}
}

func TestBadDescriptorRecordsAddrErrorInsteadOfPanic(t *testing.T) {
	n, b, _ := newRig(t, DefaultConfig())
	// A descriptor pointing past the packet buffer used to panic the
	// simulator when transmission sliced packetBuf.
	n.WriteTarget(base+RegTxFIFO, desc(0x8000, 64))
	step(n, b, 20)

	var ae *AddrError
	if err := n.Err(); !errors.As(err, &ae) {
		t.Fatalf("Err() = %v, want *AddrError", err)
	} else if ae.Op != "tx-descriptor" || ae.Addr != 0x8000 {
		t.Fatalf("AddrError = %+v", ae)
	}
	if n.BadDescs() != 1 {
		t.Fatalf("BadDescs() = %d, want 1", n.BadDescs())
	}
	if len(n.Packets()) != 0 {
		t.Fatal("bogus descriptor transmitted")
	}
	// Only the first error is retained; the device keeps working.
	n.WriteTarget(base+RegTxFIFO, desc(0, PacketBufSize+1))
	if n.BadDescs() != 2 {
		t.Fatal("second bad descriptor not counted")
	}
	n.WriteTarget(base+PacketBufBase, []byte{5, 6, 7, 8})
	n.WriteTarget(base+RegTxFIFO, desc(0, 4))
	step(n, b, 10)
	if len(n.Packets()) != 1 {
		t.Fatal("NIC wedged after bad descriptor")
	}
}

func TestBadDMARecordsAddrError(t *testing.T) {
	n, b, _ := newRig(t, DefaultConfig())
	// A DMA length larger than the packet buffer would overrun it.
	n.WriteTarget(base+RegDMA, desc(0x1_0000, PacketBufSize+64))
	step(n, b, 100)
	var ae *AddrError
	if err := n.Err(); !errors.As(err, &ae) {
		t.Fatalf("Err() = %v, want *AddrError", err)
	} else if ae.Op != "dma-transfer" {
		t.Fatalf("AddrError = %+v", ae)
	}
	if !n.Idle() {
		t.Fatal("refused DMA left the engine busy")
	}
}

func TestStallHookNotConsultedWhileStalled(t *testing.T) {
	n, b, _ := newRig(t, DefaultConfig())
	calls := 0
	n.SetFaultHooks(func() int { calls++; return 5 }, nil)
	step(n, b, 11)
	// Tick 1 opens a 5-cycle burst (1 call), ticks 2-5 are frozen, tick
	// 6 opens another, and so on: ⌈11/5⌉ = 3 calls, not 11.
	if calls != 3 {
		t.Fatalf("stall hook consulted %d times over 11 ticks, want 3", calls)
	}
}
