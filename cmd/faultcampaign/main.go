// Command faultcampaign proves the recovery paths of the CSB protocol by
// sweeping deterministic fault-injection seeds across guest programs and
// asserting that every faulted run converges to the same architectural
// state as a fault-free reference run on the sequential emulator.
//
// The guests mirror the examples: the paper's §3.2 store/flush/retry
// listing, a multi-line CSB writer with a backoff loop, and a NIC sender
// that polls the status register and retries descriptor pushes the drop
// counter reveals were refused. Under injected bus NACKs, device stalls,
// FIFO backpressure, dropped and delayed flush acknowledgements and
// buffer pressure, all of them must still reach the exact register,
// flag, console, memory and packet state of the happy path — that is
// what "software retries on failure" (§3.2) promises.
//
// A failing seed is reproduced exactly by replaying it:
//
//	faultcampaign -seeds 50                # sweep seeds 1..50
//	faultcampaign -seed-base 37 -seeds 1   # replay seed 37
//	faultcampaign -wedge                   # demo: watchdog catches a wedged guest
//	faultcampaign -cluster                 # cluster campaign (see cluster.go)
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"

	"csbsim"
	"csbsim/internal/emu"
	"csbsim/internal/isa"
)

const (
	nicBase  = 0x4000_0000 // NIC region in the nicsend guest
	combBase = 0x4100_0000 // plain combining space (no device behind it)
	uncBase  = 0x4800_0000 // plain uncached space (wedge guest)
)

// quickstartSrc is the paper's §3.2 listing: stores complete in any
// order, the swap is the conditional flush, software retries on failure.
const quickstartSrc = `
	set 0x41000000, %o1
	set 12345, %g1
	movr2f %g1, %f0
	set 67890, %g1
	movr2f %g1, %f10
	movr2f %g1, %f12
RETRY:
	set 8, %l4              ! expected value
	std %f0,  [%o1]
	std %f10, [%o1+40]
	std %f0,  [%o1+16]
	std %f0,  [%o1+24]
	std %f0,  [%o1+32]
	std %f0,  [%o1+8]
	std %f0,  [%o1+56]
	std %f12, [%o1+48]
	swap [%o1], %l4         ! conditional flush
	cmp %l4, 8
	bnz RETRY               ! retry on failure
	membar
	halt
`

// multilineSrc writes four consecutive CSB lines (dword j of line i
// holds (i<<8)|j), retrying each flush after a short backoff spin — the
// shape of a driver streaming a message through combining space.
const multilineSrc = `
	set 0x41000000, %o1     ! current line
	mov 4, %g3              ! lines remaining
	mov 0, %g4              ! line index
	mov 0, %l5              ! backoff counter
line:
retry:
	set 8, %l4
	sll %g4, 8, %g6
	or %g6, 0, %g7
	stx %g7, [%o1]
	or %g6, 1, %g7
	stx %g7, [%o1+8]
	or %g6, 2, %g7
	stx %g7, [%o1+16]
	or %g6, 3, %g7
	stx %g7, [%o1+24]
	or %g6, 4, %g7
	stx %g7, [%o1+32]
	or %g6, 5, %g7
	stx %g7, [%o1+40]
	or %g6, 6, %g7
	stx %g7, [%o1+48]
	or %g6, 7, %g7
	stx %g7, [%o1+56]
	swap [%o1], %l4         ! conditional flush
	cmp %l4, 8
	bz lineok
	mov 16, %l5             ! failed: back off, then re-run the sequence
spin:
	subcc %l5, 1, %l5
	bnz spin
	ba retry
lineok:
	add %o1, 64, %o1
	add %g4, 1, %g4
	subcc %g3, 1, %g3
	bnz line
	membar
	halt
`

// nicsendSrc sends three 64-byte packets through the NIC's packet buffer
// (CSB line bursts) and descriptor FIFO, using the full recovery
// protocol: poll the FIFO-full bit before pushing, detect a dropped push
// by re-reading the drop counter, and wait for the packets-sent counter
// before reusing the buffer. Timing-dependent registers are scrubbed
// before halt so the final state is comparable with the emulator.
const nicsendSrc = `
	.equ NICREG, 0x40000000
	.equ PKTBUF, 0x40001000
	set PKTBUF, %o1
	set NICREG, %o0
	set 0xffff, %o2         ! drop-counter mask
	mov 0, %o3              ! packets that must be on the wire
	mov 3, %g3              ! messages to send
	mov 0xA0, %g4           ! payload dword for this message
msg:
fill:
	set 8, %l4
	stx %g4, [%o1]
	stx %g4, [%o1+8]
	stx %g4, [%o1+16]
	stx %g4, [%o1+24]
	stx %g4, [%o1+32]
	stx %g4, [%o1+40]
	stx %g4, [%o1+48]
	stx %g4, [%o1+56]
	swap [%o1], %l4         ! atomic line burst into the packet buffer
	cmp %l4, 8
	bnz fill                ! flush failed: re-run the store sequence
push:
	ldx [%o0+16], %g5       ! status register
	and %g5, 2, %g6
	cmp %g6, 0
	bnz push                ! FIFO full or backpressured: keep polling
	srl %g5, 16, %l5
	and %l5, %o2, %l5       ! drop counter before the push
	set 64, %g7
	sll %g7, 48, %g7        ! descriptor: offset 0, length 64
	stx %g7, [%o0]          ! one store pushes it
	membar                  ! push reaches the device before the re-read
	ldx [%o0+16], %g5
	srl %g5, 16, %l6
	and %l6, %o2, %l6       ! drop counter after
	cmp %l5, %l6
	bnz push                ! counter advanced: push was dropped, retry
	add %o3, 1, %o3
sent:
	ldx [%o0+16], %g5
	srl %g5, 32, %g6        ! packets sent so far
	cmp %g6, %o3
	bl sent                 ! buffer is live until the packet is on the wire
	add %g4, 1, %g4
	subcc %g3, 1, %g3
	bnz msg
	membar
	mov %g0, %g5            ! scrub timing-dependent status reads
	mov %g0, %g6
	mov %g0, %l5
	mov %g0, %l6
	halt
`

// wedgeSrc wedges deliberately: with every bus transaction NACKed, the
// uncached store can never drain and the membar stalls retire forever —
// the watchdog demo.
const wedgeSrc = `
	set 0x48000000, %o0
	mov 1, %g1
	stx %g1, [%o0]
	membar
	halt
`

// ramRegion is a memory span compared word-by-word against the oracle.
type ramRegion struct{ base, size uint64 }

type guest struct {
	name string
	src  string
	// setup maps address space and adds devices; it returns the NIC when
	// the guest drives one (its transmitted packets are then checked).
	setup func(m *csbsim.Machine) (*csbsim.NIC, error)
	// emuSetup prepares the oracle: mark combining ranges and seed the
	// device registers the guest polls with their ideal-device values.
	emuSetup func(e *emu.Emulator)
	ram      []ramRegion
	packets  [][]byte // expected NIC payloads (nil: no NIC)
}

func plainCombining(m *csbsim.Machine) (*csbsim.NIC, error) {
	m.MapRange(combBase, 1<<16, csbsim.KindCombining)
	return nil, nil
}

func nicPayloads() [][]byte {
	out := make([][]byte, 3)
	for i := range out {
		b := make([]byte, 64)
		for off := 0; off < 64; off += 8 {
			b[off] = byte(0xA0 + i)
		}
		out[i] = b
	}
	return out
}

func guests() []guest {
	return []guest{
		{
			name:     "quickstart",
			src:      quickstartSrc,
			setup:    plainCombining,
			emuSetup: func(e *emu.Emulator) { e.MarkCombining(combBase, 1<<16) },
			ram:      []ramRegion{{combBase, 64}},
		},
		{
			name:     "multiline",
			src:      multilineSrc,
			setup:    plainCombining,
			emuSetup: func(e *emu.Emulator) { e.MarkCombining(combBase, 1<<16) },
			ram:      []ramRegion{{combBase, 256}},
		},
		{
			name: "nicsend",
			src:  nicsendSrc,
			setup: func(m *csbsim.Machine) (*csbsim.NIC, error) {
				nic := csbsim.NewNIC(csbsim.DefaultNICConfig(), nicBase)
				if err := m.AddDevice(nicBase, csbsim.NICRegionSize, "nic", nic, nic); err != nil {
					return nil, err
				}
				m.MapRange(nicBase, csbsim.NICPacketBufBase, csbsim.KindUncached)
				m.MapRange(nicBase+csbsim.NICPacketBufBase, 0x1000, csbsim.KindCombining)
				return nic, nil
			},
			emuSetup: func(e *emu.Emulator) {
				e.MarkCombining(nicBase+csbsim.NICPacketBufBase, 0x1000)
				// The oracle's NIC is ideal: never busy, never full, never
				// drops, and has already sent more packets than any guest
				// will wait for. The status register is never written by
				// the guest, so this sentinel is what every poll reads.
				e.Mem.WriteUint(nicBase+csbsim.NICRegStatus, 8, 0x7FFFFFFF<<32)
			},
			packets: nicPayloads(),
		},
	}
}

// runOracle executes the guest fault-free on the sequential emulator.
func runOracle(g guest, prog *csbsim.Program) (*emu.Emulator, error) {
	e, err := emu.New(prog)
	if err != nil {
		return nil, err
	}
	if g.emuSetup != nil {
		g.emuSetup(e)
	}
	if err := e.Run(); err != nil {
		return nil, fmt.Errorf("oracle: %w", err)
	}
	return e, nil
}

// runOne executes one faulted machine run, compares every piece of
// architectural state against the oracle, and returns how many faults
// the run injected.
func runOne(g guest, prog *csbsim.Program, oracle *emu.Emulator,
	fcfg csbsim.FaultConfig, watchdog, cycles uint64, verbose bool) (uint64, error) {
	m, err := csbsim.NewMachine(csbsim.DefaultConfig())
	if err != nil {
		return 0, err
	}
	nic, err := g.setup(m)
	if err != nil {
		return 0, err
	}
	inj, err := m.AttachFaults(fcfg)
	if err != nil {
		return 0, err
	}
	if err := m.SetWatchdog(watchdog); err != nil {
		return 0, err
	}
	if err := m.Load(prog); err != nil {
		return 0, err
	}
	if err := m.Run(cycles); err != nil {
		return 0, fmt.Errorf("machine: %w", err)
	}
	if err := m.Drain(cycles); err != nil {
		return 0, fmt.Errorf("drain: %w", err)
	}
	total := inj.Stats().Total()

	st := m.CPU.State()
	for r := isa.Reg(1); r < isa.NumRegs; r++ {
		if st.R[r] != oracle.R[r] {
			return total, fmt.Errorf("%s = %#x, oracle %#x", isa.RegName(r), st.R[r], oracle.R[r])
		}
	}
	for f := 0; f < isa.NumFRegs; f++ {
		if st.F[f] != oracle.F[f] {
			return total, fmt.Errorf("%%f%d = %#x, oracle %#x", f, st.F[f], oracle.F[f])
		}
	}
	if st.CC != oracle.CC {
		return total, fmt.Errorf("CC = %+v, oracle %+v", st.CC, oracle.CC)
	}
	if got, want := m.Console(), string(oracle.Console); got != want {
		return total, fmt.Errorf("console = %q, oracle %q", got, want)
	}
	for _, reg := range g.ram {
		for off := uint64(0); off < reg.size; off += 8 {
			mv := m.RAM.ReadUint(reg.base+off, 8)
			ev := oracle.Mem.ReadUint(reg.base+off, 8)
			if mv != ev {
				return total, fmt.Errorf("mem[%#x] = %#x, oracle %#x", reg.base+off, mv, ev)
			}
		}
	}
	if g.packets != nil {
		got := nic.Packets()
		if len(got) != len(g.packets) {
			return total, fmt.Errorf("%d packets on the wire, want %d (dropped pushes: %d)",
				len(got), len(g.packets), nic.Dropped())
		}
		for i, want := range g.packets {
			if !bytes.Equal(got[i].Data, want) {
				return total, fmt.Errorf("packet %d payload %x, want %x", i, got[i].Data, want)
			}
		}
	}
	if verbose {
		fs := inj.Stats()
		fmt.Printf("  %-10s seed %-4d %5d faults injected (%d nacks, %d stalls, %d bp, %d delays, %d drops, %d csb, %d ub), %d cycles\n",
			g.name, fs.Seed, fs.Total(), fs.BusNacks, fs.DeviceStalls,
			fs.BackpressureWindows, fs.FlushDelays, fs.FlushDrops,
			fs.CSBPressureStalls, fs.UBPressureStalls, m.Cycle())
	}
	return total, nil
}

// runWedge demonstrates the watchdog: every bus transaction is NACKed,
// so the guest's membar can never complete and the watchdog must abort
// the run with a diagnostic dump.
func runWedge(watchdog uint64) error {
	m, err := csbsim.NewMachine(csbsim.DefaultConfig())
	if err != nil {
		return err
	}
	m.MapRange(uncBase, 0x1000, csbsim.KindUncached)
	fcfg, err := csbsim.ParseFaultSpec("busnack=1024")
	if err != nil {
		return err
	}
	if _, err := m.AttachFaults(fcfg); err != nil {
		return err
	}
	if err := m.SetWatchdog(watchdog); err != nil {
		return err
	}
	prog, err := m.LoadSource("wedge.s", wedgeSrc)
	if err != nil {
		return err
	}
	// Warm the caches so the guest actually runs: fetch hits the I-cache,
	// the uncached store enters the buffer, and the buffer's bus drain is
	// the only transaction left — NACKed forever, wedging the membar at
	// the head of the ROB.
	m.WarmProgram(prog)
	err = m.Run(100_000_000)
	var wd *csbsim.WatchdogError
	if !errors.As(err, &wd) {
		return fmt.Errorf("run ended with %v, want a watchdog trip", err)
	}
	fmt.Printf("watchdog tripped as designed: no retire progress for %d cycles at pc %#x\n\n%s",
		wd.Window, wd.PC, wd.Dump)
	return nil
}

func main() {
	var (
		seeds    = flag.Int("seeds", 20, "number of fault seeds to sweep per guest")
		seedBase = flag.Uint64("seed-base", 1, "first seed of the sweep")
		spec     = flag.String("faults", "default", "fault specification applied at every seed")
		watchdog = flag.Uint64("watchdog", 2_000_000, "watchdog window in cycles for every run")
		cycles   = flag.Uint64("cycles", 100_000_000, "cycle limit per run")
		verbose  = flag.Bool("v", false, "print per-run injection counters")
		wedge    = flag.Bool("wedge", false, "instead of a sweep, wedge a guest and show the watchdog dump")

		clusterMode = flag.Bool("cluster", false, "run the cluster campaign: wire faults × topologies × retry policies over the serving workload")
		topologies  = flag.String("topologies", "ring,star", "comma-separated topologies for the cluster campaign")
		wireSpecs   = flag.String("wire-specs", "wire;wiredrop=16,wiredup=8,wiredelay=32,wiredelaymax=400",
			"semicolon-separated wire fault specs for the cluster campaign")
		goodputMin = flag.Float64("goodput-min", 0.9, "cluster campaign: minimum goodput as a fraction of the fault-free baseline")
		horizon    = flag.Uint64("horizon", 300_000, "cluster campaign: serving run length in cluster cycles")
		outDir     = flag.String("outdir", "", "cluster campaign: write diagnostic dumps here on failure")
	)
	flag.Parse()

	if *clusterMode {
		// The machine sweep's 20-seed default would be a very long lunch at
		// cluster scale: default to 2 unless -seeds was given explicitly.
		seedCount := 2
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "seeds" {
				seedCount = *seeds
			}
		})
		co := &clusterOptions{
			seeds:      seedCount,
			seedBase:   *seedBase,
			topologies: *topologies,
			specs:      *wireSpecs,
			horizon:    *horizon,
			goodputMin: *goodputMin,
			outDir:     *outDir,
			verbose:    *verbose,
		}
		if err := runClusterCampaign(co); err != nil {
			fmt.Fprintln(os.Stderr, "faultcampaign:", err)
			os.Exit(1)
		}
		return
	}

	if *wedge {
		if err := runWedge(*watchdog); err != nil {
			fmt.Fprintln(os.Stderr, "faultcampaign:", err)
			os.Exit(1)
		}
		return
	}

	base, err := csbsim.ParseFaultSpec(*spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "faultcampaign:", err)
		os.Exit(1)
	}

	runs, failures := 0, 0
	var injected uint64
	for _, g := range guests() {
		prog, err := csbsim.Assemble(g.name+".s", g.src)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faultcampaign: %s: %v\n", g.name, err)
			os.Exit(1)
		}
		oracle, err := runOracle(g, prog)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faultcampaign: %s: %v\n", g.name, err)
			os.Exit(1)
		}
		for s := 0; s < *seeds; s++ {
			fcfg := base
			fcfg.Seed = *seedBase + uint64(s)
			runs++
			n, err := runOne(g, prog, oracle, fcfg, *watchdog, *cycles, *verbose)
			injected += n
			if err != nil {
				failures++
				fmt.Fprintf(os.Stderr, "FAIL %s seed %d: %v\n", g.name, fcfg.Seed, err)
			}
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "faultcampaign: %d of %d runs diverged from the fault-free state\n",
			failures, runs)
		os.Exit(1)
	}
	fmt.Printf("faultcampaign: %d runs (%d guests × %d seeds), %d faults injected, every run recovered to the fault-free architectural state\n",
		runs, len(guests()), *seeds, injected)
}
