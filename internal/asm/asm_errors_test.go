package asm

import (
	"strings"
	"testing"
)

// TestAssembleErrorPositions pins the assembler's error paths to
// positioned, self-explanatory messages: each case names the line the
// defect is on and a fragment of the diagnostic. This is what csblint
// and csbasm -lint surface to users, so the wording is part of the
// interface.
func TestAssembleErrorPositions(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		wantPos string // "bad.s:N" prefix
		wantMsg string // substring of the message
	}{
		{
			name:    "unknown mnemonic",
			src:     "nop\nfrobnicate %g1\n",
			wantPos: "bad.s:2",
			wantMsg: "unknown mnemonic",
		},
		{
			name:    "missing operand",
			src:     "add %g1, %g2\n",
			wantPos: "bad.s:1",
			wantMsg: "expected 3 operands, got 2",
		},
		{
			name:    "store operands reversed",
			src:     "st [%o1], %g1\n",
			wantPos: "bad.s:1",
			wantMsg: "expected memory operand",
		},
		{
			name:    "memory operand missing bracket",
			src:     "ld [%o1, %g1\n",
			wantPos: "bad.s:1",
			wantMsg: "expected ']'",
		},
		{
			name:    "fp op given int register",
			src:     "fadd %g1, %f2, %f3\n",
			wantPos: "bad.s:1",
			wantMsg: "expected fp register",
		},
		{
			name:    "displacement out of range",
			src:     "nop\nstx %g1, [%o1+100000]\n",
			wantPos: "bad.s:2",
			wantMsg: "displacement 100000 out of range",
		},
		{
			name:    "immediate out of range",
			src:     "addi %g1, 100000, %g2\n",
			wantPos: "bad.s:1",
			wantMsg: "out of range",
		},
		{
			name:    "set value too large",
			src:     "set 0x100000000, %g1\n",
			wantPos: "bad.s:1",
			wantMsg: "not representable",
		},
		{
			name:    "duplicate label",
			src:     "x: nop\nx: nop\n",
			wantPos: "bad.s:2",
			wantMsg: `duplicate label "x"`,
		},
		{
			name:    "undefined branch target",
			src:     "nop\nba nowhere\n",
			wantPos: "bad.s:2",
			wantMsg: `undefined symbol "nowhere"`,
		},
		{
			name:    "equ forward reference",
			src:     ".equ X, Y\ny: nop\n",
			wantPos: "bad.s:1",
			wantMsg: "forward references not allowed",
		},
		{
			name:    "align not a power of two",
			src:     "nop\n.align 3\n",
			wantPos: "bad.s:2",
			wantMsg: "not a power of two",
		},
		{
			name:    "entry to undefined symbol",
			src:     ".entry nowhere\nnop\n",
			wantPos: "bad.s:1",
			wantMsg: `undefined symbol "nowhere"`,
		},
		{
			name:    "trailing tokens",
			src:     "add %g1, %g2, %g3 extra\n",
			wantPos: "bad.s:1",
			wantMsg: "expected ','",
		},
		{
			name:    "bad number",
			src:     "mov 0xZZ, %g1\n",
			wantPos: "bad.s:1",
			wantMsg: "bad number",
		},
		{
			name:    "word directive given string",
			src:     ".word \"hi\"\n",
			wantPos: "bad.s:1",
			wantMsg: "expected expression",
		},
		{
			name:    "double directive given symbol only",
			src:     ".double pi\n",
			wantPos: "bad.s:1",
			wantMsg: "expected float",
		},
		{
			name:    "ascii directive without string",
			src:     ".ascii 42\n",
			wantPos: "bad.s:1",
			wantMsg: "expected string",
		},
		{
			name:    "org without operand",
			src:     ".org\n",
			wantPos: "bad.s:1",
			wantMsg: ".org",
		},
		{
			name:    "space with invalid size",
			src:     ".space -1\n",
			wantPos: "bad.s:1",
			wantMsg: "invalid size",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Assemble("bad.s", tc.src)
			if err == nil {
				t.Fatalf("Assemble(%q): expected error", tc.src)
			}
			msg := err.Error()
			if !strings.HasPrefix(msg, tc.wantPos+":") {
				t.Errorf("error %q: want position prefix %q", msg, tc.wantPos)
			}
			if !strings.Contains(msg, tc.wantMsg) {
				t.Errorf("error %q: want substring %q", msg, tc.wantMsg)
			}
		})
	}
}
