// Package cpu implements the dynamically-scheduled processor model of the
// paper's evaluation (§4.1), patterned on RSIM's: a four-wide core with a
// unified dispatch queue (the ROB) that tracks true data dependences and
// structural hazards, out-of-order issue to two integer units and two
// floating-point units, a memory queue that speculatively performs address
// calculations and executes cached loads, and in-order retirement for
// precise interrupts.
//
// Uncached operations (including CSB combining stores and the conditional
// flush) are issued non-speculatively, at or after the time they retire
// from the reorder buffer, strictly in program order — the property that
// gives I/O its in-order, exactly-once semantics.
package cpu

import (
	"fmt"

	"csbsim/internal/obs"
)

// Config parameterizes the core. DefaultConfig matches the paper's machine.
type Config struct {
	FetchWidth    int // instructions fetched per cycle
	DispatchWidth int
	RetireWidth   int
	ROBSize       int
	FetchQueue    int // decoded-instruction buffer between fetch and dispatch

	IntALUs int
	FPUs    int

	IntLatency   int
	MulLatency   int
	FPLatency    int
	FPDivLatency int

	// MemPorts is the number of cache accesses that may start per cycle;
	// AGUs is the number of address generations per cycle.
	MemPorts int
	AGUs     int
	LSQSize  int

	// MaxBranches bounds unresolved branches in flight (each holds a
	// rename-map snapshot).
	MaxBranches int
	// PredictorSize is the number of 2-bit counters (power of two).
	PredictorSize int

	// TLBEntries sizes the data TLB; TLBWalkLatency is the hardware
	// page-walk cost in cycles on a TLB miss.
	TLBEntries     int
	TLBWalkLatency int

	// CSBLatency is the CPU-visible response time of a CSB store or
	// conditional flush, in cycles.
	CSBLatency int
}

// DefaultConfig returns the paper's core: 4-wide dispatch/retire, 2 integer
// and 2 FP units, a 64-entry dispatch queue.
func DefaultConfig() Config {
	return Config{
		FetchWidth:     4,
		DispatchWidth:  4,
		RetireWidth:    4,
		ROBSize:        64,
		FetchQueue:     16,
		IntALUs:        2,
		FPUs:           2,
		IntLatency:     1,
		MulLatency:     4,
		FPLatency:      3,
		FPDivLatency:   12,
		MemPorts:       2,
		AGUs:           1,
		LSQSize:        32,
		MaxBranches:    8,
		PredictorSize:  1024,
		TLBEntries:     64,
		TLBWalkLatency: 20,
		CSBLatency:     1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	pos := []struct {
		name string
		v    int
	}{
		{"FetchWidth", c.FetchWidth}, {"DispatchWidth", c.DispatchWidth},
		{"RetireWidth", c.RetireWidth}, {"ROBSize", c.ROBSize},
		{"FetchQueue", c.FetchQueue}, {"IntALUs", c.IntALUs}, {"FPUs", c.FPUs},
		{"IntLatency", c.IntLatency}, {"MemPorts", c.MemPorts}, {"AGUs", c.AGUs},
		{"LSQSize", c.LSQSize}, {"MaxBranches", c.MaxBranches},
		{"TLBEntries", c.TLBEntries}, {"CSBLatency", c.CSBLatency},
	}
	for _, f := range pos {
		if f.v <= 0 {
			return fmt.Errorf("cpu: %s must be positive, got %d", f.name, f.v)
		}
	}
	if c.PredictorSize <= 0 || c.PredictorSize&(c.PredictorSize-1) != 0 {
		return fmt.Errorf("cpu: PredictorSize %d not a power of two", c.PredictorSize)
	}
	if c.TLBWalkLatency < 0 {
		return fmt.Errorf("cpu: negative TLB walk latency")
	}
	return nil
}

// Stats aggregates processor activity.
type Stats struct {
	Cycles       uint64
	Fetched      uint64
	Dispatched   uint64
	Retired      uint64
	Squashed     uint64
	Branches     uint64
	Mispredicts  uint64
	ICacheStalls uint64
	FetchStalls  uint64

	CachedLoads    uint64
	CachedStores   uint64
	UncachedLoads  uint64
	UncachedStores uint64
	CSBStores      uint64
	CSBFlushes     uint64
	CSBFlushFails  uint64
	Swaps          uint64
	Membars        uint64
	MembarStall    uint64
	Traps          uint64
	Interrupts     uint64
	Faults         uint64

	// CPI is the stall-attribution stack: every cycle is charged to
	// exactly one bucket, so CPI.Total() == Cycles always holds.
	CPI obs.CPIStack
}

// IPC returns retired instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Retired) / float64(s.Cycles)
}
