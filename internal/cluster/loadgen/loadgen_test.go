package loadgen

import (
	"encoding/json"
	"testing"

	"csbsim/internal/bench"
	"csbsim/internal/cluster"
)

// serveCluster builds a pair — node 0 the load-generator client, node 1 a
// server answering with the given method — and attaches a generator.
func serveCluster(t *testing.T, method bench.SendMethod, gcfg Config) (*cluster.Cluster, *Generator) {
	t.Helper()
	ccfg := cluster.DefaultConfig()
	ccfg.WireLatency = 80
	c, err := cluster.NewPair(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Node(0).M.LoadSource("client.s", "halt\n"); err != nil {
		t.Fatal(err)
	}
	src, err := ServerProgram(method, gcfg.Words)
	if err != nil {
		t.Fatal(err)
	}
	ServerMapIO(c.Node(1), method)
	if _, err := c.Node(1).M.LoadSource("server.s", src); err != nil {
		t.Fatal(err)
	}
	gcfg.Servers = []int{1}
	g := New(gcfg)
	if err := g.Attach(c, 0); err != nil {
		t.Fatal(err)
	}
	return c, g
}

// TestServeSmoke runs the open-loop serving workload for each reply
// method: requests must complete, and the latency histogram must account
// for exactly the completed requests with round trips covering at least
// two wire crossings.
func TestServeSmoke(t *testing.T) {
	for _, method := range []bench.SendMethod{bench.SendPIO, bench.SendCSB, bench.SendDMA} {
		t.Run(method.String(), func(t *testing.T) {
			words := 8
			c, g := serveCluster(t, method, Config{MeanGap: 1500, Seed: 7, Words: words})
			if err := c.RunFor(150_000, true); err != nil {
				t.Fatal(err)
			}
			st := g.Stats()
			if st.Issued < 50 {
				t.Fatalf("issued only %d requests: %+v", st.Issued, st)
			}
			if st.Completed < st.Issued/2 {
				t.Fatalf("completed %d of %d requests: %+v", st.Completed, st.Issued, st)
			}
			if st.Stray != 0 {
				t.Errorf("stray replies: %+v", st)
			}
			if got := g.Latency().Count(); got != st.Completed {
				t.Errorf("histogram count %d, completed %d", got, st.Completed)
			}
			if p50 := g.Latency().Quantile(0.5); p50 < 160 {
				t.Errorf("p50 latency %d cycles < two 80-cycle wire crossings", p50)
			}
			snap := c.Registry().Snapshot()
			key := "loadgen/" + c.Node(0).Name() + "/completed"
			if snap.Counters[key] != st.Completed {
				t.Errorf("registry counter disagrees: %d vs %d", snap.Counters[key], st.Completed)
			}
		})
	}
}

// TestServeDeterministic: two identical parallel serving runs produce
// identical stats and identical registry snapshots (loadgen hooks run on
// node goroutines — this is the determinism guard for the traffic model).
func TestServeDeterministic(t *testing.T) {
	run := func() (Stats, []byte) {
		c, g := serveCluster(t, bench.SendPIO, Config{MeanGap: 900, Dist: DistBursty, Seed: 42, Words: 8})
		if err := c.RunFor(120_000, true); err != nil {
			t.Fatal(err)
		}
		snap, err := json.Marshal(c.Registry().Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return g.Stats(), snap
	}
	s1, r1 := run()
	s2, r2 := run()
	if s1 != s2 {
		t.Errorf("stats differ across identical runs: %+v vs %+v", s1, s2)
	}
	if string(r1) != string(r2) {
		t.Errorf("registry snapshots differ across identical runs")
	}
}

// TestServeStarMultiClient: two leaf clients against a hub server — the
// server steers each reply back via the header's client index, so both
// clients complete with no strays.
func TestServeStarMultiClient(t *testing.T) {
	ccfg := cluster.DefaultConfig()
	ccfg.Nodes = 3
	ccfg.Topology = cluster.TopoStar
	ccfg.WireLatency = 60
	c, err := cluster.New(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	src, err := ServerProgram(bench.SendPIO, 8)
	if err != nil {
		t.Fatal(err)
	}
	ServerMapIO(c.Node(0), bench.SendPIO)
	if _, err := c.Node(0).M.LoadSource("server.s", src); err != nil {
		t.Fatal(err)
	}
	gens := make([]*Generator, 2)
	for i := 1; i <= 2; i++ {
		if _, err := c.Node(i).M.LoadSource("client.s", "halt\n"); err != nil {
			t.Fatal(err)
		}
		g := New(Config{MeanGap: 2500, Seed: uint64(i), Words: 8, Servers: []int{0}})
		if err := g.Attach(c, i); err != nil {
			t.Fatal(err)
		}
		gens[i-1] = g
	}
	if err := c.RunFor(200_000, true); err != nil {
		t.Fatal(err)
	}
	for i, g := range gens {
		st := g.Stats()
		if st.Completed < 10 || st.Stray != 0 {
			t.Errorf("client %d: %+v", i+1, st)
		}
	}
}

// TestGapDeterminismAndMean: equal seeds draw identical gap sequences,
// and every distribution's empirical mean lands near the configured one.
func TestGapDeterminismAndMean(t *testing.T) {
	const mean, draws = 800, 20000
	for _, dist := range []Dist{DistUniform, DistBursty, DistHeavyTail} {
		t.Run(dist.String(), func(t *testing.T) {
			draw := func(seed uint64) []uint64 {
				g := New(Config{MeanGap: mean, Dist: dist, Seed: seed})
				out := make([]uint64, draws)
				for i := range out {
					out[i] = g.gap()
					g.reqID++ // as inject would
				}
				return out
			}
			a, b := draw(5), draw(5)
			var sum uint64
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("draw %d differs across equal seeds: %d vs %d", i, a[i], b[i])
				}
				sum += a[i]
			}
			got := float64(sum) / draws
			if got < 0.4*mean || got > 2.5*mean {
				t.Errorf("%s empirical mean gap %.0f, configured %d", dist, got, mean)
			}
			c := draw(6)
			same := true
			for i := range a {
				if a[i] != c[i] {
					same = false
					break
				}
			}
			if same {
				t.Error("different seeds drew identical sequences")
			}
		})
	}
}

// TestParseDist covers the CLI spellings.
func TestParseDist(t *testing.T) {
	for _, s := range []string{"uniform", "bursty", "heavytail", "pareto"} {
		if _, err := ParseDist(s); err != nil {
			t.Errorf("ParseDist(%q): %v", s, err)
		}
	}
	if _, err := ParseDist("gaussian"); err == nil {
		t.Error("ParseDist accepted an unknown spelling")
	}
}

// TestAttachValidation: bad client/server/shape configurations must be
// rejected before the cluster runs.
func TestAttachValidation(t *testing.T) {
	ccfg := cluster.DefaultConfig()
	ccfg.Nodes = 4
	ccfg.Topology = cluster.TopoRing
	c, err := cluster.New(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		self int
		cfg  Config
	}{
		{"client out of range", 9, Config{Servers: []int{1}}},
		{"no servers", 0, Config{}},
		{"server is self", 0, Config{Servers: []int{0}}},
		{"server out of range", 0, Config{Servers: []int{7}}},
		{"no link to server", 0, Config{Servers: []int{2}}}, // ring: 0–2 not adjacent
		{"oversized words", 0, Config{Words: 9, Servers: []int{1}}},
	}
	for _, tc := range cases {
		if err := New(tc.cfg).Attach(c, tc.self); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if err := New(Config{Servers: []int{1}}).Attach(c, 0); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// TestServerProgramValidation: the CSB reply path requires the full
// 8-word line.
func TestServerProgramValidation(t *testing.T) {
	if _, err := ServerProgram(bench.SendCSB, 4); err == nil {
		t.Error("CSB server accepted a partial line")
	}
	if _, err := ServerProgram(bench.SendPIO, 0); err == nil {
		t.Error("zero-word server accepted")
	}
	if _, err := ServerProgram(bench.SendPIO, 4); err != nil {
		t.Errorf("4-word PIO server rejected: %v", err)
	}
}
