// Package phasesafe enforces the parallel cluster engine's phase
// discipline. The windowed engine (internal/cluster/engine.go) runs each
// node on its own goroutine for whole lookahead windows; all shared
// mutation happens single-threaded at the barrier between windows. That
// split is expressed as function colors:
//
//	//csb:worker <reason>   the function runs on a per-node goroutine
//	                        inside a lookahead window and may touch only
//	                        node-local state;
//	//csb:barrier <reason>  the function runs single-threaded between
//	                        windows and is forbidden inside one.
//
// Worker color propagates over the package-local call graph (including
// nested function literals), so helpers reached from a worker root are
// held to the same rules without their own annotation. A propagated or
// annotated worker function must not
//
//   - call a //csb:barrier function (routing, trace drains, telemetry
//     publishing, future Snapshot/Restore), and
//   - mention a value of a cross-node shared type: cluster.Cluster,
//     ctrace.Tracer, telemetry.Streamer, counters.Registry. Per-node
//     state (sim.Machine, device.NIC, cluster.Node) is the sanctioned
//     set and stays unrestricted.
//
// A statement-level //csb:worker-ok <reason> pragma sanctions a reviewed
// shared-state touch (for example, a read of a per-node registry that
// this node's goroutine owns).
package phasesafe

import (
	"go/ast"
	"go/types"

	"csbsim/internal/analysis"
)

// Analyzer is the phase-discipline checker.
var Analyzer = &analysis.Analyzer{
	Name: "phasesafe",
	Doc:  "propagates //csb:worker / //csb:barrier phase colors over the call graph and reports worker-phase code reaching barrier-only APIs or cross-node shared state",
	Run:  run,
}

// sharedTypes names the cross-node shared types worker-phase code must
// not touch, with a short description for diagnostics. The per-node set
// (sim.Machine, device.NIC, cluster.Node) is deliberately absent: a
// worker owns its node outright during a window.
var sharedTypes = map[string]string{
	"csbsim/internal/cluster.Cluster":       "cross-node cluster state (other nodes' machines, links, inboxes)",
	"csbsim/internal/cluster/ctrace.Tracer": "the shared wire tracer",
	"csbsim/internal/obs/telemetry.Streamer": "the telemetry sink",
	"csbsim/internal/obs/counters.Registry":  "a counter registry read at barriers",
	"csbsim/internal/obs/rec.Recorder":       "the flight recorder (reads every node's registries)",
}

// barrierAPIs lists barrier-only entry points on otherwise-sanctioned
// types, keyed "pkgpath.Type.Method". The intra-package call graph
// cannot see another package's //csb:barrier annotations, so the
// cross-package contract is pinned here — keep in sync with the pragmas
// at the declarations.
var barrierAPIs = map[string]bool{
	"csbsim/internal/sim.Machine.FlushObs":                 true,
	"csbsim/internal/obs/telemetry.Streamer.Publish":       true,
	"csbsim/internal/cluster/ctrace.Tracer.SetAlign":       true,
	"csbsim/internal/cluster/ctrace.Tracer.PacketDeparted": true,
	"csbsim/internal/cluster/ctrace.Tracer.PacketArrived":  true,
	"csbsim/internal/cluster/ctrace.Tracer.PacketEnqueued": true,
	"csbsim/internal/cluster/ctrace.Tracer.PacketDrained":  true,
	"csbsim/internal/obs/rec.Recorder.Start":               true,
	"csbsim/internal/obs/rec.Recorder.Roll":                true,
	"csbsim/internal/obs/rec.Recorder.Flush":               true,
	"csbsim/internal/obs/rec.Recorder.Event":               true,
}

type color uint8

const (
	colorNone color = iota
	colorWorker
	colorBarrier
)

type checker struct {
	pass   *analysis.Pass
	cg     *analysis.CallGraph
	color  map[*analysis.FuncNode]color
	origin map[*analysis.FuncNode]string // annotated root a worker color came from
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:   pass,
		cg:     analysis.BuildCallGraph(pass),
		color:  make(map[*analysis.FuncNode]color),
		origin: make(map[*analysis.FuncNode]string),
	}
	var queue []*analysis.FuncNode
	for _, n := range c.cg.Nodes {
		worker, barrier := c.annotated(n, "worker"), c.annotated(n, "barrier")
		switch {
		case worker && barrier:
			pass.Reportf(n.Pos(), "%s is annotated both //csb:worker and //csb:barrier; a function runs in exactly one phase", n.Name())
			c.color[n] = colorBarrier
		case worker:
			c.color[n] = colorWorker
			c.origin[n] = n.Name()
			queue = append(queue, n)
		case barrier:
			c.color[n] = colorBarrier
		}
	}
	// Propagate worker color breadth-first. Each node is dequeued at most
	// once, and its call sites are examined exactly then.
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Calls {
			switch c.color[e.Callee] {
			case colorBarrier:
				c.pass.Reportf(e.Site.Pos(),
					"barrier-only %s is called from worker-phase %s (worker via //csb:worker on %s); barrier APIs run single-threaded between lookahead windows, never inside one",
					e.Callee.Name(), n.Name(), c.origin[n])
			case colorNone:
				c.color[e.Callee] = colorWorker
				c.origin[e.Callee] = c.origin[n]
				queue = append(queue, e.Callee)
			}
		}
		// A literal created inside a worker body runs (at the latest) when
		// the worker calls it, so it inherits the color — unless annotated
		// barrier, which asserts it is only invoked after the window.
		for _, lit := range n.Lits {
			if c.color[lit] == colorNone {
				c.color[lit] = colorWorker
				c.origin[lit] = c.origin[n]
				queue = append(queue, lit)
			}
		}
	}
	for _, n := range c.cg.Nodes {
		if c.color[n] == colorWorker {
			c.checkShared(n)
		}
	}
	return nil
}

// annotated reports whether node n carries the named phase pragma: in the
// doc comment for declared functions, on the literal's line (or the line
// above) for function literals.
func (c *checker) annotated(n *analysis.FuncNode, name string) bool {
	if n.Decl != nil {
		return analysis.FuncPragma(n.Decl, name)
	}
	return c.pass.Pragma(n.Lit.Pos(), name)
}

// checkShared reports mentions of cross-node shared types inside a
// worker-colored body. Nested literals are skipped — they are their own
// call-graph nodes. One report per source line keeps a chained expression
// like c.tracer.PacketDrained(...) from firing at every level.
func (c *checker) checkShared(n *analysis.FuncNode) {
	body := n.Body()
	if body == nil {
		return
	}
	reported := make(map[int]bool)
	ast.Inspect(body, func(x ast.Node) bool {
		if _, isLit := x.(*ast.FuncLit); isLit {
			return false
		}
		e, isExpr := x.(ast.Expr)
		if !isExpr {
			return true
		}
		switch e.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.CallExpr, *ast.IndexExpr:
		default:
			return true
		}
		if call, isCall := e.(*ast.CallExpr); isCall {
			if api := c.barrierAPI(call); api != "" {
				line := c.pass.Fset.Position(e.Pos()).Line
				if reported[line] {
					return false
				}
				reported[line] = true
				if c.pass.Pragma(e.Pos(), "worker-ok") {
					return false
				}
				c.pass.Reportf(e.Pos(),
					"barrier-only %s is called from worker-phase %s (worker via //csb:worker on %s); barrier APIs run single-threaded between lookahead windows, never inside one",
					api, n.Name(), c.origin[n])
				return false
			}
		}
		name, desc := sharedType(c.pass.Info.TypeOf(e))
		if name == "" {
			return true
		}
		line := c.pass.Fset.Position(e.Pos()).Line
		if reported[line] {
			return false
		}
		reported[line] = true
		if c.pass.Pragma(e.Pos(), "worker-ok") {
			return false
		}
		c.pass.Reportf(e.Pos(),
			"worker-phase %s (worker via //csb:worker on %s) touches %s — %s; shared state may only be accessed at barriers (or annotate //csb:worker-ok with a reason)",
			n.Name(), c.origin[n], name, desc)
		return false
	})
}

// barrierAPI reports a call to a cross-package barrier-only method,
// returning its short display name ("sim.Machine.FlushObs") or "".
func (c *checker) barrierAPI(call *ast.CallExpr) string {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := c.pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	obj := named.Obj()
	if !barrierAPIs[obj.Pkg().Path()+"."+obj.Name()+"."+fn.Name()] {
		return ""
	}
	return obj.Pkg().Name() + "." + obj.Name() + "." + fn.Name()
}

// sharedType resolves t (through pointers) to a named type in the shared
// set, returning its short name and description, or "", "".
func sharedType(t types.Type) (string, string) {
	if t == nil {
		return "", ""
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", ""
	}
	full := obj.Pkg().Path() + "." + obj.Name()
	desc, ok := sharedTypes[full]
	if !ok {
		return "", ""
	}
	return obj.Pkg().Name() + "." + obj.Name(), desc
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
