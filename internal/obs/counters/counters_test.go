package counters

import (
	"strings"
	"testing"
)

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := NewHistogram("h")
	if s := h.Summary(); s.Count != 0 || s.P50 != 0 {
		t.Errorf("empty summary = %+v, want zeros", s)
	}
	// 100 values 1..100: exact min/max, power-of-two-resolved quantiles.
	for v := uint64(1); v <= 100; v++ {
		h.Record(v)
	}
	s := h.Summary()
	if s.Count != 100 || s.Min != 1 || s.Max != 100 {
		t.Errorf("summary = %+v, want count 100, min 1, max 100", s)
	}
	if s.Mean != 50.5 {
		t.Errorf("mean = %v, want 50.5", s.Mean)
	}
	// Rank 50 lands in bucket [32,64) → upper bound 63; rank 95 and 99
	// land in [64,128) → upper bound 127, clamped to the exact max 100.
	if s.P50 != 63 {
		t.Errorf("p50 = %d, want 63", s.P50)
	}
	if s.P95 != 100 || s.P99 != 100 {
		t.Errorf("p95/p99 = %d/%d, want 100/100 (clamped to max)", s.P95, s.P99)
	}

	z := NewHistogram("z")
	z.Record(0)
	if s := z.Summary(); s.Min != 0 || s.Max != 0 || s.P50 != 0 {
		t.Errorf("all-zero summary = %+v, want zeros with count 1", s)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("a/b", func() uint64 { return 1 })
	for _, dup := range []func(){
		func() { r.Counter("a/b", func() uint64 { return 2 }) },
		func() { r.Histogram("a/b") },
		func() { r.Counter("", func() uint64 { return 0 }) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad registration did not panic")
				}
			}()
			dup()
		}()
	}
}

func TestSnapshotReadsLiveState(t *testing.T) {
	r := NewRegistry()
	var v uint64
	r.Counter("layer/events", func() uint64 { return v })
	h := r.Histogram("layer/lat")
	v = 7
	h.Record(3)
	s := r.Snapshot()
	if s.Counters["layer/events"] != 7 {
		t.Errorf("counter read %d, want 7 (snapshot must read live state)", s.Counters["layer/events"])
	}
	if s.Histograms["layer/lat"].Count != 1 {
		t.Errorf("histogram summary missing: %+v", s.Histograms)
	}

	text := s.Format()
	if !strings.Contains(text, "layer/events 7") {
		t.Errorf("format misses the counter:\n%s", text)
	}
	if s.Format() != text {
		t.Error("Format is not deterministic across calls")
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram("a"), NewHistogram("b")
	for _, v := range []uint64{1, 10, 100} {
		a.Record(v)
	}
	for _, v := range []uint64{5, 100000} {
		b.Record(v)
	}
	a.Merge(b)
	s := a.Summary()
	if s.Count != 5 || s.Min != 1 || s.Max != 100000 {
		t.Errorf("merged summary: %+v", s)
	}
	if s.Mean != (1+10+100+5+100000)/5.0 {
		t.Errorf("merged mean = %v", s.Mean)
	}
	// Merging an empty histogram is a no-op; merging into an empty one
	// adopts the source's extrema.
	a2 := NewHistogram("a2")
	a2.Merge(NewHistogram("empty"))
	if a2.Count() != 0 {
		t.Errorf("empty merge recorded %d", a2.Count())
	}
	a2.Merge(b)
	if s := a2.Summary(); s.Count != 2 || s.Min != 5 || s.Max != 100000 {
		t.Errorf("merge into empty: %+v", s)
	}
}
