// nicsend: drive the simulated network interface the way the paper's §5
// envisions — user-level code writes a small message into the NIC's
// packet buffer through the conditional store buffer (one atomic line
// burst, no locks) and pushes a transmit descriptor with a single store,
// Medusa-style. The NIC is also exercised in DMA mode for comparison.
package main

import (
	"fmt"
	"log"

	"csbsim"
)

const nicBase = 0x4000_0000

func main() {
	m, err := csbsim.NewMachine(csbsim.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	nic := csbsim.NewNIC(csbsim.DefaultNICConfig(), nicBase)
	if err := m.AddDevice(nicBase, csbsim.NICRegionSize, "nic", nic, nic); err != nil {
		log.Fatal(err)
	}
	// Register page: plain uncached. Packet buffer page: combining, so
	// the CSB delivers payloads as atomic line bursts (§3.3: the device
	// accepts burst writes).
	m.MapRange(nicBase, csbsim.NICPacketBufBase, csbsim.KindUncached)
	m.MapRange(nicBase+csbsim.NICPacketBufBase, 0x1000, csbsim.KindCombining)

	// Send three 64-byte messages with the full recovery protocol: fill a
	// line via the CSB (retrying failed flushes), poll the FIFO-full bit,
	// push the descriptor with one store (offset 0, length 64 → 64<<48),
	// detect a dropped push through the status drop counter, and wait for
	// the packets-sent counter before reusing the buffer. The protocol
	// survives fault injection (csbsim -faults; see cmd/faultcampaign).
	prog := `
	.equ NICREG, 0x40000000
	.equ PKTBUF, 0x40001000
	set PKTBUF, %o1
	set NICREG, %o0
	set 0xffff, %o2         ! drop-counter mask
	mov 0, %o3              ! packets that must be on the wire
	mov 3, %g3              ! messages to send
	mov 0xAB, %g1
	movr2f %g1, %f0
msg:
RETRY:
	set 8, %l4
	std %f0, [%o1]
	std %f0, [%o1+8]
	std %f0, [%o1+16]
	std %f0, [%o1+24]
	std %f0, [%o1+32]
	std %f0, [%o1+40]
	std %f0, [%o1+48]
	std %f0, [%o1+56]
	swap [%o1], %l4         ! atomic line burst into the packet buffer
	cmp %l4, 8
	bnz RETRY               ! flush failed: re-run the store sequence
push:
	ldx [%o0+16], %g5       ! status register
	and %g5, 2, %g6
	cmp %g6, 0
	bnz push                ! FIFO full: keep polling
	srl %g5, 16, %l5
	and %l5, %o2, %l5       ! drop counter before the push
	set 64, %g4
	sll %g4, 48, %g4        ! descriptor: offset 0, length 64
	stx %g4, [%o0]          ! one store starts transmission — no lock
	membar                  ! push reaches the device before the re-read
	ldx [%o0+16], %g5
	srl %g5, 16, %l6
	and %l6, %o2, %l6       ! drop counter after
	cmp %l5, %l6
	bnz push                ! counter advanced: push was dropped, retry
	add %o3, 1, %o3
sent:
	ldx [%o0+16], %g5
	srl %g5, 32, %g6        ! packets sent so far
	cmp %g6, %o3
	bl sent                 ! buffer is live until the packet is on the wire
	subcc %g3, 1, %g3
	bnz msg
	membar
	halt
`
	if _, err := m.LoadSource("nicsend.s", prog); err != nil {
		log.Fatal(err)
	}
	if err := m.Run(10_000_000); err != nil {
		log.Fatal(err)
	}
	if err := m.Drain(1_000_000); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("sent %d packets via CSB PIO (no locks, no DMA setup):\n", len(nic.Packets()))
	for i, p := range nic.Packets() {
		fmt.Printf("  packet %d: %d bytes, first byte %#x, on wire at bus cycle %d\n",
			i, len(p.Data), p.Data[0], p.SentAt)
	}
	s := m.Stats()
	fmt.Printf("CSB: %d stores combined into %d line bursts, %d flush failures\n",
		s.CSB.Stores, s.CSB.Bursts, s.CSB.FlushFail)
	fmt.Printf("total: %d CPU cycles for 3 messages (%d cycles/message)\n",
		s.Cycles, s.Cycles/3)
}
