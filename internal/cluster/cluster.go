// Package cluster joins two simulated machines with a network wire,
// turning the single-node simulator into the workstation-cluster setting
// that motivates the paper (§2: NOW-style fine-grain communication, DEC
// Memory Channel, Atoll). Each node has its own NIC; packets transmitted
// by one node are delivered — word by word, after a configurable wire
// latency — into the other node's receive queue, where software picks
// them up with destructive uncached loads.
//
// The paper's §7 closes with "the next step is to evaluate the benefits
// of these performance advantages in terms of realistic applications";
// this package provides the substrate for that step (experiment X8:
// ping-pong round-trip latency).
//
// Observability: AttachTrace extends the PR 5 per-node journey tracer
// across the wire — every pumped packet carries a trace ID (a flight-keyed
// side channel, never guest-visible) and the cluster stamps
// wire_depart/wire_arrive/rx_enqueue/rx_drain hops in each node's own
// cycle domain, merged by internal/cluster/ctrace into end-to-end
// send→receive journeys. AttachCounters registers the cluster-level wire
// counters in both nodes' registries (so they surface in reports and
// watchdog dumps), and AttachTelemetry publishes live frames for the
// csbtop dashboard on a sim-cycle cadence.
package cluster

import (
	"fmt"

	"csbsim/internal/cluster/ctrace"
	"csbsim/internal/device"
	"csbsim/internal/mem"
	"csbsim/internal/obs/counters"
	"csbsim/internal/obs/journey"
	"csbsim/internal/obs/telemetry"
	"csbsim/internal/sim"
)

// NICBase is where each node's NIC is mapped.
const NICBase uint64 = 0x4000_0000

// Config parameterizes the two-node cluster.
type Config struct {
	Node sim.Config
	// WireLatency is the delivery delay in *CPU cycles* from a packet
	// completing transmission to its words appearing in the receiver's
	// RX queue.
	WireLatency uint64
	// RxEnqueueDelay is the extra delay in CPU cycles between a packet
	// arriving at the receiving NIC (wire_arrive) and its words becoming
	// visible in the RX queue (rx_enqueue) — the receive-side staging the
	// paper's NI discussion implies. 0 (the default) preserves the
	// historical instant-enqueue behavior.
	RxEnqueueDelay uint64
	NIC            device.Config
}

// DefaultConfig builds two paper-default nodes joined by a 120-cycle wire
// (~200 ns at the paper's 600 MHz).
func DefaultConfig() Config {
	return Config{Node: sim.DefaultConfig(), WireLatency: 120, NIC: device.DefaultConfig()}
}

// Node is one machine plus its NIC.
type Node struct {
	M   *sim.Machine
	NIC *device.NIC

	name      string
	delivered int // packets already forwarded to the peer
}

// Name returns the node's cluster-local name ("a" or "b").
func (n *Node) Name() string { return n.name }

// Cluster is two nodes and the wire between them.
type Cluster struct {
	A, B  *Node
	cfg   Config
	cycle uint64
	// in-flight deliveries: packets waiting out the wire latency, then
	// the RX staging delay
	flights []flight

	// Optional observability state; nil/zero when unattached.
	tracer     *ctrace.Tracer
	reg        *counters.Registry // cluster-level registry (ctrace hists, wire counters)
	countersOn bool
	telem      *telemetry.Streamer
	telemEvery uint64
	telemLeft  uint64
}

type flight struct {
	to      *Node
	words   []uint64
	due     uint64 // cluster cycle the wire latency elapses (wire_arrive)
	dueEnq  uint64 // cluster cycle the words enter the RX queue (rx_enqueue)
	traceID uint64 // ctrace span, 0 when untraced
	arrived bool
}

// New builds the cluster. Both nodes get identical configuration; the
// caller maps I/O space and loads programs on A.M and B.M.
func New(cfg Config) (*Cluster, error) {
	mk := func(name string) (*Node, error) {
		m, err := sim.New(cfg.Node)
		if err != nil {
			return nil, err
		}
		nic := device.NewNIC(cfg.NIC, NICBase)
		if err := m.AddDevice(NICBase, device.RegionSize, "nic-"+name, nic, nic); err != nil {
			return nil, err
		}
		return &Node{M: m, NIC: nic, name: name}, nil
	}
	a, err := mk("a")
	if err != nil {
		return nil, err
	}
	b, err := mk("b")
	if err != nil {
		return nil, err
	}
	return &Cluster{A: a, B: b, cfg: cfg}, nil
}

// MapIO maps the standard NIC layout into a node's PID-0 address space:
// registers uncached, packet buffer combining (csb) or uncached.
func (n *Node) MapIO(csb bool) {
	n.M.MapRange(NICBase, device.PacketBufBase, mem.KindUncached)
	kind := mem.KindUncached
	if csb {
		kind = mem.KindCombining
	}
	n.M.MapRange(NICBase+device.PacketBufBase, device.PacketBufSize, kind)
}

// Cycle returns the global cluster cycle.
func (c *Cluster) Cycle() uint64 { return c.cycle }

// Nodes returns both nodes, A first (convenience for uniform wiring).
func (c *Cluster) Nodes() [2]*Node { return [2]*Node{c.A, c.B} }

// ---- observability attachment ----

// AttachCounters creates (once) the cluster-level counter registry and
// registers the wire counters — packets in flight, wire occupancy, and
// each node's RX-queue high-water mark — in both nodes' PR 5 registries
// (so they surface in per-node reports and watchdog dumps) as well as the
// cluster registry (the telemetry "cluster" node).
func (c *Cluster) AttachCounters() *counters.Registry {
	if c.countersOn {
		return c.reg
	}
	c.countersOn = true
	c.reg = counters.NewRegistry()
	for _, n := range c.Nodes() {
		r := n.M.AttachCounters()
		c.registerWireCounters(r)
		nic := n.NIC
		r.Counter("cluster/rx_highwater", func() uint64 { return uint64(nic.RxHighWater()) })
	}
	c.registerWireCounters(c.reg)
	for _, n := range c.Nodes() {
		nic := n.NIC
		c.reg.Counter("cluster/"+n.name+"/rx_highwater", func() uint64 { return uint64(nic.RxHighWater()) })
		c.reg.Counter("cluster/"+n.name+"/packets_sent", func() uint64 { return uint64(len(nic.Packets())) })
		c.reg.Counter("cluster/"+n.name+"/rx_pending", func() uint64 { return uint64(nic.RxPending()) })
	}
	return c.reg
}

// registerWireCounters registers the shared wire-state counters in r.
func (c *Cluster) registerWireCounters(r *counters.Registry) {
	r.Counter("cluster/packets_in_flight", func() uint64 { return uint64(len(c.flights)) })
	r.Counter("cluster/wire_occupancy_words", func() uint64 {
		var words uint64
		for i := range c.flights {
			if !c.flights[i].arrived {
				words += uint64(len(c.flights[i].words))
			}
		}
		return words
	})
}

// Registry returns the cluster-level counter registry (nil until
// AttachCounters or AttachTrace).
func (c *Cluster) Registry() *counters.Registry { return c.reg }

// AttachTrace enables cross-node distributed tracing: per-node journey
// tracers on both machines (jcfg), the wire-span tracer (tcfg) whose
// histograms land in the cluster registry, and the NIC RX drain hooks.
// Both nodes' clock offsets are aligned at zero — the lockstep cluster
// shares one timeline; the offsets become real when nodes tick on their
// own goroutines (ROADMAP item 3). Attach before running.
func (c *Cluster) AttachTrace(jcfg journey.Config, tcfg ctrace.Config) (*ctrace.Tracer, error) {
	if c.tracer != nil {
		return c.tracer, nil
	}
	c.AttachCounters()
	tr, err := ctrace.New(tcfg, c.reg)
	if err != nil {
		return nil, err
	}
	for _, n := range c.Nodes() {
		if _, err := n.M.AttachJourneys(jcfg); err != nil {
			return nil, err
		}
		node := n
		n.NIC.SetRxDrainHook(func(id uint64) {
			tr.PacketDrained(id, node.M.Cycle())
		})
		tr.SetAlign(n.name, 0)
	}
	c.tracer = tr
	return tr, nil
}

// Trace returns the attached wire tracer, or nil.
func (c *Cluster) Trace() *ctrace.Tracer { return c.tracer }

// AttachTelemetry registers both nodes plus the cluster registry with the
// streamer and publishes one frame every `every` cluster cycles while the
// cluster runs. Attach before running; serve the streamer separately
// (telemetry.Streamer.Serve).
func (c *Cluster) AttachTelemetry(s *telemetry.Streamer, every uint64) error {
	if every == 0 {
		return fmt.Errorf("cluster: telemetry interval must be positive")
	}
	if c.telem != nil {
		return fmt.Errorf("cluster: telemetry already attached")
	}
	c.AttachCounters()
	for _, n := range c.Nodes() {
		if err := s.AddNode(n.name, n.M.Counters()); err != nil {
			return err
		}
	}
	if err := s.AddNode("cluster", c.reg); err != nil {
		return err
	}
	c.telem = s
	c.telemEvery = every
	c.telemLeft = every
	return nil
}

// flushObs drains buffered observability state on any Run exit — both
// nodes' partial metrics windows and one final telemetry frame — so a
// wedged or faulted node still yields a partial dump, mirroring the
// single-node flushObs abort behavior.
func (c *Cluster) flushObs() {
	c.A.M.FlushObs()
	c.B.M.FlushObs()
	if c.telem != nil {
		c.telem.Publish(c.cycle)
	}
}

// ---- simulation loop ----

// Tick advances both nodes one CPU cycle and moves packets across the
// wire.
func (c *Cluster) Tick() {
	c.A.M.Tick()
	c.B.M.Tick()
	c.cycle++
	c.pump(c.A, c.B)
	c.pump(c.B, c.A)
	c.deliver()
	if c.telem != nil {
		c.telemLeft--
		if c.telemLeft == 0 {
			c.telemLeft = c.telemEvery
			c.telem.Publish(c.cycle)
		}
	}
}

// pump picks up newly transmitted packets from `from` and puts them in
// flight toward `to`, opening a wire-trace span per packet when tracing
// is attached.
func (c *Cluster) pump(from, to *Node) {
	pkts := from.NIC.Packets()
	for ; from.delivered < len(pkts); from.delivered++ {
		p := pkts[from.delivered]
		words := make([]uint64, 0, (len(p.Data)+7)/8)
		for i := 0; i < len(p.Data); i += 8 {
			var w uint64
			for k := 7; k >= 0; k-- {
				idx := i + k
				var b byte
				if idx < len(p.Data) {
					b = p.Data[idx]
				}
				w = w<<8 | uint64(b)
			}
			words = append(words, w)
		}
		f := flight{to: to, words: words, due: c.cycle + c.cfg.WireLatency}
		f.dueEnq = f.due + c.cfg.RxEnqueueDelay
		if c.tracer != nil {
			f.traceID = c.openSpan(from, to, &p)
		}
		c.flights = append(c.flights, f)
	}
}

// openSpan starts a wire-trace span for a freshly pumped packet, grafting
// the sender-side NIC stamps from the sender's journey tracer (the packet
// carries its descriptor journey ID). When the journey has been evicted —
// or the sender is untraced — the NIC's bus-cycle stamps are scaled to
// the CPU-cycle domain as a fallback.
func (c *Cluster) openSpan(from, to *Node, p *device.Packet) uint64 {
	var fifoPush, txStart uint64
	if jt := from.M.Journeys(); jt != nil && p.JID != 0 {
		if j, ok := jt.Lookup(journey.KindNICDesc, p.JID); ok {
			fifoPush = j.T[journey.HopStart]
			txStart = j.T[journey.HopDepart]
		}
	}
	if fifoPush == 0 {
		fifoPush = p.FIFOPush * uint64(c.cfg.Node.Ratio)
	}
	if txStart == 0 {
		txStart = fifoPush
	}
	return c.tracer.PacketDeparted(from.name, to.name, uint32(len(p.Data)),
		p.JID, fifoPush, txStart, from.M.Cycle())
}

// deliver walks the in-flight set: a flight whose wire latency has
// elapsed is stamped wire_arrive; once its RX staging delay has also
// elapsed its words enter the receiver's RX queue (rx_enqueue) and the
// flight retires.
func (c *Cluster) deliver() {
	kept := c.flights[:0]
	for i := range c.flights {
		f := c.flights[i]
		if !f.arrived && c.cycle >= f.due {
			f.arrived = true
			if c.tracer != nil && f.traceID != 0 {
				c.tracer.PacketArrived(f.traceID, f.to.M.Cycle())
			}
		}
		if f.arrived && c.cycle >= f.dueEnq {
			if c.tracer != nil && f.traceID != 0 {
				f.to.NIC.DeliverTraced(f.traceID, f.words...)
				c.tracer.PacketEnqueued(f.traceID, f.to.M.Cycle())
			} else {
				f.to.NIC.Deliver(f.words...)
			}
		} else {
			kept = append(kept, f)
		}
	}
	c.flights = kept
}

// Run advances the cluster until both nodes halt (or maxCycles elapse).
// Every error path flushes observability state first, so post-mortems of
// a wedged or faulted node see everything up to the abort.
func (c *Cluster) Run(maxCycles uint64) error {
	for i := uint64(0); i < maxCycles; i++ {
		if c.A.M.CPU.Halted() && c.B.M.CPU.Halted() {
			if err := c.A.M.CPU.Err(); err != nil {
				c.flushObs()
				return fmt.Errorf("cluster: node a: %w", err)
			}
			if err := c.B.M.CPU.Err(); err != nil {
				c.flushObs()
				return fmt.Errorf("cluster: node b: %w", err)
			}
			return nil
		}
		if err := c.A.M.CPU.Err(); err != nil {
			c.flushObs()
			return fmt.Errorf("cluster: node a: %w", err)
		}
		if err := c.B.M.CPU.Err(); err != nil {
			c.flushObs()
			return fmt.Errorf("cluster: node b: %w", err)
		}
		c.Tick()
	}
	c.flushObs()
	return fmt.Errorf("cluster: cycle limit %d reached (a halted=%v, b halted=%v)",
		maxCycles, c.A.M.CPU.Halted(), c.B.M.CPU.Halted())
}
