package sim

import (
	"testing"

	"csbsim/internal/device"
	"csbsim/internal/mem"
)

const nicBase = 0x4000_0000

func machineWithNIC(t *testing.T) (*Machine, *device.NIC) {
	t.Helper()
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	nic := device.NewNIC(device.DefaultConfig(), nicBase)
	if err := m.AddDevice(nicBase, device.RegionSize, "nic", nic, nic); err != nil {
		t.Fatal(err)
	}
	m.MapRange(nicBase, device.PacketBufBase, mem.KindUncached)
	m.MapRange(nicBase+device.PacketBufBase, device.PacketBufSize, mem.KindCombining)
	return m, nic
}

// End-to-end PIO send through the CSB into the NIC, descriptor push, and
// transmission.
func TestEndToEndCSBSend(t *testing.T) {
	m, nic := machineWithNIC(t)
	src := `
	.equ NICREG, 0x40000000
	.equ PKTBUF, 0x40001000
	set PKTBUF, %o1
	set NICREG, %o0
	set 0x55, %g1
	movr2f %g1, %f0
RETRY:
	set 8, %l4
	std %f0, [%o1]
	std %f0, [%o1+8]
	std %f0, [%o1+16]
	std %f0, [%o1+24]
	std %f0, [%o1+32]
	std %f0, [%o1+40]
	std %f0, [%o1+48]
	std %f0, [%o1+56]
	swap [%o1], %l4
	cmp %l4, 8
	bnz RETRY
	set 64, %g4
	sll %g4, 48, %g4
	stx %g4, [%o0]
	membar
	halt
`
	if _, err := m.LoadSource("send.s", src); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if err := m.Drain(1_000_000); err != nil {
		t.Fatal(err)
	}
	pkts := nic.Packets()
	if len(pkts) != 1 {
		t.Fatalf("packets = %d, want 1", len(pkts))
	}
	if len(pkts[0].Data) != 64 || pkts[0].Data[0] != 0x55 {
		t.Errorf("payload = %d bytes, first %#x", len(pkts[0].Data), pkts[0].Data[0])
	}
	if pkts[0].ViaDMA {
		t.Error("PIO send marked as DMA")
	}
}

// A program drains the RX queue with destructive uncached loads; every
// word must be observed exactly once, in order.
func TestRxDrainProgram(t *testing.T) {
	m, nic := machineWithNIC(t)
	nic.Deliver(100, 200, 300, 400)
	src := `
	.equ NICREG, 0x40000000
	set NICREG, %o0
	set 0x20000, %o2       ! destination buffer
drain:
	ldx [%o0+0x28], %g1    ! RxCount (non-destructive)
	tst %g1
	bz done
	ldx [%o0+0x20], %g2    ! RxPop (destructive!)
	stx %g2, [%o2]
	add %o2, 8, %o2
	ba drain
done:
	membar
	halt
`
	if _, err := m.LoadSource("rx.s", src); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	want := []uint64{100, 200, 300, 400}
	for i, w := range want {
		if got := m.RAM.ReadUint(0x20000+uint64(i*8), 8); got != w {
			t.Errorf("word %d = %d, want %d", i, got, w)
		}
	}
	if nic.RxPops() != 4 {
		t.Errorf("pops = %d, want exactly 4 (one per word)", nic.RxPops())
	}
	if nic.RxPending() != 0 {
		t.Errorf("queue not drained: %d left", nic.RxPending())
	}
}

// The paper's exactly-once requirement for I/O loads: a destructive load
// on a mispredicted path must never reach the device. The branch below is
// taken but a cold 2-bit predictor guesses not-taken, so the shadow of
// the branch — which contains an RxPop load — is fetched and squashed.
func TestWrongPathNeverPopsRxQueue(t *testing.T) {
	m, nic := machineWithNIC(t)
	nic.Deliver(111, 222)
	src := `
	.equ NICREG, 0x40000000
	set NICREG, %o0
	mov 1, %g1
	cmp %g1, 1
	bz skip                 ! taken; predicted not-taken on first sight
	ldx [%o0+0x20], %g2     ! wrong path: destructive RxPop
	ldx [%o0+0x20], %g3     ! wrong path: another one
skip:
	membar
	halt
`
	if _, err := m.LoadSource("spec.s", src); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if m.Stats().CPU.Mispredicts == 0 {
		t.Fatal("test premise broken: no misprediction")
	}
	if nic.RxPops() != 0 {
		t.Fatalf("wrong-path loads popped the RX queue %d times", nic.RxPops())
	}
	if nic.RxPending() != 2 {
		t.Errorf("queue disturbed: %d pending, want 2", nic.RxPending())
	}
	if m.Stats().CPU.UncachedLoads != 0 {
		t.Errorf("%d uncached loads issued from the wrong path", m.Stats().CPU.UncachedLoads)
	}
}

// DMA send driven from simulated code, end to end.
func TestEndToEndDMASend(t *testing.T) {
	m, nic := machineWithNIC(t)
	src := `
	.equ NICREG, 0x40000000
	set NICREG, %o0
	set 0x30000, %o2
	set 0x77, %g1
	stx %g1, [%o2]
	stx %g1, [%o2+8]
	membar
	set 16, %g4
	sll %g4, 48, %g4
	set 0x30000, %g5
	or %g4, %g5, %g4
	stx %g4, [%o0+8]        ! RegDMA
	halt
`
	if _, err := m.LoadSource("dma.s", src); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if err := m.Drain(1_000_000); err != nil {
		t.Fatal(err)
	}
	pkts := nic.Packets()
	if len(pkts) != 1 {
		t.Fatalf("packets = %d, want 1", len(pkts))
	}
	if !pkts[0].ViaDMA || len(pkts[0].Data) != 16 || pkts[0].Data[0] != 0x77 {
		t.Errorf("packet = %+v", pkts[0])
	}
}

// DMA competes with CPU-driven uncached stores for the single bus; both
// must complete and all data must be intact.
func TestDMACompetesWithUncachedStores(t *testing.T) {
	m, nic := machineWithNIC(t)
	// DMA a 256B message from RAM while the CPU hammers uncached stores
	// at a different device-free region.
	m.MapRange(0x5000_0000, mem.PageSize, mem.KindUncached)
	for i := uint64(0); i < 256; i += 8 {
		m.RAM.WriteUint(0x30000+i, 8, 0xC0DE+i)
	}
	src := `
	.equ NICREG, 0x40000000
	set NICREG, %o0
	set 256, %g4
	sll %g4, 48, %g4
	set 0x30000, %g5
	or %g4, %g5, %g4
	stx %g4, [%o0+8]        ! start DMA
	set 0x50000000, %o3
	set 32, %g3
spam:	stx %g3, [%o3]
	add %o3, 8, %o3
	subcc %g3, 1, %g3
	bnz spam
	membar
	halt
`
	if _, err := m.LoadSource("contend.s", src); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	if err := m.Drain(1_000_000); err != nil {
		t.Fatal(err)
	}
	if len(nic.Packets()) != 1 {
		t.Fatalf("DMA packet count = %d", len(nic.Packets()))
	}
	data := nic.Packets()[0].Data
	for i := uint64(0); i < 256; i += 8 {
		want := 0xC0DE + i
		got := uint64(0)
		for k := 7; k >= 0; k-- {
			got = got<<8 | uint64(data[i+uint64(k)])
		}
		if got != want {
			t.Fatalf("DMA data[%d] = %#x, want %#x", i, got, want)
		}
	}
	// 32 spam stores + the RegDMA descriptor store.
	if m.Stats().CPU.UncachedStores != 33 {
		t.Errorf("uncached stores = %d, want 33", m.Stats().CPU.UncachedStores)
	}
}

// §3.2: "uncached loads bypass the combined stores. This is reasonable
// because the combined stores have not yet been committed by a
// conditional flush." A load from combining space while data sits
// uncommitted in the CSB must observe the OLD memory contents.
func TestUncachedLoadBypassesUncommittedCSB(t *testing.T) {
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m.MapRange(0x4000_0000, mem.PageSize, mem.KindCombining)
	m.RAM.WriteUint(0x4000_0000, 8, 0xD1D1) // pre-existing device/memory state
	if _, err := m.LoadSource("bypass.s", `
	set 0x40000000, %o1
	mov 99, %g1
	stx %g1, [%o1]          ! into the CSB, NOT committed
	ldx [%o1], %g2          ! uncached load: bypasses the CSB
	halt
`); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	got, _ := m.Reg("%g2")
	if got != 0xD1D1 {
		t.Errorf("load observed %#x, want the old memory value 0xd1d1 (CSB bypassed)", got)
	}
	// The CSB still holds the uncommitted store.
	if m.CSB.HitCount() != 1 {
		t.Errorf("CSB hit count = %d, want 1 (store still pending)", m.CSB.HitCount())
	}
	if s := m.Stats(); s.CSB.Bursts != 0 {
		t.Error("uncommitted data leaked to the bus")
	}
}
