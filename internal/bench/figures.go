package bench

import (
	"fmt"

	"csbsim/internal/bus"
)

// TransferSizes is the x-axis of all bandwidth figures: 16 bytes (two
// doubleword stores) to 1 KB.
var TransferSizes = []int{16, 32, 64, 128, 256, 512, 1024}

// LockTransferDwords is the x-axis of figure 5: 2 to 8 doublewords.
var LockTransferDwords = []int{2, 3, 4, 5, 6, 7, 8}

func sizeLabels() []string {
	out := make([]string, len(TransferSizes))
	for i, s := range TransferSizes {
		out[i] = fmt.Sprintf("%dB", s)
	}
	return out
}

// bandwidthFigure sweeps all schemes over all transfer sizes on one
// machine variation. The (scheme, size) grid runs on the parallel sweep
// pool; each point builds its own machine.
func bandwidthFigure(id, title string, p MachineParams) (Result, error) {
	r := Result{
		ID: id, Title: title,
		XLabel: "transfer size", YLabel: "bytes per bus cycle",
		X: sizeLabels(),
		Notes: fmt.Sprintf("%s %dB bus, ratio %d, line %dB, turnaround %d, ack delay %d",
			p.Bus.Model, p.Bus.WidthBytes, p.Ratio, p.LineSize, p.Bus.Turnaround, p.Bus.AckDelay),
	}
	schemes := Schemes(p.LineSize)
	ys, err := sweepSeries(len(schemes), len(TransferSizes), func(si, xi int) (float64, error) {
		pp := p
		pp.Scheme = schemes[si]
		bw, err := MeasureBandwidth(pp, TransferSizes[xi])
		if err != nil {
			return 0, fmt.Errorf("figure %s %s %dB: %w", id, schemes[si], TransferSizes[xi], err)
		}
		return bw, nil
	})
	if err != nil {
		return r, err
	}
	for si, scheme := range schemes {
		r.Series = append(r.Series, Series{Name: scheme.String(), Y: ys[si]})
	}
	return r, nil
}

// Figure3FrequencyRatio regenerates figures 3(a)-(c): store bandwidth on
// an 8-byte multiplexed bus at CPU:bus frequency ratios 2, 4 and 6
// (32-byte line, no turnaround — peak is one line per 5 bus cycles).
func Figure3FrequencyRatio() ([]Result, error) {
	var out []Result
	for i, ratio := range []int{2, 4, 6} {
		p := DefaultParams()
		p.Ratio = ratio
		p.LineSize = 32
		r, err := bandwidthFigure(fmt.Sprintf("3%c", 'a'+i),
			fmt.Sprintf("uncached store bandwidth, multiplexed bus, CPU:bus ratio %d", ratio), p)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Figure3BlockSize regenerates figures 3(d)-(f): cache line (= CSB burst)
// size 32, 64 and 128 bytes at ratio 6.
func Figure3BlockSize() ([]Result, error) {
	var out []Result
	for i, line := range []int{32, 64, 128} {
		p := DefaultParams()
		p.LineSize = line
		r, err := bandwidthFigure(fmt.Sprintf("3%c", 'd'+i),
			fmt.Sprintf("uncached store bandwidth, multiplexed bus, %dB cache line", line), p)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Figure3BusOverhead regenerates figures 3(g)-(i): a mandatory turnaround
// cycle, then selective-flow-control acknowledgment delays of 4 and 8 bus
// cycles (64-byte line, ratio 6).
func Figure3BusOverhead() ([]Result, error) {
	variants := []struct {
		id, what   string
		turnaround int
		ack        int
	}{
		{"3g", "turnaround cycle after every transaction", 1, 0},
		{"3h", "4-cycle acknowledgment min-delay", 0, 4},
		{"3i", "8-cycle acknowledgment min-delay", 0, 8},
	}
	var out []Result
	for _, v := range variants {
		p := DefaultParams()
		p.Bus.Turnaround = v.turnaround
		p.Bus.AckDelay = v.ack
		r, err := bandwidthFigure(v.id, "uncached store bandwidth, multiplexed bus, "+v.what, p)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Figure4BusWidth regenerates figures 4(a)-(b): a split address/data bus
// 128 and 256 bits wide (ratio 6, 64-byte line, no turnaround).
func Figure4BusWidth() ([]Result, error) {
	var out []Result
	for i, width := range []int{16, 32} {
		p := DefaultParams()
		p.Bus.Model = bus.Split
		p.Bus.WidthBytes = width
		r, err := bandwidthFigure(fmt.Sprintf("4%c", 'a'+i),
			fmt.Sprintf("uncached store bandwidth, split bus, %d-bit data path", width*8), p)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Figure4BusOverhead regenerates figures 4(c)-(e): the 16-byte split bus
// with a turnaround cycle, then ack min-delays of 4 and 8 cycles.
func Figure4BusOverhead() ([]Result, error) {
	variants := []struct {
		id, what   string
		turnaround int
		ack        int
	}{
		{"4c", "turnaround cycle after every transaction", 1, 0},
		{"4d", "4-cycle acknowledgment min-delay", 0, 4},
		{"4e", "8-cycle acknowledgment min-delay", 0, 8},
	}
	var out []Result
	for _, v := range variants {
		p := DefaultParams()
		p.Bus.Model = bus.Split
		p.Bus.WidthBytes = 16
		p.Bus.Turnaround = v.turnaround
		p.Bus.AckDelay = v.ack
		r, err := bandwidthFigure(v.id, "uncached store bandwidth, split bus, "+v.what, p)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Figure5 regenerates figure 5: CPU cycles for a lock-access-unlock
// sequence under each combining scheme versus the CSB, for 2-8 doubleword
// transfers. lockHit selects figure 5(a) (lock hits in L1) or 5(b) (lock
// misses).
func Figure5(lockHit bool) (Result, error) {
	id, what := "5a", "lock hits in L1"
	if !lockHit {
		id, what = "5b", "lock misses in L1"
	}
	p := DefaultParams()
	r := Result{
		ID: id, Title: "locking vs conditional store buffer, " + what,
		XLabel: "transfer size", YLabel: "CPU cycles",
		Notes: fmt.Sprintf("%s %dB bus, ratio %d, line %dB",
			p.Bus.Model, p.Bus.WidthBytes, p.Ratio, p.LineSize),
	}
	for _, n := range LockTransferDwords {
		r.X = append(r.X, fmt.Sprintf("%dB", n*8))
	}
	schemes := Schemes(p.LineSize)
	ys, err := sweepSeries(len(schemes), len(LockTransferDwords), func(si, xi int) (float64, error) {
		pp := p
		pp.Scheme = schemes[si]
		n := LockTransferDwords[xi]
		cycles, err := MeasureLockLatency(pp, n, lockHit)
		if err != nil {
			return 0, fmt.Errorf("figure %s %s n=%d: %w", id, schemes[si], n, err)
		}
		return cycles, nil
	})
	if err != nil {
		return r, err
	}
	for si, scheme := range schemes {
		name := "lock+" + scheme.String()
		if scheme == SchemeCSB {
			name = "CSB"
		}
		r.Series = append(r.Series, Series{Name: name, Y: ys[si]})
	}
	return r, nil
}

// AblationDoubleBuffer measures what the second line buffer of §3.2
// actually buys: it lets the program keep combining while earlier flushes
// still wait for the system interface, i.e. it removes issue-side stalls.
// Steady-state *bandwidth* is identical (the bus drains lines slower than
// the core fills them in either configuration), so the metric here is the
// CPU cycles the core needs to hand N back-to-back line sequences to the
// CSB and move on.
func AblationDoubleBuffer() (Result, error) {
	counts := []int{1, 2, 3, 4, 6, 8}
	r := Result{
		ID: "X1", Title: "CSB single vs double line buffer: issue-side stalls",
		XLabel: "back-to-back line sequences", YLabel: "CPU cycles until core is free",
		Notes: "8-byte multiplexed bus, ratio 6; bursts drain in the background afterwards",
	}
	for _, n := range counts {
		r.X = append(r.X, fmt.Sprintf("%d", n))
	}
	variants := []bool{false, true} // single-, then double-buffered
	ys, err := sweepSeries(len(variants), len(counts), func(si, xi int) (float64, error) {
		p := DefaultParams()
		p.Scheme = SchemeCSB
		p.DoubleBufferedCSB = variants[si]
		return MeasureCSBIssueOverhead(p, counts[xi])
	})
	if err != nil {
		return r, err
	}
	for si, double := range variants {
		name := "single-buffer"
		if double {
			name = "double-buffer"
		}
		r.Series = append(r.Series, Series{Name: name, Y: ys[si]})
	}
	return r, nil
}

// AblationR10KCombining compares anywhere-in-block combining against the
// R10000's strictly-sequential detection when the store order within each
// line is shuffled (the failure mode §6 describes).
func AblationR10KCombining() (Result, error) {
	r := Result{
		ID: "X4", Title: "block combining vs R10000 sequential-only combining, shuffled store order",
		XLabel: "transfer size", YLabel: "bytes per bus cycle",
		X:     sizeLabels(),
		Notes: "stores within each line issue in a fixed shuffled order",
	}
	variants := []bool{false, true} // any-order, then sequential-only
	ys, err := sweepSeries(len(variants), len(TransferSizes), func(si, xi int) (float64, error) {
		p := DefaultParams()
		p.Scheme = Scheme(64)
		p.SequentialCombining = variants[si]
		return measureShuffledBandwidth(p, TransferSizes[xi])
	})
	if err != nil {
		return r, err
	}
	for si, seq := range variants {
		name := "combine-64 (any order)"
		if seq {
			name = "combine-64 (R10K sequential)"
		}
		r.Series = append(r.Series, Series{Name: name, Y: ys[si]})
	}
	return r, nil
}

// All regenerates every paper figure in order.
func All() ([]Result, error) {
	var out []Result
	add := func(rs []Result, err error) error {
		if err != nil {
			return err
		}
		out = append(out, rs...)
		return nil
	}
	if err := add(Figure3FrequencyRatio()); err != nil {
		return nil, err
	}
	if err := add(Figure3BlockSize()); err != nil {
		return nil, err
	}
	if err := add(Figure3BusOverhead()); err != nil {
		return nil, err
	}
	if err := add(Figure4BusWidth()); err != nil {
		return nil, err
	}
	if err := add(Figure4BusOverhead()); err != nil {
		return nil, err
	}
	for _, hit := range []bool{true, false} {
		r, err := Figure5(hit)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// ByID regenerates one figure ("3a".."3i", "4a".."4e", "5a", "5b", "X1",
// "X4").
func ByID(id string) (Result, error) {
	group := func(rs []Result, err error) (Result, error) {
		if err != nil {
			return Result{}, err
		}
		for _, r := range rs {
			if r.ID == id {
				return r, nil
			}
		}
		return Result{}, fmt.Errorf("bench: figure %q produced no result", id)
	}
	switch id {
	case "3a", "3b", "3c":
		return group(Figure3FrequencyRatio())
	case "3d", "3e", "3f":
		return group(Figure3BlockSize())
	case "3g", "3h", "3i":
		return group(Figure3BusOverhead())
	case "4a", "4b":
		return group(Figure4BusWidth())
	case "4c", "4d", "4e":
		return group(Figure4BusOverhead())
	case "5a":
		return Figure5(true)
	case "5b":
		return Figure5(false)
	case "X1":
		return AblationDoubleBuffer()
	case "X2":
		return ExtensionPIOvsDMA()
	case "X2L":
		return ExtensionPIOvsDMALatency()
	case "X4":
		return AblationR10KCombining()
	case "X6":
		return ExtensionSharedNIC()
	case "X8":
		return ExtensionPingPong()
	}
	return Result{}, fmt.Errorf("bench: unknown figure %q", id)
}
