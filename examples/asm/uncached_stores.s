! 4 KB of doubleword stores to uncached space: every store becomes its
! own strongly-ordered 8-byte bus transaction, serializing the pipeline
! on the uncached buffer drain.
! Run with:
!   csbsim -uncached 0x40000000:64K -cpistack examples/asm/uncached_stores.s

	set 0x40000000, %o1
	mov 201, %g1
	movr2f %g1, %f0
	mov 202, %g1
	movr2f %g1, %f2
	set 64, %g2
loop:
	std %f0, [%o1]
	std %f2, [%o1+8]
	std %f0, [%o1+16]
	std %f2, [%o1+24]
	std %f0, [%o1+32]
	std %f2, [%o1+40]
	std %f0, [%o1+48]
	std %f2, [%o1+56]
	add %o1, 64, %o1
	subcc %g2, 1, %g2
	bnz loop
	membar
	halt
