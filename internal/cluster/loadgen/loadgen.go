// Package loadgen is the service-scale traffic model: an open-loop load
// generator that streams request packets from client nodes at a
// configurable offered rate against server nodes, measuring per-request
// round-trip latency into the PR 5 histogram registry. It scales the
// paper's microbenchmark story (§7 "realistic applications") to a
// serving workload: many simulated users' requests multiplexed onto a
// client node, servers answering with uncached-store, CSB-batched or DMA
// replies, and throughput/p50/p99 curves versus offered load falling out
// of the registry.
//
// The generator is a cluster.NodeHook: it runs on its node's goroutine
// under the parallel engine and touches only that node's NIC (injecting
// requests host-side, draining replies with destructive pops), so the
// windowed scheduler's determinism guarantee extends to serving runs.
// Open loop means arrivals never wait for completions — the
// characteristic that exposes queueing collapse past saturation, which a
// closed-loop (ping-pong) benchmark structurally cannot show.
//
// Inter-arrival gaps come from a seeded fault.PRNG under three
// distributions (uniform, bursty, heavy-tailed Pareto), the synthetic
// shapes the Boukhobza/Timsit trace-simulation work validates against.
package loadgen

import (
	"fmt"
	"math"

	"csbsim/internal/cluster"
	"csbsim/internal/device"
	"csbsim/internal/fault"
	"csbsim/internal/obs/counters"
)

// Dist selects the inter-arrival time distribution.
type Dist int

const (
	// DistUniform draws gaps uniformly from [gap/2, 3·gap/2).
	DistUniform Dist = iota
	// DistBursty issues back-to-back bursts of 8 requests separated by
	// long off-periods, preserving the configured mean rate.
	DistBursty
	// DistHeavyTail draws gaps from a Pareto(α=1.5) whose mean is the
	// configured gap — rare very long gaps, many short ones.
	DistHeavyTail
)

// ParseDist maps the CLI spellings onto a Dist.
func ParseDist(s string) (Dist, error) {
	switch s {
	case "uniform":
		return DistUniform, nil
	case "bursty":
		return DistBursty, nil
	case "heavytail", "heavy-tail", "pareto":
		return DistHeavyTail, nil
	}
	return 0, fmt.Errorf("unknown distribution %q (want uniform, bursty or heavytail)", s)
}

// String renders the distribution's canonical CLI spelling.
func (d Dist) String() string {
	switch d {
	case DistUniform:
		return "uniform"
	case DistBursty:
		return "bursty"
	case DistHeavyTail:
		return "heavytail"
	}
	return fmt.Sprintf("dist(%d)", int(d))
}

// burstLen is the fixed burst size of DistBursty.
const burstLen = 8

// pendingCap is the request-tracking ring size (power of two). A request
// whose slot is overwritten before its reply arrives is counted lost —
// the open-loop analogue of a timeout.
const pendingCap = 1 << 13

// Config parameterizes one generator.
type Config struct {
	// MeanGap is the mean inter-arrival time in CPU cycles (the offered
	// rate is 1/MeanGap requests per cycle). Minimum 1.
	MeanGap uint64
	// Dist is the inter-arrival distribution.
	Dist Dist
	// Seed seeds the gap PRNG; two generators with equal seeds and
	// configs issue identical request streams.
	Seed uint64
	// Words is the request (and reply) payload size in 8-byte words,
	// 1..8; default 8 (one 64-byte line, the CSB batch unit).
	Words int
	// Servers lists the destination node indices, used round-robin.
	Servers []int
	// IssueUntil stops new requests after this cluster cycle (0 = never);
	// the generator keeps draining replies afterwards.
	IssueUntil uint64
	// Warmup delays the first request until this cluster cycle.
	Warmup uint64
}

// Stats is a generator's cumulative request accounting.
type Stats struct {
	Issued    uint64 `json:"issued"`
	Completed uint64 `json:"completed"`
	// Lost counts requests whose tracking slot was reused before a reply
	// arrived (reply dropped, server overloaded, or still queued at run
	// end — the open-loop overload signal).
	Lost uint64 `json:"lost"`
	// Stray counts reply packets that matched no outstanding request.
	Stray uint64 `json:"stray"`
}

type pendingReq struct {
	id     uint64
	issued uint64
	live   bool
}

// Generator drives one client node. Create with New, wire with Attach,
// then run the cluster; read Stats and the latency histogram afterwards.
type Generator struct {
	cfg  Config
	prng fault.PRNG

	node *cluster.Node
	self int

	slots     int // packet-buffer ring slots
	slotBytes uint64
	nextIssue uint64
	reqID     uint64
	rrIdx     int

	pending []pendingReq
	stats   Stats

	// reply reassembly: replies arrive packet-atomically, Words words each
	rxHave int
	rxHdr  uint64

	hist    *counters.Histogram
	scratch [8]byte
}

// New builds a generator. Validation happens in Attach, where the
// cluster's shape is known.
func New(cfg Config) *Generator {
	if cfg.MeanGap == 0 {
		cfg.MeanGap = 1000
	}
	if cfg.Words == 0 {
		cfg.Words = 8
	}
	return &Generator{cfg: cfg, prng: fault.NewPRNG(cfg.Seed)}
}

// Attach binds the generator to node `self` of c: validates the server
// set against the topology, registers the latency histogram and request
// counters under "loadgen/<node>/" in the cluster registry, and installs
// the per-cycle hook. The node's guest should simply halt — the hook
// keeps the node's NIC ticking.
func (g *Generator) Attach(c *cluster.Cluster, self int) error {
	if self < 0 || self >= c.NumNodes() {
		return fmt.Errorf("loadgen: client node %d out of range", self)
	}
	if g.cfg.Words < 1 || g.cfg.Words > 8 {
		return fmt.Errorf("loadgen: %d-word requests unsupported (want 1..8, one NIC line)", g.cfg.Words)
	}
	if len(g.cfg.Servers) == 0 {
		return fmt.Errorf("loadgen: no server nodes")
	}
	for _, s := range g.cfg.Servers {
		if s < 0 || s >= c.NumNodes() || s == self {
			return fmt.Errorf("loadgen: bad server node %d for client %d", s, self)
		}
		if _, ok := c.Link(self, s); !ok {
			return fmt.Errorf("loadgen: no link from client %d to server %d", self, s)
		}
	}
	g.node = c.Node(self)
	g.self = self
	g.slotBytes = uint64(g.cfg.Words * 8)
	g.slots = int(uint64(device.PacketBufSize) / g.slotBytes)
	g.pending = make([]pendingReq, pendingCap)
	reg := c.AttachCounters()
	prefix := "loadgen/" + g.node.Name() + "/"
	g.hist = reg.Histogram(prefix + "latency")
	reg.Counter(prefix+"issued", func() uint64 { return g.stats.Issued })
	reg.Counter(prefix+"completed", func() uint64 { return g.stats.Completed })
	reg.Counter(prefix+"lost", func() uint64 { return g.stats.Lost })
	g.nextIssue = g.cfg.Warmup + g.gap()
	c.SetNodeHook(self, g.hook)
	return nil
}

// Stats returns the cumulative request accounting. Requests still in
// flight at read time are neither completed nor lost:
// Issued - Completed - Lost = outstanding.
func (g *Generator) Stats() Stats { return g.stats }

// Latency returns the round-trip latency histogram.
func (g *Generator) Latency() *counters.Histogram { return g.hist }

// hook is the per-cycle driver: drain replies, then issue per schedule.
// It runs on the node's goroutine inside lookahead windows and touches
// only this node's state (its NIC, the generator's own accounting and
// histogram).
//
//csb:worker per-cycle NodeHook on the owning node's goroutine
func (g *Generator) hook(cycle uint64) bool {
	g.drain(cycle)
	if cycle >= g.nextIssue && (g.cfg.IssueUntil == 0 || cycle <= g.cfg.IssueUntil) {
		g.inject(cycle)
		g.nextIssue = cycle + g.gap()
	}
	return true
}

// inject issues one request: payload into the next packet-buffer slot,
// destination steered via RegTxDest, one descriptor push. Mirrors what a
// guest's uncached stores would do, without costing simulated cycles —
// the client models an aggregation point for many remote users, not a
// CPU-bound sender.
func (g *Generator) inject(cycle uint64) {
	slot := uint64(int(g.reqID)%g.slots) * g.slotBytes
	base := cluster.NICBase + device.PacketBufBase + slot
	hdr := uint64(g.self)<<48 | (g.reqID & (1<<48 - 1))
	g.writeWord(base, hdr)
	for w := 1; w < g.cfg.Words; w++ {
		g.writeWord(base+uint64(w*8), g.prng.Uint64())
	}
	srv := g.cfg.Servers[g.rrIdx]
	g.rrIdx = (g.rrIdx + 1) % len(g.cfg.Servers)
	g.writeWord(cluster.NICBase+device.RegTxDest, uint64(srv))
	g.writeWord(cluster.NICBase+device.RegTxFIFO, slot|g.slotBytes<<48)
	p := &g.pending[g.reqID%pendingCap]
	if p.live {
		g.stats.Lost++
	}
	*p = pendingReq{id: g.reqID, issued: cycle, live: true}
	g.stats.Issued++
	g.reqID++
}

// drain pops every waiting RX word, reassembling fixed-size replies and
// recording their round-trip latency.
func (g *Generator) drain(cycle uint64) {
	for {
		w, ok := g.node.NIC.RxPop()
		if !ok {
			return
		}
		if g.rxHave == 0 {
			g.rxHdr = w
		}
		g.rxHave++
		if g.rxHave < g.cfg.Words {
			continue
		}
		g.rxHave = 0
		id := g.rxHdr & (1<<48 - 1)
		p := &g.pending[id%pendingCap]
		if p.live && p.id == id && g.rxHdr>>48 == uint64(g.self) {
			p.live = false
			g.hist.Record(cycle - p.issued)
			g.stats.Completed++
		} else {
			g.stats.Stray++
		}
	}
}

// writeWord stores one little-endian word at physical address pa on the
// node's NIC, through the device's normal write path.
func (g *Generator) writeWord(pa, v uint64) {
	for i := range g.scratch {
		g.scratch[i] = byte(v >> (8 * i))
	}
	g.node.NIC.WriteTarget(pa, g.scratch[:])
}

// gap draws the next inter-arrival time (≥ 1 cycle).
func (g *Generator) gap() uint64 {
	mean := g.cfg.MeanGap
	switch g.cfg.Dist {
	case DistBursty:
		// Within a burst: back-to-back. Between bursts: an off-period
		// drawn so the overall mean stays MeanGap. gap() runs after
		// reqID++, so reqID%burstLen == 0 means a burst just finished.
		if g.reqID%burstLen != 0 {
			return 1
		}
		off := mean*burstLen - (burstLen - 1)
		if off < 2 {
			return 1
		}
		return clamp1(off/2 + uint64(g.prng.Intn(int(off))))
	case DistHeavyTail:
		// Pareto(α=1.5) with xm = mean/3 so E[gap] = mean; capped at
		// 100·mean to keep a single draw from stalling the run.
		u := float64(g.prng.Uint64()>>11) / (1 << 53) // [0,1)
		xm := float64(mean) / 3
		v := xm / math.Pow(1-u, 1/1.5)
		if lim := float64(mean) * 100; v > lim {
			v = lim
		}
		return clamp1(uint64(v))
	default: // uniform
		return clamp1(mean/2 + uint64(g.prng.Intn(int(mean))))
	}
}

func clamp1(v uint64) uint64 {
	if v < 1 {
		return 1
	}
	return v
}
