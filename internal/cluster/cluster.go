// Package cluster joins N simulated machines with a network fabric,
// turning the single-node simulator into the workstation-cluster setting
// that motivates the paper (§2: NOW-style fine-grain communication, DEC
// Memory Channel, Atoll). Each node has its own NIC; packets transmitted
// by one node are routed over a directed link — after the link's latency,
// serialization and queueing — into the destination node's receive queue,
// where software picks them up with destructive uncached loads.
//
// Topologies: full mesh, ring and star (see topology.go), with per-link
// latency/bandwidth/queue-depth overrides. A guest steers packets with
// the NIC's RegTxDest register; packets left on the default route go to
// the topology's natural next hop.
//
// Execution engines: the classic lockstep Tick/Run loop (every node
// advances one cycle per call — required when any link has zero latency),
// and the windowed conservative-lookahead engine in engine.go
// (RunParallel/RunSequentialRef/RunFor) that runs each node on its own
// goroutine for whole windows of cycles, bounded by the minimum link
// latency so no inbound packet can be missed.
//
// Observability: AttachTrace extends the PR 5 per-node journey tracer
// across the wire — every pumped packet carries a trace ID (a flight-keyed
// side channel, never guest-visible) and the cluster stamps
// wire_depart/wire_arrive/rx_enqueue/rx_drain hops in each node's own
// cycle domain, merged by internal/cluster/ctrace into end-to-end
// send→receive journeys. AttachCounters registers the cluster-level wire
// counters in every node's registry (so they surface in reports and
// watchdog dumps), and AttachTelemetry publishes live frames for the
// csbtop dashboard on a sim-cycle cadence. All tracer mutations funnel
// through per-node event logs replayed single-threaded (see engine.go),
// so the same code path serves both engines and the parallel scheduler
// stays byte-identical to the sequential reference.
package cluster

import (
	"fmt"
	"sort"

	"csbsim/internal/cluster/ctrace"
	"csbsim/internal/device"
	"csbsim/internal/fault"
	"csbsim/internal/mem"
	"csbsim/internal/obs/counters"
	"csbsim/internal/obs/journey"
	"csbsim/internal/obs/rec"
	"csbsim/internal/obs/telemetry"
	"csbsim/internal/sim"
)

// NICBase is where each node's NIC is mapped.
const NICBase uint64 = 0x4000_0000

// Config parameterizes the cluster.
type Config struct {
	Node sim.Config
	// Nodes is the node count (0 = the classic two-node pair).
	Nodes int
	// Topology selects the wiring (default full mesh; for two nodes all
	// three shapes coincide).
	Topology Topology
	// WireLatency is the propagation delay in *CPU cycles* from a packet
	// completing transmission to its words appearing in the receiver's
	// RX queue, applied to every link (override per link with SetLink).
	// The windowed engine requires at least 1 on every link.
	WireLatency uint64
	// Bandwidth is the default link serialization cost in cycles per
	// 8-byte word (0 = infinitely fast links).
	Bandwidth uint64
	// LinkDepth bounds packets in flight per link (0 = unbounded);
	// overflow drops the packet and counts cluster/link_drops.
	LinkDepth int
	// RxEnqueueDelay is the extra delay in CPU cycles between a packet
	// arriving at the receiving NIC (wire_arrive) and its words becoming
	// visible in the RX queue (rx_enqueue) — the receive-side staging the
	// paper's NI discussion implies. 0 (the default) preserves the
	// historical instant-enqueue behavior.
	RxEnqueueDelay uint64
	NIC            device.Config
}

// DefaultConfig builds two paper-default nodes joined by a 120-cycle wire
// (~200 ns at the paper's 600 MHz).
func DefaultConfig() Config {
	return Config{Node: sim.DefaultConfig(), Nodes: 2, WireLatency: 120, NIC: device.DefaultConfig()}
}

// NodeHook is a per-cycle host-side driver for one node (a load
// generator): it runs before the node's machine tick each cycle, on the
// node's own goroutine under the parallel engine, and may touch only that
// node's state (its NIC, its registers). Returning false retires the
// hook; a node with a live hook is kept ticking even when its CPU has
// halted, so hook-injected NIC work still progresses.
type NodeHook func(cycle uint64) bool

// Node is one machine plus its NIC and its endpoint state on the fabric.
type Node struct {
	M   *sim.Machine
	NIC *device.NIC

	name      string
	idx       int
	delivered int // packets already pumped off the NIC

	hook     NodeHook
	hookDone bool

	// inbox holds this node's inbound flights ordered by (due, seq):
	// [0:enqPos) fully delivered, [enqPos:arrPos) arrived but staging,
	// [arrPos:) still on the wire. Only the owning node goroutine touches
	// the positions during a window; the coordinator appends at barriers.
	inbox  []flight
	arrPos int
	enqPos int

	// outbox collects packets pumped off the NIC during a window, routed
	// by the coordinator at the next barrier.
	outbox []departure

	// tlog defers tracer mutations made during a window (rx drain hooks,
	// arrive/enqueue stamps) for single-threaded replay at the barrier.
	tlog []traceEvent

	// frozen marks a node the scheduler no longer ticks: its CPU halted
	// with everything settled (and no live hook), or it faulted.
	frozen bool
	err    error

	// down marks a node the cluster watchdog declared wedged and removed
	// from service under graceful degradation: it is no longer ticked and
	// packets routed to it are dropped (cluster/degraded_drops).
	down bool
}

// Name returns the node's cluster-local name ("n0", "n1", … — or "a"/"b"
// for the NewPair compatibility constructor).
func (n *Node) Name() string { return n.name }

// Index returns the node's position in the topology.
func (n *Node) Index() int { return n.idx }

// flight is one packet scheduled onto a link, waiting out its due times
// in the destination's inbox.
type flight struct {
	words   []uint64
	due     uint64 // cluster cycle the wire latency elapses (wire_arrive)
	dueEnq  uint64 // cluster cycle the words enter the RX queue (rx_enqueue)
	traceID uint64 // ctrace span, 0 when untraced
	seq     uint64 // global routing sequence — total delivery order tiebreak
}

// departure is one packet pumped off a NIC during a window, not yet
// routed: the coordinator turns it into a flight at the barrier.
type departure struct {
	cycle   uint64 // pump cycle (wire_depart stamp)
	dest    int    // explicit destination from RegTxDest, -1 = default route
	size    uint32
	jid     uint64 // sender-side descriptor journey ID, 0 untraced
	fifoBus uint64 // NIC bus-cycle push stamp (fallback when journey evicted)
	words   []uint64
}

// traceEvent is one deferred tracer mutation.
type traceEvent struct {
	kind  uint8
	id    uint64
	cycle uint64
}

const (
	evArrive uint8 = iota
	evEnqueue
	evDrain
)

// Cluster is N nodes and the fabric between them.
type Cluster struct {
	nodes []*Node
	cfg   Config
	cycle uint64
	links [][]*link
	route []int // default destination per node, -1 = must steer

	seq        uint64 // flight sequence numbers (total routing order)
	routeDrops uint64 // packets with no usable destination
	linkDrops  uint64 // packets refused by a full link queue

	// Wire fault-injection state; nil when unattached. Consumed only at
	// the routing barrier, in the global (pump cycle, node index, push
	// order) routing order, so the schedule is engine-independent.
	wfaults          *fault.Injector
	faultDrops       uint64 // packets dropped by WireDrop
	faultDups        uint64 // duplicate deliveries injected by WireDup
	faultDelayCycles uint64 // extra propagation cycles injected by WireDelay
	outageDrops      uint64 // packets dropped inside link outage windows

	// Cluster watchdog state (see watchdog.go); wdWindow 0 = disabled.
	wdWindow      uint64
	wdDegrade     bool
	wdLast        []uint64 // last observed retired-instruction count per node
	wdMark        []uint64 // cluster cycle of last observed progress per node
	nodesDown     uint64   // nodes removed from service by degradation
	degradedDrops uint64   // packets dropped because their destination is down

	// Optional observability state; nil/zero when unattached.
	tracer     *ctrace.Tracer
	reg        *counters.Registry // cluster-level registry (ctrace hists, wire counters)
	countersOn bool
	telem      *telemetry.Streamer
	telemEvery uint64
	lastPub    uint64
	rec        *rec.Recorder
	recEvery   uint64
	lastRoll   uint64
}

// New builds an N-node cluster (cfg.Nodes, default 2) wired per
// cfg.Topology. Nodes are named "n0" … "n<N-1>". The caller maps I/O
// space and loads programs on each node's machine.
func New(cfg Config) (*Cluster, error) {
	if cfg.Nodes == 0 {
		cfg.Nodes = 2
	}
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("cluster: invalid node count %d", cfg.Nodes)
	}
	names := make([]string, cfg.Nodes)
	for i := range names {
		names[i] = fmt.Sprintf("n%d", i)
	}
	return newNamed(cfg, names)
}

// NewPair is the two-node compatibility constructor: the classic "a"/"b"
// pair joined by one wire, matching the historical two-node cluster (and
// its trace dumps) exactly.
func NewPair(cfg Config) (*Cluster, error) {
	cfg.Nodes = 2
	return newNamed(cfg, []string{"a", "b"})
}

func newNamed(cfg Config, names []string) (*Cluster, error) {
	c := &Cluster{cfg: cfg}
	for i, name := range names {
		m, err := sim.New(cfg.Node)
		if err != nil {
			return nil, err
		}
		nic := device.NewNIC(cfg.NIC, NICBase)
		if err := m.AddDevice(NICBase, device.RegionSize, "nic-"+name, nic, nic); err != nil {
			return nil, err
		}
		c.nodes = append(c.nodes, &Node{M: m, NIC: nic, name: name, idx: i})
	}
	c.links, c.route = buildLinks(cfg)
	return c, nil
}

// MapIO maps the standard NIC layout into a node's PID-0 address space:
// registers uncached, packet buffer combining (csb) or uncached.
func (n *Node) MapIO(csb bool) {
	n.M.MapRange(NICBase, device.PacketBufBase, mem.KindUncached)
	kind := mem.KindUncached
	if csb {
		kind = mem.KindCombining
	}
	n.M.MapRange(NICBase+device.PacketBufBase, device.PacketBufSize, kind)
}

// Cycle returns the global cluster cycle.
func (c *Cluster) Cycle() uint64 { return c.cycle }

// NumNodes returns the node count.
func (c *Cluster) NumNodes() int { return len(c.nodes) }

// Node returns node i.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Nodes returns all nodes in topology order. The returned slice is the
// cluster's own — treat it as read-only.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// SetNodeHook installs a per-cycle host-side driver on node i (see
// NodeHook). Install before running.
func (c *Cluster) SetNodeHook(i int, h NodeHook) {
	c.nodes[i].hook = h
	c.nodes[i].hookDone = false
}

// hookActive reports whether the node has a live hook.
func (n *Node) hookActive() bool { return n.hook != nil && !n.hookDone }

// ---- observability attachment ----

// AttachCounters creates (once) the cluster-level counter registry and
// registers the fabric counters — packets in flight, wire occupancy,
// routing/link drops, and each node's RX-queue high-water mark — in every
// node's PR 5 registry (so they surface in per-node reports and watchdog
// dumps) as well as the cluster registry (the telemetry "cluster" node).
func (c *Cluster) AttachCounters() *counters.Registry {
	if c.countersOn {
		return c.reg
	}
	c.countersOn = true
	c.reg = counters.NewRegistry()
	for _, n := range c.nodes {
		r := n.M.AttachCounters()
		c.registerWireCounters(r)
		nic := n.NIC
		r.Counter("cluster/rx_highwater", func() uint64 { return uint64(nic.RxHighWater()) })
	}
	c.registerWireCounters(c.reg)
	c.reg.Counter("cluster/nodes", func() uint64 { return uint64(len(c.nodes)) })
	for _, n := range c.nodes {
		nic := n.NIC
		c.reg.Counter("cluster/"+n.name+"/rx_highwater", func() uint64 { return uint64(nic.RxHighWater()) })
		c.reg.Counter("cluster/"+n.name+"/packets_sent", func() uint64 { return uint64(len(nic.Packets())) })
		c.reg.Counter("cluster/"+n.name+"/rx_pending", func() uint64 { return uint64(nic.RxPending()) })
	}
	return c.reg
}

// registerWireCounters registers the shared fabric-state counters in r.
// The closures walk per-node inboxes; they are only read at barriers or
// after a run, when the node goroutines are parked.
func (c *Cluster) registerWireCounters(r *counters.Registry) {
	r.Counter("cluster/packets_in_flight", func() uint64 {
		var n uint64
		for _, nd := range c.nodes {
			n += uint64(len(nd.inbox) - nd.enqPos)
		}
		return n
	})
	r.Counter("cluster/wire_occupancy_words", func() uint64 {
		var words uint64
		for _, nd := range c.nodes {
			for i := nd.arrPos; i < len(nd.inbox); i++ {
				words += uint64(len(nd.inbox[i].words))
			}
		}
		return words
	})
	r.Counter("cluster/route_drops", func() uint64 { return c.routeDrops })
	r.Counter("cluster/link_drops", func() uint64 { return c.linkDrops })
	// Per-directed-link breakdown of link_drops, so one saturated or
	// faulted link is attributable in dumps and csbtop.
	for i := range c.links {
		for j := range c.links[i] {
			if lk := c.links[i][j]; lk != nil {
				r.Counter("cluster/link_drops/"+c.nodes[i].name+"->"+c.nodes[j].name,
					func() uint64 { return lk.drops })
			}
		}
	}
	// Wire fault injection and graceful degradation. Registered
	// unconditionally (zero when no injector/watchdog is attached) so
	// snapshots have a stable shape.
	r.Counter("cluster/fault_drops", func() uint64 { return c.faultDrops })
	r.Counter("cluster/fault_dups", func() uint64 { return c.faultDups })
	r.Counter("cluster/fault_delay_cycles", func() uint64 { return c.faultDelayCycles })
	r.Counter("cluster/outage_drops", func() uint64 { return c.outageDrops })
	r.Counter("cluster/nodes_down", func() uint64 { return c.nodesDown })
	r.Counter("cluster/degraded_drops", func() uint64 { return c.degradedDrops })
}

// AttachWireFaults creates the cluster's wire fault injector from cfg
// (only the cluster-scope wire classes are consumed; machine classes in
// cfg are ignored — attach those per node with sim.Machine.AttachFaults).
// The injector draws at the single-threaded routing barrier in the global
// routing order, so RunParallel stays byte-identical to RunSequentialRef
// under any seed. Attach before running.
func (c *Cluster) AttachWireFaults(cfg fault.Config) (*fault.Injector, error) {
	if c.wfaults != nil {
		return nil, fmt.Errorf("cluster: wire faults already attached")
	}
	if !cfg.WireEnabled() {
		return nil, fmt.Errorf("cluster: wire fault config enables no wire class (want WireDrop/WireDup/WireDelay/LinkOutage)")
	}
	inj, err := fault.New(cfg)
	if err != nil {
		return nil, err
	}
	c.wfaults = inj
	return inj, nil
}

// WireFaults returns the attached wire fault injector, or nil.
func (c *Cluster) WireFaults() *fault.Injector { return c.wfaults }

// Registry returns the cluster-level counter registry (nil until
// AttachCounters or AttachTrace).
func (c *Cluster) Registry() *counters.Registry { return c.reg }

// AttachTrace enables cross-node distributed tracing: per-node journey
// tracers on every machine (jcfg), the wire-span tracer (tcfg) whose
// histograms land in the cluster registry, and the NIC RX drain hooks.
// Every node's clock offset is aligned at zero: the lookahead barrier
// keeps all node clocks within one window of the cluster cycle, and all
// stamps are taken in cluster cycles, so the domains coincide exactly —
// SetAlign stays the single point where a skewed fabric would be
// re-aligned. Attach before running.
func (c *Cluster) AttachTrace(jcfg journey.Config, tcfg ctrace.Config) (*ctrace.Tracer, error) {
	if c.tracer != nil {
		return c.tracer, nil
	}
	c.AttachCounters()
	tr, err := ctrace.New(tcfg, c.reg)
	if err != nil {
		return nil, err
	}
	for _, n := range c.nodes {
		if _, err := n.M.AttachJourneys(jcfg); err != nil {
			return nil, err
		}
		node := n
		// Drain stamps are deferred to the node's event log and replayed
		// at the barrier: the hook fires on the node's goroutine under the
		// parallel engine, where the shared tracer must not be touched.
		//csb:worker RX drain hook fires on the node goroutine inside a window
		n.NIC.SetRxDrainHook(func(id uint64) {
			node.logEvent(evDrain, id, node.M.Cycle())
		})
		tr.SetAlign(n.name, 0)
	}
	c.tracer = tr
	return tr, nil
}

// Trace returns the attached wire tracer, or nil.
func (c *Cluster) Trace() *ctrace.Tracer { return c.tracer }

// AttachTelemetry registers every node plus the cluster registry with the
// streamer and publishes one frame every `every` cluster cycles while the
// cluster runs (under the windowed engine, at the first barrier past each
// interval). Attach before running; serve the streamer separately
// (telemetry.Streamer.Serve).
func (c *Cluster) AttachTelemetry(s *telemetry.Streamer, every uint64) error {
	if every == 0 {
		return fmt.Errorf("cluster: telemetry interval must be positive")
	}
	if c.telem != nil {
		return fmt.Errorf("cluster: telemetry already attached")
	}
	c.AttachCounters()
	for _, n := range c.nodes {
		if err := s.AddNode(n.name, n.M.Counters()); err != nil {
			return err
		}
	}
	if err := s.AddNode("cluster", c.reg); err != nil {
		return err
	}
	c.telem = s
	c.telemEvery = every
	return nil
}

// AttachRecorder attaches a flight recorder: every node's registry plus
// the cluster registry become recorder sources, and the cluster rolls a
// window every recorder-cadence cycles at the single-threaded barrier
// (so recordings of parallel runs are byte-identical to sequential
// ones). Cluster events — watchdog fires, node-down transitions, wire
// outage windows — land in the recording's event log, and active SLO
// alerts surface in telemetry frames when a streamer is also attached.
// Attach before running, after any loadgen/workload registration that
// creates counters.
func (c *Cluster) AttachRecorder(r *rec.Recorder) error {
	if c.rec != nil {
		return fmt.Errorf("cluster: recorder already attached")
	}
	c.AttachCounters()
	for _, n := range c.nodes {
		if err := r.AddSource(n.name, n.M.Counters()); err != nil {
			return err
		}
	}
	if err := r.AddSource("cluster", c.reg); err != nil {
		return err
	}
	c.rec = r
	c.recEvery = r.Every()
	return nil
}

// Recorder returns the attached flight recorder, or nil.
func (c *Cluster) Recorder() *rec.Recorder { return c.rec }

// startObs seals the recorder's series tables at run start (all counter
// registration has happened by then — sources register lazily right up
// to the first window) and wires active SLO alerts into telemetry
// frames. Idempotent; called at the top of every engine's run loop.
//
//csb:barrier reads every source registry; all node goroutines are parked
func (c *Cluster) startObs() {
	if c.rec == nil {
		return
	}
	c.rec.Start(c.cycle)
	c.lastRoll = c.cycle
	if c.telem != nil {
		r := c.rec
		c.telem.SetAlerts(func() []telemetry.Alert {
			active := r.ActiveAlerts()
			if len(active) == 0 {
				return nil
			}
			out := make([]telemetry.Alert, len(active))
			for i, a := range active {
				out[i] = telemetry.Alert{Rule: a.Rule, Series: a.Series, Since: a.Since, Value: a.Value}
			}
			return out
		})
	}
}

// maybeRoll closes a recorder window once per cadence interval. Runs
// before maybePublish so a frame published at the same barrier already
// reflects this window's SLO state.
//
//csb:barrier reads every source registry; all node goroutines are parked
func (c *Cluster) maybeRoll() {
	if c.rec != nil && c.cycle-c.lastRoll >= c.recEvery {
		c.lastRoll = c.cycle
		c.rec.Roll(c.cycle)
	}
}

// recEvent logs one cluster event into the recording (no-op when no
// recorder is attached). All call sites run at barriers in the global
// deterministic order, so event logs are engine-independent.
//
//csb:barrier appends to the recorder's shared event log
func (c *Cluster) recEvent(cycle uint64, kind, node string, value float64) {
	if c.rec != nil {
		c.rec.Event(cycle, kind, node, "", value)
	}
}

// flushObs drains buffered observability state on any Run exit — every
// node's partial metrics windows, the deferred trace logs, the
// recorder's final partial window plus footer, and one final telemetry
// frame — so a wedged or faulted node still yields a partial dump,
// mirroring the single-node flushObs abort behavior.
//
//csb:barrier drains every node's deferred state; all node goroutines are parked
func (c *Cluster) flushObs() {
	c.drainTraceLogs()
	for _, n := range c.nodes {
		n.M.FlushObs()
	}
	if c.rec != nil {
		c.rec.Flush(c.cycle)
	}
	if c.telem != nil {
		c.telem.Publish(c.cycle)
	}
}

// ---- per-node window mechanics (shared by both engines) ----

// logEvent defers one tracer mutation to the node's event log.
//
//csb:hotpath
func (n *Node) logEvent(kind uint8, id, cycle uint64) {
	n.tlog = append(n.tlog, traceEvent{kind: kind, id: id, cycle: cycle}) //csb:alloc-ok amortized log growth, truncated each barrier
}

// pump picks up newly transmitted packets from the node's NIC and stages
// them in its outbox for routing at the next barrier.
func (n *Node) pump(cycle uint64) {
	pkts := n.NIC.Packets()
	for ; n.delivered < len(pkts); n.delivered++ {
		p := &pkts[n.delivered]
		words := make([]uint64, 0, (len(p.Data)+7)/8)
		for i := 0; i < len(p.Data); i += 8 {
			var w uint64
			for k := 7; k >= 0; k-- {
				idx := i + k
				var b byte
				if idx < len(p.Data) {
					b = p.Data[idx]
				}
				w = w<<8 | uint64(b)
			}
			words = append(words, w)
		}
		n.outbox = append(n.outbox, departure{
			cycle:   cycle,
			dest:    p.Dest,
			size:    uint32(len(p.Data)),
			jid:     p.JID,
			fifoBus: p.FIFOPush,
			words:   words,
		})
	}
}

// applyDue advances the node's inbox to `cycle`: flights whose wire
// latency elapsed are stamped wire_arrive, and flights whose staging
// delay also elapsed enter the NIC RX queue (rx_enqueue). Stamps use the
// flights' own due cycles, so catching a frozen node up over a whole
// window is exact.
//
//csb:hotpath
func (n *Node) applyDue(cycle uint64) {
	for n.arrPos < len(n.inbox) && n.inbox[n.arrPos].due <= cycle {
		f := &n.inbox[n.arrPos]
		if f.traceID != 0 {
			n.logEvent(evArrive, f.traceID, f.due)
		}
		n.arrPos++
	}
	for n.enqPos < n.arrPos && n.inbox[n.enqPos].dueEnq <= cycle {
		f := &n.inbox[n.enqPos]
		n.NIC.DeliverWords(f.traceID, f.words)
		if f.traceID != 0 {
			n.logEvent(evEnqueue, f.traceID, f.dueEnq)
		}
		f.words = nil
		n.enqPos++
	}
}

// ---- barrier mechanics (single-threaded) ----

// drainTraceLogs replays every node's deferred tracer mutations into the
// shared tracer, in node-index order. Arrive/enqueue/drain recordings
// commute across packets (independent span stamps, order-free histogram
// and counter updates), so replay order between nodes cannot affect the
// final trace state — within a node the log is chronological.
//
//csb:barrier replays deferred tracer mutations into the shared tracer
func (c *Cluster) drainTraceLogs() {
	if c.tracer == nil {
		return
	}
	for _, n := range c.nodes {
		for i := range n.tlog {
			ev := &n.tlog[i]
			switch ev.kind {
			case evArrive:
				c.tracer.PacketArrived(ev.id, ev.cycle)
			case evEnqueue:
				c.tracer.PacketEnqueued(ev.id, ev.cycle)
			case evDrain:
				c.tracer.PacketDrained(ev.id, ev.cycle)
			}
		}
		n.tlog = n.tlog[:0]
	}
}

// routeAll drains every node's outbox in one global deterministic order —
// (pump cycle, node index, push order) — turning departures into flights
// scheduled on links and inserted into destination inboxes.
//
//csb:barrier mutates every node's inbox and the shared link state
func (c *Cluster) routeAll() {
	pos := make([]int, len(c.nodes))
	touched := false
	for {
		best := -1
		for i, n := range c.nodes {
			if pos[i] >= len(n.outbox) {
				continue
			}
			if best == -1 || n.outbox[pos[i]].cycle < c.nodes[best].outbox[pos[best]].cycle {
				best = i
			}
		}
		if best == -1 {
			break
		}
		c.routeOne(best, &c.nodes[best].outbox[pos[best]])
		pos[best]++
		touched = true
	}
	for _, n := range c.nodes {
		n.outbox = n.outbox[:0]
	}
	if !touched {
		return
	}
	// Restore (due, seq) order on every inbox tail that may have received
	// out-of-order inserts (bandwidth queueing can reorder dues).
	for _, n := range c.nodes {
		tail := n.inbox[n.arrPos:]
		if len(tail) > 1 {
			sort.Slice(tail, func(a, b int) bool {
				if tail[a].due != tail[b].due {
					return tail[a].due < tail[b].due
				}
				return tail[a].seq < tail[b].seq
			})
		}
	}
}

// routeOne schedules one departure onto its link. Wire faults are drawn
// here — and only here — in the global routing order: outage window,
// drop, extra delay, then duplication, a fixed draw sequence per packet
// so the schedule is a pure function of (fault seed, traffic).
//
//csb:barrier writes the destination node's inbox and link queues
func (c *Cluster) routeOne(from int, d *departure) {
	dest := d.dest
	if dest < 0 {
		dest = c.route[from]
	}
	if dest < 0 || dest >= len(c.nodes) || dest == from || c.links[from][dest] == nil {
		c.routeDrops++
		return
	}
	if c.nodes[dest].down {
		// Destination removed from service by the watchdog: degraded-mode
		// drop, surfaced separately from fault/queue drops.
		c.degradedDrops++
		c.dropSpan(from, dest, d)
		return
	}
	lk := c.links[from][dest]
	if inj := c.wfaults; inj != nil {
		if lk.outageUntil <= d.cycle {
			if n := inj.LinkOutage(); n > 0 {
				lk.outageUntil = d.cycle + uint64(n)
				c.recEvent(d.cycle, "link_outage", c.nodes[from].name+"->"+c.nodes[dest].name, float64(n))
			}
		}
		if d.cycle < lk.outageUntil {
			c.outageDrops++
			c.dropSpan(from, dest, d)
			return
		}
		if inj.DropPacket() {
			c.faultDrops++
			c.dropSpan(from, dest, d)
			return
		}
	}
	if lk.Depth > 0 {
		// Prune arrivals, then check the bound.
		keep := lk.pending[:0]
		for _, due := range lk.pending {
			if due > d.cycle {
				keep = append(keep, due)
			}
		}
		lk.pending = keep
		if len(lk.pending) >= lk.Depth {
			c.linkDrops++
			lk.drops++
			return
		}
	}
	dup := false
	extra := uint64(0)
	if inj := c.wfaults; inj != nil {
		extra = uint64(inj.PacketDelay())
		c.faultDelayCycles += extra
		dup = inj.DupPacket()
	}
	start := d.cycle
	var due uint64
	if lk.CyclesPerWord > 0 {
		if lk.freeAt > start {
			start = lk.freeAt
		}
		ser := lk.CyclesPerWord * uint64(len(d.words))
		lk.freeAt = start + ser
		due = start + ser + lk.Latency
	} else {
		due = start + lk.Latency
	}
	due += extra
	if lk.Depth > 0 {
		lk.pending = append(lk.pending, due)
	}
	c.seq++
	f := flight{
		words:  d.words,
		due:    due,
		dueEnq: due + c.cfg.RxEnqueueDelay,
		seq:    c.seq,
	}
	if c.tracer != nil {
		f.traceID = c.openSpan(from, dest, d)
	}
	c.nodes[dest].inbox = append(c.nodes[dest].inbox, f)
	if dup {
		// The duplicate rides one wire latency behind the original,
		// re-serializing through the link front; it is subject to the
		// same queue bound, and is never traced (the span belongs to the
		// original delivery).
		c.faultDups++
		if lk.Depth > 0 && len(lk.pending) >= lk.Depth {
			c.linkDrops++
			lk.drops++
			return
		}
		start := due
		var due2 uint64
		if lk.CyclesPerWord > 0 {
			if lk.freeAt > start {
				start = lk.freeAt
			}
			ser := lk.CyclesPerWord * uint64(len(d.words))
			lk.freeAt = start + ser
			due2 = start + ser + lk.Latency
		} else {
			due2 = start + lk.Latency
		}
		if lk.Depth > 0 {
			lk.pending = append(lk.pending, due2)
		}
		c.seq++
		c.nodes[dest].inbox = append(c.nodes[dest].inbox, flight{
			words:  d.words,
			due:    due2,
			dueEnq: due2 + c.cfg.RxEnqueueDelay,
			seq:    c.seq,
		})
	}
}

// dropSpan closes the trace span of a packet the fabric discarded
// (outage, injected drop, or degraded destination) so partial dumps show
// the loss instead of leaking an open span.
//
//csb:barrier stamps the shared wire tracer
func (c *Cluster) dropSpan(from, dest int, d *departure) {
	if c.tracer == nil {
		return
	}
	id := c.openSpan(from, dest, d)
	c.tracer.PacketDropped(id, d.cycle)
}

// openSpan starts a wire-trace span for a freshly routed packet, grafting
// the sender-side NIC stamps from the sender's journey tracer (the packet
// carries its descriptor journey ID). When the journey has been evicted —
// or the sender is untraced — the NIC's bus-cycle stamps are scaled to
// the CPU-cycle domain as a fallback.
//
//csb:barrier reads the sender's journey tracer and stamps the shared wire tracer
func (c *Cluster) openSpan(from, dest int, d *departure) uint64 {
	var fifoPush, txStart uint64
	if jt := c.nodes[from].M.Journeys(); jt != nil && d.jid != 0 {
		if j, ok := jt.Lookup(journey.KindNICDesc, d.jid); ok {
			fifoPush = j.T[journey.HopStart]
			txStart = j.T[journey.HopDepart]
		}
	}
	if fifoPush == 0 {
		fifoPush = d.fifoBus * uint64(c.cfg.Node.Ratio)
	}
	if txStart == 0 {
		txStart = fifoPush
	}
	return c.tracer.PacketDeparted(c.nodes[from].name, c.nodes[dest].name, d.size,
		d.jid, fifoPush, txStart, d.cycle)
}

// compactInboxes releases fully delivered inbox prefixes.
//
//csb:barrier rewrites inbox slices the node goroutines index into
func (c *Cluster) compactInboxes() {
	for _, n := range c.nodes {
		switch {
		case n.enqPos == len(n.inbox):
			n.inbox = n.inbox[:0]
			n.arrPos, n.enqPos = 0, 0
		case n.enqPos >= 1024:
			kept := copy(n.inbox, n.inbox[n.enqPos:])
			n.inbox = n.inbox[:kept]
			n.arrPos -= n.enqPos
			n.enqPos = 0
		}
	}
}

// maybePublish emits a telemetry frame once per cadence interval.
//
//csb:barrier publishes to the shared telemetry streamer
func (c *Cluster) maybePublish() {
	if c.telem != nil && c.cycle-c.lastPub >= c.telemEvery {
		c.lastPub = c.cycle
		c.telem.Publish(c.cycle)
	}
}

// ---- lockstep engine ----

// Tick advances every node one CPU cycle and moves packets across the
// fabric. This is the classic lockstep engine: exact at any link latency
// (including zero), one cycle per call.
func (c *Cluster) Tick() {
	next := c.cycle + 1
	for _, n := range c.nodes {
		if n.hookActive() {
			if !n.hook(next) {
				n.hookDone = true
			}
		}
		if !n.down {
			n.M.Tick()
		}
	}
	c.cycle = next
	c.drainTraceLogs()
	for _, n := range c.nodes {
		n.pump(next)
	}
	c.routeAll()
	for _, n := range c.nodes {
		n.applyDue(next)
	}
	c.drainTraceLogs()
	c.compactInboxes()
	c.maybeRoll()
	c.maybePublish()
}

// Run advances the cluster in lockstep until every node halts (or
// maxCycles elapse). Every exit path — success, fault, watchdog, limit —
// flushes observability state first, so post-mortems of a wedged or
// faulted node see everything up to the abort and recordings always
// carry their final window and footer.
func (c *Cluster) Run(maxCycles uint64) error {
	c.startObs()
	for i := uint64(0); i < maxCycles; i++ {
		allHalted := true
		for _, n := range c.nodes {
			if n.down {
				continue // removed from service; never halts, never errs
			}
			if err := n.M.CPU.Err(); err != nil {
				c.flushObs()
				return fmt.Errorf("cluster: node %s: %w", n.name, err)
			}
			if !n.M.CPU.Halted() {
				allHalted = false
			}
		}
		if allHalted {
			c.flushObs()
			return nil
		}
		c.Tick()
		if err := c.checkWatchdog(); err != nil {
			return err // checkWatchdog flushed observability state
		}
	}
	c.flushObs()
	return fmt.Errorf("cluster: cycle limit %d reached (%s)", maxCycles, c.haltSummary())
}

// haltSummary renders each node's halt state for limit-exceeded errors.
func (c *Cluster) haltSummary() string {
	s := ""
	for i, n := range c.nodes {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s halted=%v", n.name, n.M.CPU.Halted())
	}
	return s
}
