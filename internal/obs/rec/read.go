// Recording reader: parses the length-prefixed frame stream back into a
// Recording, tolerating a truncated tail (an aborted writer leaves a
// valid prefix), plus the tolerance-aware Diff used for same-seed
// regression checks and parallel-vs-sequential identity tests.
package rec

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
)

// Recording is a fully parsed recording file.
type Recording struct {
	Version   int
	Every     uint64
	Start     uint64 // cycle the recorder sealed (header "c")
	End       uint64 // footer cycle (0 if not cleanly closed)
	Sources   []string
	SLOSpecs  []string
	CtrNames  []string
	HistNames []string
	Windows   []Window
	Events    []Event
	Clean     bool // footer frame present
	Truncated bool // trailing partial frame dropped
}

// frameJSON is the union of every frame kind's fields.
type frameJSON struct {
	K       string      `json:"k"`
	V       int         `json:"v"`
	Every   uint64      `json:"every"`
	C       uint64      `json:"c"`
	Sources []string    `json:"sources"`
	SLO     []string    `json:"slo"`
	CtrN    []string    `json:"ctrn"`
	HistN   []string    `json:"histn"`
	I       uint64      `json:"i"`
	C0      uint64      `json:"c0"`
	C1      uint64      `json:"c1"`
	Ctr     [][2]uint64 `json:"ctr"`
	Hist    [][7]uint64 `json:"hist"`
	Ev      string      `json:"ev"`
	N       string      `json:"n"`
	R       string      `json:"r"`
	Val     float64     `json:"val"`
	Windows uint64      `json:"windows"`
	Events  uint64      `json:"events"`
}

// ReadFile parses a recording file.
func ReadFile(path string) (*Recording, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rc, err := Read(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rc, nil
}

// Read parses recording bytes. A malformed or incomplete trailing frame
// marks the recording Truncated and is dropped; everything before it is
// returned. An error is returned only when no valid header exists.
func Read(data []byte) (*Recording, error) {
	rc := &Recording{}
	sawHeader := false
	pos := 0
	for pos < len(data) {
		// "<len>\n<json>\n"
		nl := -1
		for i := pos; i < len(data); i++ {
			if data[i] == '\n' {
				nl = i
				break
			}
		}
		if nl < 0 {
			rc.Truncated = true
			break
		}
		flen, err := strconv.Atoi(string(data[pos:nl]))
		if err != nil || flen < 0 || nl+1+flen+1 > len(data) || data[nl+1+flen] != '\n' {
			rc.Truncated = true
			break
		}
		doc := data[nl+1 : nl+1+flen]
		pos = nl + 1 + flen + 1

		var f frameJSON
		if err := json.Unmarshal(doc, &f); err != nil {
			rc.Truncated = true
			break
		}
		switch f.K {
		case "h":
			if sawHeader {
				return nil, fmt.Errorf("rec: duplicate header frame")
			}
			if f.V != FormatVersion {
				return nil, fmt.Errorf("rec: unsupported format version %d (want %d)", f.V, FormatVersion)
			}
			sawHeader = true
			rc.Version = f.V
			rc.Every = f.Every
			rc.Start = f.C
			rc.Sources = f.Sources
			rc.SLOSpecs = f.SLO
			rc.CtrNames = f.CtrN
			rc.HistNames = f.HistN
		case "w":
			if !sawHeader {
				return nil, fmt.Errorf("rec: window frame before header")
			}
			if len(f.Ctr) != len(rc.CtrNames) || len(f.Hist) != len(rc.HistNames) {
				return nil, fmt.Errorf("rec: window %d series count mismatch", f.I)
			}
			w := Window{
				Index: f.I, C0: f.C0, C1: f.C1,
				CtrEnd:   make([]uint64, len(f.Ctr)),
				CtrDelta: make([]uint64, len(f.Ctr)),
				Hist:     make([]HistWindow, len(f.Hist)),
			}
			for i, p := range f.Ctr {
				w.CtrEnd[i], w.CtrDelta[i] = p[0], p[1]
			}
			for i, h := range f.Hist {
				w.Hist[i] = HistWindow{N: h[0], Sum: h[1], Min: h[2], P50: h[3], P95: h[4], P99: h[5], Max: h[6]}
			}
			rc.Windows = append(rc.Windows, w)
		case "e":
			if !sawHeader {
				return nil, fmt.Errorf("rec: event frame before header")
			}
			rc.Events = append(rc.Events, Event{Cycle: f.C, Kind: f.Ev, Node: f.N, Rule: f.R, Value: f.Val})
		case "f":
			rc.Clean = true
			rc.End = f.C
		default:
			return nil, fmt.Errorf("rec: unknown frame kind %q", f.K)
		}
	}
	if !sawHeader {
		return nil, fmt.Errorf("rec: no header frame (not a recording?)")
	}
	return rc, nil
}

// WindowAt returns the window covering the given cycle (C0 < cycle <=
// C1), or the nearest one when the cycle falls outside the recording;
// ok=false only when there are no windows at all.
func (rc *Recording) WindowAt(cycle uint64) (*Window, bool) {
	if len(rc.Windows) == 0 {
		return nil, false
	}
	i := sort.Search(len(rc.Windows), func(i int) bool { return rc.Windows[i].C1 >= cycle })
	if i == len(rc.Windows) {
		i = len(rc.Windows) - 1
	}
	return &rc.Windows[i], true
}

// CounterIndex returns the series index of a counter name, or -1.
func (rc *Recording) CounterIndex(name string) int { return indexOf(rc.CtrNames, name) }

// HistIndex returns the series index of a histogram name, or -1.
func (rc *Recording) HistIndex(name string) int { return indexOf(rc.HistNames, name) }

// maxDiffs caps Diff output so two wildly different recordings don't
// produce megabytes of noise.
const maxDiffs = 50

// Diff compares two recordings. tol is a relative tolerance applied to
// every numeric comparison (0 = exact): values a,b differ when
// |a-b| > tol*max(|a|,|b|). Returns human-readable differences, empty
// when the recordings match — the same-seed regression contract.
func Diff(a, b *Recording, tol float64) []string {
	var d []string
	add := func(format string, args ...interface{}) {
		if len(d) < maxDiffs {
			d = append(d, fmt.Sprintf(format, args...))
		} else if len(d) == maxDiffs {
			d = append(d, "... (further differences suppressed)")
		}
	}
	if !eqStrings(a.CtrNames, b.CtrNames) {
		add("counter series tables differ (%d vs %d series)", len(a.CtrNames), len(b.CtrNames))
		return d
	}
	if !eqStrings(a.HistNames, b.HistNames) {
		add("histogram series tables differ (%d vs %d series)", len(a.HistNames), len(b.HistNames))
		return d
	}
	if a.Every != b.Every {
		add("window cadence differs: %d vs %d", a.Every, b.Every)
	}
	if len(a.Windows) != len(b.Windows) {
		add("window count differs: %d vs %d", len(a.Windows), len(b.Windows))
	}
	n := len(a.Windows)
	if len(b.Windows) < n {
		n = len(b.Windows)
	}
	near := func(x, y uint64) bool {
		if x == y {
			return true
		}
		if tol <= 0 {
			return false
		}
		fx, fy := float64(x), float64(y)
		diff := fx - fy
		if diff < 0 {
			diff = -diff
		}
		m := fx
		if fy > m {
			m = fy
		}
		return diff <= tol*m
	}
	for wi := 0; wi < n; wi++ {
		wa, wb := &a.Windows[wi], &b.Windows[wi]
		if wa.C0 != wb.C0 || wa.C1 != wb.C1 {
			add("window %d bounds differ: (%d,%d] vs (%d,%d]", wi, wa.C0, wa.C1, wb.C0, wb.C1)
			continue
		}
		for i := range wa.CtrEnd {
			if !near(wa.CtrEnd[i], wb.CtrEnd[i]) || !near(wa.CtrDelta[i], wb.CtrDelta[i]) {
				add("window %d (cycle %d) counter %s: end %d/%d delta %d/%d",
					wi, wa.C1, a.CtrNames[i], wa.CtrEnd[i], wb.CtrEnd[i], wa.CtrDelta[i], wb.CtrDelta[i])
			}
		}
		for i := range wa.Hist {
			ha, hb := &wa.Hist[i], &wb.Hist[i]
			if !near(ha.N, hb.N) || !near(ha.Sum, hb.Sum) || !near(ha.Min, hb.Min) ||
				!near(ha.P50, hb.P50) || !near(ha.P95, hb.P95) || !near(ha.P99, hb.P99) || !near(ha.Max, hb.Max) {
				add("window %d (cycle %d) histogram %s: n=%d/%d p50=%d/%d p99=%d/%d max=%d/%d",
					wi, wa.C1, a.HistNames[i], ha.N, hb.N, ha.P50, hb.P50, ha.P99, hb.P99, ha.Max, hb.Max)
			}
		}
	}
	if len(a.Events) != len(b.Events) {
		add("event count differs: %d vs %d", len(a.Events), len(b.Events))
	}
	ne := len(a.Events)
	if len(b.Events) < ne {
		ne = len(b.Events)
	}
	for i := 0; i < ne; i++ {
		ea, eb := a.Events[i], b.Events[i]
		if ea != eb {
			add("event %d differs: cycle %d %s %s vs cycle %d %s %s",
				i, ea.Cycle, ea.Kind, ea.Node, eb.Cycle, eb.Kind, eb.Node)
		}
	}
	return d
}

// eqStrings reports element-wise equality.
func eqStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
