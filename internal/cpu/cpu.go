package cpu

import (
	"csbsim/internal/cache"
	"csbsim/internal/core"
	"csbsim/internal/isa"
	"csbsim/internal/mem"
	"csbsim/internal/obs"
	"csbsim/internal/obs/counters"
	"csbsim/internal/uncbuf"
)

// StallCause re-exports the CPI-stack bucket type for hook signatures.
type StallCause = obs.StallCause

// CPU is the out-of-order core. It is wired to the cache hierarchy, the
// uncached buffer, the conditional store buffer and physical memory by the
// machine (internal/sim) and advanced one cycle at a time with Tick.
type CPU struct {
	cfg  Config
	arch ArchState

	hier *cache.Hierarchy
	ub   *uncbuf.Buffer
	csb  *core.CSB
	ram  *mem.Memory
	tlb  *mem.TLB
	pt   *mem.PageTable

	pred *predictor

	rob    []*uop
	fetchQ []*uop
	intRen [isa.NumRegs]*uop
	fpRen  [isa.NumFRegs]*uop
	ccRen  *uop
	seq    uint64

	// Allocation-free steady state: rob and fetchQ are windows into fixed
	// backing arrays (compacted to the front when a push reaches the end),
	// retired uops queue in retq until no in-flight uop can reference them
	// and then return to uopFree, and branch snapshots recycle via
	// snapFree. stBuf is the scratch encoding buffer for store data.
	robBack  []*uop
	fqBack   []*uop
	uopFree  []*uop
	retq     []*uop
	snapFree []*renSnap
	stBuf    [8]byte

	// Decoded-instruction cache: fetch skips the RAM read and decode for
	// PCs it has seen (see decache.go).
	decCache []decEntry
	decGen   uint32

	pc           uint64
	fetchBlocked bool
	fetchGen     uint64 // invalidates in-flight I-cache fill callbacks
	branchCount  int
	memCount     int

	stallCycles int // context-switch cost injected by the kernel

	halted  bool
	haltErr error

	pendingIntr uint64
	// InterruptHook, if set, runs when an interrupt is taken (after the
	// pipeline is flushed and ERPC/CAUSE are written). Returning true
	// means the hook handled it (e.g. a Go-level kernel switched
	// contexts); false vectors to IVEC.
	InterruptHook func(cause uint64) bool
	// TrapHook, if set, intercepts OpTRAP. Returning true treats the
	// trap as a handled "syscall": execution continues at the next
	// instruction. False vectors to IVEC.
	TrapHook func(code int64) bool
	// PIDChanged, if set, runs when software writes the PID privileged
	// register (the machine switches page tables here).
	PIDChanged func(pid uint8)
	// retireObs observes every retired instruction in commit order;
	// register with AttachRetire. Multiple observers (tracer, Perfetto
	// exporter, ...) coexist and run in attachment order.
	retireObs []func(RetireEvent)

	// Cycle-classification state for the CPI stack (see stall.go).
	retiredThisCycle bool
	cycleCause       StallCause
	cycleCauseSet    bool
	squashRefill     bool // ROB-empty cycles are a mispredict refill
	icacheMiss       bool // an I-cache fill for the current stream is in flight

	stats Stats
}

// RetireEvent describes one committed instruction for tracing.
type RetireEvent struct {
	Cycle  uint64
	Seq    uint64
	PC     uint64
	Inst   isa.Inst
	Result uint64 // destination value, if any
	Addr   uint64 // effective address for memory operations
	IsMem  bool

	// Lifecycle stamps in CPU cycles; 0 means the stage was not recorded
	// for this instruction (retire-executed operations skip issue, NOPs
	// complete at rename, ...). Cycle is the retire stamp.
	FetchCycle    uint64
	DispatchCycle uint64
	IssueCycle    uint64
	CompleteCycle uint64
}

// AttachRetire registers fn to observe every retired instruction in
// commit order. Observers are independent and run in attachment order, so
// a streaming tracer and a Perfetto exporter can coexist (the old public
// OnRetire field silently overwrote earlier hooks).
func (c *CPU) AttachRetire(fn func(RetireEvent)) {
	c.retireObs = append(c.retireObs, fn)
}

// New builds a core wired to its memory system.
func New(cfg Config, hier *cache.Hierarchy, ub *uncbuf.Buffer, csb *core.CSB, ram *mem.Memory) (*CPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &CPU{
		cfg:  cfg,
		hier: hier,
		ub:   ub,
		csb:  csb,
		ram:  ram,
		tlb:  mem.NewTLB(cfg.TLBEntries),
		pred: newPredictor(cfg.PredictorSize),
		// Double-capacity backings: pushes compact the live window to the
		// front only when it drifts past the halfway point, amortizing the
		// copy without ring-buffer indexing at every use site.
		robBack:  make([]*uop, 0, 2*cfg.ROBSize),
		fqBack:   make([]*uop, 0, 2*cfg.FetchQueue),
		decCache: make([]decEntry, decCacheSize),
		decGen:   1,
	}
	c.rob = c.robBack
	c.fetchQ = c.fqBack
	return c, nil
}

// newUop returns a zeroed uop from the free list (or a fresh one).
//
// Pool contract (the same no-retention rule bus.Txn documents): a *uop
// handed to a callback or observer is only valid until that call returns —
// recycleRetired reuses the slot as soon as no in-flight uop can reference
// it. Code that must hold one across cycles pin-counts it via u.pins; the
// noretain analyzer (cmd/csbvet) enforces this mechanically.
//
//csb:hotpath
func (c *CPU) newUop() *uop {
	if n := len(c.uopFree); n > 0 {
		u := c.uopFree[n-1]
		c.uopFree = c.uopFree[:n-1]
		*u = uop{}
		return u
	}
	return &uop{} //csb:alloc-ok — cold start: the pool grows until steady state
}

// newSnap returns a rename snapshot from the pool; its contents are
// overwritten in full by the caller.
//
// Snapshots follow the uop pool contract above: released to snapFree when
// the owning branch retires or is squashed, never to be retained past
// that point by anything outside the pipeline.
//
//csb:hotpath
func (c *CPU) newSnap() *renSnap {
	if n := len(c.snapFree); n > 0 {
		s := c.snapFree[n-1]
		c.snapFree = c.snapFree[:n-1]
		return s
	}
	return &renSnap{} //csb:alloc-ok — cold start: the pool grows until steady state
}

// releaseSnap returns u's snapshot (if any) to the pool.
//
//csb:hotpath
//csb:pool
func (c *CPU) releaseSnap(u *uop) {
	if u.snap != nil {
		c.snapFree = append(c.snapFree, u.snap)
		u.snap = nil
	}
}

// pushROB appends to the ROB window, compacting it to the front of its
// backing array when the window has drifted to the end.
//
//csb:hotpath
//csb:pool — the ROB is the pipeline's own storage for in-flight uops.
func (c *CPU) pushROB(u *uop) {
	if len(c.rob) == cap(c.rob) {
		c.rob = append(c.robBack[:0], c.rob...)
	}
	c.rob = append(c.rob, u)
}

//csb:hotpath
//csb:pool — the fetch queue is the pipeline's own storage for in-flight uops.
func (c *CPU) pushFetchQ(u *uop) {
	if len(c.fetchQ) == cap(c.fetchQ) {
		c.fetchQ = append(c.fqBack[:0], c.fetchQ...)
	}
	c.fetchQ = append(c.fetchQ, u)
}

// recycleRetired moves retired uops whose references have provably drained
// from the pipeline onto the free list. A uop retired at sequence stamp S
// can only be referenced (as a renamed source or in a branch snapshot) by
// uops fetched no later than S; once the oldest in-flight uop is younger,
// the slot is reusable. Pinned uops (outstanding fill/load callbacks) are
// dropped to the GC instead.
//
//csb:hotpath
//csb:pool
func (c *CPU) recycleRetired() {
	if len(c.retq) == 0 {
		return
	}
	oldest := c.seq + 1 // pipeline empty: everything is recyclable
	if len(c.rob) > 0 {
		oldest = c.rob[0].seq
	} else if len(c.fetchQ) > 0 {
		oldest = c.fetchQ[0].seq
	}
	i := 0
	for ; i < len(c.retq); i++ {
		u := c.retq[i]
		if u.freeStamp >= oldest {
			break
		}
		if u.pins == 0 {
			c.uopFree = append(c.uopFree, u)
		}
	}
	if i > 0 {
		c.retq = append(c.retq[:0], c.retq[i:]...)
	}
}

// SetPageTable installs the page table used for data-address translation.
func (c *CPU) SetPageTable(pt *mem.PageTable) { c.pt = pt }

// PageTable returns the current page table.
func (c *CPU) PageTable() *mem.PageTable { return c.pt }

// TLB exposes the data TLB (the kernel flushes it when reusing ASIDs).
func (c *CPU) TLB() *mem.TLB { return c.tlb }

// Reset clears the pipeline and starts execution at entry.
func (c *CPU) Reset(entry uint64) {
	c.invalidateDecodeCache() // a new program may occupy the same PCs
	c.flushAll()
	c.arch = ArchState{PC: entry}
	c.pc = entry
	c.halted = false
	c.haltErr = nil
	c.pendingIntr = 0
	c.stallCycles = 0
}

// Halted reports whether the core has executed HALT or hit a fatal fault.
func (c *CPU) Halted() bool { return c.halted }

// Err returns the fatal condition that halted the core, if any.
func (c *CPU) Err() error { return c.haltErr }

// Stats returns a snapshot of the statistics.
func (c *CPU) Stats() Stats { return c.stats }

// RegisterCounters registers the core's counters with the unified
// registry under prefix (e.g. "cpu"), as read closures over the live
// stats — registration never perturbs simulation state.
func (c *CPU) RegisterCounters(prefix string, r *counters.Registry) {
	s := &c.stats
	r.Counter(prefix+"/cycles", func() uint64 { return s.Cycles })
	r.Counter(prefix+"/fetched", func() uint64 { return s.Fetched })
	r.Counter(prefix+"/retired", func() uint64 { return s.Retired })
	r.Counter(prefix+"/squashed", func() uint64 { return s.Squashed })
	r.Counter(prefix+"/branches", func() uint64 { return s.Branches })
	r.Counter(prefix+"/mispredicts", func() uint64 { return s.Mispredicts })
	r.Counter(prefix+"/cached_loads", func() uint64 { return s.CachedLoads })
	r.Counter(prefix+"/cached_stores", func() uint64 { return s.CachedStores })
	r.Counter(prefix+"/uncached_loads", func() uint64 { return s.UncachedLoads })
	r.Counter(prefix+"/uncached_stores", func() uint64 { return s.UncachedStores })
	r.Counter(prefix+"/csb_stores", func() uint64 { return s.CSBStores })
	r.Counter(prefix+"/csb_flushes", func() uint64 { return s.CSBFlushes })
	r.Counter(prefix+"/csb_flush_fails", func() uint64 { return s.CSBFlushFails })
	r.Counter(prefix+"/membars", func() uint64 { return s.Membars })
	r.Counter(prefix+"/traps", func() uint64 { return s.Traps })
	r.Counter(prefix+"/interrupts", func() uint64 { return s.Interrupts })
	r.Counter(prefix+"/faults", func() uint64 { return s.Faults })
}

// State returns a pointer to the committed architectural state. The kernel
// uses it (between Ticks, with the pipeline flushed) for context switches.
func (c *CPU) State() *ArchState { return &c.arch }

// Cycles returns the number of elapsed CPU cycles.
func (c *CPU) Cycles() uint64 { return c.stats.Cycles }

// Interrupt posts an external interrupt; it is taken at the next retire
// boundary if interrupts are enabled.
func (c *CPU) Interrupt(cause uint64) { c.pendingIntr = cause }

// Stall freezes the core for n cycles (models the kernel's context-switch
// cost without simulating kernel code instruction by instruction).
func (c *CPU) Stall(n int) { c.stallCycles += n }

// SaveState copies the committed state; PC is the resume point of the
// interrupted process.
func (c *CPU) SaveState() ArchState { return c.arch }

// RestoreState installs a saved context and redirects fetch, clearing any
// halt (a halted process's exit is the kernel's cue to dispatch another).
func (c *CPU) RestoreState(s ArchState) {
	c.arch = s
	c.pc = s.PC
	c.halted = false
	c.haltErr = nil
	c.pendingIntr = 0
	c.invalidateDecodeCache() // the kernel may have (re)loaded program text
	c.flushAll()
}

// FlushPipeline squashes all in-flight work and restarts fetch at the
// committed PC (used by the kernel after it mutates state directly).
func (c *CPU) FlushPipeline() {
	c.invalidateDecodeCache()
	c.flushAll()
	c.pc = c.arch.PC
}

// Tick advances the core one CPU cycle. Stage order is reverse-pipeline so
// results become visible to younger stages one cycle later. Every cycle is
// charged to exactly one CPI-stack bucket (see stall.go), so the stack's
// buckets always sum to stats.Cycles.
//
//csb:hotpath
func (c *CPU) Tick() {
	c.stats.Cycles++
	if c.halted {
		c.stats.CPI.Add(obs.CauseHalted)
		return
	}
	if c.stallCycles > 0 {
		c.stallCycles--
		c.stats.CPI.Add(obs.CauseKernel)
		return
	}
	c.retiredThisCycle = false
	c.cycleCauseSet = false
	c.retire()
	c.stats.CPI.Add(c.classifyCycle())
	c.recycleRetired()
	if c.halted {
		return
	}
	c.executeAdvance()
	c.issue()
	c.dispatch()
	c.fetch()
}

// ---- fetch ----

func (c *CPU) fetch() {
	if c.fetchBlocked {
		c.stats.FetchStalls++
		return
	}
	for i := 0; i < c.cfg.FetchWidth && len(c.fetchQ) < c.cfg.FetchQueue; i++ {
		if !c.hier.Present(c.pc, true) {
			if i == 0 {
				c.startICacheFill(c.pc)
			}
			return
		}
		u := c.newUop()
		u.seq = c.nextSeq()
		u.inst = c.decode(c.pc)
		u.pc = c.pc
		u.fetchC = c.stats.Cycles
		c.predecode(u)
		c.pushFetchQ(u)
		c.stats.Fetched++
		taken := u.predNext != u.pc+4
		c.pc = u.predNext
		if c.fetchBlocked || taken {
			return
		}
	}
}

func (c *CPU) startICacheFill(pc uint64) {
	gen := c.fetchGen
	c.fetchBlocked = true
	c.stats.ICacheStalls++
	_, hit, accepted := c.hier.Load(pc, true, func() {
		if c.fetchGen == gen {
			c.fetchBlocked = false
			c.icacheMiss = false
		}
	})
	if hit || !accepted {
		// hit: racing fill already installed it; !accepted: retry.
		c.fetchBlocked = false
		return
	}
	c.icacheMiss = true
}

// predecode computes the predicted next PC and marks control flow.
func (c *CPU) predecode(u *uop) {
	in := u.inst
	switch in.Op {
	case isa.OpBR:
		u.isBranch = true
		target := u.pc + 4 + uint64(int64(4)*in.Imm)
		taken := in.Cond == isa.CondA || (in.Cond != isa.CondN && c.pred.predict(u.pc))
		if taken {
			u.predNext = target
		} else {
			u.predNext = u.pc + 4
		}
	case isa.OpJAL:
		u.isBranch = true
		u.predNext = u.pc + 4 + uint64(int64(4)*in.Imm)
	case isa.OpJALR:
		u.isBranch = true
		u.predNext = 0 // unknown: fetch stalls until it resolves
		c.fetchBlocked = true
	case isa.OpHALT, isa.OpIRET:
		u.predNext = u.pc // fetch stops; retire redirects if needed
		c.fetchBlocked = true
	default:
		u.predNext = u.pc + 4
	}
}

func (c *CPU) nextSeq() uint64 {
	c.seq++
	return c.seq
}

// ---- dispatch (rename) ----

func (c *CPU) dispatch() {
	for n := 0; n < c.cfg.DispatchWidth && len(c.fetchQ) > 0; n++ {
		u := c.fetchQ[0]
		if len(c.rob) >= c.cfg.ROBSize {
			return
		}
		if u.isBranch && c.branchCount >= c.cfg.MaxBranches {
			return
		}
		u.isMem = u.inst.Op.IsMem()
		if u.isMem && c.memCount >= c.cfg.LSQSize {
			return
		}
		c.fetchQ = c.fetchQ[1:]
		c.rename(u)
		u.dispatchC = c.stats.Cycles
		c.pushROB(u)
		c.stats.Dispatched++
		c.squashRefill = false
		if u.isBranch {
			c.branchCount++
		}
		if u.isMem {
			c.memCount++
		}
	}
}

// rename captures u's sources from the rename maps and registers u as the
// new producer for its destinations.
//
//csb:pool — the rename maps are pipeline-owned storage for in-flight uops;
// recycleRetired proves references drain before a slot is reused.
func (c *CPU) rename(u *uop) {
	in := u.inst
	// Source 1.
	switch {
	case in.Op.FPRs1():
		if p := c.fpRen[in.Rs1]; p != nil {
			u.s1 = p
		} else {
			u.v1 = c.arch.F[in.Rs1]
		}
	case u.ReadsIntRs1():
		if p := c.intRen[in.Rs1]; p != nil {
			u.s1 = p
		} else {
			u.v1 = c.arch.R[in.Rs1]
		}
	}
	// Source 2.
	switch {
	case in.Op.FPRs2():
		if p := c.fpRen[in.Rs2]; p != nil {
			u.s2 = p
		} else {
			u.v2 = c.arch.F[in.Rs2]
		}
	case u.ReadsIntRs2():
		if p := c.intRen[in.Rs2]; p != nil {
			u.s2 = p
		} else {
			u.v2 = c.arch.R[in.Rs2]
		}
	}
	// Store-data source (Rd read as a source).
	if in.ReadsRdAsSource() {
		if in.Op == isa.OpSTF {
			if p := c.fpRen[in.Rd]; p != nil {
				u.sd = p
			} else {
				u.vd = c.arch.F[in.Rd]
			}
		} else {
			if p := c.intRen[in.Rd]; p != nil {
				u.sd = p
			} else {
				u.vd = c.arch.R[in.Rd]
			}
		}
	}
	// Condition codes for conditional branches.
	if in.Op == isa.OpBR && in.Cond != isa.CondA && in.Cond != isa.CondN {
		if c.ccRen != nil {
			u.ccProd = c.ccRen
		} else {
			u.ccVal = c.arch.CC
		}
	}
	u.writesCC = writesCC(in.Op)

	// Trivial completions.
	switch in.Op {
	case isa.OpNOP:
		c.markDone(u)
	case isa.OpInvalid:
		u.faulted = true
		c.markDone(u)
	}

	// Register the new producer mappings.
	if u.inst.WritesFPReg() {
		c.fpRen[in.Rd] = u
	} else if u.inst.WritesIntReg() {
		c.intRen[in.Rd] = u
	}
	if u.writesCC {
		c.ccRen = u
	}

	// Branches snapshot the rename state including their own writes.
	if u.isBranch {
		s := c.newSnap()
		s.ints = c.intRen
		s.fps = c.fpRen
		s.cc = c.ccRen
		u.snap = s
	}
}

// markDone completes a uop (its result becomes visible to dependents) and
// stamps the completion cycle for lifecycle tracing.
func (c *CPU) markDone(u *uop) {
	u.done = true
	u.completeC = c.stats.Cycles
}

// ReadsIntRs1 and ReadsIntRs2 forward to the instruction predicates; kept
// as uop methods for symmetry with the FP checks above.
func (u *uop) ReadsIntRs1() bool { return u.inst.ReadsIntRs1() }
func (u *uop) ReadsIntRs2() bool { return u.inst.ReadsIntRs2() }

// ---- issue ----

func (c *CPU) issue() {
	ints := c.cfg.IntALUs
	fps := c.cfg.FPUs
	agus := c.cfg.AGUs
	ports := c.cfg.MemPorts
	for _, u := range c.rob {
		if u.dead || u.done || u.executing {
			continue
		}
		if u.isMem {
			c.issueMem(u, &agus, &ports)
			continue
		}
		switch u.inst.Op.Class() {
		case isa.ClassInt, isa.ClassIntMul, isa.ClassBranch:
			if !u.issued && ints > 0 && u.srcReady() {
				ints--
				u.issued = true
				u.executing = true
				u.issueC = c.stats.Cycles
				u.remaining = c.latencyFor(u.inst.Op)
			}
		case isa.ClassFPU:
			if !u.issued && fps > 0 && u.srcReady() {
				fps--
				u.issued = true
				u.executing = true
				u.issueC = c.stats.Cycles
				u.remaining = c.latencyFor(u.inst.Op)
			}
		}
		// ClassBarrier and ClassSystem execute at retire.
	}
}

// issueMem advances a memory uop through agen → translate → (cached loads
// only) cache access. Retire-executed memory ops stop after translation.
func (c *CPU) issueMem(u *uop, agus, ports *int) {
	if !u.agenDone {
		if *agus > 0 && u.addrSrcReady() {
			*agus--
			u.agenDone = true
			u.issueC = c.stats.Cycles
			u.va = u.val1() + uint64(u.inst.Imm)
			c.translate(u)
		}
		return
	}
	if !u.addrReady {
		return // translation walk in progress (executeAdvance counts it down)
	}
	if u.faulted {
		// Wrong-path garbage addresses land here routinely; mark the uop
		// complete so dependents unblock. If it reaches retire alive, the
		// fault is taken there.
		u.result = 0
		c.markDone(u)
		return
	}
	if u.needsRetireExec() {
		return
	}
	switch u.inst.Op.Class() {
	case isa.ClassLoad: // cached load
		if u.memIssued || u.memWait {
			return
		}
		if *ports <= 0 || !c.orderingSafe(u) {
			return
		}
		*ports--
		c.startCachedLoad(u)
	case isa.ClassStore: // cached store: complete when data is ready
		if u.dataSrcReady() {
			c.markDone(u)
		}
	}
}

// startCachedLoad issues u's cache access.
//
//csb:pool — the fill callback's capture of u is pin-counted: u.pins keeps
// the uop off the free list until the callback has run (see recycleRetired).
func (c *CPU) startCachedLoad(u *uop) {
	u.pins++ // the fill callback captures u; see recycleRetired
	lat, hit, accepted := c.hier.Load(u.pa, false, func() {
		u.pins--
		if !u.dead {
			u.memWait = false
		}
	})
	if hit || !accepted {
		u.pins-- // callback not retained
	}
	if !accepted {
		return // MSHRs full; retry next cycle
	}
	if hit {
		u.memIssued = true
		u.executing = true
		u.remaining = lat
		return
	}
	u.memWait = true // fill in progress; re-access on completion
}

// translate resolves u.va via the TLB/page table.
func (c *CPU) translate(u *uop) {
	if c.pt == nil {
		// Bare machine: identity mapping, everything cached.
		u.pa = u.va
		u.kind = mem.KindCached
		u.addrReady = true
		return
	}
	asid := c.arch.PID()
	if pte, ok := c.tlb.Lookup(u.va, asid); ok {
		c.finishTranslate(u, pte)
		return
	}
	// Hardware walk.
	u.walkStarted = true
	u.translating = c.cfg.TLBWalkLatency
}

func (c *CPU) finishWalk(u *uop) {
	pte, ok := c.pt.Lookup(u.va)
	if !ok {
		u.faulted = true
		u.addrReady = true
		return
	}
	c.tlb.Insert(u.va, c.arch.PID(), pte)
	c.finishTranslate(u, pte)
}

func (c *CPU) finishTranslate(u *uop, pte mem.PTE) {
	if u.inst.Op.IsStore() && !pte.Writable {
		u.faulted = true
		u.addrReady = true
		return
	}
	u.pa = pte.PFN<<mem.PageBits | u.va&(mem.PageSize-1)
	u.kind = pte.Kind
	u.addrReady = true
}

// orderingSafe reports whether a cached load may execute: no older store
// with an unknown or overlapping address, and no older barrier.
func (c *CPU) orderingSafe(u *uop) bool {
	size := uint64(u.inst.Op.MemBytes())
	for _, x := range c.rob {
		if x == u {
			return true
		}
		if x.dead {
			continue
		}
		if x.inst.Op == isa.OpMEMBAR {
			return false
		}
		if !x.inst.Op.IsStore() {
			continue
		}
		if !x.addrReady {
			return false
		}
		xsize := uint64(x.inst.Op.MemBytes())
		if x.pa < u.pa+size && u.pa < x.pa+xsize {
			return false
		}
	}
	return true
}

// ---- execute ----

func (c *CPU) executeAdvance() {
	for _, u := range c.rob {
		if u.dead {
			continue
		}
		if u.walkStarted && u.translating > 0 {
			u.translating--
			if u.translating == 0 {
				u.walkStarted = false
				c.finishWalk(u)
			}
		}
		if !u.executing {
			continue
		}
		u.remaining--
		if u.remaining > 0 {
			continue
		}
		u.executing = false
		if u.isMem {
			c.completeCachedLoad(u)
			continue
		}
		c.execute(u)
		if u.isBranch {
			c.resolveBranch(u)
		}
	}
}

func (c *CPU) completeCachedLoad(u *uop) {
	size := u.inst.Op.MemBytes()
	u.result = c.ram.ReadUint(u.pa, size)
	c.markDone(u)
	c.stats.CachedLoads++
}

func (c *CPU) resolveBranch(u *uop) {
	c.stats.Branches++
	c.branchCount--
	if u.inst.Op == isa.OpBR {
		taken := u.actualNext != u.pc+4
		c.pred.update(u.pc, taken)
	}
	if u.actualNext == u.predNext {
		return
	}
	if u.inst.Op == isa.OpJALR {
		// Not a misprediction: fetch was stalled waiting for the target.
		c.squashAfter(u)
		c.pc = u.actualNext
		c.fetchBlocked = false
		return
	}
	c.stats.Mispredicts++
	c.squashAfter(u)
	c.pc = u.actualNext
	c.fetchBlocked = false
	// ROB-empty cycles until the refetched path reaches dispatch are the
	// squash penalty, not generic frontend starvation.
	c.squashRefill = true
}

// squashAfter kills everything younger than u and restores the rename maps
// from u's snapshot.
func (c *CPU) squashAfter(u *uop) {
	idx := -1
	for i, x := range c.rob {
		if x == u {
			idx = i
			break
		}
	}
	if idx < 0 {
		return
	}
	for _, x := range c.rob[idx+1:] {
		c.killUop(x)
	}
	c.stats.Squashed += uint64(len(c.rob) - idx - 1 + len(c.fetchQ))
	c.rob = c.rob[:idx+1]
	c.recycleFetchQ()
	c.fetchGen++
	c.icacheMiss = false // a fill for the squashed stream no longer matters
	if u.snap != nil {
		c.intRen = u.snap.ints
		c.fpRen = u.snap.fps
		c.ccRen = u.snap.cc
		// Producers that retired after the snapshot was taken have
		// committed to the architectural file (and their uops may be
		// recycled); scrub them so rename reads the register instead.
		for i, p := range c.intRen {
			if p != nil && p.retired {
				c.intRen[i] = nil
			}
		}
		for i, p := range c.fpRen {
			if p != nil && p.retired {
				c.fpRen[i] = nil
			}
		}
		if c.ccRen != nil && c.ccRen.retired {
			c.ccRen = nil
		}
	}
}

// recycleFetchQ kills and immediately recycles the fetch queue: its uops
// are not yet renamed, so nothing can reference them.
func (c *CPU) recycleFetchQ() {
	for _, x := range c.fetchQ {
		x.dead = true
		c.uopFree = append(c.uopFree, x)
	}
	c.fetchQ = c.fetchQ[:0]
}

// killUop squashes an in-flight uop. Squashed uops become unreachable the
// moment their ROB window is truncated (references only ever point from
// younger to older, and everything younger dies with them), so the slot is
// recycled immediately — unless an outstanding callback still pins it.
//
//csb:pool
func (c *CPU) killUop(x *uop) {
	x.dead = true
	c.releaseSnap(x)
	if x.isBranch && !x.resolved {
		c.branchCount--
	}
	if x.isMem {
		c.memCount--
	}
	if x.pins == 0 {
		c.uopFree = append(c.uopFree, x)
	}
}

// flushAll empties the entire pipeline (interrupts, IRET, kernel entry).
func (c *CPU) flushAll() {
	for _, x := range c.rob {
		c.killUop(x)
	}
	c.stats.Squashed += uint64(len(c.rob) + len(c.fetchQ))
	c.rob = c.rob[:0]
	c.recycleFetchQ()
	c.intRen = [isa.NumRegs]*uop{}
	c.fpRen = [isa.NumFRegs]*uop{}
	c.ccRen = nil
	c.branchCount = 0
	c.memCount = 0
	c.fetchBlocked = false
	c.fetchGen++
	c.squashRefill = false
	c.icacheMiss = false
}
