// Package antest runs analyzers over source fixtures, in the style of
// golang.org/x/tools/go/analysis/analysistest: fixture files mark the
// diagnostics they expect with trailing comments of the form
//
//	x.f = t // want `cannot retain`
//
// where the backquoted string is a regular expression that must match an
// analyzer diagnostic reported on that line. A line may carry several
// `want` patterns. The test fails on any unmatched expectation and on any
// unexpected diagnostic.
package antest

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"csbsim/internal/analysis"
)

var (
	loaderMu sync.Mutex
	loaders  = map[string]*analysis.Loader{}
)

// loader returns a cached Loader for the enclosing module, listing ./...
// plus any extra packages the fixtures import.
func loader(t *testing.T, extra []string) *analysis.Loader {
	t.Helper()
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	key := root + "\x00" + strings.Join(extra, "\x00")
	loaderMu.Lock()
	defer loaderMu.Unlock()
	if l, ok := loaders[key]; ok {
		return l
	}
	l, err := analysis.NewLoader(root, append([]string{"./..."}, extra...)...)
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	loaders[key] = l
	return l
}

var wantRE = regexp.MustCompile("// want (`[^`]*`( `[^`]*`)*)$")

// expectation is one `want` pattern with its source location.
type expectation struct {
	file string // base name
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run type-checks the fixture directory as import path asPath, applies a,
// and compares the diagnostics against the fixture's want comments.
// extraPkgs names packages outside the module's dependency closure that
// the fixtures import (e.g. "math/rand").
func Run(t *testing.T, a *analysis.Analyzer, fixtureDir, asPath string, extraPkgs ...string) {
	t.Helper()
	l := loader(t, extraPkgs)
	abs, err := filepath.Abs(fixtureDir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(abs, asPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixtureDir, err)
	}
	diags, err := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range strings.Split(m[1], "` `") {
					q = strings.Trim(q, "`")
					re, err := regexp.Compile(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, q, err)
					}
					wants = append(wants, &expectation{
						file: filepath.Base(pos.Filename),
						line: pos.Line,
						re:   re,
					})
				}
			}
		}
	}

	for _, d := range diags {
		if !match(wants, d.Pos, d.Message) {
			t.Errorf("unexpected diagnostic %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func match(wants []*expectation, pos token.Position, msg string) bool {
	for _, w := range wants {
		if !w.hit && w.file == filepath.Base(pos.Filename) && w.line == pos.Line && w.re.MatchString(msg) {
			w.hit = true
			return true
		}
	}
	return false
}
