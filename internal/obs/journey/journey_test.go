package journey

import (
	"bytes"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"csbsim/internal/obs/counters"
)

// newTestTracer builds a tracer on a settable fake clock.
func newTestTracer(t *testing.T, cfg Config) (*Tracer, *uint64) {
	t.Helper()
	cycle := new(uint64)
	tr, err := NewTracer(cfg, nil, func() uint64 { return *cycle })
	if err != nil {
		t.Fatal(err)
	}
	return tr, cycle
}

func TestTracerLifecycle(t *testing.T) {
	tr, cycle := newTestTracer(t, DefaultConfig())

	// Uncached store: retire @10, dequeue @20, grant @50, complete @110.
	*cycle = 10
	id := tr.UBStoreAccepted(0x4000_0000, 8, false)
	*cycle = 20
	tr.UBEntryDeparted(id, 1)
	*cycle = 50
	tr.UBBusGranted(id, 1)
	*cycle = 110
	tr.UBEntryDone(id, 1)

	if got := tr.Started(KindUncachedStore); got != 1 {
		t.Errorf("started = %d, want 1", got)
	}
	if got := tr.Completed(KindUncachedStore); got != 1 {
		t.Errorf("completed = %d, want 1", got)
	}
	s := tr.E2EHistogram(KindUncachedStore).Summary()
	if s.Count != 1 || s.Min != 100 || s.Max != 100 {
		t.Errorf("e2e summary = %+v, want one sample of 100", s)
	}

	// CSB sequence: two stores, first flush fails (abort), retry commits.
	*cycle = 200
	first := tr.CSBStoreAccepted(0x4100_0000, 8, false)
	tr.CSBStoreAccepted(0x4100_0008, 8, true)
	tr.CSBSequenceAborted(first, 2)
	if got := tr.Aborted(KindCSBStore); got != 2 {
		t.Errorf("aborted = %d, want 2", got)
	}
	*cycle = 210
	first = tr.CSBStoreAccepted(0x4100_0000, 8, false)
	tr.CSBStoreAccepted(0x4100_0008, 8, true)
	*cycle = 220
	tr.CSBFlushCommitted(first, 2)
	*cycle = 230
	tr.CSBBusGranted(first, 2)
	*cycle = 290
	tr.CSBLineDone(first, 2)
	if got := tr.Completed(KindCSBStore); got != 2 {
		t.Errorf("csb completed = %d, want 2", got)
	}

	// The slowest set and retained list must both see all finished work.
	slow := tr.Slowest()
	if len(slow) != 3 {
		t.Fatalf("slowest has %d journeys, want 3", len(slow))
	}
	if slow[0].Kind != KindUncachedStore || slow[0].E2E() != 100 {
		t.Errorf("slowest[0] = %+v, want the 100-cycle uncached store", slow[0])
	}
	retained := tr.Retained()
	if len(retained) != 5 { // 1 uncached + 2 aborted + 2 committed
		t.Errorf("retained %d journeys, want 5", len(retained))
	}

	// Dump round-trips through JSON byte-identically on equal state.
	var a, b bytes.Buffer
	if _, err := tr.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two dumps of the same tracer state differ")
	}
}

func TestStaleStampDropped(t *testing.T) {
	tr, cycle := newTestTracer(t, Config{Window: 2, TopN: 4})
	id := tr.UBStoreAccepted(0x1000, 8, false)
	// Two more journeys evict the first from its 2-slot ring.
	tr.UBStoreAccepted(0x1008, 8, false)
	tr.UBStoreAccepted(0x1010, 8, false)
	*cycle = 50
	tr.UBEntryDeparted(id, 1) // journey gone: counted, not crashed
	if tr.BuildDump().StaleDrops != 1 {
		t.Errorf("stale drops = %d, want 1", tr.BuildDump().StaleDrops)
	}
}

// TestStampPathsZeroAlloc pins the tracer's hot-loop contract: once the
// rings and the slowest set are warm, opening, stamping, finishing and
// aborting journeys of every kind allocates nothing — the same contract
// the //csb:hotpath pragmas declare to the csbvet analyzer.
func TestStampPathsZeroAlloc(t *testing.T) {
	tr, cycle := newTestTracer(t, DefaultConfig())
	drive := func() {
		for i := 0; i < 100; i++ {
			*cycle += 3
			id := tr.UBStoreAccepted(0x4000_0000+uint64(i)*8, 8, i%2 == 0)
			*cycle += 5
			tr.UBEntryDeparted(id, 1)
			*cycle += 7
			tr.UBBusGranted(id, 1)
			*cycle += 11
			tr.UBEntryDone(id, 1)

			first := tr.CSBStoreAccepted(0x4100_0000, 8, false)
			tr.CSBStoreAccepted(0x4100_0008, 8, true)
			if i%3 == 0 {
				tr.CSBSequenceAborted(first, 2)
			} else {
				*cycle += 2
				tr.CSBFlushCommitted(first, 2)
				tr.CSBBusGranted(first, 2)
				*cycle += 48
				tr.CSBLineDone(first, 2)
			}

			did := tr.NICDescQueued(uint64(i)*64, 64, i%2 == 0)
			*cycle += 4
			tr.NICTxStarted(did)
			*cycle += 64
			tr.NICTxDone(did)
		}
	}
	drive() // warm: fill the slowest set so noteSlow stops appending
	if avg := testing.AllocsPerRun(10, drive); avg != 0 {
		t.Errorf("stamp paths allocated %.1f times per 100 journeys, want 0", avg)
	}

	h := counters.NewRegistry().Histogram("probe")
	if avg := testing.AllocsPerRun(10, func() {
		for v := uint64(0); v < 1000; v++ {
			h.Record(v)
		}
	}); avg != 0 {
		t.Errorf("Histogram.Record allocated %.1f times per 1000 records, want 0", avg)
	}
}

// TestHotpathPragmas verifies that every function on the journey stamp
// path, and the histogram record path, carries the //csb:hotpath pragma —
// the contract that puts them under csbvet's allocation analyzer.
func TestHotpathPragmas(t *testing.T) {
	for _, tc := range []struct {
		file  string
		funcs []string
	}{
		{"journey.go", []string{
			"slot", "begin", "stamp", "stampRange", "finish",
			"noteSlow", "recomputeSlowMin", "abortRange",
			"UBStoreAccepted", "UBEntryDeparted", "UBBusGranted", "UBEntryDone",
			"CSBStoreAccepted", "CSBSequenceAborted", "CSBFlushCommitted",
			"CSBBusGranted", "CSBLineDone",
			"NICDescQueued", "NICTxStarted", "NICTxDone",
		}},
		{"../counters/counters.go", []string{"Record"}},
	} {
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, tc.file, nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		marked := make(map[string]bool)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if strings.HasPrefix(c.Text, "//csb:hotpath") {
					marked[fd.Name.Name] = true
				}
			}
		}
		for _, name := range tc.funcs {
			if !marked[name] {
				t.Errorf("%s: %s is on the stamp path but lacks //csb:hotpath", tc.file, name)
			}
		}
	}
}
