// Package fix seeds determinism violations. The test loads it under the
// import path csbsim/internal/sim/fixture, which is inside the
// deterministic package set.
package fix

import (
	"math/rand" // want `import of math/rand in deterministic package`
	"time"
)

func wallClock() int64 {
	t := time.Now() // want `time\.Now in deterministic package`
	return t.Unix()
}

func elapsed(since time.Time) time.Duration {
	return time.Since(since) // want `time\.Since in deterministic package`
}

func random() int { return rand.Int() }

// firstBad's result depends on which key the runtime yields first.
func firstBad(m map[string]int) string {
	for k := range m { // want `map iteration order is nondeterministic`
		if m[k] > 0 {
			return k
		}
	}
	return ""
}

// keysOK is the collect-then-sort idiom: order-independent without
// annotation.
func keysOK(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// copyOK is the map-copy idiom: the result is the same in any order.
func copyOK(dst, src map[string]int) {
	for k, v := range src {
		dst[k] = v
	}
}

// annotatedOK is order-sensitive in form but commutative in fact.
func annotatedOK(m map[string]int) int {
	n := 0
	for _, v := range m { //csb:orderless
		n += v
	}
	return n
}

func sliceOK(xs []int) int {
	n := 0
	for _, v := range xs {
		n += v
	}
	return n
}
