package kernel

import (
	"fmt"
	"testing"

	"csbsim/internal/asm"
	"csbsim/internal/mem"
	"csbsim/internal/sim"
)

func newMachine(t *testing.T) *sim.Machine {
	t.Helper()
	m, err := sim.New(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func mustProg(t *testing.T, src string) *asm.Program {
	t.Helper()
	p, err := asm.Assemble("proc.s", src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// counterProg counts to n in a register then stores the result at addr.
func counterProg(org uint64, n int, addr uint64) string {
	return fmt.Sprintf(`
	.org %#x
	clr %%g1
	set %d, %%g2
loop:
	add %%g1, 1, %%g1
	cmp %%g1, %%g2
	bl loop
	set %#x, %%o1
	stx %%g1, [%%o1]
	membar
	halt
`, org, n, addr)
}

func TestTwoProcessesTimeshare(t *testing.T) {
	m := newMachine(t)
	k := New(m, 2000)
	p1, err := k.Spawn("a", 1, mustProg(t, counterProg(0x10000, 30000, 0x80000)))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := k.Spawn("b", 2, mustProg(t, counterProg(0x90000, 30000, 0xa0000)))
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if !p1.Finished || !p2.Finished {
		t.Fatal("processes did not finish")
	}
	if got := m.RAM.ReadUint(0x80000, 8); got != 30000 {
		t.Errorf("process a result = %d", got)
	}
	if got := m.RAM.ReadUint(0xa0000, 8); got != 30000 {
		t.Errorf("process b result = %d", got)
	}
	if k.Switches() < 10 {
		t.Errorf("switches = %d, want >= 10 (quantum 2000, long runs)", k.Switches())
	}
	if p1.Cycles == 0 || p2.Cycles == 0 {
		t.Error("per-process cycle accounting missing")
	}
}

func TestDuplicatePIDRejected(t *testing.T) {
	m := newMachine(t)
	k := New(m, 1000)
	prog := mustProg(t, "halt\n")
	if _, err := k.Spawn("a", 1, prog); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Spawn("b", 1, prog); err == nil {
		t.Error("duplicate PID accepted")
	}
}

func TestProcessIsolationViaAddressSpaces(t *testing.T) {
	// Two processes use the same *virtual* address mapped to different
	// physical frames.
	m := newMachine(t)
	k := New(m, 1500)
	src := `
	set 0x200000, %o1
	ldx [%o1], %g1      ! read own private value
	add %g1, 1, %g1
	stx %g1, [%o1]
	membar
	halt
`
	p1, _ := k.Spawn("a", 1, mustProg(t, "\t.org 0x10000\n"+src))
	p2, _ := k.Spawn("b", 2, mustProg(t, "\t.org 0x30000\n"+src))
	// Same VA 0x200000, different PAs.
	p1.Space.MapRange(0x200000, 0x500000, mem.PageSize, mem.KindCached, true)
	p2.Space.MapRange(0x200000, 0x600000, mem.PageSize, mem.KindCached, true)
	m.RAM.WriteUint(0x500000, 8, 100)
	m.RAM.WriteUint(0x600000, 8, 200)
	if err := k.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if got := m.RAM.ReadUint(0x500000, 8); got != 101 {
		t.Errorf("process a value = %d, want 101", got)
	}
	if got := m.RAM.ReadUint(0x600000, 8); got != 201 {
		t.Errorf("process b value = %d, want 201", got)
	}
}

// The §3.2 scenario end to end: two processes hammer the same CSB with
// different lines; preemption interrupts sequences mid-flight; the
// conditional flush detects every conflict and software retries; both
// processes' data still lands intact, every line exactly once.
func TestCSBContentionUnderPreemption(t *testing.T) {
	m := newMachine(t)
	k := New(m, 700) // short quantum: preempt mid-sequence often
	csbSeq := func(org, target uint64, lines int) string {
		return fmt.Sprintf(`
	.org %#x
	set %#x, %%o1
	set %d, %%g3          ! line counter
	mov 7, %%g1
	movr2f %%g1, %%f0
nextline:
RETRY:
	set 8, %%l4
	std %%f0, [%%o1]
	std %%f0, [%%o1+8]
	std %%f0, [%%o1+16]
	std %%f0, [%%o1+24]
	std %%f0, [%%o1+32]
	std %%f0, [%%o1+40]
	std %%f0, [%%o1+48]
	std %%f0, [%%o1+56]
	swap [%%o1], %%l4
	cmp %%l4, 8
	bnz RETRY
	add %%o1, 64, %%o1
	subcc %%g3, 1, %%g3
	bnz nextline
	halt
`, org, target, lines)
	}
	const lines = 40
	p1, err := k.Spawn("a", 1, mustProg(t, csbSeq(0x10000, 0x4000_0000, lines)))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := k.Spawn("b", 2, mustProg(t, csbSeq(0x30000, 0x4100_0000, lines)))
	if err != nil {
		t.Fatal(err)
	}
	p1.Space.MapRange(0x4000_0000, 0x4000_0000, 1<<20, mem.KindCombining, true)
	p2.Space.MapRange(0x4100_0000, 0x4100_0000, 1<<20, mem.KindCombining, true)
	if err := k.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if err := m.Drain(100_000); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if k.Switches() < 4 {
		t.Fatalf("switches = %d; quantum too long to exercise contention", k.Switches())
	}
	// All data must have landed exactly once per line.
	for i := 0; i < lines; i++ {
		for _, base := range []uint64{0x4000_0000, 0x4100_0000} {
			a := base + uint64(i*64)
			if got := m.RAM.ReadUint(a, 8); got != 7 {
				t.Fatalf("line %#x word 0 = %d, want 7", a, got)
			}
		}
	}
	// Exactly one successful flush (= one burst) per line.
	if s.CSB.FlushOK != 2*lines {
		t.Errorf("successful flushes = %d, want %d", s.CSB.FlushOK, 2*lines)
	}
	if s.CSB.Bursts != 2*lines {
		t.Errorf("bursts = %d, want %d (exactly-once)", s.CSB.Bursts, 2*lines)
	}
	// Preemption must have caused at least one conflict + retry.
	if s.CSB.FlushFail == 0 {
		t.Error("no failed flushes despite preemption — contention not exercised")
	}
	t.Logf("switches=%d flushOK=%d flushFail=%d conflicts=%d",
		k.Switches(), s.CSB.FlushOK, s.CSB.FlushFail, s.CSB.Conflicts)
}

func TestRunWithNoProcesses(t *testing.T) {
	m := newMachine(t)
	k := New(m, 1000)
	if err := k.Run(1000); err == nil {
		t.Error("expected error with no processes")
	}
}

func TestSingleProcessNoPreemptionNeeded(t *testing.T) {
	m := newMachine(t)
	k := New(m, 100) // tiny quantum; single process keeps being re-dispatched
	p, _ := k.Spawn("solo", 3, mustProg(t, counterProg(0x10000, 5000, 0x80000)))
	if err := k.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if !p.Finished {
		t.Fatal("process did not finish")
	}
	if got := m.RAM.ReadUint(0x80000, 8); got != 5000 {
		t.Errorf("result = %d", got)
	}
}
