package device

import (
	"bytes"
	"testing"

	"csbsim/internal/bus"
	"csbsim/internal/mem"
)

const base = 0x4000_0000

func newRig(t *testing.T, cfg Config) (*NIC, *bus.Bus, *mem.Memory) {
	t.Helper()
	ram := mem.NewMemory()
	rt := mem.NewRouter(ram)
	n := NewNIC(cfg, base)
	if err := rt.Register(base, RegionSize, "nic", n); err != nil {
		t.Fatal(err)
	}
	b, err := bus.New(bus.Config{Model: bus.Multiplexed, WidthBytes: 8, ReadWait: 4}, rt)
	if err != nil {
		t.Fatal(err)
	}
	return n, b, ram
}

func step(n *NIC, b *bus.Bus, cycles int) {
	for i := 0; i < cycles; i++ {
		b.Tick()
		n.TickBus(b)
	}
}

func desc(offset uint64, length int) []byte {
	v := offset | uint64(length)<<48
	out := make([]byte, 8)
	putLE(out, v)
	return out
}

func TestPIOPacketSend(t *testing.T) {
	n, b, _ := newRig(t, DefaultConfig())
	// Write payload into the packet buffer (as CSB bursts would).
	payload := []byte("hello, wire!")
	n.WriteTarget(base+PacketBufBase+64, payload)
	// Push a descriptor: offset 64, length len(payload).
	n.WriteTarget(base+RegTxFIFO, desc(64, len(payload)))
	step(n, b, 10)
	pkts := n.Packets()
	if len(pkts) != 1 {
		t.Fatalf("packets = %d, want 1", len(pkts))
	}
	if !bytes.Equal(pkts[0].Data, payload) {
		t.Errorf("payload = %q", pkts[0].Data)
	}
	if pkts[0].ViaDMA {
		t.Error("PIO packet marked as DMA")
	}
	if !n.Idle() {
		t.Error("NIC not idle after send")
	}
}

func TestBurstWriteToPacketBuffer(t *testing.T) {
	n, b, _ := newRig(t, DefaultConfig())
	// A CSB-style 64-byte burst transaction into the packet buffer.
	line := make([]byte, 64)
	for i := range line {
		line[i] = byte(i)
	}
	txn := &bus.Txn{Addr: base + PacketBufBase, Size: 64, Write: true, Data: line, IO: true, Ordered: true}
	if !b.TryIssue(txn) {
		t.Fatal("burst not accepted")
	}
	b.Drain(100)
	got := n.ReadTarget(base+PacketBufBase, 64)
	if !bytes.Equal(got, line) {
		t.Error("burst data did not land in packet buffer")
	}
	_ = b
}

func TestDMATransfer(t *testing.T) {
	n, b, ram := newRig(t, DefaultConfig())
	msg := make([]byte, 200)
	for i := range msg {
		msg[i] = byte(i * 3)
	}
	src := uint64(0x1_0000)
	ram.Write(src, msg)
	// One store starts the whole DMA (Atoll-style packed descriptor).
	n.WriteTarget(base+RegDMA, desc(src, len(msg)))
	step(n, b, 500)
	pkts := n.Packets()
	if len(pkts) != 1 {
		t.Fatalf("packets = %d, want 1", len(pkts))
	}
	if !pkts[0].ViaDMA {
		t.Error("DMA packet not marked")
	}
	if pkts[0].SrcAddr != src {
		t.Errorf("src = %#x", pkts[0].SrcAddr)
	}
	if !bytes.Equal(pkts[0].Data, msg) {
		t.Error("DMA payload mismatch")
	}
	// DMA used burst reads on the bus.
	if s := b.Stats(); s.Reads < 3 || s.BySize[64] < 3 {
		t.Errorf("bus stats %+v: expected >=3 64B read bursts", s)
	}
}

func TestDMAUnalignedTail(t *testing.T) {
	n, b, ram := newRig(t, DefaultConfig())
	msg := make([]byte, 100) // 64 + 32 + 4
	for i := range msg {
		msg[i] = byte(i)
	}
	ram.Write(0x2_0000, msg)
	n.WriteTarget(base+RegDMA, desc(0x2_0000, len(msg)))
	step(n, b, 1000)
	if len(n.Packets()) != 1 {
		t.Fatal("packet not sent")
	}
	if !bytes.Equal(n.Packets()[0].Data, msg) {
		t.Error("tail bytes corrupted")
	}
}

func TestStatusRegister(t *testing.T) {
	n, b, _ := newRig(t, Config{FIFODepth: 1, WireCyclesPerByte: 10, DMABurst: 64})
	st := leUint(n.ReadTarget(base+RegStatus, 8))
	if st != 0 {
		t.Errorf("fresh status = %#x", st)
	}
	n.WriteTarget(base+PacketBufBase, []byte{1, 2, 3, 4})
	n.WriteTarget(base+RegTxFIFO, desc(0, 4))
	n.WriteTarget(base+RegTxFIFO, desc(0, 4)) // fills the 1-deep FIFO
	st = leUint(n.ReadTarget(base+RegStatus, 8))
	if st&2 == 0 {
		t.Error("FIFO-full bit not set")
	}
	step(n, b, 1)
	st = leUint(n.ReadTarget(base+RegStatus, 8))
	if st&1 == 0 {
		t.Error("TX-busy bit not set during slow send")
	}
	step(n, b, 200)
	st = leUint(n.ReadTarget(base+RegStatus, 8))
	// The second descriptor was dropped by the full 1-deep FIFO.
	if got := st >> 32; got != 1 {
		t.Errorf("packets-sent counter = %d, want 1", got)
	}
	if n.Dropped() != 1 {
		t.Errorf("dropped = %d, want 1", n.Dropped())
	}
}

func TestFIFOOverflowDrops(t *testing.T) {
	n, _, _ := newRig(t, Config{FIFODepth: 2, DMABurst: 64})
	for i := 0; i < 5; i++ {
		n.WriteTarget(base+RegTxFIFO, desc(0, 8))
	}
	if n.Dropped() != 3 {
		t.Errorf("dropped = %d, want 3", n.Dropped())
	}
}

func TestInterruptOnCompletion(t *testing.T) {
	n, b, _ := newRig(t, DefaultConfig())
	fired := 0
	n.Interrupt = func() { fired++ }
	n.WriteTarget(base+RegTxFIFO, desc(0, 8))
	step(n, b, 10)
	if fired != 1 {
		t.Fatalf("interrupt fired %d times, want 1", fired)
	}
	if !n.IntPending() {
		t.Fatal("interrupt not pending")
	}
	n.WriteTarget(base+RegIntAck, []byte{0, 0, 0, 0, 0, 0, 0, 0})
	if n.IntPending() {
		t.Error("ack did not clear interrupt")
	}
}

func TestWireSerializationDelay(t *testing.T) {
	n, b, _ := newRig(t, Config{FIFODepth: 4, WireCyclesPerByte: 2, DMABurst: 64})
	n.WriteTarget(base+RegTxFIFO, desc(0, 50))
	start := b.Cycle()
	step(n, b, 1) // starts sending
	for i := 0; i < 1000 && len(n.Packets()) == 0; i++ {
		step(n, b, 1)
	}
	if len(n.Packets()) != 1 {
		t.Fatal("packet never sent")
	}
	if got := n.Packets()[0].SentAt - start; got < 100 {
		t.Errorf("send took %d cycles, want >= 100 (50B x 2cyc)", got)
	}
}

func TestAlignSize(t *testing.T) {
	tests := []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 2}, {4, 4}, {7, 4}, {8, 8}, {100, 64}, {64, 64},
	}
	for _, tt := range tests {
		if got := alignSize(tt.in); got != tt.want {
			t.Errorf("alignSize(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestRxQueuePopOnRead(t *testing.T) {
	n, _, _ := newRig(t, DefaultConfig())
	n.Deliver(11, 22, 33)
	if got := leUint(n.ReadTarget(base+RegRxCount, 8)); got != 3 {
		t.Fatalf("count = %d", got)
	}
	if got := leUint(n.ReadTarget(base+RegRxPop, 8)); got != 11 {
		t.Errorf("pop 1 = %d", got)
	}
	if got := leUint(n.ReadTarget(base+RegRxPop, 8)); got != 22 {
		t.Errorf("pop 2 = %d (destructive read must advance)", got)
	}
	if got := leUint(n.ReadTarget(base+RegRxCount, 8)); got != 1 {
		t.Errorf("count after pops = %d", got)
	}
	if n.RxPops() != 2 {
		t.Errorf("pops = %d", n.RxPops())
	}
}

func TestRxQueueEmptyReturnsSentinel(t *testing.T) {
	n, _, _ := newRig(t, DefaultConfig())
	if got := leUint(n.ReadTarget(base+RegRxPop, 8)); got != RxEmpty {
		t.Errorf("empty pop = %#x, want RxEmpty", got)
	}
	if n.RxPops() != 0 {
		t.Error("empty pop counted as a pop")
	}
}

func TestRxCountIsNonDestructive(t *testing.T) {
	n, _, _ := newRig(t, DefaultConfig())
	n.Deliver(7)
	n.ReadTarget(base+RegRxCount, 8)
	n.ReadTarget(base+RegRxCount, 8)
	if n.RxPending() != 1 {
		t.Error("RegRxCount consumed data")
	}
}

func TestDeliverTracedDrainHook(t *testing.T) {
	n, _, _ := newRig(t, DefaultConfig())
	var drained []uint64
	n.SetRxDrainHook(func(id uint64) { drained = append(drained, id) })
	n.DeliverTraced(101, 1, 2)     // two-word packet
	n.DeliverTraced(102, 3)        // one-word packet
	n.ReadTarget(base+RegRxPop, 8) // word 1 of pkt 101
	if len(drained) != 0 {
		t.Fatalf("drain fired mid-packet: %v", drained)
	}
	n.ReadTarget(base+RegRxPop, 8) // word 2 of pkt 101 → drain 101
	n.ReadTarget(base+RegRxPop, 8) // pkt 102 → drain 102
	if len(drained) != 2 || drained[0] != 101 || drained[1] != 102 {
		t.Fatalf("drained = %v, want [101 102]", drained)
	}
	// Empty pops past the end never re-fire.
	n.ReadTarget(base+RegRxPop, 8)
	if len(drained) != 2 {
		t.Fatalf("sentinel pop fired a drain: %v", drained)
	}
}

func TestUntracedDeliverNoDrainHook(t *testing.T) {
	n, _, _ := newRig(t, DefaultConfig())
	var drained []uint64
	n.SetRxDrainHook(func(id uint64) { drained = append(drained, id) })
	n.Deliver(1, 2) // plain delivery: no span, no drain events
	n.ReadTarget(base+RegRxPop, 8)
	n.ReadTarget(base+RegRxPop, 8)
	if len(drained) != 0 {
		t.Fatalf("untraced delivery fired drains: %v", drained)
	}
}

func TestRxHighWater(t *testing.T) {
	n, _, _ := newRig(t, DefaultConfig())
	n.Deliver(1, 2, 3)
	n.ReadTarget(base+RegRxPop, 8)
	n.Deliver(4) // pending back to 3, high water stays 3
	if n.RxHighWater() != 3 {
		t.Fatalf("high water = %d, want 3", n.RxHighWater())
	}
	n.Deliver(5) // pending 4 → new high water
	if n.RxHighWater() != 4 {
		t.Fatalf("high water = %d, want 4", n.RxHighWater())
	}
}

func TestTxDestSteersPackets(t *testing.T) {
	n, b, _ := newRig(t, DefaultConfig())
	// Default: no steering → topology default route.
	n.WriteTarget(base+PacketBufBase, []byte{1, 0, 0, 0, 0, 0, 0, 0})
	n.WriteTarget(base+RegTxFIFO, desc(0, 8))
	step(n, b, 10)
	// Steer to node 3; the setting is sticky across descriptors.
	dst := make([]byte, 8)
	putLE(dst, 3)
	n.WriteTarget(base+RegTxDest, dst)
	if got := leUint(n.ReadTarget(base+RegTxDest, 8)); got != 3 {
		t.Errorf("RegTxDest reads back %d, want 3", got)
	}
	n.WriteTarget(base+RegTxFIFO, desc(0, 8))
	step(n, b, 10)
	n.WriteTarget(base+RegTxFIFO, desc(0, 8))
	step(n, b, 10)
	// Back to auto.
	putLE(dst, TxDestAuto)
	n.WriteTarget(base+RegTxDest, dst)
	if got := leUint(n.ReadTarget(base+RegTxDest, 8)); got != TxDestAuto {
		t.Errorf("RegTxDest reads back %d, want auto sentinel", got)
	}
	n.WriteTarget(base+RegTxFIFO, desc(0, 8))
	step(n, b, 10)
	pkts := n.Packets()
	if len(pkts) != 4 {
		t.Fatalf("packets = %d, want 4", len(pkts))
	}
	for i, want := range []int{-1, 3, 3, -1} {
		if pkts[i].Dest != want {
			t.Errorf("packet %d dest = %d, want %d", i, pkts[i].Dest, want)
		}
	}
}

func TestRxPopMatchesRegister(t *testing.T) {
	n, b, _ := newRig(t, DefaultConfig())
	n.Deliver(11, 22)
	if v, ok := n.RxPop(); !ok || v != 11 {
		t.Fatalf("RxPop = %d,%v want 11,true", v, ok)
	}
	// The register path pops the same queue.
	if got := leUint(n.ReadTarget(base+RegRxPop, 8)); got != 22 {
		t.Fatalf("RegRxPop = %d, want 22", got)
	}
	if _, ok := n.RxPop(); ok {
		t.Error("RxPop on empty queue reported ok")
	}
	_ = b
}
