package core

import (
	"testing"

	"csbsim/internal/bus"
	"csbsim/internal/mem"
)

func newCSB(t *testing.T, cfg Config) *CSB {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func dword(v byte) []byte {
	d := make([]byte, 8)
	d[0] = v
	return d
}

// storeSeq issues n combining dword stores from pid starting at base.
func storeSeq(t *testing.T, c *CSB, pid uint8, base uint64, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if !c.Store(pid, base+uint64(i*8), 8, dword(byte(i+1))) {
			t.Fatalf("store %d rejected", i)
		}
	}
}

func TestFlushSucceedsOnMatch(t *testing.T) {
	c := newCSB(t, DefaultConfig())
	storeSeq(t, c, 1, 0x1000, 8)
	if c.HitCount() != 8 {
		t.Fatalf("hits = %d, want 8", c.HitCount())
	}
	old := uint64(8)
	got, ready := c.ConditionalFlush(1, 0x1000, 8, old)
	if !ready {
		t.Fatal("flush stalled")
	}
	// §3.1: the flush leaves the register unchanged on success.
	if got != old {
		t.Errorf("flush result = %d, want %d (unchanged)", got, old)
	}
	s := c.Stats()
	if s.FlushOK != 1 || s.FlushFail != 0 {
		t.Errorf("stats = %+v", s)
	}
	if c.Drained() {
		t.Error("line should be pending for the system interface")
	}
}

func TestFlushFailsOnWrongCount(t *testing.T) {
	c := newCSB(t, DefaultConfig())
	storeSeq(t, c, 1, 0x1000, 7) // one store short
	got, ready := c.ConditionalFlush(1, 0x1000, 8, 8)
	if !ready {
		t.Fatal("flush stalled")
	}
	if got != 0 {
		t.Errorf("failed flush returned %d, want 0", got)
	}
	if c.Stats().FlushFail != 1 {
		t.Error("failure not counted")
	}
	if c.HitCount() != 0 {
		t.Error("counter not reset to zero after failed flush")
	}
	if !c.Drained() {
		t.Error("nothing should be issued on failure")
	}
}

func TestFlushFailsOnWrongPID(t *testing.T) {
	c := newCSB(t, DefaultConfig())
	storeSeq(t, c, 1, 0x1000, 8)
	if got, _ := c.ConditionalFlush(2, 0x1000, 8, 8); got != 0 {
		t.Errorf("flush under wrong pid returned %d", got)
	}
}

func TestFlushFailsOnWrongLine(t *testing.T) {
	c := newCSB(t, DefaultConfig())
	storeSeq(t, c, 1, 0x1000, 8)
	if got, _ := c.ConditionalFlush(1, 0x2000, 8, 8); got != 0 {
		t.Errorf("flush to wrong line returned %d", got)
	}
}

func TestFlushOnEmptyBufferFails(t *testing.T) {
	c := newCSB(t, DefaultConfig())
	if got, ready := c.ConditionalFlush(1, 0x1000, 0, 7); !ready || got != 0 {
		t.Errorf("flush of empty buffer: got %d ready %v", got, ready)
	}
}

// drain hands pending lines to a scratch bus so the data register frees,
// as the system interface would.
func drain(t *testing.T, c *CSB) {
	t.Helper()
	b, _ := bus.New(bus.Config{Model: bus.Multiplexed, WidthBytes: 8}, nil)
	for i := 0; i < 1000 && !c.Drained(); i++ {
		b.Tick()
		c.TickBus(b)
	}
	if !c.Drained() {
		t.Fatal("CSB did not drain")
	}
}

// §3.2 scenario walkthrough: a process is interrupted before its flush;
// the competitor's first store clears the buffer and resets the counter to
// 1; the original process's flush then fails.
func TestCompetingProcessScenario(t *testing.T) {
	c := newCSB(t, DefaultConfig())
	storeSeq(t, c, 1, 0x1000, 5) // process 1 partway through
	// Context switch: process 2 starts its own sequence.
	if !c.Store(2, 0x2000, 8, dword(9)) {
		t.Fatal("competing store rejected")
	}
	if c.HitCount() != 1 {
		t.Errorf("hits after competing store = %d, want 1", c.HitCount())
	}
	if c.Stats().Conflicts != 1 {
		t.Errorf("conflicts = %d, want 1", c.Stats().Conflicts)
	}
	// Process 2 completes and flushes successfully.
	storeSeq(t, c, 2, 0x2008, 7)
	if got, _ := c.ConditionalFlush(2, 0x2000, 8, 8); got != 8 {
		t.Errorf("process 2 flush = %d, want success", got)
	}
	drain(t, c)
	// Back to process 1: its flush must fail (counter/PID mismatch).
	if got, ready := c.ConditionalFlush(1, 0x1000, 8, 8); !ready || got != 0 {
		t.Errorf("interrupted process flush = %d (ready %v), want 0", got, ready)
	}
	// Recovery: process 1 redoes the whole sequence.
	storeSeq(t, c, 1, 0x1000, 8)
	if got, _ := c.ConditionalFlush(1, 0x1000, 8, 8); got != 8 {
		t.Errorf("retry flush = %d, want success", got)
	}
}

// §3.2: combining stores can be issued in any order; only the total count
// is needed.
func TestStoresInAnyOrder(t *testing.T) {
	c := newCSB(t, DefaultConfig())
	order := []int{0, 5, 1, 7, 3, 2, 6, 4} // the paper's listing stores out of order
	for _, i := range order {
		c.Store(1, 0x1000+uint64(i*8), 8, dword(byte(i+1)))
	}
	if got, _ := c.ConditionalFlush(1, 0x1000, 8, 42); got != 42 {
		t.Error("out-of-order sequence should flush successfully")
	}
}

// Unused words are padded with zeroes (§3.2), and the line is full-size.
func TestPartialLineZeroPadded(t *testing.T) {
	ram := mem.NewMemory()
	// Pre-fill the target with garbage to prove padding overwrites it.
	for i := uint64(0); i < 64; i++ {
		ram.WriteUint(0x1000+i, 1, 0xff)
	}
	rt := mem.NewRouter(ram)
	b, _ := bus.New(bus.Config{Model: bus.Multiplexed, WidthBytes: 8}, rt)

	c := newCSB(t, DefaultConfig())
	c.Store(1, 0x1000, 8, dword(0xaa))
	c.Store(1, 0x1008, 8, dword(0xbb))
	if got, _ := c.ConditionalFlush(1, 0x1000, 2, 2); got != 2 {
		t.Fatal("flush failed")
	}
	for i := 0; i < 100 && !c.Drained(); i++ {
		b.Tick()
		c.TickBus(b)
	}
	b.Drain(100)
	if got := ram.ReadUint(0x1000, 1); got != 0xaa {
		t.Errorf("data[0] = %#x", got)
	}
	if got := ram.ReadUint(0x1008, 1); got != 0xbb {
		t.Errorf("data[8] = %#x", got)
	}
	for i := uint64(16); i < 64; i++ {
		if got := ram.ReadUint(0x1000+i, 1); got != 0 {
			t.Fatalf("byte %d = %#x, want 0 (zero padding)", i, got)
		}
	}
	if s := b.Stats(); s.Transactions != 1 || s.BySize[64] != 1 {
		t.Errorf("bus stats = %+v, want one 64B burst", s)
	}
	if c.Stats().PaddedBytes != 48 {
		t.Errorf("padded = %d, want 48", c.Stats().PaddedBytes)
	}
}

// A single-entry CSB stalls stores between a successful flush and the bus
// accepting the line; a double-buffered CSB does not (§3.2 extension).
func TestSingleEntryStallsUntilSent(t *testing.T) {
	c := newCSB(t, DefaultConfig())
	storeSeq(t, c, 1, 0x1000, 8)
	if _, ready := c.ConditionalFlush(1, 0x1000, 8, 8); !ready {
		t.Fatal("flush stalled unexpectedly")
	}
	if !c.Busy() {
		t.Fatal("CSB should be busy while the line waits for the bus")
	}
	if c.Store(1, 0x2000, 8, dword(1)) {
		t.Error("store accepted while busy")
	}
	if _, ready := c.ConditionalFlush(1, 0x2000, 1, 1); ready {
		t.Error("flush accepted while busy")
	}
	if c.Stats().StallBusy != 2 {
		t.Errorf("StallBusy = %d, want 2", c.Stats().StallBusy)
	}
	// Hand the line to the bus; the register frees.
	b, _ := bus.New(bus.Config{Model: bus.Multiplexed, WidthBytes: 8}, nil)
	c.TickBus(b)
	if c.Busy() {
		t.Error("CSB still busy after the line was accepted by the bus")
	}
	if !c.Store(1, 0x2000, 8, dword(1)) {
		t.Error("store rejected after drain")
	}
}

func TestDoubleBufferAllowsOverlap(t *testing.T) {
	c := newCSB(t, Config{LineSize: 64, DoubleBuffered: true, CheckAddress: true})
	storeSeq(t, c, 1, 0x1000, 8)
	if _, ready := c.ConditionalFlush(1, 0x1000, 8, 8); !ready {
		t.Fatal("first flush stalled")
	}
	// Second sequence proceeds immediately without the bus draining.
	storeSeq(t, c, 1, 0x2000, 8)
	if got, ready := c.ConditionalFlush(1, 0x2000, 8, 8); !ready || got != 8 {
		t.Fatalf("second flush got %d ready %v", got, ready)
	}
	// A third sequence must stall: both line buffers are pending.
	if c.Store(1, 0x3000, 8, dword(1)) {
		t.Error("third sequence accepted with both buffers pending")
	}
	// Drain one line; a new sequence becomes possible.
	b, _ := bus.New(bus.Config{Model: bus.Multiplexed, WidthBytes: 8}, nil)
	c.TickBus(b)
	if !c.Store(1, 0x3000, 8, dword(1)) {
		t.Error("store rejected after one buffer drained")
	}
}

// Ablation X5: with address checking off, two threads under one PID on
// different lines are NOT detected as conflicting (the last line wins).
func TestAddressCheckAblation(t *testing.T) {
	c := newCSB(t, Config{LineSize: 64, CheckAddress: false})
	c.Store(7, 0x1000, 8, dword(1))
	c.Store(7, 0x2000, 8, dword(2)) // different line, same PID: merges!
	if c.HitCount() != 2 {
		t.Fatalf("hits = %d, want 2 (no address check)", c.HitCount())
	}
	// With checking on, the same interleaving resets the counter.
	c2 := newCSB(t, DefaultConfig())
	c2.Store(7, 0x1000, 8, dword(1))
	c2.Store(7, 0x2000, 8, dword(2))
	if c2.HitCount() != 1 {
		t.Fatalf("hits = %d, want 1 (address conflict)", c2.HitCount())
	}
}

func TestLineSizeVariants(t *testing.T) {
	for _, ls := range []int{16, 32, 64, 128} {
		c := newCSB(t, Config{LineSize: ls, CheckAddress: true})
		n := ls / 8
		storeSeq(t, c, 1, 0x1000, n)
		if got, _ := c.ConditionalFlush(1, 0x1000, int64(n), 1); got != 1 {
			t.Errorf("line size %d: flush failed", ls)
		}
	}
}

func TestStoreCrossingLinePanics(t *testing.T) {
	c := newCSB(t, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("no panic for line-crossing store")
		}
	}()
	c.Store(1, 0x103c, 8, dword(1)) // crosses the 0x1040 line boundary
}

func TestConfigValidate(t *testing.T) {
	for _, cfg := range []Config{{LineSize: 0}, {LineSize: 8}, {LineSize: 48}} {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestBurstIsOrderedIOTransaction(t *testing.T) {
	c := newCSB(t, DefaultConfig())
	storeSeq(t, c, 1, 0x1000, 8)
	c.ConditionalFlush(1, 0x1000, 8, 8)
	b, _ := bus.New(bus.Config{Model: bus.Multiplexed, WidthBytes: 8}, nil)
	var seen *bus.Txn
	b.AttachObserver(func(t *bus.Txn) { seen = t })
	for i := 0; i < 100 && seen == nil; i++ {
		b.Tick()
		c.TickBus(b)
	}
	if seen == nil {
		t.Fatal("burst never issued")
	}
	if !seen.Ordered || !seen.IO || !seen.Write || seen.Size != 64 || seen.Addr != 0x1000 {
		t.Errorf("burst txn = %+v", seen)
	}
	if c.Stats().Bursts != 1 || c.Stats().BytesCommitted != 64 {
		t.Errorf("stats = %+v", c.Stats())
	}
}
