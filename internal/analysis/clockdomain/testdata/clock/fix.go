// Package fix seeds clock-domain violations: cycle stamps read from two
// different machines' Cycle() compared or subtracted without passing
// through an alignment offset — the seeded bug being an unaligned
// cross-node cycle subtraction — plus the sanctioned forms: same-domain
// arithmetic, the ctrace offsets-map alignment idiom, and the
// //csb:aligned escape hatch.
package fix

import "csbsim/internal/sim"

type node struct{ M *sim.Machine }

type pair struct{ a, b *node }

// now is a cycle-returning helper: calls to it are clock sources keyed
// by the call site's receiver.
func (n *node) now() uint64 { return n.M.Cycle() }

// offsets mirrors ctrace.Tracer's per-node alignment table.
var offsets map[string]int64

func skew(p *pair) uint64 {
	return p.a.M.Cycle() - p.b.M.Cycle() // want `clock domains \(p.a.M vs p.b.M\) combined without alignment`
}

func viaLocals(p *pair) uint64 {
	ta := p.a.M.Cycle()
	tb := p.b.M.Cycle()
	if ta > tb { // want `clock domains \(p.a.M vs p.b.M\) combined without alignment`
		return ta - tb // want `p.a.M vs p.b.M`
	}
	return 0
}

func viaHelper(p *pair) uint64 {
	return p.a.now() - p.b.now() // want `clock domains \(p.a vs p.b\)`
}

// alignedIdiom routes the a-side stamp through the offsets map before
// mixing; no diagnostic.
func alignedIdiom(p *pair) uint64 {
	ta := uint64(int64(p.a.M.Cycle()) + offsets["a"])
	return ta - p.b.M.Cycle()
}

// sanctionedPragma mixes raw stamps under the reviewed escape hatch.
func sanctionedPragma(p *pair) uint64 {
	return p.a.M.Cycle() - p.b.M.Cycle() //csb:aligned both nodes ticked in lockstep by this test's setup
}

// sameDomain arithmetic is always fine.
func sameDomain(n *node) uint64 {
	t0 := n.M.Cycle()
	return n.M.Cycle() - t0
}

// untainted operands (plain numbers, fields) never report.
func relative(n *node, deadline uint64) bool {
	return n.M.Cycle()+100 > deadline
}
