package csbsim

// One testing.B benchmark per figure of the paper's evaluation section
// (and per extension experiment). Each iteration regenerates the full
// figure — every scheme at every transfer size — on the simulated
// machine, and reports headline values as custom metrics so regressions
// in the reproduced shapes are visible in benchmark output:
//
//	go test -bench=Figure -benchmem
//
// The cmd/csbfig tool prints the same results as human-readable tables;
// EXPERIMENTS.md records the measured values against the paper's.

import (
	"strings"
	"testing"

	"csbsim/internal/bench"
)

// reportSeries attaches the last (largest-transfer) value of selected
// series as benchmark metrics.
func reportSeries(b *testing.B, r bench.Result, names ...string) {
	b.Helper()
	for _, s := range r.Series {
		for _, want := range names {
			if s.Name == want && len(s.Y) > 0 {
				// Metric units must not contain whitespace.
				unit := strings.NewReplacer(" ", "_", "(", "", ")", "").Replace(want)
				b.ReportMetric(s.Y[len(s.Y)-1], unit+"@max")
			}
		}
	}
}

func benchFigure(b *testing.B, id string, metrics ...string) {
	b.Helper()
	var last bench.Result
	for i := 0; i < b.N; i++ {
		r, err := bench.ByID(id)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	reportSeries(b, last, metrics...)
}

// Figure 3(a)-(c): store bandwidth vs CPU:bus frequency ratio on the
// 8-byte multiplexed bus.
func BenchmarkFigure3aRatio2(b *testing.B) { benchFigure(b, "3a", "no-combine", "CSB") }
func BenchmarkFigure3bRatio4(b *testing.B) { benchFigure(b, "3b", "no-combine", "CSB") }
func BenchmarkFigure3cRatio6(b *testing.B) { benchFigure(b, "3c", "no-combine", "CSB") }

// Figure 3(d)-(f): store bandwidth vs cache line size.
func BenchmarkFigure3dLine32(b *testing.B)  { benchFigure(b, "3d", "combine-32", "CSB") }
func BenchmarkFigure3eLine64(b *testing.B)  { benchFigure(b, "3e", "combine-64", "CSB") }
func BenchmarkFigure3fLine128(b *testing.B) { benchFigure(b, "3f", "combine-128", "CSB") }

// Figure 3(g)-(i): store bandwidth under bus overheads.
func BenchmarkFigure3gTurnaround(b *testing.B) { benchFigure(b, "3g", "no-combine", "CSB") }
func BenchmarkFigure3hAckDelay4(b *testing.B)  { benchFigure(b, "3h", "no-combine", "CSB") }
func BenchmarkFigure3iAckDelay8(b *testing.B)  { benchFigure(b, "3i", "no-combine", "CSB") }

// Figure 4(a)-(b): split address/data bus widths.
func BenchmarkFigure4aSplit128(b *testing.B) { benchFigure(b, "4a", "no-combine", "CSB") }
func BenchmarkFigure4bSplit256(b *testing.B) { benchFigure(b, "4b", "no-combine", "CSB") }

// Figure 4(c)-(e): split bus under overheads.
func BenchmarkFigure4cTurnaround(b *testing.B) { benchFigure(b, "4c", "no-combine", "CSB") }
func BenchmarkFigure4dAckDelay4(b *testing.B)  { benchFigure(b, "4d", "no-combine", "CSB") }
func BenchmarkFigure4eAckDelay8(b *testing.B)  { benchFigure(b, "4e", "no-combine", "CSB") }

// Figure 5: lock-access-unlock vs CSB atomic access latency.
func BenchmarkFigure5aLockHit(b *testing.B)  { benchFigure(b, "5a", "lock+no-combine", "CSB") }
func BenchmarkFigure5bLockMiss(b *testing.B) { benchFigure(b, "5b", "lock+no-combine", "CSB") }

// Extensions and ablations (DESIGN.md §4).
func BenchmarkAblationDoubleBuffer(b *testing.B) {
	benchFigure(b, "X1", "single-buffer", "double-buffer")
}
func BenchmarkExtensionPIOvsDMA(b *testing.B) {
	benchFigure(b, "X2", "PIO-uncached", "PIO-CSB", "DMA")
}
func BenchmarkExtensionPIOvsDMALatency(b *testing.B) {
	benchFigure(b, "X2L", "PIO-uncached", "PIO-CSB", "DMA")
}
func BenchmarkAblationR10KCombining(b *testing.B) {
	benchFigure(b, "X4", "combine-64 (any order)", "combine-64 (R10K sequential)")
}

// BenchmarkMachineThroughput measures raw simulator speed (simulated
// cycles per wall-clock second) on the bandwidth microbenchmark — not a
// paper figure, but useful when sizing longer experiments.
func BenchmarkMachineThroughput(b *testing.B) {
	p := bench.DefaultParams()
	p.Scheme = bench.SchemeCSB
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.MeasureBandwidth(p, 1024); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionSharedNIC(b *testing.B) {
	benchFigure(b, "X6", "lock+uncached", "CSB lock-free")
}

func BenchmarkExtensionPingPong(b *testing.B) {
	benchFigure(b, "X8", "PIO-uncached", "PIO-CSB", "DMA")
}
