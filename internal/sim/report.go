package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Report renders the full-machine statistics as a human-readable block,
// used by cmd/csbsim -v and handy from tests.
func (s Stats) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles:        %d CPU, %d bus\n", s.Cycles, s.BusCycles)
	fmt.Fprintf(&b, "instructions:  %d retired, IPC %.2f (%d fetched, %d squashed)\n",
		s.CPU.Retired, s.CPU.IPC(), s.CPU.Fetched, s.CPU.Squashed)
	fmt.Fprintf(&b, "branches:      %d (%d mispredicted", s.CPU.Branches, s.CPU.Mispredicts)
	if s.CPU.Branches > 0 {
		fmt.Fprintf(&b, ", %.1f%%", 100*float64(s.CPU.Mispredicts)/float64(s.CPU.Branches))
	}
	b.WriteString(")\n")
	fmt.Fprintf(&b, "caches:        L1I %d/%d  L1D %d/%d  L2 %d/%d (hits/misses)\n",
		s.Caches.L1I.Hits, s.Caches.L1I.Misses,
		s.Caches.L1D.Hits, s.Caches.L1D.Misses,
		s.Caches.L2.Hits, s.Caches.L2.Misses)
	fmt.Fprintf(&b, "tlb:           %d hits, %d misses\n", s.TLBHits, s.TLBMisses)
	fmt.Fprintf(&b, "uncached:      %d stores (%d coalesced), %d loads, %d swaps\n",
		s.CPU.UncachedStores, s.UB.Coalesced, s.CPU.UncachedLoads, s.CPU.Swaps)
	fmt.Fprintf(&b, "csb:           %d stores, %d flushes ok, %d failed, %d bursts, %d conflicts, %d busy stalls\n",
		s.CSB.Stores, s.CSB.FlushOK, s.CSB.FlushFail, s.CSB.Bursts, s.CSB.Conflicts, s.CSB.StallBusy)
	busy := 0.0
	if s.BusCycles > 0 {
		busy = 100 * float64(s.Bus.BusyCycles) / float64(s.BusCycles)
	}
	fmt.Fprintf(&b, "bus:           %d transactions (%d reads, %d writes, %d bursts), %d bytes, %.1f%% busy\n",
		s.Bus.Transactions, s.Bus.Reads, s.Bus.Writes, s.Bus.Bursts, s.Bus.Bytes, busy)
	if len(s.Bus.BySize) > 0 {
		sizes := make([]int, 0, len(s.Bus.BySize))
		for sz := range s.Bus.BySize {
			sizes = append(sizes, sz)
		}
		sort.Ints(sizes)
		b.WriteString("  by size:    ")
		for i, sz := range sizes {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%dB×%d", sz, s.Bus.BySize[sz])
		}
		b.WriteByte('\n')
	}
	if s.CPU.Interrupts+s.CPU.Traps > 0 {
		fmt.Fprintf(&b, "events:        %d interrupts, %d traps, %d faults\n",
			s.CPU.Interrupts, s.CPU.Traps, s.CPU.Faults)
	}
	if f := s.Faults; f != nil {
		fmt.Fprintf(&b, "faults:        seed %d: %d injected (%d bus nacks, %d dev stalls/%d cyc, %d bp windows/%d cyc, %d flush delays, %d flush drops, %d csb squeezes, %d ub squeezes)\n",
			f.Seed, f.Total(), f.BusNacks, f.DeviceStalls, f.DeviceStallCycles,
			f.BackpressureWindows, f.BackpressureCycles, f.FlushDelays, f.FlushDrops,
			f.CSBPressureStalls, f.UBPressureStalls)
	}
	if s.Counters != nil {
		b.WriteString("--- counters ---\n")
		b.WriteString(s.Counters.Format())
	}
	return b.String()
}

// ReportCPI renders the stall-attribution stack (every cycle charged to
// exactly one cause; buckets sum to the CPU cycle count).
func (s Stats) ReportCPI() string {
	return s.CPU.CPI.Format()
}
