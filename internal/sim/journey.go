// Machine-level journey-tracing and counter-registry wiring: connects the
// leaf obs packages (internal/obs/journey, internal/obs/counters) to the
// live machine. Like the fault and metrics hooks, everything here is
// opt-in — an unattached machine pays nothing, and attaching changes no
// simulated timing.
package sim

import (
	"fmt"

	"csbsim/internal/obs/counters"
	"csbsim/internal/obs/journey"
)

// deviceJourneySink matches devices (structurally, so this package keeps
// not importing internal/device) that accept the descriptor-journey
// hooks — the NIC's SetJourneyHooks.
type deviceJourneySink interface {
	SetJourneyHooks(descQueued func(offset uint64, length int, viaDMA bool) uint64,
		txStarted, txDone func(id uint64))
}

// deviceCounterSource matches devices that register named counters.
type deviceCounterSource interface {
	RegisterCounters(prefix string, r *counters.Registry)
}

// AttachCounters creates (once) the unified counter registry and has
// every layer — CPU, bus, caches, uncached buffer, CSB, and each
// registered device — register its named counters as read closures.
// After attaching, Stats() carries a registry snapshot and the report
// renders it; existing stats fields are untouched either way.
func (m *Machine) AttachCounters() *counters.Registry {
	if m.counters != nil {
		return m.counters
	}
	r := counters.NewRegistry()
	m.counters = r
	m.CPU.RegisterCounters("cpu", r)
	m.Bus.RegisterCounters("bus", r)
	m.Hier.RegisterCounters("cache", r)
	m.UB.RegisterCounters("ub", r)
	m.CSB.RegisterCounters("csb", r)
	for _, d := range m.devices {
		m.registerDeviceCounters(d)
	}
	return r
}

// Counters returns the attached registry, or nil.
func (m *Machine) Counters() *counters.Registry { return m.counters }

func (m *Machine) registerDeviceCounters(d Device) {
	if cs, ok := d.(deviceCounterSource); ok {
		cs.RegisterCounters(fmt.Sprintf("dev%d", m.devCounters), m.counters)
		m.devCounters++
	}
}

// AttachJourneys creates (once) the store-journey tracer on the
// machine's CPU-cycle clock and wires it into the uncached buffer, the
// CSB, and every journey-capable device. The tracer's latency histograms
// and run counters land in the unified registry (attached implicitly),
// so they appear in the report, the JSON stats, and the watchdog's
// diagnostic dump. Attach before running.
func (m *Machine) AttachJourneys(cfg journey.Config) (*journey.Tracer, error) {
	if m.journeys != nil {
		return m.journeys, nil
	}
	tr, err := journey.NewTracer(cfg, m.AttachCounters(), func() uint64 { return m.cycle })
	if err != nil {
		return nil, err
	}
	m.journeys = tr
	m.UB.AttachTracer(tr)
	m.CSB.AttachTracer(tr)
	for _, d := range m.devices {
		wireDeviceJourneys(d, tr)
	}
	return tr, nil
}

// Journeys returns the attached tracer, or nil.
func (m *Machine) Journeys() *journey.Tracer { return m.journeys }

func wireDeviceJourneys(d Device, tr *journey.Tracer) {
	if js, ok := d.(deviceJourneySink); ok {
		js.SetJourneyHooks(tr.NICDescQueued, tr.NICTxStarted, tr.NICTxDone)
	}
}

// ExportJourneys feeds the retained journeys into the attached Perfetto
// exporter as memory-system slices with flow arrows back to the pipeline
// and bus tracks. Call after the run, before writing the trace; a no-op
// unless both a Perfetto exporter and a journey tracer are attached.
func (m *Machine) ExportJourneys() {
	if m.perfetto != nil && m.journeys != nil {
		m.perfetto.AddJourneys(m.journeys.Retained(), m.Cfg.Ratio)
	}
}

// flushObs drains buffered observability state on any run exit —
// including the abort paths (watchdog trip, typed device error), which
// previously lost the final partial metrics window.
//
//csb:barrier flushes windows shared consumers read; never inside a window
func (m *Machine) flushObs() {
	m.FlushMetrics()
	for i := range m.periodicHooks {
		m.periodicHooks[i].fn(m.cycle)
	}
}

// FlushObs drains buffered observability state (the final partial metrics
// window, one last periodic-hook firing). Machine.Run's abort paths call
// it internally; cluster.Run calls it on its own error paths so a wedged
// node still yields a partial dump.
//
//csb:barrier flushes windows shared consumers read; never inside a window
func (m *Machine) FlushObs() { m.flushObs() }
