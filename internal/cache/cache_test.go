package cache

import (
	"math/rand"
	"testing"

	"csbsim/internal/bus"
)

func small() Config {
	return Config{Size: 256, Assoc: 2, LineSize: 64, HitLatency: 1}
}

func TestConfigValidate(t *testing.T) {
	good := []Config{
		small(),
		{Size: 32 << 10, Assoc: 2, LineSize: 64, HitLatency: 1},
		{Size: 64, Assoc: 1, LineSize: 64},
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("good config %+v rejected: %v", c, err)
		}
	}
	bad := []Config{
		{Size: 0, Assoc: 1, LineSize: 64},
		{Size: 100, Assoc: 1, LineSize: 64},
		{Size: 256, Assoc: 0, LineSize: 64},
		{Size: 256, Assoc: 2, LineSize: 48},
		{Size: 192, Assoc: 1, LineSize: 64}, // 3 sets
		{Size: 256, Assoc: 2, LineSize: 64, HitLatency: -1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %+v accepted", c)
		}
	}
}

func TestLookupInsert(t *testing.T) {
	c, err := New(small()) // 2 sets x 2 ways
	if err != nil {
		t.Fatal(err)
	}
	if c.Lookup(0x1000) {
		t.Fatal("hit in empty cache")
	}
	c.Insert(0x1000)
	if !c.Lookup(0x1000) {
		t.Fatal("miss after insert")
	}
	if !c.Lookup(0x1030) { // same line
		t.Fatal("same-line address missed")
	}
	if c.Lookup(0x1040) { // next line
		t.Fatal("adjacent line hit")
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c, _ := New(small()) // sets=2: lines 0x000,0x080,... map to set 0
	// Three lines in set 0 (stride 128 = 2 sets * 64).
	c.Insert(0x0000)
	c.Insert(0x0080)
	c.Lookup(0x0000) // make 0x0080 LRU
	victim, dirty, evicted := c.Insert(0x0100)
	if !evicted || dirty {
		t.Fatalf("evicted=%v dirty=%v", evicted, dirty)
	}
	if victim != 0x0080 {
		t.Errorf("victim = %#x, want 0x0080", victim)
	}
	if c.Contains(0x0080) {
		t.Error("victim still present")
	}
	if !c.Contains(0x0000) || !c.Contains(0x0100) {
		t.Error("survivors missing")
	}
}

func TestDirtyVictimReported(t *testing.T) {
	c, _ := New(small())
	c.Insert(0x0000)
	c.SetDirty(0x0010)
	c.Insert(0x0080)
	_, dirty, evicted := c.Insert(0x0100) // evicts 0x0000 (LRU)
	if !evicted || !dirty {
		t.Errorf("dirty victim not reported: evicted=%v dirty=%v", evicted, dirty)
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d", c.Stats().Writebacks)
	}
}

func TestInvalidate(t *testing.T) {
	c, _ := New(small())
	c.Insert(0x0000)
	c.SetDirty(0x0000)
	dirty, present := c.Invalidate(0x0000)
	if !present || !dirty {
		t.Errorf("invalidate: present=%v dirty=%v", present, dirty)
	}
	if _, present := c.Invalidate(0x0000); present {
		t.Error("double invalidate reported present")
	}
}

func TestContainsDoesNotTouchStats(t *testing.T) {
	c, _ := New(small())
	c.Contains(0x0)
	if s := c.Stats(); s.Hits+s.Misses != 0 {
		t.Error("Contains counted as access")
	}
}

// ---- hierarchy ----

func newHier(t *testing.T) (*Hierarchy, *bus.Bus) {
	t.Helper()
	h, err := NewHierarchy(DefaultHierConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := bus.New(bus.Config{Model: bus.Multiplexed, WidthBytes: 8, ReadWait: 6}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return h, b
}

// step advances the hierarchy+bus with a CPU:bus ratio of 1 (tests only
// care about event ordering, not exact latency here).
func step(h *Hierarchy, b *bus.Bus, n int) {
	for i := 0; i < n; i++ {
		h.TickCPU()
		b.Tick()
		h.TickBus(b)
	}
}

func TestHierarchyMissFillsBothLevels(t *testing.T) {
	h, b := newHier(t)
	done := false
	lat, hit, accepted := h.Load(0x1000, false, func() { done = true })
	if hit || !accepted || lat != 0 {
		t.Fatalf("expected miss: lat=%d hit=%v acc=%v", lat, hit, accepted)
	}
	step(h, b, 200)
	if !done {
		t.Fatal("fill callback never ran")
	}
	if !h.Present(0x1000, false) {
		t.Error("line not in L1D after fill")
	}
	if !h.L2().Contains(0x1000) {
		t.Error("line not in L2 after fill")
	}
	// Second access hits.
	lat, hit, _ = h.Load(0x1008, false, nil)
	if !hit || lat != h.L1D().Config().HitLatency {
		t.Errorf("expected L1 hit, lat=%d hit=%v", lat, hit)
	}
}

func TestHierarchyL2HitAvoidsBus(t *testing.T) {
	h, b := newHier(t)
	h.L2().Preload(0x2000)
	done := false
	h.Load(0x2000, false, func() { done = true })
	step(h, b, 50)
	if !done {
		t.Fatal("L2 hit never completed")
	}
	if b.Stats().Transactions != 0 {
		t.Error("L2 hit went to the bus")
	}
}

func TestHierarchyMergesMissesToSameLine(t *testing.T) {
	h, b := newHier(t)
	var n int
	h.Load(0x3000, false, func() { n++ })
	h.Load(0x3008, false, func() { n++ })
	step(h, b, 200)
	if n != 2 {
		t.Fatalf("callbacks = %d, want 2", n)
	}
	if got := b.Stats().Transactions; got != 1 {
		t.Errorf("bus transactions = %d, want 1 (merged)", got)
	}
}

func TestHierarchyMSHRExhaustion(t *testing.T) {
	cfg := DefaultHierConfig()
	cfg.MSHRs = 2
	h, err := NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, acc := h.Load(0x1000, false, nil); !acc {
		t.Fatal("first miss rejected")
	}
	if _, _, acc := h.Load(0x2000, false, nil); !acc {
		t.Fatal("second miss rejected")
	}
	if _, _, acc := h.Load(0x3000, false, nil); acc {
		t.Error("third miss accepted with 2 MSHRs")
	}
}

func TestInstructionAndDataSeparate(t *testing.T) {
	h, b := newHier(t)
	h.Load(0x4000, true, nil) // instruction fetch
	step(h, b, 200)
	if !h.Present(0x4000, true) {
		t.Error("line not in L1I")
	}
	if h.Present(0x4000, false) {
		t.Error("fetch polluted L1D")
	}
}

func TestStoreHitDrains(t *testing.T) {
	h, b := newHier(t)
	h.Warm(0x5000, false)
	if !h.Store(0x5000) {
		t.Fatal("store rejected")
	}
	if h.StoreBufferEmpty() {
		t.Fatal("write buffer empty immediately")
	}
	step(h, b, 5)
	if !h.StoreBufferEmpty() {
		t.Fatal("write buffer did not drain on hit")
	}
}

func TestStoreMissAllocates(t *testing.T) {
	h, b := newHier(t)
	h.Store(0x6000)
	step(h, b, 300)
	if !h.StoreBufferEmpty() {
		t.Fatal("store miss never completed")
	}
	if !h.Present(0x6000, false) {
		t.Error("write-allocate did not fill L1D")
	}
}

func TestWriteBufferFullRejects(t *testing.T) {
	cfg := DefaultHierConfig()
	cfg.WriteBuffer = 2
	h, _ := NewHierarchy(cfg)
	h.Store(0x1000)
	h.Store(0x2000)
	if h.Store(0x3000) {
		t.Error("store accepted into full write buffer")
	}
	if h.Stats().StoreStalls != 1 {
		t.Errorf("StoreStalls = %d", h.Stats().StoreStalls)
	}
}

func TestDirtyL2EvictionGoesToBus(t *testing.T) {
	cfg := DefaultHierConfig()
	// Tiny L2: 1 set x 1 way so any second line evicts the first.
	cfg.L2 = Config{Size: 64, Assoc: 1, LineSize: 64, HitLatency: 2}
	cfg.L1I = Config{Size: 64, Assoc: 1, LineSize: 64, HitLatency: 1}
	cfg.L1D = Config{Size: 64, Assoc: 1, LineSize: 64, HitLatency: 1}
	h, err := NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := bus.New(bus.Config{Model: bus.Multiplexed, WidthBytes: 8, ReadWait: 2}, nil)

	// Fill line A and dirty it in L2 via L1 eviction path: simpler, dirty
	// it directly in L2 after a fill.
	h.Load(0x0000, false, nil)
	step(h, b, 100)
	h.L2().SetDirty(0x0000)
	// Miss line B evicts A from L2 (dirty) → writeback transaction.
	h.Load(0x1000, false, nil)
	step(h, b, 200)
	s := b.Stats()
	if s.Writes != 1 {
		t.Errorf("bus writes = %d, want 1 writeback", s.Writes)
	}
	if h.Stats().Writebacks != 1 {
		t.Errorf("hierarchy writebacks = %d", h.Stats().Writebacks)
	}
}

func TestHierConfigValidate(t *testing.T) {
	bad := DefaultHierConfig()
	bad.L1D.LineSize = 32
	if err := bad.Validate(); err == nil {
		t.Error("mismatched line sizes accepted")
	}
	bad2 := DefaultHierConfig()
	bad2.MSHRs = 0
	if err := bad2.Validate(); err == nil {
		t.Error("zero MSHRs accepted")
	}
}

func TestIdle(t *testing.T) {
	h, b := newHier(t)
	if !h.Idle() {
		t.Fatal("fresh hierarchy not idle")
	}
	h.Load(0x1000, false, nil)
	if h.Idle() {
		t.Fatal("hierarchy idle with outstanding miss")
	}
	step(h, b, 300)
	if !h.Idle() {
		t.Fatal("hierarchy not idle after drain")
	}
}

// Property: the most recently used line in a set is never the one
// evicted.
func TestLRUNeverEvictsMRU(t *testing.T) {
	c, err := New(Config{Size: 512, Assoc: 4, LineSize: 64, HitLatency: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	var lastTouched uint64
	haveTouch := false
	for i := 0; i < 5000; i++ {
		// Addresses in one set (stride = sets*line = 2*64).
		addr := uint64(rng.Intn(16)) * 128
		if rng.Intn(2) == 0 {
			if c.Lookup(addr) {
				lastTouched = addr &^ 63
				haveTouch = true
			}
		} else {
			victim, _, evicted := c.Insert(addr)
			if evicted && haveTouch && victim == lastTouched {
				t.Fatalf("step %d: evicted the MRU line %#x", i, victim)
			}
			lastTouched = addr &^ 63
			haveTouch = true
		}
	}
}
