// Package cluster joins two simulated machines with a network wire,
// turning the single-node simulator into the workstation-cluster setting
// that motivates the paper (§2: NOW-style fine-grain communication, DEC
// Memory Channel, Atoll). Each node has its own NIC; packets transmitted
// by one node are delivered — word by word, after a configurable wire
// latency — into the other node's receive queue, where software picks
// them up with destructive uncached loads.
//
// The paper's §7 closes with "the next step is to evaluate the benefits
// of these performance advantages in terms of realistic applications";
// this package provides the substrate for that step (experiment X8:
// ping-pong round-trip latency).
package cluster

import (
	"fmt"

	"csbsim/internal/device"
	"csbsim/internal/mem"
	"csbsim/internal/sim"
)

// NICBase is where each node's NIC is mapped.
const NICBase uint64 = 0x4000_0000

// Config parameterizes the two-node cluster.
type Config struct {
	Node sim.Config
	// WireLatency is the delivery delay in *CPU cycles* from a packet
	// completing transmission to its words appearing in the receiver's
	// RX queue.
	WireLatency uint64
	NIC         device.Config
}

// DefaultConfig builds two paper-default nodes joined by a 120-cycle wire
// (~200 ns at the paper's 600 MHz).
func DefaultConfig() Config {
	return Config{Node: sim.DefaultConfig(), WireLatency: 120, NIC: device.DefaultConfig()}
}

// Node is one machine plus its NIC.
type Node struct {
	M   *sim.Machine
	NIC *device.NIC

	name      string
	delivered int // packets already forwarded to the peer
}

// Cluster is two nodes and the wire between them.
type Cluster struct {
	A, B  *Node
	cfg   Config
	cycle uint64
	// in-flight deliveries: packets waiting out the wire latency
	flights []flight
}

type flight struct {
	to    *Node
	words []uint64
	due   uint64
}

// New builds the cluster. Both nodes get identical configuration; the
// caller maps I/O space and loads programs on A.M and B.M.
func New(cfg Config) (*Cluster, error) {
	mk := func(name string) (*Node, error) {
		m, err := sim.New(cfg.Node)
		if err != nil {
			return nil, err
		}
		nic := device.NewNIC(cfg.NIC, NICBase)
		if err := m.AddDevice(NICBase, device.RegionSize, "nic-"+name, nic, nic); err != nil {
			return nil, err
		}
		return &Node{M: m, NIC: nic, name: name}, nil
	}
	a, err := mk("a")
	if err != nil {
		return nil, err
	}
	b, err := mk("b")
	if err != nil {
		return nil, err
	}
	return &Cluster{A: a, B: b, cfg: cfg}, nil
}

// MapIO maps the standard NIC layout into a node's PID-0 address space:
// registers uncached, packet buffer combining (csb) or uncached.
func (n *Node) MapIO(csb bool) {
	n.M.MapRange(NICBase, device.PacketBufBase, mem.KindUncached)
	kind := mem.KindUncached
	if csb {
		kind = mem.KindCombining
	}
	n.M.MapRange(NICBase+device.PacketBufBase, device.PacketBufSize, kind)
}

// Cycle returns the global cluster cycle.
func (c *Cluster) Cycle() uint64 { return c.cycle }

// Tick advances both nodes one CPU cycle and moves packets across the
// wire.
func (c *Cluster) Tick() {
	c.A.M.Tick()
	c.B.M.Tick()
	c.cycle++
	c.pump(c.A, c.B)
	c.pump(c.B, c.A)
	c.deliver()
}

// pump picks up newly transmitted packets from `from` and puts them in
// flight toward `to`.
func (c *Cluster) pump(from, to *Node) {
	pkts := from.NIC.Packets()
	for ; from.delivered < len(pkts); from.delivered++ {
		p := pkts[from.delivered]
		words := make([]uint64, 0, (len(p.Data)+7)/8)
		for i := 0; i < len(p.Data); i += 8 {
			var w uint64
			for k := 7; k >= 0; k-- {
				idx := i + k
				var b byte
				if idx < len(p.Data) {
					b = p.Data[idx]
				}
				w = w<<8 | uint64(b)
			}
			words = append(words, w)
		}
		c.flights = append(c.flights, flight{to: to, words: words, due: c.cycle + c.cfg.WireLatency})
	}
}

func (c *Cluster) deliver() {
	kept := c.flights[:0]
	for _, f := range c.flights {
		if c.cycle >= f.due {
			f.to.NIC.Deliver(f.words...)
		} else {
			kept = append(kept, f)
		}
	}
	c.flights = kept
}

// Run advances the cluster until both nodes halt (or maxCycles elapse).
func (c *Cluster) Run(maxCycles uint64) error {
	for i := uint64(0); i < maxCycles; i++ {
		if c.A.M.CPU.Halted() && c.B.M.CPU.Halted() {
			if err := c.A.M.CPU.Err(); err != nil {
				return fmt.Errorf("cluster: node a: %w", err)
			}
			if err := c.B.M.CPU.Err(); err != nil {
				return fmt.Errorf("cluster: node b: %w", err)
			}
			return nil
		}
		if err := c.A.M.CPU.Err(); err != nil {
			return fmt.Errorf("cluster: node a: %w", err)
		}
		if err := c.B.M.CPU.Err(); err != nil {
			return fmt.Errorf("cluster: node b: %w", err)
		}
		c.Tick()
	}
	return fmt.Errorf("cluster: cycle limit %d reached (a halted=%v, b halted=%v)",
		maxCycles, c.A.M.CPU.Halted(), c.B.M.CPU.Halted())
}
