// Package bus implements the two system-bus models evaluated in the paper
// (§4.1): a multiplexed address/data bus and a split address/data bus. Both
// are fully pipelined with arbitration overlapped with the current
// transaction, support naturally-aligned power-of-two transfer sizes from 1
// byte to a full cache line, and can be configured with a per-transaction
// turnaround cycle and a selective-flow-control acknowledgment delay that
// spaces strongly-ordered uncached transactions.
//
// All timing here is in *bus cycles*; the machine clocks the bus once every
// CPU-to-bus frequency-ratio ticks.
package bus

import (
	"fmt"

	"csbsim/internal/mem"
	"csbsim/internal/obs/counters"
)

// Model selects the bus organization.
type Model uint8

const (
	// Multiplexed buses share one set of wires for addresses and data: a
	// transaction costs one address cycle plus its data beats.
	Multiplexed Model = iota
	// Split buses have a dedicated address path: a transaction occupies
	// the data path only for its data beats.
	Split
)

func (m Model) String() string {
	if m == Split {
		return "split"
	}
	return "multiplexed"
}

// Config parameterizes a bus instance. The zero value is not useful; use
// DefaultConfig as a starting point.
type Config struct {
	Model Model
	// WidthBytes is the data path width (8 for the paper's multiplexed
	// experiments, 16 or 32 for the split ones).
	WidthBytes int
	// Turnaround inserts idle cycles after every transaction, modeling
	// buses that need a dead cycle between masters (fig 3g, 4c).
	Turnaround int
	// AckDelay is the selective-flow-control minimum spacing, in bus
	// cycles, between the *starts* of consecutive strongly-ordered
	// transactions (fig 3h-i, 4d-e). Zero disables it.
	AckDelay int
	// ReadWait is the target's access latency for cacheable memory
	// reads, in bus cycles between the address cycle and the first data
	// beat.
	ReadWait int
	// IOReadWait is the equivalent latency for uncached/device reads.
	IOReadWait int
}

// DefaultConfig mirrors the paper's base configuration: 8-byte multiplexed
// bus, no turnaround, no ack delay.
func DefaultConfig() Config {
	return Config{Model: Multiplexed, WidthBytes: 8, ReadWait: 8, IOReadWait: 4}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.WidthBytes <= 0 || c.WidthBytes&(c.WidthBytes-1) != 0 {
		return fmt.Errorf("bus: width %d not a power of two", c.WidthBytes)
	}
	if c.Turnaround < 0 || c.AckDelay < 0 || c.ReadWait < 0 || c.IOReadWait < 0 {
		return fmt.Errorf("bus: negative timing parameter")
	}
	return nil
}

// Txn is one bus transaction. Transactions must be naturally aligned
// power-of-two sizes (the alignment restriction that limits combining,
// §4.1 last paragraph).
type Txn struct {
	Addr  uint64
	Size  int
	Write bool
	// Data holds write payload (len == Size) or receives read data.
	Data []byte
	// Ordered marks strongly-ordered uncached transactions subject to
	// the AckDelay spacing rule.
	Ordered bool
	// IO selects the device read latency instead of memory latency.
	IO bool
	// Silent transactions occupy the bus but move no data. The tag-only
	// cache model uses them for writebacks, whose payload is already in
	// RAM.
	Silent bool
	// Done, if non-nil, runs when the transaction completes. Reads see
	// their Data filled in. The issuing agent may recycle the Txn after
	// Done returns, so callbacks (and bus observers) must not retain it.
	Done func(*Txn)

	// Start and End are the first and last occupied bus cycles, filled
	// in by the bus.
	Start, End uint64
}

// Stats aggregates bus activity.
type Stats struct {
	Cycles       uint64
	BusyCycles   uint64
	Transactions uint64
	Bursts       uint64 // transactions larger than one data beat
	Bytes        uint64
	Reads        uint64
	Writes       uint64
	// Nacks counts transactions refused by the injected-fault hook (the
	// agent re-arbitrates, exactly as after losing arbitration).
	Nacks uint64
	// BySize histograms transaction sizes (bytes → count).
	BySize map[int]uint64
}

// Bus is a cycle-accurate single-channel system bus. Multiple agents (the
// uncached buffer, the CSB path, the cache miss path, DMA engines) share it
// by calling TryIssue; whoever asks first in a cycle wins, which models the
// overlapped arbitration of the paper's buses.
type Bus struct {
	cfg    Config
	router *mem.Router
	cycle  uint64

	cur        *Txn   // in-flight transaction, nil when idle
	freeAt     uint64 // first cycle a new transaction may start (occupancy+turnaround)
	ackFreeAt  uint64 // first cycle an Ordered transaction may start
	everIssued bool

	// observers run on every completed transaction (the benchmark
	// harness measures spans, the Perfetto exporter records bus tracks).
	// Register with AttachObserver; multiple observers coexist.
	observers []func(*Txn)

	// nackHook, when set, may refuse an otherwise-accepted transaction
	// (fault injection): TryIssue returns false and the agent retries on
	// a later bus cycle, the same recovery path as losing arbitration.
	nackHook func(*Txn) bool

	stats Stats
}

// AttachObserver registers fn to run on every completed transaction, in
// attachment order, after the transaction's own Done callback target data
// is filled in but before Done itself runs.
//
// The *Txn (and its Data slice) is only valid for the duration of the
// call: agents recycle completed transactions, so observers must copy
// anything they want to keep.
func (b *Bus) AttachObserver(fn func(*Txn)) {
	b.observers = append(b.observers, fn)
}

// SetNackHook installs (or, with nil, removes) the fault-injection hook
// consulted after all legitimate issue checks pass. The hook must not
// retain the *Txn: the issuing agent may recycle it.
func (b *Bus) SetNackHook(fn func(*Txn) bool) {
	b.nackHook = fn
}

// New creates a bus over the given physical-address router. The router may
// be nil for pure timing tests; then reads return zero data.
func New(cfg Config, rt *mem.Router) (*Bus, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Bus{cfg: cfg, router: rt, stats: Stats{BySize: make(map[int]uint64)}}, nil
}

// Cycle returns the current bus cycle number.
func (b *Bus) Cycle() uint64 { return b.cycle }

// Config returns the bus configuration.
func (b *Bus) Config() Config { return b.cfg }

// Stats returns a snapshot of the accumulated statistics.
func (b *Bus) Stats() Stats {
	s := b.stats
	s.Cycles = b.cycle
	bySize := make(map[int]uint64, len(b.stats.BySize))
	for k, v := range b.stats.BySize {
		bySize[k] = v
	}
	s.BySize = bySize
	return s
}

// RegisterCounters registers the bus's counters with the unified
// registry under prefix (e.g. "bus"), as read closures over the live
// stats — registration never perturbs simulation state.
func (b *Bus) RegisterCounters(prefix string, r *counters.Registry) {
	r.Counter(prefix+"/cycles", func() uint64 { return b.cycle })
	r.Counter(prefix+"/busy_cycles", func() uint64 { return b.stats.BusyCycles })
	r.Counter(prefix+"/transactions", func() uint64 { return b.stats.Transactions })
	r.Counter(prefix+"/bursts", func() uint64 { return b.stats.Bursts })
	r.Counter(prefix+"/bytes", func() uint64 { return b.stats.Bytes })
	r.Counter(prefix+"/reads", func() uint64 { return b.stats.Reads })
	r.Counter(prefix+"/writes", func() uint64 { return b.stats.Writes })
	r.Counter(prefix+"/nacks", func() uint64 { return b.stats.Nacks })
}

// Idle reports whether no transaction is in flight.
func (b *Bus) Idle() bool { return b.cur == nil }

// Activity returns the busy-cycle and byte counters without the map copy
// Stats makes — cheap enough for per-sample polling.
func (b *Bus) Activity() (busyCycles, bytes uint64) {
	return b.stats.BusyCycles, b.stats.Bytes
}

// Duration returns the number of bus cycles a transaction of the given
// size and direction occupies.
func (b *Bus) Duration(size int, write, io bool) int {
	beats := (size + b.cfg.WidthBytes - 1) / b.cfg.WidthBytes
	if beats == 0 {
		beats = 1
	}
	d := beats
	if b.cfg.Model == Multiplexed {
		d++ // address cycle
	}
	if !write {
		if io {
			d += b.cfg.IOReadWait
		} else {
			d += b.cfg.ReadWait
		}
	}
	return d
}

// CanIssue reports whether a transaction could start at the current cycle.
func (b *Bus) CanIssue(ordered bool) bool {
	if b.cur != nil {
		return false
	}
	if b.everIssued && b.cycle < b.freeAt {
		return false
	}
	if ordered && b.cycle < b.ackFreeAt {
		return false
	}
	return true
}

// TryIssue attempts to start t at the current cycle. It returns false when
// the bus is occupied or a spacing rule blocks the start.
func (b *Bus) TryIssue(t *Txn) bool {
	if err := b.checkTxn(t); err != nil {
		panic(err) // programming error in a bus agent, not a simulation outcome
	}
	if !b.CanIssue(t.Ordered) {
		return false
	}
	if b.nackHook != nil && b.nackHook(t) {
		b.stats.Nacks++
		return false
	}
	d := uint64(b.Duration(t.Size, t.Write, t.IO))
	t.Start = b.cycle
	t.End = b.cycle + d - 1
	b.cur = t //csb:pool — the bus owns t until complete() hands it back via Done
	b.freeAt = t.End + 1 + uint64(b.cfg.Turnaround)
	if t.Ordered && b.cfg.AckDelay > 0 {
		ack := t.Start + uint64(b.cfg.AckDelay)
		if ack > b.ackFreeAt {
			b.ackFreeAt = ack
		}
	}
	b.everIssued = true
	return true
}

func (b *Bus) checkTxn(t *Txn) error {
	if t.Size <= 0 || t.Size&(t.Size-1) != 0 {
		return fmt.Errorf("bus: transaction size %d not a power of two", t.Size)
	}
	if t.Addr%uint64(t.Size) != 0 {
		return fmt.Errorf("bus: transaction at %#x size %d not naturally aligned", t.Addr, t.Size)
	}
	if t.Write && len(t.Data) != t.Size {
		return fmt.Errorf("bus: write data length %d != size %d", len(t.Data), t.Size)
	}
	return nil
}

// Tick advances the bus by one cycle, completing the in-flight transaction
// when its last beat has passed.
//
//csb:hotpath
func (b *Bus) Tick() {
	if b.cur != nil {
		b.stats.BusyCycles++
	}
	b.cycle++
	if t := b.cur; t != nil && b.cycle > t.End {
		b.cur = nil
		b.complete(t)
	}
}

//csb:hotpath
func (b *Bus) complete(t *Txn) {
	b.stats.Transactions++
	b.stats.Bytes += uint64(t.Size)
	b.stats.BySize[t.Size]++
	if t.Size > b.cfg.WidthBytes {
		b.stats.Bursts++
	}
	if t.Write {
		b.stats.Writes++
		if b.router != nil && !t.Silent {
			b.router.Write(t.Addr, t.Data)
		}
	} else {
		b.stats.Reads++
		if b.router != nil && !t.Silent {
			t.Data = b.router.Read(t.Addr, t.Size)
		} else if t.Data == nil {
			t.Data = make([]byte, t.Size) //csb:alloc-ok — router-less test configurations only
		}
	}
	for _, fn := range b.observers {
		fn(t)
	}
	if t.Done != nil {
		t.Done(t)
	}
}

// DebugString describes the bus state for diagnostic dumps (the machine
// watchdog's report). Not a hot path.
func (b *Bus) DebugString() string {
	if b.cur == nil {
		return fmt.Sprintf("idle at cycle %d (free at %d, ordered free at %d)",
			b.cycle, b.freeAt, b.ackFreeAt)
	}
	dir := "read"
	if b.cur.Write {
		dir = "write"
	}
	return fmt.Sprintf("cycle %d: %s %dB at %#x in flight (cycles %d..%d, free at %d)",
		b.cycle, dir, b.cur.Size, b.cur.Addr, b.cur.Start, b.cur.End, b.freeAt)
}

// Drain advances the bus until it is idle (test helper and shutdown path).
func (b *Bus) Drain(maxCycles int) bool {
	for i := 0; i < maxCycles; i++ {
		if b.cur == nil {
			return true
		}
		b.Tick()
	}
	return b.cur == nil
}
