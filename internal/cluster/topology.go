// Topology support: the shapes an N-node cluster can be wired in and the
// per-link state (latency, serialization bandwidth, bounded queue depth)
// the router consults when it schedules a packet onto a link. Links are
// directed — each direction of a physical cable is its own link with its
// own serialization front and queue — so asymmetric fabrics can be
// modeled with SetLink overrides.
package cluster

import "fmt"

// Topology selects how the nodes are wired.
type Topology int

const (
	// TopoFullMesh gives every node a direct link to every other node.
	TopoFullMesh Topology = iota
	// TopoRing wires node i to its two neighbors (i±1 mod N); the default
	// route is the clockwise neighbor.
	TopoRing
	// TopoStar wires every node to node 0 (the hub). Leaves default-route
	// to the hub; a hub with more than one leaf must steer each packet
	// explicitly via the NIC's RegTxDest register.
	TopoStar
)

// ParseTopology maps the CLI spellings onto a Topology.
func ParseTopology(s string) (Topology, error) {
	switch s {
	case "mesh", "full-mesh", "fullmesh":
		return TopoFullMesh, nil
	case "ring":
		return TopoRing, nil
	case "star":
		return TopoStar, nil
	}
	return 0, fmt.Errorf("unknown topology %q (want mesh, ring or star)", s)
}

// String renders the topology's canonical CLI spelling.
func (t Topology) String() string {
	switch t {
	case TopoFullMesh:
		return "mesh"
	case TopoRing:
		return "ring"
	case TopoStar:
		return "star"
	}
	return fmt.Sprintf("topology(%d)", int(t))
}

// LinkConfig parameterizes one directed link.
type LinkConfig struct {
	// Latency is the propagation delay in CPU cycles from a packet
	// leaving the sender's NIC to arriving at the receiver's.
	Latency uint64
	// CyclesPerWord models serialization bandwidth: each 8-byte word of a
	// packet occupies the link's transmit front for this many cycles, and
	// packets queue behind one another. 0 = infinitely fast link.
	CyclesPerWord uint64
	// Depth bounds how many packets may be scheduled on the link (sent
	// but not yet arrived) at once; an over-subscribed link drops the
	// packet, surfaced as cluster/link_drops. 0 = unbounded.
	Depth int
}

// link is the live state of one directed link.
type link struct {
	LinkConfig
	// freeAt is the first cycle the serialization front is free (only
	// advanced when CyclesPerWord > 0).
	freeAt uint64
	// pending holds the due cycles of packets scheduled on the link and
	// not yet arrived (only maintained when Depth > 0).
	pending []uint64
	// drops counts packets this directed link refused for a full queue —
	// the per-link breakdown behind cluster/link_drops.
	drops uint64
	// outageUntil is the first cycle past the link's current injected
	// outage window (0 / past cycles: no window open). Packets scheduled
	// while the window is open are dropped as cluster/outage_drops.
	outageUntil uint64
}

// buildLinks wires the adjacency matrix for cfg and computes each node's
// default route (-1 when the node has several neighbors and no natural
// "next" one, i.e. a star hub — such a node must steer via RegTxDest).
func buildLinks(cfg Config) ([][]*link, []int) {
	n := cfg.Nodes
	lc := LinkConfig{Latency: cfg.WireLatency, CyclesPerWord: cfg.Bandwidth, Depth: cfg.LinkDepth}
	links := make([][]*link, n)
	for i := range links {
		links[i] = make([]*link, n)
	}
	connect := func(i, j int) {
		if i != j && links[i][j] == nil {
			links[i][j] = &link{LinkConfig: lc}
			links[j][i] = &link{LinkConfig: lc}
		}
	}
	switch cfg.Topology {
	case TopoRing:
		for i := 0; i < n; i++ {
			connect(i, (i+1)%n)
		}
	case TopoStar:
		for i := 1; i < n; i++ {
			connect(0, i)
		}
	default: // full mesh
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				connect(i, j)
			}
		}
	}
	route := make([]int, n)
	for i := range route {
		route[i] = defaultRoute(cfg, links, i)
	}
	return links, route
}

// defaultRoute picks where node i's packets go when the guest leaves
// RegTxDest at auto.
func defaultRoute(cfg Config, links [][]*link, i int) int {
	n := cfg.Nodes
	if n < 2 {
		return -1
	}
	// A node with exactly one neighbor has no choice.
	deg, only := 0, -1
	for j, l := range links[i] {
		if l != nil {
			deg++
			only = j
		}
	}
	switch {
	case deg == 0:
		return -1
	case deg == 1:
		return only
	case cfg.Topology == TopoStar:
		return -1 // hub with several leaves: must steer explicitly
	default: // mesh and ring: clockwise neighbor
		return (i + 1) % n
	}
}

// SetLink overrides the configuration of the directed link from node i to
// node j (the reverse direction is untouched). It must name an existing
// topology edge and must be called before the cluster runs.
func (c *Cluster) SetLink(i, j int, lc LinkConfig) error {
	if i < 0 || i >= len(c.nodes) || j < 0 || j >= len(c.nodes) {
		return fmt.Errorf("cluster: SetLink(%d, %d): node index out of range", i, j)
	}
	l := c.links[i][j]
	if l == nil {
		return fmt.Errorf("cluster: SetLink(%d, %d): no such link in %s topology", i, j, c.cfg.Topology)
	}
	l.LinkConfig = lc
	return nil
}

// Link returns the configuration of the directed link from i to j and
// whether that link exists.
func (c *Cluster) Link(i, j int) (LinkConfig, bool) {
	if i < 0 || i >= len(c.nodes) || j < 0 || j >= len(c.nodes) || c.links[i][j] == nil {
		return LinkConfig{}, false
	}
	return c.links[i][j].LinkConfig, true
}

// DefaultRoute returns where node i's auto-routed packets go (-1 when the
// node must steer explicitly).
func (c *Cluster) DefaultRoute(i int) int { return c.route[i] }
