package bus

import (
	"testing"

	"csbsim/internal/mem"
)

func newBus(t *testing.T, cfg Config) *Bus {
	t.Helper()
	b, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// run issues each transaction as soon as the bus allows and returns the
// cycle span (first start .. last end inclusive).
func run(t *testing.T, b *Bus, txns []*Txn) (first, last uint64) {
	t.Helper()
	done := 0
	for _, txn := range txns {
		txn.Done = func(*Txn) { done++ }
	}
	i := 0
	for guard := 0; done < len(txns); guard++ {
		if guard > 100000 {
			t.Fatal("bus run did not terminate")
		}
		if i < len(txns) && b.TryIssue(txns[i]) {
			i++
		}
		b.Tick()
	}
	return txns[0].Start, txns[len(txns)-1].End
}

func wr(addr uint64, size int, ordered bool) *Txn {
	return &Txn{Addr: addr, Size: size, Write: true, Data: make([]byte, size), Ordered: ordered}
}

// Paper §4.3.1: on an 8-byte multiplexed bus a doubleword store is a
// two-cycle transaction (address + one data beat), so non-combining
// bandwidth is 4 bytes per bus cycle, half the 8 B/cycle peak.
func TestMuxDoublewordTakesTwoCycles(t *testing.T) {
	b := newBus(t, Config{Model: Multiplexed, WidthBytes: 8})
	if d := b.Duration(8, true, false); d != 2 {
		t.Errorf("dword duration = %d, want 2", d)
	}
}

// Paper §4.3.1: peak is "one cache line per 5 cycles" for a 32-byte line
// on the 8-byte multiplexed bus: 1 address + 4 data cycles.
func TestMuxLineBurstDuration(t *testing.T) {
	b := newBus(t, Config{Model: Multiplexed, WidthBytes: 8})
	if d := b.Duration(32, true, false); d != 5 {
		t.Errorf("32B burst = %d cycles, want 5", d)
	}
	if d := b.Duration(64, true, false); d != 9 {
		t.Errorf("64B burst = %d cycles, want 9", d)
	}
}

// Paper fig 4: on a split bus a transaction occupies only its data beats;
// a 64-byte burst on a 32-byte bus takes 2 cycles, "the same number of
// cycles as two individual doubleword stores".
func TestSplitBusDurations(t *testing.T) {
	b := newBus(t, Config{Model: Split, WidthBytes: 32})
	if d := b.Duration(64, true, false); d != 2 {
		t.Errorf("64B on 32B split = %d, want 2", d)
	}
	if d := b.Duration(8, true, false); d != 1 {
		t.Errorf("8B on 32B split = %d, want 1", d)
	}
	b16 := newBus(t, Config{Model: Split, WidthBytes: 16})
	if d := b16.Duration(64, true, false); d != 4 {
		t.Errorf("64B on 16B split = %d, want 4", d)
	}
}

// Back-to-back transactions from the same master need no idle cycle by
// default (§4.1).
func TestBackToBackNoTurnaround(t *testing.T) {
	b := newBus(t, Config{Model: Multiplexed, WidthBytes: 8})
	txns := []*Txn{wr(0, 8, false), wr(8, 8, false), wr(16, 8, false)}
	first, last := run(t, b, txns)
	// 3 dwords × 2 cycles = 6-cycle span.
	if span := last - first + 1; span != 6 {
		t.Errorf("span = %d, want 6", span)
	}
}

// Paper §4.3.1 (fig 3g): with a turnaround cycle, "a doubleword
// transaction takes 2 cycles, two consecutive transactions take 5 cycles,
// three transactions take 8 cycles".
func TestTurnaroundSpacing(t *testing.T) {
	b := newBus(t, Config{Model: Multiplexed, WidthBytes: 8, Turnaround: 1})
	for _, tt := range []struct {
		n    int
		span uint64
	}{{1, 2}, {2, 5}, {3, 8}} {
		b := newBus(t, Config{Model: Multiplexed, WidthBytes: 8, Turnaround: 1})
		var txns []*Txn
		for i := 0; i < tt.n; i++ {
			txns = append(txns, wr(uint64(i*8), 8, false))
		}
		first, last := run(t, b, txns)
		if span := last - first + 1; span != tt.span {
			t.Errorf("%d dwords with turnaround: span = %d, want %d", tt.n, span, tt.span)
		}
	}
	_ = b
}

// Paper fig 3h: with a 4-cycle ack delay, address cycles of ordered
// transactions must be ≥ 4 cycles apart; an 8-cycle burst completely
// overlaps the acknowledgment.
func TestAckDelaySpacesOrderedTxns(t *testing.T) {
	b := newBus(t, Config{Model: Multiplexed, WidthBytes: 8, AckDelay: 4})
	txns := []*Txn{wr(0, 8, true), wr(8, 8, true), wr(16, 8, true)}
	run(t, b, txns)
	if got := txns[1].Start - txns[0].Start; got != 4 {
		t.Errorf("ordered spacing = %d, want 4", got)
	}
	if got := txns[2].Start - txns[1].Start; got != 4 {
		t.Errorf("ordered spacing = %d, want 4", got)
	}

	// A 64-byte burst (9 cycles on mux) completely hides a 4-cycle ack.
	b2 := newBus(t, Config{Model: Multiplexed, WidthBytes: 8, AckDelay: 4})
	bursts := []*Txn{wr(0, 64, true), wr(64, 64, true)}
	run(t, b2, bursts)
	if got := bursts[1].Start - bursts[0].End; got != 1 {
		t.Errorf("burst followed after %d cycles, want 1 (back to back)", got)
	}
}

// Unordered (memory) traffic is not subject to the ack delay.
func TestAckDelayIgnoresUnordered(t *testing.T) {
	b := newBus(t, Config{Model: Multiplexed, WidthBytes: 8, AckDelay: 8})
	txns := []*Txn{wr(0, 8, false), wr(8, 8, false)}
	run(t, b, txns)
	if got := txns[1].Start - txns[0].Start; got != 2 {
		t.Errorf("unordered spacing = %d, want 2", got)
	}
}

// Split bus with min delay 4: a dword (1 cycle) is followed 4 cycles
// later; a 64B burst on 16B bus (4 cycles) is back to back (fig 4d).
func TestSplitAckDelay(t *testing.T) {
	b := newBus(t, Config{Model: Split, WidthBytes: 16, AckDelay: 4})
	txns := []*Txn{wr(0, 8, true), wr(8, 8, true)}
	run(t, b, txns)
	if got := txns[1].Start - txns[0].Start; got != 4 {
		t.Errorf("split dword spacing = %d, want 4", got)
	}
	b2 := newBus(t, Config{Model: Split, WidthBytes: 16, AckDelay: 4})
	bursts := []*Txn{wr(0, 64, true), wr(64, 64, true)}
	run(t, b2, bursts)
	if got := bursts[1].Start - bursts[0].Start; got != 4 {
		t.Errorf("split burst spacing = %d, want 4 (fully hidden)", got)
	}
}

func TestReadLatency(t *testing.T) {
	b := newBus(t, Config{Model: Multiplexed, WidthBytes: 8, ReadWait: 8, IOReadWait: 3})
	// Memory line fill: 1 addr + 8 wait + 8 beats = 17 cycles.
	if d := b.Duration(64, false, false); d != 17 {
		t.Errorf("64B read = %d, want 17", d)
	}
	// IO dword read: 1 + 3 + 1 = 5.
	if d := b.Duration(8, false, true); d != 5 {
		t.Errorf("8B IO read = %d, want 5", d)
	}
}

func TestReadWriteDataMovement(t *testing.T) {
	ram := mem.NewMemory()
	rt := mem.NewRouter(ram)
	b, err := New(Config{Model: Multiplexed, WidthBytes: 8}, rt)
	if err != nil {
		t.Fatal(err)
	}
	w := &Txn{Addr: 0x100, Size: 8, Write: true, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}}
	if !b.TryIssue(w) {
		t.Fatal("issue failed")
	}
	b.Drain(100)
	if got := ram.ReadUint(0x100, 8); got != 0x0807060504030201 {
		t.Errorf("write not applied: %#x", got)
	}
	var got []byte
	r := &Txn{Addr: 0x100, Size: 8, Done: func(t *Txn) { got = t.Data }}
	if !b.TryIssue(r) {
		t.Fatal("read issue failed")
	}
	b.Drain(100)
	if len(got) != 8 || got[0] != 1 || got[7] != 8 {
		t.Errorf("read data = % x", got)
	}
}

func TestBusyRejectsIssue(t *testing.T) {
	b := newBus(t, Config{Model: Multiplexed, WidthBytes: 8})
	if !b.TryIssue(wr(0, 64, false)) {
		t.Fatal("first issue failed")
	}
	if b.TryIssue(wr(64, 8, false)) {
		t.Error("second issue should fail while busy")
	}
	b.Tick()
	if b.TryIssue(wr(64, 8, false)) {
		t.Error("issue should fail mid-transaction")
	}
}

func TestTxnValidationPanics(t *testing.T) {
	b := newBus(t, Config{Model: Multiplexed, WidthBytes: 8})
	for _, bad := range []*Txn{
		{Addr: 0, Size: 3, Write: true, Data: make([]byte, 3)},
		{Addr: 4, Size: 8, Write: true, Data: make([]byte, 8)}, // misaligned
		{Addr: 0, Size: 8, Write: true, Data: make([]byte, 4)}, // short data
		{Addr: 0, Size: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for %+v", bad)
				}
			}()
			b.TryIssue(bad)
		}()
	}
}

func TestStats(t *testing.T) {
	b := newBus(t, Config{Model: Multiplexed, WidthBytes: 8})
	run(t, b, []*Txn{wr(0, 8, false), wr(0, 64, false)})
	s := b.Stats()
	if s.Transactions != 2 || s.Writes != 2 || s.Bytes != 72 {
		t.Errorf("stats = %+v", s)
	}
	if s.Bursts != 1 {
		t.Errorf("bursts = %d, want 1", s.Bursts)
	}
	if s.BySize[8] != 1 || s.BySize[64] != 1 {
		t.Errorf("by size = %v", s.BySize)
	}
	if s.BusyCycles != 2+9 {
		t.Errorf("busy = %d, want 11", s.BusyCycles)
	}
}

func TestObserver(t *testing.T) {
	b := newBus(t, Config{Model: Multiplexed, WidthBytes: 8})
	var seen []*Txn
	b.AttachObserver(func(t *Txn) { seen = append(seen, t) })
	run(t, b, []*Txn{wr(0, 8, false), wr(8, 8, false)})
	if len(seen) != 2 {
		t.Errorf("observer saw %d txns, want 2", len(seen))
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Model: Multiplexed, WidthBytes: 0},
		{Model: Multiplexed, WidthBytes: 12},
		{Model: Multiplexed, WidthBytes: 8, Turnaround: -1},
	}
	for _, cfg := range bad {
		if _, err := New(cfg, nil); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestAlignedChunks(t *testing.T) {
	maskOf := func(spans ...[2]int) []bool {
		m := make([]bool, 64)
		for _, s := range spans {
			for i := s[0]; i < s[1]; i++ {
				m[i] = true
			}
		}
		return m
	}
	tests := []struct {
		name string
		mask []bool
		want []Chunk
	}{
		{"full line", maskOf([2]int{0, 64}), []Chunk{{0, 64}}},
		{"one dword", maskOf([2]int{0, 8}), []Chunk{{0, 8}}},
		{"dword at 8", maskOf([2]int{8, 16}), []Chunk{{8, 8}}},
		{"three dwords", maskOf([2]int{0, 24}), []Chunk{{0, 16}, {16, 8}}},
		{"three dwords offset", maskOf([2]int{8, 32}), []Chunk{{8, 8}, {16, 16}}},
		{"half line", maskOf([2]int{0, 32}), []Chunk{{0, 32}}},
		{"two runs", maskOf([2]int{0, 8}, [2]int{16, 24}), []Chunk{{0, 8}, {16, 8}}},
		{"seven dwords", maskOf([2]int{0, 56}), []Chunk{{0, 32}, {32, 16}, {48, 8}}},
		{"empty", maskOf(), nil},
		{"single byte", maskOf([2]int{5, 6}), []Chunk{{5, 1}}},
		{"misaligned run", maskOf([2]int{6, 12}), []Chunk{{6, 2}, {8, 4}}},
	}
	for _, tt := range tests {
		got := AlignedChunks(0, tt.mask, 64)
		if len(got) != len(tt.want) {
			t.Errorf("%s: got %v, want %v", tt.name, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("%s[%d]: got %v, want %v", tt.name, i, got[i], tt.want[i])
			}
		}
	}
}

// Property: chunks exactly cover the mask, are aligned power-of-two sizes,
// and respect maxSize.
func TestAlignedChunksProperty(t *testing.T) {
	for seed := 0; seed < 200; seed++ {
		mask := make([]bool, 64)
		x := uint64(seed)*2654435761 + 12345
		for i := range mask {
			x = x*6364136223846793005 + 1442695040888963407
			mask[i] = x>>62 != 0
		}
		chunks := AlignedChunks(0x1000, mask, 64)
		covered := make([]bool, 64)
		for _, c := range chunks {
			if c.Size <= 0 || c.Size&(c.Size-1) != 0 || c.Size > 64 {
				t.Fatalf("seed %d: bad size %d", seed, c.Size)
			}
			if c.Addr%uint64(c.Size) != 0 {
				t.Fatalf("seed %d: misaligned chunk %+v", seed, c)
			}
			for i := 0; i < c.Size; i++ {
				off := int(c.Addr-0x1000) + i
				if covered[off] {
					t.Fatalf("seed %d: byte %d double-covered", seed, off)
				}
				covered[off] = true
			}
		}
		for i := range mask {
			if mask[i] != covered[i] {
				t.Fatalf("seed %d: byte %d coverage mismatch", seed, i)
			}
		}
	}
}

func TestAlignedChunksMaxSize(t *testing.T) {
	mask := make([]bool, 64)
	for i := range mask {
		mask[i] = true
	}
	chunks := AlignedChunks(0, mask, 16)
	if len(chunks) != 4 {
		t.Fatalf("got %d chunks, want 4 with maxSize 16", len(chunks))
	}
	for _, c := range chunks {
		if c.Size != 16 {
			t.Errorf("chunk size %d, want 16", c.Size)
		}
	}
}
