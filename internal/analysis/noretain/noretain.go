// Package noretain flags code that retains a pooled object past the call
// that delivered it.
//
// The simulator recycles bus transactions (bus.Txn), reorder-buffer
// entries (cpu.uop) and rename snapshots (cpu.renSnap) through free lists;
// the contract — documented on bus.Txn.Done and the cpu free lists — is
// that a callback or observer handed a pooled pointer must not keep it:
// the owner reuses the object as soon as the call returns, so a retained
// pointer silently aliases a future transaction or instruction.
//
// The analyzer tracks pooled pointers that enter a function as parameters
// (the lender is the caller) or reach a closure as captured variables, and
// reports when such a pointer is stored into a field, slice/map/array
// element, dereference target, package-level variable, channel or
// composite literal, or when a closure capturing one escapes (is not
// invoked on the spot). Sanctioned pool-management code — the free lists
// themselves, the pin-counted fill callbacks — is annotated //csb:pool
// (on the statement line or the enclosing function's doc comment), which
// silences the analyzer there.
package noretain

import (
	"go/ast"
	"go/types"

	"csbsim/internal/analysis"
)

// PooledTypes lists the pool-managed named types as "importpath.Name".
// Values of type *T for any listed T are subject to the no-retention rule.
var PooledTypes = map[string]bool{
	"csbsim/internal/bus.Txn":  true,
	"csbsim/internal/cpu.uop":  true,
	"csbsim/internal/cpu.renSnap": true,
}

// Analyzer is the noretain checker.
var Analyzer = &analysis.Analyzer{
	Name: "noretain",
	Doc:  "reports pooled objects (bus.Txn, uops, rename snapshots) retained past the delivering call",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if analysis.FuncPragma(fn, "pool") {
				continue
			}
			transient := map[types.Object]bool{}
			c.addPooledParams(fn.Type, transient)
			c.checkBody(fn.Body, transient)
		}
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
}

// pooled reports whether t is a pointer to one of the pooled named types.
func pooled(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	return PooledTypes[obj.Pkg().Path()+"."+obj.Name()]
}

// typeName renders a pooled pointer type compactly ("*bus.Txn").
func typeName(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

// addPooledParams records pooled-pointer parameters of a function type as
// transient objects.
func (c *checker) addPooledParams(ft *ast.FuncType, transient map[types.Object]bool) {
	if ft.Params == nil {
		return
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			obj := c.pass.Info.Defs[name]
			if obj != nil && pooled(obj.Type()) {
				transient[obj] = true
			}
		}
	}
}

// transientIdent returns the transient object e directly denotes, or nil.
func transientIdent(info *types.Info, transient map[types.Object]bool, e ast.Expr) types.Object {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			break
		}
		e = p.X
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := info.Uses[id]
	if obj != nil && transient[obj] {
		return obj
	}
	return nil
}

// storedTransients collects transient objects that an RHS expression would
// store: the expression itself, arguments of append calls, and composite
// literal elements.
func (c *checker) storedTransients(transient map[types.Object]bool, e ast.Expr, out *[]types.Object) {
	if obj := transientIdent(c.pass.Info, transient, e); obj != nil {
		*out = append(*out, obj)
		return
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		c.storedTransients(transient, e.X, out)
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "append" {
			if _, isBuiltin := c.pass.Info.Uses[id].(*types.Builtin); isBuiltin && len(e.Args) > 0 {
				for _, a := range e.Args[1:] {
					c.storedTransients(transient, a, out)
				}
			}
		}
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			c.storedTransients(transient, el, out)
		}
	case *ast.UnaryExpr:
		c.storedTransients(transient, e.X, out)
	}
}

// retains reports whether storing into lhs outlives the current call:
// fields, element writes, dereferences and package-level variables do.
func (c *checker) retains(lhs ast.Expr) bool {
	switch l := lhs.(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.ParenExpr:
		return c.retains(l.X)
	case *ast.Ident:
		obj := c.pass.Info.Defs[l]
		if obj == nil {
			obj = c.pass.Info.Uses[l]
		}
		return obj != nil && obj.Parent() == c.pass.Pkg.Scope()
	}
	return false
}

// checkBody walks one function body with the given set of transient
// pooled objects in scope.
func (c *checker) checkBody(body ast.Node, transient map[types.Object]bool) {
	// Function literals that are invoked on the spot do not outlive the
	// statement; collect them so the capture check can skip them.
	calledInline := map[*ast.FuncLit]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if lit, ok := call.Fun.(*ast.FuncLit); ok {
				calledInline[lit] = true
			}
		}
		return true
	})

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if c.pass.Pragma(n.Pos(), "pool") {
				return true
			}
			for i, rhs := range n.Rhs {
				var stored []types.Object
				c.storedTransients(transient, rhs, &stored)
				if len(stored) == 0 {
					continue
				}
				lhs := n.Lhs
				if len(n.Lhs) == len(n.Rhs) {
					lhs = n.Lhs[i : i+1]
				}
				for _, l := range lhs {
					if c.retains(l) {
						for _, obj := range stored {
							c.pass.Reportf(n.Pos(),
								"pooled %s %q stored in a location that outlives the call; the pool recycles it (annotate //csb:pool if this is pool management)",
								typeName(obj.Type()), obj.Name())
						}
						break
					}
				}
			}
		case *ast.SendStmt:
			if obj := transientIdent(c.pass.Info, transient, n.Value); obj != nil && !c.pass.Pragma(n.Pos(), "pool") {
				c.pass.Reportf(n.Pos(),
					"pooled %s %q sent on a channel; the pool recycles it after this call returns",
					typeName(obj.Type()), obj.Name())
			}
		case *ast.FuncLit:
			captured := c.capturedTransients(n, transient)
			if len(captured) > 0 && !calledInline[n] && !c.pass.Pragma(n.Pos(), "pool") {
				c.pass.Reportf(n.Pos(),
					"closure captures pooled %s %q and may outlive the call; copy what you need instead (annotate //csb:pool for pin-counted captures)",
					typeName(captured[0].Type()), captured[0].Name())
			}
			// Recurse with the literal's own pooled parameters added.
			inner := map[types.Object]bool{}
			for o := range transient {
				inner[o] = true
			}
			c.addPooledParams(n.Type, inner)
			c.checkBody(n.Body, inner)
			return false // handled
		}
		return true
	}
	ast.Inspect(body, walk)
}

// capturedTransients returns transient objects referenced inside lit but
// declared outside it.
func (c *checker) capturedTransients(lit *ast.FuncLit, transient map[types.Object]bool) []types.Object {
	var out []types.Object
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := c.pass.Info.Uses[id]
		if obj == nil || !transient[obj] || seen[obj] {
			return true
		}
		// Declared outside the literal?
		if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
			seen[obj] = true
			out = append(out, obj)
		}
		return true
	})
	return out
}
