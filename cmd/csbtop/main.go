// Command csbtop is a live terminal dashboard for a running simulation:
// it consumes the telemetry SSE stream served by `csbcluster -telemetry`
// (or `csbsim -telemetry`) and renders per-node throughput, RX-queue
// depth, end-to-end wire latency quantiles, and any SLO alerts the
// flight recorder has active, refreshed on every frame the simulator
// publishes.
//
// Usage:
//
//	csbtop [-url http://127.0.0.1:8077] [-frames N] [-plain] [-once]
//	csbtop -replay run.rec [-at CYCLE] [-frames N] [-plain]
//
// Each SSE event is one telemetry.Frame keyed by simulated cycle. The
// dashboard redraws in place (ANSI clear) unless -plain is given, in
// which case frames append — the mode for logs and CI. -frames N exits
// after N frames (0 = run until the stream closes), so a bounded watch
// works in scripts:
//
//	csbcluster -rounds 200 -telemetry 127.0.0.1:8077 &
//	csbtop -frames 5 -plain
//
// -once fetches a single /snapshot frame, renders it, and exits 0 — the
// mode for health checks and one-shot status in scripts.
//
// -replay renders from a flight-recorder file (csbcluster -record)
// instead of a live stream: each recorded window becomes one frame, so
// the same dashboard scrubs through a finished run. -at CYCLE jumps to
// the single window containing that cycle. Replayed histogram panels
// show per-window samples (that is what recordings store), and the
// alerts panel replays the recording's own SLO spec up to the rendered
// window.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"

	"csbsim/internal/obs/rec"
	"csbsim/internal/obs/telemetry"
)

func main() {
	var (
		url    = flag.String("url", "http://127.0.0.1:8077", "telemetry server base URL")
		frames = flag.Int("frames", 0, "exit after N frames (0 = until the stream closes)")
		plain  = flag.Bool("plain", false, "append frames instead of redrawing in place")
		once   = flag.Bool("once", false, "fetch one /snapshot frame, render it, exit 0")
		replay = flag.String("replay", "", "render windows from a flight-recorder file instead of a live stream")
		at     = flag.Uint64("at", 0, "with -replay: render only the window containing this cycle")
	)
	flag.Parse()
	atSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "at" {
			atSet = true
		}
	})

	if *replay != "" {
		if err := replayRun(*replay, atSet, *at, *frames, *plain); err != nil {
			fatal(err)
		}
		return
	}
	if *once {
		if err := renderOnce(*url); err != nil {
			fatal(err)
		}
		return
	}

	resp, err := http.Get(strings.TrimSuffix(*url, "/") + "/stream")
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("stream returned %s", resp.Status))
	}

	var prev *telemetry.Frame
	seen := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var f telemetry.Frame
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &f); err != nil {
			fmt.Fprintln(os.Stderr, "csbtop: bad frame:", err)
			continue
		}
		if !*plain {
			fmt.Print("\x1b[2J\x1b[H") // clear + home
		}
		render(&f, prev)
		prev = &f
		seen++
		if *frames > 0 && seen >= *frames {
			return
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
}

// renderOnce fetches a single /snapshot frame and renders it.
func renderOnce(url string) error {
	resp, err := http.Get(strings.TrimSuffix(url, "/") + "/snapshot")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("snapshot returned %s", resp.Status)
	}
	var f telemetry.Frame
	if err := json.NewDecoder(resp.Body).Decode(&f); err != nil {
		return fmt.Errorf("bad snapshot: %w", err)
	}
	render(&f, nil)
	return nil
}

// replayRun scrubs through a flight recording, rendering each window as
// one dashboard frame (or just the window at -at).
func replayRun(path string, atSet bool, at uint64, frames int, plain bool) error {
	rc, err := rec.ReadFile(path)
	if err != nil {
		return err
	}
	if rc.Truncated {
		fmt.Fprintln(os.Stderr, "csbtop: warning: recording is truncated (no clean footer)")
	}
	if len(rc.Windows) == 0 {
		return fmt.Errorf("%s: recording has no windows", path)
	}
	var slo *rec.SLO
	if len(rc.SLOSpecs) > 0 {
		// The recording carries its own spec; a parse failure here means a
		// newer grammar wrote the file — degrade to no alerts panel.
		slo, _ = rec.ParseSLO(strings.Join(rc.SLOSpecs, "\n"))
	}

	first, last := 0, len(rc.Windows)-1
	if atSet {
		i := sort.Search(len(rc.Windows), func(i int) bool { return rc.Windows[i].C1 >= at })
		if i == len(rc.Windows) {
			i = len(rc.Windows) - 1
		}
		first, last = i, i
	}
	var prev *telemetry.Frame
	seen := 0
	for wi := first; wi <= last; wi++ {
		f := frameFromWindow(rc, wi, slo)
		if wi > first {
			prev = frameFromWindow(rc, wi-1, nil)
		}
		if !plain && !atSet {
			fmt.Print("\x1b[2J\x1b[H")
		}
		fmt.Printf("replay %s  window %d/%d  cycles %d..%d\n", path, wi+1, len(rc.Windows), rc.Windows[wi].C0, rc.Windows[wi].C1)
		render(f, prev)
		seen++
		if frames > 0 && seen >= frames {
			break
		}
	}
	return nil
}

// frameFromWindow synthesizes a telemetry frame from one recorded
// window: counters carry end-of-window cumulative values, histogram
// panels carry the window's own samples. Series names split on the
// first '/' back into (node, name); the full series name is also keyed
// so prefix-skipped cluster-registry names ("cluster/nodes_down")
// resolve exactly as they do in live frames.
func frameFromWindow(rc *rec.Recording, wi int, slo *rec.SLO) *telemetry.Frame {
	w := &rc.Windows[wi]
	f := &telemetry.Frame{Cycle: w.C1, Seq: w.Index + 1, Nodes: map[string]*telemetry.NodeFrame{}}
	node := func(name string) *telemetry.NodeFrame {
		nf := f.Nodes[name]
		if nf == nil {
			nf = &telemetry.NodeFrame{Counters: map[string]uint64{}}
			f.Nodes[name] = nf
		}
		return nf
	}
	for i, name := range rc.CtrNames {
		src, restName := splitSeries(name)
		nf := node(src)
		nf.Counters[restName] = w.CtrEnd[i]
		if restName != name {
			nf.Counters[name] = w.CtrEnd[i]
		}
	}
	for i, name := range rc.HistNames {
		src, restName := splitSeries(name)
		nf := node(src)
		if nf.Histograms == nil {
			nf.Histograms = map[string]telemetry.HistFrame{}
		}
		h := &w.Hist[i]
		var hf telemetry.HistFrame
		hf.Count, hf.Min, hf.Max = h.N, h.Min, h.Max
		hf.P50, hf.P95, hf.P99 = h.P50, h.P95, h.P99
		hf.Mean = h.Mean()
		hf.Delta = h.N
		nf.Histograms[restName] = hf
		if restName != name {
			nf.Histograms[name] = hf
		}
	}
	if slo != nil {
		for _, a := range slo.ActiveAt(rc, wi) {
			f.Alerts = append(f.Alerts, telemetry.Alert{Rule: a.Rule, Series: a.Series, Since: a.Since, Value: a.Value})
		}
	}
	return f
}

// splitSeries splits "node/rest" at the first '/'; a bare name maps to
// itself as both node and counter.
func splitSeries(s string) (string, string) {
	if i := strings.IndexByte(s, '/'); i >= 0 {
		return s[:i], s[i+1:]
	}
	return s, s
}

// render draws one frame. prev supplies the per-node deltas (throughput
// since the last frame).
func render(f, prev *telemetry.Frame) {
	fmt.Printf("csbtop — cycle %d  (frame %d", f.Cycle, f.Seq)
	if f.Dropped > 0 {
		fmt.Printf(", %d dropped", f.Dropped)
	}
	fmt.Println(")")
	fmt.Println()

	names := make([]string, 0, len(f.Nodes))
	for n := range f.Nodes {
		names = append(names, n)
	}
	// Natural order: "n2" before "n10", so wide clusters render in
	// topology order rather than lexicographically.
	sort.Slice(names, func(i, j int) bool { return natLess(names[i], names[j]) })

	fmt.Printf("%-10s %12s %8s %12s %8s\n", "node", "pkts sent", "Δsent", "rx pending", "rx hw")
	for _, name := range names {
		if name == "cluster" {
			continue // aggregate registry, rendered below via its histograms
		}
		nf := f.Nodes[name]
		sent, okSent := pick(nf.Counters, "packets_sent")
		if !okSent {
			continue
		}
		var delta uint64
		if prev != nil {
			if p, ok := prev.Nodes[name]; ok {
				if ps, ok := pick(p.Counters, "packets_sent"); ok && sent >= ps {
					delta = sent - ps
				}
			}
		}
		pending, _ := pick(nf.Counters, "rx_pending")
		hw, _ := pick(nf.Counters, "rx_highwater")
		fmt.Printf("%-10s %12d %8d %12d %8d\n", name, sent, delta, pending, hw)
	}

	// Wire-latency quantiles from whichever node carries the ctrace
	// histograms (the "cluster" node in cluster runs).
	for _, name := range names {
		nf := f.Nodes[name]
		e2e, ok := nf.Histograms["ctrace/e2e"]
		if !ok {
			continue
		}
		fmt.Printf("\ne2e latency: p50=%d p99=%d max=%d cycles  (n=%d, Δ%d)\n",
			e2e.P50, e2e.P99, e2e.Max, e2e.Count, e2e.Delta)
		hopNames := make([]string, 0, len(nf.Histograms))
		for h := range nf.Histograms {
			if strings.HasPrefix(h, "ctrace/hop/") {
				hopNames = append(hopNames, h)
			}
		}
		sort.Strings(hopNames)
		if len(hopNames) > 0 {
			fmt.Print("hops (p50): ")
			for i, h := range hopNames {
				if i > 0 {
					fmt.Print("  ")
				}
				fmt.Printf("%s=%d", strings.TrimPrefix(h, "ctrace/hop/"), nf.Histograms[h].P50)
			}
			fmt.Println()
		}
		break
	}

	// Serving-workload panel: the cluster registry carries one latency
	// histogram and issued/completed counters per load-generator client.
	for _, name := range names {
		nf := f.Nodes[name]
		var clients []string
		for h := range nf.Histograms {
			if strings.HasPrefix(h, "loadgen/") && strings.HasSuffix(h, "/latency") {
				clients = append(clients, strings.TrimSuffix(strings.TrimPrefix(h, "loadgen/"), "/latency"))
			}
		}
		if len(clients) == 0 {
			continue
		}
		sort.Slice(clients, func(i, j int) bool { return natLess(clients[i], clients[j]) })
		fmt.Printf("\n%-10s %10s %10s %8s %8s %8s %6s %10s %10s\n",
			"client", "issued", "completed", "Δdone", "outst", "retries", "lost", "p50", "p99")
		for _, cl := range clients {
			h := nf.Histograms["loadgen/"+cl+"/latency"]
			pre := "loadgen/" + cl + "/"
			fmt.Printf("%-10s %10d %10d %8d %8d %8d %6d %10d %10d\n", cl,
				nf.Counters[pre+"issued"], nf.Counters[pre+"completed"], h.Delta,
				nf.Counters[pre+"outstanding"], nf.Counters[pre+"retries"],
				nf.Counters[pre+"lost"], h.P50, h.P99)
		}
		// Fabric-health line: only once wire faults or degradation have
		// actually bitten (the counters exist, at zero, in every run).
		drops := nf.Counters["cluster/fault_drops"]
		dups := nf.Counters["cluster/fault_dups"]
		outage := nf.Counters["cluster/outage_drops"]
		down := nf.Counters["cluster/nodes_down"]
		if drops+dups+outage+down > 0 {
			fmt.Printf("wire faults: drops=%d dups=%d outage_drops=%d delay_cycles=%d",
				drops, dups, outage, nf.Counters["cluster/fault_delay_cycles"])
			if down > 0 {
				fmt.Printf("  DEGRADED: %d node(s) down, %d drops at corpses",
					down, nf.Counters["cluster/degraded_drops"])
			}
			fmt.Println()
		}
		break
	}

	// SLO alert panel: rules the flight recorder holds in breach as of
	// this frame (live: mirrored into the frame; replay: recomputed).
	if len(f.Alerts) > 0 {
		fmt.Printf("\nALERTS (%d active):\n", len(f.Alerts))
		for _, a := range f.Alerts {
			fmt.Printf("  BREACHED  %-44s %s  since cycle %d (last %.6g)\n",
				a.Series, a.Rule, a.Since, a.Value)
		}
	}
	fmt.Println()
}

// natLess orders strings with embedded decimal runs numerically ("n2" <
// "n10"), falling back to byte order.
func natLess(a, b string) bool {
	for len(a) > 0 && len(b) > 0 {
		if isDigit(a[0]) && isDigit(b[0]) {
			an, arest := splitNum(a)
			bn, brest := splitNum(b)
			if an != bn {
				return an < bn
			}
			a, b = arest, brest
			continue
		}
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		a, b = a[1:], b[1:]
	}
	return len(a) < len(b)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func splitNum(s string) (uint64, string) {
	var v uint64
	i := 0
	for i < len(s) && isDigit(s[i]) {
		v = v*10 + uint64(s[i]-'0')
		i++
	}
	return v, s[i:]
}

// pick finds a counter by suffix match on the path's last segment chain:
// exact name, "cluster/<node>/<name>" and "dev0/<name>" all resolve.
func pick(counters map[string]uint64, name string) (uint64, bool) {
	if v, ok := counters[name]; ok {
		return v, true
	}
	var keys []string
	for k := range counters {
		if strings.HasSuffix(k, "/"+name) {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return 0, false
	}
	// Deterministic choice when several devices match: first sorted key.
	sort.Strings(keys)
	return counters[keys[0]], true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "csbtop:", err)
	os.Exit(1)
}
