package cluster

import (
	"bytes"
	"testing"

	"csbsim/internal/cluster/ctrace"
	"csbsim/internal/obs/journey"
	"csbsim/internal/obs/rec"
)

// recRingSLO is the spec the recorded fault runs carry: a latency bound
// loose enough to stay green plus a fabric-health rule the outage
// windows will flip, so both the quiet and the breached SLO paths land
// in the recording the engines must agree on.
const recRingSLO = "p99(cluster/ctrace/e2e) <= 1000000; rate(cluster/outage_drops) <= 0.01; cluster/nodes_down == 0"

// runRecordedRing is runFaultedRing with a flight recorder attached:
// same 4-node traced ring, same hook-driven traffic, same wire-fault
// mix, plus windowed rollups with an SLO into an in-memory recording.
// It returns the recording bytes and the recorder for state checks.
func runRecordedRing(t *testing.T, run func(*Cluster) error) ([]byte, *rec.Recorder) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Nodes = 4
	cfg.Topology = TopoRing
	cfg.WireLatency = 90
	cfg.Bandwidth = 2
	cfg.LinkDepth = 6
	cfg.RxEnqueueDelay = 13
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range c.Nodes() {
		n.MapIO(false)
		if _, err := n.M.LoadSource("idle.s", "halt\n"); err != nil {
			t.Fatal(err)
		}
		hookSender(c, i, uint64(97+13*i), 30_000, 45_000)
	}
	if _, err := c.AttachTrace(journey.DefaultConfig(), ctrace.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AttachWireFaults(wireFaultMix()); err != nil {
		t.Fatal(err)
	}
	r, err := rec.New(rec.Config{Every: 5_000, Ring: 16})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.SetWriter(&buf); err != nil {
		t.Fatal(err)
	}
	slo, err := rec.ParseSLO(recRingSLO)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.SetSLO(slo); err != nil {
		t.Fatal(err)
	}
	if err := c.AttachRecorder(r); err != nil {
		t.Fatal(err)
	}
	if err := run(c); err != nil {
		t.Fatal(err)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	return buf.Bytes(), r
}

// TestRecordingParallelMatchesSequential is this PR's acceptance check:
// under the full wire-fault mix, the goroutine-per-node engine must
// produce a byte-identical recording file — header, every window frame,
// every cycle-stamped event — to the inline sequential reference, and
// to a second parallel run. Windowed rollups read registries only at
// barriers, so the recording is a pure function of (seed, traffic).
func TestRecordingParallelMatchesSequential(t *testing.T) {
	seq, _ := runRecordedRing(t, func(c *Cluster) error { return c.RunFor(60_000, false) })
	par, _ := runRecordedRing(t, func(c *Cluster) error { return c.RunFor(60_000, true) })
	par2, _ := runRecordedRing(t, func(c *Cluster) error { return c.RunFor(60_000, true) })

	if !bytes.Equal(seq, par) {
		t.Errorf("recordings differ between engines (%d vs %d bytes)", len(seq), len(par))
		logFirstDiff(t, seq, par)
	}
	if !bytes.Equal(par, par2) {
		t.Errorf("parallel recordings differ across runs (%d vs %d bytes)", len(par), len(par2))
		logFirstDiff(t, par, par2)
	}

	// The recording must actually exercise the machinery: windows rolled,
	// outage windows logged, a clean footer.
	rc, err := rec.Read(seq)
	if err != nil {
		t.Fatal(err)
	}
	if !rc.Clean || rc.Truncated {
		t.Errorf("clean=%v truncated=%v, want clean close", rc.Clean, rc.Truncated)
	}
	if len(rc.Windows) == 0 {
		t.Fatal("no windows recorded")
	}
	outages := 0
	for _, ev := range rc.Events {
		if ev.Kind == "link_outage" {
			outages++
		}
	}
	if outages == 0 {
		t.Error("no link_outage events under the wire-fault mix — guard is vacuous")
	}
}

// TestSameSeedDiffEmpty pins the regression-check contract behind
// `csbrec diff`: two runs from the same seed produce recordings with no
// semantic differences (and, byte-equal files aside, Diff itself finds
// nothing even at zero tolerance).
func TestSameSeedDiffEmpty(t *testing.T) {
	a, _ := runRecordedRing(t, func(c *Cluster) error { return c.RunFor(60_000, true) })
	b, _ := runRecordedRing(t, func(c *Cluster) error { return c.RunFor(60_000, true) })
	ra, err := rec.Read(a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := rec.Read(b)
	if err != nil {
		t.Fatal(err)
	}
	if d := rec.Diff(ra, rb, 0); len(d) != 0 {
		t.Errorf("same-seed diff reports %d differences, first: %s", len(d), d[0])
	}
}

// TestRecorderFlushedOnWatchdogAbort pins the flush-ordering fix: when
// the cluster aborts (a node wedges past the watchdog window), the
// recording still ends with its pending events, a final partial window
// and a footer — the abort path must not strand buffered frames.
func TestRecorderFlushedOnWatchdogAbort(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 2
	cfg.WireLatency = 60
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range c.Nodes() {
		n.MapIO(false)
		if _, err := n.M.LoadSource("idle.s", "halt\n"); err != nil {
			t.Fatal(err)
		}
	}
	// Node 0 retires nothing (every bus transaction NACKed), so the
	// watchdog trips it.
	wedgeNode(t, c.Node(0))
	if err := c.SetWatchdog(5_000, false); err != nil {
		t.Fatal(err)
	}
	r, err := rec.New(rec.Config{Every: 1_000})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	r.SetWriter(&buf)
	if err := c.AttachRecorder(r); err != nil {
		t.Fatal(err)
	}
	if err := c.RunFor(60_000, true); err == nil {
		t.Fatal("wedged cluster run succeeded")
	}
	rc, err := rec.Read(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !rc.Clean {
		t.Error("aborted run left no footer — recorder not flushed on the abort path")
	}
	watchdogs := 0
	for _, ev := range rc.Events {
		if ev.Kind == "watchdog" {
			watchdogs++
		}
	}
	if watchdogs == 0 {
		t.Error("watchdog fire missing from the event log")
	}
}

// logFirstDiff reports the byte offset and surrounding text of the first
// divergence between two recordings, for debugging.
func logFirstDiff(t *testing.T, a, b []byte) {
	t.Helper()
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo, hi := i-40, i+40
			if lo < 0 {
				lo = 0
			}
			if hi > n {
				hi = n
			}
			t.Logf("first divergence at byte %d:\n  a: %q\n  b: %q", i, a[lo:hi], b[lo:hi])
			return
		}
	}
	t.Logf("recordings are a prefix of each other (lengths %d vs %d)", len(a), len(b))
}
