// Journey rendering for the Perfetto exporter: store journeys become a
// third process ("memory system") with one thread per journey kind, a
// parent slice spanning each journey end-to-end, nested per-hop segment
// slices, and Chrome trace flow events ("s"/"t"/"f" arrows) stitching
// the story across processes — from the retiring store's pipeline slice,
// through the journey slice, to the bus transaction that carried it.
package obs

import (
	"fmt"

	"csbsim/internal/obs/journey"
)

const perfettoPIDMem = 3

// AddJourneys records journeys (typically Tracer.Retained() after a run)
// for rendering. Ratio is the CPU-to-bus clock ratio, used to bind flow
// arrows to bus-track slices, whose timestamps are bus cycles scaled to
// the shared CPU-cycle timeline.
func (p *Perfetto) AddJourneys(js []journey.Journey, ratio int) {
	p.journeys = append(p.journeys, js...)
	if ratio > 0 {
		p.ratio = ratio
	}
}

// instRef locates one instruction slice so a flow arrow can bind to it.
type instRef struct {
	retire uint64
	tid    int
	ts     uint64
}

// journeyEvents renders all recorded journeys and their flow arrows.
func (p *Perfetto) journeyEvents(events []traceEvent) []traceEvent {
	if len(p.journeys) == 0 {
		return events
	}
	events = append(events,
		traceEvent{Name: "process_name", Ph: "M", PID: perfettoPIDMem,
			Args: map[string]any{"name": "memory system"}})
	kindThreads := []string{"uncached stores", "csb stores", "nic descriptors"}
	for i, name := range kindThreads {
		events = append(events, traceEvent{Name: "thread_name", Ph: "M",
			PID: perfettoPIDMem, TID: 1 + i,
			Args: map[string]any{"name": name}})
	}

	// Index memory-instruction slices by virtual address so each journey
	// can find the pipeline slice of the store that started it: the
	// journey's first stamp is taken the cycle the store retires.
	lanes := p.Lanes
	if lanes <= 0 {
		lanes = 1
	}
	byAddr := make(map[uint64][]instRef)
	for _, e := range p.insts {
		if !e.IsMem {
			continue
		}
		start, _ := e.Span()
		byAddr[e.Addr] = append(byAddr[e.Addr],
			instRef{retire: e.Retire, tid: 1 + int(e.Seq%uint64(lanes)), ts: start})
	}

	flowID := 0
	for _, j := range p.journeys {
		flowID++
		tid := 1 + int(j.Kind)
		start := j.T[journey.HopStart]
		end := j.T[journey.HopComplete]
		if end == 0 { // journey still in flight (or aborted mid-way)
			for h := journey.Hop(0); h < journey.NumHops; h++ {
				if j.T[h] > end {
					end = j.T[h]
				}
			}
		}
		dur := end - start
		if dur == 0 {
			dur = 1
		}
		name := fmt.Sprintf("%s @%#x", j.Kind, j.Addr)
		args := map[string]any{
			"id": j.ID, "size": j.Size,
			"coalesced": j.Coalesced, "aborted": j.Aborted,
		}
		names := journey.HopNames(j.Kind)
		for h := journey.Hop(0); h < journey.NumHops; h++ {
			if names[h] != "" && j.T[h] != 0 {
				args[names[h]] = j.T[h]
			}
		}
		events = append(events, traceEvent{
			Name: name, Ph: "X", Ts: start, Dur: dur,
			PID: perfettoPIDMem, TID: tid, Args: args,
		})
		// Nested per-hop segments: one child slice per pair of
		// consecutive stamped hops.
		prev := journey.HopStart
		for h := prev + 1; h < journey.NumHops; h++ {
			if names[h] == "" || j.T[h] == 0 {
				continue
			}
			segDur := j.T[h] - j.T[prev]
			if segDur == 0 {
				segDur = 1
			}
			events = append(events, traceEvent{
				Name: names[prev] + "→" + names[h],
				Ph:   "X", Ts: j.T[prev], Dur: segDur,
				PID: perfettoPIDMem, TID: tid,
			})
			prev = h
		}
		// Flow arrow: pipeline slice → journey slice → bus slice. The
		// retiring store's slice is matched by (address, retire cycle);
		// the bus slice by the grant stamp, which lands exactly on the
		// transaction's first occupied cycle on the shared timeline.
		steps := make([]traceEvent, 0, 3)
		if refs := byAddr[j.Addr]; refs != nil {
			for _, r := range refs {
				// The CPU's cycle counter leads the machine clock by one
				// (it increments at the top of its Tick), so the retiring
				// store is stamped one cycle after the journey opens.
				if r.retire == start || r.retire == start+1 {
					steps = append(steps, traceEvent{
						Ph: "s", Ts: r.ts, PID: perfettoPIDCPU, TID: r.tid})
					break
				}
			}
		}
		steps = append(steps, traceEvent{
			Ph: "t", Ts: start, PID: perfettoPIDMem, TID: tid})
		if g := j.T[journey.HopBusGrant]; g != 0 && p.ratio > 0 {
			steps = append(steps, traceEvent{
				Ph: "f", Ts: g, PID: perfettoPIDBus, TID: 1})
		}
		if len(steps) < 2 {
			continue // an arrow needs two ends
		}
		steps[0].Ph = "s"
		steps[len(steps)-1].Ph = "f"
		steps[len(steps)-1].BP = "e" // bind the end to the enclosing slice
		for i := range steps {
			steps[i].Name = "store journey"
			steps[i].Cat = "journey"
			steps[i].FlowID = flowID
			events = append(events, steps[i])
		}
	}
	return events
}
