package cpu

import (
	"csbsim/internal/isa"
	"csbsim/internal/mem"
)

// uop is one in-flight instruction: a reorder-buffer entry in the unified
// dispatch queue. Source operands are either captured values (producer nil)
// or references to older uops whose results are read once done.
type uop struct {
	seq  uint64
	inst isa.Inst
	pc   uint64
	// predNext is the PC fetch continued at (the prediction for branches).
	predNext uint64

	// Renamed sources. s1/s2 are the register sources, sd the store-data
	// source (the Rd field of stores and swap), cc the condition-code
	// producer for conditional branches and nothing else.
	s1, s2, sd *uop
	v1, v2, vd uint64
	ccProd     *uop
	ccVal      isa.Flags

	// Execution state.
	issued    bool
	executing bool
	remaining int
	done      bool // result available to dependents
	dead      bool // squashed

	result   uint64
	flags    isa.Flags
	writesCC bool

	// Memory state.
	isMem       bool
	agenDone    bool
	translating int // remaining TLB-walk cycles (0 when not walking)
	walkStarted bool
	addrReady   bool
	va, pa      uint64
	kind        mem.Kind
	faulted     bool
	memIssued   bool // cache access started
	memWait     bool // waiting for a cache fill
	// retire-phase progress for retire-executed operations
	retPhase int

	// Lifecycle stamps in CPU cycles (0 = stage not reached/recorded).
	// Cheap to set unconditionally; carried to the retire observers for
	// pipeline tracing.
	fetchC    uint64
	dispatchC uint64
	issueC    uint64
	completeC uint64

	// Branch state.
	isBranch   bool
	snap       *renSnap
	actualNext uint64
	resolved   bool

	// Recycling state (see the free list in cpu.go). retired marks a
	// committed uop whose slot is awaiting reuse; freeStamp is the global
	// sequence number at retirement — every uop that could still hold a
	// reference has seq <= freeStamp. pins counts outstanding callbacks
	// (cache fills, uncached-load completions) that captured this uop; a
	// pinned uop is never recycled (it is left to the GC instead).
	retired   bool
	freeStamp uint64
	pins      int
}

// renSnap is a branch's snapshot of the rename state, taken at dispatch and
// restored on a misprediction. Snapshots are pooled by the CPU: released
// when the owning branch retires or is squashed.
type renSnap struct {
	ints [isa.NumRegs]*uop
	fps  [isa.NumFRegs]*uop
	cc   *uop
}

// needsRetireExec reports whether the operation's effect happens at the
// head of the ROB rather than in the execute stage: everything with side
// effects that must be in-order, non-speculative and exactly-once.
func (u *uop) needsRetireExec() bool {
	switch u.inst.Op {
	case isa.OpMEMBAR, isa.OpRDPR, isa.OpWRPR, isa.OpIRET, isa.OpTRAP, isa.OpHALT:
		return true
	case isa.OpSWAP:
		return true
	}
	if u.isMem && u.kind != mem.KindCached {
		return true
	}
	return false
}

// srcReady reports whether all register sources are available.
func (u *uop) srcReady() bool {
	if u.s1 != nil && !u.s1.done {
		return false
	}
	if u.s2 != nil && !u.s2.done {
		return false
	}
	if u.sd != nil && !u.sd.done {
		return false
	}
	if u.ccProd != nil && !u.ccProd.done {
		return false
	}
	return true
}

// addrSrcReady reports whether the address source (rs1) is available.
func (u *uop) addrSrcReady() bool {
	return u.s1 == nil || u.s1.done
}

// dataSrcReady reports whether the store-data source is available.
func (u *uop) dataSrcReady() bool {
	return u.sd == nil || u.sd.done
}

// val1, val2, vald and cc return operand values; producers must be done.
func (u *uop) val1() uint64 {
	if u.s1 != nil {
		return u.s1.result
	}
	return u.v1
}

func (u *uop) val2() uint64 {
	if u.s2 != nil {
		return u.s2.result
	}
	return u.v2
}

func (u *uop) vald() uint64 {
	if u.sd != nil {
		return u.sd.result
	}
	return u.vd
}

func (u *uop) cc() isa.Flags {
	if u.ccProd != nil {
		return u.ccProd.flags
	}
	return u.ccVal
}
