package cpu

import "csbsim/internal/isa"

// The decoded-instruction cache memoizes fetch's RAM read + decode per PC:
// a direct-mapped, PC-tagged array consulted before touching memory. The
// simulated programs are static, so a hit is always correct as long as the
// cache is invalidated whenever instruction bytes could have changed:
//
//   - wholesale (a generation bump) on Reset, RestoreState and
//     FlushPipeline — the points where a program is (re)loaded or the
//     kernel has mutated state behind the pipeline's back;
//   - per line on CPU-initiated RAM writes (cached store commit, cached
//     swap), in case a program writes over its own text.
//
// DMA writes are NOT snooped, matching the I-cache model (which also never
// observes device writes): a program that DMA'd over its own code was
// already incoherent before this cache existed.

const (
	decCacheSize = 4096 // entries; instructions are 4-byte aligned
	decCacheMask = decCacheSize - 1
)

type decEntry struct {
	pc   uint64
	gen  uint32
	inst isa.Inst
}

// decode returns the instruction at pc, from the decode cache when
// possible.
func (c *CPU) decode(pc uint64) isa.Inst {
	e := &c.decCache[(pc>>2)&decCacheMask]
	if e.gen == c.decGen && e.pc == pc {
		return e.inst
	}
	in := isa.Decode(uint32(c.ram.ReadUint(pc, 4)))
	*e = decEntry{pc: pc, gen: c.decGen, inst: in}
	return in
}

// invalidateDecodeCache drops every cached decode in O(1) by bumping the
// generation tag.
func (c *CPU) invalidateDecodeCache() {
	c.decGen++
}

// decInvalidate drops cached decodes overlapping a CPU store to RAM.
func (c *CPU) decInvalidate(pa uint64, size int) {
	for a := pa &^ 3; a < pa+uint64(size); a += 4 {
		e := &c.decCache[(a>>2)&decCacheMask]
		if e.pc == a {
			e.gen = 0
		}
	}
}
