// piodma: quantify the paper's §5 claim that the CSB moves the PIO/DMA
// break-even point toward bigger messages. For each message size the same
// payload is delivered to the NIC three ways — plain uncached PIO, PIO
// through the conditional store buffer, and DMA — measuring both the CPU
// overhead per message (cycles until the processor is free) and the wire
// latency (cycles until the packet is fully on the link).
package main

import (
	"fmt"
	"log"

	"csbsim"
)

func main() {
	fmt.Println("regenerating extension experiment X2 (this sweeps 21 machine runs)...")
	overhead, err := csbsim.Figure("X2")
	if err != nil {
		log.Fatal(err)
	}
	latency, err := csbsim.Figure("X2L")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(csbsim.FormatFigure(overhead))
	fmt.Println()
	fmt.Print(csbsim.FormatFigure(latency))
	fmt.Println()
	fmt.Println("reading the tables:")
	fmt.Println(" - plain PIO burns CPU cycles linearly in message size on both axes;")
	fmt.Println("   single-beat uncached stores waste the bus (paper §2).")
	fmt.Println(" - DMA frees the CPU almost immediately (flat overhead) but pays the")
	fmt.Println("   memory-read trip for latency.")
	fmt.Println(" - the CSB gives PIO burst-transfer efficiency: its overhead tracks")
	fmt.Println("   DMA's up to a cache line and grows ~6x slower than plain PIO, and")
	fmt.Println("   it has the lowest wire latency at every size — the paper's claim")
	fmt.Println("   that the CSB can eliminate send-side DMA for small messages.")
}
