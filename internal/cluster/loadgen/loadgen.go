// Package loadgen is the service-scale traffic model: an open-loop load
// generator that streams request packets from client nodes at a
// configurable offered rate against server nodes, measuring per-request
// round-trip latency into the PR 5 histogram registry. It scales the
// paper's microbenchmark story (§7 "realistic applications") to a
// serving workload: many simulated users' requests multiplexed onto a
// client node, servers answering with uncached-store, CSB-batched or DMA
// replies, and throughput/p50/p99 curves versus offered load falling out
// of the registry.
//
// The generator is a cluster.NodeHook: it runs on its node's goroutine
// under the parallel engine and touches only that node's NIC (injecting
// requests host-side, draining replies with destructive pops), so the
// windowed scheduler's determinism guarantee extends to serving runs.
// Open loop means arrivals never wait for completions — the
// characteristic that exposes queueing collapse past saturation, which a
// closed-loop (ping-pong) benchmark structurally cannot show.
//
// Inter-arrival gaps come from a seeded fault.PRNG under three
// distributions (uniform, bursty, heavy-tailed Pareto), the synthetic
// shapes the Boukhobza/Timsit trace-simulation work validates against.
//
// Request reliability: with Config.Timeout set, every request carries a
// deadline; a timed-out request is retried up to MaxRetries times with
// exponential backoff plus seeded jitter (and failover to the next
// server when several are configured), then counted lost. Each attempt
// stamps a generation number into the request header, and the reply
// echoes it — a late or wire-duplicated reply whose generation does not
// match the live attempt is suppressed (duplicate_replies), the paper's
// §3.2 check-and-retry discipline lifted to the request layer. Goodput
// counts completions within one timeout of first issue; retried
// completions also land in a dedicated retry-latency histogram.
package loadgen

import (
	"fmt"
	"math"

	"csbsim/internal/cluster"
	"csbsim/internal/device"
	"csbsim/internal/fault"
	"csbsim/internal/obs/counters"
)

// Dist selects the inter-arrival time distribution.
type Dist int

const (
	// DistUniform draws gaps uniformly from [gap/2, 3·gap/2).
	DistUniform Dist = iota
	// DistBursty issues back-to-back bursts of 8 requests separated by
	// long off-periods, preserving the configured mean rate.
	DistBursty
	// DistHeavyTail draws gaps from a Pareto(α=1.5) whose mean is the
	// configured gap — rare very long gaps, many short ones.
	DistHeavyTail
)

// ParseDist maps the CLI spellings onto a Dist.
func ParseDist(s string) (Dist, error) {
	switch s {
	case "uniform":
		return DistUniform, nil
	case "bursty":
		return DistBursty, nil
	case "heavytail", "heavy-tail", "pareto":
		return DistHeavyTail, nil
	}
	return 0, fmt.Errorf("unknown distribution %q (want uniform, bursty or heavytail)", s)
}

// String renders the distribution's canonical CLI spelling.
func (d Dist) String() string {
	switch d {
	case DistUniform:
		return "uniform"
	case DistBursty:
		return "bursty"
	case DistHeavyTail:
		return "heavytail"
	}
	return fmt.Sprintf("dist(%d)", int(d))
}

// burstLen is the fixed burst size of DistBursty.
const burstLen = 8

// pendingCap is the request-tracking ring size (power of two). A request
// whose slot is overwritten before its reply arrives is counted lost —
// the open-loop analogue of a timeout.
const pendingCap = 1 << 13

// idMask extracts the request ID from a header word: bits 39:0 carry the
// ID, bits 47:40 the attempt generation, bits 63:48 the client node —
// byte-identical to the historical 48-bit-ID encoding while generations
// stay zero (no retries).
const idMask = 1<<40 - 1

// maxBackoff caps the exponential backoff shift so BackoffBase<<attempt
// cannot overflow or schedule a retry past any practical horizon.
const maxBackoff = 1 << 22

// Config parameterizes one generator.
type Config struct {
	// MeanGap is the mean inter-arrival time in CPU cycles (the offered
	// rate is 1/MeanGap requests per cycle). Minimum 1.
	MeanGap uint64
	// Dist is the inter-arrival distribution.
	Dist Dist
	// Seed seeds the gap PRNG; two generators with equal seeds and
	// configs issue identical request streams.
	Seed uint64
	// Words is the request (and reply) payload size in 8-byte words,
	// 1..8; default 8 (one 64-byte line, the CSB batch unit).
	Words int
	// Servers lists the destination node indices, used round-robin.
	Servers []int
	// IssueUntil stops new requests after this cluster cycle (0 = never);
	// the generator keeps draining replies afterwards.
	IssueUntil uint64
	// Warmup delays the first request until this cluster cycle.
	Warmup uint64
	// Timeout is the per-request deadline in cluster cycles (0 disables
	// deadlines, retries and goodput accounting — the historical
	// fire-and-forget behavior). A request unanswered for Timeout cycles
	// is retried (budget permitting) or counted lost.
	Timeout uint64
	// MaxRetries bounds re-sends per request (0 = no retries: the first
	// timeout is terminal). Requires Timeout > 0.
	MaxRetries int
	// BackoffBase is the base retry delay: attempt k waits
	// BackoffBase<<k cycles plus seeded jitter in [0, half that] after
	// its timeout fires. 0 defaults to Timeout/4 (min 1).
	BackoffBase uint64
}

// Stats is a generator's cumulative request accounting. At any read
// point, Issued == Completed + Lost + outstanding (requests still in
// flight) — the exact-accounting invariant the fault campaign asserts.
type Stats struct {
	Issued    uint64 `json:"issued"`
	Completed uint64 `json:"completed"`
	// Lost counts requests given up on: the retry budget was exhausted
	// after a timeout, or the tracking slot was reused before a reply
	// arrived (the open-loop overload signal).
	Lost uint64 `json:"lost"`
	// Stray counts reply packets that matched no outstanding request.
	Stray uint64 `json:"stray"`
	// Timeouts counts deadline expiries (a request retried three times
	// contributes up to four).
	Timeouts uint64 `json:"timeouts"`
	// Retries counts re-sent requests.
	Retries uint64 `json:"retries"`
	// DuplicateReplies counts replies suppressed by the generation check:
	// a stale attempt answering after its retry was sent, a reply for an
	// already-completed or given-up request, or a wire-duplicated packet.
	DuplicateReplies uint64 `json:"duplicate_replies"`
	// Goodput counts completions within Timeout cycles of first issue
	// (== Completed when Timeout is 0) — the SLO-meaningful completions.
	Goodput uint64 `json:"goodput"`
}

type pendingReq struct {
	id       uint64
	issued   uint64 // first-issue cycle (latency baseline across retries)
	deadline uint64
	srv      int   // index into cfg.Servers of the current attempt's target
	gen      uint8 // current attempt generation, echoed in the reply header
	attempts uint8 // re-sends so far
	live     bool
}

// deadlineEnt is one armed deadline. Deadlines are appended in
// nondecreasing order (send cycles are monotone, Timeout constant), so
// expiry is a head-of-queue scan.
type deadlineEnt struct {
	id       uint64
	deadline uint64
	gen      uint8
}

// retryEnt is one backoff-delayed retry waiting to fire.
type retryEnt struct {
	id  uint64
	at  uint64
	gen uint8
}

// Generator drives one client node. Create with New, wire with Attach,
// then run the cluster; read Stats and the latency histogram afterwards.
type Generator struct {
	cfg  Config
	prng fault.PRNG

	node *cluster.Node
	self int

	slots     int // packet-buffer ring slots
	slotBytes uint64
	nextIssue uint64
	reqID     uint64
	rrIdx     int

	pending []pendingReq
	pendCap uint64 // pending ring size; the default pendingCap, shrinkable in tests
	stats   Stats

	// Reliability state (only populated when cfg.Timeout > 0).
	dlq    []deadlineEnt // armed deadlines, nondecreasing; head at dlHead
	dlHead int
	retryq []retryEnt // backoff-delayed retries, fired in insertion order

	// reply reassembly: replies arrive packet-atomically, Words words each
	rxHave int
	rxHdr  uint64

	hist    *counters.Histogram
	rhist   *counters.Histogram // retried completions' e2e latency
	scratch [8]byte
}

// New builds a generator. Validation happens in Attach, where the
// cluster's shape is known.
func New(cfg Config) *Generator {
	if cfg.MeanGap == 0 {
		cfg.MeanGap = 1000
	}
	if cfg.Words == 0 {
		cfg.Words = 8
	}
	if cfg.Timeout > 0 && cfg.BackoffBase == 0 {
		cfg.BackoffBase = clamp1(cfg.Timeout / 4)
	}
	return &Generator{cfg: cfg, prng: fault.NewPRNG(cfg.Seed), pendCap: pendingCap}
}

// Attach binds the generator to node `self` of c: validates the server
// set against the topology, registers the latency histogram and request
// counters under "loadgen/<node>/" in the cluster registry, and installs
// the per-cycle hook. The node's guest should simply halt — the hook
// keeps the node's NIC ticking.
func (g *Generator) Attach(c *cluster.Cluster, self int) error {
	if self < 0 || self >= c.NumNodes() {
		return fmt.Errorf("loadgen: client node %d out of range", self)
	}
	if g.cfg.Words < 1 || g.cfg.Words > 8 {
		return fmt.Errorf("loadgen: %d-word requests unsupported (want 1..8, one NIC line)", g.cfg.Words)
	}
	if g.cfg.MaxRetries < 0 || g.cfg.MaxRetries > 200 {
		return fmt.Errorf("loadgen: MaxRetries %d outside [0, 200]", g.cfg.MaxRetries)
	}
	if g.cfg.MaxRetries > 0 && g.cfg.Timeout == 0 {
		return fmt.Errorf("loadgen: MaxRetries %d without a Timeout", g.cfg.MaxRetries)
	}
	if len(g.cfg.Servers) == 0 {
		return fmt.Errorf("loadgen: no server nodes")
	}
	for _, s := range g.cfg.Servers {
		if s < 0 || s >= c.NumNodes() || s == self {
			return fmt.Errorf("loadgen: bad server node %d for client %d", s, self)
		}
		if _, ok := c.Link(self, s); !ok {
			return fmt.Errorf("loadgen: no link from client %d to server %d", self, s)
		}
	}
	g.node = c.Node(self)
	g.self = self
	g.slotBytes = uint64(g.cfg.Words * 8)
	g.slots = int(uint64(device.PacketBufSize) / g.slotBytes)
	g.pending = make([]pendingReq, g.pendCap)
	reg := c.AttachCounters()
	prefix := "loadgen/" + g.node.Name() + "/"
	g.hist = reg.Histogram(prefix + "latency")
	g.rhist = reg.Histogram(prefix + "retry_latency")
	reg.Counter(prefix+"issued", func() uint64 { return g.stats.Issued })
	reg.Counter(prefix+"completed", func() uint64 { return g.stats.Completed })
	reg.Counter(prefix+"lost", func() uint64 { return g.stats.Lost })
	reg.Counter(prefix+"outstanding", func() uint64 { return g.stats.Issued - g.stats.Completed - g.stats.Lost })
	reg.Counter(prefix+"timeouts", func() uint64 { return g.stats.Timeouts })
	reg.Counter(prefix+"retries", func() uint64 { return g.stats.Retries })
	reg.Counter(prefix+"duplicate_replies", func() uint64 { return g.stats.DuplicateReplies })
	reg.Counter(prefix+"goodput", func() uint64 { return g.stats.Goodput })
	g.nextIssue = g.cfg.Warmup + g.gap()
	c.SetNodeHook(self, g.hook)
	return nil
}

// Stats returns the cumulative request accounting. Requests still in
// flight at read time are neither completed nor lost:
// Issued - Completed - Lost = outstanding.
func (g *Generator) Stats() Stats { return g.stats }

// Latency returns the round-trip latency histogram.
func (g *Generator) Latency() *counters.Histogram { return g.hist }

// hook is the per-cycle driver: drain replies, expire deadlines, fire
// due retries, then issue per schedule — a fixed order so the PRNG draw
// sequence (and with it the whole run) is deterministic. It runs on the
// node's goroutine inside lookahead windows and touches only this node's
// state (its NIC, the generator's own accounting and histograms).
//
//csb:worker per-cycle NodeHook on the owning node's goroutine
func (g *Generator) hook(cycle uint64) bool {
	g.drain(cycle)
	if g.cfg.Timeout > 0 {
		g.expire(cycle)
		g.fireRetries(cycle)
	}
	if cycle >= g.nextIssue && (g.cfg.IssueUntil == 0 || cycle <= g.cfg.IssueUntil) {
		g.inject(cycle)
		g.nextIssue = cycle + g.gap()
	}
	return true
}

// inject issues one fresh request. Mirrors what a guest's uncached
// stores would do, without costing simulated cycles — the client models
// an aggregation point for many remote users, not a CPU-bound sender.
func (g *Generator) inject(cycle uint64) {
	id := g.reqID & idMask
	p := &g.pending[id%g.pendCap]
	if p.live {
		// Slot recycled under an unanswered request: the old request is
		// lost, and any late reply for it will be counted stray (its ID no
		// longer matches the slot).
		g.stats.Lost++
	}
	*p = pendingReq{id: id, issued: cycle, srv: g.rrIdx, live: true}
	g.rrIdx = (g.rrIdx + 1) % len(g.cfg.Servers)
	g.send(p, cycle)
	g.stats.Issued++
	g.reqID++
}

// send transmits the current attempt of request p: payload into its
// packet-buffer slot, destination steered via RegTxDest, one descriptor
// push, and (with deadlines on) arms the attempt's deadline.
func (g *Generator) send(p *pendingReq, cycle uint64) {
	slot := uint64(int(p.id)%g.slots) * g.slotBytes
	base := cluster.NICBase + device.PacketBufBase + slot
	hdr := uint64(g.self)<<48 | uint64(p.gen)<<40 | p.id
	g.writeWord(base, hdr)
	for w := 1; w < g.cfg.Words; w++ {
		g.writeWord(base+uint64(w*8), g.prng.Uint64())
	}
	g.writeWord(cluster.NICBase+device.RegTxDest, uint64(g.cfg.Servers[p.srv]))
	g.writeWord(cluster.NICBase+device.RegTxFIFO, slot|g.slotBytes<<48)
	if g.cfg.Timeout > 0 {
		p.deadline = cycle + g.cfg.Timeout
		g.dlq = append(g.dlq, deadlineEnt{id: p.id, deadline: p.deadline, gen: p.gen})
	}
}

// expire fires deadlines due at or before cycle. A timed-out request
// with retry budget left schedules a backoff-delayed retry; one without
// is lost. Entries for completed or superseded attempts are skipped.
func (g *Generator) expire(cycle uint64) {
	for g.dlHead < len(g.dlq) && g.dlq[g.dlHead].deadline <= cycle {
		e := g.dlq[g.dlHead]
		g.dlHead++
		p := &g.pending[e.id%g.pendCap]
		if !p.live || p.id != e.id || p.gen != e.gen {
			continue
		}
		g.stats.Timeouts++
		if int(p.attempts) < g.cfg.MaxRetries {
			g.retryq = append(g.retryq, retryEnt{id: e.id, at: cycle + g.backoff(p.attempts), gen: e.gen})
		} else {
			p.live = false
			g.stats.Lost++
		}
	}
	if g.dlHead > 4096 && 2*g.dlHead >= len(g.dlq) {
		n := copy(g.dlq, g.dlq[g.dlHead:])
		g.dlq = g.dlq[:n]
		g.dlHead = 0
	}
}

// backoff draws attempt k's retry delay: BackoffBase<<k plus seeded
// jitter in [0, half that], capped at maxBackoff.
func (g *Generator) backoff(attempt uint8) uint64 {
	b := g.cfg.BackoffBase << attempt
	if b == 0 || b > maxBackoff {
		b = maxBackoff
	}
	return b + uint64(g.prng.Intn(int(b/2)+1))
}

// fireRetries re-sends requests whose backoff elapsed. A reply that
// arrived during the backoff already completed the request (its
// generation was still current), so stale entries are skipped. Each
// retry bumps the generation — orphaning any still-flying older attempt
// — and fails over to the next server when several are configured.
func (g *Generator) fireRetries(cycle uint64) {
	if len(g.retryq) == 0 {
		return
	}
	keep := g.retryq[:0]
	for _, e := range g.retryq {
		if e.at > cycle {
			keep = append(keep, e)
			continue
		}
		p := &g.pending[e.id%g.pendCap]
		if !p.live || p.id != e.id || p.gen != e.gen {
			continue
		}
		p.attempts++
		p.gen++
		if len(g.cfg.Servers) > 1 {
			p.srv = (p.srv + 1) % len(g.cfg.Servers)
		}
		g.stats.Retries++
		g.send(p, cycle)
	}
	g.retryq = keep
}

// drain pops every waiting RX word, reassembling fixed-size replies and
// recording their round-trip latency. The reply header must match the
// live request's ID *and* generation: a reply from a stale attempt (or a
// wire duplicate) is suppressed, never double-completing a request or
// corrupting a recycled slot's latency sample.
func (g *Generator) drain(cycle uint64) {
	for {
		w, ok := g.node.NIC.RxPop()
		if !ok {
			return
		}
		if g.rxHave == 0 {
			g.rxHdr = w
		}
		g.rxHave++
		if g.rxHave < g.cfg.Words {
			continue
		}
		g.rxHave = 0
		if g.rxHdr>>48 != uint64(g.self) {
			g.stats.Stray++
			continue
		}
		id := g.rxHdr & idMask
		gen := uint8(g.rxHdr >> 40)
		p := &g.pending[id%g.pendCap]
		switch {
		case p.live && p.id == id && p.gen == gen:
			p.live = false
			lat := cycle - p.issued
			g.hist.Record(lat)
			g.stats.Completed++
			if g.cfg.Timeout == 0 || lat <= g.cfg.Timeout {
				g.stats.Goodput++
			}
			if p.attempts > 0 {
				g.rhist.Record(lat)
			}
		case p.id == id:
			// Same request, wrong generation or already settled: a late
			// original overtaken by its retry, a duplicate delivery, or a
			// reply to a request we gave up on.
			g.stats.DuplicateReplies++
		default:
			g.stats.Stray++
		}
	}
}

// writeWord stores one little-endian word at physical address pa on the
// node's NIC, through the device's normal write path.
func (g *Generator) writeWord(pa, v uint64) {
	for i := range g.scratch {
		g.scratch[i] = byte(v >> (8 * i))
	}
	g.node.NIC.WriteTarget(pa, g.scratch[:])
}

// gap draws the next inter-arrival time (≥ 1 cycle).
func (g *Generator) gap() uint64 {
	mean := g.cfg.MeanGap
	switch g.cfg.Dist {
	case DistBursty:
		// Within a burst: back-to-back. Between bursts: an off-period
		// drawn so the overall mean stays MeanGap. gap() runs after
		// reqID++, so reqID%burstLen == 0 means a burst just finished.
		if g.reqID%burstLen != 0 {
			return 1
		}
		off := mean*burstLen - (burstLen - 1)
		if off < 2 {
			return 1
		}
		return clamp1(off/2 + uint64(g.prng.Intn(int(off))))
	case DistHeavyTail:
		// Pareto(α=1.5) with xm = mean/3 so E[gap] = mean; capped at
		// 100·mean to keep a single draw from stalling the run.
		u := float64(g.prng.Uint64()>>11) / (1 << 53) // [0,1)
		xm := float64(mean) / 3
		v := xm / math.Pow(1-u, 1/1.5)
		if lim := float64(mean) * 100; v > lim {
			v = lim
		}
		return clamp1(uint64(v))
	default: // uniform
		return clamp1(mean/2 + uint64(g.prng.Intn(int(mean))))
	}
}

func clamp1(v uint64) uint64 {
	if v < 1 {
		return 1
	}
	return v
}
