package sim

import (
	"strings"
	"testing"
)

func TestReportContainsAllSections(t *testing.T) {
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m.MapRange(0x4000_0000, 1<<16, 2 /* KindCombining */)
	p, err := m.LoadSource("r.s", `
	set 0x40000000, %o1
	mov 1, %l4
	stx %g1, [%o1]
	swap [%o1], %l4
	mov 3, %o0
	trap 2
	trap 3
	halt
`)
	if err != nil {
		t.Fatal(err)
	}
	m.WarmProgram(p)
	if err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if err := m.Drain(100_000); err != nil {
		t.Fatal(err)
	}
	rep := m.Stats().Report()
	for _, want := range []string{
		"cycles:", "instructions:", "branches:", "caches:", "tlb:",
		"uncached:", "csb:", "bus:", "by size:", "events:",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	if got := m.Console(); got != "30x3" {
		t.Errorf("console = %q, want decimal then hex", got)
	}
	if m.Cycle() == 0 {
		t.Error("Cycle accessor")
	}
	if regs := m.Registers(); regs[20] != 1 {
		t.Errorf("Registers()[l4] = %d (flush should have succeeded)", regs[20])
	}
}

func TestEmptyReportHasNoEvents(t *testing.T) {
	rep := (Stats{}).Report()
	if strings.Contains(rep, "events:") {
		t.Error("empty stats should omit the events line")
	}
}

func TestConfigValidateRejectsBadFields(t *testing.T) {
	bad := DefaultConfig()
	bad.Ratio = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero ratio accepted")
	}
	bad2 := DefaultConfig()
	bad2.ContextSwitchCost = -1
	if err := bad2.Validate(); err == nil {
		t.Error("negative context switch cost accepted")
	}
	bad3 := DefaultConfig()
	bad3.CSB.LineSize = 7
	if err := bad3.Validate(); err == nil {
		t.Error("bad CSB config accepted")
	}
	bad4 := DefaultConfig()
	bad4.Bus.WidthBytes = 0
	if err := bad4.Validate(); err == nil {
		t.Error("bad bus config accepted")
	}
	bad5 := DefaultConfig()
	bad5.UB.Entries = 0
	if err := bad5.Validate(); err == nil {
		t.Error("bad uncbuf config accepted")
	}
	bad6 := DefaultConfig()
	bad6.CPU.ROBSize = 0
	if err := bad6.Validate(); err == nil {
		t.Error("bad cpu config accepted")
	}
	bad7 := DefaultConfig()
	bad7.Caches.MSHRs = 0
	if err := bad7.Validate(); err == nil {
		t.Error("bad cache config accepted")
	}
}

func TestRunReportsCycleLimit(t *testing.T) {
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.LoadSource("spin.s", "loop: ba loop\n"); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(1000); err == nil || !strings.Contains(err.Error(), "cycle limit") {
		t.Errorf("err = %v", err)
	}
}

func TestLoadSourceSurfacesAssemblyErrors(t *testing.T) {
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.LoadSource("bad.s", "bogus %g1\n"); err == nil {
		t.Error("assembly error not surfaced")
	}
}

func TestUnhandledTrapCodeFails(t *testing.T) {
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.LoadSource("t.s", "trap 55\nhalt\n"); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(100_000); err == nil {
		t.Error("unhandled trap should halt with error")
	}
}
