// Package kernel is the minimal operating-system substrate the CSB
// experiments need: processes with distinct IDs and address spaces, a
// round-robin preemptive scheduler driven by a timer interrupt, and
// context switches that save and restore architectural state — but, like
// real hardware, never the CSB. An interrupted combining sequence is
// detected by the CSB's PID/hit-counter check and retried by software,
// which is precisely the non-blocking synchronization scheme of §3.2.
//
// The kernel itself runs at "firmware" level (Go code manipulating the
// saved register state) rather than as simulated instructions; its cost is
// modeled by the machine's ContextSwitchCost. DESIGN.md records this
// substitution.
package kernel

import (
	"fmt"

	"csbsim/internal/asm"
	"csbsim/internal/cpu"
	"csbsim/internal/isa"
	"csbsim/internal/mem"
	"csbsim/internal/sim"
)

// Process is one schedulable context.
type Process struct {
	PID      uint8
	Name     string
	State    cpu.ArchState
	Space    *mem.PageTable
	Started  bool
	Finished bool
	// Cycles is the CPU time the process has consumed.
	Cycles uint64
}

// Kernel schedules processes on a machine.
type Kernel struct {
	m       *sim.Machine
	procs   []*Process
	current int
	// Quantum is the time slice in CPU cycles.
	Quantum   uint64
	nextTimer uint64

	switches   uint64
	lastSwitch uint64
}

// New creates a kernel for the machine with the given time slice.
func New(m *sim.Machine, quantum uint64) *Kernel {
	k := &Kernel{m: m, Quantum: quantum, current: -1}
	m.CPU.InterruptHook = k.onInterrupt
	return k
}

// Switches reports how many context switches have occurred.
func (k *Kernel) Switches() uint64 { return k.switches }

// Processes returns the process table.
func (k *Kernel) Processes() []*Process { return k.procs }

// Spawn loads a program into memory and creates a process executing it
// under the given PID. Each process gets its own address space with the
// program identity-mapped cached; callers add device or combining mappings
// on the returned process's Space.
func (k *Kernel) Spawn(name string, pid uint8, prog *asm.Program) (*Process, error) {
	for _, p := range k.procs {
		if p.PID == pid {
			return nil, fmt.Errorf("kernel: pid %d already in use", pid)
		}
	}
	base, data, err := prog.Bytes()
	if err != nil {
		return nil, err
	}
	k.m.RAM.Write(base, data)
	space := k.m.AddressSpace(pid)
	span := uint64(len(data)) + 1<<20
	space.MapRange(base&^uint64(mem.PageSize-1), base&^uint64(mem.PageSize-1), span, mem.KindCached, true)

	p := &Process{PID: pid, Name: name, Space: space}
	p.State.PC = prog.Entry
	p.State.PR[isa.PRPID] = uint64(pid)
	p.State.PR[isa.PRSTATUS] = 1 // interrupts enabled
	k.procs = append(k.procs, p)
	return p, nil
}

// onInterrupt is the machine-level timer handler: it saves the interrupted
// process and dispatches the next runnable one.
func (k *Kernel) onInterrupt(cause uint64) bool {
	if cause != uint64(isa.CauseTimer) {
		return false
	}
	k.saveCurrent()
	k.dispatchNext()
	return true
}

func (k *Kernel) saveCurrent() {
	if k.current < 0 || k.current >= len(k.procs) {
		return
	}
	p := k.procs[k.current]
	if p.Finished {
		return
	}
	st := k.m.CPU.SaveState()
	// The resume PC was placed in ERPC by interrupt delivery.
	st.PC = st.PR[isa.PRERPC]
	st.PR[isa.PRSTATUS] |= 1 // re-enable interrupts for next run
	p.State = st
	p.Cycles += k.m.Cycle() - k.lastSwitch
}

// dispatchNext round-robins to the next unfinished process, restoring its
// state and address space and charging the context-switch cost.
func (k *Kernel) dispatchNext() bool {
	n := len(k.procs)
	prev := k.current
	for i := 1; i <= n; i++ {
		idx := (k.current + i) % n
		p := k.procs[idx]
		if p.Finished {
			continue
		}
		k.current = idx
		c := k.m.CPU
		c.RestoreState(p.State)
		c.SetPageTable(p.Space)
		// Re-dispatching the interrupted process is the kernel's fast
		// path: no register-file or address-space switch to pay for.
		if p.Started && idx != prev {
			c.Stall(k.m.Cfg.ContextSwitchCost)
		}
		p.Started = true
		k.switches++
		k.lastSwitch = k.m.Cycle()
		k.nextTimer = k.m.Cycle() + k.Quantum
		return true
	}
	return false
}

// Run schedules processes until all have exited (or maxCycles elapse). A
// process exits by executing HALT.
func (k *Kernel) Run(maxCycles uint64) error {
	if len(k.procs) == 0 {
		return fmt.Errorf("kernel: no processes")
	}
	if !k.dispatchNext() {
		return fmt.Errorf("kernel: nothing runnable")
	}
	for i := uint64(0); i < maxCycles; i++ {
		if k.m.CPU.Halted() {
			if err := k.m.CPU.Err(); err != nil {
				return fmt.Errorf("kernel: process %q: %w", k.procs[k.current].Name, err)
			}
			p := k.procs[k.current]
			p.Finished = true
			p.Cycles += k.m.Cycle() - k.lastSwitch
			if !k.dispatchNext() {
				return nil // all done
			}
		}
		if k.m.Cycle() >= k.nextTimer {
			k.m.CPU.Interrupt(uint64(isa.CauseTimer))
		}
		k.m.Tick()
	}
	return fmt.Errorf("kernel: cycle limit %d reached", maxCycles)
}
