package device

import "fmt"

// AddrError reports a guest access that fell outside a device's valid
// range — a bogus transmit-descriptor offset, a DMA length larger than
// the packet buffer. Real hardware would raise a bus error or silently
// wedge; the simulator records the first such error on the device and
// sim.Machine.Run surfaces it as a typed run failure instead of
// panicking, so a buggy guest produces a diagnosis rather than a crash.
type AddrError struct {
	Dev  string // device description, e.g. "nic(base=0x40000000 ...)"
	Op   string // operation that went out of range, e.g. "tx-descriptor"
	Addr uint64 // offending device-relative address/offset
	Size int    // access length in bytes
	// Bound is the first address past the valid range.
	Bound uint64
}

func (e *AddrError) Error() string {
	return fmt.Sprintf("device: %s: %s at offset %#x size %d outside [0, %#x)",
		e.Dev, e.Op, e.Addr, e.Size, e.Bound)
}
