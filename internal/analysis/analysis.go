// Package analysis is a self-contained static-analysis framework for the
// repository's invariant checkers (cmd/csbvet). It mirrors the shape of
// golang.org/x/tools/go/analysis — Analyzer, Pass, Diagnostic — but is
// built purely on the standard library (go/ast, go/types, and export data
// produced by `go list -export`), so the module keeps its zero-dependency
// property.
//
// The analyzers it hosts enforce contracts that the simulator's results
// depend on but that ordinary tests only probe pointwise:
//
//   - noretain: pooled objects (bus.Txn, cpu uops, rename snapshots) must
//     not be retained past the callback that delivered them;
//   - determinism: the simulation packages must produce bit-identical
//     output across runs (no wall-clock time, no math/rand, no unsorted
//     map iteration feeding output);
//   - hotalloc: functions annotated //csb:hotpath must not contain
//     heap-allocating constructs;
//   - phasesafe: code colored //csb:worker (runs on a node goroutine
//     inside a lookahead window) must not reach cross-node shared state
//     or barrier-only APIs; colors propagate over the package call graph
//     (see BuildCallGraph);
//   - clockdomain: uint64 cycle stamps from different nodes' clocks must
//     not be compared or combined without a ctrace.SetAlign-derived
//     offset.
//
// Source pragmas recognized by the analyzers (always written as a whole
// line-comment token, like //go:noinline). Pragmas marked (reason) must
// be followed by a non-empty justification on the same line — enforced
// repo-wide by TestPragmaHygiene:
//
//	//csb:hotpath   in a function's doc comment: the function is on the
//	                per-tick hot path and is checked by hotalloc.
//	//csb:pool      on a function's doc comment or on a statement line:
//	                sanctioned pool-management code; noretain is silent.
//	//csb:alloc-ok  (reason) on a statement line inside a hot-path
//	                function: a deliberate slow-path allocation; hotalloc
//	                is silent.
//	//csb:orderless on the line of a `range` statement over a map whose
//	                iteration order provably does not affect output.
//	//csb:worker    (reason) on a function's doc comment or a go-func
//	                literal's line: the code runs on a per-node goroutine
//	                inside a lookahead window; phasesafe propagates the
//	                color to everything it calls.
//	//csb:barrier   (reason) on a function's doc comment or a literal's
//	                line: barrier-only code, single-threaded between
//	                windows; phasesafe reports any call from worker color.
//	//csb:worker-ok (reason) on a statement line inside worker-phase
//	                code: a reviewed shared-state access; phasesafe is
//	                silent for that line.
//	//csb:aligned   (reason) on an expression's line: the cycle stamps
//	                being combined are provably in the same clock domain;
//	                clockdomain is silent for that line.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -analyzers flags.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run performs the check, reporting findings via pass.Reportf.
	Run func(pass *Pass) error
}

// A Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	pragmas map[string]map[int][]string // filename → line → pragma names
	diags   []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Pragma reports whether the given //csb: pragma appears on the line of
// pos or on the line immediately above it (so a pragma can annotate a long
// statement from its own line).
func (p *Pass) Pragma(pos token.Pos, name string) bool {
	position := p.Fset.Position(pos)
	lines := p.pragmas[position.Filename]
	for _, ln := range []int{position.Line, position.Line - 1} {
		for _, pr := range lines[ln] {
			if pr == name {
				return true
			}
		}
	}
	return false
}

// FuncPragma reports whether fn's doc comment carries the given pragma.
func FuncPragma(fn *ast.FuncDecl, name string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if pragmaName(c.Text) == name {
			return true
		}
	}
	return false
}

// pragmaName extracts the name of a //csb: pragma comment, or "".
func pragmaName(text string) string {
	const prefix = "//csb:"
	if !strings.HasPrefix(text, prefix) {
		return ""
	}
	name := strings.TrimPrefix(text, prefix)
	if i := strings.IndexAny(name, " \t"); i >= 0 {
		name = name[:i]
	}
	return name
}

// indexPragmas builds the filename→line→pragmas table for a pass.
func (p *Pass) indexPragmas() {
	p.pragmas = make(map[string]map[int][]string)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name := pragmaName(c.Text)
				if name == "" {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				lines := p.pragmas[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					p.pragmas[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], name)
			}
		}
	}
}

// RunAnalyzers applies each analyzer to pkg and returns the combined
// findings sorted by position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
		}
		pass.indexPragmas()
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.Path, err)
		}
		out = append(out, pass.diags...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}
