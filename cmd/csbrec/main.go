// csbrec inspects flight-recorder recordings (internal/obs/rec): window
// summaries, per-series statistics, window slices, the cycle-stamped
// event log, SLO checks, tolerance-aware recording diffs for regression
// gating, and Perfetto counter-track export so recorded history lines up
// with journey/ctrace slices on one timeline.
//
// Usage:
//
//	csbrec summary file.rec
//	csbrec series [-m glob] file.rec
//	csbrec slice [-from N] [-to M] [-m glob] file.rec
//	csbrec events file.rec
//	csbrec check -slo 'spec-or-@file' file.rec   (exit 1 on any breach)
//	csbrec diff [-tol F] a.rec b.rec             (exit 1 when different)
//	csbrec perfetto [-o out.json] file.rec
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"csbsim/internal/obs/rec"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "summary":
		err = cmdSummary(args)
	case "series":
		err = cmdSeries(args)
	case "slice":
		err = cmdSlice(args)
	case "events":
		err = cmdEvents(args)
	case "check":
		err = cmdCheck(args)
	case "diff":
		err = cmdDiff(args)
	case "perfetto":
		err = cmdPerfetto(args)
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "csbrec: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "csbrec:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  csbrec summary file.rec                      recording overview
  csbrec series [-m glob] file.rec             per-series stats over all windows
  csbrec slice [-from N] [-to M] [-m glob] f   windows in a cycle range
  csbrec events file.rec                       the cycle-stamped event log
  csbrec check -slo spec|@file file.rec        evaluate an SLO spec (exit 1 on breach)
  csbrec diff [-tol F] a.rec b.rec             compare recordings (exit 1 when different)
  csbrec perfetto [-o out.json] file.rec       Perfetto counter-track export
`)
}

// loadRec parses one recording, warning about truncation.
func loadRec(path string) (*rec.Recording, error) {
	rc, err := rec.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if rc.Truncated {
		fmt.Fprintf(os.Stderr, "csbrec: warning: %s has a truncated tail (aborted writer?); using the valid prefix\n", path)
	}
	return rc, nil
}

// one positional recording argument.
func oneArg(fs *flag.FlagSet, args []string) (string, error) {
	if err := fs.Parse(args); err != nil {
		return "", err
	}
	if fs.NArg() != 1 {
		return "", fmt.Errorf("want exactly one recording file, got %d args", fs.NArg())
	}
	return fs.Arg(0), nil
}

func cmdSummary(args []string) error {
	fs := flag.NewFlagSet("summary", flag.ContinueOnError)
	path, err := oneArg(fs, args)
	if err != nil {
		return err
	}
	rc, err := loadRec(path)
	if err != nil {
		return err
	}
	fmt.Printf("recording %s (format v%d)\n", path, rc.Version)
	fmt.Printf("  sources:   %s\n", strings.Join(rc.Sources, ", "))
	fmt.Printf("  series:    %d counters, %d histograms\n", len(rc.CtrNames), len(rc.HistNames))
	fmt.Printf("  cadence:   %d cycles/window\n", rc.Every)
	end := rc.End
	if len(rc.Windows) > 0 {
		end = rc.Windows[len(rc.Windows)-1].C1
	}
	fmt.Printf("  windows:   %d, cycles %d..%d\n", len(rc.Windows), rc.Start, end)
	status := "clean close (footer present)"
	if !rc.Clean {
		status = "no footer (writer did not flush)"
	}
	if rc.Truncated {
		status += ", truncated tail"
	}
	fmt.Printf("  status:    %s\n", status)
	if len(rc.SLOSpecs) > 0 {
		fmt.Printf("  slo:       %s\n", strings.Join(rc.SLOSpecs, "; "))
	}
	if len(rc.Events) > 0 {
		byKind := map[string]int{}
		for _, ev := range rc.Events {
			byKind[ev.Kind]++
		}
		var kinds []string
		for _, k := range []string{"watchdog", "node_down", "link_outage", "slo_breach", "slo_recover", "slo_unbound"} {
			if byKind[k] > 0 {
				kinds = append(kinds, fmt.Sprintf("%s=%d", k, byKind[k]))
				delete(byKind, k)
			}
		}
		for k, n := range byKind { //csb:orderless — leftover kinds, cosmetic order
			kinds = append(kinds, fmt.Sprintf("%s=%d", k, n))
		}
		fmt.Printf("  events:    %d (%s)\n", len(rc.Events), strings.Join(kinds, " "))
	} else {
		fmt.Printf("  events:    0\n")
	}
	return nil
}

// matchGlob is csbrec's -m filter (same '*' semantics as SLO specs).
func matchGlob(pat, name string) bool {
	if pat == "" {
		return true
	}
	return rec.MatchSeries(pat, name)
}

func cmdSeries(args []string) error {
	fs := flag.NewFlagSet("series", flag.ContinueOnError)
	m := fs.String("m", "", "series glob filter ('*' wildcards)")
	path, err := oneArg(fs, args)
	if err != nil {
		return err
	}
	rc, err := loadRec(path)
	if err != nil {
		return err
	}
	if len(rc.Windows) == 0 {
		return fmt.Errorf("%s holds no windows", path)
	}
	first, last := &rc.Windows[0], &rc.Windows[len(rc.Windows)-1]
	span := last.C1 - first.C0
	for i, name := range rc.CtrNames {
		if !matchGlob(*m, name) {
			continue
		}
		// Deltas are two's-complement: a gauge that shrank over a window
		// records a wrapped uint64; render signed.
		var total, maxDelta int64
		for wi := range rc.Windows {
			d := int64(rc.Windows[wi].CtrDelta[i])
			total += d
			if d > maxDelta {
				maxDelta = d
			}
		}
		rate := float64(total) * 1000 / float64(span)
		fmt.Printf("ctr  %-44s end=%-10d delta=%-10d rate=%.3f/kcycle peak_window=%d\n",
			name, last.CtrEnd[i], total, rate, maxDelta)
	}
	for i, name := range rc.HistNames {
		if !matchGlob(*m, name) {
			continue
		}
		var n uint64
		var worst *rec.Window
		var p99lo, p99hi uint64
		seen := false
		for wi := range rc.Windows {
			h := &rc.Windows[wi].Hist[i]
			if h.N == 0 {
				continue
			}
			n += h.N
			if !seen || h.P99 < p99lo {
				p99lo = h.P99
			}
			if !seen || h.P99 > p99hi {
				p99hi = h.P99
				worst = &rc.Windows[wi]
			}
			seen = true
		}
		if !seen {
			fmt.Printf("hist %-44s n=0\n", name)
			continue
		}
		fmt.Printf("hist %-44s n=%-8d p99=[%d..%d] worst_window=(%d,%d]\n",
			name, n, p99lo, p99hi, worst.C0, worst.C1)
	}
	return nil
}

func cmdSlice(args []string) error {
	fs := flag.NewFlagSet("slice", flag.ContinueOnError)
	from := fs.Uint64("from", 0, "first cycle of interest")
	to := fs.Uint64("to", ^uint64(0), "last cycle of interest")
	m := fs.String("m", "", "series glob filter ('*' wildcards)")
	path, err := oneArg(fs, args)
	if err != nil {
		return err
	}
	rc, err := loadRec(path)
	if err != nil {
		return err
	}
	printed := 0
	for wi := range rc.Windows {
		w := &rc.Windows[wi]
		if w.C1 < *from || w.C0 > *to {
			continue
		}
		fmt.Printf("window %d (%d,%d]\n", w.Index, w.C0, w.C1)
		for i, name := range rc.CtrNames {
			if !matchGlob(*m, name) {
				continue
			}
			fmt.Printf("  ctr  %-44s end=%-10d delta=%d\n", name, w.CtrEnd[i], int64(w.CtrDelta[i]))
		}
		for i, name := range rc.HistNames {
			if !matchGlob(*m, name) {
				continue
			}
			h := &w.Hist[i]
			if h.N == 0 {
				fmt.Printf("  hist %-44s n=0\n", name)
				continue
			}
			fmt.Printf("  hist %-44s n=%-6d min=%d p50=%d p95=%d p99=%d max=%d mean=%.1f\n",
				name, h.N, h.Min, h.P50, h.P95, h.P99, h.Max, h.Mean())
		}
		printed++
	}
	if printed == 0 {
		return fmt.Errorf("no windows intersect cycles [%d,%d]", *from, *to)
	}
	return nil
}

func cmdEvents(args []string) error {
	fs := flag.NewFlagSet("events", flag.ContinueOnError)
	path, err := oneArg(fs, args)
	if err != nil {
		return err
	}
	rc, err := loadRec(path)
	if err != nil {
		return err
	}
	for _, ev := range rc.Events {
		line := fmt.Sprintf("cycle %-10d %-12s", ev.Cycle, ev.Kind)
		if ev.Node != "" {
			line += " " + ev.Node
		}
		if ev.Rule != "" {
			line += fmt.Sprintf("  rule=%q", ev.Rule)
		}
		if ev.Value != 0 {
			line += fmt.Sprintf("  value=%g", ev.Value)
		}
		fmt.Println(line)
	}
	fmt.Printf("%d events\n", len(rc.Events))
	return nil
}

// loadSLO parses a -slo argument: a literal spec, or @path to a file.
func loadSLO(arg string) (*rec.SLO, error) {
	if arg == "" {
		return nil, fmt.Errorf("missing -slo spec")
	}
	if strings.HasPrefix(arg, "@") {
		data, err := os.ReadFile(arg[1:])
		if err != nil {
			return nil, err
		}
		arg = string(data)
	}
	return rec.ParseSLO(arg)
}

func cmdCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ContinueOnError)
	sloArg := fs.String("slo", "", "SLO spec string, or @file")
	path, err := oneArg(fs, args)
	if err != nil {
		return err
	}
	slo, err := loadSLO(*sloArg)
	if err != nil {
		return err
	}
	rc, err := loadRec(path)
	if err != nil {
		return err
	}
	res := slo.Check(rc)
	for _, raw := range res.Unbound {
		fmt.Fprintf(os.Stderr, "csbrec: warning: rule %q matches no series\n", raw)
	}
	breaches := 0
	for _, ev := range res.Events {
		if ev.Kind == "slo_breach" {
			breaches++
		}
		fmt.Printf("cycle %-10d %-12s %s  rule=%q  value=%g\n", ev.Cycle, ev.Kind, ev.Node, ev.Rule, ev.Value)
	}
	for _, a := range res.Active {
		fmt.Printf("STILL BREACHED at end: %s  rule=%q  value=%g (since cycle %d)\n", a.Series, a.Rule, a.Value, a.Since)
	}
	if breaches > 0 || len(res.Active) > 0 {
		return fmt.Errorf("%d breach(es) over %d windows", breaches, len(rc.Windows))
	}
	fmt.Printf("ok: %d rules over %d windows, no breaches\n", len(slo.Rules), len(rc.Windows))
	return nil
}

func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	tol := fs.Float64("tol", 0, "relative tolerance on numeric comparisons (0 = exact)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("want exactly two recording files")
	}
	a, err := loadRec(fs.Arg(0))
	if err != nil {
		return err
	}
	b, err := loadRec(fs.Arg(1))
	if err != nil {
		return err
	}
	diffs := rec.Diff(a, b, *tol)
	for _, d := range diffs {
		fmt.Println(d)
	}
	if len(diffs) > 0 {
		return fmt.Errorf("recordings differ (%d difference(s), tol=%g)", len(diffs), *tol)
	}
	return nil
}

// traceEvent mirrors the Chrome trace-event subset ctrace emits, plus
// the "C" counter phase — loading this file together with a ctrace or
// journey export lines recorded history up with the slices.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

func cmdPerfetto(args []string) error {
	fs := flag.NewFlagSet("perfetto", flag.ContinueOnError)
	out := fs.String("o", "-", "output path ('-' = stdout)")
	m := fs.String("m", "", "series glob filter ('*' wildcards)")
	path, err := oneArg(fs, args)
	if err != nil {
		return err
	}
	rc, err := loadRec(path)
	if err != nil {
		return err
	}
	const pid = 99 // past the ctrace per-node pids, so merged loads don't collide
	events := []traceEvent{{Name: "process_name", Ph: "M", PID: pid,
		Args: map[string]any{"name": "flight recorder"}}}
	for wi := range rc.Windows {
		w := &rc.Windows[wi]
		for i, name := range rc.CtrNames {
			if !matchGlob(*m, name) {
				continue
			}
			events = append(events, traceEvent{Name: name + " (delta)", Ph: "C", Ts: w.C1, PID: pid,
				Args: map[string]any{"value": w.CtrDelta[i]}})
		}
		for i, name := range rc.HistNames {
			if !matchGlob(*m, name) {
				continue
			}
			h := &w.Hist[i]
			events = append(events, traceEvent{Name: name + " p99", Ph: "C", Ts: w.C1, PID: pid,
				Args: map[string]any{"value": h.P99}})
		}
	}
	for _, ev := range rc.Events {
		name := ev.Kind
		if ev.Node != "" {
			name += " " + ev.Node
		}
		e := traceEvent{Name: name, Ph: "i", Ts: ev.Cycle, PID: pid, S: "g"}
		if ev.Rule != "" || ev.Value != 0 {
			e.Args = map[string]any{}
			if ev.Rule != "" {
				e.Args["rule"] = ev.Rule
			}
			if ev.Value != 0 {
				e.Args["value"] = ev.Value
			}
		}
		events = append(events, e)
	}
	doc := struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{events, "ns"}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&doc)
}
