// Package uncbuf models the processor's uncached buffer (paper §4.1): a
// FIFO queue between the retire stage and the system interface that holds
// uncached loads and stores. Optionally it combines stores into block-sized
// entries, covering the spectrum of real designs from the PowerPC 620 (two
// stores) to the R10000's uncached-accelerated buffer (a full cache line):
// the block size is configurable from 16 bytes to a cache line, or
// combining can be disabled entirely.
//
// Combining is opportunistic and software-transparent: a store coalesces
// into the youngest entry when it falls into the same block and does not
// bypass an earlier load or barrier; head entries are popped as soon as the
// bus can accept them, so combining succeeds only while the buffer is
// backed up — exactly the latency/utilization trade-off §2 describes.
package uncbuf

import (
	"fmt"

	"csbsim/internal/bus"
)

// Config parameterizes the uncached buffer.
type Config struct {
	// Entries is the queue depth (default 8).
	Entries int
	// BlockSize is the combining block in bytes; 0 disables combining
	// (every store issues as its own single-beat transaction).
	BlockSize int
	// MaxBurst caps a single bus transaction (the cache line size).
	MaxBurst int
	// Sequential restricts combining to strictly sequential addresses,
	// modeling the R10000 uncached-accelerated buffer (ablation X4).
	Sequential bool
}

// DefaultConfig returns an 8-entry non-combining buffer with 64-byte
// maximum bursts.
func DefaultConfig() Config {
	return Config{Entries: 8, BlockSize: 0, MaxBurst: 64}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Entries <= 0 {
		return fmt.Errorf("uncbuf: entries must be positive")
	}
	if c.BlockSize != 0 && (c.BlockSize < 8 || c.BlockSize&(c.BlockSize-1) != 0) {
		return fmt.Errorf("uncbuf: block size %d invalid", c.BlockSize)
	}
	if c.MaxBurst <= 0 || c.MaxBurst&(c.MaxBurst-1) != 0 {
		return fmt.Errorf("uncbuf: max burst %d invalid", c.MaxBurst)
	}
	return nil
}

// Stats counts buffer activity.
type Stats struct {
	Stores       uint64 // stores accepted
	Loads        uint64 // loads accepted
	Coalesced    uint64 // stores merged into an existing entry
	Entries      uint64 // entries created
	Transactions uint64 // bus transactions issued
	StallFull    uint64 // cycles a store could not be accepted
}

type entryKind uint8

const (
	entryStore entryKind = iota
	entryLoad
)

type entry struct {
	kind      entryKind
	blockAddr uint64
	data      []byte
	mask      []bool
	// seqNext is the only offset a store may merge at in Sequential
	// (R10000-style) mode: exactly one past the previous store.
	seqNext int
	// load fields
	loadAddr uint64
	loadSize int
	done     func([]byte)
}

// Buffer is the uncached buffer. It is not safe for concurrent use; the
// simulator is single-threaded by design.
type Buffer struct {
	cfg   Config
	queue []entry
	// chunks of the popped head entry awaiting bus issue
	sending  []bus.Chunk
	sendData []byte
	sendBase uint64
	inflight int // bus transactions issued but not yet complete
	stats    Stats
}

// New creates an uncached buffer.
func New(cfg Config) (*Buffer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Buffer{cfg: cfg}, nil
}

// Config returns the buffer configuration.
func (u *Buffer) Config() Config { return u.cfg }

// Stats returns a snapshot of the counters.
func (u *Buffer) Stats() Stats { return u.stats }

// Len returns the number of queued entries (excluding any entry currently
// being transferred).
func (u *Buffer) Len() int { return len(u.queue) }

// Empty reports whether the buffer holds nothing and no issued transaction
// is still on the bus. MEMBAR retires only when this is true.
func (u *Buffer) Empty() bool {
	return len(u.queue) == 0 && len(u.sending) == 0 && u.inflight == 0
}

// CanAcceptStore reports whether a store would be accepted this cycle.
func (u *Buffer) CanAcceptStore(addr uint64, size int) bool {
	if u.mergeIndex(addr, size) >= 0 {
		return true
	}
	return len(u.queue) < u.cfg.Entries
}

// mergeIndex returns the queue index the store at addr can coalesce into,
// or -1. Only the youngest entry is eligible, which guarantees stores never
// bypass older loads, barriers or stores to other blocks.
func (u *Buffer) mergeIndex(addr uint64, size int) int {
	if u.cfg.BlockSize == 0 || len(u.queue) == 0 {
		return -1
	}
	i := len(u.queue) - 1
	e := &u.queue[i]
	if e.kind != entryStore {
		return -1
	}
	block := addr &^ uint64(u.cfg.BlockSize-1)
	if e.blockAddr != block {
		return -1
	}
	off := int(addr - block)
	if off+size > u.cfg.BlockSize {
		return -1
	}
	if u.cfg.Sequential && off != e.seqNext {
		// R10000-style: the store must be to the address immediately
		// following the previous one.
		return -1
	}
	return i
}

// AddStore offers an uncached store to the buffer. It returns false when
// the buffer is full (the retire stage must stall and retry).
func (u *Buffer) AddStore(addr uint64, size int, data []byte) bool {
	if len(data) != size {
		panic(fmt.Sprintf("uncbuf: store data %d != size %d", len(data), size))
	}
	if i := u.mergeIndex(addr, size); i >= 0 {
		e := &u.queue[i]
		off := int(addr - e.blockAddr)
		copy(e.data[off:], data)
		for k := 0; k < size; k++ {
			e.mask[off+k] = true
		}
		e.seqNext = off + size
		u.stats.Stores++
		u.stats.Coalesced++
		return true
	}
	if len(u.queue) >= u.cfg.Entries {
		u.stats.StallFull++
		return false
	}
	var e entry
	if u.cfg.BlockSize == 0 {
		// Non-combining: entry is exactly the store.
		e = entry{kind: entryStore, blockAddr: addr, data: append([]byte(nil), data...), mask: allTrue(size)}
	} else {
		block := addr &^ uint64(u.cfg.BlockSize-1)
		e = entry{kind: entryStore, blockAddr: block,
			data: make([]byte, u.cfg.BlockSize), mask: make([]bool, u.cfg.BlockSize)}
		off := int(addr - block)
		copy(e.data[off:], data)
		for k := 0; k < size; k++ {
			e.mask[off+k] = true
		}
		e.seqNext = off + size
	}
	u.queue = append(u.queue, e)
	u.stats.Stores++
	u.stats.Entries++
	return true
}

// AddLoad queues an uncached load. done receives the data when the bus
// transaction completes. It returns false when the buffer is full.
func (u *Buffer) AddLoad(addr uint64, size int, done func([]byte)) bool {
	if len(u.queue) >= u.cfg.Entries {
		u.stats.StallFull++
		return false
	}
	u.queue = append(u.queue, entry{kind: entryLoad, loadAddr: addr, loadSize: size, done: done})
	u.stats.Loads++
	u.stats.Entries++
	return true
}

func allTrue(n int) []bool {
	m := make([]bool, n)
	for i := range m {
		m[i] = true
	}
	return m
}

// TickCPU pops the head store entry into the system-interface send stage
// as soon as it is free. The machine calls this every CPU cycle, *before*
// the core retires new stores: the send stage drains at core rate, so with
// an idle bus the first store of a stream always departs alone and only
// the backlog behind it can combine (the warm-up effect of §4.3.1).
func (u *Buffer) TickCPU() {
	if len(u.sending) != 0 || len(u.queue) == 0 {
		return
	}
	head := u.queue[0]
	if head.kind != entryStore {
		return // loads issue directly from the queue on bus cycles
	}
	u.queue = u.queue[1:]
	u.sendBase = head.blockAddr
	u.sendData = head.data
	u.sending = bus.AlignedChunks(head.blockAddr, head.mask, u.cfg.MaxBurst)
}

// TickBus gives the buffer a chance to issue one transaction on the bus.
// The machine calls this once per bus cycle, after bus.Tick.
func (u *Buffer) TickBus(b *bus.Bus) {
	u.TickCPU() // the send stage also refills on bus cycles
	if len(u.sending) == 0 && len(u.queue) > 0 {
		head := u.queue[0]
		switch head.kind {
		case entryLoad:
			// Strong ordering: a load issues only after all older
			// transactions completed.
			if u.inflight > 0 {
				return
			}
			txn := &bus.Txn{
				Addr: head.loadAddr, Size: head.loadSize,
				Ordered: true, IO: true,
			}
			done := head.done
			txn.Done = func(t *bus.Txn) {
				u.inflight--
				if done != nil {
					done(t.Data)
				}
			}
			if b.TryIssue(txn) {
				u.queue = u.queue[1:]
				u.inflight++
				u.stats.Transactions++
			}
			return
		}
	}
	if len(u.sending) == 0 {
		return
	}
	c := u.sending[0]
	data := make([]byte, c.Size)
	copy(data, u.sendData[c.Addr-u.sendBase:])
	txn := &bus.Txn{Addr: c.Addr, Size: c.Size, Write: true, Data: data, Ordered: true, IO: true}
	txn.Done = func(*bus.Txn) { u.inflight-- }
	if b.TryIssue(txn) {
		u.inflight++
		u.sending = u.sending[1:]
		u.stats.Transactions++
	}
}
