package determinism_test

import (
	"testing"

	"csbsim/internal/analysis/antest"
	"csbsim/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	antest.Run(t, determinism.Analyzer, "testdata/sim",
		"csbsim/internal/sim/fixture", "time", "math/rand")
}

// TestOutOfScope loads a wall-clock-reading fixture under an import path
// outside the deterministic set: no diagnostics expected.
func TestOutOfScope(t *testing.T) {
	antest.Run(t, determinism.Analyzer, "testdata/outscope",
		"csbsim/internal/obs/fixture", "time", "math/rand")
}

func TestInScope(t *testing.T) {
	for _, path := range []string{
		"csbsim/internal/sim",
		"csbsim/internal/sim/fixture",
		"csbsim/internal/cpu",
	} {
		if !determinism.InScope(path) {
			t.Errorf("InScope(%q) = false, want true", path)
		}
	}
	for _, path := range []string{
		"csbsim/internal/simulator", // prefix of a scoped path, different package
		"csbsim/internal/obs",
		"csbsim/internal/asm",
	} {
		if determinism.InScope(path) {
			t.Errorf("InScope(%q) = true, want false", path)
		}
	}
}
