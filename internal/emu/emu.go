// Package emu is a plain sequential interpreter for SV9L programs. It
// shares nothing with the out-of-order model in internal/cpu beyond the
// ISA definition, which makes it a useful differential-testing oracle:
// any program without timing-dependent behaviour must leave both
// implementations in identical architectural state.
//
// The emulator executes everything as if memory were flat and cached; it
// does not model the uncached buffer, the CSB or devices. Address ranges
// marked combining (MarkCombining) get the fault-free reference semantics
// of a conditional flush: a swap there always "succeeds" — the source
// register is returned unchanged and no memory is exchanged — so guest
// retry loops written against the CSB protocol terminate immediately,
// and the fault campaign can compare a faulted machine run against this
// oracle's final architectural state.
package emu

import (
	"fmt"
	"math"

	"csbsim/internal/asm"
	"csbsim/internal/isa"
	"csbsim/internal/mem"
)

// Emulator is the architectural state of the reference interpreter.
type Emulator struct {
	R  [isa.NumRegs]uint64
	F  [isa.NumFRegs]uint64
	CC isa.Flags
	PC uint64

	Mem    *mem.Memory
	halted bool
	steps  uint64

	maxSteps  uint64
	combining []combRange

	// Trap, if set, handles OpTRAP codes; returning false halts with an
	// error. The default mimics the machine's console traps into Console.
	Trap    func(code int64) bool
	Console []byte
}

type combRange struct{ base, end uint64 }

// DefaultMaxSteps is the Run budget when WithMaxSteps is not given:
// generous enough for every difftest and example guest, small enough
// that a livelocked guest fails in well under a second.
const DefaultMaxSteps = 10_000_000

// Option configures an Emulator at construction.
type Option func(*Emulator)

// WithMaxSteps sets the Run instruction budget. A run that exhausts it
// fails with a *StepLimitError, letting callers distinguish "the guest
// livelocked" from "my budget was too small" and raise the budget.
func WithMaxSteps(n uint64) Option {
	return func(e *Emulator) { e.maxSteps = n }
}

// WithCombining marks [base, base+size) as combining space at
// construction (see MarkCombining).
func WithCombining(base, size uint64) Option {
	return func(e *Emulator) { e.MarkCombining(base, size) }
}

// New creates an emulator with the program loaded into fresh memory.
func New(p *asm.Program, opts ...Option) (*Emulator, error) {
	m := mem.NewMemory()
	base, data, err := p.Bytes()
	if err != nil {
		return nil, err
	}
	m.Write(base, data)
	e := &Emulator{Mem: m, PC: p.Entry, maxSteps: DefaultMaxSteps}
	e.Trap = e.defaultTrap
	for _, o := range opts {
		o(e)
	}
	return e, nil
}

// MarkCombining marks [base, base+size) as uncached-combining space: a
// swap addressed there models an always-successful conditional flush
// (the fault-free reference of §3.1) — the source register is returned
// unchanged and memory is not exchanged. Plain stores still write the
// flat memory, which is exactly where the machine's CSB line bursts
// land, so final memory is comparable between the two.
func (e *Emulator) MarkCombining(base, size uint64) {
	e.combining = append(e.combining, combRange{base: base, end: base + size})
}

func (e *Emulator) isCombining(addr uint64) bool {
	for _, r := range e.combining {
		if addr >= r.base && addr < r.end {
			return true
		}
	}
	return false
}

// StepLimitError reports a Run that exhausted its instruction budget
// (WithMaxSteps) without halting: either the guest livelocked, or the
// budget was too small for the workload.
type StepLimitError struct {
	Limit uint64
	PC    uint64
}

func (e *StepLimitError) Error() string {
	return fmt.Sprintf("emu: step limit %d reached at pc %#x (guest livelock, or raise the budget with WithMaxSteps)",
		e.Limit, e.PC)
}

func (e *Emulator) defaultTrap(code int64) bool {
	switch code {
	case 1:
		e.Console = append(e.Console, byte(e.R[8]))
		return true
	case 2:
		e.Console = append(e.Console, []byte(fmt.Sprintf("%d", int64(e.R[8])))...)
		return true
	case 3:
		e.Console = append(e.Console, []byte(fmt.Sprintf("%#x", e.R[8]))...)
		return true
	}
	return false
}

// Halted reports whether the program has executed HALT.
func (e *Emulator) Halted() bool { return e.halted }

// Steps returns the number of instructions executed.
func (e *Emulator) Steps() uint64 { return e.steps }

// Run executes until HALT or the configured step budget (WithMaxSteps,
// DefaultMaxSteps otherwise) is exhausted, which fails with a typed
// *StepLimitError.
func (e *Emulator) Run() error {
	for i := uint64(0); i < e.maxSteps; i++ {
		if e.halted {
			return nil
		}
		if err := e.Step(); err != nil {
			return err
		}
	}
	if e.halted {
		return nil
	}
	return &StepLimitError{Limit: e.maxSteps, PC: e.PC}
}

func (e *Emulator) reg(r isa.Reg) uint64 {
	if r == 0 {
		return 0
	}
	return e.R[r]
}

func (e *Emulator) setReg(r isa.Reg, v uint64) {
	if r != 0 {
		e.R[r] = v
	}
}

// Step executes one instruction.
func (e *Emulator) Step() error {
	word := uint32(e.Mem.ReadUint(e.PC, 4))
	in := isa.Decode(word)
	e.steps++
	next := e.PC + 4

	a := e.reg(in.Rs1)
	b := e.reg(in.Rs2)
	if in.Op.HasImm() {
		b = uint64(in.Imm)
	}
	fa := e.F[in.Rs1&31]
	fb := e.F[in.Rs2&31]

	switch in.Op {
	case isa.OpInvalid:
		return fmt.Errorf("emu: illegal instruction %#08x at %#x", word, e.PC)

	case isa.OpADD, isa.OpADDI:
		e.setReg(in.Rd, a+b)
	case isa.OpSUB, isa.OpSUBI:
		e.setReg(in.Rd, a-b)
	case isa.OpAND, isa.OpANDI:
		e.setReg(in.Rd, a&b)
	case isa.OpOR, isa.OpORI:
		e.setReg(in.Rd, a|b)
	case isa.OpXOR, isa.OpXORI:
		e.setReg(in.Rd, a^b)
	case isa.OpSLL, isa.OpSLLI:
		e.setReg(in.Rd, a<<(b&63))
	case isa.OpSRL, isa.OpSRLI:
		e.setReg(in.Rd, a>>(b&63))
	case isa.OpSRA, isa.OpSRAI:
		e.setReg(in.Rd, uint64(int64(a)>>(b&63)))
	case isa.OpMUL, isa.OpMULI:
		e.setReg(in.Rd, a*b)

	case isa.OpADDCC, isa.OpADDCCI:
		r := a + b
		e.CC = isa.FlagsFromAdd(a, b, r)
		e.setReg(in.Rd, r)
	case isa.OpSUBCC, isa.OpSUBCCI:
		r := a - b
		e.CC = isa.FlagsFromSub(a, b, r)
		e.setReg(in.Rd, r)
	case isa.OpANDCC, isa.OpANDCCI:
		r := a & b
		e.CC = isa.FlagsFromLogic(r)
		e.setReg(in.Rd, r)
	case isa.OpORCC, isa.OpORCCI:
		r := a | b
		e.CC = isa.FlagsFromLogic(r)
		e.setReg(in.Rd, r)

	case isa.OpLUI:
		e.setReg(in.Rd, uint64(in.Imm)<<13)

	case isa.OpBR:
		if in.Cond.Eval(e.CC) {
			next = e.PC + 4 + uint64(4*in.Imm)
		}
	case isa.OpJAL:
		e.setReg(in.Rd, e.PC+4)
		next = e.PC + 4 + uint64(4*in.Imm)
	case isa.OpJALR:
		e.setReg(in.Rd, e.PC+4)
		next = (a + uint64(in.Imm)) &^ 3

	case isa.OpLDB, isa.OpLDH, isa.OpLDW, isa.OpLDX:
		addr := a + uint64(in.Imm)
		e.setReg(in.Rd, e.Mem.ReadUint(addr, in.Op.MemBytes()))
	case isa.OpSTB, isa.OpSTH, isa.OpSTW, isa.OpSTX:
		addr := a + uint64(in.Imm)
		e.Mem.WriteUint(addr, in.Op.MemBytes(), e.reg(in.Rd))
	case isa.OpLDF:
		addr := a + uint64(in.Imm)
		e.F[in.Rd&31] = e.Mem.ReadUint(addr, 8)
	case isa.OpSTF:
		addr := a + uint64(in.Imm)
		e.Mem.WriteUint(addr, 8, e.F[in.Rd&31])
	case isa.OpSWAP:
		addr := a + uint64(in.Imm)
		if e.isCombining(addr) {
			// Conditional flush, fault-free reference semantics (§3.1):
			// the flush always succeeds, the source register is returned
			// unchanged, and combining space is not a memory exchange.
			break
		}
		old := e.Mem.ReadUint(addr, 8)
		e.Mem.WriteUint(addr, 8, e.reg(in.Rd))
		e.setReg(in.Rd, old)

	case isa.OpMEMBAR, isa.OpNOP:
		// nothing

	case isa.OpFADD:
		e.F[in.Rd&31] = math.Float64bits(math.Float64frombits(fa) + math.Float64frombits(fb))
	case isa.OpFSUB:
		e.F[in.Rd&31] = math.Float64bits(math.Float64frombits(fa) - math.Float64frombits(fb))
	case isa.OpFMUL:
		e.F[in.Rd&31] = math.Float64bits(math.Float64frombits(fa) * math.Float64frombits(fb))
	case isa.OpFDIV:
		e.F[in.Rd&31] = math.Float64bits(math.Float64frombits(fa) / math.Float64frombits(fb))
	case isa.OpFMOV:
		e.F[in.Rd&31] = fa
	case isa.OpFNEG:
		e.F[in.Rd&31] = math.Float64bits(-math.Float64frombits(fa))
	case isa.OpFITOD:
		e.F[in.Rd&31] = math.Float64bits(float64(int64(a)))
	case isa.OpFDTOI:
		e.setReg(in.Rd, uint64(int64(math.Float64frombits(fa))))
	case isa.OpFCMP:
		x, y := math.Float64frombits(fa), math.Float64frombits(fb)
		e.CC = isa.Flags{Z: x == y, N: x < y}
	case isa.OpMOVR2F:
		e.F[in.Rd&31] = a
	case isa.OpMOVF2R:
		e.setReg(in.Rd, fa)

	case isa.OpRDPR, isa.OpWRPR, isa.OpIRET:
		return fmt.Errorf("emu: privileged op %s at %#x not supported", in.Op.Name(), e.PC)
	case isa.OpTRAP:
		if e.Trap == nil || !e.Trap(in.Imm) {
			return fmt.Errorf("emu: unhandled trap %d at %#x", in.Imm, e.PC)
		}
	case isa.OpHALT:
		e.halted = true
		return nil
	default:
		return fmt.Errorf("emu: unimplemented op %s", in.Op.Name())
	}
	e.PC = next
	return nil
}
