// SLO spec parsing, series binding, and per-window evaluation. The same
// binding + evaluation path serves both the live recorder (breach events
// logged at the barrier as windows roll) and offline `csbrec check`
// (replaying a finished recording), so a spec that passes offline is
// exactly the spec that stays quiet live.
package rec

import (
	"fmt"
	"strconv"
	"strings"
)

// Rule is one parsed SLO rule: an aggregation over one (or, for ratio,
// two) series glob patterns compared against a threshold.
//
// Grammar (one rule per line or ';'-separated; '#' starts a comment):
//
//	rule      := expr op number
//	expr      := series | agg '(' series [ ',' series ] ')'
//	agg       := value|delta|rate|ratio|p50|p95|p99|mean|min|max|count
//	op        := <= | >= | == | != | < | >
//
// A bare series name means value(series). Counter aggregations:
// value (end-of-window cumulative value), delta (change over the
// window), rate (delta per 1000 cycles), ratio (delta of the first
// series over delta of the second). Histogram aggregations: p50, p95,
// p99, mean, min, max, count — over the window's own samples only.
// Series names may use '*' globs; ratio's two patterns must use the
// same number of '*'s, and each match of the first pattern binds the
// second with the same captures (so
// "ratio(cluster/loadgen/*/goodput, cluster/loadgen/*/issued) >= 0.9"
// pairs per node).
type Rule struct {
	Raw       string
	Agg       string
	Arg1      string
	Arg2      string
	Op        string
	Threshold float64
}

// holds reports whether value v satisfies the rule.
func (r *Rule) holds(v float64) bool {
	switch r.Op {
	case "<=":
		return v <= r.Threshold
	case ">=":
		return v >= r.Threshold
	case "<":
		return v < r.Threshold
	case ">":
		return v > r.Threshold
	case "==":
		return v == r.Threshold
	case "!=":
		return v != r.Threshold
	}
	return true
}

// SLO is a parsed spec: an ordered list of rules.
type SLO struct {
	Rules []Rule
}

// counter aggs bind to counter series; the rest bind to histograms.
var ctrAggs = map[string]bool{"value": true, "delta": true, "rate": true, "ratio": true}
var histAggs = map[string]bool{"p50": true, "p95": true, "p99": true, "mean": true, "min": true, "max": true, "count": true}

// ParseSLO parses a spec string (see Rule for the grammar).
func ParseSLO(spec string) (*SLO, error) {
	s := &SLO{}
	// Comments run to end of line, so strip them before ';' splitting — a
	// ';' inside a comment is commentary, not a rule separator.
	for _, line := range strings.Split(spec, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		for _, part := range strings.Split(line, ";") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			rule, err := parseRule(part)
			if err != nil {
				return nil, err
			}
			s.Rules = append(s.Rules, rule)
		}
	}
	if len(s.Rules) == 0 {
		return nil, fmt.Errorf("slo: empty spec")
	}
	return s, nil
}

// parseRule parses a single "expr op number" rule.
func parseRule(line string) (Rule, error) {
	r := Rule{Raw: line}
	// Find the comparison operator: two-char ops first so "<=" does not
	// parse as "<".
	opIdx, opLen := -1, 0
	for i := 0; i < len(line); i++ {
		c := line[i]
		if c == '<' || c == '>' || c == '=' || c == '!' {
			opIdx = i
			opLen = 1
			if i+1 < len(line) && line[i+1] == '=' {
				opLen = 2
			}
			break
		}
	}
	if opIdx < 0 {
		return r, fmt.Errorf("slo: no comparison operator in %q", line)
	}
	r.Op = line[opIdx : opIdx+opLen]
	switch r.Op {
	case "<=", ">=", "==", "!=", "<", ">":
	default:
		return r, fmt.Errorf("slo: bad operator %q in %q", r.Op, line)
	}
	expr := strings.TrimSpace(line[:opIdx])
	num := strings.TrimSpace(line[opIdx+opLen:])
	th, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return r, fmt.Errorf("slo: bad threshold %q in %q", num, line)
	}
	r.Threshold = th

	if open := strings.IndexByte(expr, '('); open >= 0 {
		if !strings.HasSuffix(expr, ")") {
			return r, fmt.Errorf("slo: unclosed aggregation in %q", line)
		}
		r.Agg = strings.TrimSpace(expr[:open])
		args := strings.Split(expr[open+1:len(expr)-1], ",")
		switch len(args) {
		case 1:
			r.Arg1 = strings.TrimSpace(args[0])
		case 2:
			r.Arg1 = strings.TrimSpace(args[0])
			r.Arg2 = strings.TrimSpace(args[1])
		default:
			return r, fmt.Errorf("slo: aggregation takes 1 or 2 series in %q", line)
		}
	} else {
		r.Agg = "value"
		r.Arg1 = expr
	}
	if r.Arg1 == "" {
		return r, fmt.Errorf("slo: empty series in %q", line)
	}
	switch {
	case r.Agg == "ratio":
		if r.Arg2 == "" {
			return r, fmt.Errorf("slo: ratio takes two series in %q", line)
		}
		if strings.Count(r.Arg1, "*") != strings.Count(r.Arg2, "*") {
			return r, fmt.Errorf("slo: ratio patterns must use the same number of globs in %q", line)
		}
	case ctrAggs[r.Agg], histAggs[r.Agg]:
		if r.Arg2 != "" {
			return r, fmt.Errorf("slo: %s takes one series in %q", r.Agg, line)
		}
	default:
		return r, fmt.Errorf("slo: unknown aggregation %q in %q", r.Agg, line)
	}
	return r, nil
}

// binding is one rule bound to one concrete series (pair, for ratio).
type binding struct {
	rule   *Rule
	series string
	idx    int // index into ctr or hist series table
	idx2   int // ratio denominator index
	// live breach state
	breached bool
	since    uint64
	last     float64
}

// value extracts the rule's aggregation from the window. ok=false means
// the window carries no data for this binding (empty histogram window,
// zero ratio denominator) and the breach state holds.
func (b *binding) value(w *Window) (float64, bool) {
	switch b.rule.Agg {
	case "value":
		return float64(w.CtrEnd[b.idx]), true
	case "delta":
		// Deltas are two's-complement (gauges can shrink): signed.
		return float64(int64(w.CtrDelta[b.idx])), true
	case "rate":
		cycles := w.C1 - w.C0
		if cycles == 0 {
			return 0, false
		}
		return float64(int64(w.CtrDelta[b.idx])) * 1000 / float64(cycles), true
	case "ratio":
		den := w.CtrDelta[b.idx2]
		if den == 0 {
			return 0, false
		}
		return float64(w.CtrDelta[b.idx]) / float64(den), true
	}
	h := &w.Hist[b.idx]
	if h.N == 0 {
		return 0, false
	}
	switch b.rule.Agg {
	case "p50":
		return float64(h.P50), true
	case "p95":
		return float64(h.P95), true
	case "p99":
		return float64(h.P99), true
	case "mean":
		return h.Mean(), true
	case "min":
		return float64(h.Min), true
	case "max":
		return float64(h.Max), true
	case "count":
		return float64(h.N), true
	}
	return 0, false
}

// bind expands every rule's glob patterns over the sealed series tables,
// returning the concrete bindings in deterministic order (rule order ×
// sorted series order) plus the raw text of rules that matched nothing.
func (s *SLO) bind(ctrNames, histNames []string) ([]binding, []string) {
	var bs []binding
	var unbound []string
	for ri := range s.Rules {
		r := &s.Rules[ri]
		n := 0
		if r.Agg == "ratio" {
			for i, name := range ctrNames {
				caps, ok := globMatch(r.Arg1, name)
				if !ok {
					continue
				}
				den := substitute(r.Arg2, caps)
				j := indexOf(ctrNames, den)
				if j < 0 {
					continue
				}
				bs = append(bs, binding{rule: r, series: name + "/" + den, idx: i, idx2: j})
				n++
			}
		} else if ctrAggs[r.Agg] {
			for i, name := range ctrNames {
				if _, ok := globMatch(r.Arg1, name); ok {
					bs = append(bs, binding{rule: r, series: name, idx: i})
					n++
				}
			}
		} else {
			for i, name := range histNames {
				if _, ok := globMatch(r.Arg1, name); ok {
					bs = append(bs, binding{rule: r, series: name, idx: i})
					n++
				}
			}
		}
		if n == 0 {
			unbound = append(unbound, r.Raw)
		}
	}
	return bs, unbound
}

// evalBindings runs one window through every binding, emitting
// breach/recover transition events. Shared verbatim between the live
// recorder and offline check so the two can never disagree.
func evalBindings(bs []binding, w *Window, emit func(Event)) {
	for i := range bs {
		b := &bs[i]
		v, ok := b.value(w)
		if !ok {
			continue
		}
		b.last = v
		breach := !b.rule.holds(v)
		switch {
		case breach && !b.breached:
			b.breached = true
			b.since = w.C1
			emit(Event{Cycle: w.C1, Kind: "slo_breach", Node: b.series, Rule: b.rule.Raw, Value: v})
		case !breach && b.breached:
			b.breached = false
			emit(Event{Cycle: w.C1, Kind: "slo_recover", Node: b.series, Rule: b.rule.Raw, Value: v})
		}
	}
}

// CheckResult is the outcome of replaying a recording against an SLO.
type CheckResult struct {
	Events  []Event  // breach/recover transitions, in window order
	Active  []Alert  // bindings still breached at the end
	Unbound []string // rules whose globs matched no series
}

// Check replays every window of a finished recording through the spec.
func (s *SLO) Check(rc *Recording) CheckResult {
	bs, unbound := s.bind(rc.CtrNames, rc.HistNames)
	res := CheckResult{Unbound: unbound}
	for wi := range rc.Windows {
		evalBindings(bs, &rc.Windows[wi], func(ev Event) {
			res.Events = append(res.Events, ev)
		})
	}
	for i := range bs {
		b := &bs[i]
		if b.breached {
			res.Active = append(res.Active, Alert{Rule: b.rule.Raw, Series: b.series, Since: b.since, Value: b.last})
		}
	}
	return res
}

// ActiveAt replays windows[0..wi] of a recording and returns the alerts
// still active after window wi — csbtop's replay scrub uses it to show
// breach state at an arbitrary point in a recording.
func (s *SLO) ActiveAt(rc *Recording, wi int) []Alert {
	bs, _ := s.bind(rc.CtrNames, rc.HistNames)
	for i := 0; i <= wi && i < len(rc.Windows); i++ {
		evalBindings(bs, &rc.Windows[i], func(Event) {})
	}
	var active []Alert
	for i := range bs {
		b := &bs[i]
		if b.breached {
			active = append(active, Alert{Rule: b.rule.Raw, Series: b.series, Since: b.since, Value: b.last})
		}
	}
	return active
}

// MatchSeries reports whether a series name matches a '*' glob pattern —
// the same matcher SLO rules bind with, exported for csbrec's -m filter.
func MatchSeries(pat, name string) bool {
	_, ok := globMatch(pat, name)
	return ok
}

// globMatch matches name against a pattern where '*' matches any (possibly
// empty) run of characters, returning what each '*' captured.
func globMatch(pat, name string) ([]string, bool) {
	nStars := strings.Count(pat, "*")
	if nStars == 0 {
		if pat == name {
			return nil, true
		}
		return nil, false
	}
	caps := make([]string, 0, nStars)
	return globCapture(pat, name, caps)
}

// globCapture is the greedy-with-backtracking matcher behind globMatch.
func globCapture(pat, name string, caps []string) ([]string, bool) {
	star := strings.IndexByte(pat, '*')
	if star < 0 {
		if pat == name {
			return caps, true
		}
		return nil, false
	}
	if !strings.HasPrefix(name, pat[:star]) {
		return nil, false
	}
	name = name[star:]
	rest := pat[star+1:]
	// Longest capture first, so "cluster/loadgen/*" binds the whole tail
	// when the rest of the pattern allows it.
	for take := len(name); take >= 0; take-- {
		if got, ok := globCapture(rest, name[take:], append(caps, name[:take])); ok {
			return got, true
		}
	}
	return nil, false
}

// substitute rebuilds a pattern with each '*' replaced by the
// corresponding capture.
func substitute(pat string, caps []string) string {
	if len(caps) == 0 {
		return pat
	}
	var b strings.Builder
	ci := 0
	for i := 0; i < len(pat); i++ {
		if pat[i] == '*' && ci < len(caps) {
			b.WriteString(caps[ci])
			ci++
		} else {
			b.WriteByte(pat[i])
		}
	}
	return b.String()
}

// indexOf is a linear search (series tables are small and sorted once).
func indexOf(names []string, name string) int {
	for i, n := range names {
		if n == name {
			return i
		}
	}
	return -1
}
