// Command obsbench measures the runtime cost of the observability layer:
// it runs the example workloads with hooks disabled, with the Perfetto
// exporter plus metrics sampler attached, and with the store-journey
// tracer plus unified counter registry attached, and reports simulated
// cycles and wall-clock time for each as JSON (see
// BENCH_observability.json for a recorded baseline).
//
// Usage:
//
//	obsbench [-reps N] > BENCH_observability.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"csbsim/internal/bench"
	"csbsim/internal/cluster"
	"csbsim/internal/device"
	"csbsim/internal/mem"
	"csbsim/internal/obs"
	"csbsim/internal/obs/journey"
	"csbsim/internal/sim"
)

// result records one workload's cost per instrumentation mode.
type result struct {
	Workload            string  `json:"workload"`
	Cycles              uint64  `json:"cycles"`
	WallOffNs           int64   `json:"wall_ns_hooks_off"`
	WallOnNs            int64   `json:"wall_ns_hooks_on"`
	WallJourneysNs      int64   `json:"wall_ns_journeys_on"`
	OverheadPct         float64 `json:"hooks_on_overhead_pct"`
	JourneysOverheadPct float64 `json:"journeys_overhead_pct"`
	Insts               uint64  `json:"instructions"`
}

type report struct {
	Description string   `json:"description"`
	Reps        int      `json:"reps"`
	Results     []result `json:"results"`
}

// mode selects the instrumentation attached to a workload's machines.
type mode int

const (
	modeOff      mode = iota // no hooks
	modeHooks                // Perfetto exporter + metrics sampler
	modeJourneys             // journey tracer + unified counter registry
)

// workload builds a fresh machine-or-cluster, optionally instruments it,
// runs it to completion, and returns (cycles, retired instructions,
// wall time of the run itself — construction and assembly excluded).
type workload struct {
	name string
	run  func(md mode) (uint64, uint64, time.Duration, error)
}

func main() {
	reps := flag.Int("reps", 5, "repetitions per configuration (best wall time wins)")
	flag.Parse()

	workloads := []workload{
		{"csb_stores", func(md mode) (uint64, uint64, time.Duration, error) {
			return runStores(true, md)
		}},
		{"uncached_stores", func(md mode) (uint64, uint64, time.Duration, error) {
			return runStores(false, md)
		}},
		{"pingpong_csb", func(md mode) (uint64, uint64, time.Duration, error) {
			return runPingPong(md)
		}},
		{"piodma_dma_send", func(md mode) (uint64, uint64, time.Duration, error) {
			return runMessageSend(md)
		}},
	}

	rep := report{
		Description: "observability overhead: example workloads with hooks off vs Perfetto+metrics attached vs journey tracer+counter registry attached",
		Reps:        *reps,
	}
	for _, w := range workloads {
		var r result
		r.Workload = w.name
		for _, md := range []mode{modeOff, modeHooks, modeJourneys} {
			best := time.Duration(1<<63 - 1)
			for i := 0; i < *reps; i++ {
				cycles, insts, elapsed, err := w.run(md)
				if err != nil {
					fmt.Fprintf(os.Stderr, "obsbench: %s: %v\n", w.name, err)
					os.Exit(1)
				}
				if elapsed < best {
					best = elapsed
				}
				r.Cycles, r.Insts = cycles, insts
			}
			switch md {
			case modeOff:
				r.WallOffNs = best.Nanoseconds()
			case modeHooks:
				r.WallOnNs = best.Nanoseconds()
			case modeJourneys:
				r.WallJourneysNs = best.Nanoseconds()
			}
		}
		if r.WallOffNs > 0 {
			r.OverheadPct = 100 * float64(r.WallOnNs-r.WallOffNs) / float64(r.WallOffNs)
			r.JourneysOverheadPct = 100 * float64(r.WallJourneysNs-r.WallOffNs) / float64(r.WallOffNs)
		}
		rep.Results = append(rep.Results, r)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "obsbench:", err)
		os.Exit(1)
	}
}

// attach instruments a machine for the given mode.
func attach(m *sim.Machine, md mode) {
	switch md {
	case modeHooks:
		m.AttachPerfetto(obs.NewPerfetto())
		m.AttachMetrics(obs.NewMetricsWriter(io.Discard, obs.FormatJSONL), 1000)
	case modeJourneys:
		if _, err := m.AttachJourneys(journey.DefaultConfig()); err != nil {
			fmt.Fprintln(os.Stderr, "obsbench:", err)
			os.Exit(1)
		}
	}
}

func runStores(csb bool, md mode) (uint64, uint64, time.Duration, error) {
	m, err := sim.New(sim.DefaultConfig())
	if err != nil {
		return 0, 0, 0, err
	}
	kind := mem.KindUncached
	if csb {
		kind = mem.KindCombining
	}
	m.MapRange(bench.IOBase, 1<<20, kind)
	attach(m, md)
	prog, err := m.LoadSource("bw.s", bench.StoreBandwidthProgram(1<<16, 64, csb))
	if err != nil {
		return 0, 0, 0, err
	}
	m.WarmProgram(prog)
	start := time.Now()
	if err := m.Run(50_000_000); err != nil {
		return 0, 0, 0, err
	}
	if err := m.Drain(1_000_000); err != nil {
		return 0, 0, 0, err
	}
	elapsed := time.Since(start)
	s := m.Stats()
	return s.Cycles, s.CPU.Retired, elapsed, nil
}

func runPingPong(md mode) (uint64, uint64, time.Duration, error) {
	cfg := cluster.DefaultConfig()
	cfg.WireLatency = 60
	c, err := cluster.New(cfg)
	if err != nil {
		return 0, 0, 0, err
	}
	for _, n := range []*cluster.Node{c.A, c.B} {
		n.MapIO(true)
		n.M.MapRange(0x200000, 1<<16, mem.KindCached)
		attach(n.M, md)
	}
	ping, pong := bench.PingPongPrograms(bench.SendCSB, 200)
	pa, err := c.A.M.LoadSource("ping.s", ping)
	if err != nil {
		return 0, 0, 0, err
	}
	pb, err := c.B.M.LoadSource("pong.s", pong)
	if err != nil {
		return 0, 0, 0, err
	}
	c.A.M.WarmProgram(pa)
	c.B.M.WarmProgram(pb)
	start := time.Now()
	if err := c.Run(100_000_000); err != nil {
		return 0, 0, 0, err
	}
	elapsed := time.Since(start)
	sa, sb := c.A.M.Stats(), c.B.M.Stats()
	return c.Cycle(), sa.CPU.Retired + sb.CPU.Retired, elapsed, nil
}

func runMessageSend(md mode) (uint64, uint64, time.Duration, error) {
	m, err := sim.New(sim.DefaultConfig())
	if err != nil {
		return 0, 0, 0, err
	}
	nic := device.NewNIC(device.DefaultConfig(), bench.NICBase)
	if err := m.AddDevice(bench.NICBase, device.RegionSize, "nic", nic, nic); err != nil {
		return 0, 0, 0, err
	}
	m.MapRange(bench.NICBase, device.PacketBufBase, mem.KindUncached)
	m.MapRange(bench.NICBase+device.PacketBufBase, device.PacketBufSize, mem.KindUncached)
	m.MapRange(0x200000, 1<<16, mem.KindCached)
	m.WarmData(0x200000, 4096)
	attach(m, md)
	prog, err := m.LoadSource("send.s", bench.MessageSendProgram(bench.SendDMA, 4096, 64))
	if err != nil {
		return 0, 0, 0, err
	}
	m.WarmProgram(prog)
	start := time.Now()
	if err := m.Run(50_000_000); err != nil {
		return 0, 0, 0, err
	}
	if err := m.Drain(1_000_000); err != nil {
		return 0, 0, 0, err
	}
	elapsed := time.Since(start)
	s := m.Stats()
	return s.Cycles, s.CPU.Retired, elapsed, nil
}
