// Package ctrace is the cluster-aware distributed-tracing layer on top of
// the PR 5 store-journey tracer: where internal/obs/journey follows a
// store to the sender's NIC tx_done, ctrace follows the *packet* across
// the machine boundary — onto the wire, into the far node's RX queue, and
// through the software pickup — and merges the two nodes' clock domains
// into one end-to-end send→receive journey with per-hop histograms.
//
// Each transmitted packet gets a trace ID keyed by its flight (the
// cluster's in-flight delivery record); the ID is a tracing side channel,
// never guest-visible. Six stamps make a span:
//
//	fifo_push, tx_start, wire_depart   — sender's cycle domain
//	wire_arrive, rx_enqueue, rx_drain  — receiver's cycle domain
//
// The first two are grafted from the sender's NIC-descriptor journey (the
// packet carries its journey ID); wire_depart is stamped when the cluster
// pumps the packet into flight, wire_arrive when the wire latency elapses,
// rx_enqueue when the words land in the receiver's RX queue, and rx_drain
// when software pops the span's last word.
//
// Clock-domain alignment: every stamp is taken in its own node's cycle
// domain; SetAlign records a per-node offset to the shared cluster
// timeline (zero in today's lockstep cluster, supplied by the lookahead
// synchronization window once nodes tick on their own goroutines —
// ROADMAP item 3). All histogram deltas and merged dumps use the aligned
// stamps, so the per-hop latencies telescope exactly to the e2e latency
// regardless of skew.
//
// Like the journey tracer, ctrace is built for the zero-alloc tick loop:
// spans live in a preallocated ring, stamps are array writes, and the
// histograms have fixed power-of-two buckets.
package ctrace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"csbsim/internal/obs/counters"
)

// Span is one packet's crossing, stamps in node-local cycle domains
// (0 = hop not reached).
type Span struct {
	TraceID uint64 `json:"trace_id"`
	From    string `json:"from"`
	To      string `json:"to"`
	// JID is the sender-side NIC descriptor journey ID (0 when the sender
	// had no journey tracer attached).
	JID  uint64 `json:"jid,omitempty"`
	Size uint32 `json:"size"`
	Done bool   `json:"done"`

	// Dropped marks a packet the fabric discarded (injected wire fault,
	// link outage, or degraded destination); DropCycle is the routing
	// cycle it was lost at (sender domain). A dropped span never
	// completes and contributes to no latency histogram.
	Dropped   bool   `json:"dropped,omitempty"`
	DropCycle uint64 `json:"drop_cycle,omitempty"`

	FIFOPush   uint64 `json:"fifo_push"`   // sender domain
	TxStart    uint64 `json:"tx_start"`    // sender domain
	WireDepart uint64 `json:"wire_depart"` // sender domain
	WireArrive uint64 `json:"wire_arrive"` // receiver domain
	RxEnqueue  uint64 `json:"rx_enqueue"`  // receiver domain
	RxDrain    uint64 `json:"rx_drain"`    // receiver domain
}

// HopNames lists the six stamps in order; merged dumps and the Perfetto
// export render hops as deltas between consecutive aligned stamps.
var HopNames = [6]string{"fifo_push", "tx_start", "wire_depart", "wire_arrive", "rx_enqueue", "rx_drain"}

// Config parameterizes the tracer.
type Config struct {
	// Window is the count of most-recent spans retained for the merged
	// dump (default 4096). Histograms and counters always cover the whole
	// run regardless of the window.
	Window int
}

// DefaultConfig returns the default retention window.
func DefaultConfig() Config { return Config{Window: 4096} }

// Tracer assigns trace IDs, stamps wire and RX hops, aligns the two clock
// domains, and aggregates per-hop latency histograms. One tracer serves
// the whole cluster; internal/cluster drives it from the pump/deliver
// path and the NICs' RX drain hooks.
type Tracer struct {
	cfg  Config
	ring []Span
	next uint64

	started   uint64
	completed uint64
	dropped   uint64 // spans closed as fabric-dropped (wire faults, outages, degraded routes)
	stale     uint64 // stamps dropped: span already evicted from the ring

	// offsets maps node name → cycles added to that node's stamps to land
	// them on the shared cluster timeline.
	offsets map[string]int64

	hSend  *counters.Histogram // fifo_push → tx_start (FIFO wait)
	hTx    *counters.Histogram // tx_start → wire_depart (serialization + pickup)
	hWire  *counters.Histogram // wire_depart → wire_arrive (flight time)
	hRx    *counters.Histogram // wire_arrive → rx_enqueue (RX staging)
	hDrain *counters.Histogram // rx_enqueue → rx_drain (software pickup)
	hE2E   *counters.Histogram // fifo_push → rx_drain
}

// New creates a tracer. Histograms and run counters are created in reg so
// they render uniformly in reports and telemetry frames; reg may be nil
// for standalone use.
func New(cfg Config, reg *counters.Registry) (*Tracer, error) {
	if cfg.Window == 0 {
		cfg.Window = 4096
	}
	if cfg.Window < 0 {
		return nil, fmt.Errorf("ctrace: negative window")
	}
	if reg == nil {
		reg = counters.NewRegistry()
	}
	t := &Tracer{
		cfg:     cfg,
		ring:    make([]Span, cfg.Window),
		offsets: make(map[string]int64),
	}
	t.hSend = reg.Histogram("ctrace/hop/fifo_wait")
	t.hTx = reg.Histogram("ctrace/hop/tx")
	t.hWire = reg.Histogram("ctrace/hop/wire")
	t.hRx = reg.Histogram("ctrace/hop/rx_enqueue")
	t.hDrain = reg.Histogram("ctrace/hop/drain")
	t.hE2E = reg.Histogram("ctrace/e2e")
	reg.Counter("ctrace/packets_started", func() uint64 { return t.started })
	reg.Counter("ctrace/packets_completed", func() uint64 { return t.completed })
	reg.Counter("ctrace/packets_dropped", func() uint64 { return t.dropped })
	reg.Counter("ctrace/stale_drops", func() uint64 { return t.stale })
	return t, nil
}

// SetAlign records a node's clock offset to the shared cluster timeline.
// Call before running; today's lockstep cluster passes 0 for both nodes.
//
//csb:barrier rewrites the offset table every merged stamp reads
func (t *Tracer) SetAlign(node string, offset int64) { t.offsets[node] = offset }

// E2EHistogram returns the end-to-end (fifo_push → rx_drain, aligned)
// latency histogram.
func (t *Tracer) E2EHistogram() *counters.Histogram { return t.hE2E }

// Started returns the number of spans opened.
func (t *Tracer) Started() uint64 { return t.started }

// Completed returns the number of spans fully drained.
func (t *Tracer) Completed() uint64 { return t.completed }

// slot returns the ring cell a trace ID lives in.
//
//csb:hotpath
func (t *Tracer) slot(id uint64) *Span {
	return &t.ring[(id-1)%uint64(len(t.ring))]
}

// PacketDeparted opens a span as the cluster pumps a transmitted packet
// into flight, grafting the sender-side NIC stamps (CPU cycles, sender
// domain), and returns the trace ID the flight carries.
//
//csb:hotpath
//csb:barrier mutates the shared span ring; called from routing at barriers
func (t *Tracer) PacketDeparted(from, to string, size uint32, jid, fifoPush, txStart, depart uint64) uint64 {
	t.next++
	id := t.next
	t.started++
	s := t.slot(id)
	*s = Span{
		TraceID: id, From: from, To: to, JID: jid, Size: size,
		FIFOPush: fifoPush, TxStart: txStart, WireDepart: depart,
	}
	return id
}

// stamp fetches a live span, counting and dropping stale IDs.
//
//csb:hotpath
func (t *Tracer) stamp(id uint64) *Span {
	if id == 0 {
		return nil
	}
	s := t.slot(id)
	if s.TraceID != id {
		t.stale++
		return nil
	}
	return s
}

// PacketDropped closes a span as lost to the fabric (injected wire
// fault, link outage window, or a degraded destination): the span is
// marked dropped at the given routing cycle (sender domain) and will
// never complete. Partial dumps then show the loss explicitly instead of
// an eternally open span.
//
//csb:hotpath
//csb:barrier mutates the shared span ring; called from routing at barriers
func (t *Tracer) PacketDropped(id, cycle uint64) {
	if s := t.stamp(id); s != nil {
		s.Dropped = true
		s.DropCycle = cycle
		t.dropped++
	}
}

// Dropped returns the number of spans closed as fabric-dropped.
func (t *Tracer) Dropped() uint64 { return t.dropped }

// PacketArrived stamps the wire latency elapsing, in the receiver's
// cycle domain.
//
//csb:hotpath
//csb:barrier mutates the shared span ring; replayed from node logs at barriers
func (t *Tracer) PacketArrived(id, recvCycle uint64) {
	if s := t.stamp(id); s != nil {
		s.WireArrive = recvCycle
	}
}

// PacketEnqueued stamps the packet's words landing in the receiver's RX
// queue.
//
//csb:hotpath
//csb:barrier mutates the shared span ring; replayed from node logs at barriers
func (t *Tracer) PacketEnqueued(id, recvCycle uint64) {
	if s := t.stamp(id); s != nil {
		s.RxEnqueue = recvCycle
	}
}

// PacketDrained completes a span: software popped the last word. Per-hop
// and e2e latencies (aligned) land in the histograms.
//
//csb:hotpath
//csb:barrier updates shared histograms and the span ring at barriers
func (t *Tracer) PacketDrained(id, recvCycle uint64) {
	s := t.stamp(id)
	if s == nil {
		return
	}
	s.RxDrain = recvCycle
	s.Done = true
	t.completed++
	fromOff, toOff := t.offsets[s.From], t.offsets[s.To]
	fifo := uint64(int64(s.FIFOPush) + fromOff)
	txs := uint64(int64(s.TxStart) + fromOff)
	dep := uint64(int64(s.WireDepart) + fromOff)
	arr := uint64(int64(s.WireArrive) + toOff)
	enq := uint64(int64(s.RxEnqueue) + toOff)
	drn := uint64(int64(s.RxDrain) + toOff)
	t.hSend.Record(txs - fifo)
	t.hTx.Record(dep - txs)
	t.hWire.Record(arr - dep)
	t.hRx.Record(enq - arr)
	t.hDrain.Record(drn - enq)
	t.hE2E.Record(drn - fifo)
}

// MergedSpan is one span on the shared cluster timeline: every stamp has
// its node's clock offset applied, and E2E is rx_drain − fifo_push. The
// per-hop deltas of consecutive stamps telescope exactly to E2E.
type MergedSpan struct {
	Span
	E2E uint64 `json:"e2e"`
}

// aligned returns the span with both nodes' offsets applied.
func (t *Tracer) aligned(s Span) MergedSpan {
	fromOff, toOff := t.offsets[s.From], t.offsets[s.To]
	s.FIFOPush = uint64(int64(s.FIFOPush) + fromOff)
	s.TxStart = uint64(int64(s.TxStart) + fromOff)
	s.WireDepart = uint64(int64(s.WireDepart) + fromOff)
	if s.DropCycle != 0 {
		s.DropCycle = uint64(int64(s.DropCycle) + fromOff)
	}
	if s.WireArrive != 0 {
		s.WireArrive = uint64(int64(s.WireArrive) + toOff)
	}
	if s.RxEnqueue != 0 {
		s.RxEnqueue = uint64(int64(s.RxEnqueue) + toOff)
	}
	if s.RxDrain != 0 {
		s.RxDrain = uint64(int64(s.RxDrain) + toOff)
	}
	m := MergedSpan{Span: s}
	if s.Done {
		m.E2E = s.RxDrain - s.FIFOPush
	}
	return m
}

// Retained returns every span still in the ring (the most recent Window),
// aligned, ordered by trace ID (which is also departure order — the
// cluster pumps deterministically).
func (t *Tracer) Retained() []MergedSpan {
	var out []MergedSpan
	last := t.next
	first := uint64(1)
	if last > uint64(len(t.ring)) {
		first = last - uint64(len(t.ring)) + 1
	}
	for id := first; id <= last; id++ {
		s := t.ring[(id-1)%uint64(len(t.ring))]
		if s.TraceID == id {
			out = append(out, t.aligned(s))
		}
	}
	return out
}

// Dump is the on-disk merged trace: run totals, per-node clock offsets,
// the per-hop and e2e histograms, and the retained spans on the shared
// timeline. cmd/csbcluster writes it; map keys marshal sorted, so equal
// tracer states produce byte-identical dumps.
type Dump struct {
	ClockOffsets map[string]int64            `json:"clock_offsets"`
	Started      uint64                      `json:"started"`
	Completed    uint64                      `json:"completed"`
	Dropped      uint64                      `json:"dropped"`
	StaleDrops   uint64                      `json:"stale_drops"`
	Histograms   map[string]counters.Summary `json:"histograms"`
	Spans        []MergedSpan                `json:"spans"`
}

// BuildDump assembles the dump structure.
func (t *Tracer) BuildDump() *Dump {
	d := &Dump{
		ClockOffsets: make(map[string]int64, len(t.offsets)),
		Started:      t.started,
		Completed:    t.completed,
		Dropped:      t.dropped,
		StaleDrops:   t.stale,
		Histograms:   make(map[string]counters.Summary, 6),
		Spans:        t.Retained(),
	}
	for n, off := range t.offsets { //csb:orderless — map copy
		d.ClockOffsets[n] = off
	}
	for _, h := range []*counters.Histogram{t.hSend, t.hTx, t.hWire, t.hRx, t.hDrain, t.hE2E} {
		d.Histograms[h.Name()] = h.Summary()
	}
	return d
}

// WriteTo writes the merged dump as indented JSON.
func (t *Tracer) WriteTo(w io.Writer) (int64, error) {
	data, err := json.MarshalIndent(t.BuildDump(), "", "  ")
	if err != nil {
		return 0, err
	}
	data = append(data, '\n')
	n, err := w.Write(data)
	return int64(n), err
}

// ---- Perfetto export ----

// traceEvent is the Chrome trace-event subset the two-timeline export
// emits (mirrors internal/obs but stays self-contained: the cluster view
// has its own process-per-node layout).
type traceEvent struct {
	Name   string         `json:"name"`
	Cat    string         `json:"cat,omitempty"`
	Ph     string         `json:"ph"`
	Ts     uint64         `json:"ts"`
	Dur    uint64         `json:"dur,omitempty"`
	PID    int            `json:"pid"`
	TID    int            `json:"tid"`
	FlowID int            `json:"id,omitempty"`
	BP     string         `json:"bp,omitempty"`
	Args   map[string]any `json:"args,omitempty"`
}

const (
	tidTx = 1
	tidRx = 2
)

// WritePerfetto renders the retained spans as a two-timeline Chrome
// trace: one process per node (tx and rx threads), a slice per packet on
// each side of the wire, and a flow arrow crossing from the sender's
// wire_depart to the receiver's wire_arrive. Load at ui.perfetto.dev.
func (t *Tracer) WritePerfetto(w io.Writer) (int64, error) {
	spans := t.Retained()

	// Deterministic process numbering: sorted node names.
	nodeSet := make(map[string]bool)
	for _, s := range spans {
		nodeSet[s.From] = true
		nodeSet[s.To] = true
	}
	names := make([]string, 0, len(nodeSet))
	for n := range nodeSet { //csb:orderless — collects keys, sorted below
		names = append(names, n)
	}
	sort.Strings(names)
	pid := make(map[string]int, len(names))
	events := make([]traceEvent, 0, 3*len(names)+5*len(spans))
	for i, n := range names {
		pid[n] = 1 + i
		events = append(events,
			traceEvent{Name: "process_name", Ph: "M", PID: 1 + i,
				Args: map[string]any{"name": "node " + n}},
			traceEvent{Name: "thread_name", Ph: "M", PID: 1 + i, TID: tidTx,
				Args: map[string]any{"name": "nic tx"}},
			traceEvent{Name: "thread_name", Ph: "M", PID: 1 + i, TID: tidRx,
				Args: map[string]any{"name": "nic rx"}})
	}

	for _, s := range spans {
		txEnd := s.WireDepart
		sendSlice := traceEvent{
			Name: fmt.Sprintf("pkt %d → %s", s.TraceID, s.To),
			Ph:   "X", Ts: s.FIFOPush, Dur: max1(txEnd - s.FIFOPush),
			PID: pid[s.From], TID: tidTx,
			Args: map[string]any{
				"trace_id": s.TraceID, "size": s.Size,
				"fifo_push": s.FIFOPush, "tx_start": s.TxStart, "wire_depart": s.WireDepart,
			},
		}
		if s.Dropped {
			sendSlice.Args["dropped_at"] = s.DropCycle
		}
		events = append(events, sendSlice)
		if s.WireArrive == 0 {
			continue // still on the wire: sender side only
		}
		rxEnd := s.WireArrive
		for _, c := range []uint64{s.RxEnqueue, s.RxDrain} {
			if c > rxEnd {
				rxEnd = c
			}
		}
		rxArgs := map[string]any{
			"trace_id": s.TraceID, "size": s.Size, "wire_arrive": s.WireArrive,
		}
		if s.RxEnqueue != 0 {
			rxArgs["rx_enqueue"] = s.RxEnqueue
		}
		if s.RxDrain != 0 {
			rxArgs["rx_drain"] = s.RxDrain
		}
		if s.Done {
			rxArgs["e2e"] = s.E2E
		}
		events = append(events, traceEvent{
			Name: fmt.Sprintf("pkt %d ← %s", s.TraceID, s.From),
			Ph:   "X", Ts: s.WireArrive, Dur: max1(rxEnd - s.WireArrive),
			PID: pid[s.To], TID: tidRx, Args: rxArgs,
		})
		// The wire crossing: a flow arrow from the sender's departure to
		// the receiver's arrival, binding the two timelines.
		flow := int(s.TraceID)
		events = append(events,
			traceEvent{Name: "wire", Cat: "wire", Ph: "s", Ts: s.WireDepart,
				PID: pid[s.From], TID: tidTx, FlowID: flow},
			traceEvent{Name: "wire", Cat: "wire", Ph: "f", BP: "e", Ts: s.WireArrive,
				PID: pid[s.To], TID: tidRx, FlowID: flow})
	}

	doc := struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayTimeUnit: "ns"}
	data, err := json.Marshal(doc)
	if err != nil {
		return 0, err
	}
	n, err := w.Write(data)
	return int64(n), err
}

func max1(v uint64) uint64 {
	if v == 0 {
		return 1
	}
	return v
}
