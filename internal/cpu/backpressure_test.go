package cpu

import (
	"strings"
	"testing"

	"csbsim/internal/bus"
	"csbsim/internal/cache"
	"csbsim/internal/core"
	"csbsim/internal/mem"
	"csbsim/internal/uncbuf"
)

// newTinyRig builds a rig with deliberately small structures so the
// backpressure paths (ROB full, LSQ full, branch-snapshot limit, fetch
// queue) are exercised constantly. Programs must still run correctly.
func newTinyRig(t *testing.T) *rig {
	t.Helper()
	ram := mem.NewMemory()
	rt := mem.NewRouter(ram)
	b, err := bus.New(bus.DefaultConfig(), rt)
	if err != nil {
		t.Fatal(err)
	}
	h, err := cache.NewHierarchy(cache.DefaultHierConfig())
	if err != nil {
		t.Fatal(err)
	}
	u, err := uncbuf.New(uncbuf.Config{Entries: 2, BlockSize: 0, MaxBurst: 64})
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.ROBSize = 8
	cfg.FetchQueue = 4
	cfg.LSQSize = 3
	cfg.MaxBranches = 2
	cfg.MemPorts = 1
	cfg.AGUs = 1
	c, err := New(cfg, h, u, s, ram)
	if err != nil {
		t.Fatal(err)
	}
	pt := mem.NewPageTable()
	c.SetPageTable(pt)
	return &rig{c: c, h: h, u: u, s: s, ram: ram, b: b, pt: pt, ratio: 6}
}

func TestTinyStructuresStillCorrect(t *testing.T) {
	r := newTinyRig(t)
	r.load(t, `
	clr %g1
	mov 50, %g2
	set 0x20000, %o1
loop:
	add %g1, %g2, %g1
	stx %g1, [%o1]
	ldx [%o1], %g3
	andcc %g2, 1, %g0
	bnz odd
	add %g4, 1, %g4
odd:
	subcc %g2, 1, %g2
	bnz loop
	halt
`)
	r.run(t, 1_000_000)
	st := r.c.State()
	if st.R[1] != 1275 {
		t.Errorf("sum = %d, want 1275", st.R[1])
	}
	if st.R[3] != 1275 {
		t.Errorf("loaded sum = %d", st.R[3])
	}
	if st.R[4] != 25 {
		t.Errorf("evens = %d, want 25", st.R[4])
	}
	if r.c.branchCount != 0 || r.c.memCount != 0 {
		t.Errorf("leaked counters: %d branches, %d mem", r.c.branchCount, r.c.memCount)
	}
}

func TestROBNeverExceedsCapacity(t *testing.T) {
	r := newTinyRig(t)
	var src strings.Builder
	for i := 0; i < 100; i++ {
		src.WriteString("\tadd %g1, 1, %g1\n")
	}
	src.WriteString("\thalt\n")
	r.load(t, src.String())
	for i := 0; i < 1_000_000 && !r.c.Halted(); i++ {
		if len(r.c.rob) > r.c.cfg.ROBSize {
			t.Fatalf("ROB holds %d entries, cap %d", len(r.c.rob), r.c.cfg.ROBSize)
		}
		if len(r.c.fetchQ) > r.c.cfg.FetchQueue {
			t.Fatalf("fetch queue %d, cap %d", len(r.c.fetchQ), r.c.cfg.FetchQueue)
		}
		if r.c.memCount > r.c.cfg.LSQSize {
			t.Fatalf("LSQ %d, cap %d", r.c.memCount, r.c.cfg.LSQSize)
		}
		if r.c.branchCount > r.c.cfg.MaxBranches {
			t.Fatalf("branches in flight %d, cap %d", r.c.branchCount, r.c.cfg.MaxBranches)
		}
		r.tick()
	}
	if !r.c.Halted() {
		t.Fatal("did not halt")
	}
	if r.c.State().R[1] != 100 {
		t.Errorf("result = %d", r.c.State().R[1])
	}
}

func TestUncachedBufferBackpressureStallsRetire(t *testing.T) {
	r := newTinyRig(t) // 2-entry uncached buffer
	r.pt.MapRange(0x4000_0000, 0x4000_0000, mem.PageSize, mem.KindUncached, true)
	var src strings.Builder
	src.WriteString("\tset 0x40000000, %o1\n")
	for i := 0; i < 16; i++ {
		if i == 0 {
			src.WriteString("\tstx %g1, [%o1]\n")
		} else {
			src.WriteString("\tstx %g1, [%o1+" + itoa(i*8) + "]\n")
		}
	}
	src.WriteString("\tmembar\n\thalt\n")
	r.load(t, src.String())
	r.run(t, 1_000_000)
	if got := r.c.Stats().UncachedStores; got != 16 {
		t.Errorf("uncached stores = %d, want 16 (none lost to backpressure)", got)
	}
	if got := r.b.Stats().Writes; got != 16 {
		t.Errorf("bus writes = %d, want 16", got)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
