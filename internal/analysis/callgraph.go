package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the shared call-graph layer consumed by the phase- and
// clock-domain analyzers (phasesafe, clockdomain). It builds a static,
// package-local call graph: one node per declared function or method and
// one per function literal, with edges for call sites whose callee
// resolves statically to a function declared in the same package. Calls
// through function values, interface methods or imported packages carry
// no edge — analyzers that need cross-package contracts express them as
// annotations on the callee's own package (each package is analyzed with
// its own graph) or as type-based rules.

// A FuncNode is one function-like body: a declared function/method
// (Decl, Obj set) or a function literal (Lit set, Parent the lexically
// enclosing node).
type FuncNode struct {
	Decl   *ast.FuncDecl
	Lit    *ast.FuncLit
	Obj    *types.Func
	Parent *FuncNode

	// Calls lists this body's statically resolved package-local call
	// sites, in source order. Calls inside nested literals belong to the
	// literal's node, not to this one.
	Calls []CallEdge
	// Lits lists the function literals nested directly inside this body.
	Lits []*FuncNode
}

// A CallEdge is one statically resolved package-local call site.
type CallEdge struct {
	Site   *ast.CallExpr
	Callee *FuncNode
}

// Name renders the node for diagnostics: the declared name, or
// "function literal" (qualified by the nearest named ancestor).
func (n *FuncNode) Name() string {
	if n.Decl != nil {
		return n.Decl.Name.Name
	}
	for p := n.Parent; p != nil; p = p.Parent {
		if p.Decl != nil {
			return "function literal in " + p.Decl.Name.Name
		}
	}
	return "function literal"
}

// Pos returns the node's source position for diagnostics.
func (n *FuncNode) Pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	return n.Lit.Pos()
}

// Body returns the node's statement block (nil for body-less
// declarations).
func (n *FuncNode) Body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	return n.Lit.Body
}

// A CallGraph is the package-local static call graph.
type CallGraph struct {
	// Nodes holds every declared function and literal in source order.
	Nodes []*FuncNode
	// ByObj maps a declared function's type object to its node.
	ByObj map[*types.Func]*FuncNode
}

// BuildCallGraph constructs the call graph for the pass's package.
func BuildCallGraph(pass *Pass) *CallGraph {
	cg := &CallGraph{ByObj: make(map[*types.Func]*FuncNode)}
	// First pass: one node per declaration, so forward references resolve.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			node := &FuncNode{Decl: fn}
			if obj, ok := pass.Info.Defs[fn.Name].(*types.Func); ok {
				node.Obj = obj
				cg.ByObj[obj] = node
			}
			cg.Nodes = append(cg.Nodes, node)
		}
	}
	// Second pass: walk each body, maintaining the enclosing-node stack so
	// calls and literals attach to the innermost function-like body.
	for _, root := range append([]*FuncNode(nil), cg.Nodes...) {
		if root.Decl.Body == nil {
			continue
		}
		cg.walk(pass, root, root.Decl.Body)
	}
	return cg
}

// walk attaches calls and nested literals under cur, recursing into each
// literal with a fresh node.
func (cg *CallGraph) walk(pass *Pass, cur *FuncNode, body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			lit := &FuncNode{Lit: n, Parent: cur}
			cur.Lits = append(cur.Lits, lit)
			cg.Nodes = append(cg.Nodes, lit)
			cg.walk(pass, lit, n.Body)
			return false
		case *ast.CallExpr:
			if callee := cg.resolve(pass, n); callee != nil {
				cur.Calls = append(cur.Calls, CallEdge{Site: n, Callee: callee})
			}
		}
		return true
	})
}

// resolve returns the package-local node a call statically targets, or
// nil (dynamic call, builtin, conversion, or imported function).
func (cg *CallGraph) resolve(pass *Pass, call *ast.CallExpr) *FuncNode {
	var id *ast.Ident
	switch f := stripParens(call.Fun).(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	fn, ok := pass.Info.Uses[id].(*types.Func)
	if !ok {
		return nil
	}
	return cg.ByObj[fn]
}

func stripParens(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
