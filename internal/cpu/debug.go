package cpu

import (
	"fmt"
	"strings"
)

// Retired returns the committed-instruction count without copying the
// whole Stats struct — cheap enough for the machine watchdog to poll.
func (c *CPU) Retired() uint64 { return c.stats.Retired }

// PipelineDump renders the in-flight pipeline state for diagnostics (the
// watchdog's livelock report): ROB and fetch-queue depth, and the ROB
// head's execution state — the instruction whose stall is wedging the
// machine. Not a hot path; called once when a run is aborted.
func (c *CPU) PipelineDump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fetch pc %#x (blocked=%v), fetchq %d/%d, rob %d/%d\n",
		c.pc, c.fetchBlocked, len(c.fetchQ), c.cfg.FetchQueue, len(c.rob), c.cfg.ROBSize)
	if len(c.rob) == 0 {
		b.WriteString("rob empty\n")
		return b.String()
	}
	// The head plus a few entries behind it: the head is what everything
	// else is waiting on.
	for i := 0; i < len(c.rob) && i < 4; i++ {
		u := c.rob[i]
		fmt.Fprintf(&b, "rob[%d] seq %d pc %#x  %s\n        %s\n",
			i, u.seq, u.pc, u.inst.String(), uopState(u))
	}
	return b.String()
}

// uopState summarizes a uop's progress flags.
func uopState(u *uop) string {
	var f []string
	add := func(cond bool, s string) {
		if cond {
			f = append(f, s)
		}
	}
	add(u.issued, "issued")
	add(u.executing, fmt.Sprintf("executing(%d left)", u.remaining))
	add(u.done, "done")
	add(u.dead, "dead")
	add(u.faulted, "faulted")
	if u.isMem {
		add(true, fmt.Sprintf("mem(va=%#x kind=%v)", u.va, u.kind))
		add(u.translating > 0, fmt.Sprintf("translating(%d left)", u.translating))
		add(u.addrReady, "addr-ready")
		add(u.memIssued, "mem-issued")
		add(u.memWait, "waiting-for-fill")
	}
	add(u.retPhase != 0, fmt.Sprintf("retire-phase %d", u.retPhase))
	if len(f) == 0 {
		return "waiting for operands/issue"
	}
	return strings.Join(f, ", ")
}
