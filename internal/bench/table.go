package bench

import (
	"fmt"
	"strings"
)

// Series is one line/bar-group of a figure.
type Series struct {
	Name string
	Y    []float64
}

// Result is a regenerated figure: a matrix of values with labels, printed
// as a text table by Format.
type Result struct {
	ID     string // e.g. "3a"
	Title  string
	XLabel string
	YLabel string
	X      []string
	Series []Series
	Notes  string
}

// Format renders the result as an aligned text table.
func Format(r Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %s: %s\n", r.ID, r.Title)
	fmt.Fprintf(&b, "  y = %s, x = %s\n", r.YLabel, r.XLabel)
	if r.Notes != "" {
		fmt.Fprintf(&b, "  %s\n", r.Notes)
	}

	colw := 7
	for _, x := range r.X {
		colw = max(colw, len(x))
	}
	for _, s := range r.Series {
		for _, v := range s.Y {
			colw = max(colw, len(fmt.Sprintf("%.2f", v)))
		}
	}
	namew := 0
	for _, s := range r.Series {
		namew = max(namew, len(s.Name))
	}

	fmt.Fprintf(&b, "  %-*s", namew, "")
	for _, x := range r.X {
		fmt.Fprintf(&b, " %*s", colw, x)
	}
	b.WriteByte('\n')
	for _, s := range r.Series {
		fmt.Fprintf(&b, "  %-*s", namew, s.Name)
		for _, v := range s.Y {
			fmt.Fprintf(&b, " %*.2f", colw, v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatBars renders the result as grouped horizontal ASCII bars — the
// closest terminal rendering of the paper's bar-group figures. Bars are
// scaled to the figure's maximum value.
func FormatBars(r Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %s: %s\n", r.ID, r.Title)
	fmt.Fprintf(&b, "  y = %s, grouped by %s\n", r.YLabel, r.XLabel)
	if r.Notes != "" {
		fmt.Fprintf(&b, "  %s\n", r.Notes)
	}
	maxVal := 0.0
	namew := 0
	for _, s := range r.Series {
		namew = max(namew, len(s.Name))
		for _, v := range s.Y {
			maxVal = max(maxVal, v)
		}
	}
	if maxVal == 0 {
		maxVal = 1
	}
	const barWidth = 46
	for xi, x := range r.X {
		fmt.Fprintf(&b, "%s %s\n", x, r.XLabel)
		for _, s := range r.Series {
			if xi >= len(s.Y) {
				continue
			}
			v := s.Y[xi]
			n := int(v / maxVal * barWidth)
			if n < 1 && v > 0 {
				n = 1
			}
			fmt.Fprintf(&b, "  %-*s |%s %.2f\n", namew, s.Name, strings.Repeat("#", n), v)
		}
	}
	return b.String()
}

// FormatCSV renders the result as comma-separated values with a header.
func FormatCSV(r Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "figure,%s\n", r.ID)
	b.WriteString("scheme")
	for _, x := range r.X {
		b.WriteString("," + x)
	}
	b.WriteByte('\n')
	for _, s := range r.Series {
		b.WriteString(s.Name)
		for _, v := range s.Y {
			fmt.Fprintf(&b, ",%.4f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
