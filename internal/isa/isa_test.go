package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Inst{
		{Op: OpADD, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpADDI, Rd: 1, Rs1: 2, Imm: -8192},
		{Op: OpADDI, Rd: 1, Rs1: 2, Imm: 8191},
		{Op: OpSUBCCI, Rd: 0, Rs1: 9, Imm: 42},
		{Op: OpLUI, Rd: 31, Imm: 1<<19 - 1},
		{Op: OpBR, Cond: CondNE, Imm: -4},
		{Op: OpBR, Cond: CondA, Imm: 1<<19 - 1},
		{Op: OpJAL, Rd: 15, Imm: -100},
		{Op: OpJALR, Rd: 0, Rs1: 15, Imm: 0},
		{Op: OpLDX, Rd: 5, Rs1: 9, Imm: 40},
		{Op: OpSTX, Rd: 5, Rs1: 9, Imm: -8},
		{Op: OpSTF, Rd: 12, Rs1: 9, Imm: 16},
		{Op: OpSWAP, Rd: 20, Rs1: 9, Imm: 0},
		{Op: OpMEMBAR},
		{Op: OpFADD, Rd: 2, Rs1: 4, Rs2: 6},
		{Op: OpRDPR, Rd: 3, Imm: int64(PRPID)},
		{Op: OpWRPR, Rs1: 3, Imm: int64(PRIVEC)},
		{Op: OpTRAP, Imm: 7},
		{Op: OpHALT},
		{Op: OpNOP},
	}
	for _, in := range cases {
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%v): %v", in, err)
		}
		got := Decode(w)
		if got != in {
			t.Errorf("round trip %v: got %v (word %08x)", in, got, w)
		}
	}
}

func TestEncodeRejectsOutOfRange(t *testing.T) {
	bad := []Inst{
		{Op: OpADDI, Rd: 1, Rs1: 2, Imm: 8192},
		{Op: OpADDI, Rd: 1, Rs1: 2, Imm: -8193},
		{Op: OpLUI, Rd: 1, Imm: 1 << 19},
		{Op: OpLUI, Rd: 1, Imm: -1},
		{Op: OpBR, Cond: CondA, Imm: 1 << 19},
		{Op: OpInvalid},
		{Op: numOps},
		{Op: OpADD, Rd: 32},
	}
	for _, in := range bad {
		if _, err := Encode(in); err == nil {
			t.Errorf("Encode(%v): expected error", in)
		}
	}
}

// TestEncodeDecodeQuick exercises the round trip over randomly generated
// valid instructions.
func TestEncodeDecodeQuick(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	gen := func() Inst {
		for {
			in := Inst{
				Op:  Op(r.Intn(int(numOps)-1) + 1),
				Rd:  Reg(r.Intn(32)),
				Rs1: Reg(r.Intn(32)),
			}
			switch in.Op {
			case OpLUI:
				in.Rs1 = 0
				in.Imm = int64(r.Intn(luiMax + 1))
			case OpBR:
				in.Cond = Cond(r.Intn(int(NumConds)))
				in.Rd, in.Rs1 = 0, 0
				in.Imm = int64(r.Intn(brMax-brMin+1) + brMin)
			case OpJAL:
				in.Rs1 = 0
				in.Imm = int64(r.Intn(jalMax-jalMin+1) + jalMin)
			default:
				if in.Op.HasImm() {
					in.Imm = int64(r.Intn(immMax-immMin+1) + immMin)
				} else {
					in.Rs2 = Reg(r.Intn(32))
				}
			}
			return in
		}
	}
	for i := 0; i < 5000; i++ {
		in := gen()
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%v): %v", in, err)
		}
		if got := Decode(w); got != in {
			t.Fatalf("round trip %v -> %08x -> %v", in, w, got)
		}
	}
}

func TestDecodeUnknownOpcode(t *testing.T) {
	if got := Decode(0xff000000); got.Op != OpInvalid {
		t.Errorf("Decode(ff000000).Op = %v, want OpInvalid", got.Op)
	}
	if got := Decode(0); got.Op != OpInvalid {
		t.Errorf("Decode(0).Op = %v, want OpInvalid", got.Op)
	}
}

func TestCondEval(t *testing.T) {
	tests := []struct {
		c    Cond
		f    Flags
		want bool
	}{
		{CondA, Flags{}, true},
		{CondN, Flags{N: true, Z: true, V: true, C: true}, false},
		{CondE, Flags{Z: true}, true},
		{CondE, Flags{}, false},
		{CondNE, Flags{}, true},
		{CondL, Flags{N: true}, true},
		{CondL, Flags{N: true, V: true}, false},
		{CondGE, Flags{N: true, V: true}, true},
		{CondG, Flags{}, true},
		{CondG, Flags{Z: true}, false},
		{CondLE, Flags{Z: true}, true},
		{CondCS, Flags{C: true}, true},
		{CondCC, Flags{C: true}, false},
		{CondGU, Flags{}, true},
		{CondGU, Flags{C: true}, false},
		{CondLEU, Flags{C: true}, true},
		{CondNEG, Flags{N: true}, true},
		{CondPOS, Flags{N: true}, false},
		{CondVS, Flags{V: true}, true},
		{CondVC, Flags{V: true}, false},
	}
	for _, tt := range tests {
		if got := tt.c.Eval(tt.f); got != tt.want {
			t.Errorf("%s.Eval(%+v) = %v, want %v", tt.c.Name(), tt.f, got, tt.want)
		}
	}
}

// TestCondPairs verifies that each condition and its logical complement
// always disagree, for all flag combinations.
func TestCondPairs(t *testing.T) {
	pairs := [][2]Cond{
		{CondN, CondA}, {CondE, CondNE}, {CondLE, CondG}, {CondL, CondGE},
		{CondLEU, CondGU}, {CondCS, CondCC}, {CondNEG, CondPOS}, {CondVS, CondVC},
	}
	for i := 0; i < 16; i++ {
		f := Flags{N: i&1 != 0, Z: i&2 != 0, V: i&4 != 0, C: i&8 != 0}
		for _, p := range pairs {
			if p[0].Eval(f) == p[1].Eval(f) {
				t.Errorf("conditions %s and %s agree under %+v", p[0].Name(), p[1].Name(), f)
			}
		}
	}
}

func TestFlagsFromSub(t *testing.T) {
	tests := []struct {
		a, b uint64
		cond Cond
		want bool
	}{
		{5, 5, CondE, true},
		{5, 6, CondL, true},
		{6, 5, CondG, true},
		{0, 1, CondCS, true},              // unsigned 0 < 1
		{^uint64(0), 1, CondGU, true},     // unsigned max > 1
		{1, ^uint64(0), CondCS, true},     // unsigned 1 < max
		{uint64(1 << 63), 1, CondL, true}, // signed min-ish < 1
	}
	for _, tt := range tests {
		f := FlagsFromSub(tt.a, tt.b, tt.a-tt.b)
		if got := tt.cond.Eval(f); got != tt.want {
			t.Errorf("sub(%d,%d) %s = %v, want %v (flags %+v)", tt.a, tt.b, tt.cond.Name(), got, tt.want, f)
		}
	}
}

func TestFlagsFromAddOverflow(t *testing.T) {
	a := uint64(1<<63 - 1) // max int64
	f := FlagsFromAdd(a, 1, a+1)
	if !f.V {
		t.Error("signed overflow not detected")
	}
	f = FlagsFromAdd(^uint64(0), 1, 0)
	if !f.C || !f.Z {
		t.Errorf("carry/zero not detected: %+v", f)
	}
}

func TestParseReg(t *testing.T) {
	tests := []struct {
		in   string
		want Reg
		ok   bool
	}{
		{"%g0", 0, true}, {"%g7", 7, true},
		{"%o0", 8, true}, {"%o7", 15, true},
		{"%l0", 16, true}, {"%l7", 23, true},
		{"%i0", 24, true}, {"%i7", 31, true},
		{"%r17", 17, true}, {"r31", 31, true},
		{"%sp", RegSP, true}, {"%fp", RegFP, true},
		{"%g8", 0, false}, {"%r32", 0, false}, {"%x1", 0, false}, {"", 0, false},
	}
	for _, tt := range tests {
		got, err := ParseReg(tt.in)
		if (err == nil) != tt.ok {
			t.Errorf("ParseReg(%q) err = %v, ok = %v", tt.in, err, tt.ok)
			continue
		}
		if tt.ok && got != tt.want {
			t.Errorf("ParseReg(%q) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestRegNameRoundTrip(t *testing.T) {
	for r := Reg(0); r < NumRegs; r++ {
		got, err := ParseReg(RegName(r))
		if err != nil || got != r {
			t.Errorf("ParseReg(RegName(%d)) = %d, %v", r, got, err)
		}
	}
}

func TestParseFReg(t *testing.T) {
	for r := FReg(0); r < NumFRegs; r++ {
		got, err := ParseFReg(FRegName(r))
		if err != nil || got != r {
			t.Errorf("ParseFReg(FRegName(%d)) = %d, %v", r, got, err)
		}
	}
	for _, bad := range []string{"%f32", "%f-1", "%g1", "f", ""} {
		if _, err := ParseFReg(bad); err == nil {
			t.Errorf("ParseFReg(%q): expected error", bad)
		}
	}
}

func TestOpPredicates(t *testing.T) {
	if !OpSTX.IsStore() || OpSTX.IsLoad() {
		t.Error("STX predicates wrong")
	}
	if !OpLDX.IsLoad() || OpLDX.IsStore() {
		t.Error("LDX predicates wrong")
	}
	if !OpSWAP.IsLoad() || !OpSWAP.IsStore() {
		t.Error("SWAP must be both load and store")
	}
	if OpSTF.MemBytes() != 8 || OpLDB.MemBytes() != 1 || OpLDH.MemBytes() != 2 || OpSTW.MemBytes() != 4 {
		t.Error("MemBytes wrong")
	}
	if OpADD.MemBytes() != 0 {
		t.Error("ADD has no memory width")
	}
}

func TestInstSourceDestPredicates(t *testing.T) {
	st := Inst{Op: OpSTX, Rd: 5, Rs1: 9}
	if !st.ReadsRdAsSource() || st.WritesIntReg() {
		t.Error("store must read rd, not write it")
	}
	ld := Inst{Op: OpLDX, Rd: 5, Rs1: 9}
	if ld.ReadsRdAsSource() || !ld.WritesIntReg() {
		t.Error("load must write rd")
	}
	ldz := Inst{Op: OpLDX, Rd: 0, Rs1: 9}
	if ldz.WritesIntReg() {
		t.Error("load to g0 writes nothing")
	}
	sw := Inst{Op: OpSWAP, Rd: 20, Rs1: 9}
	if !sw.ReadsRdAsSource() || !sw.WritesIntReg() {
		t.Error("swap both reads and writes rd")
	}
	br := Inst{Op: OpBR, Cond: CondA}
	if !br.IsBranch() || !br.IsUnconditional() {
		t.Error("ba is an unconditional branch")
	}
	bnz := Inst{Op: OpBR, Cond: CondNE}
	if bnz.IsUnconditional() {
		t.Error("bnz is conditional")
	}
	jal := Inst{Op: OpJAL, Rd: 15}
	if !jal.WritesIntReg() || !jal.IsUnconditional() {
		t.Error("jal writes ra and is unconditional")
	}
	ldf := Inst{Op: OpLDF, Rd: 3, Rs1: 9}
	if !ldf.WritesFPReg() || ldf.WritesIntReg() {
		t.Error("ldf writes an FP register")
	}
	stf := Inst{Op: OpSTF, Rd: 3, Rs1: 9}
	if !stf.ReadsRdAsSource() {
		t.Error("stf reads its FP rd as source")
	}
}

// TestSignExtendQuick checks the helper against the reference computation.
func TestSignExtendQuick(t *testing.T) {
	f := func(v uint32) bool {
		v &= 1<<immBits - 1
		got := signExtend(v, immBits)
		want := int64(int32(v<<(32-immBits)) >> (32 - immBits))
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDisassembleStable(t *testing.T) {
	tests := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpADD, Rd: 1, Rs1: 2, Rs2: 3}, "add %g2, %g3, %g1"},
		{Inst{Op: OpADDI, Rd: 8, Rs1: 8, Imm: -8}, "addi %o0, -8, %o0"},
		{Inst{Op: OpSTX, Rd: 5, Rs1: 9, Imm: 40}, "stx %g5, [%o1+40]"},
		{Inst{Op: OpLDX, Rd: 5, Rs1: 9}, "ldx [%o1], %g5"},
		{Inst{Op: OpSWAP, Rd: 20, Rs1: 9}, "swap [%o1], %l4"},
		{Inst{Op: OpSTF, Rd: 12, Rs1: 9, Imm: 8}, "stf %f12, [%o1+8]"},
		{Inst{Op: OpBR, Cond: CondNE, Imm: -4}, "bnz -4"},
		{Inst{Op: OpMEMBAR}, "membar"},
		{Inst{Op: OpHALT}, "halt"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("String(%+v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

// TestDecodeNeverPanics: any 32-bit word decodes without panicking, and
// every decoded instruction disassembles without panicking.
func TestDecodeNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 100000; i++ {
		w := r.Uint32()
		in := Decode(w)
		_ = in.String()
		_ = in.Op.Class()
		_ = in.Op.Name()
	}
	// Exhaustive over opcode space with fixed fields.
	for op := 0; op < 256; op++ {
		w := uint32(op)<<24 | 0x00ffffff
		in := Decode(w)
		_ = in.String()
	}
}
