package asm

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// lintText runs the linter over an inline program with default config.
func lintText(t *testing.T, text string) []Diag {
	t.Helper()
	diags, err := Lint("test.s", text, LintConfig{})
	if err != nil {
		t.Fatalf("Lint: %v", err)
	}
	return diags
}

// wantChecks asserts the diagnostics are exactly the given check names,
// in order.
func wantChecks(t *testing.T, diags []Diag, checks ...string) {
	t.Helper()
	var got []string
	for _, d := range diags {
		got = append(got, d.Check)
	}
	if len(got) != len(checks) {
		t.Fatalf("got %d diagnostics %v, want %v\n%s", len(got), got, checks, diagDump(diags))
	}
	for i := range checks {
		if got[i] != checks[i] {
			t.Fatalf("diag %d: got check %q, want %q\n%s", i, got[i], checks[i], diagDump(diags))
		}
	}
}

func diagDump(diags []Diag) string {
	var sb strings.Builder
	for _, d := range diags {
		sb.WriteString("  " + d.String() + "\n")
	}
	return sb.String()
}

func findCheck(diags []Diag, check string) *Diag {
	for i := range diags {
		if diags[i].Check == check {
			return &diags[i]
		}
	}
	return nil
}

// TestLintExamplesClean pins the shipped example programs to a clean
// lint: they follow the CSB protocol (reload expected value, check the
// flush result, membar before halt) and must stay that way.
func TestLintExamplesClean(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "asm")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".s" {
			continue
		}
		n++
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		diags, err := Lint(e.Name(), string(b), LintConfig{})
		if err != nil {
			t.Errorf("%s: %v", e.Name(), err)
			continue
		}
		for _, d := range diags {
			t.Errorf("%s: unexpected diagnostic: %s", e.Name(), d)
		}
	}
	if n == 0 {
		t.Fatal("no example programs found")
	}
}

func TestLintUseBeforeDef(t *testing.T) {
	diags := lintText(t, `
_start:
	add %g1, %g2, %g3   ! %g1 and %g2 never written
	halt
`)
	wantChecks(t, diags, "uninit-reg", "uninit-reg")
	if d := diags[0]; !strings.Contains(d.Msg, "%g1") || d.Line != 3 {
		t.Errorf("unexpected diag: %s", d)
	}
}

func TestLintUseBeforeDefOnOnePathOnly(t *testing.T) {
	// %g2 is written on the taken path but not the fallthrough: the meet
	// at the join point must drop it from the must-defined set.
	diags := lintText(t, `
_start:
	mov 1, %g1
	tst %g1
	bz skip
	mov 7, %g2
skip:
	add %g2, %g1, %g3
	halt
`)
	wantChecks(t, diags, "uninit-reg")
	if d := diags[0]; !strings.Contains(d.Msg, "%g2") || d.Line != 8 {
		t.Errorf("unexpected diag: %s", d)
	}
}

func TestLintFPAndCCReads(t *testing.T) {
	diags := lintText(t, `
_start:
	bz out              ! cc never set
	fadd %f1, %f2, %f3  ! %f1, %f2 never written
out:
	halt
`)
	wantChecks(t, diags, "uninit-reg", "uninit-reg", "uninit-reg")
	if !strings.Contains(diags[0].Msg, "condition codes") {
		t.Errorf("want cc diag first, got: %s", diags[0])
	}
}

// TestLintCallHavoc: registers are unknown-but-defined after a call
// returns, so reads after a jal must not be flagged.
func TestLintCallHavoc(t *testing.T) {
	diags := lintText(t, `
_start:
	call fill
	add %g1, %g2, %g3
	halt
fill:
	mov 1, %g1
	mov 2, %g2
	ret
`)
	wantChecks(t, diags)
}

func TestLintMissingMembarBeforeHalt(t *testing.T) {
	diags := lintText(t, `
_start:
	set 0x40000000, %o1
	mov 42, %g1
	st %g1, [%o1]
	halt                ! stores may still be buffered
`)
	wantChecks(t, diags, "missing-membar")
	if diags[0].Line != 6 {
		t.Errorf("want diag on halt line 6, got: %s", diags[0])
	}
}

func TestLintMembarClearsPending(t *testing.T) {
	diags := lintText(t, `
_start:
	set 0x40000000, %o1
	mov 42, %g1
	st %g1, [%o1]
	membar
	halt
`)
	wantChecks(t, diags)
}

// TestLintUncachedLoadAfterCombiningStore: a dependent uncached load
// issued while combining data may still sit in the CSB needs a membar or
// a conditional-flush swap in between.
func TestLintUncachedLoadAfterCombiningStore(t *testing.T) {
	diags := lintText(t, `
_start:
	set 0x40000000, %o1
	mov 42, %g1
	st %g1, [%o1]
	ld [%o1+8], %g2    ! may pass the buffered store
	membar
	halt
`)
	wantChecks(t, diags, "missing-membar")
	if diags[0].Line != 6 {
		t.Errorf("want diag on the load at line 6, got: %s", diags[0])
	}
}

func TestLintSwapFlushSatisfiesLoad(t *testing.T) {
	// The conditional flush collects the combining line, so a subsequent
	// uncached load is not flagged; the swap result is checked and the
	// program ends with membar+halt per the protocol.
	diags := lintText(t, `
_start:
	set 0x40000000, %o1
	mov 42, %g1
	st %g1, [%o1]
	set 1, %l4
	swap [%o1], %l4
	cmp %l4, 1
	ld [%o1+8], %g2
	membar
	halt
`)
	wantChecks(t, diags)
}

// TestLintFlushRetryWithoutReload seeds the retry-loop bug the protocol
// comment in the examples warns about: branching back to the swap
// without reloading the expected-value register hands the previous flush
// result in as the expected hit count.
func TestLintFlushRetryWithoutReload(t *testing.T) {
	diags := lintText(t, `
_start:
	set 0x40000000, %o1
	set 8, %l4
retry:
	swap [%o1], %l4
	cmp %l4, 8
	bnz retry           ! %l4 not reloaded on the retry path
	membar
	halt
`)
	wantChecks(t, diags, "flush-protocol")
	if d := diags[0]; d.Line != 6 || !strings.Contains(d.Msg, "previous flush result") {
		t.Errorf("unexpected diag: %s", d)
	}
}

func TestLintFlushResultNeverChecked(t *testing.T) {
	diags := lintText(t, `
_start:
	set 0x40000000, %o1
	set 8, %l4
	swap [%o1], %l4
	mov 0, %l4          ! clobbers the result before any compare
	membar
	halt
`)
	wantChecks(t, diags, "flush-protocol")
	if !strings.Contains(diags[0].Msg, "never checked") {
		t.Errorf("unexpected diag: %s", diags[0])
	}
}

func TestLintFlushResultDiscarded(t *testing.T) {
	diags := lintText(t, `
_start:
	set 0x40000000, %o1
	swap [%o1], %g0
	membar
	halt
`)
	wantChecks(t, diags, "flush-protocol")
	if !strings.Contains(diags[0].Msg, "discarded") {
		t.Errorf("unexpected diag: %s", diags[0])
	}
}

func TestLintLabelChecks(t *testing.T) {
	diags := lintText(t, `
_start:
	ba done
orphan:
	nop
done:
	halt
`)
	// The orphan label's code is also unreachable.
	wantChecks(t, diags, "unused-label", "unreachable")
	if diags[0].Line != 4 {
		t.Errorf("want orphan label at line 4, got: %s", diags[0])
	}

	diags = lintText(t, `
_start:
	ba missing
	halt
`)
	wantChecks(t, diags, "undef-label")

	diags = lintText(t, `
_start:
	nop
_start:
	halt
`)
	if findCheck(diags, "dup-label") == nil {
		t.Fatalf("want dup-label, got:\n%s", diagDump(diags))
	}
}

func TestLintUnreachableAndFallthrough(t *testing.T) {
	diags := lintText(t, `
_start:
	ba end
	mov 1, %g1          ! skipped by the unconditional branch
	mov 2, %g2
end:
	nop                 ! last instruction, no halt
`)
	wantChecks(t, diags, "unreachable", "fallthrough")
	if diags[0].Line != 4 {
		t.Errorf("want unreachable run to start at line 4, got: %s", diags[0])
	}
	if diags[1].Line != 7 {
		t.Errorf("want fallthrough on line 7, got: %s", diags[1])
	}
}

func TestLintBadBranchTarget(t *testing.T) {
	diags := lintText(t, `
_start:
	bnz 100             ! literal offset way past the program
	halt
`)
	// cc is also unset at the branch.
	if findCheck(diags, "bad-target") == nil {
		t.Fatalf("want bad-target, got:\n%s", diagDump(diags))
	}
}

// TestLintIgnorePragma: a same-line pragma and a standalone pragma line
// both suppress the named check, and only that check.
func TestLintIgnorePragma(t *testing.T) {
	diags := lintText(t, `
_start:
	set 0x40000000, %o1
	ld [%o1], %g1       ! lint:ignore uninit-reg bogus name to prove check matching
	halt                ! lint:ignore missing-membar device has no buffered state here
`)
	wantChecks(t, diags)

	diags = lintText(t, `
_start:
	set 0x40000000, %o1
	mov 1, %g1
	st %g1, [%o1]
	! lint:ignore missing-membar status register read is self-ordering
	ld [%o1+8], %g2
	membar
	halt
`)
	wantChecks(t, diags)

	// The pragma names a different check: the diagnostic survives.
	diags = lintText(t, `
_start:
	set 0x40000000, %o1
	mov 1, %g1
	st %g1, [%o1]
	halt                ! lint:ignore unreachable wrong check name
`)
	wantChecks(t, diags, "missing-membar")
}

// TestLintIOBaseConfig: a custom device-space base moves the protocol
// checks with it.
func TestLintIOBaseConfig(t *testing.T) {
	prog := `
_start:
	set 0x1000, %o1
	mov 1, %g1
	st %g1, [%o1]
	halt
`
	wantChecks(t, lintText(t, prog)) // 0x1000 is cacheable by default
	diags, err := Lint("test.s", prog, LintConfig{IOBase: 0x1000})
	if err != nil {
		t.Fatal(err)
	}
	wantChecks(t, diags, "missing-membar")
}

// TestLintLoopCarriedDeviceAddress: an address register advanced inside
// a loop degrades from "known constant" to "device space", keeping the
// membar checks effective across the back edge (the csb_stores.s shape).
func TestLintLoopCarriedDeviceAddress(t *testing.T) {
	diags := lintText(t, `
_start:
	set 0x40000000, %o1
	mov 4, %g2
loop:
	mov 1, %g1
	st %g1, [%o1]
	add %o1, 64, %o1
	subcc %g2, 1, %g2
	bnz loop
	halt                ! still flagged: the stores came from a loop
`)
	wantChecks(t, diags, "missing-membar")
}

func TestLintAssemblerErrorPassthrough(t *testing.T) {
	_, err := Lint("test.s", "_start:\n\tfrobnicate %g1\n", LintConfig{})
	if err == nil {
		t.Fatal("want assembler error for unknown mnemonic")
	}
	if !strings.Contains(err.Error(), "test.s:2") {
		t.Errorf("error not positioned: %v", err)
	}
}

// TestLintIORanges: a low-memory window listed in LintConfig.IORanges is
// device space — stores there stay pending until a membar, and the same
// program with no extra ranges is plain cacheable memory and clean.
func TestLintIORanges(t *testing.T) {
	const prog = `
_start:
	set 0x200000, %o1
	mov 42, %g1
	st %g1, [%o1]
	halt                ! staging store may still be buffered
`
	diags, err := Lint("test.s", prog, LintConfig{
		IORanges: [][2]uint64{{0x200000, 0x210000}},
	})
	if err != nil {
		t.Fatalf("Lint: %v", err)
	}
	wantChecks(t, diags, "missing-membar")

	diags, err = Lint("test.s", prog, LintConfig{})
	if err != nil {
		t.Fatalf("Lint: %v", err)
	}
	wantChecks(t, diags)
}

// TestLintIORangesBoundary pins the half-open interval: the end address
// is outside the window.
func TestLintIORangesBoundary(t *testing.T) {
	const prog = `
_start:
	set 0x210000, %o1
	mov 42, %g1
	st %g1, [%o1]
	halt
`
	diags, err := Lint("test.s", prog, LintConfig{
		IORanges: [][2]uint64{{0x200000, 0x210000}},
	})
	if err != nil {
		t.Fatalf("Lint: %v", err)
	}
	wantChecks(t, diags)
}
