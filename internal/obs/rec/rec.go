// Package rec is the flight recorder: deterministic windowed time-series
// rollups over the unified counter registries, persisted as a replayable
// recording, with a declarative SLO engine evaluated per window.
//
// Every W sim-cycles (driven by Machine.AttachPeriodic on a single node,
// or by the cluster at its single-threaded barrier phase) the recorder
// snapshots every attached registry and computes *window deltas*: how
// much each counter moved, and — via raw histogram bucket states
// (counters.HistState) — genuine per-window latency quantiles rather
// than cumulative ones. Each window lands in a fixed-capacity in-memory
// ring (the live consumers: SLO evaluation, active-alert export) and, if
// a writer is attached, as one length-prefixed JSON frame in the
// recording file. Frames are written whole, one Write call each, so an
// aborted run leaves a valid prefix: the reader tolerates a truncated
// tail, and the cluster/machine abort paths flush a final partial window
// plus a footer (mirroring flushObs).
//
// Nothing here reads the wall clock, iterates maps, or depends on the
// execution engine: all inputs are sim-cycle stamps and registry values
// read at barriers, so a recording of a parallel cluster run is
// byte-identical to the sequential reference — the property that makes
// `csbrec diff` trustworthy for regression checks and result caching.
//
// Recording format: a sequence of frames, each "<len>\n<json>\n" where
// len is the decimal byte length of the JSON document. Frame kinds
// ("k"): "h" header (version, cadence, source/series tables), "w" window
// (counter [end,delta] pairs and histogram [n,sum,min,p50,p95,p99,max]
// rows aligned with the header's series lists), "e" cycle-stamped event
// (SLO breach/recover, watchdog fire, node-down transition, link outage
// window), "f" footer (totals; its presence marks a clean close).
package rec

import (
	"fmt"
	"io"
	"sort"
	"strconv"

	"csbsim/internal/obs/counters"
)

// FormatVersion is the recording format version written in the header.
const FormatVersion = 1

// Config parameterizes a Recorder.
type Config struct {
	// Every is the rollup cadence in sim cycles: one window per Every
	// cycles. The attacher (Machine.AttachPeriodic, Cluster.AttachRecorder)
	// drives Roll on this cadence.
	Every uint64
	// Ring is the number of recent windows retained in memory (default
	// 256). The recording file keeps every window regardless.
	Ring int
}

// DefaultConfig is a 10k-cycle window with a 256-window ring.
func DefaultConfig() Config { return Config{Every: 10_000, Ring: 256} }

// HistWindow is one histogram's statistics over a single window: the
// sample count and sum recorded during the window, and quantiles exact
// at bucket resolution over the window's own samples.
type HistWindow struct {
	N   uint64 `json:"n"`
	Sum uint64 `json:"sum"`
	Min uint64 `json:"min"`
	P50 uint64 `json:"p50"`
	P95 uint64 `json:"p95"`
	P99 uint64 `json:"p99"`
	Max uint64 `json:"max"`
}

// Mean is the window's mean sample value (0 for an empty window).
func (h HistWindow) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.N)
}

// Window is one rollup: every counter's end-of-window value and delta,
// and every histogram's window statistics, in the recorder's sorted
// series order (see Recorder.CounterNames/HistNames).
type Window struct {
	Index    uint64
	C0, C1   uint64 // window covers sim cycles (C0, C1]
	CtrEnd   []uint64
	CtrDelta []uint64
	Hist     []HistWindow
}

// Event is one cycle-stamped occurrence merged into the recording's
// event log: SLO breaches and recoveries ("slo_breach"/"slo_recover",
// with Rule and the offending Value), watchdog fires ("watchdog"),
// node-down transitions ("node_down"), and wire-fault link outage
// windows ("link_outage", Value = the window length in cycles).
type Event struct {
	Cycle uint64  `json:"c"`
	Kind  string  `json:"ev"`
	Node  string  `json:"n,omitempty"`
	Rule  string  `json:"r,omitempty"`
	Value float64 `json:"val,omitempty"`
}

// Alert is one currently-breached SLO binding, exported into telemetry
// frames for the live dashboard.
type Alert struct {
	Rule   string  `json:"rule"`
	Series string  `json:"series"`
	Since  uint64  `json:"since_cycle"`
	Value  float64 `json:"value"`
}

// source is one attached registry.
type source struct {
	name string
	reg  *counters.Registry
}

// Recorder owns the series tables, the window ring, the event log and
// the recording writer. Attach sources and the SLO before the run;
// Roll/Event/Flush are barrier-phase only (single-threaded, between
// lookahead windows) — the pinned phasesafe contract.
type Recorder struct {
	cfg     Config
	w       io.Writer
	slo     *SLO
	sources []source

	sealed     bool
	footerDone bool
	err        error

	// Series tables, sorted by full name ("<source>/<registered name>").
	ctrNames  []string
	ctrRead   []func() uint64
	histNames []string
	hists     []*counters.Histogram

	// Rollup state: previous end-of-window values/states, reused scratch.
	prevCtr  []uint64
	prevHist []counters.HistState
	curHist  counters.HistState

	ring      []Window
	ringStart int
	ringLen   int
	windows   uint64
	lastRoll  uint64
	started   uint64 // cycle Start sealed the tables

	pending    []Event // events not yet written to the file
	eventCount uint64

	bindings []binding

	jbuf []byte // reused JSON scratch
	fbuf []byte // reused frame scratch (length prefix + JSON)
}

// New creates a Recorder. Every must be positive.
func New(cfg Config) (*Recorder, error) {
	if cfg.Every == 0 {
		return nil, fmt.Errorf("rec: window cadence must be positive")
	}
	if cfg.Ring == 0 {
		cfg.Ring = DefaultConfig().Ring
	}
	if cfg.Ring < 1 {
		return nil, fmt.Errorf("rec: ring capacity must be positive")
	}
	return &Recorder{cfg: cfg}, nil
}

// Every returns the rollup cadence in sim cycles.
func (r *Recorder) Every() uint64 { return r.cfg.Every }

// Err returns the first write error, if any (sticky; the recorder keeps
// rolling windows into the ring after a write error).
func (r *Recorder) Err() error { return r.err }

// AddSource attaches a named counter registry; every counter and
// histogram it holds at Start time becomes a series named
// "<name>/<registered name>". Must be called before the first Roll.
func (r *Recorder) AddSource(name string, reg *counters.Registry) error {
	if r.sealed {
		return fmt.Errorf("rec: recorder already started")
	}
	if name == "" || reg == nil {
		return fmt.Errorf("rec: empty source name or nil registry")
	}
	for _, s := range r.sources {
		if s.name == name {
			return fmt.Errorf("rec: duplicate source %q", name)
		}
	}
	r.sources = append(r.sources, source{name: name, reg: reg})
	return nil
}

// SetWriter attaches the recording sink; every frame is written whole in
// one Write call. Must be called before the first Roll. Without a
// writer the recorder is ring-only (live SLO evaluation still runs).
func (r *Recorder) SetWriter(w io.Writer) error {
	if r.sealed {
		return fmt.Errorf("rec: recorder already started")
	}
	r.w = w
	return nil
}

// SetSLO installs the parsed SLO spec evaluated at every window. Must be
// called before the first Roll.
func (r *Recorder) SetSLO(s *SLO) error {
	if r.sealed {
		return fmt.Errorf("rec: recorder already started")
	}
	r.slo = s
	return nil
}

// CounterNames returns the sealed counter-series names (sorted); nil
// before Start.
func (r *Recorder) CounterNames() []string { return r.ctrNames }

// HistNames returns the sealed histogram-series names (sorted); nil
// before Start.
func (r *Recorder) HistNames() []string { return r.histNames }

// Windows returns the number of windows rolled so far.
func (r *Recorder) Windows() uint64 { return r.windows }

// EventCount returns the number of events logged so far.
func (r *Recorder) EventCount() uint64 { return r.eventCount }

// Recent returns the retained ring windows, oldest first. The returned
// slice aliases ring storage: read it at barriers or after the run.
func (r *Recorder) Recent() []Window {
	out := make([]Window, 0, r.ringLen)
	for i := 0; i < r.ringLen; i++ {
		out = append(out, r.ring[(r.ringStart+i)%len(r.ring)])
	}
	return out
}

// Start seals the series tables (collecting and sorting every source's
// counters and histograms), records the baseline the first window's
// deltas are measured from, and writes the header frame. Called
// automatically by the first Roll; call it explicitly at run start when
// sources register counters after attach time. Idempotent.
//
//csb:barrier reads every source registry; only safe between windows
func (r *Recorder) Start(cycle uint64) {
	if r.sealed {
		return
	}
	r.sealed = true
	r.started = cycle
	r.lastRoll = cycle
	type centry struct {
		name string
		read func() uint64
	}
	var ctrs []centry
	for _, s := range r.sources {
		prefix := s.name + "/"
		// A registered name that already starts with the source prefix
		// (the cluster registry registers "cluster/..." counters) is not
		// prefixed again: "cluster/nodes_down", not "cluster/cluster/...".
		full := func(name string) string {
			if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
				return name
			}
			return prefix + name
		}
		s.reg.VisitCounters(func(name string, read func() uint64) {
			ctrs = append(ctrs, centry{name: full(name), read: read})
		})
		s.reg.VisitHistograms(func(h *counters.Histogram) {
			r.histNames = append(r.histNames, full(h.Name()))
			r.hists = append(r.hists, h)
		})
	}
	sort.Slice(ctrs, func(i, j int) bool { return ctrs[i].name < ctrs[j].name })
	r.ctrNames = make([]string, len(ctrs))
	r.ctrRead = make([]func() uint64, len(ctrs))
	for i, c := range ctrs {
		r.ctrNames[i] = c.name
		r.ctrRead[i] = c.read
	}
	sort.Sort(&histSorter{r.histNames, r.hists})

	r.prevCtr = make([]uint64, len(r.ctrRead))
	for i, read := range r.ctrRead {
		r.prevCtr[i] = read()
	}
	r.prevHist = make([]counters.HistState, len(r.hists))
	for i, h := range r.hists {
		h.ReadState(&r.prevHist[i])
	}
	r.ring = make([]Window, r.cfg.Ring)
	for i := range r.ring {
		r.ring[i].CtrEnd = make([]uint64, len(r.ctrRead))
		r.ring[i].CtrDelta = make([]uint64, len(r.ctrRead))
		r.ring[i].Hist = make([]HistWindow, len(r.hists))
	}
	if r.slo != nil {
		var unbound []string
		r.bindings, unbound = r.slo.bind(r.ctrNames, r.histNames)
		r.writeHeader(cycle)
		// A rule whose glob matches no series is surfaced in the event
		// log instead of silently never evaluating.
		for _, raw := range unbound {
			r.Event(cycle, "slo_unbound", "", raw, 0)
		}
	} else {
		r.writeHeader(cycle)
	}
}

// histSorter sorts the parallel (names, hists) slices by name.
type histSorter struct {
	names []string
	hists []*counters.Histogram
}

func (s *histSorter) Len() int           { return len(s.names) }
func (s *histSorter) Less(i, j int) bool { return s.names[i] < s.names[j] }
func (s *histSorter) Swap(i, j int) {
	s.names[i], s.names[j] = s.names[j], s.names[i]
	s.hists[i], s.hists[j] = s.hists[j], s.hists[i]
}

// Event appends one cycle-stamped event to the log; it is written to the
// recording at the next Roll or Flush, in append order.
//
//csb:barrier appends to the shared event log; only safe between windows
func (r *Recorder) Event(cycle uint64, kind, node string, rule string, value float64) {
	r.eventCount++
	r.pending = append(r.pending, Event{Cycle: cycle, Kind: kind, Node: node, Rule: rule, Value: value}) //csb:alloc-ok events are rare (faults, breaches); drained every window
}

// Roll closes the window (lastRoll, cycle]: reads every counter and
// histogram, stores the deltas in the ring, evaluates the SLO rules, and
// appends the pending events plus the window frame to the recording.
// Alloc-free in steady state (no events firing, scratch buffers grown).
// A cycle at or before the previous roll is a no-op, so abort-path
// flushes never emit empty windows.
//
//csb:barrier reads every source registry; only safe between windows
func (r *Recorder) Roll(cycle uint64) {
	if !r.sealed {
		r.Start(cycle)
		return
	}
	if cycle <= r.lastRoll || r.footerDone {
		return
	}
	w := r.slot()
	w.Index = r.windows
	w.C0 = r.lastRoll
	w.C1 = cycle
	for i, read := range r.ctrRead {
		v := read()
		w.CtrEnd[i] = v
		w.CtrDelta[i] = v - r.prevCtr[i]
		r.prevCtr[i] = v
	}
	for i, h := range r.hists {
		h.ReadState(&r.curHist)
		s := counters.WindowStats(&r.prevHist[i], &r.curHist)
		w.Hist[i] = HistWindow{
			N: s.Count, Sum: r.curHist.Sum - r.prevHist[i].Sum,
			Min: s.Min, P50: s.P50, P95: s.P95, P99: s.P99, Max: s.Max,
		}
		r.prevHist[i] = r.curHist
	}
	r.windows++
	r.lastRoll = cycle
	r.evalSLO(w)
	r.drainEvents()
	r.writeWindow(w)
}

// Flush closes the recording: a final partial window if cycles elapsed
// since the last roll, any pending events, and the footer frame. Safe to
// call more than once (the footer is written exactly once) — both the
// abort paths and the normal end-of-run path funnel through it.
//
//csb:barrier reads every source registry; only safe between windows
func (r *Recorder) Flush(cycle uint64) {
	if !r.sealed {
		r.Start(cycle)
	}
	if cycle > r.lastRoll {
		r.Roll(cycle)
	} else {
		r.drainEvents()
	}
	if r.footerDone {
		return
	}
	r.footerDone = true
	r.jbuf = r.jbuf[:0]
	r.jbuf = append(r.jbuf, `{"k":"f","c":`...)
	r.jbuf = strconv.AppendUint(r.jbuf, cycle, 10)
	r.jbuf = append(r.jbuf, `,"windows":`...)
	r.jbuf = strconv.AppendUint(r.jbuf, r.windows, 10)
	r.jbuf = append(r.jbuf, `,"events":`...)
	r.jbuf = strconv.AppendUint(r.jbuf, r.eventCount, 10)
	r.jbuf = append(r.jbuf, '}')
	r.writeFrame()
}

// ActiveAlerts returns the currently-breached SLO bindings in evaluation
// order (deterministic: rule order × sorted series order).
func (r *Recorder) ActiveAlerts() []Alert {
	var out []Alert
	for i := range r.bindings {
		b := &r.bindings[i]
		if b.breached {
			out = append(out, Alert{
				Rule:   b.rule.Raw,
				Series: b.series,
				Since:  b.since,
				Value:  b.last,
			})
		}
	}
	return out
}

// slot claims the next ring window, evicting the oldest at capacity.
func (r *Recorder) slot() *Window {
	if r.ringLen < len(r.ring) {
		w := &r.ring[(r.ringStart+r.ringLen)%len(r.ring)]
		r.ringLen++
		return w
	}
	w := &r.ring[r.ringStart]
	r.ringStart = (r.ringStart + 1) % len(r.ring)
	return w
}

// evalSLO evaluates every binding against the freshly rolled window and
// logs breach/recover transitions via the same evalBindings path that
// offline `csbrec check` replays.
func (r *Recorder) evalSLO(w *Window) {
	evalBindings(r.bindings, w, func(ev Event) {
		r.Event(ev.Cycle, ev.Kind, ev.Node, ev.Rule, ev.Value)
	})
}

// ---- frame writing ----

// drainEvents writes (and clears) the pending event frames.
func (r *Recorder) drainEvents() {
	for i := range r.pending {
		ev := &r.pending[i]
		r.jbuf = r.jbuf[:0]
		r.jbuf = append(r.jbuf, `{"k":"e","c":`...)
		r.jbuf = strconv.AppendUint(r.jbuf, ev.Cycle, 10)
		r.jbuf = append(r.jbuf, `,"ev":`...)
		r.jbuf = appendJSONString(r.jbuf, ev.Kind)
		if ev.Node != "" {
			r.jbuf = append(r.jbuf, `,"n":`...)
			r.jbuf = appendJSONString(r.jbuf, ev.Node)
		}
		if ev.Rule != "" {
			r.jbuf = append(r.jbuf, `,"r":`...)
			r.jbuf = appendJSONString(r.jbuf, ev.Rule)
		}
		if ev.Value != 0 {
			r.jbuf = append(r.jbuf, `,"val":`...)
			r.jbuf = strconv.AppendFloat(r.jbuf, ev.Value, 'g', -1, 64)
		}
		r.jbuf = append(r.jbuf, '}')
		r.writeFrame()
	}
	r.pending = r.pending[:0]
}

// writeHeader emits the header frame: format version, cadence, source
// names, SLO rule texts, and the sorted series tables the window frames'
// positional arrays align with.
func (r *Recorder) writeHeader(cycle uint64) {
	r.jbuf = r.jbuf[:0]
	r.jbuf = append(r.jbuf, `{"k":"h","v":`...)
	r.jbuf = strconv.AppendUint(r.jbuf, FormatVersion, 10)
	r.jbuf = append(r.jbuf, `,"every":`...)
	r.jbuf = strconv.AppendUint(r.jbuf, r.cfg.Every, 10)
	r.jbuf = append(r.jbuf, `,"c":`...)
	r.jbuf = strconv.AppendUint(r.jbuf, cycle, 10)
	r.jbuf = append(r.jbuf, `,"sources":[`...)
	for i, s := range r.sources {
		if i > 0 {
			r.jbuf = append(r.jbuf, ',')
		}
		r.jbuf = appendJSONString(r.jbuf, s.name)
	}
	r.jbuf = append(r.jbuf, `],"slo":[`...)
	if r.slo != nil {
		for i := range r.slo.Rules {
			if i > 0 {
				r.jbuf = append(r.jbuf, ',')
			}
			r.jbuf = appendJSONString(r.jbuf, r.slo.Rules[i].Raw)
		}
	}
	r.jbuf = append(r.jbuf, `],"ctrn":[`...)
	for i, n := range r.ctrNames {
		if i > 0 {
			r.jbuf = append(r.jbuf, ',')
		}
		r.jbuf = appendJSONString(r.jbuf, n)
	}
	r.jbuf = append(r.jbuf, `],"histn":[`...)
	for i, n := range r.histNames {
		if i > 0 {
			r.jbuf = append(r.jbuf, ',')
		}
		r.jbuf = appendJSONString(r.jbuf, n)
	}
	r.jbuf = append(r.jbuf, `]}`...)
	r.writeFrame()
}

// writeWindow emits one window frame: [end,delta] per counter series and
// [n,sum,min,p50,p95,p99,max] per histogram series, positionally aligned
// with the header tables.
func (r *Recorder) writeWindow(w *Window) {
	r.jbuf = r.jbuf[:0]
	r.jbuf = append(r.jbuf, `{"k":"w","i":`...)
	r.jbuf = strconv.AppendUint(r.jbuf, w.Index, 10)
	r.jbuf = append(r.jbuf, `,"c0":`...)
	r.jbuf = strconv.AppendUint(r.jbuf, w.C0, 10)
	r.jbuf = append(r.jbuf, `,"c1":`...)
	r.jbuf = strconv.AppendUint(r.jbuf, w.C1, 10)
	r.jbuf = append(r.jbuf, `,"ctr":[`...)
	for i := range w.CtrEnd {
		if i > 0 {
			r.jbuf = append(r.jbuf, ',')
		}
		r.jbuf = append(r.jbuf, '[')
		r.jbuf = strconv.AppendUint(r.jbuf, w.CtrEnd[i], 10)
		r.jbuf = append(r.jbuf, ',')
		r.jbuf = strconv.AppendUint(r.jbuf, w.CtrDelta[i], 10)
		r.jbuf = append(r.jbuf, ']')
	}
	r.jbuf = append(r.jbuf, `],"hist":[`...)
	for i := range w.Hist {
		if i > 0 {
			r.jbuf = append(r.jbuf, ',')
		}
		h := &w.Hist[i]
		r.jbuf = append(r.jbuf, '[')
		r.jbuf = strconv.AppendUint(r.jbuf, h.N, 10)
		for _, v := range [6]uint64{h.Sum, h.Min, h.P50, h.P95, h.P99, h.Max} {
			r.jbuf = append(r.jbuf, ',')
			r.jbuf = strconv.AppendUint(r.jbuf, v, 10)
		}
		r.jbuf = append(r.jbuf, ']')
	}
	r.jbuf = append(r.jbuf, `]}`...)
	r.writeFrame()
}

// writeFrame wraps r.jbuf as one length-prefixed frame and writes it in
// a single call. A write error is sticky and stops further file output;
// the in-memory ring keeps rolling.
func (r *Recorder) writeFrame() {
	if r.w == nil || r.err != nil {
		return
	}
	r.fbuf = r.fbuf[:0]
	r.fbuf = strconv.AppendUint(r.fbuf, uint64(len(r.jbuf)), 10)
	r.fbuf = append(r.fbuf, '\n')
	r.fbuf = append(r.fbuf, r.jbuf...)
	r.fbuf = append(r.fbuf, '\n')
	if _, err := r.w.Write(r.fbuf); err != nil {
		r.err = fmt.Errorf("rec: write: %w", err)
	}
}

// appendJSONString appends s as a quoted JSON string. Series and event
// names are plain ASCII; the escape handles the general case anyway.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c < 0x20:
			b = append(b, `\u00`...)
			const hex = "0123456789abcdef"
			b = append(b, hex[c>>4], hex[c&0xf])
		default:
			b = append(b, c)
		}
	}
	return append(b, '"')
}
