package bench

import (
	"testing"

	"csbsim/internal/cluster"
	"csbsim/internal/device"
	"csbsim/internal/mem"
	"csbsim/internal/sim"
)

// checkCPI enforces the observability layer's core invariant on a
// finished machine: every cycle was charged to exactly one CPI bucket, so
// the stack sums to the cycle counter.
func checkCPI(t *testing.T, name string, s sim.Stats) {
	t.Helper()
	if total := s.CPU.CPI.Total(); total != s.CPU.Cycles {
		t.Errorf("%s: CPI stack sums to %d, CPU cycles = %d\n%s",
			name, total, s.CPU.Cycles, s.CPU.CPI.Format())
	}
}

// TestCPIStackInvariantBandwidth runs the store-bandwidth workload under
// every scheme and checks the invariant on realistic pipeline behavior
// (uncached drains, combining windows, CSB flush stalls).
func TestCPIStackInvariantBandwidth(t *testing.T) {
	for _, scheme := range []Scheme{Scheme(0), Scheme(8), SchemeCSB} {
		p := DefaultParams()
		p.Scheme = scheme
		m, err := p.Build()
		if err != nil {
			t.Fatal(err)
		}
		kind := mem.KindUncached
		if scheme == SchemeCSB {
			kind = mem.KindCombining
		}
		m.MapRange(IOBase, 1<<20, kind)
		src := StoreBandwidthProgram(1024, p.LineSize, scheme == SchemeCSB)
		prog, err := m.LoadSource("bw.s", src)
		if err != nil {
			t.Fatal(err)
		}
		m.WarmProgram(prog)
		if err := m.Run(10_000_000); err != nil {
			t.Fatal(err)
		}
		if err := m.Drain(1_000_000); err != nil {
			t.Fatal(err)
		}
		checkCPI(t, scheme.String(), m.Stats())
	}
}

// TestCPIStackInvariantPingPong runs the two-node ping-pong workload and
// checks the invariant on both machines — covering NIC interrupts,
// polling loops and cross-node timing.
func TestCPIStackInvariantPingPong(t *testing.T) {
	for _, method := range []SendMethod{SendPIO, SendCSB} {
		cfg := cluster.DefaultConfig()
		cfg.WireLatency = 60
		c, err := cluster.NewPair(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range c.Nodes() {
			n.MapIO(method == SendCSB)
			n.M.MapRange(0x200000, 1<<16, mem.KindCached)
		}
		pa, err := c.Node(0).M.LoadSource("ping.s", pingProgram(method, 5))
		if err != nil {
			t.Fatal(err)
		}
		pb, err := c.Node(1).M.LoadSource("pong.s", pongProgram(method, 5))
		if err != nil {
			t.Fatal(err)
		}
		c.Node(0).M.WarmProgram(pa)
		c.Node(1).M.WarmProgram(pb)
		if err := c.Run(10_000_000); err != nil {
			t.Fatal(err)
		}
		checkCPI(t, "pingpong/"+method.String()+"/A", c.Node(0).M.Stats())
		checkCPI(t, "pingpong/"+method.String()+"/B", c.Node(1).M.Stats())
	}
}

// TestCPIStackInvariantMessageSend runs the PIO-vs-DMA message-send
// workload (the piodma example's core) for each send method.
func TestCPIStackInvariantMessageSend(t *testing.T) {
	for _, method := range []SendMethod{SendPIO, SendCSB, SendDMA} {
		p := DefaultParams()
		m, err := sim.New(sim.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		nic := device.NewNIC(device.DefaultConfig(), NICBase)
		if err := m.AddDevice(NICBase, device.RegionSize, "nic", nic, nic); err != nil {
			t.Fatal(err)
		}
		m.MapRange(NICBase, device.PacketBufBase, mem.KindUncached)
		bufKind := mem.KindUncached
		if method == SendCSB {
			bufKind = mem.KindCombining
		}
		m.MapRange(NICBase+device.PacketBufBase, device.PacketBufSize, bufKind)
		m.MapRange(0x200000, 1<<16, mem.KindCached)
		m.WarmData(0x200000, 256)
		prog, err := m.LoadSource("send.s", messageSendProgram(method, 256, p.LineSize))
		if err != nil {
			t.Fatal(err)
		}
		m.WarmProgram(prog)
		if err := m.Run(10_000_000); err != nil {
			t.Fatal(err)
		}
		if err := m.Drain(1_000_000); err != nil {
			t.Fatal(err)
		}
		checkCPI(t, "piodma/"+method.String(), m.Stats())
	}
}
