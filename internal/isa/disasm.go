package isa

import (
	"fmt"
	"strings"
)

// String renders the instruction in the assembler's input syntax (SPARC
// operand order: sources first, destination last), so that disassembled
// output re-assembles to the same words.
func (in Inst) String() string {
	var b strings.Builder
	op := in.Op
	switch op {
	case OpInvalid:
		return "invalid"
	case OpNOP:
		return "nop"
	case OpHALT:
		return "halt"
	case OpIRET:
		return "iret"
	case OpMEMBAR:
		return "membar"
	case OpTRAP:
		return fmt.Sprintf("trap %d", in.Imm)
	case OpLUI:
		return fmt.Sprintf("lui %d, %s", in.Imm, RegName(in.Rd))
	case OpBR:
		return fmt.Sprintf("%s %+d", in.Cond.Name(), in.Imm)
	case OpJAL:
		return fmt.Sprintf("jal %+d, %s", in.Imm, RegName(in.Rd))
	case OpJALR:
		return fmt.Sprintf("jalr %s, %d, %s", RegName(in.Rs1), in.Imm, RegName(in.Rd))
	case OpRDPR:
		return fmt.Sprintf("rdpr %%%s, %s", PRName(PR(in.Imm)), RegName(in.Rd))
	case OpWRPR:
		return fmt.Sprintf("wrpr %s, %%%s", RegName(in.Rs1), PRName(PR(in.Imm)))
	}

	if op.IsMem() {
		addr := fmt.Sprintf("[%s%+d]", RegName(in.Rs1), in.Imm)
		if in.Imm == 0 {
			addr = fmt.Sprintf("[%s]", RegName(in.Rs1))
		}
		rd := RegName(in.Rd)
		if op.FPRd() {
			rd = FRegName(FReg(in.Rd))
		}
		switch {
		case op == OpSWAP:
			return fmt.Sprintf("swap %s, %s", addr, rd)
		case op.IsStore():
			return fmt.Sprintf("%s %s, %s", op.Name(), rd, addr)
		default:
			return fmt.Sprintf("%s %s, %s", op.Name(), addr, rd)
		}
	}

	name := func(r Reg, fp bool) string {
		if fp {
			return FRegName(FReg(r))
		}
		return RegName(r)
	}
	b.WriteString(op.Name())
	b.WriteByte(' ')
	switch op {
	case OpFMOV, OpFNEG:
		fmt.Fprintf(&b, "%s, %s", name(in.Rs1, true), name(in.Rd, true))
	case OpFITOD, OpMOVR2F:
		fmt.Fprintf(&b, "%s, %s", RegName(in.Rs1), name(in.Rd, true))
	case OpFDTOI, OpMOVF2R:
		fmt.Fprintf(&b, "%s, %s", name(in.Rs1, true), RegName(in.Rd))
	case OpFCMP:
		fmt.Fprintf(&b, "%s, %s", name(in.Rs1, true), name(in.Rs2, true))
	default:
		// src1, src2/imm, dst — SPARC order.
		fmt.Fprintf(&b, "%s, ", name(in.Rs1, op.FPRs1()))
		if op.HasImm() {
			fmt.Fprintf(&b, "%d", in.Imm)
		} else {
			b.WriteString(name(in.Rs2, op.FPRs2()))
		}
		fmt.Fprintf(&b, ", %s", name(in.Rd, op.FPRd()))
	}
	return b.String()
}
