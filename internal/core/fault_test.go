package core

import "testing"

// storeLine fills the CSB with count stores of one dword each, starting
// at addr, and returns whether every store was accepted first try.
func storeLine(c *CSB, pid uint8, addr uint64, count int) bool {
	for i := 0; i < count; i++ {
		if !c.Store(pid, addr+uint64(8*i), 8, dword(byte(i+1))) {
			return false
		}
	}
	return true
}

func TestStorePressureHookStalls(t *testing.T) {
	c := newCSB(t, DefaultConfig())
	squeeze := true
	c.SetFaultHooks(func() bool { return squeeze }, nil, nil)

	if c.Store(1, 0x1000, 8, dword(0xAA)) {
		t.Fatal("store accepted under injected pressure")
	}
	if s := c.Stats(); s.StallBusy != 1 || s.Stores != 0 {
		t.Fatalf("stats after refused store: %+v", s)
	}
	// The retire stage retries; once the pressure lifts the store lands
	// and the sequence completes as if nothing happened.
	squeeze = false
	if !storeLine(c, 1, 0x1000, 8) {
		t.Fatal("stores refused after pressure lifted")
	}
	if _, ready := c.ConditionalFlush(1, 0x1000, 8, 42); !ready {
		t.Fatal("flush not ready")
	}
	if s := c.Stats(); s.FlushOK != 1 {
		t.Fatalf("flush did not succeed: %+v", s)
	}
}

func TestFlushDelayHookStallsThenAnswers(t *testing.T) {
	c := newCSB(t, DefaultConfig())
	delay := 3
	calls := 0
	c.SetFaultHooks(nil, func() int { calls++; d := delay; delay = 0; return d }, nil)

	if !storeLine(c, 1, 0x1000, 8) {
		t.Fatal("stores refused")
	}
	// The acknowledgement is delayed for exactly 3 attempts, then the
	// flush proceeds normally.
	stalls := 0
	for {
		res, ready := c.ConditionalFlush(1, 0x1000, 8, 42)
		if ready {
			if res != 42 {
				t.Fatalf("flush result = %d, want 42", res)
			}
			break
		}
		stalls++
		if stalls > 10 {
			t.Fatal("flush never answered")
		}
	}
	if stalls != 3 {
		t.Errorf("stalled attempts = %d, want 3", stalls)
	}
	// Consulted once to open the delay (attempt 1) and once more on the
	// first attempt after it expired (attempt 4) — never while pending.
	if calls != 2 {
		t.Errorf("delay hook consulted %d times, want 2", calls)
	}
	if s := c.Stats(); s.FlushOK != 1 || s.FlushFail != 0 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestDropFlushHookForcesRetrySequence(t *testing.T) {
	c := newCSB(t, DefaultConfig())
	drop := true
	c.SetFaultHooks(nil, nil, func() bool { d := drop; drop = false; return d })

	if !storeLine(c, 1, 0x1000, 8) {
		t.Fatal("stores refused")
	}
	// The would-succeed flush has its acknowledgement dropped: software
	// sees a failure, nothing was committed, and the buffer is clear.
	res, ready := c.ConditionalFlush(1, 0x1000, 8, 42)
	if !ready || res != 0 {
		t.Fatalf("dropped flush: res=%d ready=%v, want 0 true", res, ready)
	}
	if s := c.Stats(); s.FlushFail != 1 || s.FlushOK != 0 || s.Bursts != 0 {
		t.Fatalf("stats after dropped ack: %+v", s)
	}
	if c.PendingLines() != 0 || c.HitCount() != 0 {
		t.Fatal("dropped flush left state behind")
	}
	// The §3.2 retry loop re-runs the store sequence; this time the
	// flush commits.
	if !storeLine(c, 1, 0x1000, 8) {
		t.Fatal("retry stores refused")
	}
	res, ready = c.ConditionalFlush(1, 0x1000, 8, 42)
	if !ready || res != 42 {
		t.Fatalf("retried flush: res=%d ready=%v, want 42 true", res, ready)
	}
	if s := c.Stats(); s.FlushOK != 1 || s.PaddedBytes != 0 {
		t.Fatalf("stats after retry: %+v", s)
	}
}

func TestFailedFlushNotCountedAsDrop(t *testing.T) {
	c := newCSB(t, DefaultConfig())
	dropCalls := 0
	c.SetFaultHooks(nil, nil, func() bool { dropCalls++; return true })
	// A flush that would fail anyway (wrong count) must not consult the
	// drop hook: only would-succeed acknowledgements can be dropped.
	if !storeLine(c, 1, 0x1000, 4) {
		t.Fatal("stores refused")
	}
	if _, ready := c.ConditionalFlush(1, 0x1000, 8, 42); !ready {
		t.Fatal("flush not ready")
	}
	if dropCalls != 0 {
		t.Errorf("drop hook consulted %d times on a failing flush", dropCalls)
	}
}
