package bench

import (
	"fmt"

	"csbsim/internal/asm"
	"csbsim/internal/device"
	"csbsim/internal/kernel"
	"csbsim/internal/mem"
	"csbsim/internal/sim"
)

// Extension X6 (paper §5): "the non-blocking synchronization feature opens
// new opportunities for the design of user-level network interfaces.
// Processes can be allowed to access device control registers … without
// operating system involvement since atomicity is provided by the
// conditional store buffer."
//
// Two preemptively-scheduled processes share one NIC and each send N
// line-sized messages into their own packet-buffer slot.
//
//   - Lock variant: a shared spin lock serializes device access; each
//     message is lock → uncached payload stores → membar → descriptor →
//     unlock. A process preempted inside the critical section blocks its
//     rival for the rest of the quantum (the §2 "costly locking overhead").
//   - CSB variant: no lock at all; the payload is committed by one
//     conditional flush and the descriptor push is a single atomic store.
//     Preemption mid-sequence just costs a local retry.

// lockSenderProgram emits the lock-based sender.
func lockSenderProgram(org uint64, slot uint64, msgs int) string {
	return fmt.Sprintf(`
	.org %#x
	.equ NICREG, %#x
	.equ SLOT, %#x
	.equ LOCK, 0x90000
	set NICREG, %%o0
	set SLOT, %%o1
	set LOCK, %%o2
	set %d, %%g3            ! messages to send
	mov 0x5A, %%g1
	movr2f %%g1, %%f0
msg:
acquire:
	mov 1, %%l4
	swap [%%o2], %%l4
	tst %%l4
	bnz acquire             ! spin while the rival (or its ghost) holds it
	membar
	std %%f0, [%%o1]
	std %%f0, [%%o1+8]
	std %%f0, [%%o1+16]
	std %%f0, [%%o1+24]
	std %%f0, [%%o1+32]
	std %%f0, [%%o1+40]
	std %%f0, [%%o1+48]
	std %%f0, [%%o1+56]
	membar                  ! payload must reach the device first
	set 64, %%g4
	sll %%g4, 48, %%g4
	set SLOT, %%g5
	set NICREG, %%g6
	sub %%g5, %%g6, %%g5
	sub %%g5, 4096, %%g5    ! descriptor offset within the packet buffer
	or %%g4, %%g5, %%g4
	stx %%g4, [%%o0]
	membar
	clr %%l5
	stx %%l5, [%%o2]        ! release
	subcc %%g3, 1, %%g3
	bnz msg
	halt
`, org, NICBase, slot, msgs)
}

// csbSenderProgram emits the lock-free CSB sender.
func csbSenderProgram(org uint64, slot uint64, msgs int) string {
	return fmt.Sprintf(`
	.org %#x
	.equ NICREG, %#x
	.equ SLOT, %#x
	set NICREG, %%o0
	set SLOT, %%o1
	set %d, %%g3
	mov 0x5A, %%g1
	movr2f %%g1, %%f0
msg:
RETRY:
	set 8, %%l4
	std %%f0, [%%o1]
	std %%f0, [%%o1+8]
	std %%f0, [%%o1+16]
	std %%f0, [%%o1+24]
	std %%f0, [%%o1+32]
	std %%f0, [%%o1+40]
	std %%f0, [%%o1+48]
	std %%f0, [%%o1+56]
	swap [%%o1], %%l4       ! conditional flush: atomic line burst
	cmp %%l4, 8
	bnz RETRY               ! preempted mid-sequence? just retry
	set 64, %%g4
	sll %%g4, 48, %%g4
	set SLOT, %%g5
	set NICREG, %%g6
	sub %%g5, %%g6, %%g5
	sub %%g5, 4096, %%g5
	or %%g4, %%g5, %%g4
	stx %%g4, [%%o0]        ! single-store descriptor push (atomic)
	subcc %%g3, 1, %%g3
	bnz msg
	halt
`, org, NICBase, slot, msgs)
}

// SharedNICResult captures one X6 run.
type SharedNICResult struct {
	Cycles    uint64 // total CPU cycles until both processes exit
	Packets   int
	Switches  uint64
	FlushFail uint64 // CSB variant: conflicts repaired by retry
}

// MeasureSharedNIC runs two processes sending msgs line-sized messages
// each through one shared NIC, preempted every quantum cycles.
func MeasureSharedNIC(useCSB bool, msgs int, quantum uint64) (SharedNICResult, error) {
	var res SharedNICResult
	m, err := sim.New(sim.DefaultConfig())
	if err != nil {
		return res, err
	}
	nic := device.NewNIC(device.DefaultConfig(), NICBase)
	if err := m.AddDevice(NICBase, device.RegionSize, "nic", nic, nic); err != nil {
		return res, err
	}
	k := kernel.New(m, quantum)

	slotA := NICBase + device.PacketBufBase
	slotB := slotA + 64
	gen := lockSenderProgram
	bufKind := mem.KindUncached
	if useCSB {
		gen = csbSenderProgram
		bufKind = mem.KindCombining
	}
	progA, err := asm.Assemble("a.s", gen(0x10000, slotA, msgs))
	if err != nil {
		return res, err
	}
	progB, err := asm.Assemble("b.s", gen(0x60000, slotB, msgs))
	if err != nil {
		return res, err
	}
	pa, err := k.Spawn("sender-a", 1, progA)
	if err != nil {
		return res, err
	}
	pb, err := k.Spawn("sender-b", 2, progB)
	if err != nil {
		return res, err
	}
	for _, p := range []*kernel.Process{pa, pb} {
		p.Space.MapRange(NICBase, NICBase, device.PacketBufBase, mem.KindUncached, true)
		p.Space.MapRange(NICBase+device.PacketBufBase, NICBase+device.PacketBufBase,
			device.PacketBufSize, bufKind, true)
		// The shared lock lives in cached memory visible to both.
		p.Space.MapRange(0x90000, 0x90000, mem.PageSize, mem.KindCached, true)
	}
	if err := k.Run(200_000_000); err != nil {
		return res, err
	}
	if err := m.Drain(1_000_000); err != nil {
		return res, err
	}
	s := m.Stats()
	res.Cycles = m.Cycle()
	res.Packets = len(nic.Packets())
	res.Switches = k.Switches()
	res.FlushFail = s.CSB.FlushFail
	return res, nil
}

// ExtensionSharedNIC regenerates experiment X6: lock-based vs lock-free
// (CSB) shared device access under preemption, across quanta.
func ExtensionSharedNIC() (Result, error) {
	quanta := []uint64{400, 800, 1600, 3200}
	const msgs = 20
	r := Result{
		ID:     "X6",
		Title:  "shared NIC, two preempted processes: lock-based vs lock-free CSB access",
		XLabel: "scheduler quantum (cycles)", YLabel: "total CPU cycles for 2x20 messages",
		Notes: "per-process packet-buffer slots; lock variant serializes with a shared spin lock",
	}
	for _, q := range quanta {
		r.X = append(r.X, fmt.Sprintf("%d", q))
	}
	variants := []bool{false, true} // lock-based, then CSB lock-free
	names := []string{"lock+uncached", "CSB lock-free"}
	ys, err := sweepSeries(len(variants), len(quanta), func(si, xi int) (float64, error) {
		res, err := MeasureSharedNIC(variants[si], msgs, quanta[xi])
		if err != nil {
			return 0, err
		}
		if res.Packets != 2*msgs {
			return 0, fmt.Errorf("bench X6 (%s, q=%d): %d packets, want %d",
				names[si], quanta[xi], res.Packets, 2*msgs)
		}
		return float64(res.Cycles), nil
	})
	if err != nil {
		return r, err
	}
	for si, name := range names {
		r.Series = append(r.Series, Series{Name: name, Y: ys[si]})
	}
	return r, nil
}
