package loadgen

import (
	"strings"
	"testing"

	"csbsim/internal/asm"
	"csbsim/internal/bench"
)

// serverLintCfg classifies the uncached DMA staging window as device
// space, so staging stores get the same store-buffer ordering checks as
// NIC accesses.
func serverLintCfg() asm.LintConfig {
	return asm.LintConfig{IORanges: [][2]uint64{{DMAStageBase, DMAStageBase + DMAStageSize}}}
}

// serverVariants enumerates every (method, words) pair ServerProgram
// accepts: all three -send modes, each word count 1..8 (CSB requires the
// full 8-word line).
func serverVariants() []struct {
	method bench.SendMethod
	words  int
} {
	var out []struct {
		method bench.SendMethod
		words  int
	}
	for _, m := range []bench.SendMethod{bench.SendPIO, bench.SendCSB, bench.SendDMA} {
		for w := 1; w <= 8; w++ {
			if m == bench.SendCSB && w != 8 {
				continue
			}
			out = append(out, struct {
				method bench.SendMethod
				words  int
			}{m, w})
		}
	}
	return out
}

// TestServerProgramsLintClean runs csblint's engine over every generated
// server program: codegen output is held to the same store-buffer
// protocol checks as the hand-written examples.
func TestServerProgramsLintClean(t *testing.T) {
	for _, v := range serverVariants() {
		prog, err := ServerProgram(v.method, v.words)
		if err != nil {
			t.Fatalf("%v/%d: %v", v.method, v.words, err)
		}
		diags, err := asm.Lint("server.s", prog, serverLintCfg())
		if err != nil {
			t.Fatalf("%v/%d: lint: %v", v.method, v.words, err)
		}
		for _, d := range diags {
			t.Errorf("%v/%d words: %s", v.method, v.words, d)
		}
	}
}

// TestServerProgramsLintIgnoresAreLoadBearing strips the generated
// lint:ignore pragmas and checks the poll loads are then reported: the
// pragmas document real findings the uncached buffer's strong ordering
// makes safe, not dead annotations.
func TestServerProgramsLintIgnoresAreLoadBearing(t *testing.T) {
	for _, v := range serverVariants() {
		prog, err := ServerProgram(v.method, v.words)
		if err != nil {
			t.Fatal(err)
		}
		stripped := strings.ReplaceAll(prog, "! lint:ignore missing-membar", "! was:")
		diags, err := asm.Lint("server.s", stripped, serverLintCfg())
		if err != nil {
			t.Fatalf("%v/%d: lint: %v", v.method, v.words, err)
		}
		membar := 0
		for _, d := range diags {
			if d.Check == "missing-membar" {
				membar++
			}
		}
		if membar == 0 {
			t.Errorf("%v/%d words: expected missing-membar findings once ignores are stripped, got none (diags: %v)",
				v.method, v.words, diags)
		}
	}
}

// TestServerProgramRejectsBadSizes pins the argument contract.
func TestServerProgramRejectsBadSizes(t *testing.T) {
	if _, err := ServerProgram(bench.SendPIO, 0); err == nil {
		t.Error("ServerProgram(PIO, 0) should fail")
	}
	if _, err := ServerProgram(bench.SendPIO, 9); err == nil {
		t.Error("ServerProgram(PIO, 9) should fail")
	}
	if _, err := ServerProgram(bench.SendCSB, 4); err == nil {
		t.Error("ServerProgram(CSB, 4) should fail: CSB needs the full line")
	}
}
