package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestCPIStackTotalAndStalls(t *testing.T) {
	var s CPIStack
	for i := 0; i < 10; i++ {
		s.Add(CauseCommit)
	}
	for i := 0; i < 7; i++ {
		s.Add(CauseUncached)
	}
	s.Add(CauseCSB)
	if got := s.Total(); got != 18 {
		t.Errorf("Total = %d, want 18", got)
	}
	if got := s.StallCycles(); got != 8 {
		t.Errorf("StallCycles = %d, want 8", got)
	}
}

func TestCPIStackFormat(t *testing.T) {
	var s CPIStack
	s[CauseCommit] = 50
	s[CauseUncached] = 30
	s[CauseDCache] = 20
	out := s.Format()
	if !strings.Contains(out, "100 cycles") {
		t.Errorf("missing total:\n%s", out)
	}
	// Commit first, then stalls in descending order; zero buckets absent.
	ci := strings.Index(out, "commit")
	ui := strings.Index(out, "uncached-drain")
	di := strings.Index(out, "dcache")
	if ci < 0 || ui < 0 || di < 0 || !(ci < ui && ui < di) {
		t.Errorf("bucket order wrong (commit=%d uncached=%d dcache=%d):\n%s", ci, ui, di, out)
	}
	if strings.Contains(out, "tlb-walk") {
		t.Errorf("zero bucket rendered:\n%s", out)
	}
	if !strings.Contains(out, "50.0%") || !strings.Contains(out, "30.0%") {
		t.Errorf("percentages wrong:\n%s", out)
	}
}

func TestCPIStackFormatEmpty(t *testing.T) {
	var s CPIStack
	if out := s.Format(); !strings.Contains(out, "0 cycles") {
		t.Errorf("empty stack format:\n%s", out)
	}
}

func TestCPIStackMarshalJSON(t *testing.T) {
	var s CPIStack
	s[CauseCommit] = 5
	s[CauseMembar] = 2
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]uint64
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("not a JSON object: %v\n%s", err, data)
	}
	if len(m) != int(NumCauses) {
		t.Errorf("got %d buckets, want all %d (stable schema)", len(m), NumCauses)
	}
	if m["commit"] != 5 || m["membar"] != 2 || m["tlb-walk"] != 0 {
		t.Errorf("bucket values wrong: %v", m)
	}
}

func TestStallCauseString(t *testing.T) {
	if CauseCommit.String() != "commit" || CauseCSB.String() != "csb-busy" {
		t.Error("cause names wrong")
	}
	if got := StallCause(200).String(); got != "cause-200" {
		t.Errorf("out-of-range cause = %q", got)
	}
}

func TestInstEventSpan(t *testing.T) {
	e := InstEvent{Fetch: 10, Dispatch: 12, Issue: 14, Complete: 20, Retire: 25}
	if s, r := e.Span(); s != 10 || r != 25 {
		t.Errorf("Span = %d..%d, want 10..25", s, r)
	}
	// Retire-executed ops have no issue stamp; zero stamps are skipped.
	e2 := InstEvent{Dispatch: 5, Retire: 9}
	if s, r := e2.Span(); s != 5 || r != 9 {
		t.Errorf("Span = %d..%d, want 5..9", s, r)
	}
}

// TestPerfettoRoundTrip checks that the exported document is valid JSON in
// the Chrome trace-event shape Perfetto loads, and that instruction, bus
// and counter events all survive the trip.
func TestPerfettoRoundTrip(t *testing.T) {
	p := NewPerfetto()
	p.AddInst(InstEvent{Seq: 1, PC: 0x1000, Disasm: "stx %o0, [%o1]",
		Fetch: 2, Dispatch: 4, Retire: 9, IsMem: true, Addr: 0x4000_0000})
	p.AddInst(InstEvent{Seq: 2, PC: 0x1004, Disasm: "halt", Retire: 9})
	p.AddBus(BusEvent{Start: 12, End: 30, Addr: 0x4000_0000, Size: 8, Write: true, IO: true})
	p.AddCounters(Sample{Cycle: 100, IPC: 0.5, BusBusyPct: 40})
	if p.Count() != 2 {
		t.Errorf("Count = %d, want 2", p.Count())
	}

	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   uint64         `json:"ts"`
			Dur  uint64         `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	byPh := map[string]int{}
	for _, e := range doc.TraceEvents {
		byPh[e.Ph]++
	}
	if byPh["M"] != 2 {
		t.Errorf("want 2 process-name metadata events, got %d", byPh["M"])
	}
	if byPh["X"] != 3 {
		t.Errorf("want 3 slices (2 inst + 1 bus), got %d", byPh["X"])
	}
	if byPh["C"] == 0 {
		t.Error("no counter events")
	}
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" && e.Dur == 0 {
			t.Errorf("zero-duration slice %q would vanish in the UI", e.Name)
		}
		if e.Name == "stx %o0, [%o1]" {
			if e.Ts != 2 || e.Dur != 7 {
				t.Errorf("inst slice ts/dur = %d/%d, want 2/7", e.Ts, e.Dur)
			}
			if e.Args["va"] != "0x40000000" {
				t.Errorf("inst args missing va: %v", e.Args)
			}
		}
		if strings.HasPrefix(e.Name, "WR") && e.PID != 2 {
			t.Errorf("bus slice on pid %d, want the bus process", e.PID)
		}
	}
}

func TestPerfettoLaneRotation(t *testing.T) {
	p := NewPerfetto()
	p.Lanes = 4
	seen := map[int]bool{}
	for seq := uint64(0); seq < 8; seq++ {
		p.AddInst(InstEvent{Seq: seq, Retire: seq + 1})
	}
	var buf bytes.Buffer
	p.WriteTo(&buf)
	var doc struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			TID int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			seen[e.TID] = true
		}
	}
	if len(seen) != 4 {
		t.Errorf("instructions spread over %d lanes, want 4", len(seen))
	}
}

func TestMetricsWriterJSONL(t *testing.T) {
	var buf bytes.Buffer
	w := NewMetricsWriter(&buf, FormatJSONL)
	for i := 0; i < 3; i++ {
		if err := w.Write(Sample{Cycle: uint64(10000 * (i + 1)), Retired: 100, IPC: 0.01}); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 3 {
		t.Errorf("Count = %d, want 3", w.Count())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	for _, line := range lines {
		var s Sample
		if err := json.Unmarshal([]byte(line), &s); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		if s.Retired != 100 {
			t.Errorf("retired = %d, want 100", s.Retired)
		}
	}
}

func TestMetricsWriterCSV(t *testing.T) {
	var buf bytes.Buffer
	w := NewMetricsWriter(&buf, FormatCSV)
	w.Write(Sample{Cycle: 10000, Retired: 42, IPC: 0.0042})
	w.Write(Sample{Cycle: 20000, Retired: 43})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want header + 2 records:\n%s", len(lines), buf.String())
	}
	header := strings.Split(lines[0], ",")
	record := strings.Split(lines[1], ",")
	if len(header) != len(record) {
		t.Errorf("header has %d columns, record %d", len(header), len(record))
	}
	if header[0] != "cycle" || !strings.HasPrefix(lines[1], "10000,") {
		t.Errorf("unexpected CSV:\n%s", buf.String())
	}
}

func TestFormatPipeline(t *testing.T) {
	out := FormatPipeline([]InstEvent{
		{Seq: 1, PC: 0x1000, Disasm: "add %o0, 1, %o0", Fetch: 1, Dispatch: 3, Issue: 4, Complete: 5, Retire: 6},
		{Seq: 2, PC: 0x1004, Disasm: "halt", Fetch: 1, Dispatch: 3, Retire: 7},
	})
	for _, want := range []string{"add %o0, 1, %o0", "halt", "F", "D", "I", "C", "R"} {
		if !strings.Contains(out, want) {
			t.Errorf("diagram missing %q:\n%s", want, out)
		}
	}
	if FormatPipeline(nil) != "(no instructions retired)\n" {
		t.Error("empty diagram")
	}
}

func TestFormatPipelineClipsWideWindows(t *testing.T) {
	out := FormatPipeline([]InstEvent{
		{Seq: 1, Fetch: 1, Retire: 2},
		{Seq: 2, Fetch: 5000, Retire: 5010},
	})
	for _, line := range strings.Split(out, "\n") {
		if len(line) > 200 {
			t.Errorf("line not clipped (%d cols): %q...", len(line), line[:60])
		}
	}
}
