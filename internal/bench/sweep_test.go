package bench

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"csbsim/internal/mem"
	"csbsim/internal/obs"
)

func TestSweepPreservesOrder(t *testing.T) {
	points := make([]int, 100)
	for i := range points {
		points[i] = i
	}
	for _, workers := range []int{1, 3, 8, 200} {
		got, err := Sweep(points, workers, func(p int) (int, error) {
			return p * p, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(points) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(points))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// The reported error must be the lowest-index failure even when a
// higher-index point fails first in wall-clock time.
func TestSweepReportsLowestIndexError(t *testing.T) {
	points := make([]int, 64)
	for i := range points {
		points[i] = i
	}
	_, err := Sweep(points, 8, func(p int) (int, error) {
		switch p {
		case 10:
			time.Sleep(20 * time.Millisecond)
			return 0, fmt.Errorf("slow failure at point %d", p)
		case 40:
			return 0, fmt.Errorf("fast failure at point %d", p)
		}
		return p, nil
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if !strings.Contains(err.Error(), "point 10") {
		t.Errorf("error = %q, want the point-10 failure", err)
	}
}

func TestSweepEmptyAndWorkerClamp(t *testing.T) {
	got, err := Sweep(nil, 4, func(p int) (int, error) { return p, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("empty sweep = (%v, %v)", got, err)
	}
	// Zero/negative workers fall back to a sane default instead of hanging.
	got, err = Sweep([]int{1, 2, 3}, 0, func(p int) (int, error) { return p + 1, nil })
	if err != nil || !reflect.DeepEqual(got, []int{2, 3, 4}) {
		t.Fatalf("workers=0 sweep = (%v, %v)", got, err)
	}
}

// A parallel figure run must be byte-identical to the sequential one: the
// sweep only distributes points, it never reorders or perturbs them.
func TestParallelFigureMatchesSequential(t *testing.T) {
	prev := Workers()
	defer SetWorkers(prev)

	SetWorkers(1)
	seq, err := Figure3BlockSize()
	if err != nil {
		t.Fatal(err)
	}
	SetWorkers(8)
	par, err := Figure3BlockSize()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("parallel figure differs from sequential:\nseq: %+v\npar: %+v", seq, par)
	}
}

// instrumentedReport runs the store-bandwidth workload on a fresh machine
// with observability hooks attached and renders everything deterministic
// about the run — full stats, retire-event count, and the metrics stream —
// as one string for bit-for-bit comparison.
func instrumentedReport(csb, doubleBuf bool) (string, error) {
	p := DefaultParams()
	kind := mem.KindUncached
	if csb {
		p.Scheme = SchemeCSB
		kind = mem.KindCombining
	}
	p.DoubleBufferedCSB = doubleBuf
	m, err := p.Build()
	if err != nil {
		return "", err
	}
	var metrics bytes.Buffer
	if err := m.AttachMetrics(obs.NewMetricsWriter(&metrics, obs.FormatCSV), 5000); err != nil {
		return "", err
	}
	var retired int
	m.AttachInstEvents(func(obs.InstEvent) { retired++ })
	m.MapRange(IOBase, 1<<20, kind)
	prog, err := m.LoadSource("concurrency", StoreBandwidthProgram(1<<16, p.LineSize, csb))
	if err != nil {
		return "", err
	}
	m.WarmProgram(prog)
	if err := m.Run(50_000_000); err != nil {
		return "", err
	}
	if err := m.Drain(1_000_000); err != nil {
		return "", err
	}
	m.FlushMetrics()
	return fmt.Sprintf("%+v\nretire events: %d\n%s", m.Stats(), retired, metrics.String()), nil
}

// Machines share no mutable state, so N of them running in different
// goroutines must produce exactly the reports they produce sequentially.
// Run under -race this also exercises the isolation claim the sweep engine
// rests on, with the observability hooks attached.
func TestConcurrentMachinesMatchSequential(t *testing.T) {
	cases := []struct{ csb, dbl bool }{
		{false, false}, {true, false}, {true, true}, {false, true},
	}
	want := make([]string, len(cases))
	for i, cse := range cases {
		r, err := instrumentedReport(cse.csb, cse.dbl)
		if err != nil {
			t.Fatalf("sequential case %d: %v", i, err)
		}
		want[i] = r
	}

	got := make([]string, len(cases))
	errs := make([]error, len(cases))
	var wg sync.WaitGroup
	for i, cse := range cases {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got[i], errs[i] = instrumentedReport(cse.csb, cse.dbl)
		}()
	}
	wg.Wait()
	for i := range cases {
		if errs[i] != nil {
			t.Fatalf("concurrent case %d: %v", i, errs[i])
		}
		if got[i] != want[i] {
			t.Errorf("case %d: concurrent report differs from sequential\nseq:\n%s\npar:\n%s",
				i, want[i], got[i])
		}
	}
}
