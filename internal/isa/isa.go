// Package isa defines SV9L, a SPARC-V9-flavored 64-bit RISC instruction set
// used by the simulator. It mirrors the subset of SPARC V9 that the paper's
// microbenchmarks rely on: 32 integer registers (r0 hardwired to zero) with
// the SPARC g/o/l/i aliases, 32 double-precision floating-point registers,
// integer condition codes, doubleword loads and stores, the atomic swap
// instruction (which doubles as the CSB conditional flush when its target
// address lies in uncached-combining space), and memory barriers.
//
// Deliberate simplifications relative to real SPARC V9 (documented in
// DESIGN.md): no branch delay slots, no register windows, a fixed 32-bit
// custom encoding, and a 64-bit swap. None of these affect the quantities
// the paper measures.
package isa

import "fmt"

// Reg names an integer register. R0 always reads as zero; writes to it are
// discarded.
type Reg uint8

// FReg names a 64-bit floating-point register.
type FReg uint8

// NumRegs and NumFRegs size the architectural register files.
const (
	NumRegs  = 32
	NumFRegs = 32
)

// Op enumerates SV9L opcodes. The zero value is OpInvalid so that
// zero-initialized memory decodes to an illegal instruction rather than a
// silent no-op.
type Op uint8

const (
	OpInvalid Op = iota

	// Integer ALU, register form: rd = rs1 op rs2.
	OpADD
	OpSUB
	OpAND
	OpOR
	OpXOR
	OpSLL
	OpSRL
	OpSRA
	OpMUL

	// Integer ALU, immediate form: rd = rs1 op imm.
	OpADDI
	OpSUBI
	OpANDI
	OpORI
	OpXORI
	OpSLLI
	OpSRLI
	OpSRAI
	OpMULI

	// Condition-code setting variants (update icc from the 64-bit result).
	OpADDCC
	OpSUBCC
	OpANDCC
	OpORCC
	OpADDCCI
	OpSUBCCI
	OpANDCCI
	OpORCCI

	// OpLUI loads imm19<<13 into rd (upper bits of a 32-bit constant).
	OpLUI

	// Control transfer. OpBR branches on Cond; OpJAL stores the return
	// address in rd and jumps PC-relative; OpJALR jumps to rs1+imm.
	OpBR
	OpJAL
	OpJALR

	// Memory, immediate addressing [rs1+imm]. Loads zero-extend.
	OpLDB
	OpLDH
	OpLDW
	OpLDX
	OpSTB
	OpSTH
	OpSTW
	OpSTX
	OpLDF // load 8-byte double into FReg(rd)
	OpSTF // store FReg(rd) as 8 bytes

	// OpSWAP atomically exchanges rd with the 64-bit word at [rs1+imm].
	// When the effective address lies in uncached-combining space this is
	// the CSB conditional flush: rd supplies the expected hit count and
	// receives the old register value on success or 0 on failure.
	OpSWAP

	// OpMEMBAR orders memory: it retires only once the write buffer and
	// the uncached buffer have drained.
	OpMEMBAR

	// Floating point (double precision).
	OpFADD
	OpFSUB
	OpFMUL
	OpFDIV
	OpFMOV
	OpFNEG
	OpFITOD // frd = float64(rs1) — reads the integer file
	OpFDTOI // rd = int64(frs1) — writes the integer file
	OpFCMP  // sets icc from comparing frs1, frs2
	OpMOVR2F
	OpMOVF2R

	// System / privileged.
	OpRDPR // rd = privileged register imm
	OpWRPR // privileged register imm = rs1
	OpIRET // return from interrupt: PC = EPC, re-enable interrupts
	OpTRAP // software trap with code imm
	OpHALT // stop the processor
	OpNOP

	numOps
)

// PR enumerates privileged registers accessed via RDPR/WRPR.
type PR uint8

const (
	PRPID     PR = iota // current process ID (also the TLB ASID)
	PRERPC              // exception return PC
	PRIVEC              // interrupt vector address
	PRSTATUS            // bit 0: interrupts enabled
	PRCYCLE             // free-running cycle counter (read-only)
	PRSCRATCH           // kernel scratch register
	PRCAUSE             // cause of the most recent trap
	NumPRs
)

// Trap causes written to PRCAUSE.
const (
	CauseNone     = 0
	CauseTimer    = 1
	CauseSoftware = 2 // OpTRAP; imm is in bits [15:8]
	CauseIllegal  = 3
	CauseFault    = 4 // memory translation failure
)

// Inst is a decoded instruction. The assembler produces these; Encode packs
// them into 32-bit words and Decode unpacks them.
type Inst struct {
	Op   Op
	Rd   Reg // integer or FP destination depending on Op
	Rs1  Reg
	Rs2  Reg
	Cond Cond  // for OpBR
	Imm  int64 // immediate, branch offset (in instructions), or PR number
}

// Class groups opcodes by the pipeline resources they use.
type Class uint8

const (
	ClassInt    Class = iota // integer ALU, 1-cycle
	ClassIntMul              // integer multiply, longer latency
	ClassBranch              // resolved on an integer ALU
	ClassLoad
	ClassStore
	ClassSwap // atomic read-modify-write
	ClassFPU
	ClassBarrier // MEMBAR
	ClassSystem  // RDPR/WRPR/IRET/TRAP/HALT/NOP
)

type opInfo struct {
	name  string
	class Class
	// hasImm reports whether the immediate field is meaningful.
	hasImm bool
	// fp marks which register fields name FP registers.
	fpRd, fpRs1, fpRs2 bool
}

var opTable = [numOps]opInfo{
	OpInvalid: {name: "invalid", class: ClassSystem},

	OpADD: {name: "add", class: ClassInt},
	OpSUB: {name: "sub", class: ClassInt},
	OpAND: {name: "and", class: ClassInt},
	OpOR:  {name: "or", class: ClassInt},
	OpXOR: {name: "xor", class: ClassInt},
	OpSLL: {name: "sll", class: ClassInt},
	OpSRL: {name: "srl", class: ClassInt},
	OpSRA: {name: "sra", class: ClassInt},
	OpMUL: {name: "mul", class: ClassIntMul},

	OpADDI: {name: "addi", class: ClassInt, hasImm: true},
	OpSUBI: {name: "subi", class: ClassInt, hasImm: true},
	OpANDI: {name: "andi", class: ClassInt, hasImm: true},
	OpORI:  {name: "ori", class: ClassInt, hasImm: true},
	OpXORI: {name: "xori", class: ClassInt, hasImm: true},
	OpSLLI: {name: "slli", class: ClassInt, hasImm: true},
	OpSRLI: {name: "srli", class: ClassInt, hasImm: true},
	OpSRAI: {name: "srai", class: ClassInt, hasImm: true},
	OpMULI: {name: "muli", class: ClassIntMul, hasImm: true},

	OpADDCC:  {name: "addcc", class: ClassInt},
	OpSUBCC:  {name: "subcc", class: ClassInt},
	OpANDCC:  {name: "andcc", class: ClassInt},
	OpORCC:   {name: "orcc", class: ClassInt},
	OpADDCCI: {name: "addcci", class: ClassInt, hasImm: true},
	OpSUBCCI: {name: "subcci", class: ClassInt, hasImm: true},
	OpANDCCI: {name: "andcci", class: ClassInt, hasImm: true},
	OpORCCI:  {name: "orcci", class: ClassInt, hasImm: true},

	OpLUI: {name: "lui", class: ClassInt, hasImm: true},

	OpBR:   {name: "br", class: ClassBranch, hasImm: true},
	OpJAL:  {name: "jal", class: ClassBranch, hasImm: true},
	OpJALR: {name: "jalr", class: ClassBranch, hasImm: true},

	OpLDB: {name: "ldb", class: ClassLoad, hasImm: true},
	OpLDH: {name: "ldh", class: ClassLoad, hasImm: true},
	OpLDW: {name: "ldw", class: ClassLoad, hasImm: true},
	OpLDX: {name: "ldx", class: ClassLoad, hasImm: true},
	OpSTB: {name: "stb", class: ClassStore, hasImm: true},
	OpSTH: {name: "sth", class: ClassStore, hasImm: true},
	OpSTW: {name: "stw", class: ClassStore, hasImm: true},
	OpSTX: {name: "stx", class: ClassStore, hasImm: true},
	OpLDF: {name: "ldf", class: ClassLoad, hasImm: true, fpRd: true},
	OpSTF: {name: "stf", class: ClassStore, hasImm: true, fpRd: true},

	OpSWAP:   {name: "swap", class: ClassSwap, hasImm: true},
	OpMEMBAR: {name: "membar", class: ClassBarrier},

	OpFADD:   {name: "faddd", class: ClassFPU, fpRd: true, fpRs1: true, fpRs2: true},
	OpFSUB:   {name: "fsubd", class: ClassFPU, fpRd: true, fpRs1: true, fpRs2: true},
	OpFMUL:   {name: "fmuld", class: ClassFPU, fpRd: true, fpRs1: true, fpRs2: true},
	OpFDIV:   {name: "fdivd", class: ClassFPU, fpRd: true, fpRs1: true, fpRs2: true},
	OpFMOV:   {name: "fmovd", class: ClassFPU, fpRd: true, fpRs1: true},
	OpFNEG:   {name: "fnegd", class: ClassFPU, fpRd: true, fpRs1: true},
	OpFITOD:  {name: "fitod", class: ClassFPU, fpRd: true},
	OpFDTOI:  {name: "fdtoi", class: ClassFPU, fpRs1: true},
	OpFCMP:   {name: "fcmpd", class: ClassFPU, fpRs1: true, fpRs2: true},
	OpMOVR2F: {name: "movr2f", class: ClassFPU, fpRd: true},
	OpMOVF2R: {name: "movf2r", class: ClassFPU, fpRs1: true},

	OpRDPR: {name: "rdpr", class: ClassSystem, hasImm: true},
	OpWRPR: {name: "wrpr", class: ClassSystem, hasImm: true},
	OpIRET: {name: "iret", class: ClassSystem},
	OpTRAP: {name: "trap", class: ClassSystem, hasImm: true},
	OpHALT: {name: "halt", class: ClassSystem},
	OpNOP:  {name: "nop", class: ClassSystem},
}

// Name returns the assembler mnemonic for op.
func (op Op) Name() string {
	if op >= numOps {
		return fmt.Sprintf("op(%d)", uint8(op))
	}
	return opTable[op].name
}

// Class reports the pipeline resource class of op.
func (op Op) Class() Class {
	if op >= numOps {
		return ClassSystem
	}
	return opTable[op].class
}

// HasImm reports whether op uses the immediate field.
func (op Op) HasImm() bool {
	if op >= numOps {
		return false
	}
	return opTable[op].hasImm
}

// FPRd, FPRs1 and FPRs2 report whether the respective register field of op
// names a floating-point register.
func (op Op) FPRd() bool  { return op < numOps && opTable[op].fpRd }
func (op Op) FPRs1() bool { return op < numOps && opTable[op].fpRs1 }
func (op Op) FPRs2() bool { return op < numOps && opTable[op].fpRs2 }

// IsMem reports whether op accesses memory.
func (op Op) IsMem() bool {
	switch op.Class() {
	case ClassLoad, ClassStore, ClassSwap:
		return true
	}
	return false
}

// MemBytes returns the access width in bytes for memory operations, or 0.
func (op Op) MemBytes() int {
	switch op {
	case OpLDB, OpSTB:
		return 1
	case OpLDH, OpSTH:
		return 2
	case OpLDW, OpSTW:
		return 4
	case OpLDX, OpSTX, OpLDF, OpSTF, OpSWAP:
		return 8
	}
	return 0
}

// IsStore reports whether op writes memory (swap both reads and writes and
// counts as a store for ordering purposes).
func (op Op) IsStore() bool {
	c := op.Class()
	return c == ClassStore || c == ClassSwap
}

// IsLoad reports whether op reads memory.
func (op Op) IsLoad() bool {
	c := op.Class()
	return c == ClassLoad || c == ClassSwap
}

// WritesIntReg reports whether the instruction produces an integer register
// result in Rd.
func (in *Inst) WritesIntReg() bool {
	switch in.Op.Class() {
	case ClassInt, ClassIntMul:
		return in.Rd != 0
	case ClassLoad:
		return !in.Op.FPRd() && in.Rd != 0
	case ClassSwap:
		return in.Rd != 0
	case ClassBranch:
		return (in.Op == OpJAL || in.Op == OpJALR) && in.Rd != 0
	case ClassFPU:
		return (in.Op == OpFDTOI || in.Op == OpMOVF2R) && in.Rd != 0
	case ClassSystem:
		return in.Op == OpRDPR && in.Rd != 0
	}
	return false
}

// WritesFPReg reports whether the instruction produces an FP register result.
func (in *Inst) WritesFPReg() bool {
	switch in.Op {
	case OpLDF, OpFADD, OpFSUB, OpFMUL, OpFDIV, OpFMOV, OpFNEG, OpFITOD, OpMOVR2F:
		return true
	}
	return false
}

// ReadsIntRs1 reports whether Rs1 names an integer source register.
func (in *Inst) ReadsIntRs1() bool {
	switch in.Op {
	case OpLUI, OpBR, OpJAL, OpIRET, OpTRAP, OpHALT, OpNOP, OpMEMBAR, OpRDPR:
		return false
	}
	if in.Op.FPRs1() {
		return false
	}
	return true
}

// ReadsIntRs2 reports whether Rs2 names an integer source register.
func (in *Inst) ReadsIntRs2() bool {
	if in.Op.HasImm() || in.Op.FPRs2() {
		return false
	}
	switch in.Op.Class() {
	case ClassInt, ClassIntMul:
		return true
	}
	return false
}

// ReadsRdAsSource reports whether the Rd field is actually a source operand
// (stores and swap read the register they name).
func (in *Inst) ReadsRdAsSource() bool {
	switch in.Op {
	case OpSTB, OpSTH, OpSTW, OpSTX, OpSWAP:
		return true
	case OpSTF:
		return true // FP source
	}
	return false
}

// IsBranch reports whether the instruction can redirect the PC.
func (in *Inst) IsBranch() bool { return in.Op.Class() == ClassBranch }

// IsUnconditional reports whether a branch always transfers control.
func (in *Inst) IsUnconditional() bool {
	switch in.Op {
	case OpJAL, OpJALR:
		return true
	case OpBR:
		return in.Cond == CondA
	}
	return false
}
