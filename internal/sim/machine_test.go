package sim

import (
	"strconv"
	"strings"
	"testing"

	"csbsim/internal/mem"
)

// runProgram builds a default machine, loads src and runs to halt.
func runProgram(t *testing.T, src string) *Machine {
	t.Helper()
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.LoadSource("test.s", src)
	if err != nil {
		t.Fatal(err)
	}
	m.WarmProgram(p)
	if err := m.Run(1_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	return m
}

func wantReg(t *testing.T, m *Machine, name string, want uint64) {
	t.Helper()
	got, err := m.Reg(name)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("%s = %d (%#x), want %d (%#x)", name, got, got, want, want)
	}
}

func TestArithmetic(t *testing.T) {
	m := runProgram(t, `
	mov 6, %g1
	mov 7, %g2
	add %g1, %g2, %g3      ! 13
	sub %g3, 3, %g4        ! 10
	mul %g1, %g2, %g5      ! 42
	sll %g1, 4, %g6        ! 96
	xor %g5, %g5, %g7      ! 0
	halt
`)
	wantReg(t, m, "%g3", 13)
	wantReg(t, m, "%g4", 10)
	wantReg(t, m, "%g5", 42)
	wantReg(t, m, "%g6", 96)
	wantReg(t, m, "%g7", 0)
}

func TestCountingLoop(t *testing.T) {
	m := runProgram(t, `
	clr %g1                ! sum
	mov 10, %g2            ! counter
loop:
	add %g1, %g2, %g1
	subcc %g2, 1, %g2
	bnz loop
	halt
`)
	wantReg(t, m, "%g1", 55)
	s := m.Stats()
	if s.CPU.Branches < 10 {
		t.Errorf("branches = %d, want >= 10", s.CPU.Branches)
	}
}

func TestBranchConditions(t *testing.T) {
	m := runProgram(t, `
	mov 5, %g1
	cmp %g1, 5
	bz eq
	mov 99, %g2
	halt
eq:	mov 1, %g2
	cmp %g1, 10
	bl less
	mov 99, %g3
	halt
less:	mov 2, %g3
	cmp %g1, 3
	bg greater
	mov 99, %g4
	halt
greater: mov 3, %g4
	halt
`)
	wantReg(t, m, "%g2", 1)
	wantReg(t, m, "%g3", 2)
	wantReg(t, m, "%g4", 3)
}

func TestUnsignedConditions(t *testing.T) {
	m := runProgram(t, `
	mov -1, %g1            ! unsigned max
	cmp %g1, 1
	bgu big
	mov 99, %g2
	halt
big:	mov 1, %g2
	halt
`)
	wantReg(t, m, "%g2", 1)
}

func TestMemoryLoadStore(t *testing.T) {
	m := runProgram(t, `
	.equ BUF, 0x20000
	set BUF, %o1
	set 0x1234, %g1
	stx %g1, [%o1]
	stw %g1, [%o1+8]
	sth %g1, [%o1+12]
	stb %g1, [%o1+14]
	ldx [%o1], %g2
	ldw [%o1+8], %g3
	ldh [%o1+12], %g4
	ldb [%o1+14], %g5
	halt
`)
	wantReg(t, m, "%g2", 0x1234)
	wantReg(t, m, "%g3", 0x1234)
	wantReg(t, m, "%g4", 0x1234)
	wantReg(t, m, "%g5", 0x34)
}

func TestStoreLoadOrdering(t *testing.T) {
	// A load must see an older store to the same address even when both
	// are in flight simultaneously.
	m := runProgram(t, `
	.equ BUF, 0x20000
	set BUF, %o1
	mov 11, %g1
	stx %g1, [%o1]
	ldx [%o1], %g2
	mov 22, %g3
	stx %g3, [%o1]
	ldx [%o1], %g4
	halt
`)
	wantReg(t, m, "%g2", 11)
	wantReg(t, m, "%g4", 22)
}

func TestFunctionCall(t *testing.T) {
	m := runProgram(t, `
	mov 20, %o0
	call double
	mov %o0, %g1
	call double
	mov %o0, %g2
	halt
double:
	add %o0, %o0, %o0
	ret
`)
	wantReg(t, m, "%g1", 40)
	wantReg(t, m, "%g2", 80)
}

func TestFloatingPoint(t *testing.T) {
	m := runProgram(t, `
	.org 0x1000
a:	.double 1.5
b:	.double 2.25
sum:	.double 0
	.entry main
main:
	set a, %o1
	ldd [%o1], %f0
	ldd [%o1+8], %f2
	faddd %f0, %f2, %f4    ! 3.75
	fmuld %f0, %f2, %f6    ! 3.375
	std %f4, [%o1+16]
	ldx [%o1+16], %g1
	mov 10, %g5
	fitod %g5, %f8
	fdtoi %f8, %g2
	halt
`)
	// 3.75 = 0x400E000000000000
	wantReg(t, m, "%g1", 0x400E000000000000)
	wantReg(t, m, "%g2", 10)
}

func TestConsoleTraps(t *testing.T) {
	m := runProgram(t, `
	mov 'H', %o0
	trap 1
	mov 'i', %o0
	trap 1
	mov 32, %o0
	trap 1
	mov 42, %o0
	trap 2
	halt
`)
	if got := m.Console(); got != "Hi 42" {
		t.Errorf("console = %q, want %q", got, "Hi 42")
	}
}

func TestDataHazardChain(t *testing.T) {
	// Long dependency chain: result correctness under renaming.
	m := runProgram(t, `
	mov 1, %g1
	add %g1, %g1, %g1
	add %g1, %g1, %g1
	add %g1, %g1, %g1
	add %g1, %g1, %g1
	add %g1, %g1, %g1
	halt
`)
	wantReg(t, m, "%g1", 32)
}

func TestMispredictionRecovery(t *testing.T) {
	// Alternating taken/not-taken branches defeat the 2-bit predictor;
	// results must still be correct.
	m := runProgram(t, `
	clr %g1                ! i
	clr %g2                ! evens
	clr %g3                ! odds
loop:
	andcc %g1, 1, %g0
	bnz odd
	add %g2, 1, %g2
	ba next
odd:
	add %g3, 1, %g3
next:
	add %g1, 1, %g1
	cmp %g1, 20
	bl loop
	halt
`)
	wantReg(t, m, "%g2", 10)
	wantReg(t, m, "%g3", 10)
	if m.Stats().CPU.Mispredicts == 0 {
		t.Error("expected some mispredictions")
	}
	if m.Stats().CPU.Squashed == 0 {
		t.Error("expected squashed instructions")
	}
}

func TestUncachedStoreGoesToBus(t *testing.T) {
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m.MapRange(0x4000_0000, mem.PageSize, mem.KindUncached)
	if _, err := m.LoadSource("t.s", `
	set 0x40000000, %o1
	mov 7, %g1
	stx %g1, [%o1]
	stx %g1, [%o1+8]
	membar
	halt
`); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(100000); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.CPU.UncachedStores != 2 {
		t.Errorf("uncached stores = %d, want 2", s.CPU.UncachedStores)
	}
	if s.Bus.Writes < 2 {
		t.Errorf("bus writes = %d, want >= 2", s.Bus.Writes)
	}
	// Membar guaranteed the data reached memory before halt.
	if got := m.RAM.ReadUint(0x4000_0000, 8); got != 7 {
		t.Errorf("uncached data = %d, want 7", got)
	}
}

func TestUncachedLoadBlocking(t *testing.T) {
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m.MapRange(0x4000_0000, mem.PageSize, mem.KindUncached)
	m.RAM.WriteUint(0x4000_0010, 8, 0xabcd)
	if _, err := m.LoadSource("t.s", `
	set 0x40000000, %o1
	ldx [%o1+16], %g1
	halt
`); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(100000); err != nil {
		t.Fatal(err)
	}
	wantReg(t, m, "%g1", 0xabcd)
	if m.Stats().CPU.UncachedLoads != 1 {
		t.Error("uncached load not counted")
	}
}

// The paper's own code listing: 8 combining stores, conditional flush,
// compare, retry loop. Single process: flush must succeed first try.
func TestPaperCSBSequence(t *testing.T) {
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m.MapRange(0x4000_0000, mem.PageSize, mem.KindCombining)
	if _, err := m.LoadSource("csb.s", `
	set 0x40000000, %o1
	! seed FP registers with recognizable doubles
	mov 101, %g1
	movr2f %g1, %f0
	mov 102, %g1
	movr2f %g1, %f2
RETRY:
	set 8, %l4             ! expected value
	std %f0, [%o1]
	std %f2, [%o1+8]
	std %f0, [%o1+16]
	std %f2, [%o1+24]
	std %f0, [%o1+32]
	std %f2, [%o1+40]
	std %f0, [%o1+48]
	std %f2, [%o1+56]
	swap [%o1], %l4        ! conditional flush
	cmp %l4, 8             ! compare values
	bnz RETRY              ! retry on failure
	halt
`); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if err := m.Drain(10000); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.CPU.CSBStores != 8 {
		t.Errorf("CSB stores = %d, want 8", s.CPU.CSBStores)
	}
	if s.CPU.CSBFlushes != 1 || s.CPU.CSBFlushFails != 0 {
		t.Errorf("flushes = %d (fails %d), want 1 clean flush", s.CPU.CSBFlushes, s.CPU.CSBFlushFails)
	}
	if s.CSB.Bursts != 1 {
		t.Errorf("CSB bursts = %d, want 1", s.CSB.Bursts)
	}
	// Flush succeeded: %l4 kept its value 8.
	wantReg(t, m, "%l4", 8)
	// Data landed in the target line.
	if got := m.RAM.ReadUint(0x4000_0000, 8); got != 101 {
		t.Errorf("line[0] = %d, want 101", got)
	}
	if got := m.RAM.ReadUint(0x4000_0008, 8); got != 102 {
		t.Errorf("line[8] = %d, want 102", got)
	}
}

// Lock acquire/release with swap on a cached address — the conventional
// scheme of figure 5.
func TestSwapLock(t *testing.T) {
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.LoadSource("lock.s", `
	.org 0x1000
lock:	.dword 0
	.entry main
main:
	set lock, %o1
acquire:
	mov 1, %l4
	swap [%o1], %l4
	tst %l4
	bnz acquire            ! already held → spin
	! critical section
	mov 77, %g1
	membar
	clr %g2
	stx %g2, [%o1]         ! release
	ldx [%o1], %g3         ! observe released lock
	halt
`); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	wantReg(t, m, "%g1", 77)
	wantReg(t, m, "%g3", 0)
	if m.Stats().CPU.Swaps != 1 {
		t.Errorf("swaps = %d, want 1", m.Stats().CPU.Swaps)
	}
}

func TestRDPRAndWRPR(t *testing.T) {
	m := runProgram(t, `
	mov 5, %g1
	wrpr %g1, %scratch
	rdpr %scratch, %g2
	rdpr %cycle, %g3
	halt
`)
	wantReg(t, m, "%g2", 5)
	if got, _ := m.Reg("%g3"); got == 0 {
		t.Error("cycle counter read as 0")
	}
}

func TestMemoryFaultHalts(t *testing.T) {
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.LoadSource("bad.s", `
	set 0x7f000000, %o1    ! unmapped
	ldx [%o1], %g1
	halt
`); err != nil {
		t.Fatal(err)
	}
	err = m.Run(100000)
	if err == nil || !strings.Contains(err.Error(), "fault") {
		t.Errorf("expected fault error, got %v", err)
	}
}

func TestWrongPathFaultHarmless(t *testing.T) {
	// A mispredicted path briefly dereferences a garbage pointer; the
	// fault must be squashed, not taken.
	m := runProgram(t, `
	clr %g5
	mov 10, %g2
loop:
	cmp %g5, %g2
	bge done               ! predicted taken eventually mispredicts
	! body touches memory legitimately
	set 0x20000, %o1
	add %o1, %g5, %o1
	ldb [%o1], %g1
	add %g5, 1, %g5
	ba loop
done:
	mov 1, %g7
	halt
`)
	wantReg(t, m, "%g7", 1)
}

func TestIPCReasonable(t *testing.T) {
	// Independent ALU ops should sustain IPC well above 1 on a 4-wide
	// machine with 2 integer units (ILP-limited to ~2).
	var body strings.Builder
	for i := 0; i < 400; i++ {
		body.WriteString("\tadd %g1, 1, %g1\n\tadd %g2, 1, %g2\n")
	}
	m := runProgram(t, body.String()+"\thalt\n")
	s := m.Stats()
	ipc := s.CPU.IPC()
	if ipc < 1.2 {
		t.Errorf("IPC = %.2f, want >= 1.2 (2 int ALUs)", ipc)
	}
	wantReg(t, m, "%g1", 400)
	wantReg(t, m, "%g2", 400)
}

func TestTLBMissCostsCycles(t *testing.T) {
	run := func(stride int, pages int) uint64 {
		m, err := New(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		m.MapRange(0x100000, uint64(pages+1)*mem.PageSize, mem.KindCached)
		src := `
	set 0x100000, %o1
	clr %g1
	mov ` + itoa(pages) + `, %g2
loop:
	ldb [%o1], %g3
	add %g1, %g3, %g1
	set ` + itoa(stride) + `, %g4
	add %o1, %g4, %o1
	subcc %g2, 1, %g2
	bnz loop
	halt
`
		if _, err := m.LoadSource("tlb.s", src); err != nil {
			t.Fatal(err)
		}
		if err := m.Run(10_000_000); err != nil {
			t.Fatal(err)
		}
		return m.Stats().TLBMisses
	}
	densePages := run(8, 200)     // sequential bytes: few TLB misses
	sparsePages := run(4096, 200) // one page per access: many misses
	if sparsePages <= densePages {
		t.Errorf("TLB misses: sparse %d <= dense %d", sparsePages, densePages)
	}
}

func itoa(v int) string { return strconv.Itoa(v) }
