// Package device provides the memory-mapped I/O devices used by the
// examples and the PIO/DMA crossover experiment: a network interface in
// the style the paper cites — a Medusa-like transmit descriptor FIFO that
// a single store can push (§2), an Atoll-like DMA engine whose transfer is
// started by one descriptor write packing address and length (§2), and a
// burst-capable packet buffer so CSB line bursts land directly in the
// device (§3.3).
package device

import (
	"fmt"

	"csbsim/internal/bus"
	"csbsim/internal/mem"
	"csbsim/internal/obs/counters"
)

// NIC register layout (offsets from the device base).
const (
	// RegTxFIFO pushes a transmit descriptor: bits [47:0] packet buffer
	// offset, bits [63:48] length. One uncached store both enqueues the
	// descriptor and starts transmission — no locking required because a
	// bus transaction is atomic.
	RegTxFIFO = 0x000
	// RegDMA starts a DMA transfer from main memory into the packet
	// buffer: bits [47:0] source physical address, bits [63:48] length.
	// The NIC fetches the data over the system bus and then transmits.
	RegDMA = 0x008
	// RegStatus reads NIC state: bit 0 = TX busy, bit 1 = FIFO full,
	// bits [31:16] = dropped-descriptor count (mod 2^16), bits [63:32] =
	// packets sent. The drop counter is how software detects that a push
	// landed in a full (or backpressured) FIFO and must be retried: read
	// the counter, push, re-read — if it advanced, the descriptor was
	// dropped.
	RegStatus = 0x010
	// RegIntAck clears a pending completion interrupt.
	RegIntAck = 0x018
	// RegRxPop pops one 8-byte word from the receive queue — a load with
	// a side effect, the paper's §2 example of why I/O loads must execute
	// exactly once and never speculatively. Reading it when the queue is
	// empty returns RxEmpty.
	RegRxPop = 0x020
	// RegRxCount reads the number of words waiting in the receive queue
	// (no side effect).
	RegRxCount = 0x028
	// RegTxDest selects the destination node for subsequent transmit
	// descriptors on a multi-node fabric: write a node index to steer the
	// next packets there, or TxDestAuto to return to the topology's default
	// route. The register is sticky (it applies to every descriptor pushed
	// until rewritten) and readable. Single-wire setups ignore it.
	RegTxDest = 0x030
	// PacketBufBase is where the on-board packet buffer begins; the CSB
	// (or uncached stores) write packet payloads here by PIO.
	PacketBufBase = 0x1000
	// PacketBufSize is the size of the on-board packet buffer.
	PacketBufSize = 0x1000
	// RegionSize is the total claimed address range.
	RegionSize = PacketBufBase + PacketBufSize
)

// TxDestAuto is the RegTxDest value selecting the topology default route
// (also what the register holds at reset).
const TxDestAuto = 0xffff

// Packet is one transmitted packet, as observed on the simulated wire.
type Packet struct {
	Data     []byte
	SentAt   uint64 // bus cycle the transmission completed
	ViaDMA   bool
	SrcAddr  uint64 // DMA source, 0 for PIO
	FIFOPush uint64 // bus cycle the descriptor arrived
	// Dest is the destination node index latched from RegTxDest when the
	// descriptor was pushed, or -1 for the topology default route.
	Dest int
	// JID is the sender-side descriptor journey ID (0 when untraced) — a
	// tracing side channel carried with the packet so the cluster wire
	// tracer can join the cross-node span to the sender's NIC hops. It is
	// never guest-visible and does not affect simulated timing.
	JID uint64
}

// Config parameterizes the NIC.
type Config struct {
	// FIFODepth bounds queued transmit descriptors (hardware FIFO).
	FIFODepth int
	// WireCyclesPerByte models serialization onto the link, in bus
	// cycles per byte (0 = infinitely fast wire).
	WireCyclesPerByte int
	// DMABurst is the DMA engine's per-transaction read size in bytes.
	DMABurst int
}

// DefaultConfig returns a 16-deep FIFO NIC with 64-byte DMA bursts and a
// fast wire.
func DefaultConfig() Config {
	return Config{FIFODepth: 16, WireCyclesPerByte: 0, DMABurst: 64}
}

type txDesc struct {
	offset uint64
	length int
	pushed uint64
	viaDMA bool
	srcPA  uint64
	jid    uint64 // journey ID, 0 when untraced
	dest   int    // destination node index, -1 = topology default
}

type dmaState int

const (
	dmaIdle dmaState = iota
	dmaReading
)

// NIC is the simulated network interface. It implements mem.Target for
// register/packet-buffer access and sim.Device for bus mastering (DMA).
type NIC struct {
	cfg  Config
	base uint64

	packetBuf []byte
	fifo      []txDesc
	sending   bool
	sendDone  uint64 // bus cycle current transmission finishes
	cur       txDesc

	dma       dmaState
	dmaSrc    uint64
	dmaLen    int
	dmaOff    int
	dmaInFly  bool
	dmaPushed uint64

	intPending bool
	// Interrupt, if set, is invoked on send completion (level-style; the
	// kernel acks via RegIntAck).
	Interrupt func()

	rxQueue []uint64
	rxPops  uint64
	// rxHighWater is the deepest the RX queue has ever been (in words) —
	// the cluster-level backpressure signal the telemetry dashboard and
	// the counter registry surface.
	rxHighWater int
	// rxSpans tracks packet boundaries inside the RX queue for drain
	// tracing (only populated when rxDrained is set): head span's word
	// count decrements per destructive pop, firing rxDrained at zero.
	rxSpans   []rxSpan
	rxSpanPos int // index of the head span (compacted when fully drained)

	lastCycle uint64 // most recent bus cycle seen in TickBus
	packets   []Packet
	dropped   uint64

	// txDest is the destination node index latched from RegTxDest and
	// stamped onto every descriptor at push time (-1 = default route).
	txDest int

	// err is the first out-of-range guest access (nil if none); surfaced
	// by sim.Machine.Run as a typed failure instead of a panic.
	err      error
	badDescs uint64

	// Fault injection (SetFaultHooks): stallLeft freezes the whole device
	// (DMA, transmission, interrupt delivery) for a latency burst; bpLeft
	// is an open backpressure window during which descriptor pushes are
	// refused and the status register advertises a full FIFO.
	stallLeft int
	bpLeft    int
	stallHook func() int
	bpHook    func() int

	// Journey tracing (SetJourneyHooks), all optional — plain func hooks
	// in the SetFaultHooks idiom, so the machine can wire the tracer
	// without this package knowing about it. Calls must not allocate.
	descQueued func(offset uint64, length int, viaDMA bool) uint64
	txStarted  func(id uint64)
	txDone     func(id uint64)
	// rxDrained fires when the last word of a span delivered via
	// DeliverTraced is popped by software (SetRxDrainHook).
	rxDrained func(id uint64)
}

// rxSpan is one traced packet's word span inside the RX queue.
type rxSpan struct {
	id    uint64
	words int
}

// SetJourneyHooks installs the descriptor-journey hooks (any may be
// nil): descQueued fires when a descriptor is accepted into the FIFO and
// returns its journey ID, txStarted when its transmission begins, txDone
// when the packet has fully serialized onto the wire.
func (n *NIC) SetJourneyHooks(descQueued func(offset uint64, length int, viaDMA bool) uint64,
	txStarted, txDone func(id uint64)) {
	n.descQueued = descQueued
	n.txStarted = txStarted
	n.txDone = txDone
}

// SetRxDrainHook installs the RX drain hook: it fires with a span's ID
// when the last word of a packet delivered via DeliverTraced is popped by
// software. The hook enables span tracking; without it DeliverTraced
// behaves exactly like Deliver.
func (n *NIC) SetRxDrainHook(fn func(id uint64)) { n.rxDrained = fn }

// RegisterCounters registers the NIC's counters with the unified
// registry under prefix (e.g. "dev0"), as read closures over the live
// device state.
func (n *NIC) RegisterCounters(prefix string, r *counters.Registry) {
	r.Counter(prefix+"/packets_sent", func() uint64 { return uint64(len(n.packets)) })
	r.Counter(prefix+"/dropped_descs", func() uint64 { return n.dropped })
	r.Counter(prefix+"/bad_descs", func() uint64 { return n.badDescs })
	r.Counter(prefix+"/rx_pops", func() uint64 { return n.rxPops })
	r.Counter(prefix+"/rx_pending", func() uint64 { return uint64(len(n.rxQueue)) })
	r.Counter(prefix+"/rx_highwater", func() uint64 { return uint64(n.rxHighWater) })
}

// SetFaultHooks installs the fault-injection hooks (either may be nil).
// stall is consulted each bus tick while the device runs freely and
// returns the length of a latency burst to inject (0 = none);
// backpressure likewise returns the length of a FIFO backpressure window.
func (n *NIC) SetFaultHooks(stall, backpressure func() int) {
	n.stallHook = stall
	n.bpHook = backpressure
}

// Err returns the first out-of-range access recorded on this device, or
// nil. sim.Machine.Run polls this and fails the run with the typed error.
func (n *NIC) Err() error { return n.err }

// BadDescs returns the number of descriptors rejected for pointing
// outside the packet buffer.
func (n *NIC) BadDescs() uint64 { return n.badDescs }

func (n *NIC) setErr(op string, addr uint64, size int, bound uint64) {
	if n.err == nil {
		n.err = &AddrError{Dev: n.String(), Op: op, Addr: addr, Size: size, Bound: bound}
	}
}

// RxEmpty is returned by RegRxPop when the receive queue is empty.
const RxEmpty = ^uint64(0)

// NewNIC creates a NIC claiming [base, base+RegionSize).
func NewNIC(cfg Config, base uint64) *NIC {
	if cfg.FIFODepth <= 0 {
		cfg.FIFODepth = 16
	}
	if cfg.DMABurst <= 0 || cfg.DMABurst&(cfg.DMABurst-1) != 0 {
		cfg.DMABurst = 64
	}
	return &NIC{
		cfg:       cfg,
		base:      base,
		packetBuf: make([]byte, PacketBufSize),
		txDest:    -1,
	}
}

// Base returns the device's base physical address.
func (n *NIC) Base() uint64 { return n.base }

// Packets returns everything transmitted so far.
func (n *NIC) Packets() []Packet { return n.packets }

// Dropped returns the number of descriptors rejected by a full FIFO.
func (n *NIC) Dropped() uint64 { return n.dropped }

// IntPending reports whether a completion interrupt is outstanding.
func (n *NIC) IntPending() bool { return n.intPending }

// ---- mem.Target ----

// ReadTarget implements register and packet-buffer reads.
func (n *NIC) ReadTarget(pa uint64, size int) []byte {
	off := pa - n.base
	out := make([]byte, size)
	switch {
	case off >= PacketBufBase && off+uint64(size) <= PacketBufBase+PacketBufSize:
		copy(out, n.packetBuf[off-PacketBufBase:])
	case off == RegStatus:
		var v uint64
		if n.sending {
			v |= 1
		}
		if len(n.fifo) >= n.cfg.FIFODepth || n.bpLeft > 0 {
			v |= 2
		}
		v |= (n.dropped & 0xffff) << 16
		v |= uint64(len(n.packets)) << 32
		putLE(out, v)
	case off == RegRxPop:
		// Destructive read: pops the queue. This is why the simulated
		// processor must never issue this load speculatively.
		v, ok := n.RxPop()
		if !ok {
			v = RxEmpty
		}
		putLE(out, v)
	case off == RegRxCount:
		putLE(out, uint64(len(n.rxQueue)))
	case off == RegTxDest:
		v := uint64(TxDestAuto)
		if n.txDest >= 0 {
			v = uint64(n.txDest)
		}
		putLE(out, v)
	}
	return out
}

// RxPop destructively pops one word from the receive queue — the
// host-side equivalent of a RegRxPop load, used by load generators that
// drain replies without going through a guest. It does not allocate.
//
//csb:hotpath
func (n *NIC) RxPop() (uint64, bool) {
	if len(n.rxQueue) == 0 {
		return 0, false
	}
	v := n.rxQueue[0]
	n.rxQueue = n.rxQueue[1:]
	n.rxPops++
	n.notePop()
	return v, true
}

// Deliver injects received words into the RX queue (the simulated wire's
// receive side).
func (n *NIC) Deliver(words ...uint64) { n.DeliverWords(0, words) }

// DeliverTraced is Deliver plus span tracking: when an RX drain hook is
// installed, the words are remembered as one packet span and the hook
// fires with id when software pops the span's last word. Guest-visible
// behavior is identical to Deliver.
func (n *NIC) DeliverTraced(id uint64, words ...uint64) { n.DeliverWords(id, words) }

// DeliverWords is the non-variadic core of Deliver/DeliverTraced (id 0 =
// untraced), taking the word slice directly so per-cycle callers stay off
// the allocator.
//
//csb:hotpath
func (n *NIC) DeliverWords(id uint64, words []uint64) {
	n.rxQueue = append(n.rxQueue, words...) //csb:alloc-ok amortized RX queue growth
	if d := len(n.rxQueue); d > n.rxHighWater {
		n.rxHighWater = d
	}
	if id != 0 && n.rxDrained != nil && len(words) > 0 {
		n.rxSpans = append(n.rxSpans, rxSpan{id: id, words: len(words)}) //csb:alloc-ok amortized span queue growth
	}
}

// notePop advances the head RX span after one destructive pop, firing the
// drain hook when a span empties.
//
//csb:hotpath
func (n *NIC) notePop() {
	if n.rxDrained == nil || n.rxSpanPos >= len(n.rxSpans) {
		return
	}
	s := &n.rxSpans[n.rxSpanPos]
	s.words--
	if s.words > 0 {
		return
	}
	n.rxDrained(s.id)
	n.rxSpanPos++
	if n.rxSpanPos == len(n.rxSpans) {
		// All spans drained: reset the backing slice in place so the span
		// queue stops growing across a long run.
		n.rxSpans = n.rxSpans[:0]
		n.rxSpanPos = 0
	}
}

// RxHighWater returns the deepest the RX queue has ever been, in words.
func (n *NIC) RxHighWater() int { return n.rxHighWater }

// RxPending returns the number of undelivered RX words.
func (n *NIC) RxPending() int { return len(n.rxQueue) }

// RxPops returns how many destructive RX reads have occurred.
func (n *NIC) RxPops() uint64 { return n.rxPops }

// WriteTarget implements register and packet-buffer writes, including CSB
// line bursts into the packet buffer (§3.3: the target device must accept
// burst writes).
func (n *NIC) WriteTarget(pa uint64, data []byte) {
	off := pa - n.base
	switch {
	case off >= PacketBufBase && off+uint64(len(data)) <= PacketBufBase+PacketBufSize:
		copy(n.packetBuf[off-PacketBufBase:], data)
	case off == RegTxFIFO && len(data) == 8:
		v := leUint(data)
		n.pushDescriptor(txDesc{
			offset: v & (1<<48 - 1),
			length: int(v >> 48),
			pushed: n.now(),
		})
	case off == RegDMA && len(data) == 8:
		v := leUint(data)
		if length := int(v >> 48); length > PacketBufSize {
			// The transfer would overrun the packet buffer; refuse it
			// rather than index past the slice.
			n.setErr("dma-transfer", v&(1<<48-1), length, PacketBufSize)
		} else if n.dma == dmaIdle {
			n.dmaSrc = v & (1<<48 - 1)
			n.dmaLen = length
			n.dmaOff = 0
			n.dma = dmaReading
			n.dmaPushed = n.now()
		}
	case off == RegTxDest && len(data) == 8:
		v := leUint(data)
		if v >= TxDestAuto {
			n.txDest = -1
		} else {
			n.txDest = int(v)
		}
	case off == RegIntAck:
		n.intPending = false
	}
}

func (n *NIC) pushDescriptor(d txDesc) {
	if d.offset > PacketBufSize || d.offset+uint64(d.length) > PacketBufSize {
		// The descriptor points outside the packet buffer: record the
		// error (guests used to crash the whole simulator here) and drop
		// the descriptor.
		n.setErr("tx-descriptor", d.offset, d.length, PacketBufSize)
		n.badDescs++
		return
	}
	if n.bpLeft > 0 || len(n.fifo) >= n.cfg.FIFODepth {
		n.dropped++
		return
	}
	d.dest = n.txDest
	if n.descQueued != nil {
		d.jid = n.descQueued(d.offset, d.length, d.viaDMA)
	}
	n.fifo = append(n.fifo, d)
}

// ---- sim.Device ----

// now returns the most recently observed bus cycle (register writes land
// during bus.Tick, one call before the device tick, so this is at most one
// cycle stale — fine for the timestamps it feeds).
func (n *NIC) now() uint64 { return n.lastCycle }

// TickBus advances transmission and DMA by one bus cycle.
func (n *NIC) TickBus(b *bus.Bus) {
	n.lastCycle = b.Cycle()
	// Injected device latency burst: the whole device (DMA, transmit,
	// interrupt delivery) freezes; register accesses still complete, so
	// software can keep polling status while the device is slow.
	if n.stallLeft > 0 {
		n.stallLeft--
		return
	}
	if n.stallHook != nil {
		if d := n.stallHook(); d > 0 {
			n.stallLeft = d - 1 // this frozen tick is the first of d
			return
		}
	}
	// Injected FIFO backpressure window: pushes are refused (counted as
	// drops) while open, but the device otherwise runs.
	if n.bpLeft > 0 {
		n.bpLeft--
	} else if n.bpHook != nil {
		if w := n.bpHook(); w > 0 {
			n.bpLeft = w
		}
	}
	// DMA engine: stream bursts from main memory into the packet buffer.
	if n.dma == dmaReading && !n.dmaInFly {
		if n.dmaOff >= n.dmaLen {
			// Transfer complete: queue the descriptor.
			n.pushDescriptor(txDesc{offset: 0, length: n.dmaLen,
				pushed: n.dmaPushed, viaDMA: true, srcPA: n.dmaSrc})
			n.dma = dmaIdle
		} else {
			size := n.cfg.DMABurst
			if rem := n.dmaLen - n.dmaOff; rem < size {
				size = alignSize(rem)
			}
			// Respect natural alignment of the source address.
			for size > 1 && (n.dmaSrc+uint64(n.dmaOff))%uint64(size) != 0 {
				size >>= 1
			}
			off := n.dmaOff
			txn := &bus.Txn{Addr: n.dmaSrc + uint64(off), Size: size}
			txn.Done = func(t *bus.Txn) {
				copy(n.packetBuf[off:], t.Data)
				n.dmaOff += t.Size
				n.dmaInFly = false
			}
			if b.TryIssue(txn) {
				n.dmaInFly = true
			}
		}
	}
	// Transmit path.
	if n.sending {
		if b.Cycle() >= n.sendDone {
			data := make([]byte, n.cur.length)
			copy(data, n.packetBuf[n.cur.offset:])
			n.packets = append(n.packets, Packet{
				Data:     data,
				SentAt:   b.Cycle(),
				ViaDMA:   n.cur.viaDMA,
				SrcAddr:  n.cur.srcPA,
				FIFOPush: n.cur.pushed,
				JID:      n.cur.jid,
				Dest:     n.cur.dest,
			})
			n.sending = false
			n.intPending = true
			if n.txDone != nil && n.cur.jid != 0 {
				n.txDone(n.cur.jid)
			}
			if n.Interrupt != nil {
				n.Interrupt()
			}
		}
		return
	}
	if len(n.fifo) > 0 {
		n.cur = n.fifo[0]
		n.fifo = n.fifo[1:]
		n.sending = true
		n.sendDone = b.Cycle() + uint64(n.cfg.WireCyclesPerByte*n.cur.length)
		if n.txStarted != nil && n.cur.jid != 0 {
			n.txStarted(n.cur.jid)
		}
	}
}

// Idle reports whether no transmission or DMA work is pending.
func (n *NIC) Idle() bool {
	return !n.sending && len(n.fifo) == 0 && n.dma == dmaIdle && !n.dmaInFly
}

// alignSize rounds down to the largest power of two ≤ v (min 1).
func alignSize(v int) int {
	s := 1
	for s*2 <= v {
		s *= 2
	}
	return s
}

func putLE(dst []byte, v uint64) {
	for i := range dst {
		dst[i] = byte(v >> (8 * i))
	}
}

func leUint(data []byte) uint64 {
	var v uint64
	for i := len(data) - 1; i >= 0; i-- {
		v = v<<8 | uint64(data[i])
	}
	return v
}

// String describes the NIC configuration.
func (n *NIC) String() string {
	return fmt.Sprintf("nic(base=%#x fifo=%d dma=%dB)", n.base, n.cfg.FIFODepth, n.cfg.DMABurst)
}

var _ mem.Target = (*NIC)(nil)
