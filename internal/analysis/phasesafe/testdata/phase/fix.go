// Package fix seeds phase-discipline violations: worker-colored code
// reaching barrier-only APIs and cross-node shared state (the classic
// bug being a worker-phase write into another node's inbox), plus the
// sanctioned forms — //csb:worker-ok touches and barrier-annotated
// closures created (but not called) inside a window.
package fix

import (
	"csbsim/internal/cluster"
	"csbsim/internal/cluster/ctrace"
	"csbsim/internal/obs/counters"
	"csbsim/internal/sim"
)

// node models per-node state; declaring shared-typed fields is fine —
// only worker-phase uses are checked.
type node struct {
	tr  *ctrace.Tracer
	cnt uint64
}

// routeAll stands in for the engine's routing step.
//
//csb:barrier mutates every node's inbox; runs only between windows
func routeAll() {}

// workerRoot is an annotated worker root: node-local work is fine, the
// barrier call and the cross-node delivery (a write into another node's
// inbox via the cluster) are not.
//
//csb:worker runs on the node goroutine inside a lookahead window
func workerRoot(n *node, other *cluster.Cluster, words []uint64) {
	n.cnt++
	step(n)
	routeAll()                               // want `barrier-only routeAll is called from worker-phase workerRoot`
	other.Node(1).NIC.DeliverWords(0, words) // want `worker-phase workerRoot .* touches cluster.Cluster`
}

// step has no annotation of its own: it inherits worker color from
// workerRoot over the call graph, so its tracer touch is reported.
func step(n *node) {
	_ = n.tr.Completed() // want `worker-phase step \(worker via //csb:worker on workerRoot\) touches ctrace.Tracer`
}

// spawn colors only the goroutine literal, via a line pragma.
func spawn(c *cluster.Cluster) {
	//csb:worker per-node goroutine body
	go func() {
		c.Tick() // want `function literal in spawn .* touches cluster.Cluster`
	}()
}

// sanctioned reads a registry the worker goroutine owns; the worker-ok
// pragma records the review.
//
//csb:worker window-phase sampling on the owning goroutine
func sanctioned(reg *counters.Registry) {
	_ = reg //csb:worker-ok per-node registry owned by this node's goroutine
}

// makesBarrierClosure creates (without calling) a closure that runs after
// the window; the barrier annotation stops worker propagation into it.
//
//csb:worker window body staging deferred work
func makesBarrierClosure(n *node) func() {
	//csb:barrier replayed single-threaded at the next barrier
	return func() {
		n.tr.PacketDrained(1, 2)
	}
}

// flushFromWorker calls a cross-package barrier API on an otherwise
// sanctioned per-node type; the pinned barrierAPIs contract catches what
// the intra-package call graph cannot see.
//
//csb:worker window body on the node goroutine
func flushFromWorker(m *sim.Machine) {
	m.Tick()
	m.FlushObs() // want `barrier-only sim.Machine.FlushObs is called from worker-phase flushFromWorker`
}

//csb:worker claims the window phase
//csb:barrier and the barrier phase
func confused() {} // want `confused is annotated both //csb:worker and //csb:barrier`
