package asm

import (
	"fmt"
	"sort"
	"strings"

	"csbsim/internal/isa"
)

// This file implements the SV9L lint pass: static checks over an
// assembled program's control-flow graph that catch the bugs the
// simulator would otherwise surface as mysterious timing or data
// artifacts. The checks are:
//
//	dup-label       a label or .equ symbol defined twice
//	undef-label     a referenced symbol with no definition
//	unused-label    a label nothing branches to or reads
//	uninit-reg      a register (or the condition codes) read on some
//	                path before any instruction writes it
//	unreachable     instructions no path from the entry point reaches
//	bad-target      a branch whose target is not an instruction
//	fallthrough     control running past the last instruction of a
//	                block with nowhere to go (missing halt/branch)
//	missing-membar  an uncached load, or halt, ordered after
//	                uncached/combining stores without the membar (or
//	                conditional-flush swap) the protocol requires
//	flush-protocol  a conditional flush (swap to device space) whose
//	                expected-value register may still hold the previous
//	                flush result, or whose result is never checked
//
// Device-space classification uses a small forward constant propagation:
// registers loaded with set/lui/ori/addi chains keep known values, and a
// value at or above IOBase (default 0x40000000, the examples' device
// window) marks the access uncached/combining. Loop-carried addresses
// degrade from "known constant" to "somewhere in device space", which is
// exactly what the membar checks need.
//
// A diagnostic can be suppressed with a comment pragma on the same line,
// or on a line of its own directly above:
//
//	ld [%o1], %g3   ! lint:ignore missing-membar polling a status register
//
// The check name is required; a reason is recommended.

// DefaultIOBase is the lowest address treated as uncached/combining
// device space when LintConfig.IOBase is zero. It matches the examples'
// -uncached/-combining window at 0x40000000.
const DefaultIOBase uint64 = 0x4000_0000

// LintConfig parameterizes the lint pass.
type LintConfig struct {
	// IOBase is the first address of uncached/combining device space;
	// zero means DefaultIOBase.
	IOBase uint64
	// IORanges adds extra [start, end) windows below IOBase that are also
	// mapped uncached/combining — e.g. a DMA staging buffer in low memory
	// that guests map KindUncached so the DMA engine never reads stale
	// cache lines. Accesses in these windows get the same store-buffer
	// ordering checks as accesses above IOBase.
	IORanges [][2]uint64
}

// inIO reports whether a known-constant address falls in device space.
func (cfg *LintConfig) inIO(addr uint64) bool {
	if addr >= cfg.IOBase {
		return true
	}
	for _, r := range cfg.IORanges {
		if addr >= r[0] && addr < r[1] {
			return true
		}
	}
	return false
}

// Diag is one lint finding at a source position.
type Diag struct {
	File  string
	Line  int
	Check string
	Msg   string
}

func (d Diag) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.File, d.Line, d.Check, d.Msg)
}

// Lint parses, lays out and checks one SV9L source file. It returns the
// findings, or an error when the source does not assemble (lint needs a
// well-formed program to build a CFG; assembler errors are already
// positioned).
func Lint(name, text string, cfg LintConfig) ([]Diag, error) {
	if cfg.IOBase == 0 {
		cfg.IOBase = DefaultIOBase
	}
	a := &assembler{file: name, symbols: make(map[string]uint64)}
	if err := a.parse(text); err != nil {
		return nil, err
	}
	l := &linter{a: a, cfg: cfg, ignores: parseIgnores(text)}
	if bail := l.checkLabels(); bail {
		return l.finish(), nil
	}
	if err := a.layout(); err != nil {
		return nil, err
	}
	if err := l.buildInsts(); err != nil {
		return nil, err
	}
	l.analyze()
	return l.finish(), nil
}

type linter struct {
	a       *assembler
	cfg     LintConfig
	ignores map[int]map[string]bool
	diags   []Diag
	seen    map[string]bool

	insts  []linst
	byAddr map[uint64]int
	states []*lstate // in-state per instruction; nil = unreachable
}

// linst is one decoded instruction with its source position.
type linst struct {
	addr uint64
	line int
	in   isa.Inst
}

func (l *linter) report(line int, check, format string, args ...any) {
	if l.ignores[line][check] {
		return
	}
	d := Diag{File: l.a.file, Line: line, Check: check, Msg: fmt.Sprintf(format, args...)}
	if l.seen == nil {
		l.seen = make(map[string]bool)
	}
	key := d.String()
	if l.seen[key] {
		return
	}
	l.seen[key] = true
	l.diags = append(l.diags, d)
}

func (l *linter) finish() []Diag {
	sort.Slice(l.diags, func(i, j int) bool {
		if l.diags[i].Line != l.diags[j].Line {
			return l.diags[i].Line < l.diags[j].Line
		}
		return l.diags[i].Check < l.diags[j].Check
	})
	return l.diags
}

// parseIgnores scans raw source for `lint:ignore <check>` comment
// pragmas. A pragma on a code line applies to that line; a pragma on a
// comment-only line applies to the next line.
func parseIgnores(text string) map[int]map[string]bool {
	out := make(map[int]map[string]bool)
	for li, raw := range strings.Split(text, "\n") {
		lineNo := li + 1
		code := strings.TrimSpace(stripComment(raw))
		comment := raw[len(stripComment(raw)):]
		idx := strings.Index(comment, "lint:ignore")
		if idx < 0 {
			continue
		}
		fields := strings.Fields(comment[idx+len("lint:ignore"):])
		if len(fields) == 0 {
			continue
		}
		target := lineNo
		if code == "" {
			target = lineNo + 1
		}
		if out[target] == nil {
			out[target] = make(map[string]bool)
		}
		for _, check := range strings.Split(fields[0], ",") {
			out[target][check] = true
		}
	}
	return out
}

// ---- label checks (pre-layout) ----

// checkLabels reports duplicate, undefined and unused symbols. It
// returns true when layout would fail (duplicates or undefined
// references), in which case the CFG checks are skipped.
func (l *linter) checkLabels() (bail bool) {
	type def struct {
		line  int
		label bool // a code label, as opposed to an .equ constant
	}
	defs := map[string]def{".": {}, "_start": {}}
	delete(defs, "_start") // only a default entry name, not a definition
	for _, st := range l.a.stmts {
		switch st.dir {
		case "@label", "equ":
			if prev, dup := defs[st.dirStr]; dup {
				l.report(st.line, "dup-label",
					"symbol %q already defined at line %d", st.dirStr, prev.line)
				bail = true
				continue
			}
			defs[st.dirStr] = def{line: st.line, label: st.dir == "@label"}
		}
	}

	referenced := map[string]bool{}
	refLine := map[string]int{}
	addRefs := func(line int, e expr) {
		for _, s := range e.symbols() {
			if !referenced[s] {
				referenced[s] = true
				refLine[s] = line
			}
		}
	}
	for _, st := range l.a.stmts {
		for _, op := range st.ops {
			switch op.kind {
			case opndExpr:
				addRefs(st.line, op.e)
			case opndMem:
				addRefs(st.line, op.disp)
			}
		}
		for _, e := range st.dirExprs {
			addRefs(st.line, e)
		}
		if st.dir == "entry" {
			referenced[st.dirStr] = true
		}
	}
	referenced["_start"] = true // implicit entry symbol
	referenced["."] = true      // location counter

	for sym := range referenced {
		if sym == "." || sym == "_start" {
			continue
		}
		if _, ok := defs[sym]; !ok {
			l.report(refLine[sym], "undef-label", "undefined symbol %q", sym)
			bail = true
		}
	}
	// Deterministic order for unused-label reports: scan definitions in
	// source order.
	for _, st := range l.a.stmts {
		if st.dir != "@label" {
			continue
		}
		if d, ok := defs[st.dirStr]; ok && d.label && d.line == st.line && !referenced[st.dirStr] {
			l.report(st.line, "unused-label", "label %q is never referenced", st.dirStr)
		}
	}
	return bail
}

// ---- instruction stream ----

func (l *linter) buildInsts() error {
	for si := range l.a.stmts {
		st := &l.a.stmts[si]
		if st.mn == "" {
			continue
		}
		l.a.symbols["."] = st.addr
		insts, err := l.a.buildInst(st)
		if err != nil {
			return err
		}
		for k, in := range insts {
			l.insts = append(l.insts, linst{
				addr: st.addr + uint64(k*isa.InstBytes),
				line: st.line,
				in:   in,
			})
		}
	}
	sort.SliceStable(l.insts, func(i, j int) bool { return l.insts[i].addr < l.insts[j].addr })
	l.byAddr = make(map[uint64]int, len(l.insts))
	for i, li := range l.insts {
		l.byAddr[li.addr] = i
	}
	l.states = make([]*lstate, len(l.insts))
	return nil
}

func (l *linter) entry() uint64 {
	if l.a.entrySet {
		return l.a.entry
	}
	if v, ok := l.a.symbols["_start"]; ok {
		return v
	}
	return l.a.firstAddr
}

// ---- abstract values ----

// An absval classifies a register's runtime value: a known constant,
// "somewhere in device space" (>= IOBase), or unknown.
type absval struct {
	kind uint8
	c    uint64
}

const (
	avTop   uint8 = iota // unknown
	avConst              // exactly c
	avIO                 // some address >= IOBase
)

func (l *linter) classify(v absval) uint8 {
	if v.kind == avConst {
		if l.cfg.inIO(v.c) {
			return avIO
		}
		return avTop
	}
	return v.kind
}

func (l *linter) meetVal(a, b absval) absval {
	if a == b {
		return a
	}
	if l.classify(a) == avIO && l.classify(b) == avIO {
		return absval{kind: avIO}
	}
	return absval{kind: avTop}
}

// ---- dataflow state ----

// lstate is the forward dataflow state at an instruction boundary.
type lstate struct {
	def     uint32 // int registers definitely written (bit r)
	fdef    uint32 // fp registers definitely written
	cc      bool   // condition codes definitely written
	fromSwp uint32 // int registers that MAY hold a swap (flush) result
	pendIO  bool   // device stores MAY be buffered (membar pending)
	dirty   bool   // combining data MAY be unflushed (swap/membar pending)
	regs    [isa.NumRegs]absval
}

func (l *linter) entryState() lstate {
	s := lstate{def: 1} // r0 is always defined (and reads as zero)
	s.regs[0] = absval{kind: avConst}
	for i := 1; i < isa.NumRegs; i++ {
		s.regs[i] = absval{kind: avTop}
	}
	return s
}

// havoc forgets everything a called routine might change, keeping only
// the pending-I/O bits (a callee is not assumed to membar for us).
func havoc(s lstate) lstate {
	h := lstate{def: ^uint32(0), fdef: ^uint32(0), cc: true,
		pendIO: s.pendIO, dirty: s.dirty}
	h.regs[0] = absval{kind: avConst}
	for i := 1; i < isa.NumRegs; i++ {
		h.regs[i] = absval{kind: avTop}
	}
	return h
}

// join widens dst by src; it reports whether dst changed.
func (l *linter) join(dst *lstate, src lstate) bool {
	changed := false
	upd32 := func(d *uint32, v uint32) {
		if *d != v {
			*d = v
			changed = true
		}
	}
	updB := func(d *bool, v bool) {
		if *d != v {
			*d = v
			changed = true
		}
	}
	upd32(&dst.def, dst.def&src.def)
	upd32(&dst.fdef, dst.fdef&src.fdef)
	updB(&dst.cc, dst.cc && src.cc)
	upd32(&dst.fromSwp, dst.fromSwp|src.fromSwp)
	updB(&dst.pendIO, dst.pendIO || src.pendIO)
	updB(&dst.dirty, dst.dirty || src.dirty)
	for i := range dst.regs {
		m := l.meetVal(dst.regs[i], src.regs[i])
		if m != dst.regs[i] {
			dst.regs[i] = m
			changed = true
		}
	}
	return changed
}

func (s *lstate) val(r isa.Reg) absval {
	if r == 0 {
		return absval{kind: avConst}
	}
	return s.regs[r]
}

// addrOf computes the abstract effective address [rs1+imm].
func (l *linter) addrOf(s *lstate, in isa.Inst) uint8 {
	v := s.val(in.Rs1)
	if v.kind == avConst {
		v.c += uint64(in.Imm)
	}
	return l.classify(v)
}

// writesCC reports whether op updates the integer condition codes.
func writesCC(op isa.Op) bool {
	switch op {
	case isa.OpADDCC, isa.OpSUBCC, isa.OpANDCC, isa.OpORCC,
		isa.OpADDCCI, isa.OpSUBCCI, isa.OpANDCCI, isa.OpORCCI, isa.OpFCMP:
		return true
	}
	return false
}

// readsCC reports whether the instruction consumes the condition codes.
func readsCC(in isa.Inst) bool {
	return in.Op == isa.OpBR && in.Cond != isa.CondA && in.Cond != isa.CondN
}

// resultVal evaluates the integer result of in over the abstract state —
// just enough constant propagation to follow set/lui/ori/addi address
// chains and keep device-space pointers classified through loops.
func (l *linter) resultVal(s *lstate, in isa.Inst) absval {
	binop := func(v uint64) absval { return absval{kind: avConst, c: v} }
	switch in.Op {
	case isa.OpLUI:
		return binop(uint64(in.Imm) << 13)
	case isa.OpADDI, isa.OpSUBI, isa.OpANDI, isa.OpORI, isa.OpXORI,
		isa.OpSLLI, isa.OpSRLI, isa.OpSRAI, isa.OpMULI,
		isa.OpADDCCI, isa.OpSUBCCI, isa.OpANDCCI, isa.OpORCCI:
		v := s.val(in.Rs1)
		if v.kind == avConst {
			c, imm := v.c, uint64(in.Imm)
			switch in.Op {
			case isa.OpADDI, isa.OpADDCCI:
				return binop(c + imm)
			case isa.OpSUBI, isa.OpSUBCCI:
				return binop(c - imm)
			case isa.OpANDI, isa.OpANDCCI:
				return binop(c & imm)
			case isa.OpORI, isa.OpORCCI:
				return binop(c | imm)
			case isa.OpXORI:
				return binop(c ^ imm)
			case isa.OpSLLI:
				return binop(c << (imm & 63))
			case isa.OpSRLI:
				return binop(c >> (imm & 63))
			case isa.OpSRAI:
				return binop(uint64(int64(c) >> (imm & 63)))
			case isa.OpMULI:
				return binop(c * imm)
			}
		}
		if v.kind == avIO {
			switch in.Op {
			case isa.OpADDI, isa.OpSUBI, isa.OpORI, isa.OpADDCCI, isa.OpSUBCCI:
				return absval{kind: avIO} // offset within the device window
			}
		}
	case isa.OpADD, isa.OpOR, isa.OpADDCC, isa.OpORCC:
		v1, v2 := s.val(in.Rs1), s.val(in.Rs2)
		// mov/clr expand to OR with %g0: propagate the other operand.
		zero := absval{kind: avConst}
		if v1 == zero {
			return v2
		}
		if v2 == zero {
			return v1
		}
		if v1.kind == avConst && v2.kind == avConst {
			if in.Op == isa.OpOR || in.Op == isa.OpORCC {
				return binop(v1.c | v2.c)
			}
			return binop(v1.c + v2.c)
		}
		if in.Op == isa.OpADD || in.Op == isa.OpADDCC {
			if l.classify(v1) == avIO && v2.kind == avConst ||
				l.classify(v2) == avIO && v1.kind == avConst {
				return absval{kind: avIO}
			}
		}
	}
	return absval{kind: avTop}
}

// transfer applies one instruction to a copy of its in-state.
func (l *linter) transfer(i int, s lstate) lstate {
	in := l.insts[i].in
	switch {
	case in.Op == isa.OpMEMBAR:
		s.pendIO, s.dirty = false, false
	case in.Op == isa.OpSWAP:
		if l.addrOf(&s, in) == avIO {
			s.dirty = false // the conditional flush collects the line
			s.pendIO = true // ... but the burst still has to drain
		}
	case in.Op.Class() == isa.ClassStore:
		if l.addrOf(&s, in) == avIO {
			s.pendIO, s.dirty = true, true
		}
	}
	val := l.resultVal(&s, in)
	if in.WritesIntReg() {
		r := in.Rd
		s.def |= 1 << r
		s.regs[r] = val
		if in.Op == isa.OpSWAP {
			s.fromSwp |= 1 << r
			s.regs[r] = absval{kind: avTop}
		} else {
			s.fromSwp &^= 1 << r
		}
	}
	if in.WritesFPReg() {
		s.fdef |= 1 << in.Rd
	}
	if writesCC(in.Op) {
		s.cc = true
	}
	return s
}

// ---- control flow ----

type edge struct {
	to    int
	havoc bool
}

// targetIdx resolves a PC-relative branch to an instruction index.
func (l *linter) targetIdx(i int) (int, bool) {
	li := l.insts[i]
	taddr := li.addr + uint64(isa.InstBytes) + uint64(li.in.Imm*int64(isa.InstBytes))
	idx, ok := l.byAddr[taddr]
	return idx, ok
}

// succs returns the CFG edges out of instruction i. Unresolvable
// fallthroughs and branch targets are reported by the caller during the
// final pass, so this stays pure.
func (l *linter) succs(i int) []edge {
	in := l.insts[i].in
	fall := -1
	if j, ok := l.byAddr[l.insts[i].addr+uint64(isa.InstBytes)]; ok {
		fall = j
	}
	var out []edge
	addFall := func(h bool) {
		if fall >= 0 {
			out = append(out, edge{to: fall, havoc: h})
		}
	}
	switch in.Op {
	case isa.OpHALT, isa.OpIRET:
		return nil
	case isa.OpBR:
		tgt, ok := l.targetIdx(i)
		switch {
		case in.Cond == isa.CondA:
			if ok {
				out = append(out, edge{to: tgt})
			}
		case in.Cond == isa.CondN:
			addFall(false)
		default:
			addFall(false)
			if ok {
				out = append(out, edge{to: tgt})
			}
		}
	case isa.OpJAL:
		if tgt, ok := l.targetIdx(i); ok {
			out = append(out, edge{to: tgt})
		}
		addFall(true) // the call returns with unknown register state
	case isa.OpJALR:
		if in.Rd != isa.RegZero {
			addFall(true) // register call; ret/jmp (%rd = %g0) is terminal
		}
	case isa.OpTRAP:
		addFall(true)
	default:
		addFall(false)
	}
	return out
}

// ---- the analysis driver and final checks ----

func (l *linter) analyze() {
	if len(l.insts) == 0 {
		return
	}
	entryIdx, ok := l.byAddr[l.entry()]
	if !ok {
		l.report(l.insts[0].line, "bad-target",
			"entry point %#x is not an instruction", l.entry())
		return
	}
	es := l.entryState()
	l.states[entryIdx] = &es
	work := []int{entryIdx}
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		out := l.transfer(i, *l.states[i])
		for _, e := range l.succs(i) {
			ns := out
			if e.havoc {
				ns = havoc(out)
			}
			if l.states[e.to] == nil {
				cp := ns
				l.states[e.to] = &cp
				work = append(work, e.to)
			} else if l.join(l.states[e.to], ns) {
				work = append(work, e.to)
			}
		}
	}
	l.checkInsts()
	l.checkUnreachable()
}

func (l *linter) checkInsts() {
	for i, li := range l.insts {
		s := l.states[i]
		if s == nil {
			continue
		}
		l.checkReads(li, s)
		in := li.in

		// Structural successors.
		if in.IsBranch() && in.Op != isa.OpJALR {
			if _, ok := l.targetIdx(i); !ok {
				l.report(li.line, "bad-target",
					"branch target %#x is not an instruction",
					li.addr+uint64(isa.InstBytes)+uint64(in.Imm*int64(isa.InstBytes)))
			}
		}
		fallsThrough := false
		switch {
		case in.Op == isa.OpHALT || in.Op == isa.OpIRET:
		case in.IsUnconditional():
		case in.Op == isa.OpJALR && in.Rd == isa.RegZero:
		default:
			fallsThrough = true
		}
		if fallsThrough {
			if _, ok := l.byAddr[li.addr+uint64(isa.InstBytes)]; !ok {
				l.report(li.line, "fallthrough",
					"control runs past this instruction into data or off the end; add halt or a branch")
			}
		}

		// Protocol checks.
		switch {
		case in.Op == isa.OpHALT:
			if s.pendIO {
				l.report(li.line, "missing-membar",
					"halt while uncached/combining stores may still be buffered; insert membar before halt")
			}
		case in.Op == isa.OpSWAP:
			if l.addrOf(s, in) == avIO {
				l.checkFlush(i, li, s)
			}
		case in.Op.Class() == isa.ClassLoad:
			if l.addrOf(s, in) == avIO && s.dirty {
				l.report(li.line, "missing-membar",
					"uncached load ordered after combining stores that may not have flushed; issue the conditional-flush swap or a membar first")
			}
		}
	}
}

// checkFlush verifies the conditional-flush protocol at an IO-space swap:
// the expected-value register must be freshly loaded (a retry loop that
// branches straight back to the swap would hand the previous flush result
// in as the expected hit count), and the result must be checked before it
// is clobbered (an unchecked flush silently drops device data on a miss).
func (l *linter) checkFlush(i int, li linst, s *lstate) {
	rd := li.in.Rd
	if s.fromSwp&(1<<rd) != 0 {
		l.report(li.line, "flush-protocol",
			"expected-value register %s may still hold the previous flush result; reload it on every retry",
			isa.RegName(rd))
	}
	if rd == isa.RegZero {
		l.report(li.line, "flush-protocol",
			"conditional flush result is discarded (%%g0); compare it and retry on failure")
		return
	}
	// Scan forward along fallthrough order for a read of rd before it is
	// redefined. Calls and indirect jumps end the scan benignly (the
	// check could happen elsewhere); everything else that clobbers or
	// abandons rd is a protocol violation.
	for j := i + 1; j < len(l.insts); j++ {
		in := l.insts[j].in
		if readsInt(in, rd) {
			return
		}
		if in.WritesIntReg() && in.Rd == rd {
			break
		}
		if in.Op == isa.OpJAL || in.Op == isa.OpJALR {
			return
		}
		if in.IsUnconditional() || in.Op == isa.OpHALT || in.Op == isa.OpIRET {
			break
		}
	}
	l.report(li.line, "flush-protocol",
		"conditional flush result in %s is never checked; compare it and retry on failure",
		isa.RegName(rd))
}

// readsInt reports whether in reads integer register r.
func readsInt(in isa.Inst, r isa.Reg) bool {
	if in.ReadsIntRs1() && in.Rs1 == r {
		return true
	}
	if in.ReadsIntRs2() && in.Rs2 == r {
		return true
	}
	if in.ReadsRdAsSource() && !in.Op.FPRd() && in.Rd == r {
		return true
	}
	return false
}

// checkReads reports registers read before any path wrote them.
func (l *linter) checkReads(li linst, s *lstate) {
	in := li.in
	intRead := func(r isa.Reg) {
		if r != 0 && s.def&(1<<r) == 0 {
			l.report(li.line, "uninit-reg",
				"%s read before any write (defaults to zero, which is rarely intended)",
				isa.RegName(r))
		}
	}
	fpRead := func(r isa.Reg) {
		if s.fdef&(1<<r) == 0 {
			l.report(li.line, "uninit-reg",
				"%s read before any write (defaults to zero, which is rarely intended)",
				isa.FRegName(isa.FReg(r)))
		}
	}
	if in.ReadsIntRs1() {
		intRead(in.Rs1)
	}
	if in.ReadsIntRs2() {
		intRead(in.Rs2)
	}
	if in.Op.FPRs1() {
		fpRead(in.Rs1)
	}
	if in.Op.FPRs2() {
		fpRead(in.Rs2)
	}
	if in.ReadsRdAsSource() {
		if in.Op.FPRd() {
			fpRead(in.Rd)
		} else {
			intRead(in.Rd)
		}
	}
	if readsCC(in) && !s.cc {
		l.report(li.line, "uninit-reg",
			"conditional branch reads the condition codes before any cc-setting instruction")
	}
}

// checkUnreachable reports the first line of every run of instructions no
// path from the entry reaches.
func (l *linter) checkUnreachable() {
	inRun := false
	for i := range l.insts {
		if l.states[i] != nil {
			inRun = false
			continue
		}
		if !inRun {
			l.report(l.insts[i].line, "unreachable",
				"unreachable code (no path from the entry point reaches it)")
			inRun = true
		}
	}
}
