// Package mem models the machine's memory substrate: sparse physical
// memory, per-process page tables with attribute bits, an ASID-tagged TLB,
// and the physical-address router that directs accesses to RAM or to
// memory-mapped devices.
//
// Page attributes are the mechanism the paper uses to steer stores (§3.1):
// a page is cached, uncached, or uncached-combining. Stores to combining
// pages are captured by the conditional store buffer; a swap to a combining
// page is the conditional flush.
package mem

import (
	"encoding/binary"
	"fmt"
)

// PageBits and PageSize define the (fixed) 4 KB page geometry.
const (
	PageBits = 12
	PageSize = 1 << PageBits
	pageMask = PageSize - 1
)

// ByteOrder is the simulated machine's byte order (little-endian).
var ByteOrder = binary.LittleEndian

// Memory is sparse physical memory. The zero value is ready to use; pages
// materialize (zero-filled) on first touch.
type Memory struct {
	pages map[uint64]*[PageSize]byte
}

// NewMemory returns an empty physical memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*[PageSize]byte)}
}

func (m *Memory) page(pa uint64) *[PageSize]byte {
	pn := pa >> PageBits
	p, ok := m.pages[pn]
	if !ok {
		p = new([PageSize]byte)
		m.pages[pn] = p
	}
	return p
}

// Read copies len(dst) bytes starting at physical address pa.
func (m *Memory) Read(pa uint64, dst []byte) {
	for len(dst) > 0 {
		p := m.page(pa)
		off := pa & pageMask
		n := copy(dst, p[off:])
		dst = dst[n:]
		pa += uint64(n)
	}
}

// Write copies src into physical memory starting at pa.
func (m *Memory) Write(pa uint64, src []byte) {
	for len(src) > 0 {
		p := m.page(pa)
		off := pa & pageMask
		n := copy(p[off:], src)
		src = src[n:]
		pa += uint64(n)
	}
}

// ReadUint reads an n-byte little-endian unsigned integer (n in 1,2,4,8).
func (m *Memory) ReadUint(pa uint64, n int) uint64 {
	var buf [8]byte
	m.Read(pa, buf[:n])
	return ByteOrder.Uint64(buf[:])
}

// WriteUint writes an n-byte little-endian unsigned integer.
func (m *Memory) WriteUint(pa uint64, n int, v uint64) {
	var buf [8]byte
	ByteOrder.PutUint64(buf[:], v)
	m.Write(pa, buf[:n])
}

// PagesTouched reports how many physical pages have been materialized.
func (m *Memory) PagesTouched() int { return len(m.pages) }

// Kind classifies a page's access policy (paper §3.1: attribute bits in the
// page table entry).
type Kind uint8

const (
	// KindCached pages go through the cache hierarchy.
	KindCached Kind = iota
	// KindUncached pages bypass the caches; stores enter the uncached
	// buffer, loads block until the bus transaction completes.
	KindUncached
	// KindCombining pages are uncached-combining: stores are captured by
	// the conditional store buffer and a swap is the conditional flush.
	KindCombining
	numKinds
)

func (k Kind) String() string {
	switch k {
	case KindCached:
		return "cached"
	case KindUncached:
		return "uncached"
	case KindCombining:
		return "combining"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// PTE is a page-table entry: translation plus attributes.
type PTE struct {
	PFN      uint64 // physical frame number (pa >> PageBits)
	Kind     Kind
	Writable bool
	Valid    bool
}

// PageTable maps one process's virtual pages to PTEs. The zero value is an
// empty table.
type PageTable struct {
	entries map[uint64]PTE
}

// NewPageTable returns an empty page table.
func NewPageTable() *PageTable {
	return &PageTable{entries: make(map[uint64]PTE)}
}

// Map installs a translation for the page containing va.
func (pt *PageTable) Map(va, pa uint64, kind Kind, writable bool) {
	pt.entries[va>>PageBits] = PTE{PFN: pa >> PageBits, Kind: kind, Writable: writable, Valid: true}
}

// MapRange maps [va, va+size) to [pa, pa+size), page by page.
func (pt *PageTable) MapRange(va, pa, size uint64, kind Kind, writable bool) {
	first := va >> PageBits
	last := (va + size - 1) >> PageBits
	for vpn := first; vpn <= last; vpn++ {
		pt.entries[vpn] = PTE{PFN: pa>>PageBits + (vpn - first), Kind: kind, Writable: writable, Valid: true}
	}
}

// Lookup returns the PTE for the page containing va.
func (pt *PageTable) Lookup(va uint64) (PTE, bool) {
	e, ok := pt.entries[va>>PageBits]
	return e, ok && e.Valid
}

// Unmap removes the translation for the page containing va.
func (pt *PageTable) Unmap(va uint64) {
	delete(pt.entries, va>>PageBits)
}

// Len reports the number of valid entries.
func (pt *PageTable) Len() int { return len(pt.entries) }
