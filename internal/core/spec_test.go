package core

import (
	"math/rand"
	"testing"

	"csbsim/internal/bus"
)

// specCSB is an independent, obviously-correct model of the §3.2 buffer
// semantics, against which the implementation is checked over random
// operation sequences. It models only the architectural state machine
// (match/merge/clear/flush), not the bus-side buffering.
type specCSB struct {
	valid    bool
	pid      uint8
	line     uint64
	count    int64
	data     map[uint64]byte // offset within the data register → byte
	checkAdr bool
	lineSize uint64
}

func newSpec(lineSize int, checkAddr bool) *specCSB {
	return &specCSB{data: make(map[uint64]byte), checkAdr: checkAddr, lineSize: uint64(lineSize)}
}

func (s *specCSB) clear() {
	s.valid = false
	s.count = 0
	s.data = make(map[uint64]byte)
}

func (s *specCSB) store(pid uint8, addr uint64, val byte) {
	line := addr &^ (s.lineSize - 1)
	match := s.valid && s.pid == pid && (!s.checkAdr || s.line == line)
	if !match {
		s.clear()
		s.valid = true
		s.pid = pid
		s.line = line
		s.count = 1
	} else {
		s.count++
		s.line = line
	}
	// One line-sized data register, indexed by offset: under a disabled
	// address check, bytes stored under an earlier line land at the same
	// offsets and are committed to the most recent line (as in hardware).
	off := addr - line
	for i := uint64(0); i < 8; i++ {
		s.data[off+i] = val
	}
}

// flush returns whether the conditional flush succeeds, plus the committed
// line contents on success.
func (s *specCSB) flush(pid uint8, addr uint64, expected int64) (map[uint64]byte, bool) {
	line := addr &^ (s.lineSize - 1)
	ok := s.valid && s.pid == pid && s.count == expected && (!s.checkAdr || s.line == line)
	if !ok {
		s.clear()
		return nil, false
	}
	out := make(map[uint64]byte)
	for i := uint64(0); i < s.lineSize; i++ {
		out[s.line+i] = s.data[i] // absent offsets are zero padding
	}
	s.clear()
	return out, true
}

// TestCSBMatchesSpecModel drives implementation and spec with identical
// random operation streams and compares every observable: store/flush
// acceptance, hit counts, and the exact bytes committed to memory.
func TestCSBMatchesSpecModel(t *testing.T) {
	lines := []uint64{0x1000, 0x1040, 0x2000}
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		checkAddr := seed%2 == 0
		impl, err := New(Config{LineSize: 64, CheckAddress: checkAddr})
		if err != nil {
			t.Fatal(err)
		}
		spec := newSpec(64, checkAddr)
		b, _ := bus.New(bus.Config{Model: bus.Multiplexed, WidthBytes: 8}, nil)
		committed := make(map[uint64]byte) // bytes observed on the bus
		b.AttachObserver(func(txn *bus.Txn) {
			for i, v := range txn.Data {
				committed[txn.Addr+uint64(i)] = v
			}
		})
		wantCommitted := make(map[uint64]byte)

		drain := func() {
			for i := 0; i < 1000 && !impl.Drained(); i++ {
				b.Tick()
				impl.TickBus(b)
			}
			b.Drain(100)
		}

		for op := 0; op < 300; op++ {
			pid := uint8(rng.Intn(3) + 1)
			line := lines[rng.Intn(len(lines))]
			off := uint64(rng.Intn(8)) * 8
			switch rng.Intn(5) {
			case 0, 1, 2: // store
				val := byte(rng.Intn(255) + 1)
				data := make([]byte, 8)
				for i := range data {
					data[i] = val
				}
				if impl.Busy() {
					drain()
				}
				if !impl.Store(pid, line+off, 8, data) {
					t.Fatalf("seed %d op %d: store rejected while not busy", seed, op)
				}
				spec.store(pid, line+off, val)
			case 3: // conditional flush with the spec's (usually right) count
				expected := spec.count
				if rng.Intn(4) == 0 {
					expected = int64(rng.Intn(10)) // sometimes deliberately wrong
				}
				if impl.Busy() {
					drain()
				}
				res, ready := impl.ConditionalFlush(pid, line, expected, 42)
				if !ready {
					t.Fatalf("seed %d op %d: flush stalled while not busy", seed, op)
				}
				wantData, wantOK := spec.flush(pid, line, expected)
				gotOK := res == 42
				if gotOK != wantOK {
					t.Fatalf("seed %d op %d: flush success = %v, spec says %v (pid %d line %#x exp %d)",
						seed, op, gotOK, wantOK, pid, line, expected)
				}
				if wantOK {
					for a, v := range wantData {
						wantCommitted[a] = v
					}
				}
			case 4: // let the bus make progress
				b.Tick()
				impl.TickBus(b)
			}
			if impl.HitCount() != spec.count {
				t.Fatalf("seed %d op %d: hit count %d, spec %d", seed, op, impl.HitCount(), spec.count)
			}
		}
		drain()
		for a, v := range wantCommitted {
			if committed[a] != v {
				t.Fatalf("seed %d: committed[%#x] = %#x, spec %#x", seed, a, committed[a], v)
			}
		}
		for a := range committed {
			if _, present := wantCommitted[a]; !present {
				t.Fatalf("seed %d: byte %#x committed but spec never flushed it", seed, a)
			}
		}
	}
}
