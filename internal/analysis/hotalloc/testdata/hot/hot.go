// Package fix seeds hot-path allocation sites: every construct hotalloc
// recognizes appears once in an annotated function, plus the escape
// hatches (alloc-ok lines, panic arguments, unannotated functions).
package fix

type state struct{ n int }

type buf struct {
	backing []int
	s       string
}

var sink any

//csb:hotpath
func hot(b *buf, s *state, bs []byte) {
	p := new(state) // want `new allocates on the hot path`
	_ = p
	m := make([]int, 4) // want `make allocates on the hot path`
	_ = m
	q := &state{n: 1} // want `&composite literal escapes to the heap on the hot path`
	_ = q
	f := func() {} // want `closure allocates on the hot path`
	_ = f
	b.s = b.s + "x" // want `string concatenation allocates on the hot path`
	_ = string(bs) // want `string conversion allocates on the hot path`
	xs := append([]int{}, 1) // want `append to a fresh slice allocates on the hot path`
	_ = xs
	b.backing = append(b.backing, s.n) // preallocated backing: no diagnostic
	varf(1, 2) // want `variadic function allocates its argument slice`
}

func varf(xs ...int) {}

func eat(v any) {}

//csb:hotpath
func boxing(n int) {
	sink = n // want `assignment boxes a int into an interface`
	eat(n)   // want `argument boxes a int into an interface`
}

//csb:hotpath
func boxReturn(n int) any {
	return n // want `return boxes a int into an interface`
}

//csb:hotpath
func pointerOK(s *state) any {
	return s // pointers live in the interface word: no boxing
}

//csb:hotpath
func coldPath(b *buf) {
	if cap(b.backing) == 0 {
		b.backing = make([]int, 0, 64) //csb:alloc-ok — one-time growth
	}
}

//csb:hotpath
func panicOK(msg string) {
	if msg == "" {
		panic("empty: " + msg)
	}
}

func notAnnotated() *state {
	return &state{n: 1}
}
