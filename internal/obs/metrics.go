package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// Sample is one periodic machine snapshot. Rate fields (Retired, BusBytes,
// the caches) are deltas since the previous sample; occupancy fields are
// instantaneous. IPC and BusBusyPct are computed over the sample window.
type Sample struct {
	Cycle    uint64 `json:"cycle"`
	BusCycle uint64 `json:"bus_cycle"`

	Retired    uint64  `json:"retired"`
	IPC        float64 `json:"ipc"`
	BusBusyPct float64 `json:"bus_busy_pct"`
	BusBytes   uint64  `json:"bus_bytes"`

	L1DMisses      uint64 `json:"l1d_misses"`
	UncachedStores uint64 `json:"uncached_stores"`
	CSBStores      uint64 `json:"csb_stores"`

	CSBOccupancy  int `json:"csb_occupancy_bytes"`
	CSBPending    int `json:"csb_pending_lines"`
	UBDepth       int `json:"ub_depth"`
	WriteBufDepth int `json:"write_buf_depth"`
}

// MetricsFormat selects the metrics stream encoding.
type MetricsFormat uint8

const (
	// FormatJSONL writes one JSON object per line.
	FormatJSONL MetricsFormat = iota
	// FormatCSV writes a header row followed by one record per sample.
	FormatCSV
)

// csvColumns fixes the CSV column order; keep in sync with Sample.
var csvColumns = []string{
	"cycle", "bus_cycle", "retired", "ipc", "bus_busy_pct", "bus_bytes",
	"l1d_misses", "uncached_stores", "csb_stores",
	"csb_occupancy_bytes", "csb_pending_lines", "ub_depth", "write_buf_depth",
}

// MetricsWriter encodes samples to a stream.
type MetricsWriter struct {
	w      io.Writer
	format MetricsFormat
	count  int
}

// NewMetricsWriter creates a writer emitting the given format to w.
func NewMetricsWriter(w io.Writer, format MetricsFormat) *MetricsWriter {
	return &MetricsWriter{w: w, format: format}
}

// Count returns the number of samples written.
func (m *MetricsWriter) Count() int { return m.count }

// Write emits one sample.
func (m *MetricsWriter) Write(s Sample) error {
	if m.format == FormatCSV {
		return m.writeCSV(s)
	}
	data, err := json.Marshal(s)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if _, err := m.w.Write(data); err != nil {
		return err
	}
	m.count++
	return nil
}

func (m *MetricsWriter) writeCSV(s Sample) error {
	if m.count == 0 {
		for i, c := range csvColumns {
			if i > 0 {
				fmt.Fprint(m.w, ",")
			}
			fmt.Fprint(m.w, c)
		}
		fmt.Fprintln(m.w)
	}
	_, err := fmt.Fprintf(m.w, "%d,%d,%d,%.4f,%.2f,%d,%d,%d,%d,%d,%d,%d,%d\n",
		s.Cycle, s.BusCycle, s.Retired, s.IPC, s.BusBusyPct, s.BusBytes,
		s.L1DMisses, s.UncachedStores, s.CSBStores,
		s.CSBOccupancy, s.CSBPending, s.UBDepth, s.WriteBufDepth)
	if err != nil {
		return err
	}
	m.count++
	return nil
}
