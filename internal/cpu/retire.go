package cpu

import (
	"fmt"

	"csbsim/internal/isa"
	"csbsim/internal/mem"
	"csbsim/internal/obs"
)

// retire commits up to RetireWidth instructions in program order. At most
// one retire-executed operation (uncached access, swap, membar, privileged
// op) completes per cycle — which is what makes CSB combining stores cost
// one cycle per doubleword on the CPU side, matching §4.3.2.
const (
	rexStall = iota
	rexRetired
	rexRedirected // retired and the pipeline was flushed/redirected
)

func (c *CPU) retire() {
	if c.pendingIntr != 0 && c.arch.InterruptsEnabled() && !c.retireExecInFlight() {
		c.deliverInterrupt()
		return
	}
	for n := 0; n < c.cfg.RetireWidth && len(c.rob) > 0; n++ {
		u := c.rob[0]
		if u.dead {
			c.rob = c.rob[1:]
			n--
			continue
		}
		if u.needsRetireExec() {
			if u.isMem && !(u.addrReady && u.dataSrcReady()) {
				return
			}
			if u.isMem && u.faulted {
				c.fault(u)
				return
			}
			switch c.retireExec(u) {
			case rexStall:
				return
			case rexRetired:
				c.commitDest(u)
				c.popHead(u)
			case rexRedirected:
				c.stats.Retired++
				c.retiredThisCycle = true
			}
			return // at most one retire-exec per cycle
		}
		if !u.done {
			return
		}
		if u.faulted {
			c.fault(u)
			return
		}
		if !c.commit(u) {
			return // write buffer full
		}
		c.popHead(u)
	}
}

// retireExecInFlight reports whether the head of the ROB is a
// retire-executed operation that has already begun its side effects (an
// uncached load issued to the bus, a conditional flush past the CSB, a
// swap mid-RMW). Interrupt delivery must wait for it: flushing and
// replaying such an operation would execute its I/O side effect twice,
// violating the exactly-once requirement the whole design exists to
// provide.
func (c *CPU) retireExecInFlight() bool {
	if len(c.rob) == 0 {
		return false
	}
	u := c.rob[0]
	return !u.dead && u.needsRetireExec() && u.retPhase > 0
}

// commit applies a normal instruction's architectural effects. It returns
// false when a cached store cannot enter the write buffer this cycle.
func (c *CPU) commit(u *uop) bool {
	if u.inst.Op.Class() == isa.ClassStore && u.kind == mem.KindCached {
		if !c.hier.Store(u.pa) {
			return false
		}
		size := u.inst.Op.MemBytes()
		c.ram.WriteUint(u.pa, size, u.vald())
		c.decInvalidate(u.pa, size)
		c.hier.MarkDirty(u.pa)
		c.stats.CachedStores++
	}
	c.commitDest(u)
	return true
}

func (c *CPU) commitDest(u *uop) {
	switch {
	case u.inst.WritesFPReg():
		c.arch.F[u.inst.Rd] = u.result
	case u.inst.WritesIntReg():
		c.arch.R[u.inst.Rd] = u.result
	}
	if u.writesCC {
		c.arch.CC = u.flags
	}
}

// popHead retires the ROB head: notifies observers, releases the rename
// entries and snapshot, and parks u on the retired queue until
// recycleRetired proves nothing in flight can still reference it. The
// retired queue is the uop pool's quarantine stage, hence:
//
//csb:hotpath
//csb:pool
func (c *CPU) popHead(u *uop) {
	c.retiredThisCycle = true
	if len(c.retireObs) != 0 {
		ev := RetireEvent{
			Cycle: c.stats.Cycles, Seq: u.seq, PC: u.pc, Inst: u.inst,
			Result: u.result, Addr: u.va, IsMem: u.isMem,
			FetchCycle: u.fetchC, DispatchCycle: u.dispatchC,
			IssueCycle: u.issueC, CompleteCycle: u.completeC,
		}
		for _, fn := range c.retireObs {
			fn(ev)
		}
	}
	c.rob = c.rob[1:]
	if u.inst.WritesFPReg() && c.fpRen[u.inst.Rd] == u {
		c.fpRen[u.inst.Rd] = nil
	} else if u.inst.WritesIntReg() && c.intRen[u.inst.Rd] == u {
		c.intRen[u.inst.Rd] = nil
	}
	if c.ccRen == u {
		c.ccRen = nil
	}
	if u.isMem {
		c.memCount--
	}
	if u.isBranch && !u.resolved {
		c.branchCount--
	}
	c.releaseSnap(u)
	u.retired = true
	u.freeStamp = c.seq
	c.retq = append(c.retq, u)
	c.stats.Retired++
	if u.isBranch && u.resolved {
		c.arch.PC = u.actualNext
	} else {
		c.arch.PC = u.pc + 4
	}
}

// retireExec performs head-of-ROB operations.
func (c *CPU) retireExec(u *uop) int {
	switch u.inst.Op {
	case isa.OpMEMBAR:
		if c.ub.Empty() && c.hier.StoreBufferEmpty() && c.csb.Drained() {
			c.stats.Membars++
			c.markDone(u)
			return rexRetired
		}
		c.stats.MembarStall++
		return rexStall

	case isa.OpRDPR:
		pr := isa.PR(u.inst.Imm)
		if pr >= isa.NumPRs {
			c.fault(u)
			return rexRedirected
		}
		if pr == isa.PRCYCLE {
			u.result = c.stats.Cycles
		} else {
			u.result = c.arch.PR[pr]
		}
		c.markDone(u)
		return rexRetired

	case isa.OpWRPR:
		pr := isa.PR(u.inst.Imm)
		if pr >= isa.NumPRs {
			c.fault(u)
			return rexRedirected
		}
		c.arch.PR[pr] = u.val1()
		if pr == isa.PRPID && c.PIDChanged != nil {
			c.PIDChanged(uint8(u.val1()))
		}
		c.markDone(u)
		return rexRetired

	case isa.OpIRET:
		target := c.arch.PR[isa.PRERPC]
		c.arch.PR[isa.PRSTATUS] |= 1
		c.flushAll()
		c.pc = target
		c.arch.PC = target
		return rexRedirected

	case isa.OpTRAP:
		c.stats.Traps++
		code := u.inst.Imm
		if c.TrapHook != nil && c.TrapHook(code) {
			c.markDone(u)
			return rexRetired
		}
		ivec := c.arch.PR[isa.PRIVEC]
		if ivec == 0 {
			c.halted = true
			c.haltErr = fmt.Errorf("cpu: unhandled trap %d at pc %#x", code, u.pc)
			return rexRedirected
		}
		c.arch.PR[isa.PRERPC] = u.pc + 4
		c.arch.PR[isa.PRCAUSE] = uint64(isa.CauseSoftware) | uint64(code)<<8
		c.arch.PR[isa.PRSTATUS] &^= 1
		c.flushAll()
		c.pc = ivec
		c.arch.PC = ivec
		return rexRedirected

	case isa.OpHALT:
		c.halted = true
		c.arch.PC = u.pc
		return rexRedirected

	case isa.OpSWAP:
		return c.retireSwap(u)
	}

	// Uncached / combining loads and stores.
	switch u.inst.Op.Class() {
	case isa.ClassLoad:
		return c.retireUncachedLoad(u)
	case isa.ClassStore:
		return c.retireUncachedStore(u)
	}
	c.fault(u)
	return rexRedirected
}

func (c *CPU) retireSwap(u *uop) int {
	switch u.kind {
	case mem.KindCached:
		return c.retireSwapCached(u)
	case mem.KindCombining:
		return c.retireConditionalFlush(u)
	default:
		return c.retireSwapUncached(u)
	}
}

// retireSwapCached performs an atomic exchange in the data cache (the lock
// acquire/release primitive of §4.2's second microbenchmark).
func (c *CPU) retireSwapCached(u *uop) int {
	switch u.retPhase {
	case 0:
		u.pins++
		//csb:pool — the fill callback's capture of u is pin-counted (u.pins).
		lat, hit, accepted := c.hier.Load(u.pa, false, func() {
			u.pins--
			if !u.dead {
				u.memWait = false
			}
		})
		if hit || !accepted {
			u.pins-- // callback not retained
		}
		if !accepted {
			return rexStall
		}
		if hit {
			u.remaining = lat
			u.retPhase = 1
			return rexStall
		}
		u.memWait = true
		u.retPhase = 2
		return rexStall
	case 1:
		u.remaining--
		if u.remaining > 0 {
			return rexStall
		}
		old := c.ram.ReadUint(u.pa, 8)
		c.ram.WriteUint(u.pa, 8, u.vald())
		c.decInvalidate(u.pa, 8)
		c.hier.MarkDirty(u.pa)
		u.result = old
		c.markDone(u)
		c.stats.Swaps++
		return rexRetired
	default: // 2: waiting for the fill
		if u.memWait {
			return rexStall
		}
		u.retPhase = 0
		return rexStall
	}
}

// retireConditionalFlush is the CSB conditional flush: swap to combining
// space (§3.1/§3.2).
func (c *CPU) retireConditionalFlush(u *uop) int {
	switch u.retPhase {
	case 0:
		before := c.csb.Stats().FlushOK
		res, ready := c.csb.ConditionalFlush(c.arch.PID(), u.pa, int64(u.vald()), u.vald())
		if !ready {
			return rexStall
		}
		u.result = res
		u.remaining = c.cfg.CSBLatency
		u.retPhase = 1
		c.stats.CSBFlushes++
		if c.csb.Stats().FlushOK == before {
			c.stats.CSBFlushFails++
		}
		return rexStall
	default:
		u.remaining--
		if u.remaining > 0 {
			return rexStall
		}
		c.markDone(u)
		return rexRetired
	}
}

// retireSwapUncached implements swap to plain uncached space as a blocking
// bus read followed by a bus write, both strongly ordered.
func (c *CPU) retireSwapUncached(u *uop) int {
	switch u.retPhase {
	case 0:
		u.pins++
		//csb:pool — the load callback's capture of u is pin-counted (u.pins).
		ok := c.ub.AddLoad(u.pa, 8, func(data []byte) {
			u.pins--
			if !u.dead {
				u.result = leUint(data)
				u.retPhase = 2
			}
		})
		if !ok {
			u.pins--
			return rexStall
		}
		u.retPhase = 1
		return rexStall
	case 1:
		return rexStall // waiting for the read
	default: // 2
		if !c.ub.AddStore(u.pa, 8, c.leBytes(u.vald(), 8)) {
			return rexStall
		}
		c.markDone(u)
		c.stats.Swaps++
		return rexRetired
	}
}

func (c *CPU) retireUncachedLoad(u *uop) int {
	switch u.retPhase {
	case 0:
		size := u.inst.Op.MemBytes()
		u.pins++
		//csb:pool — the load callback's capture of u is pin-counted (u.pins).
		ok := c.ub.AddLoad(u.pa, size, func(data []byte) {
			u.pins--
			if !u.dead {
				u.result = leUint(data)
				u.retPhase = 2
			}
		})
		if !ok {
			u.pins--
			return rexStall
		}
		u.retPhase = 1
		return rexStall
	case 1:
		return rexStall
	default:
		c.markDone(u)
		c.stats.UncachedLoads++
		return rexRetired
	}
}

func (c *CPU) retireUncachedStore(u *uop) int {
	size := u.inst.Op.MemBytes()
	data := c.leBytes(u.vald(), size)
	if u.kind == mem.KindCombining {
		if !c.csb.Store(c.arch.PID(), u.pa, size, data) {
			return rexStall
		}
		c.stats.CSBStores++
		c.markDone(u)
		return rexRetired
	}
	if !c.ub.AddStore(u.pa, size, data) {
		return rexStall
	}
	c.stats.UncachedStores++
	c.markDone(u)
	return rexRetired
}

func (c *CPU) fault(u *uop) {
	c.stats.Faults++
	c.halted = true
	c.haltErr = fmt.Errorf("cpu: memory fault at pc %#x (%s, va %#x)", u.pc, u.inst.String(), u.va)
}

func (c *CPU) deliverInterrupt() {
	cause := c.pendingIntr
	c.pendingIntr = 0
	c.stats.Interrupts++
	c.cycleCause = obs.CauseInterrupt
	c.cycleCauseSet = true
	resume := c.pc
	if len(c.rob) > 0 {
		resume = c.rob[0].pc
	} else if len(c.fetchQ) > 0 {
		resume = c.fetchQ[0].pc
	}
	c.flushAll()
	c.arch.PC = resume
	c.arch.PR[isa.PRERPC] = resume
	c.arch.PR[isa.PRCAUSE] = cause
	c.arch.PR[isa.PRSTATUS] &^= 1
	if c.InterruptHook != nil && c.InterruptHook(cause) {
		// A Go-level kernel handled it (possibly switching contexts).
		c.pc = c.arch.PC
		return
	}
	ivec := c.arch.PR[isa.PRIVEC]
	if ivec == 0 {
		c.halted = true
		c.haltErr = fmt.Errorf("cpu: unhandled interrupt %d", cause)
		return
	}
	c.pc = ivec
	c.arch.PC = ivec
}

func leUint(data []byte) uint64 {
	var v uint64
	for i := len(data) - 1; i >= 0; i-- {
		v = v<<8 | uint64(data[i])
	}
	return v
}

// leBytes encodes v little-endian into the CPU's scratch buffer. The
// returned slice is only valid until the next call; both consumers
// (uncbuf.AddStore, core.CSB.Store) copy the bytes before returning.
func (c *CPU) leBytes(v uint64, size int) []byte {
	b := c.stBuf[:size]
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	return b
}
