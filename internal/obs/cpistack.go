// Package obs is the simulator's observability layer: CPI stall-attribution
// stacks, per-instruction lifecycle events with a Perfetto (Chrome
// trace-event JSON) exporter and a plain-text pipeline diagram fallback,
// and a periodic time-series metrics sampler emitting JSONL or CSV.
//
// The package is a leaf: it imports only the standard library, so the
// machine packages (cpu, sim) can depend on its types without cycles. The
// CPU charges every cycle in which retire slot 0 commits nothing to
// exactly one StallCause, so a CPIStack's buckets always sum to the total
// cycle count — the decomposition that makes the paper's uncached-store
// penalty directly visible instead of buried in an aggregate IPC.
package obs

import (
	"fmt"
	"sort"
	"strings"
)

// StallCause labels why a CPU cycle produced no commit in retire slot 0.
// CauseCommit is the one non-stall bucket: at least one instruction
// retired that cycle.
type StallCause uint8

const (
	// CauseCommit counts cycles in which retire slot 0 committed.
	CauseCommit StallCause = iota
	// CauseFrontend counts ROB-empty cycles: fetch/decode starvation.
	CauseFrontend
	// CauseICacheMiss counts ROB-empty cycles behind an I-cache fill.
	CauseICacheMiss
	// CauseBranchSquash counts ROB-empty cycles refilling after a
	// mispredicted branch squashed the pipeline.
	CauseBranchSquash
	// CauseExec counts cycles the ROB head waits on operands or a
	// functional-unit latency (data-dependence chains).
	CauseExec
	// CauseDCache counts cycles the head load/swap waits on the data
	// cache (access latency or a fill in flight).
	CauseDCache
	// CauseLSQ counts cycles the head memory op waits on address
	// generation, memory ports or load/store ordering.
	CauseLSQ
	// CauseTLB counts cycles the head waits on a hardware page walk.
	CauseTLB
	// CauseUncached counts cycles an uncached access stalls on a full
	// uncached buffer — the serialized-store drain the paper attacks.
	CauseUncached
	// CauseBusArb counts cycles a retire-executed access waits for its
	// bus transaction (arbitration plus occupancy).
	CauseBusArb
	// CauseCSB counts cycles a combining store or conditional flush
	// stalls on the conditional store buffer (busy or flush latency).
	CauseCSB
	// CauseMembar counts cycles a MEMBAR waits for buffers to drain.
	CauseMembar
	// CauseStoreBuf counts cycles a cached store blocks on a full
	// write buffer at retire.
	CauseStoreBuf
	// CauseKernel counts injected kernel context-switch stall cycles.
	CauseKernel
	// CauseInterrupt counts interrupt-delivery flush cycles.
	CauseInterrupt
	// CauseHalted counts cycles ticked after HALT (buffer draining).
	CauseHalted
	// CauseOther catches anything unclassified (faults mid-halt).
	CauseOther

	// NumCauses is the bucket count; CPIStack is indexed by StallCause.
	NumCauses
)

var causeNames = [NumCauses]string{
	"commit", "frontend", "icache-miss", "branch-squash", "exec",
	"dcache", "lsq", "tlb-walk", "uncached-drain", "bus-arb",
	"csb-busy", "membar", "store-buffer", "kernel", "interrupt",
	"halted", "other",
}

// String returns the short bucket name used in reports and JSON.
func (c StallCause) String() string {
	if c < NumCauses {
		return causeNames[c]
	}
	return fmt.Sprintf("cause-%d", uint8(c))
}

// CPIStack accumulates one bucket per cycle. The zero value is ready to
// use; it is a plain array so snapshotting it is a copy.
type CPIStack [NumCauses]uint64

// Add charges one cycle to the given cause.
func (s *CPIStack) Add(c StallCause) { s[c]++ }

// Total returns the sum of all buckets — by construction, the total cycle
// count of the run that produced the stack.
func (s CPIStack) Total() uint64 {
	var t uint64
	for _, v := range s {
		t += v
	}
	return t
}

// StallCycles returns the cycles not spent committing.
func (s CPIStack) StallCycles() uint64 { return s.Total() - s[CauseCommit] }

// Format renders the stack as an aligned table: commit first, then stall
// buckets in descending order, zero buckets omitted.
func (s CPIStack) Format() string {
	total := s.Total()
	var b strings.Builder
	fmt.Fprintf(&b, "cpi stack (%d cycles):\n", total)
	if total == 0 {
		return b.String()
	}
	row := func(c StallCause) {
		fmt.Fprintf(&b, "  %-14s %12d  %5.1f%%\n",
			c.String(), s[c], 100*float64(s[c])/float64(total))
	}
	row(CauseCommit)
	order := make([]StallCause, 0, NumCauses)
	for c := StallCause(1); c < NumCauses; c++ {
		if s[c] > 0 {
			order = append(order, c)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if s[order[i]] != s[order[j]] {
			return s[order[i]] > s[order[j]]
		}
		return order[i] < order[j]
	})
	for _, c := range order {
		row(c)
	}
	return b.String()
}

// MarshalJSON renders the stack as an object keyed by bucket name, in
// cause order, including zero buckets (machine consumers want a stable
// schema).
func (s CPIStack) MarshalJSON() ([]byte, error) {
	var b strings.Builder
	b.WriteByte('{')
	for c := StallCause(0); c < NumCauses; c++ {
		if c > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%q:%d", c.String(), s[c])
	}
	b.WriteByte('}')
	return []byte(b.String()), nil
}
