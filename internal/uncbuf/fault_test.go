package uncbuf

import "testing"

func TestPressureHookRefusesStoreAndLoad(t *testing.T) {
	u := newBuf(t, DefaultConfig())
	squeeze := true
	u.SetFaultHook(func() bool { return squeeze })

	if u.AddStore(0x1000, 8, make([]byte, 8)) {
		t.Fatal("store accepted under injected pressure")
	}
	if u.AddLoad(0x1000, 8, nil) {
		t.Fatal("load accepted under injected pressure")
	}
	if s := u.Stats(); s.StallFull != 2 || s.Stores != 0 || s.Loads != 0 {
		t.Fatalf("stats: %+v", s)
	}
	if u.Len() != 0 {
		t.Fatal("refused accesses left entries behind")
	}

	// Pressure lifts; the retried accesses land and drain normally.
	squeeze = false
	if !u.AddStore(0x1000, 8, make([]byte, 8)) {
		t.Fatal("store refused after pressure lifted")
	}
	if !u.AddLoad(0x2000, 8, nil) {
		t.Fatal("load refused after pressure lifted")
	}
	b := newBus(t)
	for i := 0; i < 200 && !u.Empty(); i++ {
		b.Tick()
		u.TickBus(b)
	}
	if !u.Empty() {
		t.Fatal("buffer did not drain")
	}
}

func TestPressureHookBlocksCoalescingToo(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockSize = 64
	u := newBuf(t, cfg)
	if !u.AddStore(0x1000, 8, make([]byte, 8)) {
		t.Fatal("first store refused")
	}
	u.SetFaultHook(func() bool { return true })
	// Even a store that would coalesce into the youngest entry is
	// refused: injected pressure models the accept port being busy, not
	// the queue being full.
	if u.AddStore(0x1008, 8, make([]byte, 8)) {
		t.Fatal("coalescing store accepted under pressure")
	}
	if s := u.Stats(); s.Coalesced != 0 || s.StallFull != 1 {
		t.Fatalf("stats: %+v", s)
	}
}
