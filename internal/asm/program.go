// Package asm implements a two-pass assembler for the SV9L instruction set.
//
// The syntax follows SPARC assembler conventions so that the paper's code
// listing assembles nearly verbatim:
//
//	.RETRY:
//	        set     8, %l4          ! expected value
//	        std     %f0, [%o1]      ! 8-byte store (alias for stf)
//	        std     %f10, [%o1+40]
//	        swap    [%o1], %l4      ! conditional flush
//	        cmp     %l4, 8
//	        bnz     .RETRY          ! retry on failure
//
// Comments start with '!', '#' or "//". Labels end with ':'. Constants may
// be decimal, hex (0x...), or character literals, and simple `sym+off`
// expressions are evaluated at assembly time. Directives: .org, .align,
// .byte, .half, .word, .dword, .double, .space, .ascii, .equ, .entry,
// .global (accepted, ignored).
package asm

import (
	"encoding/binary"
	"fmt"
	"sort"

	"csbsim/internal/isa"
)

// ByteOrder is the memory byte order of the simulated machine. SV9L is
// little-endian (real SPARC is big-endian; the choice affects nothing the
// paper measures and keeps encoding code simple).
var ByteOrder = binary.LittleEndian

// Chunk is a contiguous span of assembled bytes at a fixed address.
type Chunk struct {
	Addr uint64
	Data []byte
}

// Program is the output of the assembler: placed bytes plus the symbol
// table and entry point.
type Program struct {
	Entry   uint64
	Chunks  []Chunk
	Symbols map[string]uint64
}

// Size returns the total number of assembled bytes.
func (p *Program) Size() int {
	n := 0
	for _, c := range p.Chunks {
		n += len(c.Data)
	}
	return n
}

// Bytes flattens the program into a single (addr, data) span. It returns an
// error when chunks overlap.
func (p *Program) Bytes() (uint64, []byte, error) {
	if len(p.Chunks) == 0 {
		return 0, nil, nil
	}
	chunks := make([]Chunk, len(p.Chunks))
	copy(chunks, p.Chunks)
	sort.Slice(chunks, func(i, j int) bool { return chunks[i].Addr < chunks[j].Addr })
	base := chunks[0].Addr
	end := base
	for _, c := range chunks {
		if c.Addr < end {
			return 0, nil, fmt.Errorf("asm: chunks overlap at %#x", c.Addr)
		}
		e := c.Addr + uint64(len(c.Data))
		if e > end {
			end = e
		}
	}
	buf := make([]byte, end-base)
	for _, c := range chunks {
		copy(buf[c.Addr-base:], c.Data)
	}
	return base, buf, nil
}

// Symbol returns the address of a defined symbol.
func (p *Program) Symbol(name string) (uint64, bool) {
	v, ok := p.Symbols[name]
	return v, ok
}

// Disassemble decodes n instructions starting at off within the flattened
// program, returning one line per instruction. It is used by cmd/csbasm and
// tests.
func (p *Program) Disassemble(addr uint64, n int) ([]string, error) {
	base, data, err := p.Bytes()
	if err != nil {
		return nil, err
	}
	var out []string
	for i := 0; i < n; i++ {
		off := addr + uint64(i*isa.InstBytes) - base
		if off+isa.InstBytes > uint64(len(data)) {
			break
		}
		w := ByteOrder.Uint32(data[off:])
		in := isa.Decode(w)
		out = append(out, fmt.Sprintf("%08x:  %08x  %s", addr+uint64(i*isa.InstBytes), w, in.String()))
	}
	return out, nil
}
