// The -cluster campaign: where the machine-level sweep (main.go) proves
// a single node recovers to the fault-free architectural state, this
// mode proves the *cluster* request path recovers. It sweeps seeds ×
// topologies × wire-fault specs over the open-loop serving workload and
// asserts three properties per scenario:
//
//  1. Determinism: the goroutine-per-node engine and the sequential
//     reference produce byte-identical counter state under wire faults —
//     the fault schedule is a function of (seed, traffic), never of the
//     scheduler.
//  2. Goodput: with retries enabled at calibrated fault rates, no
//     request is lost and goodput stays within -goodput-min of the
//     fault-free baseline.
//  3. Accounting: with retries disabled, the books still balance exactly
//     — issued == completed + lost + outstanding, cross-checked between
//     the generator's own stats and the registry gauges.
//
// On any failure the scenario's cluster diagnostic dump and counter
// snapshot are written to -outdir for post-mortem.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"csbsim/internal/bench"
	"csbsim/internal/cluster"
	"csbsim/internal/cluster/loadgen"
	"csbsim/internal/fault"
)

type clusterOptions struct {
	seeds      int
	seedBase   uint64
	topologies string
	specs      string
	horizon    uint64
	goodputMin float64
	outDir     string
	verbose    bool
}

// servingRun is one fully-built serving cluster plus everything the
// assertions read back after it runs.
type servingRun struct {
	c       *cluster.Cluster
	gens    []*loadgen.Generator
	clients []string
}

// clusterWire shapes the campaign fabric: slow enough that wire faults
// have room to bite, bounded enough that outages exert backpressure.
const (
	clusterNodes       = 4
	clusterWireLatency = 90
	clusterBandwidth   = 2
	clusterLinkDepth   = 8

	// Request reliability knobs — calibrated with headroom. The offered
	// load keeps the CSB serve loop well under half utilization, so an
	// outage-induced queue (plus the retry traffic it spawns) drains
	// instead of collapsing; the timeout clears the round trip plus such
	// a burst; budget × backoff outlasts the longest outage window the
	// default specs can draw.
	reqTimeout  = 6000
	reqRetries  = 4
	reqBackoff  = 750
	reqMeanGap  = 3000
	drainCycles = 80_000 // horizon tail reserved for retries to land
)

// buildServing assembles one serving cluster: node 0 is the server
// (CSB-batched replies — the paper's mechanism under test), every node
// with a link to it is a client. fcfg == nil runs fault-free; retries
// toggles the whole reliability layer between retry and
// first-timeout-is-terminal mode.
func buildServing(topo cluster.Topology, seed uint64, fcfg *fault.Config, retries bool, horizon uint64) (*servingRun, error) {
	cfg := cluster.DefaultConfig()
	cfg.Nodes = clusterNodes
	cfg.Topology = topo
	cfg.WireLatency = clusterWireLatency
	cfg.Bandwidth = clusterBandwidth
	cfg.LinkDepth = clusterLinkDepth
	c, err := cluster.New(cfg)
	if err != nil {
		return nil, err
	}
	src, err := loadgen.ServerProgram(bench.SendCSB, 8)
	if err != nil {
		return nil, err
	}
	run := &servingRun{c: c}
	issueUntil := horizon - drainCycles
	for i, n := range c.Nodes() {
		if i == 0 {
			loadgen.ServerMapIO(n, bench.SendCSB)
			prog, err := n.M.LoadSource("server.s", src)
			if err != nil {
				return nil, err
			}
			n.M.WarmProgram(prog)
			continue
		}
		if _, err := n.M.LoadSource("client.s", "halt\n"); err != nil {
			return nil, err
		}
		if _, ok := c.Link(i, 0); !ok {
			continue // e.g. the far side of a ring: no route to the server
		}
		gcfg := loadgen.Config{
			MeanGap:    reqMeanGap,
			Seed:       seed + uint64(i),
			Words:      8,
			Servers:    []int{0},
			IssueUntil: issueUntil,
			Timeout:    reqTimeout,
		}
		if retries {
			gcfg.MaxRetries = reqRetries
			gcfg.BackoffBase = reqBackoff
		}
		g := loadgen.New(gcfg)
		if err := g.Attach(c, i); err != nil {
			return nil, err
		}
		run.gens = append(run.gens, g)
		run.clients = append(run.clients, n.Name())
	}
	if fcfg != nil {
		if _, err := c.AttachWireFaults(*fcfg); err != nil {
			return nil, err
		}
	}
	return run, nil
}

// fingerprint reduces a finished run to the byte string the determinism
// assertion compares: final cycle, every registry counter and histogram
// (which covers the loadgen and fault accounting), and the injector's
// own stats.
func (r *servingRun) fingerprint() ([]byte, error) {
	out := struct {
		Cycle  uint64          `json:"cycle"`
		Reg    json.RawMessage `json:"registry"`
		Faults *fault.Stats    `json:"faults,omitempty"`
	}{Cycle: r.c.Cycle()}
	reg, err := json.Marshal(r.c.Registry().Snapshot())
	if err != nil {
		return nil, err
	}
	out.Reg = reg
	if inj := r.c.WireFaults(); inj != nil {
		fs := inj.Stats()
		out.Faults = &fs
	}
	return json.Marshal(out)
}

// totals sums the per-client accounting.
func (r *servingRun) totals() loadgen.Stats {
	var t loadgen.Stats
	for _, g := range r.gens {
		st := g.Stats()
		t.Issued += st.Issued
		t.Completed += st.Completed
		t.Lost += st.Lost
		t.Stray += st.Stray
		t.Timeouts += st.Timeouts
		t.Retries += st.Retries
		t.DuplicateReplies += st.DuplicateReplies
		t.Goodput += st.Goodput
	}
	return t
}

// outstanding reads the registry's outstanding gauges — the cross-check
// source for the accounting invariant (the generator's own Stats are the
// other side).
func (r *servingRun) outstanding() uint64 {
	snap := r.c.Registry().Snapshot()
	var sum uint64
	for _, name := range r.clients {
		sum += snap.Counters["loadgen/"+name+"/outstanding"]
	}
	return sum
}

// dumpArtifact writes the scenario's post-mortem bundle: the cluster
// diagnostic dump plus the formatted counter snapshot.
func dumpArtifact(outDir, name string, r *servingRun) {
	if outDir == "" || r == nil {
		return
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "faultcampaign: artifact dir: %v\n", err)
		return
	}
	path := filepath.Join(outDir, name+".dump.txt")
	body := r.c.DiagnosticDump() + "\n" + r.c.Registry().Snapshot().Format()
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "faultcampaign: artifact %s: %v\n", path, err)
		return
	}
	fmt.Fprintf(os.Stderr, "faultcampaign: wrote %s\n", path)
}

// specSlug makes a fault spec safe for a filename.
func specSlug(spec string) string {
	return strings.NewReplacer("=", "", ",", "-").Replace(spec)
}

// runClusterScenario executes the three-assertion bundle for one
// (topology, seed, spec) point against the scenario's fault-free
// baseline goodput. It returns the number of failed assertions.
func runClusterScenario(topo cluster.Topology, seed uint64, specName string, fcfg fault.Config,
	baseGoodput uint64, o *clusterOptions) int {
	name := fmt.Sprintf("%s-seed%d-%s", topo, seed, specSlug(specName))
	fails := 0
	fail := func(r *servingRun, format string, args ...any) {
		fails++
		fmt.Fprintf(os.Stderr, "FAIL %s: %s\n", name, fmt.Sprintf(format, args...))
		dumpArtifact(o.outDir, name, r)
	}

	// Assertion 1: engine determinism under faults. Same scenario on the
	// sequential reference and the parallel engine; fingerprints must be
	// byte-identical.
	var runs [2]*servingRun
	var prints [2][]byte
	for k, parallel := range []bool{false, true} {
		r, err := buildServing(topo, seed, &fcfg, true, o.horizon)
		if err != nil {
			fail(nil, "build: %v", err)
			return fails
		}
		if err := r.c.RunFor(o.horizon, parallel); err != nil {
			fail(r, "run (parallel=%v): %v", parallel, err)
			return fails
		}
		fp, err := r.fingerprint()
		if err != nil {
			fail(r, "fingerprint: %v", err)
			return fails
		}
		runs[k], prints[k] = r, fp
	}
	if string(prints[0]) != string(prints[1]) {
		fail(runs[1], "parallel engine diverged from the sequential reference under wire faults")
	}

	// Assertion 2: goodput under faults. Retries were enabled above, so
	// nothing may be lost, and goodput must hold the line on the
	// fault-free baseline.
	r := runs[1]
	st := r.totals()
	inj := r.c.WireFaults().Stats()
	if inj.WireTotal() == 0 {
		fail(r, "fault spec %q injected nothing — the scenario is vacuous", specName)
	}
	if st.Lost != 0 {
		fail(r, "%d requests lost with a %d-retry budget", st.Lost, reqRetries)
	}
	if st.Completed != st.Issued {
		fail(r, "issued %d but completed %d with retries enabled", st.Issued, st.Completed)
	}
	if min := uint64(o.goodputMin * float64(baseGoodput)); st.Goodput < min {
		fail(r, "goodput %d under faults, want ≥ %d (%.0f%% of fault-free %d)",
			st.Goodput, min, 100*o.goodputMin, baseGoodput)
	}

	// Assertion 3: exact accounting with retries disabled. The first
	// timeout is terminal, so drops surface as losses — and the books
	// must still balance against the registry's outstanding gauges.
	nr, err := buildServing(topo, seed, &fcfg, false, o.horizon)
	if err != nil {
		fail(nil, "build (no retries): %v", err)
		return fails
	}
	if err := nr.c.RunFor(o.horizon, true); err != nil {
		fail(nr, "run (no retries): %v", err)
		return fails
	}
	nst := nr.totals()
	if nst.Retries != 0 {
		fail(nr, "%d retries fired with a zero budget", nst.Retries)
	}
	if out := nr.outstanding(); nst.Issued != nst.Completed+nst.Lost+out {
		fail(nr, "accounting broke: issued %d != completed %d + lost %d + outstanding %d",
			nst.Issued, nst.Completed, nst.Lost, out)
	}
	if o.verbose {
		fmt.Printf("  %-40s issued %4d, retried %3d, goodput %d/%d; no-retry lost %d; %d wire faults\n",
			name, st.Issued, st.Retries, st.Goodput, baseGoodput, nst.Lost, inj.WireTotal())
	}
	return fails
}

// runClusterCampaign sweeps the full matrix. Baselines are fault-free
// runs of the same (topology, seed) workload with retries enabled —
// their goodput is the 100% mark every faulted run is held against.
func runClusterCampaign(o *clusterOptions) error {
	if o.horizon <= drainCycles {
		return fmt.Errorf("-horizon must exceed the %d-cycle drain tail", drainCycles)
	}
	var topos []cluster.Topology
	for _, name := range strings.Split(o.topologies, ",") {
		topo, err := cluster.ParseTopology(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		topos = append(topos, topo)
	}
	type spec struct {
		name string
		cfg  fault.Config
	}
	var specs []spec
	for _, s := range strings.Split(o.specs, ";") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		cfg, err := fault.ParseSpec(s)
		if err != nil {
			return err
		}
		if !cfg.WireEnabled() {
			return fmt.Errorf("spec %q enables no wire fault class", s)
		}
		specs = append(specs, spec{s, cfg})
	}
	if len(specs) == 0 {
		return fmt.Errorf("no wire fault specs")
	}

	scenarios, failures := 0, 0
	for _, topo := range topos {
		for s := 0; s < o.seeds; s++ {
			seed := o.seedBase + uint64(s)
			base, err := buildServing(topo, seed, nil, true, o.horizon)
			if err != nil {
				return err
			}
			if err := base.c.RunFor(o.horizon, true); err != nil {
				return fmt.Errorf("baseline %s seed %d: %w", topo, seed, err)
			}
			bst := base.totals()
			if bst.Lost != 0 || bst.Completed != bst.Issued {
				return fmt.Errorf("baseline %s seed %d unhealthy: %+v (tune the workload, not the faults)",
					topo, seed, bst)
			}
			for _, sp := range specs {
				fcfg := sp.cfg
				fcfg.Seed = seed
				scenarios++
				failures += runClusterScenario(topo, seed, sp.name, fcfg, bst.Goodput, o)
			}
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d assertion(s) failed across %d scenarios", failures, scenarios)
	}
	fmt.Printf("faultcampaign -cluster: %d scenarios (%d topologies × %d seeds × %d specs), all deterministic, zero losses with retries, goodput ≥ %.0f%% of fault-free\n",
		scenarios, len(topos), o.seeds, len(specs), 100*o.goodputMin)
	return nil
}
