package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"csbsim/internal/obs/journey"
)

// Perfetto collects instruction lifecycles, bus transactions and counter
// samples and renders them as Chrome trace-event JSON, loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing. Timestamps are CPU
// cycles written as microseconds — absolute time units are meaningless
// for a cycle simulator, only the relative scale matters.
//
// Instructions render as slices on a set of round-robin lanes (threads)
// under the "cpu" process, one slice per instruction spanning fetch to
// retire, with the per-stage stamps in the slice args. Bus transactions
// render under the "bus" process; counters (IPC, bus busy, buffer
// depths) as Perfetto counter tracks.
//
// Recording only appends raw events to slices; all JSON assembly is
// deferred to WriteTo, keeping the per-instruction recording cost low
// enough to instrument long runs.
type Perfetto struct {
	// Lanes is the number of instruction rows; in-flight instructions
	// rotate across them so overlapping lifetimes stay readable. It
	// defaults to 32 (half the ROB) and must be set before WriteTo.
	Lanes int

	insts    []InstEvent
	bus      []BusEvent
	samples  []Sample
	journeys []journey.Journey
	ratio    int // CPU-to-bus clock ratio (flow binding to bus slices)
}

// traceEvent is one Chrome trace-event JSON object (the subset we emit).
// Cat/FlowID/BP are used only by flow events ("s"/"t"/"f" arrows, which
// must share a name, category and id across their steps).
type traceEvent struct {
	Name   string         `json:"name"`
	Cat    string         `json:"cat,omitempty"`
	Ph     string         `json:"ph"`
	Ts     uint64         `json:"ts"`
	Dur    uint64         `json:"dur,omitempty"`
	PID    int            `json:"pid"`
	TID    int            `json:"tid"`
	FlowID int            `json:"id,omitempty"`
	BP     string         `json:"bp,omitempty"`
	Args   map[string]any `json:"args,omitempty"`
}

const (
	perfettoPIDCPU = 1
	perfettoPIDBus = 2
)

// NewPerfetto creates an exporter with the default lane count.
func NewPerfetto() *Perfetto { return &Perfetto{Lanes: 32} }

// Count returns the number of instruction slices recorded.
func (p *Perfetto) Count() uint64 { return uint64(len(p.insts)) }

// AddInst records one retired instruction.
func (p *Perfetto) AddInst(e InstEvent) { p.insts = append(p.insts, e) }

// AddBus records one completed bus transaction (CPU-cycle timestamps).
func (p *Perfetto) AddBus(e BusEvent) { p.bus = append(p.bus, e) }

// AddCounters records one metrics sample as Perfetto counter tracks.
func (p *Perfetto) AddCounters(s Sample) { p.samples = append(p.samples, s) }

func (p *Perfetto) instEvent(e InstEvent) traceEvent {
	start, end := e.Span()
	dur := end - start
	if dur == 0 {
		dur = 1 // zero-width slices vanish in the UI
	}
	args := map[string]any{
		"seq": e.Seq,
		"pc":  fmt.Sprintf("%#x", e.PC),
	}
	for _, st := range []struct {
		name  string
		cycle uint64
	}{
		{"fetch", e.Fetch}, {"dispatch", e.Dispatch}, {"issue", e.Issue},
		{"complete", e.Complete}, {"retire", e.Retire},
	} {
		if st.cycle != 0 {
			args[st.name] = st.cycle
		}
	}
	if e.IsMem {
		args["va"] = fmt.Sprintf("%#x", e.Addr)
	}
	lanes := p.Lanes
	if lanes <= 0 {
		lanes = 1
	}
	return traceEvent{
		Name: e.Disasm, Ph: "X", Ts: start, Dur: dur,
		PID: perfettoPIDCPU, TID: 1 + int(e.Seq%uint64(lanes)),
		Args: args,
	}
}

func busEvent(e BusEvent) traceEvent {
	dir := "RD"
	if e.Write {
		dir = "WR"
	}
	kind := "mem"
	if e.IO {
		kind = "io"
	}
	dur := e.End - e.Start
	if dur == 0 {
		dur = 1
	}
	return traceEvent{
		Name: fmt.Sprintf("%s %dB @%#x", dir, e.Size, e.Addr),
		Ph:   "X", Ts: e.Start, Dur: dur,
		PID: perfettoPIDBus, TID: 1,
		Args: map[string]any{"kind": kind, "size": e.Size},
	}
}

// WriteTo renders the trace as a single JSON document.
func (p *Perfetto) WriteTo(w io.Writer) (int64, error) {
	events := make([]traceEvent, 0, 2+len(p.insts)+len(p.bus)+5*len(p.samples))
	events = append(events,
		traceEvent{Name: "process_name", Ph: "M", PID: perfettoPIDCPU,
			Args: map[string]any{"name": "cpu pipeline"}},
		traceEvent{Name: "process_name", Ph: "M", PID: perfettoPIDBus,
			Args: map[string]any{"name": "system bus"}})
	for _, e := range p.insts {
		events = append(events, p.instEvent(e))
	}
	for _, e := range p.bus {
		events = append(events, busEvent(e))
	}
	events = p.journeyEvents(events)
	for _, s := range p.samples {
		for _, c := range []struct {
			name  string
			value float64
		}{
			{"IPC", s.IPC},
			{"bus busy %", s.BusBusyPct},
			{"CSB occupancy (bytes)", float64(s.CSBOccupancy)},
			{"uncached buffer depth", float64(s.UBDepth)},
			{"write buffer depth", float64(s.WriteBufDepth)},
		} {
			events = append(events, traceEvent{
				Name: c.name, Ph: "C", Ts: s.Cycle,
				PID: perfettoPIDCPU, TID: 0,
				Args: map[string]any{"value": c.value},
			})
		}
	}
	doc := struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{
		TraceEvents:     events,
		DisplayTimeUnit: "ns",
	}
	data, err := json.Marshal(doc)
	if err != nil {
		return 0, err
	}
	n, err := w.Write(data)
	return int64(n), err
}
