package cpu

import (
	"csbsim/internal/isa"
)

// ArchState is the committed architectural state of the processor: what a
// context switch saves and restores. The CSB is deliberately *not* part of
// it — an interrupted combining sequence is detected and discarded by the
// CSB's PID/counter check, never saved (§3.2).
type ArchState struct {
	R  [isa.NumRegs]uint64
	F  [isa.NumFRegs]uint64 // IEEE-754 bit patterns
	CC isa.Flags
	PC uint64
	PR [isa.NumPRs]uint64
}

// PID returns the process ID privileged register as the 8-bit ASID the TLB
// and CSB see.
func (a *ArchState) PID() uint8 { return uint8(a.PR[isa.PRPID]) }

// InterruptsEnabled reports bit 0 of the status register.
func (a *ArchState) InterruptsEnabled() bool { return a.PR[isa.PRSTATUS]&1 != 0 }

// predictor is a table of 2-bit saturating counters indexed by PC. Direct
// branch targets are computed from the decoded instruction, so no BTB is
// needed; indirect jumps (JALR) stall fetch until they resolve.
type predictor struct {
	counters []uint8
}

func newPredictor(size int) *predictor {
	p := &predictor{counters: make([]uint8, size)}
	for i := range p.counters {
		p.counters[i] = 1 // weakly not-taken
	}
	return p
}

func (p *predictor) index(pc uint64) int {
	return int(pc>>2) & (len(p.counters) - 1)
}

func (p *predictor) predict(pc uint64) bool {
	return p.counters[p.index(pc)] >= 2
}

func (p *predictor) update(pc uint64, taken bool) {
	i := p.index(pc)
	c := p.counters[i]
	if taken {
		if c < 3 {
			c++
		}
	} else if c > 0 {
		c--
	}
	p.counters[i] = c
}
